package sharedopt

import (
	"errors"
	"fmt"
	"sync"

	"sharedopt/internal/core"
)

// GameKind selects the valuation model of a Service.
type GameKind int

const (
	// Additive users value each optimization independently; their
	// total value is the sum over granted optimizations.
	Additive GameKind = iota
	// Substitutive users name a set of equivalent optimizations and
	// obtain their value once granted any one of them.
	Substitutive
)

// String returns the kind's name.
func (k GameKind) String() string {
	switch k {
	case Additive:
		return "additive"
	case Substitutive:
		return "substitutive"
	default:
		return fmt.Sprintf("GameKind(%d)", int(k))
	}
}

// ErrPeriodOver is returned when a call arrives after the pricing period
// ended (all horizon slots processed or ClosePeriod called).
var ErrPeriodOver = errors.New("sharedopt: pricing period is over")

// Service is the provider-side API for one pricing period T: it accepts
// bids between slots, advances billing slots, and settles payments. It
// wraps the AddOn mechanism (one game per optimization) or the SubstOn
// mechanism, so it inherits their truthfulness and cost-recovery
// guarantees. A Service is safe for concurrent use.
type Service struct {
	mu       sync.Mutex
	kind     GameKind
	horizon  Slot
	closed   bool
	additive *core.AdditiveGame
	subst    *core.SubstOn
	invoices map[UserID]Money
}

// NewAdditiveService prices the optimizations under additive valuations
// over a period of horizon slots.
func NewAdditiveService(opts []Optimization, horizon Slot) (*Service, error) {
	if err := validateServiceOpts(opts, horizon); err != nil {
		return nil, err
	}
	return &Service{
		kind:     Additive,
		horizon:  horizon,
		additive: core.NewAdditiveGame(opts),
		invoices: make(map[UserID]Money),
	}, nil
}

// NewSubstitutiveService prices the optimizations under substitutive
// valuations over a period of horizon slots.
func NewSubstitutiveService(opts []Optimization, horizon Slot) (*Service, error) {
	if err := validateServiceOpts(opts, horizon); err != nil {
		return nil, err
	}
	return &Service{
		kind:     Substitutive,
		horizon:  horizon,
		subst:    core.NewSubstOn(opts),
		invoices: make(map[UserID]Money),
	}, nil
}

func validateServiceOpts(opts []Optimization, horizon Slot) error {
	if len(opts) == 0 {
		return errors.New("sharedopt: no optimizations")
	}
	if horizon < 1 {
		return fmt.Errorf("sharedopt: horizon %d < 1", horizon)
	}
	seen := make(map[OptID]bool, len(opts))
	for _, o := range opts {
		if err := o.Validate(); err != nil {
			return err
		}
		if seen[o.ID] {
			return fmt.Errorf("sharedopt: duplicate optimization %d", o.ID)
		}
		seen[o.ID] = true
	}
	return nil
}

// Kind returns the service's valuation model.
func (s *Service) Kind() GameKind { return s.kind }

// Horizon returns the period length in slots.
func (s *Service) Horizon() Slot { return s.horizon }

// Now returns the last processed slot (0 before the first AdvanceSlot).
func (s *Service) Now() Slot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now()
}

func (s *Service) now() Slot {
	if s.kind == Additive {
		return s.additive.Now()
	}
	return s.subst.Now()
}

// SubmitAdditiveBid places or revises a user's bid for one optimization.
// Bids must start after the last processed slot; revisions may only raise
// values and extend the interval.
func (s *Service) SubmitAdditiveBid(opt OptID, bid OnlineBid) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrPeriodOver
	}
	if s.kind != Additive {
		return fmt.Errorf("sharedopt: additive bid on a %v service", s.kind)
	}
	return s.additive.Submit(opt, bid)
}

// SubmitSubstitutiveBid places or revises a user's substitutive bid.
func (s *Service) SubmitSubstitutiveBid(bid OnlineSubstBid) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrPeriodOver
	}
	if s.kind != Substitutive {
		return fmt.Errorf("sharedopt: substitutive bid on a %v service", s.kind)
	}
	return s.subst.Submit(bid)
}

// AdvanceSlot processes the next billing slot: it recomputes serviced
// users from residual bids, grants access, and charges users whose bid
// interval ended. The final slot of the horizon automatically settles all
// remaining users and closes the period.
func (s *Service) AdvanceSlot() (SlotReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return SlotReport{}, ErrPeriodOver
	}
	var report SlotReport
	if s.kind == Additive {
		report = s.additive.AdvanceSlot()
	} else {
		report = s.subst.AdvanceSlot()
	}
	for u, p := range report.Departures {
		s.invoices[u] += p
	}
	if report.Slot >= s.horizon {
		s.settleLocked(report.Departures)
		s.closed = true
	}
	return report, nil
}

// ClosePeriod ends the period early, settling every user who has not yet
// paid at the current cost-shares. It returns the payments charged by
// this call and is idempotent after the first close.
func (s *Service) ClosePeriod() (map[UserID]Money, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return map[UserID]Money{}, nil
	}
	settled := make(map[UserID]Money)
	s.settleLocked(settled)
	s.closed = true
	return settled, nil
}

// settleLocked runs Close on the underlying game, folding payments into
// invoices and, when sink is non-nil, into sink.
func (s *Service) settleLocked(sink map[UserID]Money) {
	var payments map[UserID]Money
	if s.kind == Additive {
		payments = s.additive.Close()
	} else {
		payments = s.subst.Close()
	}
	for u, p := range payments {
		s.invoices[u] += p
		if sink != nil {
			sink[u] += p
		}
	}
}

// Invoice returns a user's total charged payments so far and whether the
// user has been settled (charged at departure or close).
func (s *Service) Invoice(u UserID) (Money, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.invoices[u]
	return p, ok
}

// Invoices returns a copy of every settled user's total charged payments.
func (s *Service) Invoices() map[UserID]Money {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[UserID]Money, len(s.invoices))
	for u, p := range s.invoices {
		out[u] = p
	}
	return out
}

// Revenue returns the total payments charged so far.
func (s *Service) Revenue() Money {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.revenueLocked()
}

func (s *Service) revenueLocked() Money {
	var total Money
	for _, p := range s.invoices {
		total += p
	}
	return total
}

// CostIncurred returns the summed cost of implemented optimizations.
func (s *Service) CostIncurred() Money {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.costLocked()
}

func (s *Service) costLocked() Money {
	if s.kind == Additive {
		return s.additive.CostIncurred()
	}
	return s.subst.CostIncurred()
}

// Surplus returns Revenue − CostIncurred. The mechanisms guarantee it is
// never negative once the period is over. Both sides are read under one
// lock acquisition: reading them through Revenue and CostIncurred
// separately would let a concurrent AdvanceSlot implement an optimization
// between the two reads and yield a transiently negative surplus that no
// consistent state ever had.
func (s *Service) Surplus() Money {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.revenueLocked() - s.costLocked()
}

// Closed reports whether the pricing period has ended (all horizon slots
// processed, or ClosePeriod called).
func (s *Service) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Optimizations returns the service's optimization catalog with this
// period's costs, in ascending ID order.
func (s *Service) Optimizations() []Optimization {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.optimizationsLocked()
}

// ImplementedOpts returns the optimizations implemented so far this
// period, in ascending ID order.
func (s *Service) ImplementedOpts() []OptID {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []OptID
	for _, o := range s.optimizationsLocked() {
		if s.implementedLocked(o.ID) {
			out = append(out, o.ID)
		}
	}
	return out
}

func (s *Service) optimizationsLocked() []Optimization {
	if s.kind == Additive {
		return s.additive.Optimizations()
	}
	return s.subst.Optimizations()
}
