package sharedopt_test

// One benchmark per figure of the paper's evaluation section (Section 7),
// each regenerating the figure's full series at a reduced trial count,
// plus micro-benchmarks for the mechanisms and the query-engine
// substrate. Regenerate the paper-scale numbers with cmd/experiments.

import (
	"testing"

	"sharedopt/internal/benchkit"
	"sharedopt/internal/core"
	"sharedopt/internal/experiments"
	"sharedopt/internal/workload"
)

// benchTrials keeps one benchmark iteration meaningful (full sweep,
// averaged) without making -bench runs take minutes.
const benchTrials = 20

func benchFigure(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id, benchTrials, 42); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1Astronomy regenerates Figure 1: the astronomy use-case's
// utility and balance versus workload executions.
func BenchmarkFig1Astronomy(b *testing.B) { benchFigure(b, "1") }

// BenchmarkFig2aAdditiveSmall regenerates Figure 2(a): additive
// optimization, 6-user collaboration, cost sweep.
func BenchmarkFig2aAdditiveSmall(b *testing.B) { benchFigure(b, "2a") }

// BenchmarkFig2bAdditiveLarge regenerates Figure 2(b): additive, 24 users.
func BenchmarkFig2bAdditiveLarge(b *testing.B) { benchFigure(b, "2b") }

// BenchmarkFig2cSubstSmall regenerates Figure 2(c): substitutive, 6 users.
func BenchmarkFig2cSubstSmall(b *testing.B) { benchFigure(b, "2c") }

// BenchmarkFig2dSubstLarge regenerates Figure 2(d): substitutive, 24 users.
func BenchmarkFig2dSubstLarge(b *testing.B) { benchFigure(b, "2d") }

// BenchmarkFig3aSingleSlot regenerates Figure 3(a): AddOn's advantage as
// the slot count shrinks.
func BenchmarkFig3aSingleSlot(b *testing.B) { benchFigure(b, "3a") }

// BenchmarkFig3bMultiSlot regenerates Figure 3(b): AddOn's advantage as
// bids stretch over more slots.
func BenchmarkFig3bMultiSlot(b *testing.B) { benchFigure(b, "3b") }

// BenchmarkFig4ArrivalSkew regenerates Figure 4: utility ratios under
// uniform, early and late arrivals.
func BenchmarkFig4ArrivalSkew(b *testing.B) { benchFigure(b, "4") }

// BenchmarkFig5aLowSelectivity regenerates Figure 5(a): 3 substitutes of 4.
func BenchmarkFig5aLowSelectivity(b *testing.B) { benchFigure(b, "5a") }

// BenchmarkFig5bHighSelectivity regenerates Figure 5(b): 3 substitutes of 12.
func BenchmarkFig5bHighSelectivity(b *testing.B) { benchFigure(b, "5b") }

// BenchmarkAblationE1Efficiency regenerates ablation E1: AddOn vs the
// hindsight-optimal utility bound.
func BenchmarkAblationE1Efficiency(b *testing.B) { benchFigure(b, "E1") }

// BenchmarkAblationE2EfficiencySubst regenerates ablation E2: SubstOn vs
// the exact subset-enumeration optimum.
func BenchmarkAblationE2EfficiencySubst(b *testing.B) { benchFigure(b, "E2") }

// BenchmarkAblationE3NaiveGaming regenerates ablation E3: the naive
// online strawman vs AddOn under value hiding.
func BenchmarkAblationE3NaiveGaming(b *testing.B) { benchFigure(b, "E3") }

// The mechanism micro-benchmarks delegate to internal/benchkit so that
// cmd/benchjson measures exactly the same bodies when emitting the
// BENCH_*.json perf snapshots. All of them report allocations; the sorted-
// prefix Shapley rewrite is held to O(1) allocs per call by the regression
// tests in internal/core/alloc_test.go.

// BenchmarkShapley measures one Shapley Value Mechanism run over 1000
// bidders — the inner loop of every mechanism.
func BenchmarkShapley(b *testing.B) { benchkit.Shapley(1_000)(b) }

// BenchmarkShapley10k scales the Shapley benchmark to 10k bidders.
func BenchmarkShapley10k(b *testing.B) { benchkit.Shapley(10_000)(b) }

// BenchmarkShapley100k scales the Shapley benchmark to 100k bidders.
func BenchmarkShapley100k(b *testing.B) { benchkit.Shapley(100_000)(b) }

// BenchmarkAddOnGame measures a complete 12-slot AddOn game with 24
// users — one Figure 2(b) trial.
func BenchmarkAddOnGame(b *testing.B) { benchkit.AddOnGame()(b) }

// BenchmarkSubstOnGame measures a complete 12-slot SubstOn game with 24
// users over 12 optimizations — one Figure 2(d) trial.
func BenchmarkSubstOnGame(b *testing.B) { benchkit.SubstOnGame()(b) }

// BenchmarkServiceGame measures one complete 12-slot, 48-user additive
// pricing period through the plain in-memory service layer.
func BenchmarkServiceGame(b *testing.B) { benchkit.ServiceGame(false)(b) }

// BenchmarkServiceGameJournaled measures the same period through the
// durable tier: every accepted mutation checksummed and framed into the
// bid journal. The pair gate bounds this tax at 4x the plain service.
func BenchmarkServiceGameJournaled(b *testing.B) { benchkit.ServiceGame(true)(b) }

// BenchmarkIngestThroughput measures concurrent bid intake through the
// bounded admission queue into a journaled service, retries included.
func BenchmarkIngestThroughput(b *testing.B) { benchkit.IngestThroughput()(b) }

// BenchmarkShardedIngest1 measures sustained concurrent intake through
// the sharded durable tier with a single shard — the baseline of the
// sharded4-vs-single pair gate. Reports bids/s and p99 slot-advance
// latency alongside ns/op.
func BenchmarkShardedIngest1(b *testing.B) { benchkit.ShardedIngestThroughput(1)(b) }

// BenchmarkShardedIngest4 measures the same workload over four shards,
// each journaling independently.
func BenchmarkShardedIngest4(b *testing.B) { benchkit.ShardedIngestThroughput(4)(b) }

// BenchmarkShardedIngest4Obs is the four-shard body with a live
// obs.Registry attached — the candidate of the obs-vs-bare pair gate
// bounding the metrics layer's hot-path cost.
func BenchmarkShardedIngest4Obs(b *testing.B) { benchkit.ShardedIngestInstrumented(4)(b) }

// BenchmarkEngineHashJoin measures a 10k × 10k hash join plus grouped
// count through the columnar query engine.
func BenchmarkEngineHashJoin(b *testing.B) { benchkit.EngineHashJoin()(b) }

// BenchmarkEngineHashJoinParallel2 measures the same pipeline executed
// morsel-parallel with 2 workers (see engine.Query.WithParallelism).
func BenchmarkEngineHashJoinParallel2(b *testing.B) { benchkit.EngineHashJoinParallel(2)(b) }

// BenchmarkEngineHashJoinParallel4 measures the same pipeline with 4
// workers — the configuration the relative-pair CI gate holds ≥1.5x
// over the serial body on multi-core runners.
func BenchmarkEngineHashJoinParallel4(b *testing.B) { benchkit.EngineHashJoinParallel(4)(b) }

// BenchmarkEngineBuildJoin measures a build-dominated join (2k probe ×
// 64k build rows) with the serial hash-build sink.
func BenchmarkEngineBuildJoin(b *testing.B) { benchkit.EngineBuildJoin()(b) }

// BenchmarkEngineBuildJoinParallel4 measures the same join with the
// radix-partitioned parallel build at 4 workers — the configuration the
// relative-pair CI gate holds ≥1.3x over the serial sink on multi-core
// runners.
func BenchmarkEngineBuildJoinParallel4(b *testing.B) { benchkit.EngineBuildJoinParallel(4)(b) }

// BenchmarkEngineOrderBy measures a full 128k-row sort with the serial
// stable sort.
func BenchmarkEngineOrderBy(b *testing.B) { benchkit.EngineOrderBy()(b) }

// BenchmarkEngineOrderByParallel4 measures the same sort with the
// parallel merge sort (per-worker sorted runs, pairwise stable merges)
// at 4 workers.
func BenchmarkEngineOrderByParallel4(b *testing.B) { benchkit.EngineOrderByParallel(4)(b) }

// BenchmarkHaloFinder measures friends-of-friends clustering of one
// 4000-particle snapshot with a freshly constructed finder per call.
func BenchmarkHaloFinder(b *testing.B) { benchkit.HaloFinder(false)(b) }

// BenchmarkHaloFinderWarm measures the same clustering with one reused
// HaloFinder — the tracking workload's per-snapshot call pattern, where
// the grid, union-find, and component scratch persist.
func BenchmarkHaloFinderWarm(b *testing.B) { benchkit.HaloFinder(true)(b) }

// BenchmarkHaloFinderParallel4 measures warm clustering with the
// candidate-pair phase on 4 workers — deterministically identical
// output, gated ≥1.3x over the serial warm finder on multi-core runners.
func BenchmarkHaloFinderParallel4(b *testing.B) { benchkit.HaloFinderParallel(4)(b) }

// BenchmarkAstroWorkload measures one end-to-end astronomy tracking
// workload (fresh tracker, every snapshot clustered, stride-1 progenitor
// and chain queries) on a reduced universe.
func BenchmarkAstroWorkload(b *testing.B) { benchkit.AstroWorkload()(b) }

// BenchmarkAstroWorkloadParallel4 measures the same workload with the
// tracker's engine queries AND halo clustering running parallel at 4
// workers, end to end.
func BenchmarkAstroWorkloadParallel4(b *testing.B) { benchkit.AstroWorkloadParallel(4)(b) }

// BenchmarkAstronomyScenario measures pricing one full astronomy-year
// scenario (27 views, 4 quarters, 6 users) with AddOn.
func BenchmarkAstronomyScenario(b *testing.B) {
	spans := [workload.AstroUsers]workload.QuarterSpan{
		{Start: 1, Len: 4}, {Start: 1, Len: 2}, {Start: 3, Len: 2},
		{Start: 2, Len: 3}, {Start: 2, Len: 1}, {Start: 4, Len: 1},
	}
	sc := workload.Astronomy(spans, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		game := core.NewAdditiveGame(sc.Opts)
		for _, bid := range sc.Bids {
			if err := game.Submit(bid.Opt, core.OnlineBid{User: bid.User,
				Start: bid.Start, End: bid.End, Values: bid.Values}); err != nil {
				b.Fatal(err)
			}
		}
		for t := core.Slot(1); t <= sc.Horizon; t++ {
			game.AdvanceSlot()
		}
		game.Close()
	}
}
