package resilience

// The observability contract of the durable tier. Instrumentation is
// opt-in: pass an *obs.Registry in IngestConfig.Obs or ShardedConfig.Obs
// and the component registers and maintains the metrics below; leave it
// nil and every hook is a nil-receiver no-op (see internal/obs). The
// metrics are bookkeeping only — they never change admission decisions,
// settlement order, or a single journal byte (property-tested in
// obs_test.go), so an instrumented tier is byte-identical to a bare one.
//
// Metric names, by emitting layer (the operator-facing table with units
// and alert guidance is docs/metrics.md):
//
//	ingest (bounded-queue front end, Ingest):
//	  ingest.accepted / ingest.rejected / ingest.expired /
//	  ingest.overloaded / ingest.advanced   counters mirroring Counters
//	  ingest.queue_highwater                peak queue depth observed at admission
//	  ingest.apply_ns                       per-operation apply latency histogram
//
//	shard (each partition of a ShardedService; <i> is the shard index):
//	  shard<i>.accepted / .rejected / .overloaded / .read_only /
//	  .unavailable / .settled / .wedged     counters mirroring ShardCounters
//	  shard<i>.batch_highwater              peak between-slots batch length
//	  shard<i>.journal_write_ns             per-record journal write latency
//	                                        (the fsync latency on a FileLog)
//
//	tier (the ShardedService aggregate):
//	  tier.accepted / .rejected / .overloaded / .read_only /
//	  .unavailable / .settled / .wedged     sums of the per-shard counters
//	  tier.advances                         successful slot settlements
//	  tier.advance_ns                       AdvanceSlot wall latency histogram
//	                                        (drain + markers + fold + settle)
//
//	transport (the TCP shard client, internal/resilience/transport,
//	when ClientConfig.Obs is set; <i> is the shard index):
//	  shard<i>.net_requests                 requests put on the wire
//	  shard<i>.net_failures                 calls that ended unavailable
//	  shard<i>.net_retries                  attempts after the first
//	  shard<i>.net_redials                  reconnects after a broken conn
//	  shard<i>.net_stray_replies            replies with no waiting call
//	                                        (late, duplicated, reordered)
//	  shard<i>.net_breaker_open             circuit-breaker trips to open
//	  shard<i>.net_rtt_ns                   per-call round-trip latency
//
// A standalone JournaledService is instrumented the same way the sharded
// tier instruments its shards: wrap the journal target in an
// obs.TimedWriter before NewJournaledService to observe write latency.

import (
	"fmt"

	"sharedopt/internal/obs"
)

// classMetrics is one accounting class set — the seven outcome counters
// a shard and the tier aggregate both maintain. The zero value (all nil)
// is the disabled form.
type classMetrics struct {
	accepted    *obs.Counter
	rejected    *obs.Counter
	overloaded  *obs.Counter
	readOnly    *obs.Counter
	unavailable *obs.Counter
	settled     *obs.Counter
	wedged      *obs.Counter
}

// newClassMetrics registers the seven outcome counters under prefix
// ("shard3" or "tier"). A nil registry yields the disabled (all-nil)
// set.
func newClassMetrics(reg *obs.Registry, prefix string) classMetrics {
	return classMetrics{
		accepted:    reg.Counter(prefix + ".accepted"),
		rejected:    reg.Counter(prefix + ".rejected"),
		overloaded:  reg.Counter(prefix + ".overloaded"),
		readOnly:    reg.Counter(prefix + ".read_only"),
		unavailable: reg.Counter(prefix + ".unavailable"),
		settled:     reg.Counter(prefix + ".settled"),
		wedged:      reg.Counter(prefix + ".wedged"),
	}
}

// shardMetrics is one shard's full metric set.
type shardMetrics struct {
	classMetrics
	batchHigh *obs.MaxGauge
}

// newShardMetrics registers shard i's metrics.
func newShardMetrics(reg *obs.Registry, i int) shardMetrics {
	prefix := fmt.Sprintf("shard%d", i)
	return shardMetrics{
		classMetrics: newClassMetrics(reg, prefix),
		batchHigh:    reg.MaxGauge(prefix + ".batch_highwater"),
	}
}

// tierMetrics is the ShardedService-level aggregate metric set.
type tierMetrics struct {
	classMetrics
	advances  *obs.Counter
	advanceNs *obs.Histogram
}

// newTierMetrics registers the tier aggregates.
func newTierMetrics(reg *obs.Registry) tierMetrics {
	return tierMetrics{
		classMetrics: newClassMetrics(reg, "tier"),
		advances:     reg.Counter("tier.advances"),
		advanceNs:    reg.Histogram("tier.advance_ns", nil),
	}
}

// ingestMetrics is the Ingest front end's metric set.
type ingestMetrics struct {
	accepted   *obs.Counter
	rejected   *obs.Counter
	expired    *obs.Counter
	overloaded *obs.Counter
	advanced   *obs.Counter
	queueHigh  *obs.MaxGauge
	applyNs    *obs.Histogram
}

// newIngestMetrics registers the front end's metrics.
func newIngestMetrics(reg *obs.Registry) ingestMetrics {
	return ingestMetrics{
		accepted:   reg.Counter("ingest.accepted"),
		rejected:   reg.Counter("ingest.rejected"),
		expired:    reg.Counter("ingest.expired"),
		overloaded: reg.Counter("ingest.overloaded"),
		advanced:   reg.Counter("ingest.advanced"),
		queueHigh:  reg.MaxGauge("ingest.queue_highwater"),
		applyNs:    reg.Histogram("ingest.apply_ns", nil),
	}
}
