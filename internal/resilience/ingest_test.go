package resilience

import (
	"context"
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"sharedopt"
	"sharedopt/internal/core"
	"sharedopt/internal/econ"
	"sharedopt/internal/stats"
)

func newIngestFixture(t *testing.T, queue int, hook func()) (*Ingest, *JournaledService, *MemLog) {
	t.Helper()
	catalog := []sharedopt.Optimization{
		{ID: 1, Cost: econ.FromDollars(10)},
		{ID: 2, Cost: econ.FromDollars(6)},
	}
	var m MemLog
	js, err := NewJournaledService(sharedopt.Additive, catalog, 6, &m)
	if err != nil {
		t.Fatal(err)
	}
	in := NewIngest(js, IngestConfig{Queue: queue, ApplyHook: hook})
	t.Cleanup(in.Close)
	return in, js, &m
}

// TestIngestSaturationExactAccounting drives more concurrent submissions
// than the queue can hold while the worker is stalled at a gate. Every
// submission must be accounted for — applied, mechanism-rejected, or
// ErrOverloaded — with nothing silently dropped, the journal must hold
// exactly config + accepted records, and after release every accepted
// user must be invoiced.
func TestIngestSaturationExactAccounting(t *testing.T) {
	const queue = 4
	const submitters = 32
	gate := make(chan struct{})
	var gateOnce sync.Once
	hook := func() { <-gate }
	in, js, m := newIngestFixture(t, queue, hook)
	defer gateOnce.Do(func() { close(gate) })

	var wg sync.WaitGroup
	var mu sync.Mutex
	var accepted, overloaded, rejected []core.UserID
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(u core.UserID) {
			defer wg.Done()
			bid := core.OnlineBid{User: u, Start: 1, End: 1, Values: []econ.Money{econ.FromDollars(20)}}
			if u%8 == 0 { // deliberately invalid: horizon overrun
				bid.End = 99
				bid.Values = nil
			}
			err := in.SubmitAdditive(1, bid)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				accepted = append(accepted, u)
			case errors.Is(err, ErrOverloaded):
				overloaded = append(overloaded, u)
			default:
				rejected = append(rejected, u)
			}
		}(core.UserID(i + 1))
	}

	// Wait until the queue is saturated: the worker is parked at the
	// gate holding one op, the queue holds `queue` more, and everyone
	// else has bounced with ErrOverloaded.
	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		n := len(overloaded)
		mu.Unlock()
		if n >= submitters-queue-1 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("queue never saturated: %d overloaded", n)
		case <-time.After(time.Millisecond):
		}
	}
	gateOnce.Do(func() { close(gate) })
	wg.Wait()

	if got := len(accepted) + len(overloaded) + len(rejected); got != submitters {
		t.Fatalf("accounting leak: %d+%d+%d = %d of %d submissions",
			len(accepted), len(overloaded), len(rejected), got, submitters)
	}
	st := in.Stats()
	if st.Accepted != uint64(len(accepted)) || st.Overloaded != uint64(len(overloaded)) ||
		st.Rejected != uint64(len(rejected)) {
		t.Fatalf("counters %+v disagree with observed %d/%d/%d",
			st, len(accepted), len(overloaded), len(rejected))
	}
	if len(overloaded) == 0 {
		t.Fatal("saturation test produced no ErrOverloaded")
	}
	if len(accepted) == 0 {
		t.Fatal("saturation test accepted nothing")
	}

	// Journal: one config record plus exactly one record per accepted bid.
	recs, _, torn := ReadJournal(m.Bytes())
	if torn {
		t.Fatal("journal torn")
	}
	if len(recs) != 1+len(accepted) {
		t.Fatalf("journal has %d records, want 1 config + %d accepted", len(recs), len(accepted))
	}

	// Advance past slot 1 and settle: every accepted user is invoiced.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := in.AdvanceSlot(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := in.ClosePeriod(ctx); err != nil {
		t.Fatal(err)
	}
	inv := js.Invoices()
	for _, u := range accepted {
		if _, ok := inv[u]; !ok {
			t.Fatalf("accepted user %d has no invoice", u)
		}
	}
	for _, u := range overloaded {
		if _, ok := inv[u]; ok {
			t.Fatalf("overloaded user %d was invoiced", u)
		}
	}
}

// TestIngestOpenLoopArrivals replays a seeded Poisson schedule of valid
// submissions with a roomy queue: all must be accepted, in an order the
// journal fully captures, and recovery of that journal reproduces the
// service state.
func TestIngestOpenLoopArrivals(t *testing.T) {
	const n = 40
	in, js, m := newIngestFixture(t, 64, nil)
	r := stats.NewRNG(7)
	gaps := stats.Interarrivals(r, n, float64(50*time.Microsecond))
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		time.Sleep(time.Duration(gaps[i]))
		wg.Add(1)
		go func(u core.UserID) {
			defer wg.Done()
			if err := in.SubmitAdditive(2, core.OnlineBid{
				User: u, Start: 1, End: 1, Values: []econ.Money{econ.FromDollars(1)},
			}); err != nil {
				t.Errorf("user %d: %v", u, err)
			}
		}(core.UserID(i + 1))
	}
	wg.Wait()
	st := in.Stats()
	if st.Accepted != n || st.Overloaded != 0 || st.Rejected != 0 {
		t.Fatalf("counters = %+v, want %d accepted only", st, n)
	}
	recs, _, torn := ReadJournal(m.Bytes())
	if torn || len(recs) != n+1 {
		t.Fatalf("journal: %d records, torn=%v; want %d", len(recs), torn, n+1)
	}
	rec, err := RecoverService(recs, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := snapshotService(rec.Service()), snapshotService(js.Service()); got != want {
		t.Fatalf("recovered state diverged\n--- recovered ---\n%s--- live ---\n%s", got, want)
	}
}

// TestIngestAdvanceDeadline parks the worker and lets an AdvanceSlot
// deadline fire while the operation is still queued: the caller gets the
// context error, the worker later skips the expired op, and the slot is
// NOT advanced.
func TestIngestAdvanceDeadline(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{}, 8)
	var once sync.Once
	in, js, _ := newIngestFixture(t, 4, func() { entered <- struct{}{}; <-gate })
	defer once.Do(func() { close(gate) })

	// Park the worker on a bid so the advance stays queued.
	go in.SubmitAdditive(1, core.OnlineBid{
		User: 1, Start: 1, End: 1, Values: []econ.Money{econ.Dollar},
	})
	<-entered // the worker is now provably holding the bid, not the advance
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := in.AdvanceSlot(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("AdvanceSlot past deadline: %v", err)
	}
	once.Do(func() { close(gate) })
	in.Close() // drains the queue, including the expired advance
	st := in.Stats()
	if st.Expired == 0 {
		t.Fatal("expired advance not counted")
	}
	if st.Advanced != 0 || js.Now() != 0 {
		t.Fatalf("expired advance was applied: advanced=%d now=%d", st.Advanced, js.Now())
	}
}

// TestIngestClosed verifies every entry point fails with ErrClosed after
// Close, and that Close is idempotent.
func TestIngestClosed(t *testing.T) {
	in, _, _ := newIngestFixture(t, 4, nil)
	in.Close()
	in.Close()
	bid := core.OnlineBid{User: 1, Start: 1, End: 1, Values: []econ.Money{econ.Dollar}}
	if err := in.SubmitAdditive(1, bid); !errors.Is(err, ErrClosed) {
		t.Fatalf("SubmitAdditive after close: %v", err)
	}
	if err := in.SubmitSubstitutive(core.OnlineSubstBid{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("SubmitSubstitutive after close: %v", err)
	}
	if _, err := in.AdvanceSlot(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("AdvanceSlot after close: %v", err)
	}
	if _, err := in.ClosePeriod(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("ClosePeriod after close: %v", err)
	}
}

// TestIngestSerializesArrivalOrder floods concurrent bids through a
// single-slot workload twice with the same seed: the journal's record
// order IS the applied order, so recovering both journals must agree
// with their own live runs even though goroutine interleavings differ.
func TestIngestSerializesArrivalOrder(t *testing.T) {
	for round := 0; round < 2; round++ {
		in, js, m := newIngestFixture(t, 64, nil)
		var wg sync.WaitGroup
		for i := 0; i < 24; i++ {
			wg.Add(1)
			go func(u core.UserID) {
				defer wg.Done()
				in.SubmitAdditive(1, core.OnlineBid{
					User: u, Start: 1, End: 2,
					Values: []econ.Money{econ.FromDollars(7), econ.FromDollars(7)},
				})
			}(core.UserID(i + 1))
		}
		wg.Wait()
		ctx := context.Background()
		if _, err := in.AdvanceSlot(ctx); err != nil {
			t.Fatal(err)
		}
		recs, _, torn := ReadJournal(m.Bytes())
		if torn {
			t.Fatal("journal torn")
		}
		rec, err := RecoverService(recs, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := snapshotService(rec.Service()), snapshotService(js.Service()); got != want {
			t.Fatalf("round %d: replay of serialized order diverged\n%s\nvs\n%s", round, got, want)
		}
		in.Close()
	}
}
