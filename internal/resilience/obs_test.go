package resilience

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"reflect"
	"testing"

	"sharedopt"
	"sharedopt/internal/core"
	"sharedopt/internal/econ"
	"sharedopt/internal/obs"
	"sharedopt/internal/stats"
)

// driveShardedScript runs a fixed seeded workload — submissions, a few
// settlements, duplicates, an overload burst against a tiny batch bound,
// and a final close — against a fresh sharded tier, returning the
// service, its journals, and the client-side outcome tally.
func driveShardedScript(t *testing.T, shards int, reg *obs.Registry) (*ShardedService, []*MemLog, map[string]int) {
	t.Helper()
	r := stats.NewRNG(99)
	logs := make([]*MemLog, shards)
	writers := make([]io.Writer, shards)
	for i := range writers {
		logs[i] = new(MemLog)
		writers[i] = logs[i]
	}
	catalog := []sharedopt.Optimization{{ID: 1, Cost: econ.FromDollars(4)}}
	ss, err := NewShardedService(sharedopt.Additive, catalog, 6, writers,
		ShardedConfig{MaxBatch: 8, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	tally := map[string]int{}
	submit := func(u core.UserID, slot core.Slot) {
		err := ss.SubmitAdditiveBid(1, core.OnlineBid{
			User: u, Start: slot, End: slot,
			Values: []econ.Money{econ.FromCents(int64(50 + r.Intn(200)))},
		})
		switch {
		case err == nil:
			tally["accepted"]++
		case IsOverloaded(err):
			tally["overloaded"]++
		default:
			tally["rejected"]++
		}
	}
	dup := core.OnlineBid{User: 1, Start: 1, End: 1,
		Values: []econ.Money{econ.FromCents(117)}}
	if err := ss.SubmitAdditiveBid(1, dup); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	tally["accepted"]++
	// An idempotent duplicate: journaled once, counted once.
	if err := ss.SubmitAdditiveBid(1, dup); err != nil {
		t.Fatalf("duplicate submit: %v", err)
	}
	u := core.UserID(1)
	for slot := core.Slot(1); slot <= 3; slot++ {
		for k := 0; k < 30; k++ {
			u++
			submit(u, slot)
		}
		// One retroactive bid per later slot (mechanism-rejected).
		if slot > 1 {
			submit(u, 1)
		}
		if _, err := ss.AdvanceSlot(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ss.ClosePeriod(); err != nil {
		t.Fatal(err)
	}
	return ss, logs, tally
}

// IsOverloaded reports whether err wraps ErrOverloaded (test helper
// mirroring the retry contract's check).
func IsOverloaded(err error) bool { return err != nil && Retryable(err) }

// Instrumentation must be pure bookkeeping: a sharded run with a
// registry attached produces byte-identical journals, invoices, and
// counters to the same run without one. This is the property that keeps
// figure CSVs and recovery behavior out of observability's blast radius
// — metrics can never change what is durable.
func TestObsChangesNoJournalBytes(t *testing.T) {
	for _, shards := range []int{1, 3} {
		bare, bareLogs, bareTally := driveShardedScript(t, shards, nil)
		inst, instLogs, instTally := driveShardedScript(t, shards, obs.NewRegistry())
		for i := range bareLogs {
			if !bytes.Equal(bareLogs[i].Bytes(), instLogs[i].Bytes()) {
				t.Fatalf("shards=%d: journal %d differs with obs attached", shards, i)
			}
		}
		if !reflect.DeepEqual(bare.Invoices(), inst.Invoices()) {
			t.Fatalf("shards=%d: invoices differ with obs attached", shards)
		}
		if !reflect.DeepEqual(bareTally, instTally) {
			t.Fatalf("shards=%d: client outcomes differ: %v vs %v", shards, bareTally, instTally)
		}
		if !reflect.DeepEqual(bare.ShardStats(), inst.ShardStats()) {
			t.Fatalf("shards=%d: shard counters differ with obs attached", shards)
		}
	}
}

// The obs counters must mirror ShardCounters exactly, per shard and in
// the tier aggregate, and reconcile with the client-side tally.
func TestShardedObsMirrorsCounters(t *testing.T) {
	reg := obs.NewRegistry()
	const shards = 3
	ss, _, tally := driveShardedScript(t, shards, reg)
	snap := reg.Snapshot()
	agg := ShardCounters{}
	for i, sc := range ss.ShardStats() {
		prefix := fmt.Sprintf("shard%d", i)
		for name, want := range map[string]uint64{
			prefix + ".accepted":   sc.Accepted,
			prefix + ".rejected":   sc.Rejected,
			prefix + ".overloaded": sc.Overloaded,
			prefix + ".read_only":  sc.ReadOnly,
			prefix + ".settled":    sc.Settled,
			prefix + ".wedged":     0,
		} {
			if got := snap.Counters[name]; got != want {
				t.Errorf("%s = %d, want %d", name, got, want)
			}
		}
		agg.Accepted += sc.Accepted
		agg.Rejected += sc.Rejected
		agg.Overloaded += sc.Overloaded
		agg.Settled += sc.Settled
	}
	for name, want := range map[string]uint64{
		"tier.accepted":   agg.Accepted,
		"tier.rejected":   agg.Rejected,
		"tier.overloaded": agg.Overloaded,
		"tier.settled":    agg.Settled,
		"tier.advances":   3,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	// The tier's counters must reconcile with the client's own tally.
	if agg.Accepted != uint64(tally["accepted"]) ||
		agg.Rejected != uint64(tally["rejected"]) ||
		agg.Overloaded != uint64(tally["overloaded"]) {
		t.Fatalf("tier %+v does not reconcile with client tally %v", agg, tally)
	}
	// Everything accepted was settled by the close.
	if agg.Settled != agg.Accepted {
		t.Fatalf("settled %d != accepted %d after close", agg.Settled, agg.Accepted)
	}
	// Latency histograms observed every settlement and journal write.
	if n := snap.Hists["tier.advance_ns"].Count; n != 3 {
		t.Errorf("tier.advance_ns observed %d settlements, want 3", n)
	}
	for i := 0; i < shards; i++ {
		name := fmt.Sprintf("shard%d.journal_write_ns", i)
		h, ok := snap.Hists[name]
		if !ok || h.Count == 0 {
			t.Errorf("%s missing or empty", name)
		}
	}
	// The batch high-water marks never exceed the configured bound.
	for i := 0; i < shards; i++ {
		if hw := snap.Gauges[fmt.Sprintf("shard%d.batch_highwater", i)]; hw == 0 || hw > 8 {
			t.Errorf("shard%d.batch_highwater = %d, want in (0, 8]", i, hw)
		}
	}
}

// A wedged shard increments the wedged counters exactly once and keeps
// counting read-only turn-aways.
func TestShardedObsWedgeCounting(t *testing.T) {
	reg := obs.NewRegistry()
	catalog := []sharedopt.Optimization{{ID: 1, Cost: econ.FromDollars(2)}}
	fw := NewFaultWriter(new(MemLog), FaultPlan{Kind: FaultErr, Record: 2})
	ss, err := NewShardedService(sharedopt.Additive, catalog, 4,
		[]io.Writer{fw}, ShardedConfig{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	submit := func(u core.UserID) error {
		return ss.SubmitAdditiveBid(1, core.OnlineBid{User: u, Start: 1, End: 1,
			Values: []econ.Money{econ.Dollar}})
	}
	if err := submit(1); err != nil {
		t.Fatal(err)
	}
	if err := submit(2); err == nil {
		t.Fatal("journal fault must surface")
	}
	if err := submit(3); err == nil {
		t.Fatal("wedged shard must refuse")
	}
	snap := reg.Snapshot()
	if got := snap.Counters["shard0.wedged"]; got != 1 {
		t.Fatalf("shard0.wedged = %d, want 1", got)
	}
	if got := snap.Counters["tier.wedged"]; got != 1 {
		t.Fatalf("tier.wedged = %d, want 1", got)
	}
	if got := snap.Counters["shard0.read_only"]; got != 2 {
		t.Fatalf("shard0.read_only = %d, want 2 (the faulted accept and the refusal)", got)
	}
}

// The ingest front end's obs counters mirror Counters exactly, and the
// queue high-water mark and apply-latency histogram populate.
func TestIngestObsMirrorsCounters(t *testing.T) {
	reg := obs.NewRegistry()
	var m MemLog
	js, err := NewJournaledService(sharedopt.Additive,
		[]sharedopt.Optimization{{ID: 1, Cost: econ.FromDollars(3)}}, 4, &m)
	if err != nil {
		t.Fatal(err)
	}
	in := NewIngest(js, IngestConfig{Queue: 4, Obs: reg})
	defer in.Close()
	for u := core.UserID(1); u <= 6; u++ {
		err := in.SubmitAdditive(1, core.OnlineBid{User: u, Start: 1, End: 1,
			Values: []econ.Money{econ.Dollar}})
		for Retryable(err) {
			err = in.SubmitAdditive(1, core.OnlineBid{User: u, Start: 1, End: 1,
				Values: []econ.Money{econ.Dollar}})
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	// One mechanism rejection: a retroactive bid after an advance.
	if _, err := in.AdvanceSlot(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := in.SubmitAdditive(1, core.OnlineBid{User: 99, Start: 1, End: 1,
		Values: []econ.Money{econ.Dollar}}); err == nil {
		t.Fatal("retroactive bid must be rejected")
	}
	st := in.Stats()
	snap := reg.Snapshot()
	for name, want := range map[string]uint64{
		"ingest.accepted":   st.Accepted,
		"ingest.rejected":   st.Rejected,
		"ingest.expired":    st.Expired,
		"ingest.overloaded": st.Overloaded,
		"ingest.advanced":   st.Advanced,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d (Counters %+v)", name, got, want, st)
		}
	}
	applied := st.Accepted + st.Rejected + st.Advanced
	if n := snap.Hists["ingest.apply_ns"].Count; n != uint64(applied) {
		t.Errorf("ingest.apply_ns observed %d ops, want %d", n, applied)
	}
	// The high-water mark samples depth after admission; the worker may
	// already have drained the op, so 0 is legal — only the bound is not.
	if hw := snap.Gauges["ingest.queue_highwater"]; hw > 4 {
		t.Errorf("ingest.queue_highwater = %d, want <= queue depth 4", hw)
	}
}
