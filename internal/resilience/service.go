package resilience

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"sharedopt"
	"sharedopt/internal/core"
	"sharedopt/internal/econ"
)

// JournaledService wraps a sharedopt.Service behind a write-ahead-style
// bid journal: every accepted mutation (bid, slot advance, close) is
// appended as a checksummed record after it is applied, so a recovered
// replica replays the exact accepted sequence and reproduces invoices,
// revenue, cost and implemented state byte for byte.
//
// The mutation contract is fail-stop: a mutation returns nil only if it
// was both applied and journaled. If the journal write fails, the error
// is returned, the in-memory state may be one mutation ahead of the log,
// and every later mutation fails with ErrJournalBroken — the service
// must be discarded and rebuilt with RecoverService, which restores
// exactly the journaled prefix.
//
// Submissions are idempotent: resubmitting a bid identical to one
// already accepted returns nil without journaling or applying anything,
// which is what makes blind client retries (see Retry) safe.
type JournaledService struct {
	mu  sync.Mutex
	svc *sharedopt.Service
	j   *Journal
	// seen maps the fingerprint of each accepted submission to the
	// sequence number its journal record got, so a duplicate delivery —
	// local or over the network — can be acknowledged with the original
	// record's identity.
	seen map[string]uint64
}

// gameName maps a kind to its journaled name.
func gameName(kind sharedopt.GameKind) string { return kind.String() }

// gameKind parses a journaled game name.
func gameKind(name string) (sharedopt.GameKind, error) {
	switch name {
	case sharedopt.Additive.String():
		return sharedopt.Additive, nil
	case sharedopt.Substitutive.String():
		return sharedopt.Substitutive, nil
	default:
		return 0, fmt.Errorf("resilience: unknown game kind %q", name)
	}
}

// optCosts converts a catalog to its journaled form.
func optCosts(opts []sharedopt.Optimization) []OptCost {
	out := make([]OptCost, len(opts))
	for i, o := range opts {
		out[i] = OptCost{ID: o.ID, Cost: o.Cost}
	}
	return out
}

// catalogOf converts journaled costs back to a catalog.
func catalogOf(opts []OptCost) []sharedopt.Optimization {
	out := make([]sharedopt.Optimization, len(opts))
	for i, o := range opts {
		out[i] = sharedopt.Optimization{ID: o.ID, Cost: o.Cost}
	}
	return out
}

// newService constructs the underlying service for a kind.
func newService(kind sharedopt.GameKind, opts []sharedopt.Optimization, horizon sharedopt.Slot) (*sharedopt.Service, error) {
	if kind == sharedopt.Additive {
		return sharedopt.NewAdditiveService(opts, horizon)
	}
	return sharedopt.NewSubstitutiveService(opts, horizon)
}

// NewJournaledService opens a fresh journaled pricing period on w,
// writing the service-config record before returning. w is the durable
// log target — a *MemLog, a *FileLog, or any io.Writer whose Write is
// atomic per call.
func NewJournaledService(kind sharedopt.GameKind, opts []sharedopt.Optimization, horizon sharedopt.Slot, w io.Writer) (*JournaledService, error) {
	if kind != sharedopt.Additive && kind != sharedopt.Substitutive {
		return nil, fmt.Errorf("resilience: unknown game kind %v", kind)
	}
	svc, err := newService(kind, opts, horizon)
	if err != nil {
		return nil, err
	}
	j := NewJournal(w)
	if err := j.Append(Record{
		Kind:    KindServiceConfig,
		Game:    gameName(kind),
		Horizon: horizon,
		Opts:    optCosts(opts),
	}); err != nil {
		return nil, err
	}
	return newJournaledOn(svc, j), nil
}

// newJournaledOn wraps an existing service over an existing journal —
// the shared path for recovery and for period-manager periods.
func newJournaledOn(svc *sharedopt.Service, j *Journal) *JournaledService {
	return &JournaledService{svc: svc, j: j, seen: make(map[string]uint64)}
}

// additiveBidRecord builds the journal record of an additive submission.
func additiveBidRecord(opt core.OptID, bid core.OnlineBid) Record {
	return Record{
		Kind: KindAdditiveBid, User: bid.User, Opt: opt,
		Start: bid.Start, End: bid.End,
		Values: append([]econ.Money(nil), bid.Values...),
	}
}

// substBidRecord builds the journal record of a substitutive submission.
func substBidRecord(bid core.OnlineSubstBid) Record {
	return Record{
		Kind: KindSubstBid, User: bid.User,
		Set:   append([]core.OptID(nil), bid.Opts...),
		Start: bid.Start, End: bid.End,
		Values: append([]econ.Money(nil), bid.Values...),
	}
}

// SubmitAdditiveBid journals and applies one additive bid. A submission
// byte-identical to an already-accepted one is a no-op returning nil.
func (s *JournaledService) SubmitAdditiveBid(opt core.OptID, bid core.OnlineBid) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := additiveBidRecord(opt, bid)
	_, _, err := s.submitLocked(rec, func() error { return s.svc.SubmitAdditiveBid(opt, bid) })
	return err
}

// SubmitSubstitutiveBid journals and applies one substitutive bid, with
// the same idempotency contract as SubmitAdditiveBid.
func (s *JournaledService) SubmitSubstitutiveBid(bid core.OnlineSubstBid) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := substBidRecord(bid)
	_, _, err := s.submitLocked(rec, func() error { return s.svc.SubmitSubstitutiveBid(bid) })
	return err
}

// SubmitRecord applies one bid record arriving from the transport layer,
// dispatching on rec.Kind. The returned seq is the journal sequence the
// submission holds — the original one when the delivery is a duplicate
// (fresh == false), so a retried or duplicated network delivery is
// acknowledged with the identity of the record it deduplicated against.
func (s *JournaledService) SubmitRecord(rec Record) (seq uint64, fresh bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch rec.Kind {
	case KindAdditiveBid:
		bid := core.OnlineBid{User: rec.User, Start: rec.Start, End: rec.End, Values: rec.Values}
		// Rebuild the canonical record so the fingerprint is identical to
		// the one a local submission of the same bid would compute.
		return s.submitLocked(additiveBidRecord(rec.Opt, bid), func() error {
			return s.svc.SubmitAdditiveBid(rec.Opt, bid)
		})
	case KindSubstBid:
		bid := core.OnlineSubstBid{User: rec.User, Opts: rec.Set, Start: rec.Start, End: rec.End, Values: rec.Values}
		return s.submitLocked(substBidRecord(bid), func() error {
			return s.svc.SubmitSubstitutiveBid(bid)
		})
	default:
		return 0, false, fmt.Errorf("resilience: submit of non-bid record kind %s", rec.Kind)
	}
}

// submitLocked runs the accept-then-journal protocol for one submission:
// duplicates short-circuit to success with the original record's seq,
// rejected bids are never journaled, and a journal failure is returned
// (wedging all later mutations) so an unjournaled accept can never be
// acknowledged.
func (s *JournaledService) submitLocked(rec Record, apply func() error) (seq uint64, fresh bool, err error) {
	if err := s.j.Err(); err != nil {
		return 0, false, fmt.Errorf("%w: %w", ErrJournalBroken, err)
	}
	fp := rec.fingerprint()
	if prev, ok := s.seen[fp]; ok {
		return prev, false, nil
	}
	if err := apply(); err != nil {
		return 0, false, err
	}
	if err := s.j.Append(rec); err != nil {
		return 0, false, err
	}
	// Append assigned the record the journal's next sequence number;
	// read it back so the acknowledgment names the durable position.
	seq = s.j.Seq()
	s.seen[fp] = seq
	return seq, true, nil
}

// AdvanceSlot journals and processes the next billing slot.
func (s *JournaledService) AdvanceSlot() (core.SlotReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.j.Err(); err != nil {
		return core.SlotReport{}, fmt.Errorf("%w: %w", ErrJournalBroken, err)
	}
	report, err := s.svc.AdvanceSlot()
	if err != nil {
		return core.SlotReport{}, err
	}
	if err := s.j.Append(Record{Kind: KindAdvanceSlot}); err != nil {
		return core.SlotReport{}, err
	}
	return report, nil
}

// ClosePeriod journals and settles the period early. Like the underlying
// service it is idempotent; repeat closes are not journaled again.
func (s *JournaledService) ClosePeriod() (map[core.UserID]econ.Money, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.j.Err(); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrJournalBroken, err)
	}
	if s.svc.Closed() {
		return s.svc.ClosePeriod() // no state change, nothing to journal
	}
	settled, err := s.svc.ClosePeriod()
	if err != nil {
		return nil, err
	}
	if err := s.j.Append(Record{Kind: KindClosePeriod}); err != nil {
		return nil, err
	}
	return settled, nil
}

// Service returns the wrapped service for read-only inspection. Mutating
// it directly bypasses the journal and voids the recovery guarantee.
func (s *JournaledService) Service() *sharedopt.Service { return s.svc }

// Kind returns the service's valuation model.
func (s *JournaledService) Kind() sharedopt.GameKind { return s.svc.Kind() }

// Horizon returns the period length in slots.
func (s *JournaledService) Horizon() sharedopt.Slot { return s.svc.Horizon() }

// Now returns the last processed slot.
func (s *JournaledService) Now() sharedopt.Slot { return s.svc.Now() }

// Closed reports whether the period has ended.
func (s *JournaledService) Closed() bool { return s.svc.Closed() }

// Invoice returns a user's settled payments, as Service.Invoice.
func (s *JournaledService) Invoice(u core.UserID) (econ.Money, bool) { return s.svc.Invoice(u) }

// Invoices returns a copy of all settled invoices.
func (s *JournaledService) Invoices() map[core.UserID]econ.Money { return s.svc.Invoices() }

// Revenue returns total payments charged so far.
func (s *JournaledService) Revenue() econ.Money { return s.svc.Revenue() }

// CostIncurred returns the summed cost of implemented optimizations.
func (s *JournaledService) CostIncurred() econ.Money { return s.svc.CostIncurred() }

// Surplus returns Revenue − CostIncurred under one lock.
func (s *JournaledService) Surplus() econ.Money { return s.svc.Surplus() }

// ImplementedOpts returns the implemented optimizations in ID order.
func (s *JournaledService) ImplementedOpts() []core.OptID { return s.svc.ImplementedOpts() }

// Broken returns the journal failure wedging this service, or nil.
func (s *JournaledService) Broken() error { return s.j.Err() }

// errCorrupt wraps a replay failure: the journal holds only accepted
// mutations, so a record the deterministic replay rejects means the log
// (not the mechanism) is damaged.
func errCorrupt(rec Record, err error) error {
	return fmt.Errorf("resilience: corrupt journal: record %d (%s) failed replay: %w", rec.Seq, rec.Kind, err)
}

// applyRecord replays one mutation record into the service, updating the
// idempotency fingerprints exactly as the original accept did.
func (s *JournaledService) applyRecord(rec Record) error {
	switch rec.Kind {
	case KindAdditiveBid:
		bid := core.OnlineBid{User: rec.User, Start: rec.Start, End: rec.End, Values: rec.Values}
		if err := s.svc.SubmitAdditiveBid(rec.Opt, bid); err != nil {
			return errCorrupt(rec, err)
		}
	case KindSubstBid:
		bid := core.OnlineSubstBid{User: rec.User, Opts: rec.Set, Start: rec.Start, End: rec.End, Values: rec.Values}
		if err := s.svc.SubmitSubstitutiveBid(bid); err != nil {
			return errCorrupt(rec, err)
		}
	case KindAdvanceSlot:
		if _, err := s.svc.AdvanceSlot(); err != nil {
			return errCorrupt(rec, err)
		}
		return nil
	case KindClosePeriod:
		if _, err := s.svc.ClosePeriod(); err != nil {
			return errCorrupt(rec, err)
		}
		return nil
	default:
		return fmt.Errorf("resilience: corrupt journal: unexpected %s record %d", rec.Kind, rec.Seq)
	}
	s.seen[rec.fingerprint()] = rec.Seq
	return nil
}

// ErrEmptyJournal is returned by Recover* when the journal holds no
// config record to rebuild from.
var ErrEmptyJournal = errors.New("resilience: empty journal")

// RecoverService rebuilds a journaled service by replaying recs — the
// valid record prefix from ReadJournal or OpenFileLog — and resumes
// appending to w at the next sequence number. Because the journal holds
// exactly the accepted mutations in accepted order and every mechanism
// is deterministic, the recovered invoices, revenue, cost and
// implemented state are byte-identical to the pre-crash service's.
//
// w must be positioned after the last valid record: the truncated
// original log (OpenFileLog does this; MemLog.Truncate for tests), or
// any fresh writer if the journal content is being migrated.
func RecoverService(recs []Record, w io.Writer) (*JournaledService, error) {
	if len(recs) == 0 {
		return nil, ErrEmptyJournal
	}
	cfg := recs[0]
	if cfg.Kind != KindServiceConfig {
		return nil, fmt.Errorf("resilience: journal opens with %s record, want %s", cfg.Kind, KindServiceConfig)
	}
	kind, err := gameKind(cfg.Game)
	if err != nil {
		return nil, err
	}
	svc, err := newService(kind, catalogOf(cfg.Opts), cfg.Horizon)
	if err != nil {
		return nil, fmt.Errorf("resilience: corrupt journal: config rejected: %w", err)
	}
	js := newJournaledOn(svc, NewJournalAt(w, recs[len(recs)-1].Seq))
	for _, rec := range recs[1:] {
		if err := js.applyRecord(rec); err != nil {
			return nil, err
		}
	}
	return js, nil
}
