package resilience

import (
	"errors"
	"fmt"
	"io"
	"testing"

	"sharedopt"
	"sharedopt/internal/core"
	"sharedopt/internal/econ"
	"sharedopt/internal/stats"
)

// faultFixture builds a journaled service writing through a FaultWriter
// into a MemLog.
func faultFixture(t *testing.T, plan FaultPlan) (*JournaledService, *FaultWriter, *MemLog) {
	t.Helper()
	var m MemLog
	fw := NewFaultWriter(&m, plan)
	js, err := NewJournaledService(sharedopt.Additive,
		[]sharedopt.Optimization{{ID: 1, Cost: econ.FromDollars(10)}}, 4, fw)
	if err != nil {
		t.Fatal(err)
	}
	return js, fw, &m
}

func bidFor(u core.UserID) core.OnlineBid {
	return core.OnlineBid{User: u, Start: 1, End: 1, Values: []econ.Money{econ.FromDollars(3)}}
}

// TestFaultWriterEndToEnd runs each fault kind against record 2 (the
// second bid): the failing call errors, the service wedges fail-stop,
// and recovery from the surviving log yields exactly the state before
// the failed mutation — which can then continue on a fresh log.
func TestFaultWriterEndToEnd(t *testing.T) {
	wantErr := map[FaultKind]error{
		FaultErr:   ErrInjected,
		FaultShort: io.ErrShortWrite,
		FaultCrash: ErrCrashed,
	}
	for kind, want := range wantErr {
		t.Run(kind.String(), func(t *testing.T) {
			js, fw, m := faultFixture(t, FaultPlan{Kind: kind, Record: 2, Tear: 7})
			if err := js.SubmitAdditiveBid(1, bidFor(1)); err != nil {
				t.Fatal(err)
			}
			snapBefore := snapshotService(js.Service())
			err := js.SubmitAdditiveBid(1, bidFor(2))
			if !errors.Is(err, want) {
				t.Fatalf("faulted submit: got %v, want %v", err, want)
			}
			// Fail-stop: every further mutation reports the wedge.
			if err := js.SubmitAdditiveBid(1, bidFor(3)); !errors.Is(err, ErrJournalBroken) {
				t.Fatalf("submit after wedge: %v", err)
			}
			if _, err := js.AdvanceSlot(); !errors.Is(err, ErrJournalBroken) {
				t.Fatalf("advance after wedge: %v", err)
			}
			if js.Broken() == nil {
				t.Fatal("Broken() = false after wedge")
			}
			if kind == FaultCrash && !fw.Crashed() {
				t.Fatal("crash plan did not mark the writer crashed")
			}

			// Recover from whatever bytes survived: the torn record (if
			// any) is discarded and the state matches the pre-failure
			// snapshot exactly — the failed bid is gone, the first is not.
			recs, consumed, _ := ReadJournal(m.Bytes())
			var fresh MemLog
			if _, err := fresh.Write(m.Bytes()[:consumed]); err != nil {
				t.Fatal(err)
			}
			rec, err := RecoverService(recs, &fresh)
			if err != nil {
				t.Fatal(err)
			}
			if got := snapshotService(rec.Service()); got != snapBefore {
				t.Fatalf("recovered state:\n%s\nwant pre-failure state:\n%s", got, snapBefore)
			}
			// The recovered service is live: the lost bid can be resubmitted
			// and the period runs to settlement.
			if err := rec.SubmitAdditiveBid(1, bidFor(2)); err != nil {
				t.Fatalf("resubmit after recovery: %v", err)
			}
			if _, err := rec.AdvanceSlot(); err != nil {
				t.Fatal(err)
			}
			if _, err := rec.ClosePeriod(); err != nil {
				t.Fatal(err)
			}
			if rec.Surplus() < 0 {
				t.Fatalf("negative surplus after recovery: %v", rec.Surplus())
			}
		})
	}
}

// TestFaultPlanSweep drives 64 seeded plans through the same workload:
// whatever the plan does, the service either completes or wedges, and
// recovery of the surviving journal bytes always succeeds with
// non-negative surplus and every journaled bid priced.
func TestFaultPlanSweep(t *testing.T) {
	for seed := uint64(1); seed <= 64; seed++ {
		plan := RandomPlan(seed, 8)
		t.Run(fmt.Sprintf("seed=%d/%v", seed, plan), func(t *testing.T) {
			var m MemLog
			fw := NewFaultWriter(&m, plan)
			js, err := NewJournaledService(sharedopt.Additive,
				[]sharedopt.Optimization{{ID: 1, Cost: econ.FromDollars(10)}}, 4, fw)
			if err != nil {
				// The config record itself was faulted: nothing durable
				// exists and the constructor must refuse the service.
				if plan.Kind == FaultNone || plan.Record != 0 {
					t.Fatalf("constructor failed under plan %v: %v", plan, err)
				}
				return
			}
			for u := core.UserID(1); u <= 3; u++ {
				js.SubmitAdditiveBid(1, core.OnlineBid{
					User: u, Start: 1, End: 2,
					Values: []econ.Money{econ.FromDollars(4), econ.FromDollars(4)},
				})
			}
			js.AdvanceSlot()
			js.SubmitAdditiveBid(1, bidFor(9))
			js.AdvanceSlot()
			js.ClosePeriod()

			recs, _, _ := ReadJournal(m.Bytes())
			if len(recs) == 0 {
				// The config record itself was faulted; nothing to recover.
				if plan.Kind == FaultNone || plan.Record != 0 {
					t.Fatalf("empty journal under plan %v", plan)
				}
				return
			}
			rec, err := RecoverService(recs, io.Discard)
			if err != nil {
				t.Fatalf("recovery failed under plan %v: %v", plan, err)
			}
			// Mid-period the surplus may dip negative (cost is incurred at
			// implementation, revenue accrues in later slots), so settle
			// the recovered period before asserting cost recovery.
			if !rec.Closed() {
				if _, err := rec.ClosePeriod(); err != nil {
					t.Fatalf("settling recovered service under plan %v: %v", plan, err)
				}
			}
			if rec.Surplus() < 0 {
				t.Fatalf("negative settled surplus %v under plan %v", rec.Surplus(), plan)
			}
			// Every journaled (= accepted) bid is priced at settlement.
			inv := rec.Invoices()
			for _, r := range recs {
				if r.Kind == KindAdditiveBid {
					if _, ok := inv[r.User]; !ok {
						t.Fatalf("journaled bid of user %d unpriced under plan %v", r.User, plan)
					}
				}
			}
		})
	}
}

// TestRandomPlanDeterministic pins RandomPlan's seed contract.
func TestRandomPlanDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		a, b := RandomPlan(seed, 10), RandomPlan(seed, 10)
		if a != b {
			t.Fatalf("seed %d: %v != %v", seed, a, b)
		}
		if a.Kind == FaultNone && (a.Record != 0 || a.Tear != 0) {
			t.Fatalf("seed %d: no-op plan carries parameters: %v", seed, a)
		}
		if a.Record < 0 || a.Record >= 10 {
			t.Fatalf("seed %d: record %d out of range", seed, a.Record)
		}
	}
	if got := stats.NewRNG(3).Intn(4); got < 0 || got > 3 {
		t.Fatalf("RNG sanity: %d", got)
	}
}

func TestFaultKindStrings(t *testing.T) {
	cases := map[FaultKind]string{
		FaultNone:    "none",
		FaultErr:     "write-error",
		FaultShort:   "short-write",
		FaultCrash:   "crash",
		FaultKind(9): "FaultKind(9)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
	if got := (FaultPlan{}).String(); got != "none" {
		t.Errorf("zero plan renders %q", got)
	}
	if got := (FaultPlan{Kind: FaultCrash, Record: 3, Tear: 7}).String(); got != "crash@record3(tear=7)" {
		t.Errorf("crash plan renders %q", got)
	}
}

// TestRandomShardPlansDeterministic pins the per-shard schedule: same
// seed, same plans; the per-shard draws are independent (not all
// identical); and a shorter prefix of shards is NOT the prefix of a
// longer draw only if the generator says so — i.e. the sequence is a
// pure function of (seed, shards, records).
func TestRandomShardPlansDeterministic(t *testing.T) {
	a := RandomShardPlans(11, 8, 20)
	b := RandomShardPlans(11, 8, 20)
	if len(a) != 8 || len(b) != 8 {
		t.Fatalf("drew %d and %d plans, want 8", len(a), len(b))
	}
	varied := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("shard %d: %v != %v under the same seed", i, a[i], b[i])
		}
		if a[i] != a[0] {
			varied = true
		}
		if a[i].Record < 0 || a[i].Record >= 20 {
			t.Fatalf("shard %d: record %d out of range", i, a[i].Record)
		}
	}
	if !varied {
		t.Fatalf("all 8 shard plans identical: %v", a[0])
	}
	// The stream is consumed one Uint64 per shard, so a shorter draw is
	// a strict prefix of a longer one — shard i's fate does not depend
	// on how many shards exist.
	short := RandomShardPlans(11, 3, 20)
	for i := range short {
		if short[i] != a[i] {
			t.Fatalf("shard %d plan changed with shard count: %v vs %v", i, short[i], a[i])
		}
	}
}

// TestCrashGroupKillAtWrite checks the global write budget: writes are
// counted across members in arrival order, the budgeted write tears to
// exactly tear bytes on its own log, and every member fails afterward.
func TestCrashGroupKillAtWrite(t *testing.T) {
	g := NewCrashGroup()
	g.KillAtWrite(3, 5)
	var logs [2]MemLog
	w0 := NewFaultWriterInGroup(&logs[0], FaultPlan{}, g)
	w1 := NewFaultWriterInGroup(&logs[1], FaultPlan{}, g)

	payload := []byte("0123456789abcdef\n")
	// Writes 0,1,2 land in full, alternating members.
	for i, w := range []io.Writer{w0, w1, w0} {
		if n, err := w.Write(payload); err != nil || n != len(payload) {
			t.Fatalf("write %d: n=%d err=%v", i, n, err)
		}
	}
	if g.Crashed() {
		t.Fatal("group dead before its budget")
	}
	// Write 3 is the kill: 5 bytes reach w1's log, then ErrCrashed.
	n, err := w1.Write(payload)
	if !errors.Is(err, ErrCrashed) || n != 5 {
		t.Fatalf("kill write: n=%d err=%v, want 5, ErrCrashed", n, err)
	}
	if !g.Crashed() {
		t.Fatal("group alive after the kill write")
	}
	// Both members are dead now, with nothing more reaching either log.
	for i, w := range []io.Writer{w0, w1} {
		if _, err := w.Write(payload); !errors.Is(err, ErrCrashed) {
			t.Fatalf("post-mortem write on member %d: %v", i, err)
		}
	}
	if logs[0].Len() != 2*len(payload) || logs[1].Len() != len(payload)+5 {
		t.Fatalf("log lengths %d, %d after kill", logs[0].Len(), logs[1].Len())
	}
	if g.Writes() != 4 {
		t.Fatalf("group counted %d writes, want 4 (post-mortem attempts don't count)", g.Writes())
	}
}

// TestCrashGroupMemberCrashKillsAll: one member's own FaultCrash plan
// takes the whole simulated process down.
func TestCrashGroupMemberCrashKillsAll(t *testing.T) {
	g := NewCrashGroup()
	var logs [2]MemLog
	w0 := NewFaultWriterInGroup(&logs[0], FaultPlan{Kind: FaultCrash, Record: 1, Tear: 3}, g)
	w1 := NewFaultWriterInGroup(&logs[1], FaultPlan{}, g)

	payload := []byte("0123456789\n")
	if _, err := w0.Write(payload); err != nil {
		t.Fatal(err)
	}
	if _, err := w1.Write(payload); err != nil {
		t.Fatal(err)
	}
	n, err := w0.Write(payload) // w0's record 1: its FaultCrash
	if !errors.Is(err, ErrCrashed) || n != 3 {
		t.Fatalf("member crash: n=%d err=%v, want 3, ErrCrashed", n, err)
	}
	if !g.Crashed() {
		t.Fatal("member FaultCrash did not kill the group")
	}
	if _, err := w1.Write(payload); !errors.Is(err, ErrCrashed) {
		t.Fatalf("healthy member survived the group kill: %v", err)
	}
	if logs[1].Len() != len(payload) {
		t.Fatalf("bytes reached a dead member's log: %d", logs[1].Len())
	}
}
