package resilience

import (
	"errors"
	"fmt"
	"io"
	"testing"

	"sharedopt"
	"sharedopt/internal/core"
	"sharedopt/internal/econ"
	"sharedopt/internal/stats"
)

// faultFixture builds a journaled service writing through a FaultWriter
// into a MemLog.
func faultFixture(t *testing.T, plan FaultPlan) (*JournaledService, *FaultWriter, *MemLog) {
	t.Helper()
	var m MemLog
	fw := NewFaultWriter(&m, plan)
	js, err := NewJournaledService(sharedopt.Additive,
		[]sharedopt.Optimization{{ID: 1, Cost: econ.FromDollars(10)}}, 4, fw)
	if err != nil {
		t.Fatal(err)
	}
	return js, fw, &m
}

func bidFor(u core.UserID) core.OnlineBid {
	return core.OnlineBid{User: u, Start: 1, End: 1, Values: []econ.Money{econ.FromDollars(3)}}
}

// TestFaultWriterEndToEnd runs each fault kind against record 2 (the
// second bid): the failing call errors, the service wedges fail-stop,
// and recovery from the surviving log yields exactly the state before
// the failed mutation — which can then continue on a fresh log.
func TestFaultWriterEndToEnd(t *testing.T) {
	wantErr := map[FaultKind]error{
		FaultErr:   ErrInjected,
		FaultShort: io.ErrShortWrite,
		FaultCrash: ErrCrashed,
	}
	for kind, want := range wantErr {
		t.Run(kind.String(), func(t *testing.T) {
			js, fw, m := faultFixture(t, FaultPlan{Kind: kind, Record: 2, Tear: 7})
			if err := js.SubmitAdditiveBid(1, bidFor(1)); err != nil {
				t.Fatal(err)
			}
			snapBefore := snapshotService(js.Service())
			err := js.SubmitAdditiveBid(1, bidFor(2))
			if !errors.Is(err, want) {
				t.Fatalf("faulted submit: got %v, want %v", err, want)
			}
			// Fail-stop: every further mutation reports the wedge.
			if err := js.SubmitAdditiveBid(1, bidFor(3)); !errors.Is(err, ErrJournalBroken) {
				t.Fatalf("submit after wedge: %v", err)
			}
			if _, err := js.AdvanceSlot(); !errors.Is(err, ErrJournalBroken) {
				t.Fatalf("advance after wedge: %v", err)
			}
			if js.Broken() == nil {
				t.Fatal("Broken() = false after wedge")
			}
			if kind == FaultCrash && !fw.Crashed() {
				t.Fatal("crash plan did not mark the writer crashed")
			}

			// Recover from whatever bytes survived: the torn record (if
			// any) is discarded and the state matches the pre-failure
			// snapshot exactly — the failed bid is gone, the first is not.
			recs, consumed, _ := ReadJournal(m.Bytes())
			var fresh MemLog
			if _, err := fresh.Write(m.Bytes()[:consumed]); err != nil {
				t.Fatal(err)
			}
			rec, err := RecoverService(recs, &fresh)
			if err != nil {
				t.Fatal(err)
			}
			if got := snapshotService(rec.Service()); got != snapBefore {
				t.Fatalf("recovered state:\n%s\nwant pre-failure state:\n%s", got, snapBefore)
			}
			// The recovered service is live: the lost bid can be resubmitted
			// and the period runs to settlement.
			if err := rec.SubmitAdditiveBid(1, bidFor(2)); err != nil {
				t.Fatalf("resubmit after recovery: %v", err)
			}
			if _, err := rec.AdvanceSlot(); err != nil {
				t.Fatal(err)
			}
			if _, err := rec.ClosePeriod(); err != nil {
				t.Fatal(err)
			}
			if rec.Surplus() < 0 {
				t.Fatalf("negative surplus after recovery: %v", rec.Surplus())
			}
		})
	}
}

// TestFaultPlanSweep drives 64 seeded plans through the same workload:
// whatever the plan does, the service either completes or wedges, and
// recovery of the surviving journal bytes always succeeds with
// non-negative surplus and every journaled bid priced.
func TestFaultPlanSweep(t *testing.T) {
	for seed := uint64(1); seed <= 64; seed++ {
		plan := RandomPlan(seed, 8)
		t.Run(fmt.Sprintf("seed=%d/%v", seed, plan), func(t *testing.T) {
			var m MemLog
			fw := NewFaultWriter(&m, plan)
			js, err := NewJournaledService(sharedopt.Additive,
				[]sharedopt.Optimization{{ID: 1, Cost: econ.FromDollars(10)}}, 4, fw)
			if err != nil {
				// The config record itself was faulted: nothing durable
				// exists and the constructor must refuse the service.
				if plan.Kind == FaultNone || plan.Record != 0 {
					t.Fatalf("constructor failed under plan %v: %v", plan, err)
				}
				return
			}
			for u := core.UserID(1); u <= 3; u++ {
				js.SubmitAdditiveBid(1, core.OnlineBid{
					User: u, Start: 1, End: 2,
					Values: []econ.Money{econ.FromDollars(4), econ.FromDollars(4)},
				})
			}
			js.AdvanceSlot()
			js.SubmitAdditiveBid(1, bidFor(9))
			js.AdvanceSlot()
			js.ClosePeriod()

			recs, _, _ := ReadJournal(m.Bytes())
			if len(recs) == 0 {
				// The config record itself was faulted; nothing to recover.
				if plan.Kind == FaultNone || plan.Record != 0 {
					t.Fatalf("empty journal under plan %v", plan)
				}
				return
			}
			rec, err := RecoverService(recs, io.Discard)
			if err != nil {
				t.Fatalf("recovery failed under plan %v: %v", plan, err)
			}
			// Mid-period the surplus may dip negative (cost is incurred at
			// implementation, revenue accrues in later slots), so settle
			// the recovered period before asserting cost recovery.
			if !rec.Closed() {
				if _, err := rec.ClosePeriod(); err != nil {
					t.Fatalf("settling recovered service under plan %v: %v", plan, err)
				}
			}
			if rec.Surplus() < 0 {
				t.Fatalf("negative settled surplus %v under plan %v", rec.Surplus(), plan)
			}
			// Every journaled (= accepted) bid is priced at settlement.
			inv := rec.Invoices()
			for _, r := range recs {
				if r.Kind == KindAdditiveBid {
					if _, ok := inv[r.User]; !ok {
						t.Fatalf("journaled bid of user %d unpriced under plan %v", r.User, plan)
					}
				}
			}
		})
	}
}

// TestRandomPlanDeterministic pins RandomPlan's seed contract.
func TestRandomPlanDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		a, b := RandomPlan(seed, 10), RandomPlan(seed, 10)
		if a != b {
			t.Fatalf("seed %d: %v != %v", seed, a, b)
		}
		if a.Kind == FaultNone && (a.Record != 0 || a.Tear != 0) {
			t.Fatalf("seed %d: no-op plan carries parameters: %v", seed, a)
		}
		if a.Record < 0 || a.Record >= 10 {
			t.Fatalf("seed %d: record %d out of range", seed, a.Record)
		}
	}
	if got := stats.NewRNG(3).Intn(4); got < 0 || got > 3 {
		t.Fatalf("RNG sanity: %d", got)
	}
}

func TestFaultKindStrings(t *testing.T) {
	cases := map[FaultKind]string{
		FaultNone:    "none",
		FaultErr:     "write-error",
		FaultShort:   "short-write",
		FaultCrash:   "crash",
		FaultKind(9): "FaultKind(9)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
	if got := (FaultPlan{}).String(); got != "none" {
		t.Errorf("zero plan renders %q", got)
	}
	if got := (FaultPlan{Kind: FaultCrash, Record: 3, Tear: 7}).String(); got != "crash@record3(tear=7)" {
		t.Errorf("crash plan renders %q", got)
	}
}
