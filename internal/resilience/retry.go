package resilience

import (
	"context"
	"errors"
	"fmt"
	"time"

	"sharedopt/internal/stats"
)

// Backoff configures Retry's capped exponential backoff. The zero value
// means 8 attempts starting at 1ms and doubling up to a 100ms cap, with
// no jitter.
type Backoff struct {
	// Attempts is the maximum number of tries (including the first).
	Attempts int
	// Base is the delay before the second attempt; it doubles per
	// retry.
	Base time.Duration
	// Cap bounds the delay between attempts.
	Cap time.Duration
	// Jitter subtracts a uniformly random fraction of each delay, up to
	// this share of it, so concurrent retries against the same
	// overloaded shard decorrelate instead of arriving in lockstep.
	// 0 means no jitter; 1 means anywhere in (0, delay]. Values outside
	// [0, 1] are clamped. The randomness is seeded (see Seed), so a
	// given Backoff value always produces the same gap sequence.
	Jitter float64
	// Seed seeds the jitter stream. Each Retry call draws its own
	// deterministic sequence from it, so two calls with equal Backoff
	// values sleep identically — reproducibility under chaos schedules.
	Seed uint64
	// Sleep overrides the inter-attempt wait, for tests. nil uses a
	// real timer that also honors context cancellation.
	Sleep func(time.Duration)
}

func (b Backoff) withDefaults() Backoff {
	if b.Attempts <= 0 {
		b.Attempts = 8
	}
	if b.Base <= 0 {
		b.Base = time.Millisecond
	}
	if b.Cap <= 0 {
		b.Cap = 100 * time.Millisecond
	}
	if b.Jitter < 0 {
		b.Jitter = 0
	} else if b.Jitter > 1 {
		b.Jitter = 1
	}
	return b
}

// Retryable reports whether err is worth retrying: admission-control
// rejections (ErrOverloaded) are transient by construction. Mechanism
// rejections, ErrJournalBroken and ErrClosed are permanent. Retrying a
// submission that may or may not have been applied is safe against a
// journaled service because duplicate submissions are idempotent no-ops.
func Retryable(err error) bool { return errors.Is(err, ErrOverloaded) }

// Retry runs op until it succeeds, fails permanently, exhausts
// b.Attempts, or ctx ends — whichever comes first — sleeping a capped
// exponential backoff between attempts. The returned error wraps the
// last attempt's error, so errors.Is still matches it. Context
// cancellation is honored immediately, including mid-sleep: a canceled
// backoff wait returns ctx.Err() (wrapping the last attempt's error)
// without finishing the sleep.
func Retry(ctx context.Context, b Backoff, op func() error) error {
	return RetryIf(ctx, b, Retryable, op)
}

// RetryIf is Retry with a caller-chosen retryability predicate — the
// transport layer retries ErrShardUnavailable, which the admission-path
// Retryable deliberately does not cover. Everything else (backoff
// shape, seeded jitter, context handling, error wrapping) is identical.
func RetryIf(ctx context.Context, b Backoff, retryable func(error) bool, op func() error) error {
	b = b.withDefaults()
	delay := b.Base
	var jit *stats.RNG
	if b.Jitter > 0 {
		jit = stats.NewRNG(b.Seed)
	}
	var err error
	for attempt := 1; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			if err == nil {
				return cerr
			}
			return fmt.Errorf("resilience: %d attempts, then %w (last error: %w)", attempt-1, cerr, err)
		}
		err = op()
		if err == nil || !retryable(err) {
			return err
		}
		if attempt >= b.Attempts {
			return fmt.Errorf("resilience: gave up after %d attempts: %w", attempt, err)
		}
		wait := delay
		if jit != nil {
			wait -= time.Duration(b.Jitter * jit.Float64() * float64(delay))
		}
		if b.Sleep != nil {
			b.Sleep(wait)
		} else {
			t := time.NewTimer(wait)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return fmt.Errorf("resilience: %d attempts, then %w (last error: %w)", attempt, ctx.Err(), err)
			}
		}
		if delay *= 2; delay > b.Cap {
			delay = b.Cap
		}
	}
}
