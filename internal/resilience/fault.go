package resilience

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"sharedopt/internal/stats"
)

// ErrInjected is the write failure a FaultErr plan injects.
var ErrInjected = errors.New("resilience: injected write failure")

// ErrCrashed is returned by every write after a FaultCrash fired: the
// simulated process is dead and only recovery from the log may proceed.
var ErrCrashed = errors.New("resilience: simulated crash")

// FaultKind selects what a FaultPlan does to its chosen record write.
type FaultKind int

const (
	// FaultNone disturbs nothing; the plan is a no-op.
	FaultNone FaultKind = iota
	// FaultErr fails the chosen write with ErrInjected, writing no
	// bytes — a full, clean I/O error.
	FaultErr
	// FaultShort writes only Tear bytes of the chosen record and
	// reports the short count with a nil error — the buggy-writer case
	// io.Writer forbids but real stacks produce. The journal must
	// detect it (io.ErrShortWrite) and wedge; the log now ends in a
	// torn record that recovery must discard.
	FaultShort
	// FaultCrash writes only Tear bytes of the chosen record, returns
	// ErrCrashed, and fails every later write: a kill -9 mid-append.
	FaultCrash
)

// String names the kind for logs and test output.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultErr:
		return "write-error"
	case FaultShort:
		return "short-write"
	case FaultCrash:
		return "crash"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// FaultPlan schedules exactly one write fault: the Record-th journal
// write (0-based; each journal record is one write) suffers Kind, with
// Tear bytes reaching the log for the tearing kinds. Plans are plain
// data so a seeded schedule is reproducible by value.
type FaultPlan struct {
	Kind   FaultKind
	Record int
	Tear   int
}

// String renders the plan compactly for chaos-mode output.
func (p FaultPlan) String() string {
	if p.Kind == FaultNone {
		return "none"
	}
	return fmt.Sprintf("%v@record%d(tear=%d)", p.Kind, p.Record, p.Tear)
}

// RandomPlan draws a deterministic fault schedule from seed for a run
// expected to write about records journal records: a kind (faultless
// runs included), a target record, and a tear length.
func RandomPlan(seed uint64, records int) FaultPlan {
	r := stats.NewRNG(seed)
	if records < 1 {
		records = 1
	}
	plan := FaultPlan{
		Kind:   FaultKind(r.Intn(4)), // includes FaultNone
		Record: r.Intn(records),
		Tear:   r.Intn(24),
	}
	if plan.Kind == FaultNone {
		plan.Record, plan.Tear = 0, 0
	}
	return plan
}

// FaultWriter wraps a journal target and executes a FaultPlan against
// it. It is safe for concurrent use and counts whole-record writes so
// tests can assert exactly where the failure landed.
type FaultWriter struct {
	mu      sync.Mutex
	w       io.Writer
	plan    FaultPlan
	n       int
	crashed bool
}

// NewFaultWriter returns a writer applying plan on top of w.
func NewFaultWriter(w io.Writer, plan FaultPlan) *FaultWriter {
	return &FaultWriter{w: w, plan: plan}
}

// Write forwards p to the target unless the plan says this is the write
// to disturb.
func (f *FaultWriter) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return 0, ErrCrashed
	}
	idx := f.n
	f.n++
	if f.plan.Kind == FaultNone || idx != f.plan.Record {
		return f.w.Write(p)
	}
	switch f.plan.Kind {
	case FaultErr:
		return 0, ErrInjected
	case FaultShort:
		k := min(f.plan.Tear, len(p))
		n, err := f.w.Write(p[:k])
		if err != nil {
			return n, err
		}
		return n, nil // short count, nil error: the forbidden writer bug
	case FaultCrash:
		f.crashed = true
		k := min(f.plan.Tear, len(p))
		n, _ := f.w.Write(p[:k])
		return n, ErrCrashed
	default:
		return 0, fmt.Errorf("resilience: unknown fault kind %v", f.plan.Kind)
	}
}

// Writes returns how many record writes the journal attempted so far.
func (f *FaultWriter) Writes() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// Crashed reports whether the simulated crash has fired.
func (f *FaultWriter) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}
