package resilience

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"sharedopt/internal/stats"
)

// ErrInjected is the write failure a FaultErr plan injects.
var ErrInjected = errors.New("resilience: injected write failure")

// ErrCrashed is returned by every write after a FaultCrash fired: the
// simulated process is dead and only recovery from the log may proceed.
var ErrCrashed = errors.New("resilience: simulated crash")

// FaultKind selects what a FaultPlan does to its chosen record write.
type FaultKind int

const (
	// FaultNone disturbs nothing; the plan is a no-op.
	FaultNone FaultKind = iota
	// FaultErr fails the chosen write with ErrInjected, writing no
	// bytes — a full, clean I/O error.
	FaultErr
	// FaultShort writes only Tear bytes of the chosen record and
	// reports the short count with a nil error — the buggy-writer case
	// io.Writer forbids but real stacks produce. The journal must
	// detect it (io.ErrShortWrite) and wedge; the log now ends in a
	// torn record that recovery must discard.
	FaultShort
	// FaultCrash writes only Tear bytes of the chosen record, returns
	// ErrCrashed, and fails every later write: a kill -9 mid-append.
	FaultCrash
)

// String names the kind for logs and test output.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultErr:
		return "write-error"
	case FaultShort:
		return "short-write"
	case FaultCrash:
		return "crash"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// FaultPlan schedules exactly one write fault: the Record-th journal
// write (0-based; each journal record is one write) suffers Kind, with
// Tear bytes reaching the log for the tearing kinds. Plans are plain
// data so a seeded schedule is reproducible by value.
type FaultPlan struct {
	Kind   FaultKind
	Record int
	Tear   int
}

// String renders the plan compactly for chaos-mode output.
func (p FaultPlan) String() string {
	if p.Kind == FaultNone {
		return "none"
	}
	return fmt.Sprintf("%v@record%d(tear=%d)", p.Kind, p.Record, p.Tear)
}

// RandomPlan draws a deterministic fault schedule from seed for a run
// expected to write about records journal records: a kind (faultless
// runs included), a target record, and a tear length.
func RandomPlan(seed uint64, records int) FaultPlan {
	r := stats.NewRNG(seed)
	if records < 1 {
		records = 1
	}
	plan := FaultPlan{
		Kind:   FaultKind(r.Intn(4)), // includes FaultNone
		Record: r.Intn(records),
		Tear:   r.Intn(24),
	}
	if plan.Kind == FaultNone {
		plan.Record, plan.Tear = 0, 0
	}
	return plan
}

// RandomShardPlans draws one independent fault schedule per shard from
// a single seed: each shard's journal suffers (at most) its own fault,
// at its own record index — the partial-failure regime the sharded tier
// must degrade under. Deterministic by (seed, shards, records).
func RandomShardPlans(seed uint64, shards, records int) []FaultPlan {
	r := stats.NewRNG(seed)
	plans := make([]FaultPlan, shards)
	for i := range plans {
		plans[i] = RandomPlan(r.Uint64(), records)
	}
	return plans
}

// CrashGroup links the FaultWriters of one simulated process: when any
// member crashes — its own plan's FaultCrash, or the group-wide KillAt
// write budget running out — every member fails all later writes with
// ErrCrashed. That is process-death semantics: a kill tears at most one
// record on one shard's journal but stops all of them at the same
// instant, which is exactly the cross-shard interleaving crash the
// sharded recovery must reconcile.
type CrashGroup struct {
	mu      sync.Mutex
	crashed bool
	writes  int
	killAt  int
	tear    int
}

// NewCrashGroup returns a group that only crashes via member FaultCrash
// plans (no global write budget).
func NewCrashGroup() *CrashGroup { return &CrashGroup{killAt: -1} }

// KillAtWrite arms the group to die on the k-th write (0-based, counted
// across all members in arrival order), letting tear bytes of that
// write reach its log first.
func (g *CrashGroup) KillAtWrite(k, tear int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.killAt, g.tear = k, tear
}

// Crashed reports whether the group has died.
func (g *CrashGroup) Crashed() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.crashed
}

// Writes returns the total writes attempted across all members.
func (g *CrashGroup) Writes() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.writes
}

// kill marks the group dead (a member's FaultCrash fired).
func (g *CrashGroup) kill() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.crashed = true
}

// admit accounts one member write against the group. It returns
// done=true when the group is (now) dead: either the write must fail
// with ErrCrashed untouched, or — if this is the budgeted kill write —
// after tear bytes reach w.
func (g *CrashGroup) admit(w io.Writer, p []byte) (n int, err error, done bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.crashed {
		return 0, ErrCrashed, true
	}
	idx := g.writes
	g.writes++
	if g.killAt >= 0 && idx == g.killAt {
		g.crashed = true
		k := min(g.tear, len(p))
		n, _ := w.Write(p[:k])
		return n, ErrCrashed, true
	}
	return 0, nil, false
}

// FaultWriter wraps a journal target and executes a FaultPlan against
// it. It is safe for concurrent use and counts whole-record writes so
// tests can assert exactly where the failure landed.
type FaultWriter struct {
	mu      sync.Mutex
	w       io.Writer
	plan    FaultPlan
	group   *CrashGroup
	n       int
	crashed bool
}

// NewFaultWriter returns a writer applying plan on top of w.
func NewFaultWriter(w io.Writer, plan FaultPlan) *FaultWriter {
	return &FaultWriter{w: w, plan: plan}
}

// NewFaultWriterInGroup returns a writer applying plan on top of w and
// sharing g's process fate: a crash anywhere in the group fails this
// writer too, and this writer's FaultCrash kills the group.
func NewFaultWriterInGroup(w io.Writer, plan FaultPlan, g *CrashGroup) *FaultWriter {
	return &FaultWriter{w: w, plan: plan, group: g}
}

// Write forwards p to the target unless the plan (or the group's fate)
// says this is the write to disturb.
func (f *FaultWriter) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return 0, ErrCrashed
	}
	if f.group != nil {
		if n, err, done := f.group.admit(f.w, p); done {
			return n, err
		}
	}
	idx := f.n
	f.n++
	if f.plan.Kind == FaultNone || idx != f.plan.Record {
		return f.w.Write(p)
	}
	switch f.plan.Kind {
	case FaultErr:
		return 0, ErrInjected
	case FaultShort:
		k := min(f.plan.Tear, len(p))
		n, err := f.w.Write(p[:k])
		if err != nil {
			return n, err
		}
		return n, nil // short count, nil error: the forbidden writer bug
	case FaultCrash:
		f.crashed = true
		if f.group != nil {
			f.group.kill()
		}
		k := min(f.plan.Tear, len(p))
		n, _ := f.w.Write(p[:k])
		return n, ErrCrashed
	default:
		return 0, fmt.Errorf("resilience: unknown fault kind %v", f.plan.Kind)
	}
}

// Writes returns how many record writes the journal attempted so far.
func (f *FaultWriter) Writes() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// Crashed reports whether the simulated crash has fired.
func (f *FaultWriter) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}
