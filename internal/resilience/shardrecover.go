package resilience

// Recovery for the sharded tier. The N shard journals are independent
// logs that crash and tear independently; recovery reconciles them into
// one consistent tier:
//
//  1. Every non-empty journal must open with a KindShardConfig record
//     whose Shard matches its position and whose game/horizon/catalog
//     and shard count agree with the others. An empty journal is a
//     creation crash — its config write never completed, so nothing on
//     it was ever acknowledged and it is re-seeded in place.
//  2. Each shard's record prefix is replayed into a fresh replica,
//     grouping its accepted bids into settlement windows: the bids
//     between consecutive adv markers. The shard's frontier is its adv
//     count.
//  3. The reconciled slot S is the maximum frontier: an advance with at
//     least one durable adv marker was acknowledged (the marker is
//     written before the advance returns), so like an in-doubt
//     distributed commit with a durable decision record it rolls
//     forward, never back. A shard behind S lost its marker to the
//     crash (or was wedged); its journal tail — the bids after its last
//     marker — belongs to exactly the window it stopped in, window
//     frontier+1.
//  4. Windows 1..S fold into a fresh settlement game in shard-index
//     order, the same canonical order live settlement uses, then the
//     tails of shards already at S become their live batches again (or
//     fold and close, if any shard journaled a close).
//  5. Lagging journals are rolled forward — the missing adv/close
//     markers are appended — so all N journals agree afterwards.
//
// A bid the settlement game rejects wedges its shard with
// ErrPolicyDiverged (the same degradation rule as live settlement);
// a journal that contradicts the protocol (a closed shard behind the
// frontier, records after a close, a config mismatch) fails recovery
// as corrupt.

import (
	"errors"
	"fmt"
	"io"

	"sharedopt/internal/core"
)

// sameShardConfig checks that two shard-config records describe the same
// tier (ignoring which shard each belongs to).
func sameShardConfig(a, b Record) error {
	na, nb := a, b
	na.Seq, na.Shard = 0, 0
	nb.Seq, nb.Shard = 0, 0
	if na.fingerprint() != nb.fingerprint() {
		return fmt.Errorf("resilience: shard %d and shard %d journals disagree on tier config", a.Shard, b.Shard)
	}
	return nil
}

// shardReplay is one journal's parsed history: its accepted bids grouped
// into settlement windows by the adv markers, the tail after the last
// marker, and whether a close marker ended it.
type shardReplay struct {
	windows [][]pendingBid
	tail    []pendingBid
	closed  bool
	bids    uint64
}

// pendingFromRecord converts a journaled bid back into batch form,
// carrying the durable sequence so recovered batches fold in journal
// order exactly like live ones.
func pendingFromRecord(rec Record) pendingBid {
	if rec.Kind == KindAdditiveBid {
		return pendingBid{seq: rec.Seq, additive: true, opt: rec.Opt, abid: core.OnlineBid{
			User: rec.User, Start: rec.Start, End: rec.End, Values: rec.Values,
		}}
	}
	return pendingBid{seq: rec.Seq, sbid: core.OnlineSubstBid{
		User: rec.User, Opts: rec.Set, Start: rec.Start, End: rec.End, Values: rec.Values,
	}}
}

// RecoverShardedService rebuilds a sharded tier from its N journal
// prefixes (journals[i] is shard i's ReadJournal/OpenFileLog result; any
// subset may be torn, truncated, or empty) and resumes appending shard i
// to writers[i]. Recovery is deterministic: the same journals always
// yield byte-identical invoices, surplus, and implemented sets, equal to
// the pre-crash tier's acknowledged state rolled forward to the
// reconciled slot frontier.
func RecoverShardedService(journals [][]Record, writers []io.Writer, cfg ShardedConfig) (*ShardedService, error) {
	n := len(journals)
	if n == 0 {
		return nil, ErrEmptyJournal
	}
	if len(writers) != n {
		return nil, fmt.Errorf("resilience: %d journals but %d writers", n, len(writers))
	}

	// Cross-check the shard config records.
	var tierCfg *Record
	for i := range journals {
		if len(journals[i]) == 0 {
			continue // creation crash: re-seeded below
		}
		c := journals[i][0]
		if c.Kind != KindShardConfig {
			return nil, fmt.Errorf("resilience: shard %d journal opens with %s record, want %s", i, c.Kind, KindShardConfig)
		}
		if c.Shard != i {
			return nil, fmt.Errorf("resilience: journal %d carries shard index %d: journals passed out of order", i, c.Shard)
		}
		if c.Shards != n {
			return nil, fmt.Errorf("resilience: shard %d journal names %d shards, recovering %d", i, c.Shards, n)
		}
		if tierCfg == nil {
			cc := c
			tierCfg = &cc
		} else if err := sameShardConfig(*tierCfg, c); err != nil {
			return nil, err
		}
	}
	if tierCfg == nil {
		return nil, ErrEmptyJournal
	}
	kind, err := gameKind(tierCfg.Game)
	if err != nil {
		return nil, err
	}
	catalog := catalogOf(tierCfg.Opts)
	settle, err := newService(kind, catalog, tierCfg.Horizon)
	if err != nil {
		return nil, fmt.Errorf("resilience: corrupt journal: config rejected: %w", err)
	}
	s := &ShardedService{
		kind:     kind,
		horizon:  tierCfg.Horizon,
		maxBatch: cfg.MaxBatch,
		timeout:  cfg.CallTimeout,
		shards:   make([]*shard, n),
		settle:   settle,
	}

	// Replay each shard's prefix into a fresh replica host, grouping its
	// bids into settlement windows. The recovered tier fronts its hosts
	// with in-process loopback transports.
	hosts := make([]*ShardHost, n)
	reps := make([]shardReplay, n)
	for i := range journals {
		replica, err := newService(kind, catalog, tierCfg.Horizon)
		if err != nil {
			return nil, fmt.Errorf("resilience: corrupt journal: config rejected: %w", err)
		}
		recs := journals[i]
		if len(recs) == 0 {
			// Creation crash: nothing durable was ever acknowledged on
			// this shard. Re-seed its config record; if even that write
			// fails the shard comes up wedged instead of sinking the tier.
			j := NewJournal(writers[i])
			hosts[i] = &ShardHost{js: newJournaledOn(replica, j), shard: i, shards: n, opts: tierCfg.Opts}
			s.shards[i] = newShard(hosts[i], shardMetrics{})
			if err := j.Append(shardConfigRecord(kind, catalog, tierCfg.Horizon, i, n)); err != nil {
				s.wedgeLocked(i, err)
			}
			continue
		}
		host := &ShardHost{
			js:     newJournaledOn(replica, NewJournalAt(writers[i], recs[len(recs)-1].Seq)),
			shard:  i,
			shards: n,
			opts:   tierCfg.Opts,
		}
		hosts[i] = host
		sh := newShard(host, shardMetrics{})
		s.shards[i] = sh
		rep := &reps[i]
		for _, rec := range recs[1:] {
			if rep.closed {
				return nil, errCorrupt(rec, errors.New("record after close marker"))
			}
			switch rec.Kind {
			case KindAdditiveBid, KindSubstBid:
				rep.tail = append(rep.tail, pendingFromRecord(rec))
				rep.bids++
			case KindAdvanceSlot:
				rep.windows = append(rep.windows, rep.tail)
				rep.tail = nil
			case KindClosePeriod:
				rep.closed = true
			}
			if err := host.js.applyRecord(rec); err != nil {
				return nil, err
			}
		}
		host.bids = rep.bids
		sh.counters.Accepted = rep.bids
		// Prime the router's dedup set with every journaled bid, so a
		// client retrying a pre-crash submission is recognized as a
		// duplicate instead of double-batched.
		for fp := range host.js.seen {
			sh.batched[fp] = true
		}
	}

	// Reconcile the slot frontier: the maximum adv count across shards.
	// An advance acknowledged anywhere rolls forward everywhere.
	S := 0
	anyClosed := false
	for i := range reps {
		if f := len(reps[i].windows); f > S {
			S = f
		}
		anyClosed = anyClosed || reps[i].closed
	}
	for i := range reps {
		if reps[i].closed && len(reps[i].windows) != S {
			return nil, fmt.Errorf("resilience: corrupt journal: shard %d closed at slot %d behind frontier %d", i, len(reps[i].windows), S)
		}
	}

	// Fold windows 1..S into the settlement game, shard-index order
	// within each window — the canonical live order. A shard behind the
	// frontier contributes its tail to the window it stopped in.
	for w := 1; w <= S; w++ {
		for i := range reps {
			if s.shards[i].wedged != nil {
				continue // diverged earlier: degradation skips its later windows
			}
			var batch []pendingBid
			switch {
			case w <= len(reps[i].windows):
				batch = reps[i].windows[w-1]
			case w == len(reps[i].windows)+1 && !reps[i].closed:
				batch = reps[i].tail
				reps[i].tail = nil
			}
			if len(batch) > 0 {
				s.foldBatchLocked(i, batch)
			}
		}
		if _, err := s.settle.AdvanceSlot(); err != nil {
			return nil, fmt.Errorf("resilience: corrupt journals: replaying settlement slot %d: %w", w, err)
		}
	}

	// Bids accepted in the still-open window — the tails of shards whose
	// frontier reached S — either become live batches again, or (if any
	// shard journaled a close) fold pre-close exactly as the live drain
	// did.
	if anyClosed {
		for i := range reps {
			if s.shards[i].wedged != nil || len(reps[i].tail) == 0 {
				continue
			}
			s.foldBatchLocked(i, reps[i].tail)
			reps[i].tail = nil
		}
		if _, err := s.settle.ClosePeriod(); err != nil {
			return nil, fmt.Errorf("resilience: corrupt journals: closing settlement: %w", err)
		}
	} else {
		for i := range reps {
			if s.shards[i].wedged != nil {
				continue // a wedged shard's unsettled bids stay in its journal only
			}
			s.shards[i].batch = reps[i].tail
			reps[i].tail = nil
		}
	}

	// Roll the lagging journals forward so every shard's durable history
	// agrees with the reconciled frontier (and close). A write failure
	// here wedges just that shard; the tier still comes up.
	for i := range reps {
		sh := s.shards[i]
		for w := len(reps[i].windows); w < S && sh.wedged == nil; w++ {
			if _, err := hosts[i].js.AdvanceSlot(); err != nil {
				s.wedgeLocked(i, err)
			}
		}
		if anyClosed && !reps[i].closed && sh.wedged == nil {
			if _, err := hosts[i].js.ClosePeriod(); err != nil {
				s.wedgeLocked(i, err)
			}
		}
	}
	return s, nil
}
