package resilience

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"sharedopt/internal/core"
	"sharedopt/internal/econ"
	"sharedopt/internal/obs"
)

// ErrOverloaded is the typed admission-control rejection: the bounded
// ingestion queue is full and the submission was NOT enqueued. It is the
// only way a submission is turned away under load — nothing is ever
// silently dropped — and it is retryable (see Retry), safely so because
// accepted submissions are journaled idempotently.
var ErrOverloaded = errors.New("resilience: ingestion queue overloaded")

// ErrClosed is returned for calls after the front end shut down.
var ErrClosed = errors.New("resilience: ingestion front end closed")

// Backend is the mutation surface the front end serializes onto — a
// *JournaledService in production; the plain *sharedopt.Service also
// satisfies it, which the benchmarks use to isolate journaling cost.
type Backend interface {
	SubmitAdditiveBid(opt core.OptID, bid core.OnlineBid) error
	SubmitSubstitutiveBid(bid core.OnlineSubstBid) error
	AdvanceSlot() (core.SlotReport, error)
	ClosePeriod() (map[core.UserID]econ.Money, error)
}

// IngestConfig tunes the front end.
type IngestConfig struct {
	// Queue is the bounded intake queue depth; submissions beyond it
	// are rejected with ErrOverloaded. Default 64.
	Queue int
	// ApplyHook, if set, runs on the worker goroutine immediately
	// before each operation is applied. Tests and the chaos harness use
	// it to stall the worker and drive the queue into saturation.
	ApplyHook func()
	// Obs, if non-nil, receives the front end's metrics: the admission
	// counters (mirroring Counters exactly), the queue-depth high-water
	// mark, and the per-operation apply latency histogram. See obs.go
	// for the name contract.
	Obs *obs.Registry
}

// Counters is a point-in-time snapshot of the front end's exact
// admission accounting. For any workload,
// Accepted+Rejected+Expired+Overloaded equals the submissions attempted:
// every one was journaled-and-applied (Accepted), refused by the
// mechanism (Rejected), abandoned at its deadline before the worker
// reached it (Expired), or turned away at the full queue (Overloaded).
type Counters struct {
	Accepted   uint64 // submissions applied and journaled
	Rejected   uint64 // submissions the mechanism refused (validation, retroactive, ...)
	Expired    uint64 // operations whose context ended before the worker reached them
	Overloaded uint64 // submissions rejected at the full queue
	Advanced   uint64 // slots advanced
}

type opKind int

const (
	opAdditive opKind = iota
	opSubst
	opAdvance
	opClose
)

// opResult carries an operation's outcome back to its waiting caller.
type opResult struct {
	report  core.SlotReport
	settled map[core.UserID]econ.Money
	err     error
}

type ingestOp struct {
	kind opKind
	ctx  context.Context
	opt  core.OptID
	abid core.OnlineBid
	sbid core.OnlineSubstBid
	done chan opResult // buffered(1): the worker never blocks on reply
}

// Ingest is the concurrent bid-intake front end around a Backend: a
// bounded queue feeding a single worker, so concurrent submissions are
// admitted (or refused) instantly and applied in one serialized arrival
// order — the order the journal records and recovery replays.
//
// Submissions use non-blocking admission: a full queue fails fast with
// ErrOverloaded. Provider-side calls (AdvanceSlot, ClosePeriod) instead
// wait for queue space and for completion under the caller's context
// deadline; a deadline hit while the operation is still queued abandons
// it (the worker skips expired operations), but a deadline that fires in
// the same instant the worker begins applying cannot un-apply it — after
// a deadline error the caller must treat the operation's fate as
// unknown and consult Now / the journal, exactly as after a crash.
type Ingest struct {
	mu     sync.RWMutex // guards closed vs. enqueue
	closed bool
	be     Backend
	cfg    IngestConfig
	ops    chan *ingestOp
	wg     sync.WaitGroup

	accepted   atomic.Uint64
	rejected   atomic.Uint64
	expired    atomic.Uint64
	overloaded atomic.Uint64
	advanced   atomic.Uint64
	om         ingestMetrics // zero value when uninstrumented
}

// NewIngest starts a front end over be. Call Close to drain and stop it.
func NewIngest(be Backend, cfg IngestConfig) *Ingest {
	if cfg.Queue <= 0 {
		cfg.Queue = 64
	}
	in := &Ingest{be: be, cfg: cfg, ops: make(chan *ingestOp, cfg.Queue),
		om: newIngestMetrics(cfg.Obs)}
	in.wg.Add(1)
	go in.worker()
	return in
}

// worker drains the queue, applying one operation at a time.
func (in *Ingest) worker() {
	defer in.wg.Done()
	for op := range in.ops {
		if op.ctx != nil && op.ctx.Err() != nil {
			in.expired.Add(1)
			in.om.expired.Inc()
			op.done <- opResult{err: op.ctx.Err()}
			continue
		}
		if in.cfg.ApplyHook != nil {
			in.cfg.ApplyHook()
		}
		var start time.Time
		if in.om.applyNs != nil {
			start = time.Now()
		}
		var res opResult
		switch op.kind {
		case opAdditive:
			res.err = in.be.SubmitAdditiveBid(op.opt, op.abid)
		case opSubst:
			res.err = in.be.SubmitSubstitutiveBid(op.sbid)
		case opAdvance:
			res.report, res.err = in.be.AdvanceSlot()
		case opClose:
			res.settled, res.err = in.be.ClosePeriod()
		}
		if in.om.applyNs != nil {
			in.om.applyNs.ObserveSince(start)
		}
		switch op.kind {
		case opAdditive, opSubst:
			if res.err == nil {
				in.accepted.Add(1)
				in.om.accepted.Inc()
			} else {
				in.rejected.Add(1)
				in.om.rejected.Inc()
			}
		case opAdvance:
			if res.err == nil {
				in.advanced.Add(1)
				in.om.advanced.Inc()
			}
		}
		op.done <- res
	}
}

// tryEnqueue admits op if the queue has room, failing fast otherwise.
func (in *Ingest) tryEnqueue(op *ingestOp) error {
	in.mu.RLock()
	defer in.mu.RUnlock()
	if in.closed {
		return ErrClosed
	}
	select {
	case in.ops <- op:
		in.om.queueHigh.Observe(uint64(len(in.ops)))
		return nil
	default:
		in.overloaded.Add(1)
		in.om.overloaded.Inc()
		return ErrOverloaded
	}
}

// enqueueWait admits op, waiting for queue space until ctx expires.
func (in *Ingest) enqueueWait(ctx context.Context, op *ingestOp) error {
	in.mu.RLock()
	defer in.mu.RUnlock()
	if in.closed {
		return ErrClosed
	}
	select {
	case in.ops <- op:
		in.om.queueHigh.Observe(uint64(len(in.ops)))
		return nil
	case <-ctx.Done():
		in.expired.Add(1)
		in.om.expired.Inc()
		return ctx.Err()
	}
}

// SubmitAdditive admits one additive bid, waits for it to be applied,
// and returns the backend's verdict. A full queue fails immediately with
// ErrOverloaded and the bid is guaranteed not to have been applied.
func (in *Ingest) SubmitAdditive(opt core.OptID, bid core.OnlineBid) error {
	op := &ingestOp{kind: opAdditive, opt: opt, abid: bid, done: make(chan opResult, 1)}
	if err := in.tryEnqueue(op); err != nil {
		return err
	}
	return (<-op.done).err
}

// SubmitSubstitutive admits one substitutive bid; see SubmitAdditive.
func (in *Ingest) SubmitSubstitutive(bid core.OnlineSubstBid) error {
	op := &ingestOp{kind: opSubst, sbid: bid, done: make(chan opResult, 1)}
	if err := in.tryEnqueue(op); err != nil {
		return err
	}
	return (<-op.done).err
}

// AdvanceSlot queues a slot advance behind all admitted submissions and
// waits for its report under ctx's deadline.
func (in *Ingest) AdvanceSlot(ctx context.Context) (core.SlotReport, error) {
	op := &ingestOp{kind: opAdvance, ctx: ctx, done: make(chan opResult, 1)}
	if err := in.enqueueWait(ctx, op); err != nil {
		return core.SlotReport{}, err
	}
	select {
	case res := <-op.done:
		return res.report, res.err
	case <-ctx.Done():
		return core.SlotReport{}, ctx.Err()
	}
}

// ClosePeriod queues an early close behind all admitted submissions and
// waits for the settlement under ctx's deadline.
func (in *Ingest) ClosePeriod(ctx context.Context) (map[core.UserID]econ.Money, error) {
	op := &ingestOp{kind: opClose, ctx: ctx, done: make(chan opResult, 1)}
	if err := in.enqueueWait(ctx, op); err != nil {
		return nil, err
	}
	select {
	case res := <-op.done:
		return res.settled, res.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Stats returns the exact admission accounting so far. It is consistent
// with returned calls: an operation is counted before its caller
// unblocks.
func (in *Ingest) Stats() Counters {
	return Counters{
		Accepted:   in.accepted.Load(),
		Rejected:   in.rejected.Load(),
		Expired:    in.expired.Load(),
		Overloaded: in.overloaded.Load(),
		Advanced:   in.advanced.Load(),
	}
}

// Close stops intake, lets the worker finish every already-admitted
// operation, and waits for it to exit. Close is idempotent.
func (in *Ingest) Close() {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return
	}
	in.closed = true
	close(in.ops)
	in.mu.Unlock()
	in.wg.Wait()
}
