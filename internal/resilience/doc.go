// Package resilience is the fault-tolerant front end around the pricing
// tier: a checksummed bid journal, deterministic crash recovery, a
// bounded-queue ingestion layer with admission control, and seeded fault
// injection for testing all of it.
//
// The paper's guarantees — truthfulness and exact cost recovery — are
// economic statements about the set of accepted bids. A provider that
// loses accepted bids in a crash, or sheds them silently under load,
// breaks the mechanism even if it stays up. This package makes the
// accepted-bid set durable and the overload behavior explicit.
//
// # Journal format
//
// A journal is a line-oriented append-only log. Each record is one line:
//
//	<crc32-ieee-hex8> <payload-json>\n
//
// The checksum covers the payload bytes. The payload is a Record: a
// sequence number (strictly 1, 2, 3, …), a kind, and the mutation's
// arguments with all money in exact integer micro-dollars. A service
// journal opens with one "svc" config record (kind, horizon, catalog)
// followed by mutation records ("abid", "sbid", "adv", "close"); a
// period-manager journal opens with "mgr" and brackets each period's
// mutations with a "start" record carrying that period's recomputed
// costs. Each record is issued as a single Write to the log target
// (MemLog in memory, FileLog with per-record fsync on disk), so a crash
// tears at most the final record; ReadJournal verifies newline framing,
// checksum, and sequence continuity, and cleanly discards everything
// from the first damaged record on.
//
// # Recovery invariants
//
// Mutations follow accept-then-journal with fail-stop semantics: a call
// returns nil only if the mutation was applied AND journaled; the first
// journal write failure wedges the service (ErrJournalBroken) so an
// unjournaled accept can never be followed by further acknowledged work.
// Because every mechanism in internal/core is deterministic, replaying
// the journal's accepted prefix through RecoverService or
// RecoverPeriodManager reproduces invoices, revenue, cost, and the
// implemented set byte-identically — property-tested by crashing at
// every record boundary (and with torn tails) of randomized workloads.
// Recovery of a period manager re-runs the cost policy and verifies it
// against the journaled period costs, failing with ErrPolicyDiverged on
// any mismatch rather than silently recomputing different prices.
//
// # Retry and idempotency contract
//
// Ingest admits bids into a bounded queue and rejects overflow fast with
// the typed ErrOverloaded — never a silent drop; Counters carries the
// exact accounting. ErrOverloaded (and only it) is Retryable; Retry
// wraps an operation in capped exponential backoff. Blind retries are
// safe against a journaled service because submissions are idempotent:
// a resubmission byte-identical to an accepted one returns success
// without journaling or applying anything, so a client that lost the
// first acknowledgment cannot double-bid. Provider calls (AdvanceSlot,
// ClosePeriod) take a context deadline; a deadline error means the
// operation's fate is unknown (exactly as after a crash) and the caller
// resynchronizes from Now or the journal.
//
// # Fault injection
//
// FaultWriter executes a FaultPlan — a clean write error, a short write
// with a lying nil error, or a mid-record crash that tears the tail and
// kills all later writes — against any journal target, and RandomPlan
// draws seeded schedules for sweeps. cmd/pricer's chaos mode drives
// randomized workloads through ingestion + journal + recovery under
// these plans and asserts the invariants above on every schedule.
package resilience
