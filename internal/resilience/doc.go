// Package resilience is the fault-tolerant front end around the pricing
// tier: a checksummed bid journal, deterministic crash recovery, a
// bounded-queue ingestion layer with admission control, a sharded
// durable tier with per-shard journals and partial-failure degradation,
// and seeded fault injection for testing all of it.
//
// The paper's guarantees — truthfulness and exact cost recovery — are
// economic statements about the set of accepted bids. A provider that
// loses accepted bids in a crash, or sheds them silently under load,
// breaks the mechanism even if it stays up. This package makes the
// accepted-bid set durable and the overload behavior explicit.
//
// # Journal format
//
// A journal is a line-oriented append-only log. Each record is one line:
//
//	<crc32-ieee-hex8> <payload-json>\n
//
// The checksum covers the payload bytes. The payload is a Record: a
// sequence number (strictly 1, 2, 3, …), a kind, and the mutation's
// arguments with all money in exact integer micro-dollars. A service
// journal opens with one "svc" config record (kind, horizon, catalog)
// followed by mutation records ("abid", "sbid", "adv", "close"); a
// period-manager journal opens with "mgr" and brackets each period's
// mutations with a "start" record carrying that period's recomputed
// costs. Each record is issued as a single Write to the log target
// (MemLog in memory, FileLog with per-record fsync on disk), so a crash
// tears at most the final record; ReadJournal verifies newline framing,
// checksum, and sequence continuity, and cleanly discards everything
// from the first damaged record on.
//
// # Recovery invariants
//
// Mutations follow accept-then-journal with fail-stop semantics: a call
// returns nil only if the mutation was applied AND journaled; the first
// journal write failure wedges the service (ErrJournalBroken) so an
// unjournaled accept can never be followed by further acknowledged work.
// Because every mechanism in internal/core is deterministic, replaying
// the journal's accepted prefix through RecoverService or
// RecoverPeriodManager reproduces invoices, revenue, cost, and the
// implemented set byte-identically — property-tested by crashing at
// every record boundary (and with torn tails) of randomized workloads.
// Recovery of a period manager re-runs the cost policy and verifies it
// against the journaled period costs, failing with ErrPolicyDiverged on
// any mismatch rather than silently recomputing different prices.
//
// # Retry and idempotency contract
//
// Ingest admits bids into a bounded queue and rejects overflow fast with
// the typed ErrOverloaded — never a silent drop; Counters carries the
// exact accounting. ErrOverloaded (and only it) is Retryable; Retry
// wraps an operation in capped exponential backoff. Blind retries are
// safe against a journaled service because submissions are idempotent:
// a resubmission byte-identical to an accepted one returns success
// without journaling or applying anything, so a client that lost the
// first acknowledgment cannot double-bid. Provider calls (AdvanceSlot,
// ClosePeriod) take a context deadline; a deadline error means the
// operation's fate is unknown (exactly as after a crash) and the caller
// resynchronizes from Now or the journal.
//
// # Sharded tier
//
// ShardedService partitions durable intake across N shards, each
// wrapping its own JournaledService with its own journal and sequence
// numbers. ShardFor routes each user to one shard by a fixed hash, so
// a user's bids — and any conflicting revisions — always meet the same
// journal. Shards validate, journal, and batch bids independently
// (submitters serialize only per shard); slot settlement then folds
// every shard's batch into a single derived settlement service in
// shard-index order, bids within a shard in journal order. Because the
// mechanisms price the per-window accepted-bid SET, invoices, revenue,
// surplus, and the implemented set are byte-identical to a one-shard
// tier at any N — property-tested at N ∈ {1, 2, 4, 8}.
//
// Failure degrades per shard: the first journal failure (or a bid that
// settles inconsistently, ErrPolicyDiverged) wedges only that shard,
// whose users get the typed ErrShardWedged (read-only) while every
// other shard keeps accepting; ShardCounters carries the exact
// accounting. Only when every shard is wedged does the tier refuse to
// advance, with ErrJournalBroken. RecoverShardedService rebuilds the
// tier from the N surviving journals (any subset torn or truncated):
// each shard's accepted prefix replays independently, then the slot
// frontiers reconcile — the maximum durable frontier wins, shards
// behind it roll forward deterministically by re-journaling the
// missing markers, and their stranded tail bids settle in exactly the
// window the live tier would have folded them into. Double recovery of
// the same journals is byte-identical, wedged set included.
//
// # Network transport
//
// The router/shard seam is the ShardTransport interface: Submit,
// Advance, ClosePeriod, and Stats with context deadlines. ShardHost
// adapts a shard's JournaledService to it in-process (the loopback the
// plain constructors use); the transport subpackage carries the same
// calls over a length-prefixed TCP protocol (ShardServer/ShardClient),
// and NewShardedServiceOver builds a tier on any mix of links after a
// Stats handshake verifies each link reaches the shard the router will
// treat it as. The seam's error contract is three-valued: an error
// wrapping ErrShardUnavailable means NO DECISION was reached (timeout,
// connection loss, breaker open) and the caller may retry blindly —
// submission idempotency via journal fingerprint dedup makes a
// duplicated delivery journal exactly once, and the re-acknowledgment
// carries the original sequence number; an error wrapping
// ErrJournalBroken means the shard fail-stopped and the router wedges
// it; anything else is a definitive mechanism rejection. The client
// layers bounded seeded-jitter retries (RetryIf), a per-shard circuit
// breaker that converts a failing shard's timeout storms into fast
// typed failures with single-probe half-open recovery, and an optional
// seeded network-fault injector (drops, duplicates, reorders, resets)
// for chaos drills — cmd/pricer's -chaos-net mode asserts faulted TCP
// rounds settle byte-identical to fault-free loopback references. See
// the transport package documentation for the wire format.
//
// # Observability
//
// Instrumentation is opt-in and inert: pass an *obs.Registry in
// IngestConfig.Obs or ShardedConfig.Obs and the front end and tier
// maintain exact outcome counters (mirroring Counters/ShardCounters),
// queue and batch high-water marks, and latency histograms for journal
// writes, operation applies, and slot advances — lock-free and
// allocation-free on the hot path. A nil registry costs one predicted
// nil check per hook. Metrics are bookkeeping only: an instrumented run
// produces byte-identical journals, invoices, and counters to a bare
// one (property-tested in obs_test.go). The metric name contract lives
// in obs.go and docs/metrics.md; cmd/pricer's -load mode drives the
// instrumented sharded tier to saturation and reports the knee.
//
// # Fault injection
//
// FaultWriter executes a FaultPlan — a clean write error, a short write
// with a lying nil error, or a mid-record crash that tears the tail and
// kills all later writes — against any journal target, and RandomPlan
// draws seeded schedules for sweeps. For the sharded tier,
// RandomShardPlans draws one independent plan per shard, and CrashGroup
// links the per-shard writers into one simulated process: any member
// crash (or a global write budget, KillAtWrite) stops every journal at
// the same instant, tearing at most one record on one shard — the
// cross-shard interleaving crash recovery must reconcile. cmd/pricer's
// chaos mode drives randomized workloads through ingestion + journal +
// recovery (single and sharded) under these plans and asserts the
// invariants above on every schedule.
package resilience
