package resilience

// The crash-replay property: for randomized additive and substitutive
// workloads, killing the journaled service at EVERY record boundary —
// and at every torn prefix of the next record — then recovering from the
// surviving bytes must reproduce invoices, revenue, cost, and the
// implemented set byte-identically to the uncrashed run at that same
// point. The uncrashed run is its own oracle: a snapshot string is taken
// after every journaled record, and each recovery is compared against
// the snapshot of its surviving prefix.

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"testing"

	"sharedopt"
	"sharedopt/internal/core"
	"sharedopt/internal/econ"
	"sharedopt/internal/stats"
)

// snapshotService renders the complete priced state of a service: the
// recovery targets named in the crash-replay contract plus the clock.
func snapshotService(s *sharedopt.Service) string {
	var b strings.Builder
	fmt.Fprintf(&b, "now=%d closed=%v revenue=%v cost=%v surplus=%v\n",
		s.Now(), s.Closed(), s.Revenue(), s.CostIncurred(), s.Surplus())
	fmt.Fprintf(&b, "implemented=%v\n", s.ImplementedOpts())
	inv := s.Invoices()
	users := make([]core.UserID, 0, len(inv))
	for u := range inv {
		users = append(users, u)
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
	for _, u := range users {
		fmt.Fprintf(&b, "user %d paid %v\n", u, inv[u])
	}
	return b.String()
}

// snapshotManager renders a journaled period manager's harvested state
// plus the open period's full service state.
func snapshotManager(m *JournaledPeriodManager) string {
	revenue, cost := m.Totals()
	s := fmt.Sprintf("period=%d revenue=%v cost=%v implemented=%v\n",
		m.Period(), revenue, cost, m.Implemented())
	if cur := m.Current(); cur != nil {
		s += snapshotService(cur.Service())
	}
	return s
}

// randomCatalog draws a small catalog with cent-precision costs.
func randomCatalog(r *stats.RNG, n int) []sharedopt.Optimization {
	opts := make([]sharedopt.Optimization, n)
	for i := range opts {
		opts[i] = sharedopt.Optimization{
			ID:   core.OptID(i + 1),
			Cost: econ.FromCents(int64(200 + r.Intn(1800))),
		}
	}
	return opts
}

// randomValues draws per-slot values for a [start, end] bid.
func randomValues(r *stats.RNG, start, end core.Slot) []econ.Money {
	vals := make([]econ.Money, int(end-start+1))
	for i := range vals {
		vals[i] = econ.FromCents(int64(r.Intn(800)))
	}
	return vals
}

// driveRandomWorkload runs one seeded randomized workload against js,
// returning one state snapshot per journaled record (snaps[k] is the
// state after record k+1). The mix includes valid bids, revisions-as-
// duplicates (idempotent no-ops), deliberately invalid bids (rejected,
// never journaled), slot advances, and a possible early close.
func driveRandomWorkload(t *testing.T, r *stats.RNG, js *JournaledService, m *MemLog,
	kind sharedopt.GameKind, catalog []sharedopt.Optimization, horizon core.Slot) []string {
	t.Helper()
	snaps := []string{snapshotService(js.Service())} // after the config record

	recordCount := func() int {
		recs, _, torn := ReadJournal(m.Bytes())
		if torn {
			t.Fatal("live journal torn without fault injection")
		}
		return len(recs)
	}
	snap := func() {
		for n := recordCount(); len(snaps) < n; {
			snaps = append(snaps, snapshotService(js.Service()))
		}
	}

	type accepted struct {
		opt core.OptID
		a   core.OnlineBid
		s   core.OnlineSubstBid
	}
	var bids []accepted
	nextUser := core.UserID(1)

	submit := func(now core.Slot) {
		start := now + 1 + core.Slot(r.Intn(int(horizon-now)))
		end := start + core.Slot(r.Intn(int(horizon-start)+1))
		u := nextUser
		nextUser++
		if kind == sharedopt.Additive {
			opt := catalog[r.Intn(len(catalog))].ID
			bid := core.OnlineBid{User: u, Start: start, End: end, Values: randomValues(r, start, end)}
			if err := js.SubmitAdditiveBid(opt, bid); err != nil {
				t.Fatalf("valid additive bid rejected: %v", err)
			}
			bids = append(bids, accepted{opt: opt, a: bid})
		} else {
			set := []core.OptID{catalog[r.Intn(len(catalog))].ID}
			if r.Intn(2) == 0 {
				for _, o := range catalog {
					if o.ID != set[0] && r.Intn(2) == 0 {
						set = append(set, o.ID)
					}
				}
			}
			bid := core.OnlineSubstBid{User: u, Opts: set, Start: start, End: end, Values: randomValues(r, start, end)}
			if err := js.SubmitSubstitutiveBid(bid); err != nil {
				t.Fatalf("valid substitutive bid rejected: %v", err)
			}
			bids = append(bids, accepted{s: bid})
		}
		snap()
	}

	resubmitDuplicate := func() {
		if len(bids) == 0 {
			return
		}
		before := recordCount()
		b := bids[r.Intn(len(bids))]
		var err error
		if kind == sharedopt.Additive {
			err = js.SubmitAdditiveBid(b.opt, b.a)
		} else {
			err = js.SubmitSubstitutiveBid(b.s)
		}
		if err != nil {
			t.Fatalf("duplicate resubmission not a no-op: %v", err)
		}
		if after := recordCount(); after != before {
			t.Fatalf("duplicate resubmission journaled a record (%d -> %d)", before, after)
		}
	}

	submitInvalid := func(now core.Slot) {
		before := recordCount()
		// Retroactive bid: always rejected once a slot was processed.
		if now == 0 {
			return
		}
		bad := core.OnlineBid{User: 9999, Start: now, End: now, Values: []econ.Money{econ.Dollar}}
		var err error
		if kind == sharedopt.Additive {
			err = js.SubmitAdditiveBid(catalog[0].ID, bad)
		} else {
			err = js.SubmitSubstitutiveBid(core.OnlineSubstBid{
				User: 9999, Opts: []core.OptID{catalog[0].ID},
				Start: bad.Start, End: bad.End, Values: bad.Values,
			})
		}
		if err == nil {
			t.Fatal("retroactive bid accepted")
		}
		if after := recordCount(); after != before {
			t.Fatal("rejected bid was journaled")
		}
	}

	for now := core.Slot(0); now < horizon; now++ {
		for i, k := 0, r.Intn(4); i < k; i++ {
			submit(now)
		}
		switch r.Intn(6) {
		case 0:
			resubmitDuplicate()
		case 1:
			submitInvalid(now)
		}
		if now > 0 && r.Intn(12) == 0 {
			if _, err := js.ClosePeriod(); err != nil {
				t.Fatal(err)
			}
			snap()
			return snaps
		}
		if _, err := js.AdvanceSlot(); err != nil {
			t.Fatal(err)
		}
		snap()
	}
	return snaps
}

// verifyCrashBoundaries recovers the journal image at every record
// boundary and at torn prefixes of each next record, comparing against
// the uncrashed run's snapshots. recover rebuilds state from a valid
// record prefix and renders its snapshot.
func verifyCrashBoundaries(t *testing.T, data []byte, snaps []string,
	recoverFn func(recs []Record) (string, error)) {
	t.Helper()
	bounds := recordBoundaries(data)
	if len(bounds) != len(snaps) {
		t.Fatalf("have %d record boundaries but %d snapshots", len(bounds), len(snaps))
	}
	for k, end := range bounds {
		cuts := []int{end} // exact record boundary
		if k+1 < len(bounds) {
			next := bounds[k+1]
			cuts = append(cuts, end+1, (end+next)/2, next-1) // torn tails
		}
		for _, cut := range cuts {
			if cut <= 0 || cut > len(data) {
				continue
			}
			recs, _, _ := ReadJournal(data[:cut])
			if len(recs) != k+1 {
				t.Fatalf("cut %d: surviving prefix has %d records, want %d", cut, len(recs), k+1)
			}
			got, err := recoverFn(recs)
			if err != nil {
				t.Fatalf("cut %d (after record %d): recovery failed: %v", cut, k+1, err)
			}
			if got != snaps[k] {
				t.Fatalf("cut %d (after record %d): recovered state diverged\n--- recovered ---\n%s--- uncrashed ---\n%s",
					cut, k+1, got, snaps[k])
			}
		}
	}
}

func testRecoverServiceCrashReplay(t *testing.T, kind sharedopt.GameKind) {
	for seed := uint64(1); seed <= 12; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := stats.NewRNG(seed)
			catalog := randomCatalog(r, 3)
			horizon := core.Slot(4 + r.Intn(5))
			var m MemLog
			js, err := NewJournaledService(kind, catalog, horizon, &m)
			if err != nil {
				t.Fatal(err)
			}
			snaps := driveRandomWorkload(t, r, js, &m, kind, catalog, horizon)
			data := m.Bytes()
			verifyCrashBoundaries(t, data, snaps, func(recs []Record) (string, error) {
				rec, err := RecoverService(recs, io.Discard)
				if err != nil {
					return "", err
				}
				return snapshotService(rec.Service()), nil
			})

			// A full recovery must also be able to continue operating:
			// replay everything into a truncated copy of the log and keep
			// journaling on it.
			var m2 MemLog
			if _, err := m2.Write(data); err != nil {
				t.Fatal(err)
			}
			recs, _, _ := ReadJournal(m2.Bytes())
			rec, err := RecoverService(recs, &m2)
			if err != nil {
				t.Fatal(err)
			}
			if !rec.Closed() {
				if _, err := rec.AdvanceSlot(); err != nil {
					t.Fatalf("recovered service cannot continue: %v", err)
				}
			} else if _, err := rec.ClosePeriod(); err != nil {
				t.Fatalf("recovered closed service: %v", err)
			}
		})
	}
}

func TestRecoverServiceCrashReplayAdditive(t *testing.T) {
	testRecoverServiceCrashReplay(t, sharedopt.Additive)
}

func TestRecoverServiceCrashReplaySubstitutive(t *testing.T) {
	testRecoverServiceCrashReplay(t, sharedopt.Substitutive)
}

// TestRecoverPeriodManagerCrashReplay runs multi-period workloads under
// a maintenance-discount policy and crashes at every record boundary,
// including the start-period records that reprice the catalog.
func TestRecoverPeriodManagerCrashReplay(t *testing.T) {
	policy, err := sharedopt.MaintenanceDiscount(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := stats.NewRNG(100 + seed)
			kind := sharedopt.Additive
			if seed%2 == 0 {
				kind = sharedopt.Substitutive
			}
			catalog := randomCatalog(r, 3)
			horizon := core.Slot(3 + r.Intn(3))
			var m MemLog
			jm, err := NewJournaledPeriodManager(kind, catalog, horizon, policy, &m)
			if err != nil {
				t.Fatal(err)
			}
			snaps := []string{snapshotManager(jm)}
			snap := func() {
				recs, _, torn := ReadJournal(m.Bytes())
				if torn {
					t.Fatal("live journal torn")
				}
				for len(snaps) < len(recs) {
					snaps = append(snaps, snapshotManager(jm))
				}
			}
			periods := 2 + int(seed%2)
			for p := 0; p < periods; p++ {
				js, err := jm.StartPeriod()
				if err != nil {
					t.Fatal(err)
				}
				snap()
				user := core.UserID(1)
				for now := core.Slot(0); now < horizon && !js.Closed(); now++ {
					for i, k := 0, r.Intn(3); i < k; i++ {
						start := now + 1 + core.Slot(r.Intn(int(horizon-now)))
						end := start + core.Slot(r.Intn(int(horizon-start)+1))
						vals := randomValues(r, start, end)
						if kind == sharedopt.Additive {
							err = js.SubmitAdditiveBid(catalog[r.Intn(len(catalog))].ID,
								core.OnlineBid{User: user, Start: start, End: end, Values: vals})
						} else {
							err = js.SubmitSubstitutiveBid(core.OnlineSubstBid{
								User: user, Opts: []core.OptID{catalog[r.Intn(len(catalog))].ID},
								Start: start, End: end, Values: vals})
						}
						if err != nil {
							t.Fatal(err)
						}
						user++
						snap()
					}
					if now > 0 && r.Intn(10) == 0 {
						if _, err := js.ClosePeriod(); err != nil {
							t.Fatal(err)
						}
						snap()
						break
					}
					if _, err := js.AdvanceSlot(); err != nil {
						t.Fatal(err)
					}
					snap()
				}
			}
			verifyCrashBoundaries(t, m.Bytes(), snaps, func(recs []Record) (string, error) {
				rec, err := RecoverPeriodManager(recs, policy, io.Discard)
				if err != nil {
					return "", err
				}
				return snapshotManager(rec), nil
			})
		})
	}
}

// TestRecoverPolicyDiverged recovers a maintenance-discount journal with
// a different policy: the journaled period-2 costs cannot be reproduced
// and recovery must refuse with ErrPolicyDiverged.
func TestRecoverPolicyDiverged(t *testing.T) {
	policy, err := sharedopt.MaintenanceDiscount(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	catalog := []sharedopt.Optimization{{ID: 1, Cost: econ.FromDollars(10)}}
	var m MemLog
	jm, err := NewJournaledPeriodManager(sharedopt.Additive, catalog, 1, policy, &m)
	if err != nil {
		t.Fatal(err)
	}
	js, err := jm.StartPeriod()
	if err != nil {
		t.Fatal(err)
	}
	if err := js.SubmitAdditiveBid(1, core.OnlineBid{
		User: 1, Start: 1, End: 1, Values: []econ.Money{econ.FromDollars(12)},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := js.AdvanceSlot(); err != nil { // implements opt 1, closes period
		t.Fatal(err)
	}
	if _, err := jm.StartPeriod(); err != nil { // period 2: discounted to $5
		t.Fatal(err)
	}
	recs, _, _ := ReadJournal(m.Bytes())
	if _, err := RecoverPeriodManager(recs, policy, io.Discard); err != nil {
		t.Fatalf("recovery with the original policy: %v", err)
	}
	if _, err := RecoverPeriodManager(recs, sharedopt.FixedCost, io.Discard); !errors.Is(err, ErrPolicyDiverged) {
		t.Fatalf("recovery with a different policy: got %v, want ErrPolicyDiverged", err)
	}
}

// TestRecoverIdempotentDuplicateAfterRecovery checks the idempotency
// fingerprints survive recovery: a duplicate of a pre-crash bid is still
// a no-op on the recovered service.
func TestRecoverIdempotentDuplicateAfterRecovery(t *testing.T) {
	catalog := []sharedopt.Optimization{{ID: 1, Cost: econ.FromDollars(10)}}
	var m MemLog
	js, err := NewJournaledService(sharedopt.Additive, catalog, 3, &m)
	if err != nil {
		t.Fatal(err)
	}
	bid := core.OnlineBid{User: 4, Start: 2, End: 2, Values: []econ.Money{econ.FromDollars(3)}}
	if err := js.SubmitAdditiveBid(1, bid); err != nil {
		t.Fatal(err)
	}
	recs, _, _ := ReadJournal(m.Bytes())
	rec, err := RecoverService(recs, &m)
	if err != nil {
		t.Fatal(err)
	}
	before := m.Len()
	if err := rec.SubmitAdditiveBid(1, bid); err != nil {
		t.Fatalf("duplicate after recovery: %v", err)
	}
	if m.Len() != before {
		t.Fatal("duplicate after recovery appended a record")
	}
	// A genuine revision (raised value) is NOT a duplicate and must
	// journal a new record.
	raised := core.OnlineBid{User: 4, Start: 2, End: 2, Values: []econ.Money{econ.FromDollars(5)}}
	if err := rec.SubmitAdditiveBid(1, raised); err != nil {
		t.Fatal(err)
	}
	if m.Len() == before {
		t.Fatal("revision was swallowed as a duplicate")
	}
}

// TestRecoverRejectsWrongJournalType ensures service and manager
// recovery refuse each other's journals.
func TestRecoverRejectsWrongJournalType(t *testing.T) {
	catalog := []sharedopt.Optimization{{ID: 1, Cost: econ.FromDollars(10)}}
	var svcLog, mgrLog MemLog
	if _, err := NewJournaledService(sharedopt.Additive, catalog, 2, &svcLog); err != nil {
		t.Fatal(err)
	}
	if _, err := NewJournaledPeriodManager(sharedopt.Additive, catalog, 2, nil, &mgrLog); err != nil {
		t.Fatal(err)
	}
	svcRecs, _, _ := ReadJournal(svcLog.Bytes())
	mgrRecs, _, _ := ReadJournal(mgrLog.Bytes())
	if _, err := RecoverService(mgrRecs, io.Discard); err == nil {
		t.Fatal("RecoverService accepted a manager journal")
	}
	if _, err := RecoverPeriodManager(svcRecs, nil, io.Discard); err == nil {
		t.Fatal("RecoverPeriodManager accepted a service journal")
	}
	if _, err := RecoverService(nil, io.Discard); !errors.Is(err, ErrEmptyJournal) {
		t.Fatal("empty journal not rejected")
	}
}
