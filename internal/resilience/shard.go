package resilience

// The sharded durable tier. A ShardedService partitions users across N
// shards, each wrapping a JournaledService with its own journal and its
// own per-shard sequence chain. Shards are the durability and admission
// authority: a submission routes to its user's shard, is validated and
// applied against that shard's replica, journaled in that shard's log,
// and buffered in the shard's between-slots batch. Settlement is global:
// AdvanceSlot freezes every shard's batch (journaling one adv marker per
// shard, in shard-index order), then folds the frozen batches — shard
// index order outside, journal order within a shard — into a single
// derived settlement game and advances it. The settlement game is never
// journaled; it is a pure deterministic function of the N journals, which
// is what makes invoices, surplus, and implemented sets byte-identical
// to the equivalent single-shard run at any shard count.
//
// Failure is partial by design: a journal append failure or a
// settlement-time policy divergence wedges only the shard it happened
// on. That shard's users get ErrShardWedged (read-only) while the other
// shards keep accepting and settling. Only when every shard is wedged
// does the tier as a whole refuse mutations.

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"sharedopt"
	"sharedopt/internal/core"
	"sharedopt/internal/econ"
	"sharedopt/internal/obs"
)

// ErrShardWedged marks a shard that can no longer accept mutations — its
// journal broke or its accepted history diverged from the settlement
// policy. The tier serves that shard's users read-only; other shards are
// unaffected. Errors wrapping it name the shard index and cause.
var ErrShardWedged = errors.New("resilience: shard wedged, serving its users read-only")

// ShardFor deterministically routes a user to one of shards shards. The
// function is part of the durable contract: recovery regroups users by
// re-deriving it, so it must never change for journals in the wild (the
// golden test pins its values). It is a 64-bit finalizer-style mixer, so
// consecutive user IDs spread evenly.
func ShardFor(u core.UserID, shards int) int {
	h := uint64(u) + 0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return int(h % uint64(shards))
}

// ShardedConfig tunes a ShardedService.
type ShardedConfig struct {
	// MaxBatch bounds each shard's between-slots ingestion batch. A
	// submission arriving at a full batch fails fast with ErrOverloaded
	// (retryable; the batch drains at the next AdvanceSlot). 0 means
	// unbounded.
	MaxBatch int
	// Obs, if non-nil, receives the tier's metrics: per-shard and
	// aggregate outcome counters, batch high-water marks, per-record
	// journal write latency, and slot-advance latency. See obs.go for
	// the name contract. Instrumentation is pure bookkeeping — journal
	// bytes and settlement are byte-identical with Obs nil or set.
	Obs *obs.Registry
}

// ShardCounters are one shard's exact ingestion statistics.
type ShardCounters struct {
	Accepted   uint64 // applied, journaled, and batched for settlement
	Rejected   uint64 // refused by the mechanism (validation, closed, …)
	Overloaded uint64 // turned away at a full between-slots batch
	ReadOnly   uint64 // turned away because the shard is wedged
	Settled    uint64 // folded into the settlement game so far
	Pending    uint64 // batched now, awaiting the next settlement
}

// pendingBid is one accepted submission waiting in a shard's batch for
// the next settlement fold.
type pendingBid struct {
	additive bool
	opt      core.OptID
	abid     core.OnlineBid
	sbid     core.OnlineSubstBid
}

func (p pendingBid) user() core.UserID {
	if p.additive {
		return p.abid.User
	}
	return p.sbid.User
}

// applyTo replays the pending bid into the settlement game.
func (p pendingBid) applyTo(svc *sharedopt.Service) error {
	if p.additive {
		return svc.SubmitAdditiveBid(p.opt, p.abid)
	}
	return svc.SubmitSubstitutiveBid(p.sbid)
}

// shard is one partition: a journaled replica plus the batch of accepted
// bids not yet folded into settlement.
type shard struct {
	mu       sync.Mutex
	js       *JournaledService
	batch    []pendingBid
	wedged   error // non-nil once read-only; wraps ErrShardWedged
	counters ShardCounters
	om       shardMetrics // zero value when the tier is uninstrumented
}

// ShardedService is the N-shard durable pricing tier. It satisfies the
// Backend interface, so it drops into the Ingest front end unchanged.
type ShardedService struct {
	mu       sync.Mutex // serializes settlement (AdvanceSlot/ClosePeriod)
	kind     sharedopt.GameKind
	horizon  core.Slot
	maxBatch int
	shards   []*shard
	settle   *sharedopt.Service // derived global game; never journaled
	tm       tierMetrics        // zero value when uninstrumented
}

// shardConfigRecord builds shard i's opening journal record.
func shardConfigRecord(kind sharedopt.GameKind, opts []sharedopt.Optimization, horizon core.Slot, i, n int) Record {
	return Record{
		Kind:    KindShardConfig,
		Game:    gameName(kind),
		Horizon: horizon,
		Opts:    optCosts(opts),
		Shard:   i,
		Shards:  n,
	}
}

// NewShardedService opens a fresh sharded period over len(writers)
// shards, one journal target per shard. Each shard's journal opens with
// a KindShardConfig record naming its index and the shard count; the
// constructor fails if any config write fails (nothing durable was
// acknowledged, so there is nothing to recover).
func NewShardedService(kind sharedopt.GameKind, opts []sharedopt.Optimization, horizon core.Slot, writers []io.Writer, cfg ShardedConfig) (*ShardedService, error) {
	if kind != sharedopt.Additive && kind != sharedopt.Substitutive {
		return nil, fmt.Errorf("resilience: unknown game kind %v", kind)
	}
	n := len(writers)
	if n < 1 {
		return nil, errors.New("resilience: sharded service needs at least one journal writer")
	}
	settle, err := newService(kind, opts, horizon)
	if err != nil {
		return nil, err
	}
	s := &ShardedService{
		kind:     kind,
		horizon:  horizon,
		maxBatch: cfg.MaxBatch,
		shards:   make([]*shard, n),
		settle:   settle,
		tm:       newTierMetrics(cfg.Obs),
	}
	for i, w := range writers {
		replica, err := newService(kind, opts, horizon)
		if err != nil {
			return nil, err
		}
		om := newShardMetrics(cfg.Obs, i)
		if cfg.Obs != nil {
			// Observe every durable write's latency (the fsync, on a
			// FileLog). TimedWriter passes bytes through untouched, so
			// the journal image is identical with or without it.
			w = obs.TimedWriter{W: w, H: cfg.Obs.Histogram(fmt.Sprintf("shard%d.journal_write_ns", i), nil)}
		}
		j := NewJournal(w)
		if err := j.Append(shardConfigRecord(kind, opts, horizon, i, n)); err != nil {
			return nil, fmt.Errorf("resilience: shard %d: %w", i, err)
		}
		s.shards[i] = &shard{js: newJournaledOn(replica, j), om: om}
	}
	return s, nil
}

// Shards returns the shard count.
func (s *ShardedService) Shards() int { return len(s.shards) }

// Wedged returns the error that wedged shard i, or nil if it is healthy.
func (s *ShardedService) Wedged(i int) error {
	sh := s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.wedged
}

// WedgedShards returns the indices of wedged shards, in order.
func (s *ShardedService) WedgedShards() []int {
	var out []int
	for i, sh := range s.shards {
		sh.mu.Lock()
		if sh.wedged != nil {
			out = append(out, i)
		}
		sh.mu.Unlock()
	}
	return out
}

// ShardStats returns a copy of every shard's counters, indexed by shard.
func (s *ShardedService) ShardStats() []ShardCounters {
	out := make([]ShardCounters, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.Lock()
		out[i] = sh.counters
		out[i].Pending = uint64(len(sh.batch))
		sh.mu.Unlock()
	}
	return out
}

// wedgeLocked marks shard i read-only with cause. sh.mu must be held.
func (s *ShardedService) wedgeLocked(i int, cause error) {
	sh := s.shards[i]
	if sh.wedged == nil {
		sh.wedged = fmt.Errorf("%w: shard %d: %w", ErrShardWedged, i, cause)
		sh.om.wedged.Inc()
		s.tm.wedged.Inc()
	}
}

// SubmitAdditiveBid routes the bid to its user's shard, applies and
// journals it there, and batches it for the next settlement. Duplicates
// of already-accepted bids return nil without re-batching (the
// idempotent-retry contract); a wedged shard returns ErrShardWedged; a
// full batch returns ErrOverloaded.
func (s *ShardedService) SubmitAdditiveBid(opt core.OptID, bid core.OnlineBid) error {
	p := pendingBid{additive: true, opt: opt, abid: core.OnlineBid{
		User: bid.User, Start: bid.Start, End: bid.End,
		Values: append([]econ.Money(nil), bid.Values...),
	}}
	return s.submit(bid.User, p, func(js *JournaledService) error {
		return js.SubmitAdditiveBid(opt, bid)
	})
}

// SubmitSubstitutiveBid is SubmitAdditiveBid for the substitutive game.
func (s *ShardedService) SubmitSubstitutiveBid(bid core.OnlineSubstBid) error {
	p := pendingBid{additive: false, sbid: core.OnlineSubstBid{
		User: bid.User, Opts: append([]core.OptID(nil), bid.Opts...),
		Start: bid.Start, End: bid.End,
		Values: append([]econ.Money(nil), bid.Values...),
	}}
	return s.submit(bid.User, p, func(js *JournaledService) error {
		return js.SubmitSubstitutiveBid(bid)
	})
}

// submit runs the routed accept-then-batch protocol for one submission.
func (s *ShardedService) submit(u core.UserID, p pendingBid, apply func(*JournaledService) error) error {
	i := ShardFor(u, len(s.shards))
	sh := s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.wedged != nil {
		sh.counters.ReadOnly++
		sh.om.readOnly.Inc()
		s.tm.readOnly.Inc()
		return sh.wedged
	}
	if s.maxBatch > 0 && len(sh.batch) >= s.maxBatch {
		sh.counters.Overloaded++
		sh.om.overloaded.Inc()
		s.tm.overloaded.Inc()
		return fmt.Errorf("%w: shard %d batch full (%d pending)", ErrOverloaded, i, len(sh.batch))
	}
	// The shard journal's sequence number tells duplicates apart from
	// fresh accepts: an idempotent duplicate returns nil without
	// journaling, and must not be folded into settlement twice.
	before := sh.js.j.Seq()
	if err := apply(sh.js); err != nil {
		if sh.js.Broken() != nil {
			s.wedgeLocked(i, err)
			sh.counters.ReadOnly++
			sh.om.readOnly.Inc()
			s.tm.readOnly.Inc()
			return sh.wedged
		}
		sh.counters.Rejected++
		sh.om.rejected.Inc()
		s.tm.rejected.Inc()
		return err
	}
	if sh.js.j.Seq() == before {
		return nil // duplicate: already journaled and already settled/batched
	}
	sh.counters.Accepted++
	sh.om.accepted.Inc()
	s.tm.accepted.Inc()
	sh.batch = append(sh.batch, p)
	sh.om.batchHigh.Observe(uint64(len(sh.batch)))
	return nil
}

// foldBatchLocked replays one shard's frozen batch into the settlement
// game. The journal holds only accepted bids, so a settlement rejection
// means the shard's history diverged from global policy (e.g. a user's
// bids were split across shards by a router change): the shard is wedged
// with ErrPolicyDiverged and the rest of its batch is skipped — the same
// rule recovery applies, so live and recovered settlement agree. s.mu
// and sh.mu must be held.
func (s *ShardedService) foldBatchLocked(i int, batch []pendingBid) {
	sh := s.shards[i]
	for k, p := range batch {
		if err := p.applyTo(s.settle); err != nil {
			s.wedgeLocked(i, fmt.Errorf("%w: settling accepted bid of user %d: %w", ErrPolicyDiverged, p.user(), err))
			sh.counters.Settled += uint64(k)
			sh.om.settled.Add(uint64(k))
			s.tm.settled.Add(uint64(k))
			return
		}
	}
	sh.counters.Settled += uint64(len(batch))
	sh.om.settled.Add(uint64(len(batch)))
	s.tm.settled.Add(uint64(len(batch)))
}

// drainLocked freezes every shard's batch for settlement, journaling
// one marker record (adv or close) per healthy shard in shard-index
// order. Wedged shards get no marker but their batches still drain:
// those bids were accepted, so they are durable in the shard's journal
// ahead of its missing marker, and recovery folds such a tail into
// exactly this window — live settlement must agree. A marker failure
// wedges its shard. Returns the frozen batches and how many shards
// journaled the marker.
func (s *ShardedService) drainLocked(marker func(*JournaledService) error) (batches [][]pendingBid, acknowledged int) {
	batches = make([][]pendingBid, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.Lock()
		batches[i] = sh.batch
		sh.batch = nil
		if sh.wedged == nil {
			if err := marker(sh.js); err != nil {
				s.wedgeLocked(i, err)
			} else {
				acknowledged++
			}
		}
		sh.mu.Unlock()
	}
	return batches, acknowledged
}

// restoreLocked puts frozen batches back at the head of their shards'
// queues after a settlement that could not be acknowledged anywhere.
func (s *ShardedService) restoreLocked(batches [][]pendingBid) {
	for i, b := range batches {
		if len(b) == 0 {
			continue
		}
		sh := s.shards[i]
		sh.mu.Lock()
		sh.batch = append(b, sh.batch...)
		sh.mu.Unlock()
	}
}

// errAllWedged is the tier-dead error: nothing can be made durable.
func (s *ShardedService) errAllWedged() error {
	return fmt.Errorf("%w: all %d shards: %w", ErrJournalBroken, len(s.shards), ErrShardWedged)
}

// AdvanceSlot settles one billing window: it freezes every healthy
// shard's batch behind an adv marker in that shard's journal (shard-index
// order), folds the frozen batches into the settlement game in the same
// order, and advances the settlement slot. At least one shard must
// journal the marker for the advance to be acknowledged; otherwise the
// batches are restored and the tier-dead error returned.
func (s *ShardedService) AdvanceSlot() (core.SlotReport, error) {
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.settle.Closed() {
		return core.SlotReport{}, sharedopt.ErrPeriodOver
	}
	batches, acked := s.drainLocked(func(js *JournaledService) error {
		_, err := js.AdvanceSlot()
		return err
	})
	if acked == 0 {
		s.restoreLocked(batches)
		return core.SlotReport{}, s.errAllWedged()
	}
	for i := range s.shards {
		if len(batches[i]) == 0 {
			continue
		}
		sh := s.shards[i]
		sh.mu.Lock()
		s.foldBatchLocked(i, batches[i])
		sh.mu.Unlock()
	}
	report, err := s.settle.AdvanceSlot()
	if err == nil {
		s.tm.advances.Inc()
		s.tm.advanceNs.ObserveSince(start)
	}
	return report, err
}

// ClosePeriod settles the period early: every healthy shard journals a
// close marker (draining its batch first, same protocol as AdvanceSlot),
// the drained bids fold into settlement, and the settlement game closes.
// Idempotent like the single-shard service.
func (s *ShardedService) ClosePeriod() (map[core.UserID]econ.Money, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.settle.Closed() {
		return s.settle.ClosePeriod() // no state change, nothing to journal
	}
	batches, acked := s.drainLocked(func(js *JournaledService) error {
		_, err := js.ClosePeriod()
		return err
	})
	if acked == 0 {
		s.restoreLocked(batches)
		return nil, s.errAllWedged()
	}
	for i := range s.shards {
		if len(batches[i]) == 0 {
			continue
		}
		sh := s.shards[i]
		sh.mu.Lock()
		s.foldBatchLocked(i, batches[i])
		sh.mu.Unlock()
	}
	return s.settle.ClosePeriod()
}

// The read side delegates to the derived settlement game, which carries
// the global economic state (the shard replicas only validate and
// deduplicate).

// Kind returns the tier's valuation model.
func (s *ShardedService) Kind() sharedopt.GameKind { return s.kind }

// Horizon returns the period length in slots.
func (s *ShardedService) Horizon() core.Slot { return s.horizon }

// Now returns the last settled slot.
func (s *ShardedService) Now() core.Slot { return s.settle.Now() }

// Closed reports whether the period has ended.
func (s *ShardedService) Closed() bool { return s.settle.Closed() }

// Invoice returns a user's settled payments.
func (s *ShardedService) Invoice(u core.UserID) (econ.Money, bool) { return s.settle.Invoice(u) }

// Invoices returns a copy of all settled invoices.
func (s *ShardedService) Invoices() map[core.UserID]econ.Money { return s.settle.Invoices() }

// Revenue returns total payments charged so far.
func (s *ShardedService) Revenue() econ.Money { return s.settle.Revenue() }

// CostIncurred returns the summed cost of implemented optimizations.
func (s *ShardedService) CostIncurred() econ.Money { return s.settle.CostIncurred() }

// Surplus returns Revenue − CostIncurred under one lock.
func (s *ShardedService) Surplus() econ.Money { return s.settle.Surplus() }

// ImplementedOpts returns the implemented optimizations in ID order.
func (s *ShardedService) ImplementedOpts() []core.OptID { return s.settle.ImplementedOpts() }
