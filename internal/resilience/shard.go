package resilience

// The sharded durable tier. A ShardedService partitions users across N
// shards and talks to each through a ShardTransport (see transport.go):
// in-process ShardHost loopbacks by default, TCP clients when the shards
// live in other processes. Shards are the durability and admission
// authority: a submission routes to its user's shard, is validated and
// applied against that shard's replica, journaled in that shard's log,
// and buffered in the router's between-slots batch. Settlement is
// global: AdvanceSlot freezes every shard's batch behind one durable adv
// marker per shard (shard-index order), then folds the frozen batches —
// shard index order outside, journal order within a shard — into a
// single derived settlement game and advances it. The settlement game is
// never journaled; it is a pure deterministic function of the N
// journals, which is what makes invoices, surplus, and implemented sets
// byte-identical to the equivalent single-shard run at any shard count.
//
// Failure is partial by design, and now two-axis. A journal append
// failure or settlement-time policy divergence wedges only the shard it
// happened on — fail-stop, ErrShardWedged, that shard's users read-only
// while the rest keep settling. A transport failure (deadline, dropped
// connection, breaker open) is transient — ErrShardUnavailable: the
// submit's fate is in doubt and the router resolves it by idempotent
// resubmission at the next settlement; a settlement round with an
// unreachable shard parks durably-marked shards and retries until the
// stragglers answer. Only when every shard is wedged does the tier as a
// whole refuse mutations.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"sharedopt"
	"sharedopt/internal/core"
	"sharedopt/internal/econ"
	"sharedopt/internal/obs"
)

// ErrShardWedged marks a shard that can no longer accept mutations — its
// journal broke or its accepted history diverged from the settlement
// policy. The tier serves that shard's users read-only; other shards are
// unaffected. Errors wrapping it name the shard index and cause.
var ErrShardWedged = errors.New("resilience: shard wedged, serving its users read-only")

// ShardFor deterministically routes a user to one of shards shards. The
// function is part of the durable contract: recovery regroups users by
// re-deriving it, so it must never change for journals in the wild (the
// golden test pins its values). It is a 64-bit finalizer-style mixer, so
// consecutive user IDs spread evenly.
func ShardFor(u core.UserID, shards int) int {
	h := uint64(u) + 0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return int(h % uint64(shards))
}

// ShardedConfig tunes a ShardedService.
type ShardedConfig struct {
	// MaxBatch bounds each shard's between-slots ingestion batch. A
	// submission arriving at a full batch (in-flight submissions count)
	// fails fast with ErrOverloaded (retryable; the batch drains at the
	// next AdvanceSlot). 0 means unbounded.
	MaxBatch int
	// CallTimeout bounds each transport call — submit, marker, stats —
	// when the shards sit behind a real network. 0 means no deadline,
	// which is right for the in-process loopback transport.
	CallTimeout time.Duration
	// Obs, if non-nil, receives the tier's metrics: per-shard and
	// aggregate outcome counters, batch high-water marks, per-record
	// journal write latency, and slot-advance latency. See obs.go for
	// the name contract. Instrumentation is pure bookkeeping — journal
	// bytes and settlement are byte-identical with Obs nil or set.
	Obs *obs.Registry
}

// ShardCounters are one shard's exact ingestion statistics, as observed
// by the router.
type ShardCounters struct {
	Accepted    uint64 // applied, journaled, and batched for settlement
	Rejected    uint64 // refused by the mechanism (validation, closed, …)
	Overloaded  uint64 // turned away at a full between-slots batch
	ReadOnly    uint64 // turned away because the shard is wedged
	Unavailable uint64 // transport calls that reached no decision (fate in doubt until resolved)
	Settled     uint64 // folded into the settlement game so far
	Pending     uint64 // batched or frozen now, awaiting settlement
}

// pendingBid is one accepted submission waiting in a shard's batch for
// the next settlement fold. seq is the journal sequence the shard
// assigned it; folds sort by it, so settlement order equals journal
// order even when pipelined acknowledgments arrive out of order.
type pendingBid struct {
	seq      uint64
	additive bool
	opt      core.OptID
	abid     core.OnlineBid
	sbid     core.OnlineSubstBid
}

func (p pendingBid) user() core.UserID {
	if p.additive {
		return p.abid.User
	}
	return p.sbid.User
}

// applyTo replays the pending bid into the settlement game.
func (p pendingBid) applyTo(svc *sharedopt.Service) error {
	if p.additive {
		return svc.SubmitAdditiveBid(p.opt, p.abid)
	}
	return svc.SubmitSubstitutiveBid(p.sbid)
}

// indoubtBid is a submission whose transport call ended unavailable: it
// may or may not be durable on its shard. The router resolves it by
// idempotent resubmission before the next settlement marker, so the
// folded set always equals the journaled set.
type indoubtBid struct {
	p   pendingBid
	rec Record
	fp  string
}

// shard is the router's view of one partition: the transport link plus
// the batch of accepted bids not yet folded into settlement.
type shard struct {
	mu   sync.Mutex
	idle *sync.Cond // signaled when inflight hits 0 or settling clears
	link ShardTransport
	// batch holds accepted bids of the open window; frozen holds the
	// bids drained for the in-progress settlement round (non-empty only
	// while a round is pending on an unreachable shard or mid-fold).
	batch  []pendingBid
	frozen []pendingBid
	// batched marks the fingerprints this router has folded or will
	// fold, which is what tells a duplicate acknowledgment (retry after
	// a lost reply) from a fresh accept that must be batched once.
	batched map[string]bool
	indoubt []indoubtBid
	// marked is true while the in-progress settlement round's marker is
	// durable on this shard (cleared when the round completes).
	marked bool
	// settling gates submissions while this shard's batch freezes, and
	// inflight counts submissions currently on the wire: the freeze
	// waits for them, so every bid journaled ahead of the marker is in
	// the frozen batch.
	settling bool
	inflight int
	wedged   error // non-nil once read-only; wraps ErrShardWedged
	counters ShardCounters
	om       shardMetrics // zero value when the tier is uninstrumented
}

func newShard(link ShardTransport, om shardMetrics) *shard {
	sh := &shard{link: link, batched: make(map[string]bool), om: om}
	sh.idle = sync.NewCond(&sh.mu)
	return sh
}

// dropIndoubtLocked forgets in-doubt entries for fp after a later
// delivery of the same bid reached a definitive outcome.
func (sh *shard) dropIndoubtLocked(fp string) {
	kept := sh.indoubt[:0]
	for _, in := range sh.indoubt {
		if in.fp != fp {
			kept = append(kept, in)
		}
	}
	sh.indoubt = kept
}

// Settlement-round phases: a partially-acknowledged round (some shards
// unreachable) parks durably and must be driven to completion before a
// different round kind can start.
const (
	phaseIdle = iota
	phaseAdvance
	phaseClose
)

// ShardedService is the N-shard durable pricing tier. It satisfies the
// Backend interface, so it drops into the Ingest front end unchanged.
type ShardedService struct {
	mu       sync.Mutex // serializes settlement (AdvanceSlot/ClosePeriod)
	kind     sharedopt.GameKind
	horizon  core.Slot
	maxBatch int
	timeout  time.Duration
	phase    int
	shards   []*shard
	settle   *sharedopt.Service // derived global game; never journaled
	tm       tierMetrics        // zero value when uninstrumented
}

// shardConfigRecord builds shard i's opening journal record.
func shardConfigRecord(kind sharedopt.GameKind, opts []sharedopt.Optimization, horizon core.Slot, i, n int) Record {
	return Record{
		Kind:    KindShardConfig,
		Game:    gameName(kind),
		Horizon: horizon,
		Opts:    optCosts(opts),
		Shard:   i,
		Shards:  n,
	}
}

// NewShardedService opens a fresh sharded period over len(writers)
// shards, one journal target per shard, fronted by in-process loopback
// transports. Each shard's journal opens with a KindShardConfig record
// naming its index and the shard count; the constructor fails if any
// config write fails (nothing durable was acknowledged, so there is
// nothing to recover).
func NewShardedService(kind sharedopt.GameKind, opts []sharedopt.Optimization, horizon core.Slot, writers []io.Writer, cfg ShardedConfig) (*ShardedService, error) {
	if kind != sharedopt.Additive && kind != sharedopt.Substitutive {
		return nil, fmt.Errorf("resilience: unknown game kind %v", kind)
	}
	n := len(writers)
	if n < 1 {
		return nil, errors.New("resilience: sharded service needs at least one journal writer")
	}
	links := make([]ShardTransport, n)
	for i, w := range writers {
		if cfg.Obs != nil {
			// Observe every durable write's latency (the fsync, on a
			// FileLog). TimedWriter passes bytes through untouched, so
			// the journal image is identical with or without it.
			w = obs.TimedWriter{W: w, H: cfg.Obs.Histogram(fmt.Sprintf("shard%d.journal_write_ns", i), nil)}
		}
		h, err := NewShardHost(kind, opts, horizon, i, n, w)
		if err != nil {
			return nil, err
		}
		links[i] = h
	}
	return NewShardedServiceOver(kind, opts, horizon, links, cfg)
}

// NewShardedServiceOver opens a sharded tier over caller-provided shard
// transports — loopback ShardHosts, TCP ShardClients, or a mix. The
// constructor handshakes with every link (a Stats call) and refuses
// links whose shard identity or tier config disagree with the
// arguments, so a misrouted address fails loudly at startup instead of
// corrupting settlement later.
func NewShardedServiceOver(kind sharedopt.GameKind, opts []sharedopt.Optimization, horizon core.Slot, links []ShardTransport, cfg ShardedConfig) (*ShardedService, error) {
	if kind != sharedopt.Additive && kind != sharedopt.Substitutive {
		return nil, fmt.Errorf("resilience: unknown game kind %v", kind)
	}
	n := len(links)
	if n < 1 {
		return nil, errors.New("resilience: sharded service needs at least one shard transport")
	}
	settle, err := newService(kind, opts, horizon)
	if err != nil {
		return nil, err
	}
	s := &ShardedService{
		kind:     kind,
		horizon:  horizon,
		maxBatch: cfg.MaxBatch,
		timeout:  cfg.CallTimeout,
		shards:   make([]*shard, n),
		settle:   settle,
		tm:       newTierMetrics(cfg.Obs),
	}
	want := optCosts(opts)
	for i, link := range links {
		ctx, cancel := s.callCtx()
		info, err := link.Stats(ctx)
		cancel()
		if err != nil {
			return nil, fmt.Errorf("resilience: shard %d handshake: %w", i, err)
		}
		if info.Shard != i || info.Shards != n {
			return nil, fmt.Errorf("resilience: link %d fronts shard %d of %d, want shard %d of %d", i, info.Shard, info.Shards, i, n)
		}
		if info.Game != gameName(kind) || info.Horizon != horizon || !sameOptCosts(info.Opts, want) {
			return nil, fmt.Errorf("resilience: shard %d disagrees with the tier on game config", i)
		}
		s.shards[i] = newShard(link, newShardMetrics(cfg.Obs, i))
	}
	return s, nil
}

// sameOptCosts compares two journal-form catalogs.
func sameOptCosts(a, b []OptCost) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// callCtx builds the per-call context for a transport operation.
func (s *ShardedService) callCtx() (context.Context, context.CancelFunc) {
	if s.timeout > 0 {
		return context.WithTimeout(context.Background(), s.timeout)
	}
	return context.Background(), func() {}
}

// Shards returns the shard count.
func (s *ShardedService) Shards() int { return len(s.shards) }

// Wedged returns the error that wedged shard i, or nil if it is healthy.
func (s *ShardedService) Wedged(i int) error {
	sh := s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.wedged
}

// WedgedShards returns the indices of wedged shards, in order.
func (s *ShardedService) WedgedShards() []int {
	var out []int
	for i, sh := range s.shards {
		sh.mu.Lock()
		if sh.wedged != nil {
			out = append(out, i)
		}
		sh.mu.Unlock()
	}
	return out
}

// ShardStats returns a copy of every shard's counters, indexed by shard.
func (s *ShardedService) ShardStats() []ShardCounters {
	out := make([]ShardCounters, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.Lock()
		out[i] = sh.counters
		out[i].Pending = uint64(len(sh.batch) + len(sh.frozen))
		sh.mu.Unlock()
	}
	return out
}

// wedgeLocked marks shard i read-only with cause. sh.mu must be held.
func (s *ShardedService) wedgeLocked(i int, cause error) {
	sh := s.shards[i]
	if sh.wedged == nil {
		sh.wedged = fmt.Errorf("%w: shard %d: %w", ErrShardWedged, i, cause)
		sh.om.wedged.Inc()
		s.tm.wedged.Inc()
	}
}

// SubmitAdditiveBid routes the bid to its user's shard, applies and
// journals it there, and batches it for the next settlement. Duplicates
// of already-accepted bids return nil without re-batching (the
// idempotent-retry contract); a wedged shard returns ErrShardWedged; a
// full batch returns ErrOverloaded; an unreachable shard returns
// ErrShardUnavailable, leaving the bid in doubt until a retry or the
// next settlement's resolution decides it.
func (s *ShardedService) SubmitAdditiveBid(opt core.OptID, bid core.OnlineBid) error {
	p := pendingBid{additive: true, opt: opt, abid: core.OnlineBid{
		User: bid.User, Start: bid.Start, End: bid.End,
		Values: append([]econ.Money(nil), bid.Values...),
	}}
	return s.submit(bid.User, p, additiveBidRecord(opt, p.abid))
}

// SubmitSubstitutiveBid is SubmitAdditiveBid for the substitutive game.
func (s *ShardedService) SubmitSubstitutiveBid(bid core.OnlineSubstBid) error {
	p := pendingBid{additive: false, sbid: core.OnlineSubstBid{
		User: bid.User, Opts: append([]core.OptID(nil), bid.Opts...),
		Start: bid.Start, End: bid.End,
		Values: append([]econ.Money(nil), bid.Values...),
	}}
	return s.submit(bid.User, p, substBidRecord(p.sbid))
}

// submit runs the routed accept-then-batch protocol for one submission.
// The shard lock is released during the transport call, so submissions
// pipeline: admission counts in-flight calls against MaxBatch, and the
// durable sequence in the acknowledgment restores journal order at fold
// time.
func (s *ShardedService) submit(u core.UserID, p pendingBid, rec Record) error {
	i := ShardFor(u, len(s.shards))
	sh := s.shards[i]
	fp := rec.fingerprint()
	sh.mu.Lock()
	for sh.settling && sh.wedged == nil {
		sh.idle.Wait()
	}
	if sh.wedged != nil {
		sh.counters.ReadOnly++
		sh.om.readOnly.Inc()
		s.tm.readOnly.Inc()
		err := sh.wedged
		sh.mu.Unlock()
		return err
	}
	if s.maxBatch > 0 && len(sh.batch)+sh.inflight >= s.maxBatch {
		sh.counters.Overloaded++
		sh.om.overloaded.Inc()
		s.tm.overloaded.Inc()
		pending := len(sh.batch) + sh.inflight
		sh.mu.Unlock()
		return fmt.Errorf("%w: shard %d batch full (%d pending)", ErrOverloaded, i, pending)
	}
	sh.inflight++
	sh.mu.Unlock()

	ctx, cancel := s.callCtx()
	res, err := sh.link.Submit(ctx, rec)
	cancel()

	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.inflight--
	if sh.inflight == 0 {
		sh.idle.Broadcast()
	}
	if err != nil {
		switch {
		case errors.Is(err, ErrJournalBroken):
			s.wedgeLocked(i, err)
			sh.counters.ReadOnly++
			sh.om.readOnly.Inc()
			s.tm.readOnly.Inc()
			return sh.wedged
		case errors.Is(err, ErrShardUnavailable):
			sh.counters.Unavailable++
			sh.om.unavailable.Inc()
			s.tm.unavailable.Inc()
			// Fate unknown: the shard may have journaled the bid before
			// the reply was lost. Remember it so settlement resolves it
			// by idempotent resubmission before the next marker.
			if !sh.batched[fp] {
				sh.indoubt = append(sh.indoubt, indoubtBid{p: p, rec: rec, fp: fp})
			}
			return fmt.Errorf("resilience: shard %d: %w", i, err)
		default:
			sh.counters.Rejected++
			sh.om.rejected.Inc()
			s.tm.rejected.Inc()
			sh.dropIndoubtLocked(fp) // definitively rejected: nothing durable to resolve
			return err
		}
	}
	if sh.batched[fp] {
		return nil // duplicate: already journaled and already batched/settled
	}
	// Fresh accept — or a non-fresh acknowledgment whose original reply
	// was lost (the shard journaled it, this router never batched it):
	// either way the bid is durable exactly once and must fold exactly
	// once.
	p.seq = res.Seq
	sh.counters.Accepted++
	sh.om.accepted.Inc()
	s.tm.accepted.Inc()
	sh.batch = append(sh.batch, p)
	sh.batched[fp] = true
	sh.om.batchHigh.Observe(uint64(len(sh.batch)))
	return nil
}

// foldBatchLocked replays one shard's frozen batch into the settlement
// game. The journal holds only accepted bids, so a settlement rejection
// means the shard's history diverged from global policy (e.g. a user's
// bids were split across shards by a router change): the shard is wedged
// with ErrPolicyDiverged and the rest of its batch is skipped — the same
// rule recovery applies, so live and recovered settlement agree. s.mu
// and sh.mu must be held.
func (s *ShardedService) foldBatchLocked(i int, batch []pendingBid) {
	sh := s.shards[i]
	for k, p := range batch {
		if err := p.applyTo(s.settle); err != nil {
			s.wedgeLocked(i, fmt.Errorf("%w: settling accepted bid of user %d: %w", ErrPolicyDiverged, p.user(), err))
			sh.counters.Settled += uint64(k)
			sh.om.settled.Add(uint64(k))
			s.tm.settled.Add(uint64(k))
			return
		}
	}
	sh.counters.Settled += uint64(len(batch))
	sh.om.settled.Add(uint64(len(batch)))
	s.tm.settled.Add(uint64(len(batch)))
}

// foldFrozenLocked folds a frozen batch in journal order: pipelined
// acknowledgments append to the batch in arrival order, so the fold
// sorts by the durable sequence first — the order recovery replays.
func (s *ShardedService) foldFrozenLocked(i int, frozen []pendingBid) {
	sort.Slice(frozen, func(a, b int) bool { return frozen[a].seq < frozen[b].seq })
	s.foldBatchLocked(i, frozen)
}

// resolveIndoubtLocked drives shard i's in-doubt submissions to a
// definitive outcome by idempotent resubmission, before the settlement
// marker freezes the window. A bid the shard had journaled (reply lost)
// is acknowledged as a duplicate and joins the batch; one it never saw
// is journaled now or definitively rejected. Returns false if the shard
// is unreachable — the round cannot mark it yet. s.mu and sh.mu held.
func (s *ShardedService) resolveIndoubtLocked(i int, sh *shard) bool {
	for len(sh.indoubt) > 0 {
		in := sh.indoubt[0]
		if sh.batched[in.fp] {
			sh.indoubt = sh.indoubt[1:]
			continue
		}
		ctx, cancel := s.callCtx()
		res, err := sh.link.Submit(ctx, in.rec)
		cancel()
		if err != nil {
			switch {
			case errors.Is(err, ErrShardUnavailable):
				return false
			case errors.Is(err, ErrJournalBroken):
				s.wedgeLocked(i, err)
				sh.indoubt = nil
				return true
			default:
				// Definitive rejection: never journaled, nothing to fold.
				// The caller already saw unavailable, so no outcome
				// counter moves here.
				sh.indoubt = sh.indoubt[1:]
			}
			continue
		}
		in.p.seq = res.Seq
		sh.counters.Accepted++
		sh.om.accepted.Inc()
		s.tm.accepted.Inc()
		sh.batch = append(sh.batch, in.p)
		sh.batched[in.fp] = true
		sh.indoubt = sh.indoubt[1:]
	}
	return true
}

// anyMarkedLocked reports whether the in-progress round has a durable
// marker on any shard. s.mu must be held.
func (s *ShardedService) anyMarkedLocked() bool {
	for _, sh := range s.shards {
		sh.mu.Lock()
		m := sh.marked
		sh.mu.Unlock()
		if m {
			return true
		}
	}
	return false
}

// abandonRoundLocked rolls back a settlement round no shard acknowledged:
// frozen batches return to the head of their shards' queues and the
// round state clears. Safe exactly because nothing durable happened.
func (s *ShardedService) abandonRoundLocked() {
	for _, sh := range s.shards {
		sh.mu.Lock()
		if len(sh.frozen) > 0 {
			sh.batch = append(sh.frozen, sh.batch...)
			sh.frozen = nil
		}
		sh.marked = false
		sh.mu.Unlock()
	}
	s.phase = phaseIdle
}

// errAllWedged is the tier-dead error: nothing can be made durable.
func (s *ShardedService) errAllWedged() error {
	return fmt.Errorf("%w: all %d shards: %w", ErrJournalBroken, len(s.shards), ErrShardWedged)
}

// settleRoundLocked drives the in-progress settlement round (adv when
// closing is false, close otherwise) as far as the shards allow. Per
// shard, in index order: wait out in-flight submissions, resolve
// in-doubt ones, freeze the batch, and make the marker durable. A shard
// whose marker is already durable only contributes its frozen batch; a
// wedged shard freezes without a marker (its bids are durable ahead of
// the marker it will never write — recovery folds such a tail into
// exactly this window, so live settlement must too); an unreachable
// shard parks the round, which a later call retries idempotently. When
// every answerable shard is marked, the frozen batches fold in
// shard-index order (journal order within each) and the settlement game
// advances or closes. s.mu must be held.
func (s *ShardedService) settleRoundLocked(closing bool) (core.SlotReport, error) {
	window := int(s.settle.Now()) + 1
	unreachable := 0
	for i, sh := range s.shards {
		sh.mu.Lock()
		if sh.wedged != nil {
			sh.frozen = append(sh.frozen, sh.batch...)
			sh.batch = nil
			sh.mu.Unlock()
			continue
		}
		if sh.marked {
			sh.mu.Unlock()
			continue
		}
		sh.settling = true
		for sh.inflight > 0 {
			sh.idle.Wait()
		}
		if sh.wedged != nil { // wedged while we waited
			sh.settling = false
			sh.idle.Broadcast()
			sh.frozen = append(sh.frozen, sh.batch...)
			sh.batch = nil
			sh.mu.Unlock()
			continue
		}
		if !s.resolveIndoubtLocked(i, sh) {
			sh.settling = false
			sh.idle.Broadcast()
			unreachable++
			sh.mu.Unlock()
			continue
		}
		if sh.wedged == nil {
			// Freeze: everything journaled ahead of this round's marker.
			// On a retry after a parked round, the new batch (bids
			// accepted while a straggler recovered) joins the frozen
			// window — those bids precede the marker in the journal.
			sh.frozen = append(sh.frozen, sh.batch...)
			sh.batch = nil
			ctx, cancel := s.callCtx()
			var err error
			if closing {
				err = sh.link.ClosePeriod(ctx)
			} else {
				err = sh.link.Advance(ctx, window)
			}
			cancel()
			switch {
			case err == nil:
				sh.marked = true
			case errors.Is(err, ErrShardUnavailable):
				unreachable++
				sh.counters.Unavailable++
				sh.om.unavailable.Inc()
				s.tm.unavailable.Inc()
			default:
				s.wedgeLocked(i, err)
			}
		}
		sh.settling = false
		sh.idle.Broadcast()
		sh.mu.Unlock()
	}
	if unreachable > 0 {
		return core.SlotReport{}, fmt.Errorf("resilience: settlement window %d pending on %d unreachable shard(s): %w", window, unreachable, ErrShardUnavailable)
	}
	marked := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		if sh.marked {
			marked++
		}
		sh.mu.Unlock()
	}
	if marked == 0 {
		s.abandonRoundLocked()
		return core.SlotReport{}, s.errAllWedged()
	}
	for i, sh := range s.shards {
		sh.mu.Lock()
		if len(sh.frozen) > 0 {
			s.foldFrozenLocked(i, sh.frozen)
			sh.frozen = nil
		}
		sh.marked = false
		sh.mu.Unlock()
	}
	s.phase = phaseIdle
	if closing {
		if _, err := s.settle.ClosePeriod(); err != nil {
			return core.SlotReport{}, err
		}
		return core.SlotReport{}, nil
	}
	return s.settle.AdvanceSlot()
}

// AdvanceSlot settles one billing window: it resolves in-doubt
// submissions, freezes every shard's batch behind a durable adv marker
// (shard-index order), folds the frozen batches into the settlement game
// in the same order, and advances the settlement slot. At least one
// shard must hold a durable marker for the advance to be acknowledged;
// a round blocked on unreachable shards returns ErrShardUnavailable and
// is retried by calling AdvanceSlot again — already-marked shards are
// not re-marked, so the retry is idempotent.
func (s *ShardedService) AdvanceSlot() (core.SlotReport, error) {
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.settle.Closed() {
		return core.SlotReport{}, sharedopt.ErrPeriodOver
	}
	if s.phase == phaseClose {
		// A close round is partially durable (or abandonable): finish it
		// first — a close marker on any shard decides the period.
		if s.anyMarkedLocked() {
			if _, err := s.settleRoundLocked(true); err != nil {
				return core.SlotReport{}, err
			}
			return core.SlotReport{}, sharedopt.ErrPeriodOver
		}
		s.abandonRoundLocked()
	}
	s.phase = phaseAdvance
	report, err := s.settleRoundLocked(false)
	if err != nil {
		return core.SlotReport{}, err
	}
	s.tm.advances.Inc()
	s.tm.advanceNs.ObserveSince(start)
	return report, nil
}

// ClosePeriod settles the period early: every healthy shard journals a
// close marker (resolving in-doubt submissions and draining its batch
// first, same protocol as AdvanceSlot), the drained bids fold into
// settlement, and the settlement game closes. Idempotent like the
// single-shard service; a round blocked on unreachable shards returns
// ErrShardUnavailable and is retried by calling ClosePeriod again.
func (s *ShardedService) ClosePeriod() (map[core.UserID]econ.Money, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.settle.Closed() {
		return s.settle.ClosePeriod() // no state change, nothing to journal
	}
	if s.phase == phaseAdvance {
		// An advance round is partially durable (or abandonable): an adv
		// marker on any shard decides that window, so finish the advance
		// before closing.
		if s.anyMarkedLocked() {
			if _, err := s.settleRoundLocked(false); err != nil {
				return nil, err
			}
		} else {
			s.abandonRoundLocked()
		}
	}
	s.phase = phaseClose
	if _, err := s.settleRoundLocked(true); err != nil {
		return nil, err
	}
	return s.settle.ClosePeriod() // idempotent re-read of the settled map
}

// The read side delegates to the derived settlement game, which carries
// the global economic state (the shard replicas only validate and
// deduplicate).

// Kind returns the tier's valuation model.
func (s *ShardedService) Kind() sharedopt.GameKind { return s.kind }

// Horizon returns the period length in slots.
func (s *ShardedService) Horizon() core.Slot { return s.horizon }

// Now returns the last settled slot.
func (s *ShardedService) Now() core.Slot { return s.settle.Now() }

// Closed reports whether the period has ended.
func (s *ShardedService) Closed() bool { return s.settle.Closed() }

// Invoice returns a user's settled payments.
func (s *ShardedService) Invoice(u core.UserID) (econ.Money, bool) { return s.settle.Invoice(u) }

// Invoices returns a copy of all settled invoices.
func (s *ShardedService) Invoices() map[core.UserID]econ.Money { return s.settle.Invoices() }

// Revenue returns total payments charged so far.
func (s *ShardedService) Revenue() econ.Money { return s.settle.Revenue() }

// CostIncurred returns the summed cost of implemented optimizations.
func (s *ShardedService) CostIncurred() econ.Money { return s.settle.CostIncurred() }

// Surplus returns Revenue − CostIncurred under one lock.
func (s *ShardedService) Surplus() econ.Money { return s.settle.Surplus() }

// ImplementedOpts returns the implemented optimizations in ID order.
func (s *ShardedService) ImplementedOpts() []core.OptID { return s.settle.ImplementedOpts() }
