package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"sharedopt/internal/core"
)

// TestRetryBackoffSchedule checks the capped doubling schedule without
// real sleeping.
func TestRetryBackoffSchedule(t *testing.T) {
	var delays []time.Duration
	b := Backoff{
		Attempts: 6,
		Base:     time.Millisecond,
		Cap:      4 * time.Millisecond,
		Sleep:    func(d time.Duration) { delays = append(delays, d) },
	}
	calls := 0
	err := Retry(context.Background(), b, func() error { calls++; return ErrOverloaded })
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("exhausted retry: %v", err)
	}
	if calls != 6 {
		t.Fatalf("made %d attempts, want 6", calls)
	}
	want := []time.Duration{1, 2, 4, 4, 4}
	for i := range want {
		want[i] *= time.Millisecond
	}
	if len(delays) != len(want) {
		t.Fatalf("slept %d times, want %d", len(delays), len(want))
	}
	for i, d := range delays {
		if d != want[i] {
			t.Fatalf("delay %d = %v, want %v", i, d, want[i])
		}
	}
}

// TestRetrySucceedsAfterTransientOverload clears the overload after two
// attempts.
func TestRetrySucceedsAfterTransientOverload(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), Backoff{Sleep: func(time.Duration) {}}, func() error {
		if calls++; calls < 3 {
			return ErrOverloaded
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want nil after 3", err, calls)
	}
}

// TestRetryStopsOnPermanentError never retries mechanism rejections.
func TestRetryStopsOnPermanentError(t *testing.T) {
	permanent := errors.New("bid is retroactive")
	calls := 0
	err := Retry(context.Background(), Backoff{Sleep: func(time.Duration) {}}, func() error {
		calls++
		return permanent
	})
	if !errors.Is(err, permanent) || calls != 1 {
		t.Fatalf("err=%v calls=%d, want the permanent error after 1 call", err, calls)
	}
	for _, e := range []error{ErrJournalBroken, ErrClosed, permanent, nil} {
		if Retryable(e) {
			t.Fatalf("Retryable(%v) = true", e)
		}
	}
	if !Retryable(ErrOverloaded) {
		t.Fatal("Retryable(ErrOverloaded) = false")
	}
}

// TestRetryHonorsContext stops when the context is cancelled between
// attempts and still reports the last error via errors.Is.
func TestRetryHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Retry(ctx, Backoff{Attempts: 50, Sleep: func(time.Duration) {
		if calls == 2 {
			cancel()
		}
	}}, func() error {
		calls++
		return ErrOverloaded
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled retry: %v", err)
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("cancelled retry should wrap the last attempt error: %v", err)
	}
	if calls != 2 {
		t.Fatalf("made %d calls after cancellation, want 2", calls)
	}
}

// TestRetryAgainstSaturatedIngest is the integration case the contract
// promises: a blind retry loop against a saturated front end eventually
// lands its bid exactly once.
func TestRetryAgainstSaturatedIngest(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{}, 64)
	in, js, m := newIngestFixture(t, 1, func() { entered <- struct{}{}; <-gate })

	// Saturate: one bid parked in the worker, one in the queue.
	for u := 100; u < 102; u++ {
		go in.SubmitAdditive(1, bidFor(core.UserID(u)))
	}
	<-entered

	done := make(chan error, 1)
	go func() {
		done <- Retry(context.Background(),
			Backoff{Attempts: 1000, Sleep: func(time.Duration) { time.Sleep(100 * time.Microsecond) }},
			func() error { return in.SubmitAdditive(1, bidFor(7)) })
	}()
	// Give the retry loop time to bounce off the full queue, then drain.
	time.Sleep(5 * time.Millisecond)
	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("retried submission never landed: %v", err)
	}
	st := in.Stats()
	if st.Overloaded == 0 {
		t.Fatal("retry test never saw ErrOverloaded")
	}
	in.Close()
	// Exactly one journal record for user 7 despite the blind retries.
	recs, _, torn := ReadJournal(m.Bytes())
	if torn {
		t.Fatal("journal torn")
	}
	got := 0
	for _, r := range recs {
		if r.Kind == KindAdditiveBid && r.User == 7 {
			got++
		}
	}
	if got != 1 {
		t.Fatalf("user 7 journaled %d times, want exactly 1", got)
	}
	if js.Broken() != nil {
		t.Fatal("journal wedged during retry test")
	}
}

// TestRetryJitterDeterministic pins the jittered gap sequence: a seeded
// Backoff always sleeps the same sequence, every gap stays within
// [(1-Jitter)·delay, delay], and differently-seeded Backoffs (the point
// of jitter: concurrent retries decorrelate) produce different gaps.
func TestRetryJitterDeterministic(t *testing.T) {
	run := func(seed uint64) []time.Duration {
		var delays []time.Duration
		b := Backoff{
			Attempts: 6,
			Base:     time.Millisecond,
			Cap:      4 * time.Millisecond,
			Jitter:   0.5,
			Seed:     seed,
			Sleep:    func(d time.Duration) { delays = append(delays, d) },
		}
		err := Retry(context.Background(), b, func() error { return ErrOverloaded })
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("exhausted retry: %v", err)
		}
		return delays
	}

	first := run(42)
	if len(first) != 5 {
		t.Fatalf("slept %d times, want 5", len(first))
	}
	// The undistorted schedule bounds each jittered gap from above.
	full := []time.Duration{1, 2, 4, 4, 4}
	for i := range full {
		full[i] *= time.Millisecond
	}
	distinct := false
	for i, d := range first {
		if d > full[i] || d < full[i]-time.Duration(0.5*float64(full[i])) {
			t.Fatalf("gap %d = %v outside [%v, %v]", i, d, full[i]/2, full[i])
		}
		if d != full[i] {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("jitter never moved a gap off the undistorted schedule")
	}
	// Determinism under a fixed seed: the exact same gap sequence.
	again := run(42)
	for i := range first {
		if first[i] != again[i] {
			t.Fatalf("seeded jitter is nondeterministic: gap %d was %v then %v", i, first[i], again[i])
		}
	}
	// Decorrelation across seeds.
	other := run(43)
	same := true
	for i := range first {
		if first[i] != other[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical gap sequences")
	}
}

// TestRetryJitterClamped: out-of-range Jitter values clamp instead of
// producing negative or amplified sleeps.
func TestRetryJitterClamped(t *testing.T) {
	for _, jit := range []float64{-2, 5} {
		var delays []time.Duration
		b := Backoff{
			Attempts: 3,
			Base:     time.Millisecond,
			Cap:      4 * time.Millisecond,
			Jitter:   jit,
			Seed:     9,
			Sleep:    func(d time.Duration) { delays = append(delays, d) },
		}
		Retry(context.Background(), b, func() error { return ErrOverloaded })
		for i, d := range delays {
			if d < 0 || d > 2*time.Millisecond {
				t.Fatalf("Jitter=%v: gap %d = %v out of range", jit, i, d)
			}
		}
	}
}

// TestRetryCancelDuringSleep pins the mid-sleep cancellation contract: a
// context cancelled while Retry waits out a backoff gap returns
// immediately — no further attempts, no finished sleep — and the error
// reports both the cancellation and the last attempt's error. Before
// this contract, a cancelled caller slept out the full gap (up to Cap)
// before noticing.
func TestRetryCancelDuringSleep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	start := time.Now()
	// No Sleep override: the real timer path is the one under test.
	// After the first failed attempt Retry waits ~1h; cancel fires
	// shortly into that sleep.
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	err := Retry(ctx, Backoff{Attempts: 5, Base: time.Hour, Cap: time.Hour}, func() error {
		calls++
		return ErrOverloaded
	})
	waited := time.Since(start)
	if calls != 1 {
		t.Fatalf("made %d attempts, want 1 (cancelled during the first gap)", calls)
	}
	if !errors.Is(err, context.Canceled) || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("mid-sleep cancellation error should wrap both ctx and last attempt error: %v", err)
	}
	if waited > 10*time.Second {
		t.Fatalf("cancelled retry returned after %v: slept out the gap instead of honoring ctx", waited)
	}
}

// TestRetryIfPredicate: RetryIf retries exactly what its predicate
// covers — here ErrShardUnavailable, which the admission-path Retryable
// never retries.
func TestRetryIfPredicate(t *testing.T) {
	calls := 0
	transient := fmt.Errorf("%w: conn reset", ErrShardUnavailable)
	err := RetryIf(context.Background(), Backoff{Sleep: func(time.Duration) {}},
		func(err error) bool { return errors.Is(err, ErrShardUnavailable) },
		func() error {
			if calls++; calls < 3 {
				return transient
			}
			return nil
		})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want success after 3 attempts", err, calls)
	}

	// The same error is permanent under plain Retry.
	calls = 0
	err = Retry(context.Background(), Backoff{Sleep: func(time.Duration) {}}, func() error {
		calls++
		return transient
	})
	if !errors.Is(err, ErrShardUnavailable) || calls != 1 {
		t.Fatalf("err=%v calls=%d, want immediate permanent failure", err, calls)
	}
}
