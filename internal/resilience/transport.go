package resilience

// The shard transport boundary. ShardedService routing talks to its
// per-shard intake through ShardTransport, an interface small enough to
// put a network under: submit one bid, make one settlement marker
// durable, close the period, report state. ShardHost is the server side
// — the durability authority that owns the shard's journal and replica —
// and doubles as the in-process loopback transport, which is how the
// single-address-space tier keeps its exact pre-transport behavior. The
// TCP client/server pair lives in internal/resilience/transport.
//
// The error contract callers rely on:
//
//   - ErrShardUnavailable (wrapped): the call did not reach a decision —
//     deadline, connection loss, breaker open. The operation's fate is
//     unknown, exactly as after a crash; submits are safe to retry
//     blindly (fingerprint dedup makes them idempotent) and markers are
//     safe to retry blindly (Advance is window-idempotent).
//   - ErrJournalBroken (wrapped): the shard decided, fail-stop. The
//     router wedges the shard (ErrShardWedged).
//   - anything else: a definitive mechanism rejection; the bid was not
//     journaled and retrying the same bytes is pointless.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"sharedopt"
	"sharedopt/internal/core"
)

// ErrShardUnavailable marks a shard transport call that reached no
// decision: the shard may or may not have journaled the operation.
// Unlike ErrShardWedged — a fail-stop verdict that makes the shard
// read-only — unavailability is transient: callers retry with backoff,
// and the circuit breaker (internal/resilience/transport) probes the
// shard until it answers again. Errors wrapping it satisfy
// errors.Is(err, ErrShardUnavailable).
var ErrShardUnavailable = errors.New("resilience: shard unavailable")

// SubmitResult acknowledges one durable submission.
type SubmitResult struct {
	// Seq is the journal sequence the submission holds on its shard. A
	// duplicate delivery is acknowledged with the original record's Seq,
	// so retried and duplicated deliveries are indistinguishable from
	// their first copy.
	Seq uint64 `json:"seq"`
	// Fresh is true when this delivery journaled the record, false when
	// fingerprint dedup matched an earlier accept.
	Fresh bool `json:"fresh,omitempty"`
}

// ShardInfo is one shard's self-description, served by Stats. The
// router's constructor handshakes on it (shard identity and tier config
// must match), and chaos harnesses reconcile Bids against client-side
// accounting.
type ShardInfo struct {
	Shard   int       `json:"shard"`
	Shards  int       `json:"shards"`
	Game    string    `json:"game"`
	Horizon core.Slot `json:"horizon"`
	Opts    []OptCost `json:"opts,omitempty"`
	// Seq is the shard journal's last assigned sequence number.
	Seq uint64 `json:"seq"`
	// Now is the shard's last durable settlement window.
	Now    core.Slot `json:"now"`
	Closed bool      `json:"closed,omitempty"`
	// Bids counts fresh (non-duplicate) bid records journaled.
	Bids uint64 `json:"bids"`
	// Broken carries the journal failure wedging the shard, or "".
	Broken string `json:"broken,omitempty"`
}

// ShardTransport is the boundary between ShardedService routing and one
// shard's durable intake. Every call takes a context whose deadline
// propagates to the far side; a call that cannot reach a decision
// returns an error wrapping ErrShardUnavailable (see the contract at the
// top of this file).
type ShardTransport interface {
	// Submit journals and applies one bid record (KindAdditiveBid or
	// KindSubstBid). Duplicates of accepted bids succeed with the
	// original Seq and Fresh == false.
	Submit(ctx context.Context, rec Record) (SubmitResult, error)
	// Advance makes settlement window's adv marker durable. It is
	// idempotent per window: a shard already at or past window returns
	// nil, so duplicated marker deliveries are safe.
	Advance(ctx context.Context, window int) error
	// ClosePeriod makes the close marker durable; idempotent.
	ClosePeriod(ctx context.Context) error
	// Stats reports the shard's identity and durable state.
	Stats(ctx context.Context) (ShardInfo, error)
}

// ShardHost is one shard's durability authority: the journaled replica
// that validates, journals, and deduplicates this shard's operations.
// It implements ShardTransport directly — that is the in-process
// loopback transport — and transport.ShardServer serves the same host
// over TCP. Methods are safe for concurrent use.
type ShardHost struct {
	mu     sync.Mutex // serializes markers and the bid counter
	js     *JournaledService
	shard  int
	shards int
	opts   []OptCost
	bids   uint64
}

// NewShardHost opens a fresh shard: a replica service plus a journal on
// w opening with the shard's config record.
func NewShardHost(kind sharedopt.GameKind, opts []sharedopt.Optimization, horizon core.Slot, shard, shards int, w io.Writer) (*ShardHost, error) {
	if kind != sharedopt.Additive && kind != sharedopt.Substitutive {
		return nil, fmt.Errorf("resilience: unknown game kind %v", kind)
	}
	if shards < 1 || shard < 0 || shard >= shards {
		return nil, fmt.Errorf("resilience: shard index %d out of range for %d shards", shard, shards)
	}
	replica, err := newService(kind, opts, horizon)
	if err != nil {
		return nil, err
	}
	j := NewJournal(w)
	if err := j.Append(shardConfigRecord(kind, opts, horizon, shard, shards)); err != nil {
		return nil, fmt.Errorf("resilience: shard %d: %w", shard, err)
	}
	return &ShardHost{js: newJournaledOn(replica, j), shard: shard, shards: shards, opts: optCosts(opts)}, nil
}

// RecoverShardHost rebuilds one shard host from its journal prefix and
// resumes appending to w — the restart path for a single killed shard
// process, while RecoverShardedService reconciles a whole tier. The
// replayed fingerprints restore dedup, so submissions accepted before
// the crash remain idempotent after it.
func RecoverShardHost(recs []Record, w io.Writer) (*ShardHost, error) {
	if len(recs) == 0 {
		return nil, ErrEmptyJournal
	}
	cfg := recs[0]
	if cfg.Kind != KindShardConfig {
		return nil, fmt.Errorf("resilience: shard journal opens with %s record, want %s", cfg.Kind, KindShardConfig)
	}
	kind, err := gameKind(cfg.Game)
	if err != nil {
		return nil, err
	}
	replica, err := newService(kind, catalogOf(cfg.Opts), cfg.Horizon)
	if err != nil {
		return nil, fmt.Errorf("resilience: corrupt journal: config rejected: %w", err)
	}
	h := &ShardHost{
		js:     newJournaledOn(replica, NewJournalAt(w, recs[len(recs)-1].Seq)),
		shard:  cfg.Shard,
		shards: cfg.Shards,
		opts:   cfg.Opts,
	}
	for _, rec := range recs[1:] {
		if rec.Kind == KindAdditiveBid || rec.Kind == KindSubstBid {
			h.bids++
		}
		if err := h.js.applyRecord(rec); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// brokenErr classifies a shard mutation failure for the wire: the first
// journal append failure arrives unwrapped, so if the journal is now
// broken the error gains ErrJournalBroken (fail-stop, wedge); a
// mechanism rejection passes through untouched (definitive, no retry).
func (h *ShardHost) brokenErr(err error) error {
	if err == nil || errors.Is(err, ErrJournalBroken) {
		return err
	}
	if h.js.Broken() != nil {
		return fmt.Errorf("%w: %w", ErrJournalBroken, err)
	}
	return err
}

// unavailableErr wraps a context failure as transport-level
// unavailability: the caller's deadline expired before a decision.
func unavailableErr(err error) error {
	return fmt.Errorf("%w: %w", ErrShardUnavailable, err)
}

// Submit implements ShardTransport: validate routing, then run the
// journal's accept-then-journal protocol with fingerprint dedup.
func (h *ShardHost) Submit(ctx context.Context, rec Record) (SubmitResult, error) {
	if err := ctx.Err(); err != nil {
		return SubmitResult{}, unavailableErr(err)
	}
	if rec.Kind != KindAdditiveBid && rec.Kind != KindSubstBid {
		return SubmitResult{}, fmt.Errorf("resilience: shard %d: submit of non-bid %s record", h.shard, rec.Kind)
	}
	if got := ShardFor(rec.User, h.shards); got != h.shard {
		return SubmitResult{}, fmt.Errorf("resilience: user %d routes to shard %d, delivered to shard %d", rec.User, got, h.shard)
	}
	seq, fresh, err := h.js.SubmitRecord(rec)
	if err != nil {
		return SubmitResult{}, h.brokenErr(err)
	}
	if fresh {
		h.mu.Lock()
		h.bids++
		h.mu.Unlock()
	}
	return SubmitResult{Seq: seq, Fresh: fresh}, nil
}

// Advance implements ShardTransport. Windows count 1, 2, 3, …; the
// shard's durable window is its adv-marker count. A shard already at or
// past window acknowledges without journaling (the marker this delivery
// asks for is durable), which is what makes duplicated or retried
// marker deliveries safe. A gap of more than one window means the
// caller and shard disagree on history — a protocol error, not a
// transient.
func (h *ShardHost) Advance(ctx context.Context, window int) error {
	if err := ctx.Err(); err != nil {
		return unavailableErr(err)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	now := int(h.js.Now())
	switch {
	case now >= window:
		return nil
	case now == window-1:
		_, err := h.js.AdvanceSlot()
		return h.brokenErr(err)
	default:
		return fmt.Errorf("resilience: shard %d at window %d asked to advance to %d", h.shard, now, window)
	}
}

// ClosePeriod implements ShardTransport; idempotent like the journaled
// service underneath.
func (h *ShardHost) ClosePeriod(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return unavailableErr(err)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	_, err := h.js.ClosePeriod()
	return h.brokenErr(err)
}

// Stats implements ShardTransport.
func (h *ShardHost) Stats(ctx context.Context) (ShardInfo, error) {
	if err := ctx.Err(); err != nil {
		return ShardInfo{}, unavailableErr(err)
	}
	h.mu.Lock()
	bids := h.bids
	h.mu.Unlock()
	info := ShardInfo{
		Shard:   h.shard,
		Shards:  h.shards,
		Game:    gameName(h.js.Kind()),
		Horizon: h.js.Horizon(),
		Opts:    append([]OptCost(nil), h.opts...),
		Seq:     h.js.j.Seq(),
		Now:     h.js.Now(),
		Closed:  h.js.Closed(),
		Bids:    bids,
	}
	if err := h.js.Broken(); err != nil {
		info.Broken = err.Error()
	}
	return info, nil
}

// Broken returns the journal failure wedging this host, or nil.
func (h *ShardHost) Broken() error { return h.js.Broken() }
