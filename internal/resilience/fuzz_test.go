package resilience

import (
	"testing"

	"sharedopt/internal/econ"
)

// FuzzReadJournal hammers the journal parser with mutated journal
// images. Whatever the bytes, the crash contract must hold: never
// panic, never yield a record past the first damage, always report a
// consumed prefix that re-parses cleanly and can be appended to.
func FuzzReadJournal(f *testing.F) {
	var m MemLog
	j := NewJournal(&m)
	for _, rec := range testRecords() {
		if err := j.Append(rec); err != nil {
			f.Fatal(err)
		}
	}
	valid := m.Bytes()
	f.Add([]byte(nil))
	f.Add(valid)
	f.Add(valid[:len(valid)/2])                       // torn mid-record
	f.Add(append(append([]byte(nil), valid...), 'x')) // trailing garbage
	flipped := append([]byte(nil), valid...)
	flipped[12] ^= 0x40 // payload corruption under an intact frame
	f.Add(flipped)
	f.Add([]byte("00000000 {}\n"))
	f.Add([]byte("deadbeef {\"seq\":1,\"kind\":\"adv\"}\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, consumed, torn := ReadJournal(data)
		if consumed < 0 || consumed > len(data) {
			t.Fatalf("consumed %d of %d bytes", consumed, len(data))
		}
		if torn != (consumed < len(data)) {
			t.Fatalf("torn=%v but consumed %d of %d bytes", torn, consumed, len(data))
		}
		for i, rec := range recs {
			if rec.Seq != uint64(i+1) {
				t.Fatalf("record %d carries seq %d: yielded past a sequence break", i, rec.Seq)
			}
		}
		// The consumed prefix is exactly the valid records: re-parsing
		// it must be clean and identical.
		again, consumed2, torn2 := ReadJournal(data[:consumed])
		if torn2 || consumed2 != consumed || len(again) != len(recs) {
			t.Fatalf("consumed prefix does not re-parse cleanly: torn=%v consumed=%d/%d records=%d/%d",
				torn2, consumed2, consumed, len(again), len(recs))
		}
		for i := range recs {
			if again[i].fingerprint() != recs[i].fingerprint() || again[i].Seq != recs[i].Seq {
				t.Fatalf("record %d differs on re-parse", i)
			}
		}
		// The truncation point is appendable: framing a fresh record at
		// the next sequence number extends the parse by exactly one.
		next := Record{Seq: uint64(len(recs)) + 1, Kind: KindAdditiveBid,
			User: 9, Opt: 1, Start: 1, End: 1, Values: []econ.Money{econ.FromCents(100)}}
		frame, err := encodeRecord(next)
		if err != nil {
			t.Fatalf("encoding continuation record: %v", err)
		}
		extended := append(append([]byte(nil), data[:consumed]...), frame...)
		extrecs, _, extTorn := ReadJournal(extended)
		if extTorn {
			t.Fatal("appending a valid continuation record left the journal torn")
		}
		if len(extrecs) != len(recs)+1 {
			t.Fatalf("continuation parse yielded %d records, want %d", len(extrecs), len(recs)+1)
		}
	})
}
