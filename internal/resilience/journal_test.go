package resilience

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"sharedopt/internal/econ"
)

func testRecords() []Record {
	return []Record{
		{Kind: KindServiceConfig, Game: "additive", Horizon: 3,
			Opts: []OptCost{{ID: 1, Cost: econ.FromDollars(10)}}},
		{Kind: KindAdditiveBid, User: 7, Opt: 1, Start: 1, End: 2,
			Values: []econ.Money{econ.FromDollars(4), econ.FromDollars(4)}},
		{Kind: KindAdvanceSlot},
		{Kind: KindClosePeriod},
	}
}

func appendAll(t *testing.T, j *Journal, recs []Record) {
	t.Helper()
	for _, rec := range recs {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
}

func TestJournalRoundTrip(t *testing.T) {
	var m MemLog
	j := NewJournal(&m)
	want := testRecords()
	appendAll(t, j, want)
	if got := j.Seq(); got != uint64(len(want)) {
		t.Fatalf("seq = %d, want %d", got, len(want))
	}
	recs, consumed, torn := ReadJournal(m.Bytes())
	if torn {
		t.Fatal("clean journal reported torn")
	}
	if consumed != m.Len() {
		t.Fatalf("consumed %d of %d bytes", consumed, m.Len())
	}
	if len(recs) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(recs), len(want))
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, rec.Seq)
		}
		want[i].Seq = rec.Seq
		if rec.fingerprint() != want[i].fingerprint() {
			t.Fatalf("record %d round-trip mismatch:\n got %+v\nwant %+v", i, rec, want[i])
		}
	}
}

// TestJournalTornTail verifies that any truncation point inside the
// final record — from one byte up to one byte short of complete — is
// detected via framing+checksum and discarded back to the last complete
// record, for every record position in the journal.
func TestJournalTornTail(t *testing.T) {
	var m MemLog
	appendAll(t, NewJournal(&m), testRecords())
	data := m.Bytes()
	bounds := recordBoundaries(data)
	if len(bounds) != 4 {
		t.Fatalf("expected 4 record boundaries, got %d", len(bounds))
	}
	prev := 0
	for k, end := range bounds {
		for _, cut := range []int{prev + 1, (prev + end) / 2, end - 1} {
			if cut <= prev || cut >= end {
				continue
			}
			recs, consumed, torn := ReadJournal(data[:cut])
			if !torn {
				t.Fatalf("cut at %d (record %d): not reported torn", cut, k)
			}
			if len(recs) != k {
				t.Fatalf("cut at %d: recovered %d records, want %d", cut, len(recs), k)
			}
			if consumed != prev {
				t.Fatalf("cut at %d: consumed %d, want %d", cut, consumed, prev)
			}
		}
		prev = end
	}
}

// TestJournalBitRot flips one payload byte mid-journal: the checksum
// must reject the record and everything after it.
func TestJournalBitRot(t *testing.T) {
	var m MemLog
	appendAll(t, NewJournal(&m), testRecords())
	data := m.Bytes()
	bounds := recordBoundaries(data)
	// Corrupt a byte inside the second record's payload.
	data[bounds[0]+12] ^= 0x40
	recs, consumed, torn := ReadJournal(data)
	if !torn || len(recs) != 1 || consumed != bounds[0] {
		t.Fatalf("bit rot: got %d records, consumed=%d, torn=%v; want 1, %d, true",
			len(recs), consumed, torn, bounds[0])
	}
}

// TestJournalSeqGap rejects a record whose sequence number does not
// continue the chain, even with a valid checksum.
func TestJournalSeqGap(t *testing.T) {
	var m MemLog
	j := NewJournal(&m)
	appendAll(t, j, testRecords()[:2])
	// Append a record with a skipped sequence number by hand.
	frame, err := encodeRecord(Record{Seq: 9, Kind: KindAdvanceSlot})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Write(frame); err != nil {
		t.Fatal(err)
	}
	recs, _, torn := ReadJournal(m.Bytes())
	if !torn || len(recs) != 2 {
		t.Fatalf("seq gap: got %d records, torn=%v; want 2, true", len(recs), torn)
	}
}

// TestJournalShortWriteWedges drives a short write (n < len, nil error)
// through Append: it must surface io.ErrShortWrite and wedge the
// journal permanently.
func TestJournalShortWriteWedges(t *testing.T) {
	var m MemLog
	fw := NewFaultWriter(&m, FaultPlan{Kind: FaultShort, Record: 1, Tear: 5})
	j := NewJournal(fw)
	recs := testRecords()
	if err := j.Append(recs[0]); err != nil {
		t.Fatal(err)
	}
	err := j.Append(recs[1])
	if !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("short write: got %v, want io.ErrShortWrite", err)
	}
	if err := j.Append(recs[2]); !errors.Is(err, ErrJournalBroken) {
		t.Fatalf("append after failure: got %v, want ErrJournalBroken", err)
	}
	// The log ends in 5 bytes of torn record; replay discards them.
	got, _, torn := ReadJournal(m.Bytes())
	if !torn || len(got) != 1 {
		t.Fatalf("after short write: %d records, torn=%v; want 1, true", len(got), torn)
	}
}

func TestFileLogReopenTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bids.journal")
	log, recs, torn, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || torn {
		t.Fatalf("fresh log: %d records, torn=%v", len(recs), torn)
	}
	j := NewJournal(log)
	appendAll(t, j, testRecords()[:3])
	// Tear the tail: append half a record's bytes directly.
	frame, err := encodeRecord(Record{Seq: 4, Kind: KindClosePeriod})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := log.f.Write(frame[:len(frame)/2]); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	log2, recs2, torn2, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if !torn2 || len(recs2) != 3 {
		t.Fatalf("reopen: %d records, torn=%v; want 3, true", len(recs2), torn2)
	}
	// Appending resumes cleanly after the truncation.
	j2 := NewJournalAt(log2, recs2[len(recs2)-1].Seq)
	if err := j2.Append(Record{Kind: KindClosePeriod}); err != nil {
		t.Fatal(err)
	}
	log3, recs3, torn3, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer log3.Close()
	if torn3 || len(recs3) != 4 {
		t.Fatalf("after resume: %d records, torn=%v; want 4, false", len(recs3), torn3)
	}
	if recs3[3].Seq != 4 || recs3[3].Kind != KindClosePeriod {
		t.Fatalf("resumed record = %+v", recs3[3])
	}
}

func TestMemLogTruncate(t *testing.T) {
	var m MemLog
	appendAll(t, NewJournal(&m), testRecords())
	bounds := recordBoundaries(m.Bytes())
	m.Truncate(bounds[1])
	recs, _, torn := ReadJournal(m.Bytes())
	if torn || len(recs) != 2 {
		t.Fatalf("after truncate: %d records, torn=%v", len(recs), torn)
	}
}

// recordBoundaries returns the byte offset just past each
// newline-terminated record of a journal image.
func recordBoundaries(data []byte) []int {
	var bounds []int
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break
		}
		off += nl + 1
		bounds = append(bounds, off)
	}
	return bounds
}

// TestFileLogReopenRejectsDuplicateSeq: a record repeating an earlier
// sequence number (a misbehaving writer replaying an old frame) ends
// the valid prefix at the duplicate, and reopen truncates it away.
func TestFileLogReopenRejectsDuplicateSeq(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bids.journal")
	log, _, _, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, NewJournal(log), testRecords()[:3])
	// Replay record 2's frame verbatim: checksum valid, seq duplicate.
	dup := testRecords()[1]
	dup.Seq = 2
	frame, err := encodeRecord(dup)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := log.f.Write(frame); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	log2, recs, torn, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if !torn || len(recs) != 3 {
		t.Fatalf("reopen over duplicate seq: %d records, torn=%v; want 3, true", len(recs), torn)
	}
	// The duplicate was truncated: appending continues at seq 4 and a
	// further reopen is clean.
	if err := NewJournalAt(log2, 3).Append(Record{Kind: KindClosePeriod}); err != nil {
		t.Fatal(err)
	}
	if err := log2.Close(); err != nil {
		t.Fatal(err)
	}
	log3, recs3, torn3, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer log3.Close()
	if torn3 || len(recs3) != 4 || recs3[3].Seq != 4 {
		t.Fatalf("after resume: %d records, torn=%v, last seq %d", len(recs3), torn3, recs3[len(recs3)-1].Seq)
	}
}

// TestFileLogEmptyFileRecovery: a zero-byte journal (crash before the
// config write reached the disk) reopens clean with no records, and a
// service recovery over it reports ErrEmptyJournal rather than
// fabricating state.
func TestFileLogEmptyFileRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bids.journal")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	log, recs, torn, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if torn || len(recs) != 0 {
		t.Fatalf("empty file: %d records, torn=%v", len(recs), torn)
	}
	if _, err := RecoverService(recs, log); !errors.Is(err, ErrEmptyJournal) {
		t.Fatalf("recovery over empty journal: %v, want ErrEmptyJournal", err)
	}
	// The empty log is a valid fresh target.
	appendAll(t, NewJournal(log), testRecords()[:2])
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs2, torn2, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if torn2 || len(recs2) != 2 {
		t.Fatalf("after seeding the empty file: %d records, torn=%v", len(recs2), torn2)
	}
}

// TestFileLogRepeatedTearAppendCycles: tear, reopen, append, tear
// again — every cycle must truncate exactly back to the last complete
// record and resume the sequence chain.
func TestFileLogRepeatedTearAppendCycles(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bids.journal")
	log, _, _, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, NewJournal(log), testRecords()[:1])
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	for cycle := 1; cycle <= 3; cycle++ {
		log, recs, _, err := OpenFileLog(path)
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if len(recs) != cycle {
			t.Fatalf("cycle %d: reopened with %d records", cycle, len(recs))
		}
		j := NewJournalAt(log, recs[len(recs)-1].Seq)
		if err := j.Append(Record{Kind: KindAdvanceSlot}); err != nil {
			t.Fatalf("cycle %d append: %v", cycle, err)
		}
		// Tear: a partial frame for the record that never completes.
		frame, err := encodeRecord(Record{Seq: uint64(cycle + 2), Kind: KindAdvanceSlot})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := log.f.Write(frame[:1+cycle%len(frame)]); err != nil {
			t.Fatal(err)
		}
		if err := log.Close(); err != nil {
			t.Fatal(err)
		}
	}
	_, recs, torn, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if !torn || len(recs) != 4 {
		t.Fatalf("final reopen: %d records, torn=%v; want 4, true", len(recs), torn)
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d after %d tear cycles", i, rec.Seq, 3)
		}
	}
}
