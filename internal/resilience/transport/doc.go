// Package transport puts a real network under the resilience tier's
// ShardTransport boundary: ShardServer serves one ShardHost over TCP and
// ShardClient implements resilience.ShardTransport against it, so a
// ShardedService can front shards living in other processes with the
// same settlement bytes as the in-process loopback.
//
// # Wire format
//
// One TCP connection carries concurrent calls. Each frame is a 4-byte
// big-endian length followed by one JSON document (request or response),
// capped at 1 MiB. Requests carry a client-assigned ID, an op name
// (submit, advance, close, stats), the op's arguments, and the caller's
// remaining context budget in microseconds; the server re-arms that
// deadline on its side, which is how context deadlines propagate across
// the boundary. Responses echo the ID — the server answers out of order
// (each request is handled on its own goroutine and replies are
// group-committed to the socket), and the client routes replies back to
// waiters by ID, dropping strays (late, duplicated, or reordered
// replies) on the floor.
//
// # Failure semantics
//
// The client maps every transport-level failure — dial errors, broken
// connections, deadline expiry, a reply that never comes — to
// resilience.ErrShardUnavailable: the call reached no decision and the
// operation's fate is unknown. Typed shard verdicts cross the wire as
// response codes: "broken" reconstructs resilience.ErrJournalBroken
// (fail-stop, the router wedges the shard), "unavailable" re-wraps a
// server-side deadline expiry so the client retries it, and "reject"
// carries a definitive mechanism rejection as text. Unavailable calls
// are retried with the tier's seeded Backoff jitter; retries are blind
// and safe because submits dedup by journal fingerprint and settlement
// markers are window-idempotent.
//
// # Circuit breaking
//
// Breaker wraps the per-shard call path: Failures consecutive
// unavailable outcomes trip it open, every call inside the cooldown
// fails fast with ErrShardUnavailable (no network traffic), and after
// the cooldown a single half-open probe decides — success (or any
// definitive verdict) closes the breaker, another transient failure
// reopens it for a fresh cooldown. This keeps a dead shard from holding
// every submitter hostage for a full deadline per call, while the
// router's settlement protocol parks the affected window until the
// shard answers again.
//
// # Fault injection
//
// NetFault is the network analogue of resilience.FaultWriter: a seeded
// schedule of request-level faults — added latency, silent drops,
// duplicated deliveries, reordered sends, and connection resets —
// injected in the client's send path. cmd/pricer's -chaos-net mode
// drives a full tier over TCP under NetFault plus shard process kills
// and asserts settlement stays byte-identical to the fault-free run.
package transport
