package transport

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"

	"sharedopt/internal/resilience"
)

// maxFrame bounds one wire frame: far larger than any real request (a
// bid record is a few hundred bytes), small enough that a corrupt or
// hostile length prefix cannot make the reader allocate gigabytes.
const maxFrame = 1 << 20

// Op names on the wire, one per ShardTransport method.
const (
	opSubmit = "submit"
	opAdv    = "advance"
	opClose  = "close"
	opStats  = "stats"
)

// Response codes for non-nil shard verdicts. The zero code means
// success. Typed sentinel errors cannot cross a JSON boundary, so the
// code re-establishes the transport error contract on the client side.
const (
	// codeReject: a definitive mechanism rejection — the operation was
	// not journaled and identical bytes will be rejected again.
	codeReject = "reject"
	// codeBroken: the shard's journal is broken (fail-stop); the client
	// rebuilds resilience.ErrJournalBroken and the router wedges.
	codeBroken = "broken"
	// codeUnavailable: the shard reached no decision (its side of the
	// deadline expired); the client rebuilds ErrShardUnavailable and
	// retries.
	codeUnavailable = "unavailable"
)

// request is one client call. DeadlineUS carries the caller's remaining
// context budget in microseconds (0 = none); the server re-arms it on
// its own clock, so deadlines propagate without trusting clock sync.
type request struct {
	ID         uint64             `json:"id"`
	Op         string             `json:"op"`
	Rec        *resilience.Record `json:"rec,omitempty"`
	Window     int                `json:"window,omitempty"`
	DeadlineUS int64              `json:"deadline_us,omitempty"`
}

// response answers the request carrying the same ID. Exactly one of
// Result/Info is set on success, depending on the op.
type response struct {
	ID     uint64                   `json:"id"`
	Result *resilience.SubmitResult `json:"result,omitempty"`
	Info   *resilience.ShardInfo    `json:"info,omitempty"`
	Code   string                   `json:"code,omitempty"`
	Err    string                   `json:"err,omitempty"`
}

// encodeVerdict maps a ShardTransport error to its wire code.
func encodeVerdict(err error) (code, msg string) {
	switch {
	case err == nil:
		return "", ""
	case errors.Is(err, resilience.ErrJournalBroken):
		return codeBroken, err.Error()
	case errors.Is(err, resilience.ErrShardUnavailable):
		return codeUnavailable, err.Error()
	default:
		return codeReject, err.Error()
	}
}

// decodeVerdict rebuilds the client-side error from a wire code,
// restoring the sentinels errors.Is tests for.
func decodeVerdict(code, msg string) error {
	switch code {
	case "":
		return nil
	case codeBroken:
		return fmt.Errorf("%w: %s", resilience.ErrJournalBroken, msg)
	case codeUnavailable:
		return fmt.Errorf("%w: %s", resilience.ErrShardUnavailable, msg)
	default:
		return errors.New(msg)
	}
}

// encodeFrame renders v as one length-prefixed JSON frame.
func encodeFrame(v any) ([]byte, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	if len(body) > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds %d limit", len(body), maxFrame)
	}
	frame := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(frame, uint32(len(body)))
	copy(frame[4:], body)
	return frame, nil
}

// readFrame reads one length-prefixed frame body from r.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds %d limit", n, maxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

// frameQueue serializes frame writes to one connection with group
// commit: whoever finds the queue idle becomes the flusher and writes
// every frame enqueued while it held the socket, so k goroutines
// answering concurrently cost ~1 write syscall per batch instead of k.
// The first write error poisons the queue — the connection is dead and
// every later enqueue reports it.
type frameQueue struct {
	mu       sync.Mutex
	w        io.Writer
	buf      []byte
	flushing bool
	err      error
}

func newFrameQueue(w io.Writer) *frameQueue { return &frameQueue{w: w} }

// enqueue queues one frame and flushes the queue unless another
// goroutine already holds the flush role (then that flusher will carry
// this frame out with its batch).
func (q *frameQueue) enqueue(frame []byte) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.err != nil {
		return q.err
	}
	q.buf = append(q.buf, frame...)
	if q.flushing {
		return nil
	}
	q.flushing = true
	for q.err == nil && len(q.buf) > 0 {
		batch := q.buf
		q.buf = nil
		q.mu.Unlock()
		_, err := q.w.Write(batch)
		q.mu.Lock()
		if err != nil {
			q.err = err
		}
	}
	q.flushing = false
	return q.err
}
