package transport

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"sharedopt/internal/resilience"
)

// ShardServer serves one shard's ShardTransport over TCP. Each accepted
// connection gets a reader goroutine; each decoded request is handled on
// its own goroutine against the host, so a slow settlement marker never
// blocks submissions sharing the connection, and replies are
// group-committed back through a frameQueue. Close is the process-kill
// used by chaos runs: it stops the listener and severs every
// connection, leaving the host's journal as the only survivor.
type ShardServer struct {
	host resilience.ShardTransport

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewShardServer wraps host; call Listen to start serving.
func NewShardServer(host resilience.ShardTransport) *ShardServer {
	return &ShardServer{host: host, conns: make(map[net.Conn]struct{})}
}

// Listen binds addr (use "127.0.0.1:0" for an ephemeral port) and starts
// accepting. It returns the bound address clients should dial.
func (s *ShardServer) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", fmt.Errorf("transport: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// Addr returns the listening address, or "" before Listen.
func (s *ShardServer) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

func (s *ShardServer) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *ShardServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	q := newFrameQueue(conn)
	var reqs sync.WaitGroup
	for {
		body, err := readFrame(conn)
		if err != nil {
			break // peer gone, torn frame, or our own Close
		}
		var req request
		if err := json.Unmarshal(body, &req); err != nil {
			break // not speaking our protocol: hang up
		}
		reqs.Add(1)
		go func() {
			defer reqs.Done()
			resp := s.handle(req)
			if frame, err := encodeFrame(resp); err == nil {
				q.enqueue(frame)
			}
		}()
	}
	reqs.Wait()
	conn.Close()
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// handle dispatches one request to the host, re-arming the caller's
// remaining deadline budget on the server's clock.
func (s *ShardServer) handle(req request) response {
	ctx := context.Background()
	if req.DeadlineUS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineUS)*time.Microsecond)
		defer cancel()
	}
	resp := response{ID: req.ID}
	var err error
	switch req.Op {
	case opSubmit:
		if req.Rec == nil {
			err = fmt.Errorf("transport: submit without record")
			break
		}
		var res resilience.SubmitResult
		if res, err = s.host.Submit(ctx, *req.Rec); err == nil {
			resp.Result = &res
		}
	case opAdv:
		err = s.host.Advance(ctx, req.Window)
	case opClose:
		err = s.host.ClosePeriod(ctx)
	case opStats:
		var info resilience.ShardInfo
		if info, err = s.host.Stats(ctx); err == nil {
			resp.Info = &info
		}
	default:
		err = fmt.Errorf("transport: unknown op %q", req.Op)
	}
	resp.Code, resp.Err = encodeVerdict(err)
	return resp
}

// BreakConns severs every live connection without stopping the listener
// — the network blip of the chaos suite. In-flight calls fail
// unavailable on the client and it redials.
func (s *ShardServer) BreakConns() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for conn := range s.conns {
		conn.Close()
	}
}

// Close stops the listener, severs every connection, and waits for the
// serving goroutines to drain. The wrapped host (and its journal) is
// untouched: restarting the shard is RecoverShardHost plus a fresh
// server, exactly like a process restart.
func (s *ShardServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	ln := s.ln
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
}
