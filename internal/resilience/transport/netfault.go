package transport

import (
	"fmt"
	"sync"
	"time"

	"sharedopt/internal/stats"
)

// NetFaultConfig sets the per-request fault probabilities. Drop, Dup,
// Reorder, and Reset are mutually exclusive per request (their sum must
// stay ≤ 1); DelayMax adds an independent uniform latency in
// [0, DelayMax) to every request, faulted or not.
type NetFaultConfig struct {
	// Drop loses the request silently: nothing reaches the wire and the
	// caller waits out its deadline.
	Drop float64
	// Dup delivers the request twice, exercising server-side
	// fingerprint dedup and client-side stray-reply handling.
	Dup float64
	// Reorder delays this request's send asynchronously so a later
	// request can overtake it on the wire.
	Reorder float64
	// Reset sends the request, then tears the connection down before
	// the reply can arrive — the server may have journaled the
	// operation, the client cannot know.
	Reset float64
	// DelayMax bounds the added per-request latency; 0 disables it.
	DelayMax time.Duration
}

// NetFault is a seeded network-fault injector, the wire analogue of
// resilience.FaultWriter: the client consults it once per request and
// applies the drawn fault in its send path. The same seed and request
// sequence always draw the same schedule. Draws are serialized, so a
// sequential caller gets a fully deterministic fault history.
type NetFault struct {
	mu       sync.Mutex
	cfg      NetFaultConfig
	rng      *stats.RNG
	disarmed bool

	reqs, drops, dups, reorders, resets int
}

// NewNetFault builds an armed injector drawing its schedule from seed.
func NewNetFault(cfg NetFaultConfig, seed uint64) *NetFault {
	return &NetFault{cfg: cfg, rng: stats.NewRNG(seed)}
}

// SetArmed turns injection on or off. Disarmed requests pass clean and
// consume nothing from the seeded schedule, so a harness can handshake
// its tier fault-free and arm the exact same schedule afterwards.
func (f *NetFault) SetArmed(armed bool) {
	f.mu.Lock()
	f.disarmed = !armed
	f.mu.Unlock()
}

type faultKind int

const (
	faultNone faultKind = iota
	faultDrop
	faultDup
	faultReorder
	faultReset
)

// draw decides the next request's fate: at most one major fault plus an
// independent delay. nil-safe: a nil injector faults nothing.
func (f *NetFault) draw() (kind faultKind, delay time.Duration) {
	if f == nil {
		return faultNone, 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.disarmed {
		return faultNone, 0
	}
	f.reqs++
	if f.cfg.DelayMax > 0 {
		delay = time.Duration(f.rng.Int63n(int64(f.cfg.DelayMax)))
	}
	p := f.rng.Float64()
	switch {
	case p < f.cfg.Drop:
		f.drops++
		return faultDrop, delay
	case p < f.cfg.Drop+f.cfg.Dup:
		f.dups++
		return faultDup, delay
	case p < f.cfg.Drop+f.cfg.Dup+f.cfg.Reorder:
		f.reorders++
		return faultReorder, delay
	case p < f.cfg.Drop+f.cfg.Dup+f.cfg.Reorder+f.cfg.Reset:
		f.resets++
		return faultReset, delay
	}
	return faultNone, delay
}

// String summarizes the injected schedule so far.
func (f *NetFault) String() string {
	if f == nil {
		return "netfault: off"
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return fmt.Sprintf("reqs=%d drops=%d dups=%d reorders=%d resets=%d",
		f.reqs, f.drops, f.dups, f.reorders, f.resets)
}
