package transport

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sharedopt/internal/obs"
	"sharedopt/internal/resilience"
)

// ClientConfig configures a ShardClient.
type ClientConfig struct {
	// Dial opens a connection to the shard's server. It is re-invoked
	// after every connection loss, so a closure reading a mutable
	// address lets chaos harnesses restart the server elsewhere.
	Dial func() (net.Conn, error)
	// CallTimeout bounds calls whose context has no deadline of its
	// own. 0 means 2s.
	CallTimeout time.Duration
	// Retry shapes the bounded retry of unavailable attempts inside one
	// call (seeded jitter and all — see resilience.Backoff). The
	// call's context deadline caps the whole loop regardless.
	Retry resilience.Backoff
	// Breaker, when set, wraps every attempt: consecutive unavailable
	// outcomes trip it and further attempts fail fast. Nil disables.
	Breaker *Breaker
	// Fault, when set, injects seeded network faults into the send
	// path. Nil disables.
	Fault *NetFault
	// Obs, when set, registers the shard<Shard>.net_* metrics.
	Obs *obs.Registry
	// Shard names the metric prefix; it does not affect routing.
	Shard int
}

// netMetrics is the client's metric set (see the name contract in
// internal/resilience/obs.go). The zero value is the disabled form.
type netMetrics struct {
	requests *obs.Counter
	failures *obs.Counter
	retries  *obs.Counter
	redials  *obs.Counter
	strays   *obs.Counter
	rtt      *obs.Histogram
}

func newNetMetrics(reg *obs.Registry, shard int) netMetrics {
	p := fmt.Sprintf("shard%d", shard)
	return netMetrics{
		requests: reg.Counter(p + ".net_requests"),
		failures: reg.Counter(p + ".net_failures"),
		retries:  reg.Counter(p + ".net_retries"),
		redials:  reg.Counter(p + ".net_redials"),
		strays:   reg.Counter(p + ".net_stray_replies"),
		rtt:      reg.Histogram(p+".net_rtt_ns", nil),
	}
}

// ShardClient implements resilience.ShardTransport over one TCP
// connection per liveness epoch: calls multiplex onto the connection by
// request ID, a reader goroutine routes replies back to waiters, and a
// lost connection fails every in-flight call unavailable and is redialed
// lazily by the next attempt. Safe for concurrent use.
type ShardClient struct {
	cfg ClientConfig
	om  netMetrics

	mu     sync.Mutex // connection state
	conn   net.Conn
	q      *frameQueue
	gen    uint64
	closed bool

	pmu     sync.Mutex // reply routing
	pending map[uint64]chan response

	nextID atomic.Uint64
}

// NewShardClient builds a client; the first call dials.
func NewShardClient(cfg ClientConfig) (*ShardClient, error) {
	if cfg.Dial == nil {
		return nil, errors.New("transport: ClientConfig.Dial is required")
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 2 * time.Second
	}
	return &ShardClient{
		cfg:     cfg,
		om:      newNetMetrics(cfg.Obs, cfg.Shard),
		pending: make(map[uint64]chan response),
	}, nil
}

// Close severs the connection and fails every in-flight call. Calls
// after Close return ErrShardUnavailable.
func (c *ShardClient) Close() {
	c.mu.Lock()
	c.closed = true
	conn, gen := c.conn, c.gen
	c.mu.Unlock()
	if conn != nil {
		c.teardown(gen)
	}
}

// Submit implements resilience.ShardTransport.
func (c *ShardClient) Submit(ctx context.Context, rec resilience.Record) (resilience.SubmitResult, error) {
	resp, err := c.call(ctx, request{Op: opSubmit, Rec: &rec})
	if err != nil {
		return resilience.SubmitResult{}, err
	}
	if resp.Result == nil {
		// A success frame without its payload: treat as no decision and
		// let the retry path re-ask (dedup makes that safe).
		return resilience.SubmitResult{}, fmt.Errorf("%w: submit reply without result", resilience.ErrShardUnavailable)
	}
	return *resp.Result, nil
}

// Advance implements resilience.ShardTransport.
func (c *ShardClient) Advance(ctx context.Context, window int) error {
	_, err := c.call(ctx, request{Op: opAdv, Window: window})
	return err
}

// ClosePeriod implements resilience.ShardTransport.
func (c *ShardClient) ClosePeriod(ctx context.Context) error {
	_, err := c.call(ctx, request{Op: opClose})
	return err
}

// Stats implements resilience.ShardTransport.
func (c *ShardClient) Stats(ctx context.Context) (resilience.ShardInfo, error) {
	resp, err := c.call(ctx, request{Op: opStats})
	if err != nil {
		return resilience.ShardInfo{}, err
	}
	if resp.Info == nil {
		return resilience.ShardInfo{}, fmt.Errorf("%w: stats reply without info", resilience.ErrShardUnavailable)
	}
	return *resp.Info, nil
}

// call runs one logical call: bounded seeded-backoff retries of
// unavailable attempts under the context deadline (applying CallTimeout
// when the caller brought none). The returned error keeps the transport
// contract: anything short of a shard verdict wraps
// ErrShardUnavailable.
func (c *ShardClient) call(ctx context.Context, req request) (response, error) {
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.cfg.CallTimeout)
		defer cancel()
	}
	var resp response
	attempts := 0
	err := resilience.RetryIf(ctx, c.cfg.Retry, func(err error) bool {
		return errors.Is(err, resilience.ErrShardUnavailable)
	}, func() error {
		if attempts++; attempts > 1 {
			c.om.retries.Inc()
		}
		var aerr error
		resp, aerr = c.attempt(ctx, req)
		return aerr
	})
	if err != nil {
		// RetryIf reports an expired context bare when it fires before
		// the first attempt; fold it into the contract.
		if !errors.Is(err, resilience.ErrShardUnavailable) &&
			(errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)) {
			err = fmt.Errorf("%w: %w", resilience.ErrShardUnavailable, err)
		}
		if errors.Is(err, resilience.ErrShardUnavailable) {
			c.om.failures.Inc()
		}
		return response{}, err
	}
	return resp, nil
}

// attempt is one wire round trip, gated by the breaker when configured.
func (c *ShardClient) attempt(ctx context.Context, req request) (response, error) {
	var resp response
	err := c.cfg.Breaker.Do(func() error {
		var aerr error
		resp, aerr = c.roundTrip(ctx, req)
		return aerr
	})
	return resp, err
}

// roundTrip sends one request frame and waits for its reply, applying
// any injected fault on the way out.
func (c *ShardClient) roundTrip(ctx context.Context, req request) (response, error) {
	start := time.Now()
	q, gen, err := c.ensureConn()
	if err != nil {
		return response{}, fmt.Errorf("%w: dial: %w", resilience.ErrShardUnavailable, err)
	}
	req.ID = c.nextID.Add(1)
	if d, ok := ctx.Deadline(); ok {
		us := time.Until(d).Microseconds()
		if us <= 0 {
			return response{}, fmt.Errorf("%w: %w", resilience.ErrShardUnavailable, context.DeadlineExceeded)
		}
		req.DeadlineUS = us
	}
	frame, err := encodeFrame(req)
	if err != nil {
		return response{}, err // unencodable request: definitive
	}
	ch := make(chan response, 1)
	c.pmu.Lock()
	c.pending[req.ID] = ch
	c.pmu.Unlock()
	c.om.requests.Inc()

	kind, delay := c.cfg.Fault.draw()
	if delay > 0 && !sleepCtx(ctx, delay) {
		c.unregister(req.ID)
		return response{}, fmt.Errorf("%w: %w", resilience.ErrShardUnavailable, ctx.Err())
	}
	switch kind {
	case faultDrop:
		// The frame never reaches the wire; the deadline wait below is
		// the loss surfacing.
	case faultDup:
		if q.enqueue(frame) == nil {
			q.enqueue(frame) //nolint:errcheck // second copy is best-effort
		}
	case faultReorder:
		// Send late and asynchronously, letting a later request
		// overtake this one on the wire.
		go func() {
			time.Sleep(time.Millisecond)
			q.enqueue(frame) //nolint:errcheck // loss surfaces as deadline expiry
		}()
	case faultReset:
		q.enqueue(frame) //nolint:errcheck // the teardown is the fault
		c.teardown(gen)
	default:
		if err := q.enqueue(frame); err != nil {
			c.unregister(req.ID)
			c.teardown(gen)
			return response{}, fmt.Errorf("%w: write: %w", resilience.ErrShardUnavailable, err)
		}
	}

	select {
	case resp, ok := <-ch:
		if !ok {
			return response{}, fmt.Errorf("%w: connection lost awaiting reply", resilience.ErrShardUnavailable)
		}
		c.om.rtt.ObserveSince(start)
		if verr := decodeVerdict(resp.Code, resp.Err); verr != nil {
			return response{}, verr
		}
		return resp, nil
	case <-ctx.Done():
		c.unregister(req.ID)
		return response{}, fmt.Errorf("%w: %w", resilience.ErrShardUnavailable, ctx.Err())
	}
}

// ensureConn returns the live connection, dialing a fresh one if the
// last was lost.
func (c *ShardClient) ensureConn() (*frameQueue, uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, 0, errors.New("transport: client closed")
	}
	if c.conn != nil {
		return c.q, c.gen, nil
	}
	conn, err := c.cfg.Dial()
	if err != nil {
		return nil, 0, err
	}
	c.gen++
	if c.gen > 1 {
		c.om.redials.Inc()
	}
	c.conn = conn
	c.q = newFrameQueue(conn)
	go c.readLoop(conn, c.gen)
	return c.q, c.gen, nil
}

// readLoop routes reply frames to their waiting calls; strays (late,
// duplicated, or reordered replies whose call already gave up) are
// counted and dropped. A read error ends the connection's epoch.
func (c *ShardClient) readLoop(conn net.Conn, gen uint64) {
	for {
		body, err := readFrame(conn)
		if err != nil {
			c.teardown(gen)
			return
		}
		var resp response
		if err := json.Unmarshal(body, &resp); err != nil {
			c.teardown(gen)
			return
		}
		c.pmu.Lock()
		ch, ok := c.pending[resp.ID]
		if ok {
			delete(c.pending, resp.ID)
		}
		c.pmu.Unlock()
		if !ok {
			c.om.strays.Inc()
			continue
		}
		ch <- resp
	}
}

// teardown ends connection epoch gen: closes the socket and fails every
// pending call. Each pending entry is removed under pmu by exactly one
// of teardown and readLoop, so the reply channel is touched once.
func (c *ShardClient) teardown(gen uint64) {
	c.mu.Lock()
	if c.gen != gen || c.conn == nil {
		c.mu.Unlock()
		return
	}
	conn := c.conn
	c.conn, c.q = nil, nil
	c.mu.Unlock()
	conn.Close()
	c.pmu.Lock()
	for id, ch := range c.pending {
		delete(c.pending, id)
		close(ch)
	}
	c.pmu.Unlock()
}

// unregister abandons a pending call (its context expired); a reply
// arriving later counts as a stray.
func (c *ShardClient) unregister(id uint64) {
	c.pmu.Lock()
	delete(c.pending, id)
	c.pmu.Unlock()
}

// sleepCtx sleeps d or until ctx ends, reporting whether the full sleep
// happened.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
