package transport

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"sharedopt/internal/obs"
	"sharedopt/internal/resilience"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: calls flow; consecutive transient failures are
	// counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: calls fail fast with ErrShardUnavailable until the
	// cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed; exactly one probe call is
	// admitted to decide between closing and reopening.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", int(s))
}

// BreakerConfig tunes a Breaker. The zero value means trip after 5
// consecutive transient failures and cool down for 250ms.
type BreakerConfig struct {
	// Failures is the consecutive-transient-failure count that trips
	// the breaker open.
	Failures int
	// Cooldown is how long the breaker stays open before admitting a
	// half-open probe.
	Cooldown time.Duration
	// Clock overrides time.Now, so tests and seeded chaos schedules
	// drive the cooldown deterministically.
	Clock func() time.Time
	// Obs, when set, registers shard<Shard>.net_breaker_open counting
	// trips to open.
	Obs   *obs.Registry
	Shard int
}

// Breaker is a per-shard circuit breaker over the transport error
// contract: only outcomes wrapping ErrShardUnavailable count as
// failures (a definitive rejection proves the shard is answering).
// Open-state fast-fails also wrap ErrShardUnavailable, so callers and
// the router's parking logic need no breaker-specific handling.
type Breaker struct {
	mu       sync.Mutex
	cfg      BreakerConfig
	state    BreakerState
	fails    int
	openedAt time.Time
	probing  bool
	opens    *obs.Counter
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Failures <= 0 {
		cfg.Failures = 5
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 250 * time.Millisecond
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Breaker{cfg: cfg, opens: cfg.Obs.Counter(fmt.Sprintf("shard%d.net_breaker_open", cfg.Shard))}
}

// Do runs op under the breaker: admission first (an open breaker fails
// fast without calling op), then the outcome feeds the state machine.
// nil-safe: a nil breaker just runs op.
func (b *Breaker) Do(op func() error) error {
	if b == nil {
		return op()
	}
	if err := b.admit(); err != nil {
		return err
	}
	err := op()
	b.settle(err)
	return err
}

// admit decides whether a call may proceed.
func (b *Breaker) admit() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		if b.cfg.Clock().Sub(b.openedAt) < b.cfg.Cooldown {
			return fmt.Errorf("%w: breaker open", resilience.ErrShardUnavailable)
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return nil
	default: // BreakerHalfOpen
		if b.probing {
			return fmt.Errorf("%w: breaker half-open, probe in flight", resilience.ErrShardUnavailable)
		}
		b.probing = true
		return nil
	}
}

// settle feeds an admitted call's outcome back. Transient means
// ErrShardUnavailable; anything else — success, a rejection, even a
// fail-stop verdict — proves the shard answered and closes the breaker.
func (b *Breaker) settle(err error) {
	transient := err != nil && errors.Is(err, resilience.ErrShardUnavailable)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if !transient {
		b.state = BreakerClosed
		b.fails = 0
		return
	}
	if b.state == BreakerHalfOpen {
		// The probe failed: reopen for a fresh cooldown.
		b.trip()
		return
	}
	if b.fails++; b.fails >= b.cfg.Failures {
		b.trip()
	}
}

// trip opens the breaker now. Callers hold b.mu.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.fails = 0
	b.openedAt = b.cfg.Clock()
	b.opens.Inc()
}

// State reports the breaker's position, surfacing the open→half-open
// transition a pending cooldown implies.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.cfg.Clock().Sub(b.openedAt) >= b.cfg.Cooldown {
		return BreakerHalfOpen
	}
	return b.state
}
