package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"sharedopt"
	"sharedopt/internal/core"
	"sharedopt/internal/econ"
	"sharedopt/internal/obs"
	"sharedopt/internal/resilience"
	"sharedopt/internal/stats"
)

func testCatalog() []sharedopt.Optimization {
	return []sharedopt.Optimization{
		{ID: 1, Cost: econ.FromCents(800)},
		{ID: 2, Cost: econ.FromCents(1200)},
	}
}

// abid builds an additive bid record for user u over [start, end] with
// one value per slot.
func abid(u core.UserID, opt core.OptID, start, end core.Slot, cents ...int64) resilience.Record {
	vals := make([]econ.Money, len(cents))
	for i, c := range cents {
		vals[i] = econ.FromCents(c)
	}
	return resilience.Record{
		Kind: resilience.KindAdditiveBid, Opt: opt,
		User: u, Start: start, End: end, Values: vals,
	}
}

func newTestHost(t *testing.T, shard, shards int) (*resilience.ShardHost, *resilience.MemLog) {
	t.Helper()
	var m resilience.MemLog
	h, err := resilience.NewShardHost(sharedopt.Additive, testCatalog(), 4, shard, shards, &m)
	if err != nil {
		t.Fatalf("NewShardHost: %v", err)
	}
	return h, &m
}

// addrBox is a mutable dial target, so tests can move the server.
type addrBox struct {
	mu   sync.Mutex
	addr string
}

func (a *addrBox) set(addr string) {
	a.mu.Lock()
	a.addr = addr
	a.mu.Unlock()
}

func (a *addrBox) dial() (net.Conn, error) {
	a.mu.Lock()
	addr := a.addr
	a.mu.Unlock()
	return net.DialTimeout("tcp", addr, time.Second)
}

// newTestPair serves host over TCP and returns a connected client.
func newTestPair(t *testing.T, host resilience.ShardTransport, cfg ClientConfig) (*ShardServer, *ShardClient, *addrBox) {
	t.Helper()
	srv := NewShardServer(host)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(srv.Close)
	box := &addrBox{addr: addr}
	cfg.Dial = box.dial
	cli, err := NewShardClient(cfg)
	if err != nil {
		t.Fatalf("NewShardClient: %v", err)
	}
	t.Cleanup(cli.Close)
	return srv, cli, box
}

// TestTCPRoundTrip drives every op over a real socket and checks the
// error contract: duplicates acknowledge with the original Seq,
// mechanism rejections come back definitive (neither unavailable nor
// broken), and markers stay idempotent across the wire.
func TestTCPRoundTrip(t *testing.T) {
	host, _ := newTestHost(t, 0, 1)
	_, cli, _ := newTestPair(t, host, ClientConfig{})
	ctx := context.Background()

	info, err := cli.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if info.Shard != 0 || info.Shards != 1 || info.Bids != 0 || info.Now != 0 {
		t.Fatalf("fresh shard info = %+v", info)
	}

	rec := abid(7, 1, 1, 2, 300, 400)
	res, err := cli.Submit(ctx, rec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if !res.Fresh || res.Seq == 0 {
		t.Fatalf("fresh submit acked %+v", res)
	}
	dup, err := cli.Submit(ctx, rec)
	if err != nil {
		t.Fatalf("duplicate Submit: %v", err)
	}
	if dup.Fresh || dup.Seq != res.Seq {
		t.Fatalf("duplicate acked %+v, want Fresh=false Seq=%d", dup, res.Seq)
	}

	// A mechanism rejection crosses the wire as a definitive error.
	_, err = cli.Submit(ctx, abid(9, 1, 3, 1, 100))
	if err == nil {
		t.Fatal("inverted bid interval accepted")
	}
	if errors.Is(err, resilience.ErrShardUnavailable) || errors.Is(err, resilience.ErrJournalBroken) {
		t.Fatalf("mechanism rejection decoded as %v", err)
	}

	if err := cli.Advance(ctx, 1); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	if err := cli.Advance(ctx, 1); err != nil {
		t.Fatalf("duplicate Advance: %v", err)
	}
	if err := cli.Advance(ctx, 3); err == nil {
		t.Fatal("window-gap Advance accepted")
	}
	if err := cli.ClosePeriod(ctx); err != nil {
		t.Fatalf("ClosePeriod: %v", err)
	}
	info, err = cli.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats after close: %v", err)
	}
	if info.Now != 1 || !info.Closed || info.Bids != 1 {
		t.Fatalf("closed shard info = %+v", info)
	}
}

// slowHost blocks every call until the server-side context expires,
// recording whether a deadline crossed the wire.
type slowHost struct {
	resilience.ShardTransport
	sawDeadline chan bool
}

func (h *slowHost) Submit(ctx context.Context, rec resilience.Record) (resilience.SubmitResult, error) {
	_, ok := ctx.Deadline()
	h.sawDeadline <- ok
	<-ctx.Done()
	return resilience.SubmitResult{}, fmt.Errorf("%w: %w", resilience.ErrShardUnavailable, ctx.Err())
}

// TestTCPDeadlinePropagation: the client's remaining context budget
// re-arms on the server, so a stalled shard call fails unavailable at
// the deadline instead of hanging forever.
func TestTCPDeadlinePropagation(t *testing.T) {
	inner, _ := newTestHost(t, 0, 1)
	host := &slowHost{ShardTransport: inner, sawDeadline: make(chan bool, 8)}
	_, cli, _ := newTestPair(t, host, ClientConfig{
		CallTimeout: 50 * time.Millisecond,
		Retry:       resilience.Backoff{Attempts: 1},
	})

	start := time.Now()
	_, err := cli.Submit(context.Background(), abid(1, 1, 1, 1, 100))
	if !errors.Is(err, resilience.ErrShardUnavailable) {
		t.Fatalf("stalled submit: %v", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("deadline ignored: waited %v", waited)
	}
	if saw := <-host.sawDeadline; !saw {
		t.Fatal("server-side context carried no deadline")
	}
}

// TestDuplicateDeliveryDedup (satellite): with every request delivered
// twice, each bid still journals exactly once — the second delivery
// resolves through fingerprint dedup on the server, and its extra reply
// is dropped as a stray on the client.
func TestDuplicateDeliveryDedup(t *testing.T) {
	host, m := newTestHost(t, 0, 1)
	reg := obs.NewRegistry()
	_, cli, _ := newTestPair(t, host, ClientConfig{
		Fault: NewNetFault(NetFaultConfig{Dup: 1}, 11),
		Obs:   reg,
	})
	ctx := context.Background()

	const bids = 5
	for u := core.UserID(1); u <= bids; u++ {
		res, err := cli.Submit(ctx, abid(u, 1, 1, 2, 100, 200))
		if err != nil {
			t.Fatalf("user %d: %v", u, err)
		}
		if !res.Fresh {
			t.Fatalf("user %d first delivery deduped", u)
		}
	}

	recs, _, torn := resilience.ReadJournal(m.Bytes())
	if torn {
		t.Fatal("journal torn")
	}
	got := 0
	for _, rec := range recs {
		if rec.Kind == resilience.KindAdditiveBid {
			got++
		}
	}
	if got != bids {
		t.Fatalf("journal holds %d bid records, want %d (duplicated deliveries double-journaled)", got, bids)
	}

	// The duplicate replies surface as strays once their frames drain.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if reg.Snapshot().Counters["shard0.net_stray_replies"] >= bids {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stray replies = %d, want >= %d", reg.Snapshot().Counters["shard0.net_stray_replies"], bids)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBreakerTransitions walks the full state machine on a fake clock:
// closed to open after Failures consecutive transients, fast-fails while
// open, a single half-open probe after the cooldown, probe failure
// reopening, probe success closing.
func TestBreakerTransitions(t *testing.T) {
	now := time.Unix(0, 0)
	reg := obs.NewRegistry()
	br := NewBreaker(BreakerConfig{
		Failures: 3,
		Cooldown: time.Second,
		Clock:    func() time.Time { return now },
		Obs:      reg,
		Shard:    2,
	})
	transient := fmt.Errorf("%w: injected", resilience.ErrShardUnavailable)
	opens := func() uint64 { return reg.Snapshot().Counters["shard2.net_breaker_open"] }

	for i := 0; i < 2; i++ {
		br.Do(func() error { return transient })
		if got := br.State(); got != BreakerClosed {
			t.Fatalf("after %d failures state = %v, want closed", i+1, got)
		}
	}
	br.Do(func() error { return transient })
	if got := br.State(); got != BreakerOpen {
		t.Fatalf("after trip state = %v, want open", got)
	}
	if opens() != 1 {
		t.Fatalf("opens counter = %d, want 1", opens())
	}

	// Open: fast-fail, the op must not run.
	ran := false
	err := br.Do(func() error { ran = true; return nil })
	if ran || !errors.Is(err, resilience.ErrShardUnavailable) {
		t.Fatalf("open breaker ran op (ran=%v err=%v)", ran, err)
	}

	// Cooldown elapses: one probe is admitted; its failure reopens.
	now = now.Add(time.Second)
	if got := br.State(); got != BreakerHalfOpen {
		t.Fatalf("post-cooldown state = %v, want half-open", got)
	}
	calls := 0
	br.Do(func() error { calls++; return transient })
	if calls != 1 || br.State() != BreakerOpen || opens() != 2 {
		t.Fatalf("failed probe: calls=%d state=%v opens=%d, want 1/open/2", calls, br.State(), opens())
	}

	// Second cooldown: the probe succeeds and the breaker closes.
	now = now.Add(time.Second)
	if err := br.Do(func() error { return nil }); err != nil {
		t.Fatalf("successful probe returned %v", err)
	}
	if got := br.State(); got != BreakerClosed {
		t.Fatalf("post-probe state = %v, want closed", got)
	}

	// A definitive rejection proves the shard answers: it closes the
	// breaker even though the call failed.
	br.Do(func() error { return transient })
	br.Do(func() error { return transient })
	definitive := errors.New("bid is retroactive")
	if err := br.Do(func() error { return definitive }); !errors.Is(err, definitive) {
		t.Fatalf("definitive error rewritten to %v", err)
	}
	br.Do(func() error { return transient })
	br.Do(func() error { return transient })
	if got := br.State(); got != BreakerClosed {
		t.Fatalf("definitive outcome did not reset the failure streak: %v", got)
	}
}

// TestBreakerHalfOpenSingleProbe: concurrent callers hitting a breaker
// in its half-open window admit exactly one probe.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	now := time.Unix(0, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	br := NewBreaker(BreakerConfig{Failures: 1, Cooldown: time.Second, Clock: clock})
	transient := fmt.Errorf("%w: injected", resilience.ErrShardUnavailable)
	br.Do(func() error { return transient }) // trip
	mu.Lock()
	now = now.Add(time.Second)
	mu.Unlock()

	var probes int32
	var wg sync.WaitGroup
	gate := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			br.Do(func() error {
				mu.Lock()
				probes++
				mu.Unlock()
				<-gate // hold the probe slot so the others race admit()
				return nil
			})
		}()
	}
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()
	if probes != 1 {
		t.Fatalf("half-open admitted %d probes, want 1", probes)
	}
}

// TestClientBreakerFastFail wires the breaker into a client whose
// server is gone: once tripped, further calls fail fast without touching
// the network, and a restarted server heals through the half-open probe.
func TestClientBreakerFastFail(t *testing.T) {
	host, _ := newTestHost(t, 0, 1)
	now := time.Unix(0, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	reg := obs.NewRegistry()
	br := NewBreaker(BreakerConfig{Failures: 2, Cooldown: time.Minute, Clock: clock, Obs: reg})
	srv, cli, box := newTestPair(t, host, ClientConfig{
		CallTimeout: 100 * time.Millisecond,
		Retry:       resilience.Backoff{Attempts: 1},
		Breaker:     br,
		Obs:         reg,
	})
	ctx := context.Background()
	srv.Close()

	for i := 0; br.State() != BreakerOpen; i++ {
		if i > 10 {
			t.Fatal("breaker never tripped against a dead server")
		}
		if _, err := cli.Submit(ctx, abid(1, 1, 1, 1, 100)); !errors.Is(err, resilience.ErrShardUnavailable) {
			t.Fatalf("dead-server submit: %v", err)
		}
	}
	wire := reg.Snapshot().Counters["shard0.net_requests"]
	if _, err := cli.Submit(ctx, abid(1, 1, 1, 1, 100)); !errors.Is(err, resilience.ErrShardUnavailable) {
		t.Fatalf("open-breaker submit: %v", err)
	}
	if after := reg.Snapshot().Counters["shard0.net_requests"]; after != wire {
		t.Fatalf("open breaker still touched the wire: %d -> %d requests", wire, after)
	}

	// Restart the shard elsewhere; after the cooldown the probe heals.
	srv2 := NewShardServer(host)
	addr, err := srv2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("restart Listen: %v", err)
	}
	defer srv2.Close()
	box.set(addr)
	mu.Lock()
	now = now.Add(time.Minute)
	mu.Unlock()
	res, err := cli.Submit(ctx, abid(1, 1, 1, 1, 100))
	if err != nil || !res.Fresh {
		t.Fatalf("post-restart probe submit: res=%+v err=%v", res, err)
	}
	if got := br.State(); got != BreakerClosed {
		t.Fatalf("healed breaker state = %v, want closed", got)
	}
}

// TestServerKillRecoverRestart is the single-shard process-kill drill:
// kill the server mid-period, recover the host from its journal bytes,
// restart on a new address, and check dedup survived — a client
// retrying a pre-crash submission is acknowledged, not double-journaled.
func TestServerKillRecoverRestart(t *testing.T) {
	host, m := newTestHost(t, 0, 1)
	reg := obs.NewRegistry()
	srv, cli, box := newTestPair(t, host, ClientConfig{
		CallTimeout: 100 * time.Millisecond,
		Retry:       resilience.Backoff{Attempts: 1},
		Obs:         reg,
	})
	ctx := context.Background()

	var seqs []uint64
	for u := core.UserID(1); u <= 3; u++ {
		res, err := cli.Submit(ctx, abid(u, 1, 1, 2, 100, 200))
		if err != nil {
			t.Fatalf("user %d: %v", u, err)
		}
		seqs = append(seqs, res.Seq)
	}

	srv.Close() // kill the shard process; the journal survives
	if _, err := cli.Submit(ctx, abid(4, 1, 1, 1, 100)); !errors.Is(err, resilience.ErrShardUnavailable) {
		t.Fatalf("submit against killed server: %v", err)
	}

	recs, _, torn := resilience.ReadJournal(m.Bytes())
	if torn {
		t.Fatal("journal torn by server kill")
	}
	host2, err := resilience.RecoverShardHost(recs, m)
	if err != nil {
		t.Fatalf("RecoverShardHost: %v", err)
	}
	srv2 := NewShardServer(host2)
	addr, err := srv2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("restart Listen: %v", err)
	}
	defer srv2.Close()
	box.set(addr)

	// A blind client retry of a pre-crash bid hits recovered dedup.
	res, err := cli.Submit(ctx, abid(2, 1, 1, 2, 100, 200))
	if err != nil {
		t.Fatalf("retry after restart: %v", err)
	}
	if res.Fresh || res.Seq != seqs[1] {
		t.Fatalf("pre-crash bid re-acked %+v, want Fresh=false Seq=%d", res, seqs[1])
	}
	if res, err = cli.Submit(ctx, abid(4, 1, 1, 1, 100)); err != nil || !res.Fresh {
		t.Fatalf("fresh bid after restart: res=%+v err=%v", res, err)
	}
	if got := reg.Snapshot().Counters["shard0.net_redials"]; got < 1 {
		t.Fatalf("redials = %d, want >= 1", got)
	}
}

// tierScript is a deterministic bid script shared by identity tests.
type tierScript struct {
	kind    sharedopt.GameKind
	horizon core.Slot
	ops     []resilience.Record // bid records in submit order
	advs    []int               // bid count before each advance
}

func buildScript(seed uint64, horizon core.Slot) tierScript {
	r := stats.NewRNG(seed)
	sc := tierScript{kind: sharedopt.Additive, horizon: horizon}
	catalog := testCatalog()
	user := core.UserID(0)
	for now := core.Slot(0); now < horizon; now++ {
		n := 4 + r.Intn(5)
		for i := 0; i < n; i++ {
			user++
			start := now + 1 + core.Slot(r.Intn(int(horizon-now)))
			end := start + core.Slot(r.Intn(int(horizon-start)+1))
			cents := make([]int64, int(end-start+1))
			for k := range cents {
				cents[k] = int64(r.Intn(900))
			}
			vals := make([]econ.Money, len(cents))
			for k, c := range cents {
				vals[k] = econ.FromCents(c)
			}
			sc.ops = append(sc.ops, resilience.Record{
				Kind: resilience.KindAdditiveBid,
				Opt:  catalog[r.Intn(len(catalog))].ID,
				User: user, Start: start, End: end, Values: vals,
			})
		}
		sc.advs = append(sc.advs, len(sc.ops))
	}
	return sc
}

// drive replays the script against a tier, retrying transient submit
// failures to a definitive outcome (dedup makes that safe).
func (sc tierScript) drive(t *testing.T, s *resilience.ShardedService) {
	t.Helper()
	next := 0
	retry := resilience.Backoff{Attempts: 20, Base: time.Millisecond, Cap: 10 * time.Millisecond}
	for _, upto := range sc.advs {
		for ; next < upto; next++ {
			rec := sc.ops[next]
			err := resilience.RetryIf(context.Background(), retry, func(err error) bool {
				return errors.Is(err, resilience.ErrShardUnavailable) || errors.Is(err, resilience.ErrOverloaded)
			}, func() error {
				return s.SubmitAdditiveBid(rec.Opt, core.OnlineBid{
					User: rec.User, Start: rec.Start, End: rec.End, Values: rec.Values,
				})
			})
			if err != nil {
				t.Fatalf("bid %d (user %d): %v", next, rec.User, err)
			}
		}
		if _, err := s.AdvanceSlot(); err != nil {
			t.Fatalf("advance after bid %d: %v", upto, err)
		}
	}
	if _, err := s.ClosePeriod(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// snapshot renders the tier's settled economics for byte comparison.
func snapshot(s *resilience.ShardedService) string {
	var b strings.Builder
	fmt.Fprintf(&b, "now=%d closed=%v revenue=%v cost=%v surplus=%v\n",
		s.Now(), s.Closed(), s.Revenue(), s.CostIncurred(), s.Surplus())
	opts := s.ImplementedOpts()
	sort.Slice(opts, func(i, j int) bool { return opts[i] < opts[j] })
	fmt.Fprintf(&b, "implemented=%v\n", opts)
	inv := s.Invoices()
	users := make([]core.UserID, 0, len(inv))
	for u := range inv {
		users = append(users, u)
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
	for _, u := range users {
		fmt.Fprintf(&b, "user %d: %v\n", u, inv[u])
	}
	return b.String()
}

// TestShardedOverTCPByteIdentical is the tentpole identity check in
// miniature: the same script against an in-process loopback tier and a
// TCP tier under benign-but-nasty network faults (latency, duplicates,
// reorders) must settle to byte-identical economics, with exact
// client-vs-shard accounting on the TCP side.
func TestShardedOverTCPByteIdentical(t *testing.T) {
	const shards = 2
	sc := buildScript(41, 4)
	catalog := testCatalog()

	// Reference: loopback tier.
	var mems [shards]resilience.MemLog
	ws := make([]io.Writer, shards)
	for i := range ws {
		ws[i] = &mems[i]
	}
	ref, err := resilience.NewShardedService(sc.kind, catalog, sc.horizon, ws, resilience.ShardedConfig{})
	if err != nil {
		t.Fatalf("loopback tier: %v", err)
	}
	sc.drive(t, ref)

	// Subject: TCP tier with injected faults.
	links := make([]resilience.ShardTransport, shards)
	for i := 0; i < shards; i++ {
		var m resilience.MemLog
		h, err := resilience.NewShardHost(sc.kind, catalog, sc.horizon, i, shards, &m)
		if err != nil {
			t.Fatalf("host %d: %v", i, err)
		}
		_, cli, _ := newTestPair(t, h, ClientConfig{
			CallTimeout: 250 * time.Millisecond,
			Retry:       resilience.Backoff{Attempts: 4, Base: time.Millisecond, Cap: 5 * time.Millisecond, Jitter: 0.5, Seed: uint64(i)},
			Fault: NewNetFault(NetFaultConfig{
				Dup: 0.15, Reorder: 0.1, DelayMax: 500 * time.Microsecond,
			}, 1000+uint64(i)),
			Shard: i,
		})
		links[i] = cli
	}
	tcp, err := resilience.NewShardedServiceOver(sc.kind, catalog, sc.horizon, links, resilience.ShardedConfig{CallTimeout: 250 * time.Millisecond})
	if err != nil {
		t.Fatalf("tcp tier: %v", err)
	}
	sc.drive(t, tcp)

	if got, want := snapshot(tcp), snapshot(ref); got != want {
		t.Fatalf("TCP settlement diverged from loopback:\n--- tcp ---\n%s--- loopback ---\n%s", got, want)
	}
	for i, st := range tcp.ShardStats() {
		if st.Pending != 0 {
			t.Fatalf("shard %d still pending %d after close", i, st.Pending)
		}
		if st.Settled != st.Accepted {
			t.Fatalf("shard %d settled %d of %d accepted", i, st.Settled, st.Accepted)
		}
	}
}

// TestNetFaultDeterminism: equal seeds draw equal schedules; distinct
// seeds diverge.
func TestNetFaultDeterminism(t *testing.T) {
	cfg := NetFaultConfig{Drop: 0.1, Dup: 0.1, Reorder: 0.1, Reset: 0.1, DelayMax: time.Millisecond}
	a, b, c := NewNetFault(cfg, 5), NewNetFault(cfg, 5), NewNetFault(cfg, 6)
	same := true
	diff := false
	for i := 0; i < 200; i++ {
		ka, da := a.draw()
		kb, db := b.draw()
		kc, dc := c.draw()
		if ka != kb || da != db {
			same = false
		}
		if ka != kc || da != dc {
			diff = true
		}
	}
	if !same {
		t.Fatal("equal seeds drew different fault schedules")
	}
	if !diff {
		t.Fatal("distinct seeds drew identical fault schedules")
	}
	if a.String() != b.String() {
		t.Fatalf("summaries diverged: %q vs %q", a, b)
	}
	if !strings.Contains(a.String(), "reqs=200") {
		t.Fatalf("summary %q", a)
	}
}

// TestHandshakeRejectsMisroutedLink: a tier constructor handed a client
// pointing at the wrong shard refuses at startup.
func TestHandshakeRejectsMisroutedLink(t *testing.T) {
	catalog := testCatalog()
	links := make([]resilience.ShardTransport, 2)
	for i := 0; i < 2; i++ {
		var m resilience.MemLog
		// Both hosts claim shard 0: link 1 is misrouted.
		h, err := resilience.NewShardHost(sharedopt.Additive, catalog, 4, 0, 2, &m)
		if err != nil {
			t.Fatalf("host %d: %v", i, err)
		}
		_, cli, _ := newTestPair(t, h, ClientConfig{})
		links[i] = cli
	}
	_, err := resilience.NewShardedServiceOver(sharedopt.Additive, catalog, 4, links, resilience.ShardedConfig{})
	if err == nil {
		t.Fatal("misrouted link accepted")
	}
}
