package resilience

// The sharded crash-replay property: killing the whole tier (all N
// journals at once, via a CrashGroup — process-death semantics) at
// EVERY global write index, with and without a torn tail, then
// recovering from the surviving journal prefixes must yield (a) a
// deterministic state — two recoveries of the same journals agree byte
// for byte — with every journal rolled forward to one common frontier,
// and (b) a tier that, after blindly re-driving the full workload
// script (lost submissions land fresh, surviving ones dedup, settled
// slots skip), finishes byte-identical to the run that never crashed.

import (
	"errors"
	"fmt"
	"io"
	"testing"

	"sharedopt"
	"sharedopt/internal/core"
	"sharedopt/internal/econ"
	"sharedopt/internal/stats"
)

// journalFrontier summarizes one journal: adv markers and close marker.
func journalFrontier(t *testing.T, m *MemLog) (advs int, closed bool) {
	t.Helper()
	recs, _, torn := ReadJournal(m.Bytes())
	if torn {
		t.Fatal("journal torn after recovery truncated and resumed it")
	}
	for _, rec := range recs {
		switch rec.Kind {
		case KindAdvanceSlot:
			advs++
		case KindClosePeriod:
			closed = true
		}
	}
	return advs, closed
}

func testShardedCrashRecover(t *testing.T, kind sharedopt.GameKind, shards int, seed uint64) {
	r := stats.NewRNG(seed)
	catalog := randomCatalog(r, 3)
	horizon := core.Slot(3 + r.Intn(3))
	ops := buildTierOps(seed*1471+uint64(kind)+uint64(shards), kind, catalog, horizon)

	// Uncrashed oracle run, instrumented only to count global writes.
	logs, _ := memWriters(shards)
	group := NewCrashGroup()
	ws := make([]io.Writer, shards)
	for i := range ws {
		ws[i] = NewFaultWriterInGroup(logs[i], FaultPlan{}, group)
	}
	ss, err := NewShardedService(kind, catalog, horizon, ws, ShardedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	applyTierOps(t, ops, ss, kind, true, nil)
	final := snapshotTier(ss)
	totalWrites := group.Writes()

	for kill := 0; kill < totalWrites; kill++ {
		for _, tear := range []int{0, 9} {
			logs, _ := memWriters(shards)
			g := NewCrashGroup()
			g.KillAtWrite(kill, tear)
			ws := make([]io.Writer, shards)
			for i := range ws {
				ws[i] = NewFaultWriterInGroup(logs[i], FaultPlan{}, g)
			}
			crashed, err := NewShardedService(kind, catalog, horizon, ws, ShardedConfig{})
			if err == nil {
				// Drive until the process dies; errors are the crash.
				applyTierOps(t, ops, crashed, kind, false, nil)
			} else if kill >= shards {
				t.Fatalf("kill=%d: constructor failed outside the config writes: %v", kill, err)
			}
			if !g.Crashed() {
				t.Fatalf("kill=%d tear=%d: schedule never reached the kill write", kill, tear)
			}

			// Recover from the surviving prefixes, the way OpenFileLog
			// would: parse, truncate the torn tail, resume appending.
			journals := make([][]Record, shards)
			rws := make([]io.Writer, shards)
			allEmpty := true
			for i := range logs {
				recs, consumed, _ := ReadJournal(logs[i].Bytes())
				logs[i].Truncate(consumed)
				journals[i] = recs
				rws[i] = logs[i]
				allEmpty = allEmpty && len(recs) == 0
			}
			rec1, err := RecoverShardedService(journals, rws, ShardedConfig{})
			if err != nil {
				if allEmpty && errors.Is(err, ErrEmptyJournal) {
					continue // nothing was ever acknowledged; nothing to recover
				}
				t.Fatalf("kill=%d tear=%d: recovery failed: %v", kill, tear, err)
			}
			if w := rec1.WedgedShards(); len(w) != 0 {
				t.Fatalf("kill=%d tear=%d: recovery wedged shards %v on clean plans", kill, tear, w)
			}

			// Determinism: a second recovery of the same journals yields
			// the identical state.
			dws := make([]io.Writer, shards)
			for i := range dws {
				dws[i] = io.Discard
			}
			rec2, err := RecoverShardedService(journals, dws, ShardedConfig{})
			if err != nil {
				t.Fatalf("kill=%d tear=%d: second recovery failed: %v", kill, tear, err)
			}
			if s1, s2 := snapshotTier(rec1), snapshotTier(rec2); s1 != s2 {
				t.Fatalf("kill=%d tear=%d: recovery is nondeterministic\n%s\nvs\n%s", kill, tear, s1, s2)
			}

			// Frontier reconciliation: every journal now agrees on the
			// adv count and close marker.
			wantAdvs, wantClosed := journalFrontier(t, logs[0])
			for i := 1; i < shards; i++ {
				advs, closed := journalFrontier(t, logs[i])
				if advs != wantAdvs || closed != wantClosed {
					t.Fatalf("kill=%d tear=%d: shard %d rolled to (advs=%d closed=%v), shard 0 to (advs=%d closed=%v)",
						kill, tear, i, advs, closed, wantAdvs, wantClosed)
				}
			}
			if got := int(rec1.Now()); got != wantAdvs {
				t.Fatalf("kill=%d tear=%d: recovered Now()=%d but journals hold %d adv markers", kill, tear, got, wantAdvs)
			}

			// Continuation: blindly re-driving the whole script must end
			// byte-identical to the run that never crashed.
			applyTierOps(t, ops, rec1, kind, false, nil)
			if got := snapshotTier(rec1); got != final {
				t.Fatalf("kill=%d tear=%d: continuation diverged from the uncrashed run\n--- recovered+continued ---\n%s--- uncrashed ---\n%s",
					kill, tear, got, final)
			}
		}
	}
}

// TestShardedCrashRecoverEveryWrite is the tentpole crash property, at
// every shard count the identity property covers.
func TestShardedCrashRecoverEveryWrite(t *testing.T) {
	for _, kind := range []sharedopt.GameKind{sharedopt.Additive, sharedopt.Substitutive} {
		for _, n := range []int{1, 2, 4, 8} {
			for seed := uint64(1); seed <= 2; seed++ {
				t.Run(fmt.Sprintf("kind=%v/shards=%d/seed=%d", kind, n, seed), func(t *testing.T) {
					testShardedCrashRecover(t, kind, n, seed)
				})
			}
		}
	}
}

// TestShardedRecoverRollForward pins the frontier rule on a handcrafted
// schedule: the crash lands exactly on shard 1's adv marker, so shard 0
// acknowledged the advance and shard 1 did not. Recovery must roll
// shard 1 forward (its tail belongs to the advanced window), matching
// the live tier's post-advance state.
func TestShardedRecoverRollForward(t *testing.T) {
	const n = 2
	catalog := []sharedopt.Optimization{{ID: 1, Cost: econ.FromDollars(2)}}
	logs, _ := memWriters(n)
	g := NewCrashGroup()
	// Writes: 0,1 = configs; 2,3 = one bid per shard; 4 = shard 0 adv;
	// 5 = shard 1 adv — the kill write.
	g.KillAtWrite(5, 0)
	ws := make([]io.Writer, n)
	for i := range ws {
		ws[i] = NewFaultWriterInGroup(logs[i], FaultPlan{}, g)
	}
	ss, err := NewShardedService(sharedopt.Additive, catalog, 4, ws, ShardedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	u0 := userOnShard(0, n, 0)
	u1 := userOnShard(1, n, 0)
	if err := ss.SubmitAdditiveBid(1, shardBid(u0)); err != nil {
		t.Fatal(err)
	}
	if err := ss.SubmitAdditiveBid(1, shardBid(u1)); err != nil {
		t.Fatal(err)
	}
	if _, err := ss.AdvanceSlot(); err != nil {
		t.Fatalf("advance with one durable marker must be acknowledged, got %v", err)
	}
	if !g.Crashed() {
		t.Fatal("kill write never happened")
	}
	if err := ss.Wedged(1); !errors.Is(err, ErrShardWedged) {
		t.Fatalf("shard 1 not wedged after its marker write died: %v", err)
	}
	live := snapshotTier(ss)

	journals := make([][]Record, n)
	rws := make([]io.Writer, n)
	for i := range logs {
		recs, consumed, _ := ReadJournal(logs[i].Bytes())
		logs[i].Truncate(consumed)
		journals[i] = recs
		rws[i] = logs[i]
	}
	if advs, _ := journalFrontier(t, logs[1]); advs != 0 {
		t.Fatalf("shard 1 journal holds %d adv markers before recovery, want 0", advs)
	}
	rec, err := RecoverShardedService(journals, rws, ShardedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := snapshotTier(rec); got != live {
		t.Fatalf("recovered state diverged from the live post-advance state\n--- recovered ---\n%s--- live ---\n%s", got, live)
	}
	if advs, _ := journalFrontier(t, logs[1]); advs != 1 {
		t.Fatalf("shard 1 journal holds %d adv markers after recovery, want 1 (rolled forward)", advs)
	}
	if _, ok := rec.Invoice(u1); !ok {
		t.Fatal("behind shard's durable bid was not settled by the roll-forward")
	}
}

// shardedTestJournals builds a clean pair of handcrafted shard journals
// over one catalog, for the corrupt-input tests.
func shardedRecordSeq(recs []Record) []Record {
	for i := range recs {
		recs[i].Seq = uint64(i + 1)
	}
	return recs
}

// TestShardedRecoverConfigValidation rejects journals that disagree on
// the tier shape.
func TestShardedRecoverConfigValidation(t *testing.T) {
	catalog := []sharedopt.Optimization{{ID: 1, Cost: econ.FromDollars(2)}}
	cfg := func(i, n int) Record {
		return shardConfigRecord(sharedopt.Additive, catalog, 4, i, n)
	}
	dws := func(n int) []io.Writer {
		ws := make([]io.Writer, n)
		for i := range ws {
			ws[i] = io.Discard
		}
		return ws
	}

	// Journals passed out of order.
	j := [][]Record{
		shardedRecordSeq([]Record{cfg(1, 2)}),
		shardedRecordSeq([]Record{cfg(0, 2)}),
	}
	if _, err := RecoverShardedService(j, dws(2), ShardedConfig{}); err == nil {
		t.Fatal("out-of-order journals recovered")
	}

	// Shard count mismatch: a 2-shard journal recovered as a 1-shard tier.
	j = [][]Record{shardedRecordSeq([]Record{cfg(0, 2)})}
	if _, err := RecoverShardedService(j, dws(1), ShardedConfig{}); err == nil {
		t.Fatal("shard-count mismatch recovered")
	}

	// Tier config disagreement: different horizons.
	other := shardConfigRecord(sharedopt.Additive, catalog, 7, 1, 2)
	j = [][]Record{
		shardedRecordSeq([]Record{cfg(0, 2)}),
		shardedRecordSeq([]Record{other}),
	}
	if _, err := RecoverShardedService(j, dws(2), ShardedConfig{}); err == nil {
		t.Fatal("conflicting tier configs recovered")
	}

	// A closed shard behind the frontier contradicts the protocol.
	j = [][]Record{
		shardedRecordSeq([]Record{cfg(0, 2), {Kind: KindClosePeriod}}),
		shardedRecordSeq([]Record{cfg(1, 2), {Kind: KindAdvanceSlot}}),
	}
	if _, err := RecoverShardedService(j, dws(2), ShardedConfig{}); err == nil {
		t.Fatal("closed-behind-frontier journals recovered")
	}
}

// TestShardedRecoverEmptyShardJournal: an empty journal is a creation
// crash — nothing on that shard was ever acknowledged — so recovery
// re-seeds it and the shard serves again.
func TestShardedRecoverEmptyShardJournal(t *testing.T) {
	const n = 2
	catalog := []sharedopt.Optimization{{ID: 1, Cost: econ.FromDollars(2)}}
	logs, ws := memWriters(n)
	ss, err := NewShardedService(sharedopt.Additive, catalog, 4, ws, ShardedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	u0 := userOnShard(0, n, 0)
	if err := ss.SubmitAdditiveBid(1, shardBid(u0)); err != nil {
		t.Fatal(err)
	}
	if _, err := ss.AdvanceSlot(); err != nil {
		t.Fatal(err)
	}

	recs0, _, _ := ReadJournal(logs[0].Bytes())
	fresh := &MemLog{}
	rec, err := RecoverShardedService([][]Record{recs0, nil}, []io.Writer{io.Discard, fresh}, ShardedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := snapshotTier(rec); got != snapshotTier(ss) {
		t.Fatal("recovery with one creation-crashed shard diverged")
	}
	// The re-seeded journal holds its config and was rolled forward to
	// the frontier.
	recs1, _, torn := ReadJournal(fresh.Bytes())
	if torn || len(recs1) == 0 || recs1[0].Kind != KindShardConfig || recs1[0].Shard != 1 {
		t.Fatalf("re-seeded journal malformed: torn=%v recs=%+v", torn, recs1)
	}
	if advs, _ := journalFrontier(t, fresh); advs != 1 {
		t.Fatalf("re-seeded journal holds %d adv markers, want 1", advs)
	}
	// And the shard accepts new bids.
	u1 := userOnShard(1, n, 0)
	bid := core.OnlineBid{User: u1, Start: 2, End: 2, Values: []econ.Money{econ.FromDollars(3)}}
	if err := rec.SubmitAdditiveBid(1, bid); err != nil {
		t.Fatalf("re-seeded shard rejected a bid: %v", err)
	}
}

// TestShardedRecoverPolicyDiverged: journals whose accepted histories
// cannot coexist under the global policy (the same user's curve split
// across two shards, revised downward) wedge the offending shard with
// ErrPolicyDiverged — at fold time, live or during recovery — instead
// of failing the tier.
func TestShardedRecoverPolicyDiverged(t *testing.T) {
	catalog := []sharedopt.Optimization{{ID: 1, Cost: econ.FromDollars(2)}}
	high := additiveBidRecord(1, core.OnlineBid{User: 3, Start: 1, End: 1, Values: []econ.Money{econ.FromDollars(9)}})
	low := additiveBidRecord(1, core.OnlineBid{User: 3, Start: 1, End: 1, Values: []econ.Money{econ.FromDollars(1)}})
	cfg := func(i int) Record { return shardConfigRecord(sharedopt.Additive, catalog, 4, i, 2) }

	// Divergence inside a settled window: detected during recovery.
	j := [][]Record{
		shardedRecordSeq([]Record{cfg(0), high, {Kind: KindAdvanceSlot}}),
		shardedRecordSeq([]Record{cfg(1), low, {Kind: KindAdvanceSlot}}),
	}
	rec, err := RecoverShardedService(j, []io.Writer{io.Discard, io.Discard}, ShardedConfig{})
	if err != nil {
		t.Fatalf("divergence must degrade, not fail recovery: %v", err)
	}
	if w := rec.WedgedShards(); len(w) != 1 || w[0] != 1 {
		t.Fatalf("WedgedShards() = %v, want [1]", w)
	}
	werr := rec.Wedged(1)
	if !errors.Is(werr, ErrPolicyDiverged) || !errors.Is(werr, ErrShardWedged) {
		t.Fatalf("Wedged(1) = %v, want ErrPolicyDiverged wrapped in ErrShardWedged", werr)
	}
	// The healthy shard's bid settled; the tier still advances.
	if _, ok := rec.Invoice(3); !ok {
		t.Fatal("healthy shard's accepted bid was not settled")
	}

	// Divergence in the open window: detected at the next live fold.
	j = [][]Record{
		shardedRecordSeq([]Record{cfg(0), high}),
		shardedRecordSeq([]Record{cfg(1), low}),
	}
	rec, err = RecoverShardedService(j, []io.Writer{io.Discard, io.Discard}, ShardedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if w := rec.WedgedShards(); len(w) != 0 {
		t.Fatalf("open-window divergence wedged %v before any fold", w)
	}
	if _, err := rec.AdvanceSlot(); err != nil {
		t.Fatalf("advance: %v", err)
	}
	if werr := rec.Wedged(1); !errors.Is(werr, ErrPolicyDiverged) {
		t.Fatalf("live fold did not catch the divergence: %v", werr)
	}

	// Determinism: recovering the settled-window case twice agrees, down
	// to which shard wedged.
	diverged := [][]Record{
		shardedRecordSeq([]Record{cfg(0), high, {Kind: KindAdvanceSlot}}),
		shardedRecordSeq([]Record{cfg(1), low, {Kind: KindAdvanceSlot}}),
	}
	r1, err := RecoverShardedService(diverged, []io.Writer{io.Discard, io.Discard}, ShardedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RecoverShardedService(diverged, []io.Writer{io.Discard, io.Discard}, ShardedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if snapshotTier(r1) != snapshotTier(r2) {
		t.Fatal("degraded recovery is nondeterministic")
	}
	w1, w2 := r1.WedgedShards(), r2.WedgedShards()
	if len(w1) != 1 || len(w2) != 1 || w1[0] != w2[0] {
		t.Fatalf("degraded recovery wedged different shards: %v vs %v", w1, w2)
	}
}

// TestShardedDuplicateAfterRecovery: the dedup fingerprints survive
// recovery per shard, so a blind resubmission of an already-settled bid
// stays a no-op and is not double-priced.
func TestShardedDuplicateAfterRecovery(t *testing.T) {
	const n = 4
	catalog := []sharedopt.Optimization{{ID: 1, Cost: econ.FromDollars(2)}}
	logs, ws := memWriters(n)
	ss, err := NewShardedService(sharedopt.Additive, catalog, 4, ws, ShardedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	u := userOnShard(2, n, 0)
	if err := ss.SubmitAdditiveBid(1, shardBid(u)); err != nil {
		t.Fatal(err)
	}
	if _, err := ss.AdvanceSlot(); err != nil {
		t.Fatal(err)
	}
	want := snapshotTier(ss)

	journals := make([][]Record, n)
	rws := make([]io.Writer, n)
	for i := range logs {
		recs, _, _ := ReadJournal(logs[i].Bytes())
		journals[i] = recs
		rws[i] = logs[i]
	}
	rec, err := RecoverShardedService(journals, rws, ShardedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.SubmitAdditiveBid(1, shardBid(u)); err != nil {
		t.Fatalf("duplicate after recovery rejected: %v", err)
	}
	st := rec.ShardStats()
	if st[2].Pending != 0 {
		t.Fatalf("duplicate after recovery was re-batched: %+v", st[2])
	}
	if got := snapshotTier(rec); got != want {
		t.Fatalf("recovered state diverged\n--- recovered ---\n%s--- live ---\n%s", got, want)
	}
	// Re-parse shard 2's journal: the duplicate must not have appended.
	recs2, _, _ := ReadJournal(logs[2].Bytes())
	bidRecords := 0
	for _, r := range recs2 {
		if r.Kind == KindAdditiveBid {
			bidRecords++
		}
	}
	if bidRecords != 1 {
		t.Fatalf("shard 2 journal holds %d bid records, want 1", bidRecords)
	}
}
