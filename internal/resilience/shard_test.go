package resilience

// The sharding property: a ShardedService must price exactly like the
// single-shard JournaledService — invoices, surplus, and implemented
// sets byte-identical at every settlement point, for any shard count —
// while degrading per shard, not per tier, under partial failure.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"testing"
	"time"

	"sharedopt"
	"sharedopt/internal/core"
	"sharedopt/internal/econ"
	"sharedopt/internal/stats"
)

// pricedState is the read surface shared by every tier flavor, for
// snapshot comparison.
type pricedState interface {
	Now() core.Slot
	Closed() bool
	Revenue() econ.Money
	CostIncurred() econ.Money
	Surplus() econ.Money
	ImplementedOpts() []core.OptID
	Invoices() map[core.UserID]econ.Money
}

var _ Backend = (*ShardedService)(nil)

// snapshotTier renders the complete priced state of any tier flavor.
func snapshotTier(s pricedState) string {
	var b strings.Builder
	fmt.Fprintf(&b, "now=%d closed=%v revenue=%v cost=%v surplus=%v\n",
		s.Now(), s.Closed(), s.Revenue(), s.CostIncurred(), s.Surplus())
	fmt.Fprintf(&b, "implemented=%v\n", s.ImplementedOpts())
	inv := s.Invoices()
	users := make([]core.UserID, 0, len(inv))
	for u := range inv {
		users = append(users, u)
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
	for _, u := range users {
		fmt.Fprintf(&b, "user %d paid %v\n", u, inv[u])
	}
	return b.String()
}

// One workload script op. The same script drives every tier flavor so
// their outcomes can be compared record for record.
const (
	sopSubmit = iota
	sopDup
	sopRevise
	sopInvalid
	sopAdvance
	sopClose
)

type tierOp struct {
	kind  int
	user  core.UserID
	opt   core.OptID
	set   []core.OptID
	start core.Slot
	end   core.Slot
	vals  []econ.Money
}

// buildTierOps draws a deterministic workload script: valid bids,
// exact-duplicate resubmissions (idempotent no-ops), upward revisions
// of still-future bids, invalid retroactive bids (rejected, never
// journaled), slot advances, and an occasional early close.
func buildTierOps(seed uint64, kind sharedopt.GameKind, catalog []sharedopt.Optimization, horizon core.Slot) []tierOp {
	r := stats.NewRNG(seed)
	var ops []tierOp
	var accepted []tierOp
	nextUser := core.UserID(1)
	for now := core.Slot(0); now < horizon; now++ {
		for i, k := 0, 1+r.Intn(3); i < k; i++ {
			start := now + 1 + core.Slot(r.Intn(int(horizon-now)))
			end := start + core.Slot(r.Intn(int(horizon-start)+1))
			op := tierOp{kind: sopSubmit, user: nextUser, start: start, end: end, vals: randomValues(r, start, end)}
			nextUser++
			if kind == sharedopt.Additive {
				op.opt = catalog[r.Intn(len(catalog))].ID
			} else {
				op.set = []core.OptID{catalog[r.Intn(len(catalog))].ID}
				for _, o := range catalog {
					if o.ID != op.set[0] && r.Intn(2) == 0 {
						op.set = append(op.set, o.ID)
					}
				}
			}
			ops = append(ops, op)
			accepted = append(accepted, op)
		}
		if len(accepted) > 0 && r.Intn(3) == 0 {
			d := accepted[r.Intn(len(accepted))]
			d.kind = sopDup
			ops = append(ops, d)
		}
		if r.Intn(3) == 0 {
			for _, c := range r.Perm(len(accepted)) {
				if cand := accepted[c]; cand.start > now {
					rev := cand
					rev.kind = sopRevise
					rev.vals = append([]econ.Money(nil), cand.vals...)
					for j := range rev.vals {
						rev.vals[j] += econ.FromCents(int64(1 + r.Intn(300)))
					}
					ops = append(ops, rev)
					accepted[c] = rev // later dups resubmit the latest curve
					break
				}
			}
		}
		if now > 0 && r.Intn(4) == 0 {
			ops = append(ops, tierOp{kind: sopInvalid, user: 9999,
				opt: catalog[0].ID, set: []core.OptID{catalog[0].ID},
				start: now, end: now, vals: []econ.Money{econ.Dollar}})
		}
		if now > 1 && r.Intn(10) == 0 {
			ops = append(ops, tierOp{kind: sopClose})
			return ops
		}
		ops = append(ops, tierOp{kind: sopAdvance})
	}
	return ops
}

// tierBackend is Backend plus the clock reads applyTierOps needs to
// skip already-settled work when re-driving a script after recovery.
type tierBackend interface {
	Backend
	Now() core.Slot
	Closed() bool
}

// applyTierOps drives a workload script against a tier. strict asserts
// each op's contractual outcome (the clean-run oracle); non-strict
// tolerates errors (crash schedules, post-recovery continuation) and
// skips advances the tier has already settled. onSettle, if non-nil,
// runs after each successful settlement (advance or close).
func applyTierOps(t *testing.T, ops []tierOp, b tierBackend, kind sharedopt.GameKind, strict bool, onSettle func()) {
	t.Helper()
	adv := core.Slot(0)
	submit := func(op tierOp) error {
		if kind == sharedopt.Additive {
			return b.SubmitAdditiveBid(op.opt, core.OnlineBid{
				User: op.user, Start: op.start, End: op.end, Values: op.vals})
		}
		return b.SubmitSubstitutiveBid(core.OnlineSubstBid{
			User: op.user, Opts: op.set, Start: op.start, End: op.end, Values: op.vals})
	}
	for _, op := range ops {
		switch op.kind {
		case sopSubmit, sopDup, sopRevise:
			if err := submit(op); err != nil && strict {
				t.Fatalf("valid submission rejected (op %+v): %v", op, err)
			}
		case sopInvalid:
			if err := submit(op); err == nil && strict {
				t.Fatal("retroactive bid accepted")
			}
		case sopAdvance:
			adv++
			if adv <= b.Now() {
				continue // settled before the crash; replay skips it
			}
			if _, err := b.AdvanceSlot(); err != nil {
				if strict {
					t.Fatalf("advance to slot %d: %v", adv, err)
				}
			} else if onSettle != nil {
				onSettle()
			}
		case sopClose:
			if b.Closed() {
				continue
			}
			if _, err := b.ClosePeriod(); err != nil {
				if strict {
					t.Fatalf("close: %v", err)
				}
			} else if onSettle != nil {
				onSettle()
			}
		}
	}
}

// memWriters returns n independent in-memory journal targets.
func memWriters(n int) ([]*MemLog, []io.Writer) {
	logs := make([]*MemLog, n)
	ws := make([]io.Writer, n)
	for i := range logs {
		logs[i] = &MemLog{}
		ws[i] = logs[i]
	}
	return logs, ws
}

// TestShardedMatchesSingleShard is the byte-identity property: the same
// workload script through 1, 2, 4, and 8 shards settles to exactly the
// single-shard reference state at every settlement point.
func TestShardedMatchesSingleShard(t *testing.T) {
	for _, kind := range []sharedopt.GameKind{sharedopt.Additive, sharedopt.Substitutive} {
		for seed := uint64(1); seed <= 8; seed++ {
			t.Run(fmt.Sprintf("kind=%v/seed=%d", kind, seed), func(t *testing.T) {
				r := stats.NewRNG(seed)
				catalog := randomCatalog(r, 3)
				horizon := core.Slot(4 + r.Intn(4))
				ops := buildTierOps(seed*977+uint64(kind), kind, catalog, horizon)

				ref, err := NewJournaledService(kind, catalog, horizon, io.Discard)
				if err != nil {
					t.Fatal(err)
				}
				var refSnaps []string
				applyTierOps(t, ops, ref, kind, true, func() {
					refSnaps = append(refSnaps, snapshotTier(ref))
				})

				bidOps := 0
				for _, op := range ops {
					if op.kind == sopSubmit || op.kind == sopRevise {
						bidOps++
					}
				}

				for _, n := range []int{1, 2, 4, 8} {
					_, ws := memWriters(n)
					ss, err := NewShardedService(kind, catalog, horizon, ws, ShardedConfig{})
					if err != nil {
						t.Fatal(err)
					}
					var snaps []string
					applyTierOps(t, ops, ss, kind, true, func() {
						snaps = append(snaps, snapshotTier(ss))
					})
					if len(snaps) != len(refSnaps) {
						t.Fatalf("n=%d: %d settlements, reference had %d", n, len(snaps), len(refSnaps))
					}
					for k := range snaps {
						if snaps[k] != refSnaps[k] {
							t.Fatalf("n=%d: settlement %d diverged from single-shard\n--- sharded ---\n%s--- reference ---\n%s",
								n, k, snaps[k], refSnaps[k])
						}
					}
					var acc, settled uint64
					for _, c := range ss.ShardStats() {
						acc += c.Accepted
						settled += c.Settled
					}
					if acc != uint64(bidOps) {
						t.Fatalf("n=%d: shards accepted %d bids, script had %d", n, acc, bidOps)
					}
					if settled != acc {
						t.Fatalf("n=%d: settled %d of %d accepted bids", n, settled, acc)
					}
				}
			})
		}
	}
}

// TestShardForPinned pins the router: it is part of the durable
// contract (recovery regroups users by re-deriving it), so its values
// may never change for journals in the wild.
func TestShardForPinned(t *testing.T) {
	want := map[int][]int{
		// shards -> ShardFor(user, shards) for users 1..8
		2: {1, 0, 1, 0, 0, 0, 1, 0},
		4: {1, 2, 1, 2, 2, 0, 3, 2},
		8: {1, 6, 5, 2, 2, 0, 7, 6},
	}
	for shards, row := range want {
		for u, exp := range row {
			if got := ShardFor(core.UserID(u+1), shards); got != exp {
				t.Errorf("ShardFor(%d, %d) = %d, want %d", u+1, shards, got, exp)
			}
		}
	}
	// And the spread: 1000 consecutive users across 8 shards must not
	// collapse onto a few shards.
	counts := make([]int, 8)
	for u := core.UserID(1); u <= 1000; u++ {
		counts[ShardFor(u, 8)]++
	}
	for i, c := range counts {
		if c < 60 || c > 190 {
			t.Errorf("shard %d holds %d of 1000 users: router is skewed %v", i, c, counts)
		}
	}
}

// userOnShard returns the first user after `after` routing to shard
// `want` of `shards`.
func userOnShard(want, shards int, after core.UserID) core.UserID {
	for u := after + 1; ; u++ {
		if ShardFor(u, shards) == want {
			return u
		}
	}
}

// shardBid builds a minimal valid bid for user u at slot 1.
func shardBid(u core.UserID) core.OnlineBid {
	return core.OnlineBid{User: u, Start: 1, End: 1, Values: []econ.Money{econ.FromDollars(5)}}
}

// TestShardedWedgeDegradation verifies partial failure: a journal fault
// on one shard wedges only that shard — its users get ErrShardWedged
// with exact ReadOnly counters, its durable pre-wedge bids still
// settle, and the other shards' users are untouched.
func TestShardedWedgeDegradation(t *testing.T) {
	const n = 4
	catalog := []sharedopt.Optimization{{ID: 1, Cost: econ.FromDollars(2)}}
	logs, _ := memWriters(n)
	ws := make([]io.Writer, n)
	for i := range ws {
		ws[i] = logs[i]
	}
	// Shard 0's journal fails on its record 2: config=0, first bid=1,
	// second bid=2.
	ws[0] = NewFaultWriter(logs[0], FaultPlan{Kind: FaultErr, Record: 2})
	ss, err := NewShardedService(sharedopt.Additive, catalog, 4, ws, ShardedConfig{})
	if err != nil {
		t.Fatal(err)
	}

	u0a := userOnShard(0, n, 0)
	u0b := userOnShard(0, n, u0a)
	u0c := userOnShard(0, n, u0b)
	u1 := userOnShard(1, n, 0)

	if err := ss.SubmitAdditiveBid(1, shardBid(u0a)); err != nil {
		t.Fatalf("pre-fault bid rejected: %v", err)
	}
	err = ss.SubmitAdditiveBid(1, shardBid(u0b))
	if !errors.Is(err, ErrShardWedged) {
		t.Fatalf("faulted submission returned %v, want ErrShardWedged", err)
	}
	if err := ss.Wedged(0); !errors.Is(err, ErrShardWedged) {
		t.Fatalf("Wedged(0) = %v", err)
	}
	if err := ss.SubmitAdditiveBid(1, shardBid(u0c)); !errors.Is(err, ErrShardWedged) {
		t.Fatalf("post-wedge submission returned %v, want ErrShardWedged", err)
	}
	if got := ss.WedgedShards(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("WedgedShards() = %v, want [0]", got)
	}
	// Other shards keep accepting.
	if err := ss.SubmitAdditiveBid(1, shardBid(u1)); err != nil {
		t.Fatalf("healthy shard rejected a bid: %v", err)
	}
	// Settlement proceeds without the wedged shard's marker, but folds
	// its durable pre-wedge bid.
	if _, err := ss.AdvanceSlot(); err != nil {
		t.Fatalf("advance with one wedged shard: %v", err)
	}
	if _, ok := ss.Invoice(u0a); !ok {
		t.Fatal("durable pre-wedge bid was not settled")
	}
	if _, ok := ss.Invoice(u1); !ok {
		t.Fatal("healthy shard's bid was not settled")
	}
	st := ss.ShardStats()
	if st[0].Accepted != 1 || st[0].ReadOnly != 2 || st[0].Settled != 1 {
		t.Fatalf("shard 0 counters = %+v, want Accepted=1 ReadOnly=2 Settled=1", st[0])
	}
	if st[1].Accepted != 1 || st[1].ReadOnly != 0 {
		t.Fatalf("shard 1 counters = %+v, want Accepted=1 ReadOnly=0", st[1])
	}
	// The wedged shard's journal never saw the adv marker; the healthy
	// ones did.
	recs0, _, _ := ReadJournal(logs[0].Bytes())
	for _, rec := range recs0 {
		if rec.Kind == KindAdvanceSlot {
			t.Fatal("wedged shard journaled an adv marker")
		}
	}
	recs1, _, _ := ReadJournal(logs[1].Bytes())
	advs := 0
	for _, rec := range recs1 {
		if rec.Kind == KindAdvanceSlot {
			advs++
		}
	}
	if advs != 1 {
		t.Fatalf("healthy shard journaled %d adv markers, want 1", advs)
	}
}

// TestShardedAllWedgedRefusal: when every shard is wedged nothing can
// be made durable, so settlement refuses with the tier-dead error and
// restores the drained batches.
func TestShardedAllWedgedRefusal(t *testing.T) {
	const n = 2
	catalog := []sharedopt.Optimization{{ID: 1, Cost: econ.FromDollars(2)}}
	logs, _ := memWriters(n)
	ws := make([]io.Writer, n)
	for i := range ws {
		// Both journals fail on their second record (the first bid).
		ws[i] = NewFaultWriter(logs[i], FaultPlan{Kind: FaultErr, Record: 1})
	}
	ss, err := NewShardedService(sharedopt.Additive, catalog, 4, ws, ShardedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		u := userOnShard(i, n, 0)
		if err := ss.SubmitAdditiveBid(1, shardBid(u)); !errors.Is(err, ErrShardWedged) {
			t.Fatalf("shard %d fault returned %v, want ErrShardWedged", i, err)
		}
	}
	_, err = ss.AdvanceSlot()
	if !errors.Is(err, ErrJournalBroken) || !errors.Is(err, ErrShardWedged) {
		t.Fatalf("all-wedged advance returned %v, want ErrJournalBroken wrapping ErrShardWedged", err)
	}
	if _, err := ss.ClosePeriod(); !errors.Is(err, ErrJournalBroken) {
		t.Fatalf("all-wedged close returned %v, want ErrJournalBroken", err)
	}
	if ss.Now() != 0 {
		t.Fatalf("tier advanced to %d with no durable marker", ss.Now())
	}
}

// TestShardedOverloaded: a full between-slots batch admission-fails
// with the retryable ErrOverloaded and drains at the next settlement.
func TestShardedOverloaded(t *testing.T) {
	const n = 2
	catalog := []sharedopt.Optimization{{ID: 1, Cost: econ.FromDollars(2)}}
	_, ws := memWriters(n)
	ss, err := NewShardedService(sharedopt.Additive, catalog, 4, ws, ShardedConfig{MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	u1 := userOnShard(0, n, 0)
	u2 := userOnShard(0, n, u1)
	if err := ss.SubmitAdditiveBid(1, shardBid(u1)); err != nil {
		t.Fatal(err)
	}
	err = ss.SubmitAdditiveBid(1, shardBid(u2))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-batch submission returned %v, want ErrOverloaded", err)
	}
	if !Retryable(err) {
		t.Fatal("ErrOverloaded from a full shard batch is not Retryable")
	}
	// Duplicates of an already-batched bid bypass the admission check's
	// outcome: they are no-ops, not new load... but with the batch full
	// they are still turned away before the dedup lookup, which is the
	// documented fast-fail. Drain and retry instead.
	if _, err := ss.AdvanceSlot(); err != nil {
		t.Fatal(err)
	}
	retry := core.OnlineBid{User: u2, Start: 2, End: 2, Values: []econ.Money{econ.FromDollars(5)}}
	if err := ss.SubmitAdditiveBid(1, retry); err != nil {
		t.Fatalf("post-drain retry rejected: %v", err)
	}
	st := ss.ShardStats()
	if st[0].Overloaded != 1 || st[0].Accepted != 2 {
		t.Fatalf("shard 0 counters = %+v, want Overloaded=1 Accepted=2", st[0])
	}
}

// TestShardedDuplicateNotDoubleSettled: an idempotent duplicate must
// not be folded into settlement twice.
func TestShardedDuplicateNotDoubleSettled(t *testing.T) {
	catalog := []sharedopt.Optimization{{ID: 1, Cost: econ.FromDollars(2)}}
	_, ws := memWriters(2)
	ss, err := NewShardedService(sharedopt.Additive, catalog, 4, ws, ShardedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewJournaledService(sharedopt.Additive, catalog, 4, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	u := userOnShard(1, 2, 0)
	bid := shardBid(u)
	for i := 0; i < 3; i++ { // once fresh, twice duplicate
		if err := ss.SubmitAdditiveBid(1, bid); err != nil {
			t.Fatal(err)
		}
		if err := ref.SubmitAdditiveBid(1, bid); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ss.AdvanceSlot(); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.AdvanceSlot(); err != nil {
		t.Fatal(err)
	}
	if got, want := snapshotTier(ss), snapshotTier(ref); got != want {
		t.Fatalf("duplicate handling diverged\n--- sharded ---\n%s--- reference ---\n%s", got, want)
	}
	st := ss.ShardStats()
	if st[1].Accepted != 1 || st[1].Settled != 1 {
		t.Fatalf("shard 1 counters = %+v, want Accepted=1 Settled=1", st[1])
	}
}

// TestShardedIngestFrontEnd: the sharded tier satisfies Backend, so the
// admission-controlled Ingest front end drives it unchanged.
func TestShardedIngestFrontEnd(t *testing.T) {
	catalog := []sharedopt.Optimization{{ID: 1, Cost: econ.FromDollars(2)}}
	_, ws := memWriters(2)
	ss, err := NewShardedService(sharedopt.Additive, catalog, 3, ws, ShardedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	in := NewIngest(ss, IngestConfig{Queue: 8})
	defer in.Close()
	for u := core.UserID(1); u <= 6; u++ {
		if err := in.SubmitAdditive(1, shardBid(u)); err != nil {
			t.Fatalf("ingest submit user %d: %v", u, err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := in.AdvanceSlot(ctx); err != nil {
		t.Fatal(err)
	}
	if got := in.Stats().Accepted; got != 6 {
		t.Fatalf("front end accepted %d, want 6", got)
	}
	if inv := ss.Invoices(); len(inv) != 6 {
		t.Fatalf("settled %d invoices, want 6", len(inv))
	}
}
