package resilience

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"sharedopt"
)

// JournaledPeriodManager runs successive journaled pricing periods over
// one append-only log: a manager-config record, then per period one
// start record (carrying the recomputed costs) followed by that period's
// bid/advance/close records. Recovery replays the whole sequence through
// a fresh PeriodManager, so harvested totals and the implemented set are
// reproduced exactly along with every period's invoices.
type JournaledPeriodManager struct {
	mu  sync.Mutex
	pm  *sharedopt.PeriodManager
	j   *Journal
	cur *JournaledService
}

// NewJournaledPeriodManager opens a fresh journaled period sequence on
// w, writing the manager-config record (kind, horizon, base catalog)
// before returning. policy recomputes costs each period exactly as in
// sharedopt.NewPeriodManager; it must be deterministic — recovery
// re-runs it and verifies the recomputed costs against the journaled
// ones.
func NewJournaledPeriodManager(kind sharedopt.GameKind, catalog []sharedopt.Optimization, horizon sharedopt.Slot, policy sharedopt.CostPolicy, w io.Writer) (*JournaledPeriodManager, error) {
	pm, err := sharedopt.NewPeriodManager(kind, catalog, horizon, policy)
	if err != nil {
		return nil, err
	}
	j := NewJournal(w)
	if err := j.Append(Record{
		Kind:    KindManagerConfig,
		Game:    gameName(kind),
		Horizon: horizon,
		Opts:    optCosts(catalog),
	}); err != nil {
		return nil, err
	}
	return &JournaledPeriodManager{pm: pm, j: j}, nil
}

// StartPeriod journals and opens the next pricing period, returning its
// journaled service. All of the period's mutations must go through that
// service so they land in the manager's log.
func (m *JournaledPeriodManager) StartPeriod() (*JournaledService, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.j.Err(); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrJournalBroken, err)
	}
	svc, err := m.pm.StartPeriod()
	if err != nil {
		return nil, err
	}
	if err := m.j.Append(Record{
		Kind:   KindStartPeriod,
		Period: m.pm.Period(),
		Opts:   optCosts(svc.Optimizations()),
	}); err != nil {
		return nil, err
	}
	m.cur = newJournaledOn(svc, m.j)
	return m.cur, nil
}

// Current returns the journaled service of the open (or last-started)
// period, nil before the first StartPeriod.
func (m *JournaledPeriodManager) Current() *JournaledService {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cur
}

// Period returns the 1-based index of the current (or last) period.
func (m *JournaledPeriodManager) Period() int { return m.pm.Period() }

// Totals returns revenue and cost accumulated over finished periods.
func (m *JournaledPeriodManager) Totals() (revenue, cost sharedopt.Money) { return m.pm.Totals() }

// Implemented returns the optimizations harvested as implemented from
// finished periods, in ascending ID order.
func (m *JournaledPeriodManager) Implemented() []sharedopt.OptID { return m.pm.Implemented() }

// Broken returns the journal failure wedging this manager, or nil.
func (m *JournaledPeriodManager) Broken() error { return m.j.Err() }

// ErrPolicyDiverged is returned by RecoverPeriodManager when replaying
// the cost policy yields different period costs than the journal
// recorded — the policy is not deterministic (or not the one the journal
// was written under), so the replayed economics would silently diverge
// from what users were actually charged.
var ErrPolicyDiverged = errors.New("resilience: cost policy diverged from journaled period costs")

// RecoverPeriodManager rebuilds a journaled period manager by replaying
// recs (the valid prefix from ReadJournal or OpenFileLog) with the given
// policy, resuming appends on w. Every start record's journaled costs
// are checked against the policy's recomputation; any mismatch fails
// with ErrPolicyDiverged. The recovered manager's totals, implemented
// set, and the open period's full service state are byte-identical to
// the pre-crash manager's.
func RecoverPeriodManager(recs []Record, policy sharedopt.CostPolicy, w io.Writer) (*JournaledPeriodManager, error) {
	if len(recs) == 0 {
		return nil, ErrEmptyJournal
	}
	cfg := recs[0]
	if cfg.Kind != KindManagerConfig {
		return nil, fmt.Errorf("resilience: journal opens with %s record, want %s", cfg.Kind, KindManagerConfig)
	}
	kind, err := gameKind(cfg.Game)
	if err != nil {
		return nil, err
	}
	pm, err := sharedopt.NewPeriodManager(kind, catalogOf(cfg.Opts), cfg.Horizon, policy)
	if err != nil {
		return nil, fmt.Errorf("resilience: corrupt journal: config rejected: %w", err)
	}
	m := &JournaledPeriodManager{pm: pm, j: NewJournalAt(w, recs[len(recs)-1].Seq)}
	for _, rec := range recs[1:] {
		if rec.Kind == KindStartPeriod {
			svc, err := pm.StartPeriod()
			if err != nil {
				return nil, errCorrupt(rec, err)
			}
			if err := verifyPeriodCosts(rec, svc.Optimizations()); err != nil {
				return nil, err
			}
			m.cur = newJournaledOn(svc, m.j)
			continue
		}
		if m.cur == nil {
			return nil, fmt.Errorf("resilience: corrupt journal: %s record %d before any start record", rec.Kind, rec.Seq)
		}
		if err := m.cur.applyRecord(rec); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// verifyPeriodCosts checks a start record's journaled costs against the
// catalog the replayed policy produced.
func verifyPeriodCosts(rec Record, got []sharedopt.Optimization) error {
	if len(got) != len(rec.Opts) {
		return fmt.Errorf("%w: period %d has %d optimizations, journal recorded %d",
			ErrPolicyDiverged, rec.Period, len(got), len(rec.Opts))
	}
	for i, o := range got {
		want := rec.Opts[i]
		if o.ID != want.ID || o.Cost != want.Cost {
			return fmt.Errorf("%w: period %d optimization %d repriced to %v, journal recorded %d at %v",
				ErrPolicyDiverged, rec.Period, o.ID, o.Cost, want.ID, want.Cost)
		}
	}
	return nil
}
