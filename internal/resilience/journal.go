package resilience

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"sharedopt/internal/core"
	"sharedopt/internal/econ"
)

// RecordKind names one journal record type.
type RecordKind string

// The journal record kinds. A standalone service journal is one
// KindServiceConfig followed by mutations; a period-manager journal is
// one KindManagerConfig followed by KindStartPeriod groups, each holding
// that period's mutations.
const (
	KindServiceConfig RecordKind = "svc"
	KindManagerConfig RecordKind = "mgr"
	KindShardConfig   RecordKind = "shard"
	KindStartPeriod   RecordKind = "start"
	KindAdditiveBid   RecordKind = "abid"
	KindSubstBid      RecordKind = "sbid"
	KindAdvanceSlot   RecordKind = "adv"
	KindClosePeriod   RecordKind = "close"
)

// OptCost is an (optimization, cost) pair as journaled in config and
// start-period records. Costs are exact integer micro-dollars.
type OptCost struct {
	ID   core.OptID `json:"id"`
	Cost econ.Money `json:"cost"`
}

// Record is one journal entry. Seq is assigned by the journal (strictly
// increasing from 1); the remaining fields are populated per Kind:
//
//   - svc/mgr: Game ("additive"/"substitutive"), Horizon, Opts (catalog)
//   - shard:   Game, Horizon, Opts, plus Shard (this journal's index)
//     and Shards (the tier's shard count)
//   - start:   Period (1-based), Opts (this period's recomputed costs)
//   - abid:    User, Opt, Start, End, Values
//   - sbid:    User, Set (substitute set), Start, End, Values
//   - adv/close: no payload — their effects are deterministic replays
type Record struct {
	Seq     uint64       `json:"seq"`
	Kind    RecordKind   `json:"kind"`
	Game    string       `json:"game,omitempty"`
	Horizon core.Slot    `json:"horizon,omitempty"`
	Opts    []OptCost    `json:"opts,omitempty"`
	Shard   int          `json:"shard,omitempty"`
	Shards  int          `json:"shards,omitempty"`
	Period  int          `json:"period,omitempty"`
	User    core.UserID  `json:"user,omitempty"`
	Opt     core.OptID   `json:"opt,omitempty"`
	Set     []core.OptID `json:"set,omitempty"`
	Start   core.Slot    `json:"start,omitempty"`
	End     core.Slot    `json:"end,omitempty"`
	Values  []econ.Money `json:"values,omitempty"`
}

// fingerprint is the record's canonical payload with the sequence number
// zeroed — the identity under which duplicate submissions are detected.
func (r Record) fingerprint() string {
	r.Seq = 0
	payload, err := json.Marshal(r)
	if err != nil {
		// Record has no unmarshalable fields; this cannot happen.
		panic(err)
	}
	return string(payload)
}

// encodeRecord frames one record as a journal line:
//
//	<crc32-ieee-hex8> <payload-json>\n
//
// The checksum covers exactly the payload bytes, so any torn, bit-rotted
// or short-written tail fails verification and is discarded on replay.
func encodeRecord(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("resilience: encoding record %d: %w", rec.Seq, err)
	}
	if bytes.IndexByte(payload, '\n') >= 0 {
		return nil, fmt.Errorf("resilience: record %d payload contains newline", rec.Seq)
	}
	out := make([]byte, 0, len(payload)+10)
	out = fmt.Appendf(out, "%08x ", crc32.ChecksumIEEE(payload))
	out = append(out, payload...)
	out = append(out, '\n')
	return out, nil
}

// decodeLine parses one framed journal line (without the trailing
// newline), verifying the checksum.
func decodeLine(line []byte) (Record, error) {
	var rec Record
	if len(line) < 10 || line[8] != ' ' {
		return rec, errors.New("resilience: malformed record frame")
	}
	var sum uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &sum); err != nil {
		return rec, fmt.Errorf("resilience: malformed checksum: %w", err)
	}
	payload := line[9:]
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return rec, fmt.Errorf("resilience: checksum mismatch (record %08x, computed %08x)", sum, got)
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, fmt.Errorf("resilience: decoding record: %w", err)
	}
	return rec, nil
}

// ReadJournal parses a journal image into its longest valid record
// prefix. A record is valid if it is newline-terminated, its checksum
// matches, and its sequence number continues the chain 1, 2, 3, … —
// anything else ends the scan there. consumed is the byte offset of the
// end of the last valid record (the truncation point for a log that will
// be appended to again), and torn reports whether trailing bytes were
// discarded. ReadJournal never fails on a damaged tail; that is the
// crash contract, not an error.
func ReadJournal(data []byte) (recs []Record, consumed int, torn bool) {
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // unterminated tail: a write died mid-record
		}
		rec, err := decodeLine(data[off : off+nl])
		if err != nil || rec.Seq != uint64(len(recs))+1 {
			break
		}
		recs = append(recs, rec)
		off += nl + 1
	}
	return recs, off, off < len(data)
}

// ErrJournalBroken wraps the first append failure of a journal: once a
// write fails the in-memory state may be ahead of the durable log, so
// the journal refuses all further appends and the owning service must be
// discarded and rebuilt with Recover*.
var ErrJournalBroken = errors.New("resilience: journal broken by an earlier write failure")

// Journal appends checksummed records to an io.Writer (fail-stop: the
// first write error wedges it permanently). It is safe for concurrent
// use. The writer can be anything — *MemLog and *FileLog are the two
// provided implementations — but each record is issued as exactly one
// Write call, so a crash can tear at most the final record.
type Journal struct {
	mu  sync.Mutex
	w   io.Writer
	seq uint64
	err error
}

// NewJournal returns a journal appending to w starting at sequence 1.
func NewJournal(w io.Writer) *Journal { return &Journal{w: w} }

// NewJournalAt returns a journal appending to w whose next record gets
// sequence seq+1 — the continuation constructor recovery uses after
// replaying seq records.
func NewJournalAt(w io.Writer, seq uint64) *Journal { return &Journal{w: w, seq: seq} }

// Append assigns the next sequence number to rec and writes it durably.
// A short write (n < len with a nil error, from a buggy or faulty
// writer) is promoted to io.ErrShortWrite. Any failure wedges the
// journal: the record may be partially on disk, so nothing further may
// be appended after it.
func (j *Journal) Append(rec Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return fmt.Errorf("%w: %w", ErrJournalBroken, j.err)
	}
	rec.Seq = j.seq + 1
	frame, err := encodeRecord(rec)
	if err != nil {
		return err // encoding failed before any bytes were written: not wedged
	}
	n, err := j.w.Write(frame)
	if err == nil && n < len(frame) {
		err = io.ErrShortWrite
	}
	if err != nil {
		j.err = err
		return fmt.Errorf("resilience: journal append: %w", err)
	}
	j.seq = rec.Seq
	return nil
}

// Seq returns the sequence number of the last appended record.
func (j *Journal) Seq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Err returns the write failure that wedged the journal, or nil.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// MemLog is the in-memory journal target: an append-only byte buffer
// safe for concurrent use, with snapshot and truncate hooks for crash
// simulation.
type MemLog struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

// Write appends p to the log.
func (m *MemLog) Write(p []byte) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.buf.Write(p)
}

// Bytes returns a copy of the log contents.
func (m *MemLog) Bytes() []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]byte(nil), m.buf.Bytes()...)
}

// Len returns the current log length in bytes.
func (m *MemLog) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.buf.Len()
}

// Truncate discards all but the first n bytes — the recovery step that
// drops a torn tail before appending resumes.
func (m *MemLog) Truncate(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.buf.Truncate(n)
}

// FileLog is the file-backed journal target. Every Write is followed by
// an fsync, so an acknowledged record survives a process kill; the
// checksummed framing handles the torn writes a mid-record kill leaves
// behind.
type FileLog struct {
	mu sync.Mutex
	f  *os.File
}

// OpenFileLog opens (creating if absent) the journal at path, parses its
// longest valid record prefix, truncates any torn tail, and returns the
// log positioned for appends together with the recovered records and
// whether a tail was discarded.
func OpenFileLog(path string) (*FileLog, []Record, bool, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, false, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, false, err
	}
	recs, consumed, torn := ReadJournal(data)
	if torn {
		if err := f.Truncate(int64(consumed)); err != nil {
			f.Close()
			return nil, nil, false, err
		}
	}
	if _, err := f.Seek(int64(consumed), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, false, err
	}
	return &FileLog{f: f}, recs, torn, nil
}

// Write appends p and syncs it to stable storage.
func (l *FileLog) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	n, err := l.f.Write(p)
	if err != nil {
		return n, err
	}
	return n, l.f.Sync()
}

// Close closes the underlying file.
func (l *FileLog) Close() error { return l.f.Close() }
