package hypothesis

import (
	"strings"
	"testing"
)

func sampleReport() Report {
	return Report{
		{Index: 1, ID: "T1", Family: "truthfulness", Claim: "no lie pays", Trials: 100,
			Pass: true, Margin: 0.25, Detail: "worst margin",
			Metrics: []Metric{{Name: "min_margin_usd", Value: 0.25}, {Name: "gaming_trials", Value: 0}}},
		{Index: 2, ID: "C2", Family: "cost-recovery", Claim: "claim, with a comma", Trials: 100,
			Pass: false, Margin: -0.5, Detail: `detail with "quotes" and, commas`,
			Metrics: []Metric{{Name: "addon_min_balance_usd", Value: -0.5}}},
		{Index: 3, ID: "B3", Family: "arrivals", Claim: "no deficit", Trials: 100,
			Pass: true, Margin: 0, Detail: ""},
	}
}

func TestHypothesisReportCSVShape(t *testing.T) {
	csv := sampleReport().CSV()
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines, want header + 3 rows:\n%s", len(lines), csv)
	}
	if lines[0] != csvHeader {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "T1,truthfulness,100,PASS,0.25,") {
		t.Fatalf("row 1: %q", lines[1])
	}
	if !strings.Contains(lines[1], "min_margin_usd=0.25;gaming_trials=0") {
		t.Fatalf("row 1 metrics: %q", lines[1])
	}
	if !strings.Contains(lines[2], `"detail with ""quotes"" and, commas"`) {
		t.Fatalf("row 2 escaping: %q", lines[2])
	}
	if !strings.Contains(lines[2], "FAIL") {
		t.Fatalf("row 2 verdict: %q", lines[2])
	}
}

func TestHypothesisSHA256LinesContract(t *testing.T) {
	rep := sampleReport()
	lines := strings.Split(strings.TrimRight(rep.SHA256Lines(), "\n"), "\n")
	if len(lines) != len(rep) {
		t.Fatalf("%d lines for %d rows", len(lines), len(rep))
	}
	for i, line := range lines {
		parts := strings.SplitN(line, "  ", 2)
		if len(parts) != 2 || len(parts[0]) != 64 || parts[1] != rep[i].ID {
			t.Fatalf("line %d not \"<sha256>  <id>\": %q", i, line)
		}
	}
	// A single-metric perturbation must change exactly that row's hash.
	perturbed := sampleReport()
	perturbed[0].Metrics[0].Value = 0.26
	plines := strings.Split(strings.TrimRight(perturbed.SHA256Lines(), "\n"), "\n")
	if plines[0] == lines[0] {
		t.Fatal("perturbed row 1 hash unchanged")
	}
	for i := 1; i < len(lines); i++ {
		if plines[i] != lines[i] {
			t.Fatalf("row %d hash changed by a row-1 perturbation", i)
		}
	}
}

func TestHypothesisReportEncodeParseRoundTrip(t *testing.T) {
	rep := sampleReport()
	framed, err := EncodeReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	rows, consumed, torn := ParseReport(framed)
	if torn || consumed != len(framed) {
		t.Fatalf("clean report parsed torn=%v consumed=%d/%d", torn, consumed, len(framed))
	}
	if len(rows) != len(rep) {
		t.Fatalf("%d rows, want %d", len(rows), len(rep))
	}
	for i := range rep {
		got, want := rows[i], rep[i]
		if got.Index != want.Index || got.ID != want.ID || got.Pass != want.Pass ||
			got.Margin != want.Margin || got.Detail != want.Detail || got.Claim != want.Claim {
			t.Fatalf("row %d: %+v vs %+v", i, got, want)
		}
		if len(got.Metrics) != len(want.Metrics) {
			t.Fatalf("row %d metrics: %d vs %d", i, len(got.Metrics), len(want.Metrics))
		}
	}
}

func TestHypothesisParseReportTornAndDamage(t *testing.T) {
	framed, err := EncodeReport(sampleReport())
	if err != nil {
		t.Fatal(err)
	}
	// Torn mid-row: parse stops at the last whole row.
	rows, consumed, torn := ParseReport(framed[:len(framed)-3])
	if !torn || len(rows) != 2 {
		t.Fatalf("torn tail: %d rows, torn=%v", len(rows), torn)
	}
	if again, c2, t2 := ParseReport(framed[:consumed]); t2 || c2 != consumed || len(again) != 2 {
		t.Fatalf("consumed prefix does not re-parse cleanly")
	}
	// CRC damage: nothing past the flip.
	flipped := append([]byte(nil), framed...)
	flipped[len(flipped)/2] ^= 0x01
	rows, _, torn = ParseReport(flipped)
	if !torn || len(rows) >= 3 {
		t.Fatalf("crc flip: %d rows, torn=%v", len(rows), torn)
	}
	// Sequence break: a valid frame with the wrong index stops the parse.
	outOfOrder := sampleReport()
	outOfOrder[1].Index = 5
	framed2, err := EncodeReport(outOfOrder)
	if err != nil {
		t.Fatal(err)
	}
	rows, _, torn = ParseReport(framed2)
	if !torn || len(rows) != 1 {
		t.Fatalf("sequence break: %d rows, torn=%v", len(rows), torn)
	}
	// Garbage never panics and yields nothing.
	if rows, _, _ := ParseReport([]byte("not a report\n")); len(rows) != 0 {
		t.Fatalf("garbage yielded %d rows", len(rows))
	}
}
