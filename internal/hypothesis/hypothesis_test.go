package hypothesis

import (
	"bytes"
	"strings"
	"testing"
)

// The registry must hold the promised claim families, in a stable order.
func TestHypothesisRegistryShape(t *testing.T) {
	all := All()
	if len(all) < 6 {
		t.Fatalf("%d hypotheses registered, want >= 6", len(all))
	}
	families := map[string]int{}
	for _, h := range all {
		families[h.Family]++
	}
	for _, fam := range []string{"truthfulness", "cost-recovery", "arrivals"} {
		if families[fam] < 2 {
			t.Errorf("family %q has %d hypotheses, want >= 2", fam, families[fam])
		}
	}
	ids := IDs()
	if len(ids) != len(all) {
		t.Fatalf("IDs() has %d entries for %d hypotheses", len(ids), len(all))
	}
	for i, h := range all {
		if ids[i] != h.ID {
			t.Fatalf("IDs()[%d] = %q, want %q", i, ids[i], h.ID)
		}
		got, err := Get(h.ID)
		if err != nil || got != h {
			t.Fatalf("Get(%q) = %v, %v", h.ID, got, err)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Error("Get accepted an unknown id")
	}
}

// Same ids, effort and seed must give byte-identical report bytes in
// every rendering — the contract HYPOTHESES.sha256 commits to.
func TestHypothesisReportDeterministic(t *testing.T) {
	runOnce := func() (string, string, []byte) {
		t.Helper()
		rep, err := RunAll(nil, 150, 7)
		if err != nil {
			t.Fatal(err)
		}
		framed, err := EncodeReport(rep)
		if err != nil {
			t.Fatal(err)
		}
		return rep.CSV(), rep.SHA256Lines(), framed
	}
	csv1, sha1, framed1 := runOnce()
	csv2, sha2, framed2 := runOnce()
	if csv1 != csv2 {
		t.Errorf("CSV bytes differ across identical runs:\n%s\nvs\n%s", csv1, csv2)
	}
	if sha1 != sha2 {
		t.Errorf("sha256 lines differ across identical runs:\n%s\nvs\n%s", sha1, sha2)
	}
	if !bytes.Equal(framed1, framed2) {
		t.Error("framed report bytes differ across identical runs")
	}
	// And a different seed must actually move some metric.
	other, err := RunAll(nil, 150, 8)
	if err != nil {
		t.Fatal(err)
	}
	if other.CSV() == csv1 {
		t.Error("different seed produced an identical report")
	}
}

// Every committed claim holds at the default effort and seed — the
// verdicts behind HYPOTHESES.sha256 are genuine PASSes.
func TestHypothesisVerdictsPassAtDefaults(t *testing.T) {
	rep, err := RunAll(nil, 1000, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep {
		if !r.Pass {
			t.Errorf("%s FAILS at defaults (margin %v): %s", r.ID, r.Margin, r.Detail)
		}
		if r.Margin < 0 {
			t.Errorf("%s passes with negative margin %v", r.ID, r.Margin)
		}
	}
}

func TestHypothesisRunAllSubsetAndIndexing(t *testing.T) {
	rep, err := RunAll([]string{"C1", "T1"}, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep) != 2 || rep[0].ID != "C1" || rep[1].ID != "T1" {
		t.Fatalf("subset report order: %+v", rep)
	}
	for i, r := range rep {
		if r.Index != i+1 {
			t.Errorf("row %d has index %d", i, r.Index)
		}
		if r.Trials != 50 {
			t.Errorf("row %d records %d trials, want 50", i, r.Trials)
		}
	}
	if _, err := RunAll([]string{"T1", "nope"}, 50, 3); err == nil {
		t.Error("unknown id accepted")
	}
	if _, err := RunAll(nil, 0, 3); err == nil {
		t.Error("zero effort accepted")
	}
}

func TestHypothesisTableListsEveryClaim(t *testing.T) {
	rep, err := RunAll(nil, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	table := rep.Table()
	for _, h := range All() {
		if !strings.Contains(table, h.ID) || !strings.Contains(table, h.Claim) {
			t.Errorf("table missing %s: %q", h.ID, h.Claim)
		}
	}
}

func TestHypothesisOutcomeContract(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	o := NewOutcome()
	o.Set("a", 1.5)
	o.Set("zero", -0.0)
	if got := o.Get("a"); got != 1.5 {
		t.Errorf("Get(a) = %v", got)
	}
	// -0 normalizes to +0 so reports never render a negative zero.
	if s := formatFloat(o.Get("zero")); s != "0" {
		t.Errorf("normalized zero renders as %q", s)
	}
	if names := o.Names(); len(names) != 2 || names[0] != "a" || names[1] != "zero" {
		t.Errorf("Names() = %v", names)
	}
	mustPanic("NaN", func() { o.Set("nan", nan()) })
	mustPanic("Inf", func() { o.Set("inf", 1/zero()) })
	mustPanic("dup", func() { o.Set("a", 2) })
	mustPanic("missing", func() { o.Get("missing") })
}

// Indirection so the compiler cannot reject the constant expressions.
func zero() float64 { return 0 }
func nan() float64  { return zero() / zero() }
