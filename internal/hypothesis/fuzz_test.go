package hypothesis

import (
	"testing"
)

// FuzzHypothesisReport hammers the framed-report parser with mutated
// report images, mirroring FuzzReadJournal's crash contract: never
// panic, never yield a row past the first damage or sequence break,
// always report a consumed prefix that re-parses identically and can be
// extended by appending a validly framed next row.
func FuzzHypothesisReport(f *testing.F) {
	valid, err := EncodeReport(sampleReport())
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte(nil))
	f.Add(valid)
	f.Add(valid[:len(valid)/2])                       // torn mid-row
	f.Add(append(append([]byte(nil), valid...), 'x')) // trailing garbage
	flipped := append([]byte(nil), valid...)
	flipped[12] ^= 0x40 // payload corruption under an intact frame
	f.Add(flipped)
	f.Add([]byte("00000000 {}\n"))
	f.Add([]byte("deadbeef {\"index\":1,\"id\":\"T1\"}\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		rows, consumed, torn := ParseReport(data)
		if consumed < 0 || consumed > len(data) {
			t.Fatalf("consumed %d of %d bytes", consumed, len(data))
		}
		if torn != (consumed < len(data)) {
			t.Fatalf("torn=%v but consumed %d of %d bytes", torn, consumed, len(data))
		}
		for i, row := range rows {
			if row.Index != i+1 {
				t.Fatalf("row %d carries index %d: yielded past a sequence break", i, row.Index)
			}
		}
		// The consumed prefix is exactly the valid rows: re-parsing it
		// must be clean and identical.
		again, consumed2, torn2 := ParseReport(data[:consumed])
		if torn2 || consumed2 != consumed || len(again) != len(rows) {
			t.Fatalf("consumed prefix does not re-parse cleanly: torn=%v consumed=%d/%d rows=%d/%d",
				torn2, consumed2, consumed, len(again), len(rows))
		}
		for i := range rows {
			a, b := again[i], rows[i]
			if a.Index != b.Index || a.ID != b.ID || a.Pass != b.Pass ||
				a.Margin != b.Margin || a.Detail != b.Detail {
				t.Fatalf("row %d differs on re-parse", i)
			}
		}
		// The truncation point is appendable: framing a fresh row at the
		// next index extends the parse by exactly one.
		next := Result{Index: len(rows) + 1, ID: "X1", Family: "fuzz",
			Claim: "continuation", Trials: 1, Pass: true, Margin: 0.5}
		frame, err := EncodeRow(next)
		if err != nil {
			t.Fatalf("encoding continuation row: %v", err)
		}
		extended := append(append([]byte(nil), data[:consumed]...), frame...)
		extrows, _, extTorn := ParseReport(extended)
		if extTorn {
			t.Fatal("appending a valid continuation row left the report torn")
		}
		if len(extrows) != len(rows)+1 {
			t.Fatalf("continuation parse yielded %d rows, want %d", len(extrows), len(rows)+1)
		}
	})
}
