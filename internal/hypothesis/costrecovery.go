package hypothesis

import (
	"fmt"

	"sharedopt/internal/core"
	"sharedopt/internal/econ"
	"sharedopt/internal/experiments"
	"sharedopt/internal/regret"
	"sharedopt/internal/simulate"
	"sharedopt/internal/stats"
	"sharedopt/internal/workload"
)

// The cost-recovery family: Theorem 3's budget-balance guarantee is
// distribution-free, but every figure draws valuations uniformly from
// [0, $1). These experiments push the valuation distribution where the
// figures never go — a heavy Pareto tail and the empirically measured,
// per-user-correlated engine-savings pools — and check that AddOn still
// never runs a deficit while Regret's recovery stays merely probabilistic.

// paretoTail is the heavy-tailed valuation distribution C1 sweeps:
// tail index 1.5 keeps the mean at $0.50 (matching the uniform draw the
// figures use) but has infinite variance.
var paretoTail = workload.ParetoValue(1.5)

// corrRecoveryFloor is C2's calibrated lower bound on the fraction of
// Regret's implementations that recover cost under the correlated pools.
// The claim is that recovery stays probable but NOT guaranteed — the
// floor documents how often it held at the committed seed and effort.
const corrRecoveryFloor = 0.50

const (
	corrUsers    = 6
	corrDuration = 4
	corrOpt      = core.OptID(1)
)

func costRecoveryHypotheses() []*Hypothesis {
	return []*Hypothesis{paretoRecovery(), correlatedRecovery()}
}

// paretoRecovery (C1): AddOn's balance stays non-negative when single
// valuations can dwarf the rest of the market (Pareto tail, infinite
// variance), while Regret — whose posted price leans on a well-behaved
// value profile — runs deficits in a measurable fraction of trials.
func paretoRecovery() *Hypothesis {
	return &Hypothesis{
		ID:     "C1",
		Family: "cost-recovery",
		Claim:  "AddOn never runs a deficit under Pareto heavy-tailed valuations; Regret does",
		Run: func(effort int, seed uint64) (*Outcome, error) {
			seeds := experiments.TrialSeeds(seed, effort)
			type trial struct {
				addOnBalance  econ.Money
				regretBalance econ.Money
				regretDeficit bool
			}
			results, err := experiments.ForEachIndex(effort, func(i int) (trial, error) {
				r := stats.NewRNG(seeds[i])
				cost := truthCosts[i%len(truthCosts)]
				sc := workload.CollaborationDist(r, truthUsers, workload.DefaultSlots, cost, paretoTail)
				m, err := simulate.RunAddOn(sc)
				if err != nil {
					return trial{}, err
				}
				g, err := simulate.RunRegretAdditive(sc)
				if err != nil {
					return trial{}, err
				}
				return trial{
					addOnBalance:  m.Balance(),
					regretBalance: g.Balance(),
					regretDeficit: g.Balance() < 0,
				}, nil
			})
			if err != nil {
				return nil, err
			}
			minAddOn, minRegret := results[0].addOnBalance, results[0].regretBalance
			deficits := 0
			for _, tr := range results {
				if tr.addOnBalance < minAddOn {
					minAddOn = tr.addOnBalance
				}
				if tr.regretBalance < minRegret {
					minRegret = tr.regretBalance
				}
				if tr.regretDeficit {
					deficits++
				}
			}
			o := NewOutcome()
			o.Set("addon_min_balance_usd", minAddOn.Dollars())
			o.Set("regret_min_balance_usd", minRegret.Dollars())
			o.Set("regret_deficit_frac", float64(deficits)/float64(len(results)))
			return o, nil
		},
		Check: func(o *Outcome) Verdict {
			min := o.Get("addon_min_balance_usd")
			return Verdict{
				Pass:   min >= 0,
				Margin: min,
				Detail: fmt.Sprintf("worst AddOn balance; Regret's worst is %s with deficits in %s of trials", formatFloat(o.Get("regret_min_balance_usd")), formatFloat(o.Get("regret_deficit_frac"))),
			}
		},
	}
}

// correlatedScenario draws one multi-slot scenario whose per-slot values
// come from the empirically measured engine-savings pools: each user is
// bound to ONE measured user's pool for the whole trial, so her values
// are correlated across slots the way the measurement says they are —
// unlike the figures' global pool, which scrambles users together.
func correlatedScenario(r *stats.RNG, pools [][]econ.Money, cost econ.Money) simulate.AdditiveScenario {
	slots := workload.DefaultSlots
	sc := simulate.AdditiveScenario{
		Opts:    []core.Optimization{{ID: corrOpt, Cost: cost}},
		Horizon: core.Slot(slots + corrDuration - 1),
	}
	for u := 1; u <= corrUsers; u++ {
		pool := pools[r.Intn(len(pools))]
		start := core.Slot(1 + r.Intn(slots))
		values := make([]econ.Money, corrDuration)
		for k := range values {
			values[k] = pool[r.Intn(len(pool))]
		}
		sc.Bids = append(sc.Bids, simulate.AdditiveBid{
			User: core.UserID(u), Opt: corrOpt,
			Start: start, End: start + core.Slot(corrDuration-1),
			Values: values,
		})
	}
	return sc
}

// correlatedRecovery (C2) replays the pricing period over the measured
// engine-savings valuations with per-user correlation preserved, and
// checks three things at once: AddOn's balance never goes negative,
// Regret's overshoot — when it does recover — is bounded by its payer
// count in micro-dollars (payments are k·ceil(cost/k) for k payers), and
// Regret's recovery rate stays above the calibrated floor without ever
// being certain.
func correlatedRecovery() *Hypothesis {
	return &Hypothesis{
		ID:     "C2",
		Family: "cost-recovery",
		Claim:  "Measured correlated valuations: AddOn recovers cost always, Regret only probabilistically with overshoot under a micro-dollar per payer",
		Run: func(effort int, seed uint64) (*Outcome, error) {
			pools, err := experiments.EngineUserPools(seed)
			if err != nil {
				return nil, err
			}
			seeds := experiments.TrialSeeds(seed, effort)
			type trial struct {
				addOnBalance  econ.Money
				regretBalance econ.Money
				implemented   bool
				recovered     bool
				overshootBad  bool
			}
			results, err := experiments.ForEachIndex(effort, func(i int) (trial, error) {
				r := stats.NewRNG(seeds[i])
				cost := truthCosts[i%len(truthCosts)]
				sc := correlatedScenario(r, pools, cost)
				m, err := simulate.RunAddOn(sc)
				if err != nil {
					return trial{}, err
				}
				users := make([]regret.User, 0, len(sc.Bids))
				for _, b := range sc.Bids {
					users = append(users, regret.User{ID: b.User, Start: b.Start, End: b.End, Values: b.Values})
				}
				g, err := regret.RunAdditive(cost, users, sc.Horizon)
				if err != nil {
					return trial{}, err
				}
				t := trial{
					addOnBalance:  m.Balance(),
					regretBalance: g.Balance(),
					implemented:   g.Implemented,
					recovered:     g.Implemented && g.Balance() >= 0,
				}
				// The overshoot bound: whenever the posted price recovers
				// the cost, payments are k·ceil(cost/k) for k payers, so
				// the surplus is strictly under k micro-dollars.
				if t.recovered && g.Balance() >= econ.Money(len(g.Serviced))*econ.Micro {
					t.overshootBad = true
				}
				return t, nil
			})
			if err != nil {
				return nil, err
			}
			minAddOn, minRegret := results[0].addOnBalance, results[0].regretBalance
			implemented, recovered, overshootBad := 0, 0, 0
			for _, tr := range results {
				if tr.addOnBalance < minAddOn {
					minAddOn = tr.addOnBalance
				}
				if tr.regretBalance < minRegret {
					minRegret = tr.regretBalance
				}
				if tr.implemented {
					implemented++
				}
				if tr.recovered {
					recovered++
				}
				if tr.overshootBad {
					overshootBad++
				}
			}
			recoveredFrac := 0.0
			if implemented > 0 {
				recoveredFrac = float64(recovered) / float64(implemented)
			}
			o := NewOutcome()
			o.Set("addon_min_balance_usd", minAddOn.Dollars())
			o.Set("regret_min_balance_usd", minRegret.Dollars())
			o.Set("implemented_frac", float64(implemented)/float64(len(results)))
			o.Set("regret_recovered_frac", recoveredFrac)
			o.Set("overshoot_violations", float64(overshootBad))
			return o, nil
		},
		Check: func(o *Outcome) Verdict {
			margin := o.Get("addon_min_balance_usd")
			detail := "binding: worst AddOn balance"
			if s := -o.Get("overshoot_violations"); s < margin {
				margin, detail = s, "binding: Regret overshoot exceeded its payer-count bound"
			}
			if s := o.Get("regret_recovered_frac") - corrRecoveryFloor; s < margin {
				margin, detail = s, fmt.Sprintf("binding: Regret recovery rate vs the %s floor", formatFloat(corrRecoveryFloor))
			}
			pass := o.Get("addon_min_balance_usd") >= 0 &&
				o.Get("overshoot_violations") == 0 &&
				o.Get("regret_recovered_frac") >= corrRecoveryFloor
			return Verdict{Pass: pass, Margin: margin, Detail: detail}
		},
	}
}
