package hypothesis

import (
	"fmt"
	"sync"
)

// The registry is assembled once, in explicit family order, so the
// report's row order (and therefore its bytes) never depends on file or
// init order.
var (
	registryOnce sync.Once
	registry     []*Hypothesis
	byID         map[string]*Hypothesis
)

func buildRegistry() {
	registryOnce.Do(func() {
		var all []*Hypothesis
		all = append(all, truthfulnessHypotheses()...)
		all = append(all, costRecoveryHypotheses()...)
		all = append(all, arrivalHypotheses()...)
		byID = make(map[string]*Hypothesis, len(all))
		for _, h := range all {
			if err := h.validate(); err != nil {
				panic(err)
			}
			if _, dup := byID[h.ID]; dup {
				panic(fmt.Sprintf("hypothesis: duplicate id %q", h.ID))
			}
			byID[h.ID] = h
		}
		registry = all
	})
}

// All returns every registered hypothesis in report order.
func All() []*Hypothesis {
	buildRegistry()
	return append([]*Hypothesis(nil), registry...)
}

// IDs returns the registered hypothesis IDs in report order.
func IDs() []string {
	buildRegistry()
	ids := make([]string, len(registry))
	for i, h := range registry {
		ids[i] = h.ID
	}
	return ids
}

// Get returns the hypothesis with the given ID.
func Get(id string) (*Hypothesis, error) {
	buildRegistry()
	h, ok := byID[id]
	if !ok {
		return nil, fmt.Errorf("hypothesis: unknown hypothesis %q (have %v)", id, IDs())
	}
	return h, nil
}

// RunOne executes one hypothesis and returns its report row (Index 0;
// RunAll assigns report positions).
func RunOne(h *Hypothesis, effort int, seed uint64) (Result, error) {
	if effort < 1 {
		return Result{}, fmt.Errorf("hypothesis: effort %d < 1", effort)
	}
	outcome, err := h.Run(effort, seed)
	if err != nil {
		return Result{}, fmt.Errorf("hypothesis %s: %w", h.ID, err)
	}
	verdict := h.Check(outcome)
	if verdict.Margin == 0 {
		verdict.Margin = 0 // normalize -0 out of the JSON encoding
	}
	res := Result{
		ID:     h.ID,
		Family: h.Family,
		Claim:  h.Claim,
		Trials: effort,
		Pass:   verdict.Pass,
		Margin: verdict.Margin,
		Detail: verdict.Detail,
	}
	for _, name := range outcome.Names() {
		res.Metrics = append(res.Metrics, Metric{Name: name, Value: outcome.Get(name)})
	}
	return res, nil
}

// RunAll executes the given hypotheses (every registered one if ids is
// empty) and returns the deterministic report: same ids, effort and seed
// give byte-identical report bytes.
func RunAll(ids []string, effort int, seed uint64) (Report, error) {
	var hs []*Hypothesis
	if len(ids) == 0 {
		hs = All()
	} else {
		for _, id := range ids {
			h, err := Get(id)
			if err != nil {
				return nil, err
			}
			hs = append(hs, h)
		}
	}
	report := make(Report, 0, len(hs))
	for _, h := range hs {
		res, err := RunOne(h, effort, seed)
		if err != nil {
			return nil, err
		}
		res.Index = len(report) + 1
		report = append(report, res)
	}
	return report, nil
}
