package hypothesis

import (
	"fmt"

	"sharedopt/internal/core"
	"sharedopt/internal/econ"
	"sharedopt/internal/experiments"
	"sharedopt/internal/simulate"
	"sharedopt/internal/stats"
	"sharedopt/internal/workload"
)

// The truthfulness family: the paper proves the online mechanisms
// truthful (Section 5) and rejects the naive adaptation because it is
// gameable (Example 2), but the figures only ever play truthful bids.
// These experiments actually play the strategies.

// strategy is one named declared-vs-truth transformation.
type strategy struct {
	name  string
	apply func(simulate.AdditiveScenario) simulate.AdditiveScenario
}

// strategies are the deviations the truthfulness experiments sweep:
// concentrate value late (free-rider shape), spread it thin over the
// whole period, and understate it uniformly.
var strategies = []strategy{
	{"hide", workload.HideToLastSlot},
	{"split", workload.SplitAcrossSlots},
	{"shade", workload.ShadeValue(0.5)},
}

// truthCosts is the optimization-cost cycle the strategic trials sweep:
// from trivially affordable (six users, $0.50 mean value each) to rarely
// worth implementing.
var truthCosts = []econ.Money{
	econ.FromDollars(0.30), econ.FromDollars(0.75),
	econ.FromDollars(1.50), econ.FromDollars(3.00),
}

const (
	truthUsers    = 6
	truthDuration = 4
)

// unevenMultiSlot is MultiSlot with independently drawn per-slot values
// (uniform in [0, $0.25), matching MultiSlot's $0.125 per-slot mean)
// instead of an evenly split total. The uneven profile is what makes
// SplitAcrossSlots a genuine misreport: flattening an already-flat
// profile would be the identity.
func unevenMultiSlot(r *stats.RNG, nUsers, slots, duration int, cost econ.Money) simulate.AdditiveScenario {
	sc := simulate.AdditiveScenario{
		Opts:    []core.Optimization{{ID: corrOpt, Cost: cost}},
		Horizon: core.Slot(slots + duration - 1),
	}
	for u := 1; u <= nUsers; u++ {
		start := core.Slot(1 + r.Intn(slots))
		values := make([]econ.Money, duration)
		for k := range values {
			values[k] = workload.UniformValue(r) / econ.Money(duration)
		}
		sc.Bids = append(sc.Bids, simulate.AdditiveBid{
			User: core.UserID(u), Opt: corrOpt,
			Start: start, End: start + core.Slot(duration-1),
			Values: values,
		})
	}
	return sc
}

// deviate returns the truth scenario with exactly one user's bids
// replaced by their transformed (strategic) declarations.
func deviate(truth simulate.AdditiveScenario, user core.UserID,
	apply func(simulate.AdditiveScenario) simulate.AdditiveScenario) simulate.AdditiveScenario {
	full := apply(truth)
	out := simulate.AdditiveScenario{
		Opts:    append([]core.Optimization(nil), truth.Opts...),
		Horizon: truth.Horizon,
	}
	for i, b := range truth.Bids {
		if b.User == user {
			out.Bids = append(out.Bids, full.Bids[i])
		} else {
			out.Bids = append(out.Bids, b)
		}
	}
	return out
}

func truthfulnessHypotheses() []*Hypothesis {
	return []*Hypothesis{singleDeviatorMargin(), coalitionCostRecovery(), overstayBoundary()}
}

// singleDeviatorMargin (T1) is the truthfulness margin itself: for a
// single deviating user — every other user truthful — the deviation
// never improves the deviator's own utility. Each trial draws a
// multi-slot scenario, picks one deviator and one strategy, and compares
// the deviator's utility (true realized value minus payments) under
// truthful and strategic declarations.
func singleDeviatorMargin() *Hypothesis {
	return &Hypothesis{
		ID:     "T1",
		Family: "truthfulness",
		Claim:  "No single strategic deviation (hide, split, shade) improves a user's utility under AddOn",
		Run: func(effort int, seed uint64) (*Outcome, error) {
			seeds := experiments.TrialSeeds(seed, effort)
			margins, err := experiments.ForEachIndex(effort, func(i int) (econ.Money, error) {
				r := stats.NewRNG(seeds[i])
				cost := truthCosts[i%len(truthCosts)]
				truth := unevenMultiSlot(r, truthUsers, workload.DefaultSlots, truthDuration, cost)
				dev := core.UserID(1 + i%truthUsers)
				strat := strategies[(i/truthUsers)%len(strategies)]
				declared := deviate(truth, dev, strat.apply)
				_, truthful, err := simulate.RunAddOnPerUser(truth, truth)
				if err != nil {
					return 0, err
				}
				_, deviant, err := simulate.RunAddOnPerUser(declared, truth)
				if err != nil {
					return 0, err
				}
				return truthful[dev].Utility() - deviant[dev].Utility(), nil
			})
			if err != nil {
				return nil, err
			}
			min := margins[0]
			var sum int64
			gaming := 0
			for _, m := range margins {
				if m < min {
					min = m
				}
				sum += int64(m)
				if m < 0 {
					gaming++
				}
			}
			o := NewOutcome()
			o.Set("min_margin_usd", min.Dollars())
			o.Set("mean_margin_usd", float64(sum)/float64(len(margins))/float64(econ.Dollar))
			o.Set("gaming_trials", float64(gaming))
			return o, nil
		},
		Check: func(o *Outcome) Verdict {
			min := o.Get("min_margin_usd")
			return Verdict{
				Pass:   min >= 0,
				Margin: min,
				Detail: fmt.Sprintf("worst trial's deviation gain is %s dollars (negative margin = profitable lie) across %g gaming trials", formatFloat(-min), o.Get("gaming_trials")),
			}
		},
	}
}

// coalitionCostRecovery (T2): even a full coalition playing a strategy
// profile — every user hiding, splitting, or shading at once, which the
// truthfulness theorem does not cover — cannot push the mechanism into
// deficit: AddOn's cost-recovery guarantee is structural (shares are
// ceiling divisions of incurred cost), not behavioral.
func coalitionCostRecovery() *Hypothesis {
	return &Hypothesis{
		ID:     "T2",
		Family: "truthfulness",
		Claim:  "AddOn never runs a deficit even when every user plays a strategy profile at once",
		Run: func(effort int, seed uint64) (*Outcome, error) {
			seeds := experiments.TrialSeeds(seed, effort)
			type trial struct{ min econ.Money }
			results, err := experiments.ForEachIndex(effort, func(i int) (trial, error) {
				r := stats.NewRNG(seeds[i])
				cost := truthCosts[i%len(truthCosts)]
				truth := unevenMultiSlot(r, truthUsers, workload.DefaultSlots, truthDuration, cost)
				min := econ.MaxMoney
				for _, strat := range strategies {
					res, err := simulate.RunAddOnStrategic(strat.apply(truth), truth)
					if err != nil {
						return trial{}, err
					}
					if b := res.Balance(); b < min {
						min = b
					}
				}
				return trial{min: min}, nil
			})
			if err != nil {
				return nil, err
			}
			min := results[0].min
			var sum int64
			for _, tr := range results {
				if tr.min < min {
					min = tr.min
				}
				sum += int64(tr.min)
			}
			o := NewOutcome()
			o.Set("min_balance_usd", min.Dollars())
			o.Set("mean_worst_balance_usd", float64(sum)/float64(len(results))/float64(econ.Dollar))
			return o, nil
		},
		Check: func(o *Outcome) Verdict {
			min := o.Get("min_balance_usd")
			return Verdict{
				Pass:   min >= 0,
				Margin: min,
				Detail: "worst cloud balance across all coalition strategy profiles",
			}
		},
	}
}

// overstayBoundary (T3) marks where the truthfulness theorem ends: it is
// a statement about declared values, not departure times. A user who
// reports values truthfully but overstays to the horizon leaves the
// mechanism's whole trajectory unchanged (her residual past her true end
// is zero and serviced users stay counted after departing) yet is charged
// the period's final — weakly lowest — share instead of the share at her
// true departure. So overstaying never raises her payment, and strictly
// profits whenever later arrivals keep pushing the share down.
func overstayBoundary() *Hypothesis {
	return &Hypothesis{
		ID:     "T3",
		Family: "truthfulness",
		Claim:  "Truthfulness is about values, not departures: overstaying to the horizon never raises a user's payment",
		Run: func(effort int, seed uint64) (*Outcome, error) {
			seeds := experiments.TrialSeeds(seed, effort)
			type trial struct{ payDelta, gain econ.Money }
			results, err := experiments.ForEachIndex(effort, func(i int) (trial, error) {
				r := stats.NewRNG(seeds[i])
				cost := truthCosts[i%len(truthCosts)]
				truth := unevenMultiSlot(r, truthUsers, workload.DefaultSlots, truthDuration, cost)
				dev := core.UserID(1 + i%truthUsers)
				declared := deviate(truth, dev, workload.OverstayToHorizon)
				_, truthful, err := simulate.RunAddOnPerUser(truth, truth)
				if err != nil {
					return trial{}, err
				}
				_, overstay, err := simulate.RunAddOnPerUser(declared, truth)
				if err != nil {
					return trial{}, err
				}
				return trial{
					payDelta: overstay[dev].Paid - truthful[dev].Paid,
					gain:     overstay[dev].Utility() - truthful[dev].Utility(),
				}, nil
			})
			if err != nil {
				return nil, err
			}
			maxDelta, maxGain := results[0].payDelta, results[0].gain
			profits := 0
			for _, tr := range results {
				if tr.payDelta > maxDelta {
					maxDelta = tr.payDelta
				}
				if tr.gain > maxGain {
					maxGain = tr.gain
				}
				if tr.gain > 0 {
					profits++
				}
			}
			o := NewOutcome()
			o.Set("max_payment_increase_usd", maxDelta.Dollars())
			o.Set("max_overstay_gain_usd", maxGain.Dollars())
			o.Set("profitable_trials", float64(profits))
			return o, nil
		},
		Check: func(o *Outcome) Verdict {
			maxDelta := o.Get("max_payment_increase_usd")
			return Verdict{
				Pass:   maxDelta <= 0,
				Margin: -maxDelta,
				Detail: fmt.Sprintf("largest payment increase from overstaying; the deviation strictly profited in %g trials (largest gain %s dollars)", o.Get("profitable_trials"), formatFloat(o.Get("max_overstay_gain_usd"))),
			}
		},
	}
}
