// Package hypothesis is the harness for machine-checked behavioral
// claims — the properties the paper asserts but its figures never test.
//
// The figure harness (internal/experiments) reproduces what the paper
// *shows*: utility curves under the published workloads. This package
// tests what the paper *argues*: that the online mechanisms keep a
// truthfulness margin against strategic bidders, that cost recovery
// survives valuation distributions far from the uniform draw, and that
// the Shapley/Regret revenue ordering survives bursty arrivals.
//
// Each Hypothesis pairs a one-line claim with a deterministic experiment
// (a seeded scenario generator run over per-trial seeds through the same
// parallel trial loop the figures use) and a Check predicate that turns
// the experiment's Outcome into a Verdict. The registry runs every
// hypothesis and emits a deterministic report: same seed, byte-identical
// bytes. HYPOTHESES.sha256 at the repo root commits the report's
// per-hypothesis hashes, and CI regenerates and diffs them exactly like
// FIGURES.sha256 — every future mechanism change inherits a regression
// oracle for the paper's economic claims, not just its curves.
//
// docs/hypothesis.md describes what makes a good hypothesis and how to
// register a new one.
package hypothesis
