package hypothesis

import (
	"fmt"

	"sharedopt/internal/econ"
	"sharedopt/internal/experiments"
	"sharedopt/internal/simulate"
	"sharedopt/internal/stats"
	"sharedopt/internal/workload"
)

// The arrivals family: Section 7.5 compares the mechanisms against Regret
// under uniform, exponential-early and late arrivals, and the paper argues
// the mechanisms' advantage comes from charging users the moment their
// value arrives instead of waiting for a regret trigger. Flash-crowd and
// bursty arrivals are the sharpest version of that argument — if every
// user shows up in a two-slot window, a trigger-then-charge-the-future
// scheme has nobody left to charge — and no figure exercises them.

// arrivalCosts is the optimization-cost sweep the arrival experiments
// repeat per trial (six users with mean value $0.50 put total expected
// value at $3, so the sweep spans easy to marginal implementations).
var arrivalCosts = []econ.Money{
	econ.FromDollars(0.30), econ.FromDollars(0.60),
	econ.FromDollars(0.90), econ.FromDollars(1.20),
	econ.FromDollars(1.50),
}

func arrivalHypotheses() []*Hypothesis {
	return []*Hypothesis{
		revenueOrdering("B1", stats.ArrivalFlash,
			"Flash-crowd arrivals: AddOn's mean revenue dominates Regret's at every cost"),
		revenueOrdering("B2", stats.ArrivalBursty,
			"Bursty arrivals: AddOn's mean revenue dominates Regret's at every cost"),
		burstRecovery(),
	}
}

// revenueOrdering builds a hypothesis asserting that AddOn's mean revenue
// weakly dominates Regret's at every cost in the sweep under the given
// arrival process. The margin is the smallest per-cost mean revenue gap.
func revenueOrdering(id string, proc stats.ArrivalProcess, claim string) *Hypothesis {
	return &Hypothesis{
		ID:     id,
		Family: "arrivals",
		Claim:  claim,
		Run: func(effort int, seed uint64) (*Outcome, error) {
			seeds := experiments.TrialSeeds(seed, effort)
			type trial struct{ addOn, regret []econ.Money }
			results, err := experiments.ForEachIndex(effort, func(i int) (trial, error) {
				r := stats.NewRNG(seeds[i])
				t := trial{
					addOn:  make([]econ.Money, len(arrivalCosts)),
					regret: make([]econ.Money, len(arrivalCosts)),
				}
				for c, cost := range arrivalCosts {
					sc := workload.Skewed(r, truthUsers, workload.DefaultSlots, cost, proc)
					m, err := simulate.RunAddOn(sc)
					if err != nil {
						return trial{}, err
					}
					g, err := simulate.RunRegretAdditive(sc)
					if err != nil {
						return trial{}, err
					}
					t.addOn[c] = m.Payments
					t.regret[c] = g.Payments
				}
				return t, nil
			})
			if err != nil {
				return nil, err
			}
			o := NewOutcome()
			minGap := 0.0
			for c, cost := range arrivalCosts {
				var sumAddOn, sumRegret int64
				for _, tr := range results {
					sumAddOn += int64(tr.addOn[c])
					sumRegret += int64(tr.regret[c])
				}
				gap := float64(sumAddOn-sumRegret) / float64(len(results)) / float64(econ.Dollar)
				o.Set(fmt.Sprintf("mean_gap_usd_cost_%s", formatFloat(cost.Dollars())), gap)
				if c == 0 || gap < minGap {
					minGap = gap
				}
			}
			o.Set("min_gap_usd", minGap)
			return o, nil
		},
		Check: func(o *Outcome) Verdict {
			min := o.Get("min_gap_usd")
			return Verdict{
				Pass:   min >= 0,
				Margin: min,
				Detail: "smallest per-cost mean revenue gap (AddOn minus Regret) over the cost sweep",
			}
		},
	}
}

// burstRecovery (B3): cost recovery is arrival-pattern independent.
// Flash and bursty arrivals alternate across trials, and AddOn's balance
// must never go negative under either.
func burstRecovery() *Hypothesis {
	procs := []stats.ArrivalProcess{stats.ArrivalFlash, stats.ArrivalBursty}
	return &Hypothesis{
		ID:     "B3",
		Family: "arrivals",
		Claim:  "AddOn never runs a deficit under flash-crowd or bursty arrivals",
		Run: func(effort int, seed uint64) (*Outcome, error) {
			seeds := experiments.TrialSeeds(seed, effort)
			type trial struct {
				balance     econ.Money
				implemented bool
			}
			results, err := experiments.ForEachIndex(effort, func(i int) (trial, error) {
				r := stats.NewRNG(seeds[i])
				cost := arrivalCosts[i%len(arrivalCosts)]
				proc := procs[(i/len(arrivalCosts))%len(procs)]
				sc := workload.Skewed(r, truthUsers, workload.DefaultSlots, cost, proc)
				m, err := simulate.RunAddOn(sc)
				if err != nil {
					return trial{}, err
				}
				return trial{balance: m.Balance(), implemented: m.Cost > 0}, nil
			})
			if err != nil {
				return nil, err
			}
			min := results[0].balance
			implemented := 0
			for _, tr := range results {
				if tr.balance < min {
					min = tr.balance
				}
				if tr.implemented {
					implemented++
				}
			}
			o := NewOutcome()
			o.Set("min_balance_usd", min.Dollars())
			o.Set("implemented_frac", float64(implemented)/float64(len(results)))
			return o, nil
		},
		Check: func(o *Outcome) Verdict {
			min := o.Get("min_balance_usd")
			return Verdict{
				Pass:   min >= 0,
				Margin: min,
				Detail: fmt.Sprintf("worst AddOn balance; optimizations implemented in %s of trials", formatFloat(o.Get("implemented_frac"))),
			}
		},
	}
}
