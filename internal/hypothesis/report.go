package hypothesis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"
)

// Metric is one named measurement in a report row.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Result is one hypothesis's report row.
type Result struct {
	// Index is the row's 1-based position in the report. The parser uses
	// it the way the journal parser uses sequence numbers: rows must be
	// contiguous from 1, and parsing stops at the first break.
	Index   int      `json:"index"`
	ID      string   `json:"id"`
	Family  string   `json:"family"`
	Claim   string   `json:"claim"`
	Trials  int      `json:"trials"`
	Pass    bool     `json:"pass"`
	Margin  float64  `json:"margin"`
	Detail  string   `json:"detail"`
	Metrics []Metric `json:"metrics,omitempty"`
}

// Report is an ordered set of hypothesis results.
type Report []Result

// csvHeader is the first line of every report CSV.
const csvHeader = "id,family,trials,verdict,margin,detail,metrics,claim"

func verdictWord(pass bool) string {
	if pass {
		return "PASS"
	}
	return "FAIL"
}

func formatFloat(v float64) string {
	if v == 0 {
		v = 0 // render -0 as 0
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// csvRow renders one row (no trailing newline).
func (r Result) csvRow() string {
	metrics := make([]string, len(r.Metrics))
	for i, m := range r.Metrics {
		metrics[i] = m.Name + "=" + formatFloat(m.Value)
	}
	fields := []string{
		r.ID, r.Family, strconv.Itoa(r.Trials), verdictWord(r.Pass),
		formatFloat(r.Margin), r.Detail, strings.Join(metrics, ";"), r.Claim,
	}
	for i, f := range fields {
		fields[i] = csvEscape(f)
	}
	return strings.Join(fields, ",")
}

// CSV renders the whole report as comma-separated values with a header
// row. The bytes are deterministic in the report contents.
func (rs Report) CSV() string {
	var b strings.Builder
	b.WriteString(csvHeader)
	b.WriteByte('\n')
	for _, r := range rs {
		b.WriteString(r.csvRow())
		b.WriteByte('\n')
	}
	return b.String()
}

// SHA256Lines renders one "hash  id" line per hypothesis, hashing each
// row's single-row CSV (header + row) — the same contract as
// FIGURES.sha256: HYPOTHESES.sha256 at the repo root is the committed
// output at the default effort and seed, and CI fails on any drift.
func (rs Report) SHA256Lines() string {
	var b strings.Builder
	for _, r := range rs {
		row := csvHeader + "\n" + r.csvRow() + "\n"
		fmt.Fprintf(&b, "%x  %s\n", sha256.Sum256([]byte(row)), r.ID)
	}
	return b.String()
}

// Table renders the report as a human-readable text block.
func (rs Report) Table() string {
	var b strings.Builder
	for _, r := range rs {
		fmt.Fprintf(&b, "%-4s %-14s %-4s margin=%s  %s\n",
			r.ID, r.Family, verdictWord(r.Pass), formatFloat(r.Margin), r.Claim)
		if r.Detail != "" {
			fmt.Fprintf(&b, "     %s\n", r.Detail)
		}
		for _, m := range r.Metrics {
			fmt.Fprintf(&b, "       %s = %s\n", m.Name, formatFloat(m.Value))
		}
	}
	return b.String()
}

// The machine-readable report format frames one JSON row per line behind
// a CRC, exactly like the bid journal's record framing:
//
//	<crc32-ieee-hex8> <json>\n
//
// so the same crash contract applies: a reader of a truncated or
// corrupted report file recovers the longest valid prefix and knows
// precisely where damage begins.

// EncodeRow frames one result row.
func EncodeRow(r Result) ([]byte, error) {
	payload, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("hypothesis: encoding report row %d: %w", r.Index, err)
	}
	out := make([]byte, 0, len(payload)+10)
	out = append(out, fmt.Sprintf("%08x", crc32.ChecksumIEEE(payload))...)
	out = append(out, ' ')
	out = append(out, payload...)
	out = append(out, '\n')
	return out, nil
}

// EncodeReport frames the whole report.
func EncodeReport(rs Report) ([]byte, error) {
	var out []byte
	for _, r := range rs {
		line, err := EncodeRow(r)
		if err != nil {
			return nil, err
		}
		out = append(out, line...)
	}
	return out, nil
}

// ParseReport reads framed report rows from data, stopping at the first
// damaged or out-of-order row. It returns the valid rows, the number of
// bytes they occupy (the consumed prefix re-parses cleanly and can be
// extended by appending a validly framed next row), and whether anything
// beyond the prefix remained (torn). It never panics, whatever the bytes.
func ParseReport(data []byte) (rows Report, consumed int, torn bool) {
	for consumed < len(data) {
		rest := data[consumed:]
		nl := -1
		for i, c := range rest {
			if c == '\n' {
				nl = i
				break
			}
		}
		if nl < 0 {
			break // no full line: torn tail
		}
		line := rest[:nl]
		if len(line) < 10 || line[8] != ' ' {
			break
		}
		want, err := strconv.ParseUint(string(line[:8]), 16, 32)
		if err != nil {
			break
		}
		payload := line[9:]
		if crc32.ChecksumIEEE(payload) != uint32(want) {
			break
		}
		var row Result
		if err := json.Unmarshal(payload, &row); err != nil {
			break
		}
		if row.Index != len(rows)+1 {
			break // sequence break: never yield rows past it
		}
		rows = append(rows, row)
		consumed += nl + 1
	}
	return rows, consumed, consumed < len(data)
}
