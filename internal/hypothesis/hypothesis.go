package hypothesis

import (
	"fmt"
	"math"
)

// Outcome is the measured result of one hypothesis experiment: named
// scalar metrics in insertion order. Order matters — the report renders
// metrics in this order, so it is part of the deterministic output.
type Outcome struct {
	names []string
	vals  map[string]float64
}

// NewOutcome returns an empty outcome.
func NewOutcome() *Outcome {
	return &Outcome{vals: make(map[string]float64)}
}

// Set records a metric, panicking on non-finite values (they would make
// the report non-serializable) and on duplicate names (a duplicate is
// always a bug, and silently overwriting would hide it).
func (o *Outcome) Set(name string, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		panic(fmt.Sprintf("hypothesis: metric %q is %v", name, v))
	}
	if _, dup := o.vals[name]; dup {
		panic(fmt.Sprintf("hypothesis: duplicate metric %q", name))
	}
	if v == 0 {
		v = 0 // normalize -0 so reports never render a negative zero
	}
	o.names = append(o.names, name)
	o.vals[name] = v
}

// Get returns a metric's value, panicking if it was never set: a Check
// predicate reading a metric its Run never produced is a bug, not a zero.
func (o *Outcome) Get(name string) float64 {
	v, ok := o.vals[name]
	if !ok {
		panic(fmt.Sprintf("hypothesis: metric %q not in outcome %v", name, o.names))
	}
	return v
}

// Names returns the metric names in insertion order.
func (o *Outcome) Names() []string {
	return append([]string(nil), o.names...)
}

// Verdict is the machine-checked judgment on one hypothesis.
type Verdict struct {
	// Pass reports whether the claim held.
	Pass bool
	// Margin is the slack of the binding constraint, in the claim's own
	// units (dollars for money claims, a fraction for rate claims):
	// non-negative iff the constraint held, and the distance to the
	// boundary either way. A small positive margin warns that the claim
	// is barely true.
	Margin float64
	// Detail names the binding constraint in one human-readable clause.
	Detail string
}

// Hypothesis is one behavioral claim with its deterministic experiment.
type Hypothesis struct {
	// ID is the short stable identifier ("T1", "C2", ...), unique in the
	// registry and the key of HYPOTHESES.sha256.
	ID string
	// Family groups related claims ("truthfulness", "cost-recovery",
	// "arrivals").
	Family string
	// Claim is the one-line behavioral claim being tested.
	Claim string
	// Run executes the experiment: effort scales the Monte-Carlo trial
	// count and seed makes the run reproducible. Implementations must
	// derive per-trial randomness via experiments.TrialSeeds and reduce
	// in trial order (experiments.ForEachIndex) so the outcome is a pure
	// function of (effort, seed).
	Run func(effort int, seed uint64) (*Outcome, error)
	// Check turns the outcome into a verdict. It must be a pure
	// function of the outcome's metrics.
	Check func(*Outcome) Verdict
}

// validate reports an error if the hypothesis is structurally incomplete.
func (h *Hypothesis) validate() error {
	if h.ID == "" || h.Family == "" || h.Claim == "" || h.Run == nil || h.Check == nil {
		return fmt.Errorf("hypothesis: incomplete hypothesis %+v", h)
	}
	return nil
}
