package simulate

import (
	"fmt"

	"sharedopt/internal/core"
	"sharedopt/internal/econ"
)

// UserOutcome is one user's money accounting across a simulated game:
// the true value she realized in slots where she was serviced, and the
// payments she made.
type UserOutcome struct {
	// Value is the user's realized TRUE value (from the truth scenario,
	// in slots where the mechanism actively serviced her).
	Value econ.Money
	// Paid is the user's total payments.
	Paid econ.Money
}

// Utility returns the user's surplus: realized value minus payments.
func (u UserOutcome) Utility() econ.Money { return u.Value - u.Paid }

// RunAddOnPerUser plays the declared bids through AddOn, accounts realized
// value against the truth scenario, and returns the per-user breakdown
// alongside the aggregate Result. It is the measurement behind the
// truthfulness-margin hypotheses: run it once with declared == truth and
// once with a deviation, and compare the deviator's Utility.
//
// The per-user payments are cross-checked against the game's total
// revenue; a mismatch is reported as an error rather than silently
// mis-attributed.
func RunAddOnPerUser(declared, truth AdditiveScenario) (Result, map[core.UserID]UserOutcome, error) {
	if declared.Horizon != truth.Horizon {
		return Result{}, nil, fmt.Errorf("simulate: declared horizon %d != truth horizon %d",
			declared.Horizon, truth.Horizon)
	}
	if declared.Horizon < 1 {
		return Result{}, nil, fmt.Errorf("simulate: horizon %d < 1", declared.Horizon)
	}
	game := core.NewAdditiveGame(declared.Opts)
	for _, b := range declared.Bids {
		if err := game.Submit(b.Opt, core.OnlineBid{
			User: b.User, Start: b.Start, End: b.End, Values: b.Values,
		}); err != nil {
			return Result{}, nil, err
		}
	}
	trueValues := buildValueTable(truth)
	users := make(map[core.UserID]UserOutcome)
	var res Result
	for t := core.Slot(1); t <= declared.Horizon; t++ {
		rep := game.AdvanceSlot()
		for _, g := range rep.Active {
			v := trueValues[g][t]
			res.TotalValue += v
			u := users[g.User]
			u.Value += v
			users[g.User] = u
		}
		for id, p := range rep.Departures {
			u := users[id]
			u.Paid += p
			users[id] = u
		}
	}
	for id, p := range game.Close() {
		u := users[id]
		u.Paid += p
		users[id] = u
	}
	res.Payments = game.TotalRevenue()
	res.Cost = game.CostIncurred()
	var paid econ.Money
	for _, u := range users {
		paid += u.Paid
	}
	if paid != res.Payments {
		return Result{}, nil, fmt.Errorf("simulate: per-user payments %v != total revenue %v",
			paid, res.Payments)
	}
	return res, users, nil
}
