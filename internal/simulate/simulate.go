// Package simulate drives complete pricing games: it feeds a scenario's
// bids into an online mechanism (or the Regret baseline) slot by slot and
// accounts the realized user value, the cloud's cost, and the payments
// collected. The experiment harness builds every figure of the paper's
// evaluation on top of these drivers.
//
// All drivers assume truthful play: the scenario's declared values are the
// users' true values. (Untruthful play is exercised by the mechanism-level
// tests in internal/core; the paper's evaluation likewise measures
// truthful utility.)
package simulate

import (
	"fmt"

	"sharedopt/internal/core"
	"sharedopt/internal/econ"
	"sharedopt/internal/regret"
)

// AdditiveBid is one user's declared per-slot value stream for one
// optimization in an additive scenario.
type AdditiveBid struct {
	User   core.UserID
	Opt    core.OptID
	Start  core.Slot
	End    core.Slot
	Values []econ.Money
}

// AdditiveScenario is a complete additive game: optimizations, bids, and
// the horizon (number of slots in the pricing period T).
type AdditiveScenario struct {
	Opts    []core.Optimization
	Bids    []AdditiveBid
	Horizon core.Slot
}

// SubstScenario is a complete substitutive game.
type SubstScenario struct {
	Opts    []core.Optimization
	Bids    []core.OnlineSubstBid
	Horizon core.Slot
}

// Result is the money accounting of one simulated game.
type Result struct {
	// TotalValue is the value users actually realized (only in slots
	// where they were serviced, inside their declared intervals).
	TotalValue econ.Money
	// Cost is the summed cost of implemented optimizations.
	Cost econ.Money
	// Payments is the total amount users paid.
	Payments econ.Money
}

// Utility returns the total social utility: realized value minus cost
// (payments are transfers between users and the cloud and cancel out).
func (r Result) Utility() econ.Money { return r.TotalValue - r.Cost }

// Balance returns the cloud balance: payments minus cost. The mechanisms
// guarantee Balance ≥ 0; Regret does not.
func (r Result) Balance() econ.Money { return r.Payments - r.Cost }

// RunAddOn plays the scenario through one AddOn game per optimization
// (additive optimizations are independent) and returns the accounting.
func RunAddOn(sc AdditiveScenario) (Result, error) {
	if sc.Horizon < 1 {
		return Result{}, fmt.Errorf("simulate: horizon %d < 1", sc.Horizon)
	}
	game := core.NewAdditiveGame(sc.Opts)
	// True per-slot values, looked up when a grant is active.
	values := make(map[core.Grant]map[core.Slot]econ.Money, len(sc.Bids))
	for _, b := range sc.Bids {
		if err := game.Submit(b.Opt, core.OnlineBid{
			User: b.User, Start: b.Start, End: b.End, Values: b.Values,
		}); err != nil {
			return Result{}, err
		}
		g := core.Grant{User: b.User, Opt: b.Opt}
		m := values[g]
		if m == nil {
			m = make(map[core.Slot]econ.Money, len(b.Values))
			values[g] = m
		}
		for k, v := range b.Values {
			m[b.Start+core.Slot(k)] = v
		}
	}
	var res Result
	for t := core.Slot(1); t <= sc.Horizon; t++ {
		rep := game.AdvanceSlot()
		for _, g := range rep.Active {
			res.TotalValue += values[g][t]
		}
	}
	game.Close()
	res.Payments = game.TotalRevenue()
	res.Cost = game.CostIncurred()
	return res, nil
}

// RunRegretAdditive plays the same scenario through the Regret baseline,
// one independent run per optimization.
func RunRegretAdditive(sc AdditiveScenario) (Result, error) {
	if sc.Horizon < 1 {
		return Result{}, fmt.Errorf("simulate: horizon %d < 1", sc.Horizon)
	}
	perOpt := make(map[core.OptID][]regret.User)
	costs := make(map[core.OptID]econ.Money, len(sc.Opts))
	for _, o := range sc.Opts {
		if err := o.Validate(); err != nil {
			return Result{}, err
		}
		costs[o.ID] = o.Cost
	}
	for _, b := range sc.Bids {
		if _, ok := costs[b.Opt]; !ok {
			return Result{}, fmt.Errorf("simulate: bid for unknown optimization %d", b.Opt)
		}
		perOpt[b.Opt] = append(perOpt[b.Opt], regret.User{
			ID: b.User, Start: b.Start, End: b.End, Values: b.Values,
		})
	}
	var res Result
	for opt, users := range perOpt {
		r, err := regret.RunAdditive(costs[opt], users, sc.Horizon)
		if err != nil {
			return Result{}, err
		}
		res.TotalValue += r.RealizedValue
		res.Cost += r.Cost
		res.Payments += r.Payments
	}
	return res, nil
}

// RunSubstOn plays a substitutive scenario through the SubstOn mechanism.
func RunSubstOn(sc SubstScenario) (Result, error) {
	if sc.Horizon < 1 {
		return Result{}, fmt.Errorf("simulate: horizon %d < 1", sc.Horizon)
	}
	game := core.NewSubstOn(sc.Opts)
	values := make(map[core.UserID]map[core.Slot]econ.Money, len(sc.Bids))
	for _, b := range sc.Bids {
		if err := game.Submit(b); err != nil {
			return Result{}, err
		}
		m := make(map[core.Slot]econ.Money, len(b.Values))
		for k, v := range b.Values {
			m[b.Start+core.Slot(k)] = v
		}
		values[b.User] = m
	}
	var res Result
	for t := core.Slot(1); t <= sc.Horizon; t++ {
		rep := game.AdvanceSlot()
		for _, g := range rep.Active {
			res.TotalValue += values[g.User][t]
		}
	}
	game.Close()
	res.Payments = game.TotalRevenue()
	res.Cost = game.CostIncurred()
	return res, nil
}

// RunRegretSubst plays a substitutive scenario through the Regret
// baseline.
func RunRegretSubst(sc SubstScenario) (Result, error) {
	if sc.Horizon < 1 {
		return Result{}, fmt.Errorf("simulate: horizon %d < 1", sc.Horizon)
	}
	users := make([]regret.SubstUser, 0, len(sc.Bids))
	for _, b := range sc.Bids {
		users = append(users, regret.SubstUser{
			ID: b.User, Opts: b.Opts, Start: b.Start, End: b.End, Values: b.Values,
		})
	}
	r, err := regret.RunSubstitutive(sc.Opts, users, sc.Horizon)
	if err != nil {
		return Result{}, err
	}
	return Result{TotalValue: r.RealizedValue, Cost: r.Cost, Payments: r.Payments}, nil
}

// TotalDeclaredValue sums every declared per-slot value in the scenario —
// the upper bound any outcome's realized value can reach.
func (sc AdditiveScenario) TotalDeclaredValue() econ.Money {
	var total econ.Money
	for _, b := range sc.Bids {
		for _, v := range b.Values {
			total += v
		}
	}
	return total
}

// TotalDeclaredValue sums every declared per-slot value in the scenario.
func (sc SubstScenario) TotalDeclaredValue() econ.Money {
	var total econ.Money
	for _, b := range sc.Bids {
		for _, v := range b.Values {
			total += v
		}
	}
	return total
}
