package simulate

import (
	"testing"

	"sharedopt/internal/core"
	"sharedopt/internal/econ"
)

func example2Scenario() AdditiveScenario {
	return AdditiveScenario{
		Opts:    []core.Optimization{{ID: 1, Cost: dollars(100)}},
		Horizon: 2,
		Bids: []AdditiveBid{
			{User: 1, Opt: 1, Start: 1, End: 1, Values: []econ.Money{dollars(101)}},
			{User: 2, Opt: 1, Start: 1, End: 2, Values: []econ.Money{dollars(26), dollars(26)}},
		},
	}
}

func TestRunNaiveTruthful(t *testing.T) {
	res, err := RunNaive(example2Scenario())
	if err != nil {
		t.Fatal(err)
	}
	// Implemented at t=1; both users serviced for their intervals:
	// value 101 + 52 = 153; payments 50+50.
	if res.TotalValue != dollars(153) {
		t.Errorf("TotalValue = %v, want $153", res.TotalValue)
	}
	if res.Payments != dollars(100) || res.Cost != dollars(100) {
		t.Errorf("payments %v cost %v", res.Payments, res.Cost)
	}
	if res.Balance() != 0 {
		t.Errorf("balance %v", res.Balance())
	}
}

// Example 2's cheat through the strategic drivers: user 2 hides until
// t=2. Under the naive mechanism she still collects her slot-2 value for
// free; under AddOn she gets nothing.
func TestStrategicHidingFreeRidesNaiveButNotAddOn(t *testing.T) {
	truth := example2Scenario()
	declared := AdditiveScenario{
		Opts:    truth.Opts,
		Horizon: truth.Horizon,
		Bids: []AdditiveBid{
			truth.Bids[0],
			{User: 2, Opt: 1, Start: 2, End: 2, Values: []econ.Money{dollars(52)}},
		},
	}
	naive, err := RunNaiveStrategic(declared, truth)
	if err != nil {
		t.Fatal(err)
	}
	// User 1 triggers alone and pays 100; user 2 rides free at both...
	// she has true value at slots 1 and 2, and the naive mechanism does
	// not gate access: slot 1 value 26 (implemented at slot 1) + slot 2
	// value 26 + user 1's 101.
	if naive.TotalValue != dollars(153) {
		t.Errorf("naive strategic value = %v, want $153", naive.TotalValue)
	}
	if naive.Payments != dollars(100) {
		t.Errorf("naive payments = %v, want $100 (all from user 1)", naive.Payments)
	}

	addOn, err := RunAddOnStrategic(declared, truth)
	if err != nil {
		t.Fatal(err)
	}
	// Under AddOn user 2's hidden declaration (52 at t=2) is measured
	// against joining CS={1}: share 50 <= 52, so she is serviced at
	// t=2 only, realizing just her slot-2 true value.
	if addOn.TotalValue != dollars(127) {
		t.Errorf("AddOn strategic value = %v, want $127 (101 + 26)", addOn.TotalValue)
	}
	if addOn.Balance() < 0 {
		t.Errorf("AddOn lost money: %v", addOn.Balance())
	}
}

func TestStrategicDriverValidation(t *testing.T) {
	truth := example2Scenario()
	short := truth
	short.Horizon = 1
	if _, err := RunAddOnStrategic(truth, short); err == nil {
		t.Error("horizon mismatch accepted by RunAddOnStrategic")
	}
	if _, err := RunNaiveStrategic(truth, short); err == nil {
		t.Error("horizon mismatch accepted by RunNaiveStrategic")
	}
	bad := truth
	bad.Bids = []AdditiveBid{{User: 1, Opt: 9, Start: 1, End: 1, Values: []econ.Money{1}}}
	if _, err := RunNaiveStrategic(bad, truth); err == nil {
		t.Error("unknown optimization accepted by RunNaiveStrategic")
	}
	dup := truth
	dup.Opts = []core.Optimization{{ID: 1, Cost: dollars(1)}, {ID: 1, Cost: dollars(2)}}
	if _, err := RunNaive(dup); err == nil {
		t.Error("duplicate optimization accepted by RunNaive")
	}
	zero := AdditiveScenario{Horizon: 0}
	if _, err := RunNaiveStrategic(zero, zero); err == nil {
		t.Error("zero horizon accepted")
	}
}
