package simulate

import (
	"fmt"

	"sharedopt/internal/core"
	"sharedopt/internal/econ"
)

// valueTable indexes a scenario's true per-slot values by grant and slot.
type valueTable map[core.Grant]map[core.Slot]econ.Money

func buildValueTable(sc AdditiveScenario) valueTable {
	values := make(valueTable, len(sc.Bids))
	for _, b := range sc.Bids {
		g := core.Grant{User: b.User, Opt: b.Opt}
		m := values[g]
		if m == nil {
			m = make(map[core.Slot]econ.Money, len(b.Values))
			values[g] = m
		}
		for k, v := range b.Values {
			m[b.Start+core.Slot(k)] += v
		}
	}
	return values
}

// RunAddOnStrategic plays the declared bids through AddOn but accounts
// realized value against the truth scenario — the harness for measuring
// what a strategic (untruthful) declaration actually earns. Declared and
// truth must cover the same horizon.
func RunAddOnStrategic(declared, truth AdditiveScenario) (Result, error) {
	if declared.Horizon != truth.Horizon {
		return Result{}, fmt.Errorf("simulate: declared horizon %d != truth horizon %d",
			declared.Horizon, truth.Horizon)
	}
	if declared.Horizon < 1 {
		return Result{}, fmt.Errorf("simulate: horizon %d < 1", declared.Horizon)
	}
	game := core.NewAdditiveGame(declared.Opts)
	for _, b := range declared.Bids {
		if err := game.Submit(b.Opt, core.OnlineBid{
			User: b.User, Start: b.Start, End: b.End, Values: b.Values,
		}); err != nil {
			return Result{}, err
		}
	}
	trueValues := buildValueTable(truth)
	var res Result
	for t := core.Slot(1); t <= declared.Horizon; t++ {
		rep := game.AdvanceSlot()
		for _, g := range rep.Active {
			res.TotalValue += trueValues[g][t]
		}
	}
	game.Close()
	res.Payments = game.TotalRevenue()
	res.Cost = game.CostIncurred()
	return res, nil
}

// RunNaive plays a scenario through the naive online strawman (paper,
// Example 2's "run the offline mechanism until it implements, then free
// for everyone"), with truthful declarations.
func RunNaive(sc AdditiveScenario) (Result, error) {
	return RunNaiveStrategic(sc, sc)
}

// RunNaiveStrategic plays declared bids through the naive strawman while
// accounting value against the truth scenario. Crucially, the naive
// mechanism does not gate access on having bid: once implemented, every
// user inside her true interval is serviced, so hiding value is free.
func RunNaiveStrategic(declared, truth AdditiveScenario) (Result, error) {
	if declared.Horizon != truth.Horizon {
		return Result{}, fmt.Errorf("simulate: declared horizon %d != truth horizon %d",
			declared.Horizon, truth.Horizon)
	}
	if declared.Horizon < 1 {
		return Result{}, fmt.Errorf("simulate: horizon %d < 1", declared.Horizon)
	}
	games := make(map[core.OptID]*core.NaiveOnline, len(declared.Opts))
	for _, o := range declared.Opts {
		if _, dup := games[o.ID]; dup {
			return Result{}, fmt.Errorf("simulate: duplicate optimization %d", o.ID)
		}
		games[o.ID] = core.NewNaiveOnline(o)
	}
	for _, b := range declared.Bids {
		game := games[b.Opt]
		if game == nil {
			return Result{}, fmt.Errorf("simulate: bid for unknown optimization %d", b.Opt)
		}
		if err := game.Submit(core.OnlineBid{
			User: b.User, Start: b.Start, End: b.End, Values: b.Values,
		}); err != nil {
			return Result{}, err
		}
	}
	trueValues := buildValueTable(truth)
	// True intervals per (user, opt): the naive mechanism serves any
	// present user post-implementation, bid or not.
	var res Result
	for t := core.Slot(1); t <= declared.Horizon; t++ {
		for opt, game := range games {
			rep := game.AdvanceSlot()
			active := make(map[core.UserID]bool, len(rep.Active))
			for _, g := range rep.Active {
				active[g.User] = true
			}
			if _, implemented := game.Implemented(); implemented {
				// Free riders: users with true value now but no
				// declared presence still benefit.
				for g, byslot := range trueValues {
					if g.Opt == opt && byslot[t] > 0 {
						active[g.User] = true
					}
				}
			}
			for u := range active {
				res.TotalValue += trueValues[core.Grant{User: u, Opt: opt}][t]
			}
		}
	}
	for _, game := range games {
		res.Payments += game.TotalRevenue()
		res.Cost += game.CostIncurred()
	}
	return res, nil
}
