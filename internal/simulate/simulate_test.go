package simulate

import (
	"testing"

	"sharedopt/internal/core"
	"sharedopt/internal/econ"
	"sharedopt/internal/stats"
)

func dollars(d float64) econ.Money { return econ.FromDollars(d) }

// Paper Example 3 run through the driver: the realized value and payments
// must match the hand-computed outcome.
func TestRunAddOnExample3Accounting(t *testing.T) {
	sc := AdditiveScenario{
		Opts:    []core.Optimization{{ID: 1, Cost: dollars(100)}},
		Horizon: 3,
		Bids: []AdditiveBid{
			{User: 1, Opt: 1, Start: 1, End: 1, Values: []econ.Money{dollars(101)}},
			{User: 2, Opt: 1, Start: 1, End: 3, Values: []econ.Money{dollars(16), dollars(16), dollars(16)}},
			{User: 3, Opt: 1, Start: 2, End: 2, Values: []econ.Money{dollars(26)}},
			{User: 4, Opt: 1, Start: 2, End: 2, Values: []econ.Money{dollars(26)}},
		},
	}
	res, err := RunAddOn(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Realized value: user 1 gets 101 (slot 1); user 2 gets 16+16
	// (slots 2,3 — not serviced at slot 1); users 3,4 get 26 each.
	want := dollars(101 + 32 + 26 + 26)
	if res.TotalValue != want {
		t.Errorf("TotalValue = %v, want %v", res.TotalValue, want)
	}
	if res.Payments != dollars(175) {
		t.Errorf("Payments = %v, want $175", res.Payments)
	}
	if res.Cost != dollars(100) {
		t.Errorf("Cost = %v, want $100", res.Cost)
	}
	if res.Utility() != want-dollars(100) {
		t.Errorf("Utility = %v", res.Utility())
	}
	if res.Balance() != dollars(75) {
		t.Errorf("Balance = %v, want $75", res.Balance())
	}
}

func TestRunRegretAdditiveAccounting(t *testing.T) {
	// One user worth $2/slot for 6 slots, cost $6: trigger at t=4,
	// future value $4, price $4 (loss $2).
	vals := make([]econ.Money, 6)
	for i := range vals {
		vals[i] = dollars(2)
	}
	sc := AdditiveScenario{
		Opts:    []core.Optimization{{ID: 1, Cost: dollars(6)}},
		Horizon: 12,
		Bids:    []AdditiveBid{{User: 1, Opt: 1, Start: 1, End: 6, Values: vals}},
	}
	res, err := RunRegretAdditive(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalValue != dollars(4) || res.Cost != dollars(6) || res.Payments != dollars(4) {
		t.Errorf("got %+v, want value $4, cost $6, payments $4", res)
	}
	if res.Utility() != dollars(-2) || res.Balance() != dollars(-2) {
		t.Errorf("utility %v balance %v, want -$2 each", res.Utility(), res.Balance())
	}
}

// Paper Example 8 through the substitutive driver.
func TestRunSubstOnExample8Accounting(t *testing.T) {
	sc := SubstScenario{
		Opts: []core.Optimization{
			{ID: 1, Cost: dollars(60)},
			{ID: 2, Cost: dollars(100)},
			{ID: 3, Cost: dollars(50)},
		},
		Horizon: 3,
		Bids: []core.OnlineSubstBid{
			{User: 1, Opts: []core.OptID{1, 2}, Start: 1, End: 2,
				Values: []econ.Money{dollars(100), dollars(100)}},
			{User: 2, Opts: []core.OptID{1, 2, 3}, Start: 2, End: 3,
				Values: []econ.Money{dollars(100), dollars(100)}},
			{User: 3, Opts: []core.OptID{3}, Start: 3, End: 3,
				Values: []econ.Money{dollars(100)}},
		},
	}
	res, err := RunSubstOn(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Values: user 1 both slots (200), user 2 both slots (200), user 3
	// one slot (100). Costs: opts 1 and 3 = 110. Payments 30+30+50.
	if res.TotalValue != dollars(500) {
		t.Errorf("TotalValue = %v, want $500", res.TotalValue)
	}
	if res.Cost != dollars(110) {
		t.Errorf("Cost = %v, want $110", res.Cost)
	}
	if res.Payments != dollars(110) {
		t.Errorf("Payments = %v, want $110", res.Payments)
	}
}

func TestRunRegretSubstAccounting(t *testing.T) {
	vals := func(n int, d float64) []econ.Money {
		out := make([]econ.Money, n)
		for i := range out {
			out[i] = dollars(d)
		}
		return out
	}
	sc := SubstScenario{
		Opts:    []core.Optimization{{ID: 1, Cost: dollars(4)}, {ID: 2, Cost: dollars(100)}},
		Horizon: 12,
		Bids: []core.OnlineSubstBid{
			{User: 1, Opts: []core.OptID{1, 2}, Start: 1, End: 6, Values: vals(6, 2)},
			{User: 2, Opts: []core.OptID{1}, Start: 1, End: 6, Values: vals(6, 1)},
		},
	}
	res, err := RunRegretSubst(sc)
	if err != nil {
		t.Fatal(err)
	}
	// From the regret package's own test: trigger at 3, price $2, both
	// serviced: realized 6+3=9, cost 4, payments 4.
	if res.TotalValue != dollars(9) || res.Cost != dollars(4) || res.Payments != dollars(4) {
		t.Errorf("got %+v", res)
	}
}

func TestDriversRejectBadScenarios(t *testing.T) {
	if _, err := RunAddOn(AdditiveScenario{Horizon: 0}); err == nil {
		t.Error("zero horizon accepted by RunAddOn")
	}
	if _, err := RunRegretAdditive(AdditiveScenario{Horizon: 0}); err == nil {
		t.Error("zero horizon accepted by RunRegretAdditive")
	}
	if _, err := RunSubstOn(SubstScenario{Horizon: 0}); err == nil {
		t.Error("zero horizon accepted by RunSubstOn")
	}
	if _, err := RunRegretSubst(SubstScenario{Horizon: 0}); err == nil {
		t.Error("zero horizon accepted by RunRegretSubst")
	}
	bad := AdditiveScenario{
		Opts:    []core.Optimization{{ID: 1, Cost: dollars(1)}},
		Horizon: 2,
		Bids:    []AdditiveBid{{User: 1, Opt: 9, Start: 1, End: 1, Values: []econ.Money{1}}},
	}
	if _, err := RunAddOn(bad); err == nil {
		t.Error("unknown optimization accepted by RunAddOn")
	}
	if _, err := RunRegretAdditive(bad); err == nil {
		t.Error("unknown optimization accepted by RunRegretAdditive")
	}
}

// Invariants over random scenarios: the mechanism never loses money and
// realized value never exceeds declared value; Regret never profits.
func TestRandomScenarioInvariants(t *testing.T) {
	r := stats.NewRNG(909)
	for trial := 0; trial < 200; trial++ {
		horizon := core.Slot(3 + r.Intn(8))
		sc := AdditiveScenario{
			Opts:    []core.Optimization{{ID: 1, Cost: econ.Money(r.Int63n(int64(4*econ.Dollar))) + 1}},
			Horizon: horizon,
		}
		n := 1 + r.Intn(6)
		for u := 1; u <= n; u++ {
			start := core.Slot(1 + r.Intn(int(horizon)))
			end := start + core.Slot(r.Intn(int(horizon-start)+1))
			vals := make([]econ.Money, end-start+1)
			for k := range vals {
				vals[k] = econ.Money(r.Int63n(int64(econ.Dollar)))
			}
			sc.Bids = append(sc.Bids, AdditiveBid{
				User: core.UserID(u), Opt: 1, Start: start, End: end, Values: vals,
			})
		}
		mech, err := RunAddOn(sc)
		if err != nil {
			t.Fatal(err)
		}
		if mech.Balance() < 0 {
			t.Fatalf("trial %d: mechanism lost money: %v", trial, mech.Balance())
		}
		if mech.TotalValue > sc.TotalDeclaredValue() {
			t.Fatalf("trial %d: realized %v exceeds declared %v",
				trial, mech.TotalValue, sc.TotalDeclaredValue())
		}
		reg, err := RunRegretAdditive(sc)
		if err != nil {
			t.Fatal(err)
		}
		if reg.Balance() > econ.Money(len(sc.Bids)) { // rounding slack
			t.Fatalf("trial %d: regret profited: %v", trial, reg.Balance())
		}
		if reg.TotalValue > sc.TotalDeclaredValue() {
			t.Fatalf("trial %d: regret realized %v exceeds declared %v",
				trial, reg.TotalValue, sc.TotalDeclaredValue())
		}
	}
}
