package regret

import (
	"fmt"

	"sharedopt/internal/core"
	"sharedopt/internal/econ"
)

// SubstUser is a participant in a substitutive Regret game: she benefits
// from (any one of) the optimizations in Opts and realizes Values[k] in
// slot Start+k while she has access to one of them.
type SubstUser struct {
	ID     core.UserID
	Opts   []core.OptID
	Start  core.Slot
	End    core.Slot
	Values []econ.Money
}

// Validate reports an error if the record is malformed.
func (u SubstUser) Validate() error {
	if len(u.Opts) == 0 {
		return fmt.Errorf("regret: user %d: empty substitute set", u.ID)
	}
	return User{ID: u.ID, Start: u.Start, End: u.End, Values: u.Values}.Validate()
}

func (u SubstUser) wants(j core.OptID) bool {
	for _, o := range u.Opts {
		if o == j {
			return true
		}
	}
	return false
}

func (u SubstUser) valueAt(t core.Slot) econ.Money {
	return User{ID: u.ID, Start: u.Start, End: u.End, Values: u.Values}.valueAt(t)
}

func (u SubstUser) valueAfter(tr core.Slot) econ.Money {
	return User{ID: u.ID, Start: u.Start, End: u.End, Values: u.Values}.valueAfter(tr)
}

// SubstResult summarizes a substitutive Regret run.
type SubstResult struct {
	// PerOpt holds the per-optimization outcome for every implemented
	// optimization.
	PerOpt map[core.OptID]Result
	// ServicedBy maps each serviced user to the optimization she paid
	// for.
	ServicedBy map[core.UserID]core.OptID
	// RealizedValue, Payments and Cost are totals across optimizations.
	RealizedValue econ.Money
	Payments      econ.Money
	Cost          econ.Money
}

// Utility returns total realized value minus total cost.
func (r SubstResult) Utility() econ.Money { return r.RealizedValue - r.Cost }

// Balance returns total payments minus total cost (negative = cloud loss).
func (r SubstResult) Balance() econ.Money { return r.Payments - r.Cost }

// RunSubstitutive simulates the Regret baseline for substitutive
// optimizations over slots 1..horizon. Regret accumulates per optimization
// from the users that want it and have not yet been serviced elsewhere;
// the greedy trigger and posted price work as in the additive case. Once a
// user pays for an implemented optimization she stops benefiting from —
// and stops accruing regret toward — every other optimization (paper,
// Section 7.1).
//
// When several optimizations trigger in the same slot they are processed
// in ascending ID order, each seeing the users claimed by the previous
// ones removed.
func RunSubstitutive(opts []core.Optimization, users []SubstUser, horizon core.Slot) (SubstResult, error) {
	if horizon < 1 {
		return SubstResult{}, fmt.Errorf("regret: horizon %d < 1", horizon)
	}
	byID := make(map[core.OptID]core.Optimization, len(opts))
	order := make([]core.OptID, 0, len(opts))
	for _, o := range opts {
		if err := o.Validate(); err != nil {
			return SubstResult{}, err
		}
		if _, dup := byID[o.ID]; dup {
			return SubstResult{}, fmt.Errorf("regret: duplicate optimization %d", o.ID)
		}
		byID[o.ID] = o
		order = append(order, o.ID)
	}
	sortOptIDs(order)
	seen := make(map[core.UserID]bool, len(users))
	for _, u := range users {
		if err := u.Validate(); err != nil {
			return SubstResult{}, err
		}
		if seen[u.ID] {
			return SubstResult{}, fmt.Errorf("regret: duplicate user %d", u.ID)
		}
		seen[u.ID] = true
		for _, j := range u.Opts {
			if _, ok := byID[j]; !ok {
				return SubstResult{}, fmt.Errorf("regret: user %d wants unknown optimization %d", u.ID, j)
			}
		}
	}

	res := SubstResult{
		PerOpt:     make(map[core.OptID]Result),
		ServicedBy: make(map[core.UserID]core.OptID),
	}
	cum := make(map[core.OptID]econ.Money, len(opts))
	for t := core.Slot(1); t <= horizon; t++ {
		// Fire triggers with the regret accumulated before slot t.
		for _, j := range order {
			if _, done := res.PerOpt[j]; done {
				continue
			}
			cost := byID[j].Cost
			if cum[j] < cost {
				continue
			}
			r := Result{Implemented: true, ImplementedAt: t, Cost: cost}
			futures := make(map[core.UserID]econ.Money)
			for _, u := range users {
				if _, taken := res.ServicedBy[u.ID]; taken || !u.wants(j) {
					continue
				}
				if w := u.valueAfter(t); w > 0 {
					futures[u.ID] = w
				}
			}
			price, payers := PostedPrice(cost, futures)
			r.Price = price
			r.Serviced = payers
			r.Payments = price.MulInt(int64(len(payers)))
			for _, id := range payers {
				res.ServicedBy[id] = j
				r.RealizedValue += futures[id]
			}
			res.PerOpt[j] = r
			res.RealizedValue += r.RealizedValue
			res.Payments += r.Payments
			res.Cost += r.Cost
		}
		// Accumulate slot t's values from users not yet serviced.
		for _, u := range users {
			if _, taken := res.ServicedBy[u.ID]; taken {
				continue
			}
			v := u.valueAt(t)
			if v == 0 {
				continue
			}
			for _, j := range u.Opts {
				if _, done := res.PerOpt[j]; !done {
					cum[j] += v
				}
			}
		}
	}
	return res, nil
}

func sortOptIDs(os []core.OptID) {
	for i := 1; i < len(os); i++ {
		for j := i; j > 0 && os[j] < os[j-1]; j-- {
			os[j], os[j-1] = os[j-1], os[j]
		}
	}
}
