package regret

import (
	"testing"

	"sharedopt/internal/core"
	"sharedopt/internal/econ"
	"sharedopt/internal/stats"
)

func dollars(d float64) econ.Money { return econ.FromDollars(d) }

func TestTriggerFiresWhenRegretReachesCost(t *testing.T) {
	// One user worth $2 per slot in slots 1..6; cost $6. Regret reaches
	// 6 after slot 3, so the trigger fires at t=4.
	users := []User{{ID: 1, Start: 1, End: 6, Values: repeat(dollars(2), 6)}}
	res, err := RunAdditive(dollars(6), users, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Implemented || res.ImplementedAt != 4 {
		t.Fatalf("implemented=%v at %d, want slot 4", res.Implemented, res.ImplementedAt)
	}
	// Future value after t=4: slots 5,6 → $4. No price recovers $6:
	// price = $4, revenue $4, loss $2.
	if res.Price != dollars(4) {
		t.Errorf("price = %v, want $4", res.Price)
	}
	if res.Balance() != dollars(-2) {
		t.Errorf("balance = %v, want -$2", res.Balance())
	}
	// Realized value 4 minus cost 6: negative total utility, the
	// paper's headline failure mode for costly optimizations.
	if res.Utility() != dollars(-2) {
		t.Errorf("utility = %v, want -$2", res.Utility())
	}
}

func TestNeverTriggersWhenValueTooLow(t *testing.T) {
	users := []User{{ID: 1, Start: 1, End: 12, Values: repeat(dollars(0.1), 12)}}
	res, err := RunAdditive(dollars(100), users, 12)
	if err != nil {
		t.Fatal(err)
	}
	if res.Implemented {
		t.Fatal("should not implement")
	}
	if res.Utility() != 0 || res.Balance() != 0 {
		t.Error("unimplemented run should have zero utility and balance")
	}
}

// Regret wastes the value accumulated while building regret: users before
// the trigger get nothing (the paper's first reason AddOn wins for cheap
// optimizations).
func TestValueBeforeTriggerIsLost(t *testing.T) {
	// Two users, $5 each in slot 1 and slot 2; cost $5.
	users := []User{
		{ID: 1, Start: 1, End: 1, Values: []econ.Money{dollars(5)}},
		{ID: 2, Start: 2, End: 2, Values: []econ.Money{dollars(5)}},
	}
	res, err := RunAdditive(dollars(5), users, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Regret reaches 5 after slot 1 → trigger at t=2; user 2's value is
	// in slot 2, which is not strictly after tr=2: she gets nothing.
	if !res.Implemented || res.ImplementedAt != 2 {
		t.Fatalf("trigger at %d, want 2", res.ImplementedAt)
	}
	if res.RealizedValue != 0 {
		t.Errorf("realized %v, want $0 — both users' value is gone", res.RealizedValue)
	}
	if res.Utility() != dollars(-5) {
		t.Errorf("utility %v, want -$5", res.Utility())
	}
}

func TestPostedPriceExactRecovery(t *testing.T) {
	// Futures 9, 1×9 users: cost 10 → price 1 serves all ten.
	futures := map[core.UserID]econ.Money{0: dollars(9)}
	for i := 1; i <= 9; i++ {
		futures[core.UserID(i)] = dollars(1)
	}
	price, payers := PostedPrice(dollars(10), futures)
	if price != dollars(1) {
		t.Fatalf("price = %v, want $1", price)
	}
	if len(payers) != 10 {
		t.Fatalf("%d payers, want 10", len(payers))
	}
}

func TestPostedPricePrefersSmallestRecoveringPrice(t *testing.T) {
	// Futures {10, 10}: cost 6 → price 3 (both pay) rather than 6.
	price, payers := PostedPrice(dollars(6), map[core.UserID]econ.Money{
		1: dollars(10), 2: dollars(10),
	})
	if price != dollars(3) || len(payers) != 2 {
		t.Fatalf("price %v with %d payers, want $3 with 2", price, len(payers))
	}
}

func TestPostedPriceSkipsPoorUsers(t *testing.T) {
	// Futures {10, 1}: cost 8. Price 4 would need both but user 2 can't
	// pay; price 8 with one payer recovers.
	price, payers := PostedPrice(dollars(8), map[core.UserID]econ.Money{
		1: dollars(10), 2: dollars(1),
	})
	if price != dollars(8) || len(payers) != 1 || payers[0] != 1 {
		t.Fatalf("price %v payers %v, want $8 for user 1", price, payers)
	}
}

func TestPostedPriceMinimizesLossWhenUnrecoverable(t *testing.T) {
	// Futures {3, 2}: cost 10. Candidates: p=3 → revenue 3; p=2 →
	// revenue 4. Loss minimized at p=2 (both pay).
	price, payers := PostedPrice(dollars(10), map[core.UserID]econ.Money{
		1: dollars(3), 2: dollars(2),
	})
	if price != dollars(2) || len(payers) != 2 {
		t.Fatalf("price %v payers %v, want $2 with both", price, payers)
	}
}

func TestPostedPriceNoUsers(t *testing.T) {
	price, payers := PostedPrice(dollars(10), nil)
	if price != 0 || payers != nil {
		t.Fatalf("got %v, %v; want zero price, no payers", price, payers)
	}
	price, payers = PostedPrice(dollars(10), map[core.UserID]econ.Money{1: 0})
	if price != 0 || len(payers) != 0 {
		t.Fatalf("all-zero futures: got %v, %v", price, payers)
	}
}

// The Section 8 gaming anecdote, value-based: truthfully, nothing is ever
// implemented (all value sits in the last slot, so regret stays 0 and the
// user saves nothing). By fabricating early value a user triggers the
// build and then pays only the posted price — Regret rewards lying.
// AddOn gives the same users the same benefit without any lie.
func TestRegretRewardsFabricatedEarlyValue(t *testing.T) {
	cost := dollars(10)
	horizon := core.Slot(12)

	// Truthful world: liar's true value is $9 in slot 12; nine small
	// users are worth $1 each in slot 12.
	truthful := []User{{ID: 0, Start: 12, End: 12, Values: []econ.Money{dollars(9)}}}
	for i := 1; i <= 9; i++ {
		truthful = append(truthful, User{ID: core.UserID(i), Start: 12, End: 12,
			Values: []econ.Money{dollars(1)}})
	}
	res, err := RunAdditive(cost, truthful, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if res.Implemented {
		t.Fatal("with all value in the last slot, regret never accumulates")
	}

	// Lying world: the liar reports a fake $1 in each of slots 1..10.
	lying := append([]User(nil), truthful...)
	vals := append(repeat(dollars(1), 10), []econ.Money{0, dollars(9)}...)
	lying[0] = User{ID: 0, Start: 1, End: 12, Values: vals}
	res, err = RunAdditive(cost, lying, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Implemented || res.ImplementedAt != 11 {
		t.Fatalf("lie should trigger at t=11, got %v at %d", res.Implemented, res.ImplementedAt)
	}
	if res.Price != dollars(1) {
		t.Fatalf("posted price %v, want $1", res.Price)
	}
	// The liar pays $1 for her $9 value: utility $8, bought by a lie.
	if !containsUser(res.Serviced, 0) {
		t.Fatal("liar should be serviced")
	}

	// AddOn delivers the same $8 utility to a truthful user: in slot 12
	// all ten users share the $10 cost at $1 each.
	game := core.NewAddOn(core.Optimization{ID: 1, Cost: cost})
	if err := game.Submit(core.OnlineBid{User: 0, Start: 12, End: 12,
		Values: []econ.Money{dollars(9)}}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 9; i++ {
		if err := game.Submit(core.OnlineBid{User: core.UserID(i), Start: 12, End: 12,
			Values: []econ.Money{dollars(1)}}); err != nil {
			t.Fatal(err)
		}
	}
	for s := core.Slot(1); s <= horizon; s++ {
		game.AdvanceSlot()
	}
	if p, ok := game.Payment(0); !ok || p != dollars(1) {
		t.Fatalf("truthful AddOn charges the big user %v, want $1", p)
	}
}

func TestRunAdditiveValidation(t *testing.T) {
	good := []User{{ID: 1, Start: 1, End: 1, Values: []econ.Money{dollars(1)}}}
	if _, err := RunAdditive(0, good, 12); err == nil {
		t.Error("zero cost accepted")
	}
	if _, err := RunAdditive(dollars(1), good, 0); err == nil {
		t.Error("zero horizon accepted")
	}
	bad := []User{{ID: 1, Start: 0, End: 1, Values: []econ.Money{1, 1}}}
	if _, err := RunAdditive(dollars(1), bad, 12); err == nil {
		t.Error("bad user accepted")
	}
	neg := []User{{ID: 1, Start: 1, End: 1, Values: []econ.Money{dollars(-1)}}}
	if _, err := RunAdditive(dollars(1), neg, 12); err == nil {
		t.Error("negative value accepted")
	}
}

// Property: the balance is never positive beyond rounding (the posted
// price is chosen to match the cost, never to profit), and when Regret
// does not implement, no money moves.
func TestRegretBalanceNeverProfits(t *testing.T) {
	r := stats.NewRNG(555)
	for trial := 0; trial < 400; trial++ {
		horizon := core.Slot(4 + r.Intn(9))
		cost := econ.Money(r.Int63n(int64(5*econ.Dollar))) + 1
		var users []User
		n := 1 + r.Intn(6)
		for i := 0; i < n; i++ {
			start := core.Slot(1 + r.Intn(int(horizon)))
			end := start + core.Slot(r.Intn(int(horizon-start)+1))
			vals := make([]econ.Money, end-start+1)
			for k := range vals {
				vals[k] = econ.Money(r.Int63n(int64(2 * econ.Dollar)))
			}
			users = append(users, User{ID: core.UserID(i + 1), Start: start, End: end, Values: vals})
		}
		res, err := RunAdditive(cost, users, horizon)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Implemented {
			if res.Payments != 0 || res.Cost != 0 {
				t.Fatalf("trial %d: money moved without implementation", trial)
			}
			continue
		}
		// Rounding slack: at most one micro-dollar per payer.
		slack := econ.Money(len(res.Serviced))
		if res.Balance() > slack {
			t.Fatalf("trial %d: cloud profited: balance %v", trial, res.Balance())
		}
		// Serviced users can afford the price.
		for _, id := range res.Serviced {
			var u User
			for _, cand := range users {
				if cand.ID == id {
					u = cand
				}
			}
			if u.valueAfter(res.ImplementedAt) < res.Price {
				t.Fatalf("trial %d: user %d serviced below price", trial, id)
			}
		}
	}
}

func repeat(v econ.Money, n int) []econ.Money {
	vals := make([]econ.Money, n)
	for i := range vals {
		vals[i] = v
	}
	return vals
}
