// Package regret implements the regret-based amortization baseline the
// paper compares against (Section 7.1), abstracted from Dash, Kantere et
// al. ("An economic model for self-tuned cloud caching", ICDE 2009, and
// "Predicting cost amortization for query services", SIGMOD 2011).
//
// The baseline works as follows. The regret of optimization j at slot t is
// the total value all users would have realized before t had j existed
// from the start: Rj(t) = Σ_{τ<t} Σ_i vij(τ). The greedy policy implements
// j at the first slot tr with Cj ≤ Rj(tr). Users in subsequent slots gain
// access by paying a posted price pj, chosen — with perfect knowledge of
// future values, which makes this an upper bound on how well Regret can do
// — as the minimum price whose revenue covers the cost, or failing that, a
// price that minimizes the cloud's loss.
//
// Unlike the mechanisms in internal/core, Regret trusts the reported
// values (it is not truthful) and does not guarantee cost recovery: its
// cloud balance (payments − costs) can be negative.
package regret

import (
	"fmt"

	"sharedopt/internal/core"
	"sharedopt/internal/econ"
)

// User is one participant's value function for a single optimization.
// Values[k] is the value realized in slot Start+k if the user has access
// to the optimization in that slot.
type User struct {
	ID     core.UserID
	Start  core.Slot
	End    core.Slot
	Values []econ.Money
}

// Validate reports an error if the user record is malformed.
func (u User) Validate() error {
	if u.Start < 1 {
		return fmt.Errorf("regret: user %d: start slot %d < 1", u.ID, u.Start)
	}
	if u.End < u.Start {
		return fmt.Errorf("regret: user %d: end %d before start %d", u.ID, u.End, u.Start)
	}
	if got, want := len(u.Values), int(u.End-u.Start+1); got != want {
		return fmt.Errorf("regret: user %d: %d values for %d slots", u.ID, got, want)
	}
	for k, v := range u.Values {
		if v < 0 {
			return fmt.Errorf("regret: user %d: negative value %v at slot %d", u.ID, v, u.Start+core.Slot(k))
		}
	}
	return nil
}

// valueAt returns the user's value in slot t (0 outside her interval).
func (u User) valueAt(t core.Slot) econ.Money {
	if t < u.Start || t > u.End {
		return 0
	}
	return u.Values[t-u.Start]
}

// valueAfter returns Σ_{t>tr} of the user's values.
func (u User) valueAfter(tr core.Slot) econ.Money {
	var total econ.Money
	for t := maxSlot(u.Start, tr+1); t <= u.End; t++ {
		total += u.Values[t-u.Start]
	}
	return total
}

func maxSlot(a, b core.Slot) core.Slot {
	if a > b {
		return a
	}
	return b
}

// Result summarizes a Regret run for one optimization.
type Result struct {
	// Implemented reports whether the greedy trigger fired within the
	// horizon; ImplementedAt is the slot tr at which it fired.
	Implemented   bool
	ImplementedAt core.Slot
	// Price is the posted price pj computed at tr (0 if never
	// implemented or no future users exist).
	Price econ.Money
	// Serviced lists the users who paid the price and gained access,
	// in ascending ID order.
	Serviced []core.UserID
	// RealizedValue is the total value serviced users obtained in slots
	// after tr.
	RealizedValue econ.Money
	// Payments is the total amount collected (Price × |Serviced|).
	Payments econ.Money
	// Cost is the optimization cost if implemented, else 0.
	Cost econ.Money
}

// Utility returns the total social utility: realized value minus cost.
// It is negative when Regret implements an optimization whose remaining
// value cannot justify it.
func (r Result) Utility() econ.Money { return r.RealizedValue - r.Cost }

// Balance returns the cloud balance: payments minus cost. Negative means
// the cloud lost money (Regret does not guarantee cost recovery).
func (r Result) Balance() econ.Money { return r.Payments - r.Cost }

// RunAdditive simulates the Regret baseline for a single additive
// optimization of the given cost over slots 1..horizon. For multiple
// additive optimizations, run it once per optimization — exactly how the
// mechanisms treat the additive case.
func RunAdditive(cost econ.Money, users []User, horizon core.Slot) (Result, error) {
	if cost <= 0 {
		return Result{}, fmt.Errorf("regret: cost must be positive, got %v", cost)
	}
	if horizon < 1 {
		return Result{}, fmt.Errorf("regret: horizon %d < 1", horizon)
	}
	for _, u := range users {
		if err := u.Validate(); err != nil {
			return Result{}, err
		}
	}
	tr, fired := trigger(cost, users, horizon)
	if !fired {
		return Result{}, nil
	}
	res := Result{Implemented: true, ImplementedAt: tr, Cost: cost}
	futures := make(map[core.UserID]econ.Money, len(users))
	for _, u := range users {
		if v := u.valueAfter(tr); v > 0 {
			futures[u.ID] = v
		}
	}
	price, payers := PostedPrice(cost, futures)
	res.Price = price
	res.Serviced = payers
	res.Payments = price.MulInt(int64(len(payers)))
	for _, u := range users {
		if containsUser(payers, u.ID) {
			res.RealizedValue += u.valueAfter(tr)
		}
	}
	return res, nil
}

// trigger returns the first slot tr in [1, horizon] with
// Rj(tr) = Σ_{τ<tr} Σ_i v(τ) ≥ cost.
func trigger(cost econ.Money, users []User, horizon core.Slot) (core.Slot, bool) {
	var cum econ.Money
	for t := core.Slot(1); t <= horizon; t++ {
		if cum >= cost {
			return t, true
		}
		for _, u := range users {
			cum += u.valueAt(t)
		}
	}
	// Regret accumulated through the last slot can still fire at the
	// final slot boundary only if a slot remains to implement in; by
	// the paper's definition the trigger needs a slot t with Rj(t) ≥
	// cost, so the horizon's end is the last chance.
	return 0, false
}

// PostedPrice computes Regret's posted price given each future user's
// remaining total value: the minimum price p whose revenue p·|{i: wi ≥ p}|
// covers the cost; if no price recovers the cost, the price minimizing the
// cloud's loss max(cost − revenue, 0), breaking ties toward the smallest
// price so that user utilities are maximized. It also returns the users
// who pay (those whose remaining value meets the price), sorted.
func PostedPrice(cost econ.Money, futures map[core.UserID]econ.Money) (econ.Money, []core.UserID) {
	if len(futures) == 0 {
		return 0, nil
	}
	values := make([]econ.Money, 0, len(futures))
	for _, w := range futures {
		values = append(values, w)
	}
	// Sort descending: values[k-1] is the k-th largest remaining value.
	for i := 1; i < len(values); i++ {
		for j := i; j > 0 && values[j] > values[j-1]; j-- {
			values[j], values[j-1] = values[j-1], values[j]
		}
	}
	count := func(p econ.Money) int {
		n := 0
		for _, w := range values {
			if w >= p {
				n++
			}
		}
		return n
	}
	// Smallest cost-recovering price: try the largest payer count first.
	for k := len(values); k >= 1; k-- {
		p := cost.DivCeil(k)
		if values[k-1] >= p {
			return p, payersAt(p, futures)
		}
	}
	// No price recovers the cost: minimize the loss, i.e. maximize
	// p·count(p) over candidate prices (each distinct remaining value);
	// on ties prefer the smaller price.
	var best econ.Money
	var bestRevenue econ.Money = -1
	for _, w := range values {
		if w == 0 {
			continue
		}
		revenue := w.MulInt(int64(count(w)))
		if revenue > bestRevenue || (revenue == bestRevenue && w < best) {
			best, bestRevenue = w, revenue
		}
	}
	if bestRevenue <= 0 {
		return 0, nil
	}
	return best, payersAt(best, futures)
}

func payersAt(p econ.Money, futures map[core.UserID]econ.Money) []core.UserID {
	var payers []core.UserID
	for id, w := range futures {
		if w >= p && w > 0 {
			payers = append(payers, id)
		}
	}
	sortUserIDs(payers)
	return payers
}

func sortUserIDs(us []core.UserID) {
	for i := 1; i < len(us); i++ {
		for j := i; j > 0 && us[j] < us[j-1]; j-- {
			us[j], us[j-1] = us[j-1], us[j]
		}
	}
}

func containsUser(us []core.UserID, id core.UserID) bool {
	for _, u := range us {
		if u == id {
			return true
		}
	}
	return false
}
