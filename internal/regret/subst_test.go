package regret

import (
	"testing"

	"sharedopt/internal/core"
	"sharedopt/internal/econ"
	"sharedopt/internal/stats"
)

func TestSubstitutiveBasicTriggerAndService(t *testing.T) {
	opts := []core.Optimization{
		{ID: 1, Cost: dollars(4)},
		{ID: 2, Cost: dollars(100)},
	}
	users := []SubstUser{
		{ID: 1, Opts: []core.OptID{1, 2}, Start: 1, End: 6, Values: repeat(dollars(2), 6)},
		{ID: 2, Opts: []core.OptID{1}, Start: 1, End: 6, Values: repeat(dollars(1), 6)},
	}
	res, err := RunSubstitutive(opts, users, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Regret for opt 1 accrues $3/slot: reaches 4 after slot 2, trigger
	// at t=3. Futures after 3: user 1 → $6, user 2 → $3.
	r1, ok := res.PerOpt[1]
	if !ok || r1.ImplementedAt != 3 {
		t.Fatalf("opt 1: %+v, want trigger at 3", r1)
	}
	// Price: k=2 → 2 ≤ w2=3: price $2, both pay.
	if r1.Price != dollars(2) || len(r1.Serviced) != 2 {
		t.Fatalf("opt 1 price %v payers %v", r1.Price, r1.Serviced)
	}
	// Both users are now serviced; opt 2 accrues no further regret and
	// never triggers.
	if _, ok := res.PerOpt[2]; ok {
		t.Error("opt 2 should never be implemented")
	}
	if res.ServicedBy[1] != 1 || res.ServicedBy[2] != 1 {
		t.Errorf("ServicedBy = %v", res.ServicedBy)
	}
	// Realized: user1 $6 + user2 $3 = $9; cost $4; utility $5.
	if res.Utility() != dollars(5) {
		t.Errorf("utility = %v, want $5", res.Utility())
	}
	if res.Balance() != 0 {
		t.Errorf("balance = %v, want $0", res.Balance())
	}
}

// A serviced user stops feeding regret to the other optimizations in her
// substitute set.
func TestServicedUsersStopAccruingRegret(t *testing.T) {
	opts := []core.Optimization{
		{ID: 1, Cost: dollars(2)},
		{ID: 2, Cost: dollars(8)},
	}
	// User 1 wants both; user 2 wants only opt 2 but is worth little.
	users := []SubstUser{
		{ID: 1, Opts: []core.OptID{1, 2}, Start: 1, End: 8, Values: repeat(dollars(1), 8)},
		{ID: 2, Opts: []core.OptID{2}, Start: 1, End: 8, Values: repeat(dollars(0.25), 8)},
	}
	res, err := RunSubstitutive(opts, users, 8)
	if err != nil {
		t.Fatal(err)
	}
	r1, ok := res.PerOpt[1]
	if !ok {
		t.Fatal("opt 1 should trigger")
	}
	// Opt 1 triggers at t=3 (regret 2 after two slots); user 1 pays for
	// it and leaves opt 2's pool. Opt 2's regret then grows only at
	// $0.25/slot from user 2: 2×1.25 = 2.5 by the end — never 8.
	if !containsUser(r1.Serviced, 1) {
		t.Fatalf("user 1 should pay for opt 1: %+v", r1)
	}
	if _, ok := res.PerOpt[2]; ok {
		t.Error("opt 2 should starve once user 1 is serviced")
	}
}

// Two optimizations triggering in the same slot are processed in ID
// order, the first claiming shared users.
func TestSameSlotTriggersProcessedInIDOrder(t *testing.T) {
	opts := []core.Optimization{
		{ID: 1, Cost: dollars(2)},
		{ID: 2, Cost: dollars(2)},
	}
	users := []SubstUser{
		{ID: 1, Opts: []core.OptID{1, 2}, Start: 1, End: 4, Values: repeat(dollars(1), 4)},
		{ID: 2, Opts: []core.OptID{1, 2}, Start: 1, End: 4, Values: repeat(dollars(1), 4)},
	}
	res, err := RunSubstitutive(opts, users, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Both reach regret 2 after slot 1 (two users × $1), triggering at
	// t=2. Opt 1 goes first and takes both users at price $1; opt 2
	// then has nobody and implements at a total loss.
	r1 := res.PerOpt[1]
	if len(r1.Serviced) != 2 || r1.Price != dollars(1) {
		t.Fatalf("opt 1: %+v", r1)
	}
	r2, ok := res.PerOpt[2]
	if !ok {
		t.Fatal("opt 2 still triggers — its regret was already banked")
	}
	if len(r2.Serviced) != 0 || r2.Payments != 0 {
		t.Fatalf("opt 2 should find no remaining users: %+v", r2)
	}
	if res.Balance() != dollars(-2) {
		t.Errorf("balance %v, want -$2 (opt 2 unrecovered)", res.Balance())
	}
}

func TestRunSubstitutiveValidation(t *testing.T) {
	opts := []core.Optimization{{ID: 1, Cost: dollars(1)}}
	ok := []SubstUser{{ID: 1, Opts: []core.OptID{1}, Start: 1, End: 1, Values: []econ.Money{1}}}
	if _, err := RunSubstitutive(opts, ok, 0); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := RunSubstitutive([]core.Optimization{{ID: 1, Cost: 0}}, ok, 4); err == nil {
		t.Error("zero-cost optimization accepted")
	}
	if _, err := RunSubstitutive([]core.Optimization{{ID: 1, Cost: 1}, {ID: 1, Cost: 1}}, ok, 4); err == nil {
		t.Error("duplicate optimization accepted")
	}
	bad := []SubstUser{{ID: 1, Opts: nil, Start: 1, End: 1, Values: []econ.Money{1}}}
	if _, err := RunSubstitutive(opts, bad, 4); err == nil {
		t.Error("empty substitute set accepted")
	}
	unknown := []SubstUser{{ID: 1, Opts: []core.OptID{9}, Start: 1, End: 1, Values: []econ.Money{1}}}
	if _, err := RunSubstitutive(opts, unknown, 4); err == nil {
		t.Error("unknown optimization accepted")
	}
	dup := []SubstUser{
		{ID: 1, Opts: []core.OptID{1}, Start: 1, End: 1, Values: []econ.Money{1}},
		{ID: 1, Opts: []core.OptID{1}, Start: 1, End: 1, Values: []econ.Money{1}},
	}
	if _, err := RunSubstitutive(opts, dup, 4); err == nil {
		t.Error("duplicate user accepted")
	}
}

// Property: substitutive Regret never profits, serviced users can afford
// their price, and each user is serviced by at most one optimization from
// her substitute set.
func TestSubstitutiveInvariantsRandomGames(t *testing.T) {
	r := stats.NewRNG(777)
	for trial := 0; trial < 300; trial++ {
		horizon := core.Slot(4 + r.Intn(9))
		nOpts := 2 + r.Intn(4)
		opts := make([]core.Optimization, nOpts)
		for j := range opts {
			opts[j] = core.Optimization{ID: core.OptID(j + 1),
				Cost: econ.Money(r.Int63n(int64(3*econ.Dollar))) + 1}
		}
		var users []SubstUser
		n := 1 + r.Intn(6)
		for i := 0; i < n; i++ {
			start := core.Slot(1 + r.Intn(int(horizon)))
			end := start + core.Slot(r.Intn(int(horizon-start)+1))
			vals := make([]econ.Money, end-start+1)
			for k := range vals {
				vals[k] = econ.Money(r.Int63n(int64(econ.Dollar)))
			}
			k := 1 + r.Intn(nOpts)
			var set []core.OptID
			for _, idx := range r.SampleK(nOpts, k) {
				set = append(set, opts[idx].ID)
			}
			users = append(users, SubstUser{ID: core.UserID(i + 1), Opts: set,
				Start: start, End: end, Values: vals})
		}
		res, err := RunSubstitutive(opts, users, horizon)
		if err != nil {
			t.Fatal(err)
		}
		slack := econ.Money(len(users))
		if res.Balance() > slack {
			t.Fatalf("trial %d: cloud profited: %v", trial, res.Balance())
		}
		for id, j := range res.ServicedBy {
			var u SubstUser
			for _, cand := range users {
				if cand.ID == id {
					u = cand
				}
			}
			if !u.wants(j) {
				t.Fatalf("trial %d: user %d serviced by unwanted opt %d", trial, id, j)
			}
			if u.valueAfter(res.PerOpt[j].ImplementedAt) < res.PerOpt[j].Price {
				t.Fatalf("trial %d: user %d cannot afford price", trial, id)
			}
		}
	}
}
