package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.StdDev() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Error("zero-value summary should report zeros")
	}
	s.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N() != 8 {
		t.Errorf("N = %d, want 8", s.N())
	}
	if !almostEqual(s.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	if !almostEqual(s.StdDev(), 2, 1e-12) { // classic example: stddev 2
		t.Errorf("StdDev = %v, want 2", s.StdDev())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
}

func TestSummarySingleObservation(t *testing.T) {
	var s Summary
	s.Add(3.5)
	if s.Mean() != 3.5 || s.Var() != 0 || s.Min() != 3.5 || s.Max() != 3.5 {
		t.Errorf("single observation summary wrong: %+v", s)
	}
}

// Property: Welford mean/variance match the naive two-pass computation.
func TestSummaryMatchesNaive(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			// Bound magnitude to keep the naive computation stable.
			xs = append(xs, math.Mod(x, 1e6))
		}
		if len(xs) == 0 {
			return true
		}
		var s Summary
		s.AddAll(xs)
		mean := Mean(xs)
		var m2 float64
		for _, x := range xs {
			m2 += (x - mean) * (x - mean)
		}
		naiveVar := m2 / float64(len(xs))
		scale := math.Max(1, math.Abs(naiveVar))
		return almostEqual(s.Mean(), mean, 1e-9*math.Max(1, math.Abs(mean))) &&
			almostEqual(s.Var(), naiveVar, 1e-6*scale)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: merging two summaries equals summarizing the concatenation.
func TestSummaryMergeEquivalent(t *testing.T) {
	f := func(rawA, rawB []float64) bool {
		clean := func(raw []float64) []float64 {
			xs := make([]float64, 0, len(raw))
			for _, x := range raw {
				if math.IsNaN(x) || math.IsInf(x, 0) {
					continue
				}
				xs = append(xs, math.Mod(x, 1e6))
			}
			return xs
		}
		a, b := clean(rawA), clean(rawB)
		var sa, sb, sAll Summary
		sa.AddAll(a)
		sb.AddAll(b)
		sAll.AddAll(a)
		sAll.AddAll(b)
		sa.Merge(&sb)
		if sa.N() != sAll.N() {
			return false
		}
		if sa.N() == 0 {
			return true
		}
		scale := math.Max(1, math.Abs(sAll.Var()))
		return almostEqual(sa.Mean(), sAll.Mean(), 1e-9*math.Max(1, math.Abs(sAll.Mean()))) &&
			almostEqual(sa.Var(), sAll.Var(), 1e-6*scale) &&
			sa.Min() == sAll.Min() && sa.Max() == sAll.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMergeIntoEmpty(t *testing.T) {
	var empty, full Summary
	full.AddAll([]float64{1, 2, 3})
	empty.Merge(&full)
	if empty.N() != 3 || !almostEqual(empty.Mean(), 2, 1e-12) {
		t.Errorf("merge into empty: N=%d Mean=%v", empty.N(), empty.Mean())
	}
	// Merging an empty summary is a no-op.
	var empty2 Summary
	full.Merge(&empty2)
	if full.N() != 3 {
		t.Errorf("merge of empty changed N to %d", full.N())
	}
}

func TestMeanStdDevHelpers(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
	if StdDev(nil) != 0 {
		t.Error("StdDev(nil) should be 0")
	}
	if !almostEqual(Mean([]float64{1, 2, 3, 4}), 2.5, 1e-12) {
		t.Error("Mean broken")
	}
	if !almostEqual(StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 2, 1e-12) {
		t.Error("StdDev broken")
	}
}

// TestPercentile pins the linear-interpolation definition.
func TestPercentile(t *testing.T) {
	xs := []float64{40, 10, 20, 30} // sorted: 10 20 30 40
	cases := []struct {
		p, want float64
	}{
		{-1, 10}, {0, 10}, {0.5, 25}, {1, 40}, {2, 40},
		{0.25, 17.5}, {0.99, 39.7},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(xs, %v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("Percentile(nil) = %v", got)
	}
	if got := Percentile([]float64{7}, 0.99); got != 7 {
		t.Errorf("Percentile(single) = %v", got)
	}
	// Input must not be reordered.
	if xs[0] != 40 {
		t.Error("Percentile sorted its input in place")
	}
}
