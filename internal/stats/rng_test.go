package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical draws of 100", same)
	}
}

func TestRNGZeroSeedWorks(t *testing.T) {
	r := NewRNG(0)
	var allZero = true
	for i := 0; i < 10; i++ {
		if r.Uint64() != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Error("zero seed produced a stuck all-zero stream")
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(7)
	child := r.Split()
	// The child stream must differ from the parent's continuation.
	same := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("split stream collided %d/100 times with parent", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64MeanNearHalf(t *testing.T) {
	r := NewRNG(11)
	var s Summary
	for i := 0; i < 100000; i++ {
		s.Add(r.Float64())
	}
	if math.Abs(s.Mean()-0.5) > 0.005 {
		t.Errorf("uniform mean = %v, want ≈ 0.5", s.Mean())
	}
	// Variance of U[0,1) is 1/12.
	if math.Abs(s.Var()-1.0/12) > 0.005 {
		t.Errorf("uniform variance = %v, want ≈ %v", s.Var(), 1.0/12)
	}
}

func TestIntnUniformity(t *testing.T) {
	r := NewRNG(5)
	const n, draws = 12, 120000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d out of range", n, v)
		}
		counts[v]++
	}
	want := draws / n
	for v, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Errorf("value %d drawn %d times, want ≈ %d", v, c, want)
		}
	}
}

func TestIntnPanicsOnBadBound(t *testing.T) {
	r := NewRNG(1)
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) should panic", n)
				}
			}()
			r.Intn(n)
		}()
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(9)
	var s Summary
	const mean = 1.2
	for i := 0; i < 200000; i++ {
		x := r.ExpFloat64(mean)
		if x < 0 {
			t.Fatalf("ExpFloat64 returned negative %v", x)
		}
		s.Add(x)
	}
	if math.Abs(s.Mean()-mean) > 0.02 {
		t.Errorf("exponential mean = %v, want ≈ %v", s.Mean(), mean)
	}
	// stddev of Exp(mean) equals mean.
	if math.Abs(s.StdDev()-mean) > 0.05 {
		t.Errorf("exponential stddev = %v, want ≈ %v", s.StdDev(), mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(13)
	var s Summary
	const mean, sd = 3.0, 2.0
	for i := 0; i < 200000; i++ {
		s.Add(r.NormFloat64(mean, sd))
	}
	if math.Abs(s.Mean()-mean) > 0.03 {
		t.Errorf("normal mean = %v, want ≈ %v", s.Mean(), mean)
	}
	if math.Abs(s.StdDev()-sd) > 0.03 {
		t.Errorf("normal stddev = %v, want ≈ %v", s.StdDev(), sd)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(17)
	f := func(nRaw uint8) bool {
		n := int(nRaw % 50)
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSampleKDistinct(t *testing.T) {
	r := NewRNG(19)
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%30) + 1
		k := int(kRaw) % (n + 1)
		s := r.SampleK(n, k)
		if len(s) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSampleKCoversAllWhenKEqualsN(t *testing.T) {
	r := NewRNG(23)
	s := r.SampleK(5, 5)
	seen := map[int]bool{}
	for _, v := range s {
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Errorf("SampleK(5,5) = %v, want a permutation of 0..4", s)
	}
}

func TestSampleKPanics(t *testing.T) {
	r := NewRNG(29)
	defer func() {
		if recover() == nil {
			t.Error("SampleK(2,3) should panic")
		}
	}()
	r.SampleK(2, 3)
}
