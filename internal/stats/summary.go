package stats

import (
	"math"
	"sort"
)

// Summary accumulates streaming summary statistics (count, mean, variance,
// min, max) using Welford's numerically stable online algorithm. The zero
// value is an empty summary ready for use.
type Summary struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds one observation into the summary.
func (s *Summary) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// AddAll folds every observation in xs into the summary.
func (s *Summary) AddAll(xs []float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the arithmetic mean, or 0 for an empty summary.
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the population variance, or 0 with fewer than 2 observations.
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// StdDev returns the population standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation, or 0 for an empty summary.
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation, or 0 for an empty summary.
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Merge combines another summary into s (parallel Welford merge), leaving
// other unchanged.
func (s *Summary) Merge(other *Summary) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *other
		return
	}
	n := s.n + other.n
	delta := other.mean - s.mean
	mean := s.mean + delta*float64(other.n)/float64(n)
	m2 := s.m2 + other.m2 + delta*delta*float64(s.n)*float64(other.n)/float64(n)
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	s.n, s.mean, s.m2 = n, mean, m2
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	var s Summary
	s.AddAll(xs)
	return s.StdDev()
}

// PercentileRank returns the R-7 interpolation coordinates of the p-th
// percentile (p in [0,1], clamped) over n sorted observations: the
// percentile is observation lo plus frac of the distance to observation
// lo+1 (frac == 0 means observation lo exactly, and lo+1 is then not
// consulted — at the extremes lo is 0 or n-1). Percentile applies these
// coordinates to a sorted slice; consumers that hold observations in
// another rank-addressable shape (internal/obs's fixed-bucket histograms)
// apply the same coordinates to stay percentile-compatible with it.
// n <= 0 yields (0, 0).
func PercentileRank(n int, p float64) (lo int, frac float64) {
	if n <= 0 || p <= 0 {
		return 0, 0
	}
	if p >= 1 {
		return n - 1, 0
	}
	rank := p * float64(n-1)
	lo = int(math.Floor(rank))
	frac = rank - float64(lo)
	if lo+1 >= n {
		return n - 1, 0
	}
	return lo, frac
}

// Percentile returns the p-th percentile (p in [0,1]) of xs using
// linear interpolation between closest ranks (the "R-7" definition Go's
// benchstat and numpy default to). xs is not modified. An empty slice
// yields 0; p is clamped to [0,1].
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	lo, frac := PercentileRank(len(sorted), p)
	if frac == 0 {
		return sorted[lo]
	}
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}
