package stats

import "testing"

// PercentileRank is the shared R-7 rank definition: Percentile applies
// it to sorted slices, internal/obs applies it to histogram bucket
// counts. Pin its coordinates so the two can never drift apart.
func TestPercentileRank(t *testing.T) {
	cases := []struct {
		n    int
		p    float64
		lo   int
		frac float64
	}{
		{0, 0.5, 0, 0},   // empty
		{-3, 0.5, 0, 0},  // nonsense n
		{1, 0.5, 0, 0},   // single observation is every quantile
		{5, 0, 0, 0},     // p=0 → min
		{5, -2, 0, 0},    // clamped below
		{5, 1, 4, 0},     // p=1 → max
		{5, 7, 4, 0},     // clamped above
		{5, 0.5, 2, 0},   // exact middle rank
		{4, 0.5, 1, 0.5}, // interpolated middle
		{2, 0.75, 0, 0.75},
		{101, 0.99, 99, 0}, // p99 of 101 sorted values is index 99
	}
	for _, c := range cases {
		lo, frac := PercentileRank(c.n, c.p)
		if lo != c.lo || frac != c.frac {
			t.Errorf("PercentileRank(%d, %v) = (%d, %v), want (%d, %v)",
				c.n, c.p, lo, frac, c.lo, c.frac)
		}
	}
}

// Percentile must behave exactly as before the PercentileRank refactor:
// interpolate via the coordinates on the sorted copy.
func TestPercentileUsesRank(t *testing.T) {
	xs := []float64{40, 10, 30, 20}
	if got := Percentile(xs, 0.5); got != 25 {
		t.Fatalf("p50 = %v, want 25", got)
	}
	if got := Percentile(xs, 1); got != 40 {
		t.Fatalf("p100 = %v, want 40", got)
	}
	if xs[0] != 40 {
		t.Fatal("Percentile must not modify its input")
	}
}

func TestPercentileRankDegenerateInputs(t *testing.T) {
	cases := []struct {
		name     string
		n        int
		p        float64
		wantLo   int
		wantFrac float64
	}{
		{"empty", 0, 0.5, 0, 0},
		{"negative n", -3, 0.5, 0, 0},
		{"single below", 1, 0.25, 0, 0},
		{"single median", 1, 0.5, 0, 0},
		{"single above one", 1, 1.5, 0, 0},
		{"zero p", 10, 0, 0, 0},
		{"negative p", 10, -0.5, 0, 0},
		{"p exactly one", 10, 1, 9, 0},
		{"p above one", 10, 7, 9, 0},
	}
	for _, c := range cases {
		lo, frac := PercentileRank(c.n, c.p)
		if lo != c.wantLo || frac != c.wantFrac {
			t.Errorf("%s: PercentileRank(%d, %v) = (%d, %v), want (%d, %v)",
				c.name, c.n, c.p, lo, frac, c.wantLo, c.wantFrac)
		}
	}
}

func TestPercentileDegenerateInputs(t *testing.T) {
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("Percentile(nil, 0.5) = %v, want 0", got)
	}
	if got := Percentile([]float64{}, 0.99); got != 0 {
		t.Errorf("Percentile(empty, 0.99) = %v, want 0", got)
	}
	for _, p := range []float64{-1, 0, 0.5, 1, 42} {
		if got := Percentile([]float64{7.5}, p); got != 7.5 {
			t.Errorf("Percentile([7.5], %v) = %v, want 7.5", p, got)
		}
	}
}
