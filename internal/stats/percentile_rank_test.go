package stats

import "testing"

// PercentileRank is the shared R-7 rank definition: Percentile applies
// it to sorted slices, internal/obs applies it to histogram bucket
// counts. Pin its coordinates so the two can never drift apart.
func TestPercentileRank(t *testing.T) {
	cases := []struct {
		n    int
		p    float64
		lo   int
		frac float64
	}{
		{0, 0.5, 0, 0},   // empty
		{-3, 0.5, 0, 0},  // nonsense n
		{1, 0.5, 0, 0},   // single observation is every quantile
		{5, 0, 0, 0},     // p=0 → min
		{5, -2, 0, 0},    // clamped below
		{5, 1, 4, 0},     // p=1 → max
		{5, 7, 4, 0},     // clamped above
		{5, 0.5, 2, 0},   // exact middle rank
		{4, 0.5, 1, 0.5}, // interpolated middle
		{2, 0.75, 0, 0.75},
		{101, 0.99, 99, 0}, // p99 of 101 sorted values is index 99
	}
	for _, c := range cases {
		lo, frac := PercentileRank(c.n, c.p)
		if lo != c.lo || frac != c.frac {
			t.Errorf("PercentileRank(%d, %v) = (%d, %v), want (%d, %v)",
				c.n, c.p, lo, frac, c.lo, c.frac)
		}
	}
}

// Percentile must behave exactly as before the PercentileRank refactor:
// interpolate via the coordinates on the sorted copy.
func TestPercentileUsesRank(t *testing.T) {
	xs := []float64{40, 10, 30, 20}
	if got := Percentile(xs, 0.5); got != 25 {
		t.Fatalf("p50 = %v, want 25", got)
	}
	if got := Percentile(xs, 1); got != 40 {
		t.Fatalf("p100 = %v, want 40", got)
	}
	if xs[0] != 40 {
		t.Fatal("Percentile must not modify its input")
	}
}
