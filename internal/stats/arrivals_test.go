package stats

import (
	"testing"
)

func TestArrivalBoundsAllProcesses(t *testing.T) {
	r := NewRNG(31)
	for _, proc := range []ArrivalProcess{ArrivalUniform, ArrivalEarly, ArrivalLate} {
		for _, slots := range []int{1, 2, 12} {
			for i := 0; i < 5000; i++ {
				s := proc.Arrival(r, slots)
				if s < 1 || s > slots {
					t.Fatalf("%v.Arrival(%d) = %d out of [1,%d]", proc, slots, s, slots)
				}
			}
		}
	}
}

func TestArrivalUniformCoversAllSlots(t *testing.T) {
	r := NewRNG(37)
	const slots = 12
	counts := make(map[int]int)
	for i := 0; i < 12000; i++ {
		counts[ArrivalUniform.Arrival(r, slots)]++
	}
	for s := 1; s <= slots; s++ {
		if counts[s] < 700 || counts[s] > 1300 {
			t.Errorf("slot %d drawn %d times, want ≈ 1000", s, counts[s])
		}
	}
}

// Mirrors the paper's footnote: with mean 1.2, the maximum starting slot of
// 6 users in 1000 runs was 12 — i.e. early arrivals cluster hard at slot 1.
func TestArrivalEarlyClustersAtStart(t *testing.T) {
	r := NewRNG(41)
	var early Summary
	firstSlot := 0
	const draws = 6000
	for i := 0; i < draws; i++ {
		s := ArrivalEarly.Arrival(r, 12)
		early.Add(float64(s))
		if s == 1 {
			firstSlot++
		}
	}
	if early.Mean() > 2.5 {
		t.Errorf("early arrival mean slot = %v, want < 2.5", early.Mean())
	}
	// P(Exp(1.2) < 1) ≈ 0.57, so well over a third land on slot 1.
	if firstSlot < draws/3 {
		t.Errorf("only %d/%d early arrivals at slot 1", firstSlot, draws)
	}
}

func TestArrivalLateClustersAtEnd(t *testing.T) {
	r := NewRNG(43)
	var late Summary
	for i := 0; i < 6000; i++ {
		late.Add(float64(ArrivalLate.Arrival(r, 12)))
	}
	if late.Mean() < 10.5 {
		t.Errorf("late arrival mean slot = %v, want > 10.5", late.Mean())
	}
}

// Early and late are mirror images: their means should be symmetric about
// the midpoint of the slot range.
func TestArrivalSkewSymmetry(t *testing.T) {
	const slots = 12
	re, rl := NewRNG(47), NewRNG(47)
	var early, late Summary
	for i := 0; i < 20000; i++ {
		early.Add(float64(ArrivalEarly.Arrival(re, slots)))
		late.Add(float64(ArrivalLate.Arrival(rl, slots)))
	}
	mid := float64(slots+1) / 2
	if d := (early.Mean() - mid) + (late.Mean() - mid); d > 0.2 || d < -0.2 {
		t.Errorf("early mean %v and late mean %v are not symmetric about %v",
			early.Mean(), late.Mean(), mid)
	}
}

func TestArrivalPanicsOnNoSlots(t *testing.T) {
	r := NewRNG(1)
	defer func() {
		if recover() == nil {
			t.Error("Arrival with 0 slots should panic")
		}
	}()
	ArrivalUniform.Arrival(r, 0)
}

func TestInterarrivalsMeanAndDeterminism(t *testing.T) {
	const n, mean = 20000, 3.5
	gaps := Interarrivals(NewRNG(53), n, mean)
	if len(gaps) != n {
		t.Fatalf("got %d gaps, want %d", len(gaps), n)
	}
	var s Summary
	for _, g := range gaps {
		if g < 0 {
			t.Fatalf("negative interarrival gap %v", g)
		}
		s.Add(g)
	}
	if m := s.Mean(); m < mean*0.95 || m > mean*1.05 {
		t.Errorf("sample mean %v, want ≈ %v", m, mean)
	}
	again := Interarrivals(NewRNG(53), n, mean)
	for i := range gaps {
		if gaps[i] != again[i] {
			t.Fatalf("gap %d differs across same-seed draws: %v vs %v", i, gaps[i], again[i])
		}
	}
}

func TestInterarrivalsPanicsOnBadArgs(t *testing.T) {
	for name, call := range map[string]func(){
		"negative n": func() { Interarrivals(NewRNG(1), -1, 1) },
		"zero mean":  func() { Interarrivals(NewRNG(1), 5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			call()
		}()
	}
	if got := Interarrivals(NewRNG(1), 0, 1); len(got) != 0 {
		t.Errorf("n=0: got %d gaps", len(got))
	}
}

func TestArrivalProcessString(t *testing.T) {
	cases := map[ArrivalProcess]string{
		ArrivalUniform:    "Uniform",
		ArrivalEarly:      "Early",
		ArrivalLate:       "Late",
		ArrivalProcess(9): "ArrivalProcess(9)",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(p), got, want)
		}
	}
}

func TestArrivalFlashStaysInWindow(t *testing.T) {
	r := NewRNG(41)
	const slots = 12
	first := 1 + (slots-FlashWindow)/2
	hits := map[int]int{}
	for i := 0; i < 5000; i++ {
		s := ArrivalFlash.Arrival(r, slots)
		if s < first || s >= first+FlashWindow {
			t.Fatalf("flash arrival %d outside window [%d, %d]", s, first, first+FlashWindow-1)
		}
		hits[s]++
	}
	for s := first; s < first+FlashWindow; s++ {
		if hits[s] == 0 {
			t.Fatalf("window slot %d never hit", s)
		}
	}
}

func TestArrivalFlashNarrowPeriod(t *testing.T) {
	r := NewRNG(42)
	for i := 0; i < 100; i++ {
		if s := ArrivalFlash.Arrival(r, 1); s != 1 {
			t.Fatalf("single-slot flash arrival %d", s)
		}
	}
}

func TestArrivalBurstyMixes(t *testing.T) {
	r := NewRNG(43)
	const slots, n = 12, 20000
	first := 1 + (slots-FlashWindow)/2
	inWindow, outside := 0, 0
	for i := 0; i < n; i++ {
		s := ArrivalBursty.Arrival(r, slots)
		if s < 1 || s > slots {
			t.Fatalf("bursty arrival %d out of [1, %d]", s, slots)
		}
		if s >= first && s < first+FlashWindow {
			inWindow++
		} else {
			outside++
		}
	}
	// BurstyWeight of the mass flashes; the uniform rest also lands in the
	// window sometimes, so expect ~ weight + (1-weight)*window/slots.
	want := BurstyWeight + (1-BurstyWeight)*float64(FlashWindow)/slots
	if got := float64(inWindow) / n; got < want-0.03 || got > want+0.03 {
		t.Fatalf("window mass %v, want ~%v", got, want)
	}
	if outside == 0 {
		t.Fatal("bursty arrivals never left the flash window")
	}
}

func TestArrivalFlashBurstyStrings(t *testing.T) {
	if got := ArrivalFlash.String(); got != "Flash" {
		t.Fatalf("ArrivalFlash.String() = %q", got)
	}
	if got := ArrivalBursty.String(); got != "Bursty" {
		t.Fatalf("ArrivalBursty.String() = %q", got)
	}
}
