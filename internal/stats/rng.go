// Package stats provides the deterministic randomness and summary
// statistics substrate for the simulation experiments.
//
// Every experiment in the paper's evaluation section is a Monte-Carlo
// simulation; to make the reproduction bit-for-bit repeatable across
// machines and Go versions, stats implements its own xoshiro256★★
// generator (seeded via SplitMix64) instead of relying on math/rand's
// unspecified stream. All distribution samplers take an explicit *RNG.
package stats

import "math"

// RNG is a deterministic pseudo-random number generator implementing
// xoshiro256★★ (Blackman & Vigna). It is not safe for concurrent use;
// create one per goroutine, or derive independent streams with Split.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from the given seed using SplitMix64,
// which guarantees a well-mixed, non-zero internal state for any seed,
// including 0.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitMix64(sm)
	}
	return r
}

// splitMix64 advances a SplitMix64 state and returns (newState, output).
func splitMix64(state uint64) (uint64, uint64) {
	state += 0x9E3779B97F4A7C15
	z := state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return state, z
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split returns a new generator whose stream is independent of r's
// continuation, for deterministic fan-out to parallel trials.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("stats: Int63n with non-positive bound")
	}
	// Rejection sampling to avoid modulo bias.
	max := uint64(n)
	limit := -max % max // = 2^64 mod n in uint64 arithmetic
	for {
		v := r.Uint64()
		if v >= limit {
			return int64(v % max)
		}
	}
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int { return int(r.Int63n(int64(n))) }

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponentially distributed float64 with the given
// mean (rate 1/mean), via inversion sampling. It panics if mean <= 0.
func (r *RNG) ExpFloat64(mean float64) float64 {
	if mean <= 0 {
		panic("stats: ExpFloat64 with non-positive mean")
	}
	// 1 - Float64() is in (0, 1], so the log is finite.
	return -mean * math.Log(1-r.Float64())
}

// NormFloat64 returns a normally distributed float64 with the given mean
// and standard deviation, via the Marsaglia polar method.
func (r *RNG) NormFloat64(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
	}
}

// Perm returns a uniformly random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// SampleK returns k distinct values drawn uniformly from [0, n) in random
// order. It panics if k > n or k < 0.
func (r *RNG) SampleK(n, k int) []int {
	if k < 0 || k > n {
		panic("stats: SampleK with k out of range")
	}
	// Partial Fisher–Yates over an index array.
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		p[i], p[j] = p[j], p[i]
	}
	return p[:k]
}
