package stats

import "fmt"

// ArrivalProcess names one of the three user-arrival distributions used in
// the arrival-skew experiment (paper Section 7.5).
type ArrivalProcess int

const (
	// ArrivalUniform draws the arrival slot uniformly at random from
	// the available slots.
	ArrivalUniform ArrivalProcess = iota
	// ArrivalEarly clusters arrivals near the first slot, following an
	// exponential distribution with mean 1.2 slots (simulating datasets
	// that become stale).
	ArrivalEarly
	// ArrivalLate clusters arrivals near the last slot, as 12 - t with
	// t exponential with mean 1.2 (simulating datasets that become
	// popular over time).
	ArrivalLate
	// ArrivalFlash models a flash crowd: every arrival lands inside a
	// narrow window of FlashWindow slots centered mid-period (uniform
	// within the window). The whole population shows up almost at once,
	// with nobody before the burst to amortize against and little period
	// left after it.
	ArrivalFlash
	// ArrivalBursty mixes a flash crowd with background traffic: with
	// probability BurstyWeight an arrival joins the mid-period flash
	// window, otherwise it is uniform over all slots.
	ArrivalBursty
)

// String returns the process name used in figure legends.
func (a ArrivalProcess) String() string {
	switch a {
	case ArrivalUniform:
		return "Uniform"
	case ArrivalEarly:
		return "Early"
	case ArrivalLate:
		return "Late"
	case ArrivalFlash:
		return "Flash"
	case ArrivalBursty:
		return "Bursty"
	default:
		return fmt.Sprintf("ArrivalProcess(%d)", int(a))
	}
}

// ExpSkewMean is the exponential mean (in slots) the paper uses for the
// early and late arrival processes.
const ExpSkewMean = 1.2

// FlashWindow is the width, in slots, of the flash-crowd arrival window
// (clamped to the available slots).
const FlashWindow = 2

// BurstyWeight is the fraction of bursty arrivals that join the flash
// window; the rest are uniform over the period.
const BurstyWeight = 0.75

// Arrival samples an arrival slot in [1, slots] from the process.
// It panics if slots < 1.
func (a ArrivalProcess) Arrival(r *RNG, slots int) int {
	if slots < 1 {
		panic("stats: Arrival with no slots")
	}
	switch a {
	case ArrivalUniform:
		return 1 + r.Intn(slots)
	case ArrivalEarly:
		t := int(r.ExpFloat64(ExpSkewMean))
		return clampSlot(1+t, slots)
	case ArrivalLate:
		t := int(r.ExpFloat64(ExpSkewMean))
		return clampSlot(slots-t, slots)
	case ArrivalFlash:
		return flashSlot(r, slots)
	case ArrivalBursty:
		// One uniform variate decides burst membership, then the burst
		// (or background) slot consumes its own draws, so the stream
		// stays a pure function of the arrival sequence.
		if r.Float64() < BurstyWeight {
			return flashSlot(r, slots)
		}
		return 1 + r.Intn(slots)
	default:
		panic(fmt.Sprintf("stats: unknown arrival process %d", int(a)))
	}
}

// flashSlot draws uniformly inside the mid-period flash window: width
// FlashWindow (clamped to slots), first slot chosen so the window is
// centered.
func flashSlot(r *RNG, slots int) int {
	width := FlashWindow
	if width > slots {
		width = slots
	}
	first := 1 + (slots-width)/2
	return first + r.Intn(width)
}

// Interarrivals draws n exponential interarrival gaps with the given
// mean, the waiting times of a Poisson arrival process. Load generators
// use it to drive open-loop request schedules: sleeping each gap before
// the next submission yields arrivals whose burstiness is controlled by
// mean alone, reproducibly from the RNG seed. It panics if n < 0 or
// mean <= 0.
func Interarrivals(r *RNG, n int, mean float64) []float64 {
	if n < 0 || mean <= 0 {
		panic("stats: Interarrivals needs n >= 0 and mean > 0")
	}
	gaps := make([]float64, n)
	for i := range gaps {
		gaps[i] = r.ExpFloat64(mean)
	}
	return gaps
}

func clampSlot(s, slots int) int {
	if s < 1 {
		return 1
	}
	if s > slots {
		return slots
	}
	return s
}
