package experiments

import (
	"fmt"

	"sharedopt/internal/econ"
	"sharedopt/internal/simulate"
	"sharedopt/internal/stats"
	"sharedopt/internal/workload"
)

// Fig5Config parameterizes the substitute-selectivity experiment of
// Section 7.6 (Figures 5(a) and 5(b)).
type Fig5Config struct {
	// ID is "5a" (low selectivity: 3 of 4) or "5b" (high: 3 of 12).
	ID string
	// Users is the collaboration size (6 in the paper).
	Users int
	// Slots is the number of time slots (12 in the paper).
	Slots int
	// NOpts is the total number of optimizations; SubsPerUser (3) are
	// drawn per user. Selectivity = SubsPerUser / NOpts.
	NOpts, SubsPerUser int
	// Costs is the x axis of mean optimization costs.
	Costs []econ.Money
	// Trials per cost.
	Trials int
	// Seed makes the run reproducible.
	Seed uint64
	// DerivedConfig optionally swaps the uniform user values for the
	// engine-measured distribution (IDs "5av"/"5bv"; see
	// enginesavings.go).
	DerivedConfig
}

// Fig5aConfig returns the published Figure 5(a): selectivity 0.75.
func Fig5aConfig(trials int, seed uint64) Fig5Config {
	return Fig5Config{ID: "5a", Users: 6, Slots: workload.DefaultSlots,
		NOpts: 4, SubsPerUser: 3, Costs: SweepSelectivity, Trials: trials, Seed: seed}
}

// Fig5bConfig returns the published Figure 5(b): selectivity 0.25.
func Fig5bConfig(trials int, seed uint64) Fig5Config {
	return Fig5Config{ID: "5b", Users: 6, Slots: workload.DefaultSlots,
		NOpts: 12, SubsPerUser: 3, Costs: SweepSelectivity, Trials: trials, Seed: seed}
}

// fig5Engine turns a published Figure 5 configuration into its
// engine-derived twin (ID suffix "v").
func fig5Engine(cfg Fig5Config) Fig5Config {
	cfg.ID += "v"
	cfg.engine(cfg.Seed)
	return cfg
}

// Fig5aEngineConfig returns Figure 5(a)'s engine-derived variant ("5av").
func Fig5aEngineConfig(trials int, seed uint64) Fig5Config {
	return fig5Engine(Fig5aConfig(trials, seed))
}

// Fig5bEngineConfig returns Figure 5(b)'s engine-derived variant ("5bv").
func Fig5bEngineConfig(trials int, seed uint64) Fig5Config {
	return fig5Engine(Fig5bConfig(trials, seed))
}

// Fig5 runs the substitute-selectivity experiment: SubstOn's and Regret's
// mean total utility as the mean optimization cost grows, for a fixed
// selectivity of substitutes.
func Fig5(cfg Fig5Config) (*Figure, error) {
	if cfg.Users < 1 || cfg.Slots < 1 || cfg.Trials < 1 || len(cfg.Costs) == 0 ||
		cfg.NOpts < 1 || cfg.SubsPerUser < 1 || cfg.SubsPerUser > cfg.NOpts {
		return nil, fmt.Errorf("experiments: fig5: bad config %+v", cfg)
	}
	title := fmt.Sprintf("Total utility vs mean cost (selectivity %d/%d, %d users)",
		cfg.SubsPerUser, cfg.NOpts, cfg.Users)
	value, derived, err := cfg.valueDist()
	if err != nil {
		return nil, err
	}
	if derived {
		title += " (engine-derived values)"
	}
	fig := &Figure{
		ID:          cfg.ID,
		Title:       title,
		XLabel:      "Optimization cost ($)",
		SeriesNames: []string{SeriesSubstOnUtility, SeriesRegretUtility},
	}
	seeds := trialSeeds(cfg.Seed, cfg.Trials)
	type trial struct{ mech, reg float64 }
	for _, cost := range cfg.Costs {
		results, err := forEachIndex(len(seeds), func(i int) (trial, error) {
			r := stats.NewRNG(seeds[i])
			sc := workload.SubstitutesDist(r, cfg.Users, cfg.NOpts, cfg.SubsPerUser, cfg.Slots, cost, value)
			m, err := simulate.RunSubstOn(sc)
			if err != nil {
				return trial{}, err
			}
			g, err := simulate.RunRegretSubst(sc)
			if err != nil {
				return trial{}, err
			}
			return trial{m.Utility().Dollars(), g.Utility().Dollars()}, nil
		})
		if err != nil {
			return nil, err
		}
		var mech, reg stats.Summary
		for _, tr := range results {
			mech.Add(tr.mech)
			reg.Add(tr.reg)
		}
		fig.Add(cost.Dollars(), map[string]float64{
			SeriesSubstOnUtility: mech.Mean(),
			SeriesRegretUtility:  reg.Mean(),
		})
	}
	return fig, nil
}
