// Package experiments regenerates every figure in the paper's
// evaluation section (Section 7). Each FigNN function runs the
// corresponding simulation sweep and returns a Figure holding the same
// series the paper plots; the cmd/experiments binary renders them as
// text tables or CSV, and bench_test.go at the module root wraps each
// one in a benchmark.
//
// # Map from paper figures to code
//
//   - Figure 1 (Section 7.2, astronomy use-case) — fig1.go, playing
//     workload.Astronomy over all (or sampled) quarter-span
//     assignments.
//   - Figures 2(a)–2(d) (Section 7.3, collaboration size) — fig2.go.
//   - Figures 3(a)/3(b) (Section 7.4, usage overlap) — fig3.go.
//   - Figure 4 (Section 7.5, arrival skew) — fig4.go.
//   - Figures 5(a)/5(b) (Section 7.6, substitute selectivity) — fig5.go.
//   - E1–E3 — this repo's ablation figures (ablation.go): mechanism
//     efficiency against the exhaustive optimum and what the Naive
//     mechanism loses to gaming.
//
// # Engine-derived variants
//
// The paper prices from constants it measured on real astronomy data.
// This repo can instead measure the savings itself, by running the
// halo-tracking workload on internal/engine over an internal/astro
// synthetic universe (enginesavings.go). Two derivation styles exist,
// distinguished by ID suffix:
//
//   - "e" (1e, 4e): the whole game is the measured astronomy scenario —
//     per-user, per-view savings cents from astro.MeasureSavings feed
//     workload.AstronomyDerived.
//   - "v" (2av, 2bv, 2cv, 2dv, 3av, 3bv, 4v, 5av, 5bv): the paper's
//     synthetic game is unchanged, but user values are drawn from the
//     empirical distribution of the measured savings (rescaled to the
//     uniform draw's $0.50 mean) instead of uniform [0, $1).
//
// All variants share one memoized universe measurement per parameter
// set (engineBids), so a full `cmd/experiments -derived` sweep
// generates and measures the universe once. The measurement itself
// fans out over astro.MeasureSavingsParallel's worker pool and is
// byte-identical at any worker count.
//
// # Determinism
//
// Every figure is a deterministic function of (ID, effort, seed): trial
// seeds are drawn up front (trialSeeds), trials fan out over all cores
// (forEachIndex) but reduce in trial order, and FIGURES.sha256 at the
// repo root pins the CSV hash of every registered figure at the default
// effort and seed — CI regenerates them and fails on drift.
package experiments
