package experiments

import (
	"fmt"

	"sharedopt/internal/econ"
	"sharedopt/internal/simulate"
	"sharedopt/internal/stats"
	"sharedopt/internal/workload"
)

// Figure 1's series.
const (
	SeriesRegretUtilityStd = "Regret Utility StdDev"
	SeriesAddOnUtilityStd  = "AddOn Utility StdDev"
	SeriesBaselineCost     = "Baseline Cost"
)

// Fig1Config parameterizes the astronomy use-case experiment of
// Section 7.2.
type Fig1Config struct {
	// Executions is the x axis: how many times each user executes her
	// workload (the paper sweeps 1 and 10..90 step 10).
	Executions []int
	// Samples is the number of quarter-span assignments sampled from
	// the 10^6 alternatives when Exhaustive is false.
	Samples int
	// Exhaustive enumerates all 10^6 assignments instead of sampling
	// (matches the paper exactly; roughly a thousand times slower).
	Exhaustive bool
	// Seed makes sampled runs reproducible.
	Seed uint64
	// PriceBook supplies the baseline compute rate.
	PriceBook econ.PriceBook
	// DerivedConfig optionally replaces the paper's published
	// per-execution savings (18/7/3/16/9/4 cents etc.) with the
	// measured table (figure "1e"; see enginesavings.go).
	DerivedConfig
}

// Fig1DefaultConfig returns the published Figure 1 configuration with
// Monte-Carlo sampling of the alternative space.
func Fig1DefaultConfig(samples int, seed uint64) Fig1Config {
	execs := []int{1}
	for x := 10; x <= 90; x += 10 {
		execs = append(execs, x)
	}
	return Fig1Config{Executions: execs, Samples: samples, Seed: seed,
		PriceBook: econ.DefaultPriceBook()}
}

// Fig1EngineConfig returns the engine-derived variant ("1e"): like
// Fig1DefaultConfig, but the user-value table comes out of the astro
// substrate's measured savings on a compact synthetic universe instead of
// the paper's constants.
func Fig1EngineConfig(samples int, seed uint64) Fig1Config {
	cfg := Fig1DefaultConfig(samples, seed)
	cfg.engine(seed)
	return cfg
}

// Fig1 runs the astronomy use-case: for every execution count it
// aggregates, across quarter-span assignments (all 10^6 or a uniform
// sample), the total utility of AddOn and of Regret, Regret's cloud
// balance, and the no-optimization baseline operating cost.
func Fig1(cfg Fig1Config) (*Figure, error) {
	if len(cfg.Executions) == 0 {
		return nil, fmt.Errorf("experiments: fig1: empty execution sweep")
	}
	if !cfg.Exhaustive && cfg.Samples < 1 {
		return nil, fmt.Errorf("experiments: fig1: %d samples", cfg.Samples)
	}
	if err := cfg.PriceBook.Validate(); err != nil {
		return nil, err
	}
	id, title := "1", "Astronomy use-case: utility and balance vs workload executions"
	build := func(assignment [workload.AstroUsers]workload.QuarterSpan, execs int) simulate.AdditiveScenario {
		return workload.Astronomy(assignment, execs)
	}
	if cfg.EngineDerived {
		id, title = "1e", "Astronomy use-case with engine-derived savings"
		cents, err := deriveAstronomySavings(cfg)
		if err != nil {
			return nil, err
		}
		build = func(assignment [workload.AstroUsers]workload.QuarterSpan, execs int) simulate.AdditiveScenario {
			return workload.AstronomyDerived(cents, assignment, execs, workload.AstroViewCost)
		}
	}
	fig := &Figure{
		ID:     id,
		Title:  title,
		XLabel: "Executions per user",
		SeriesNames: []string{
			SeriesAddOnUtility, SeriesAddOnUtilityStd,
			SeriesRegretUtility, SeriesRegretUtilityStd,
			SeriesRegretBalance, SeriesBaselineCost,
		},
	}
	spans := workload.AllQuarterSpans(workload.AstroQuarters)
	type trial struct{ addOn, regU, regB float64 }
	for _, execs := range cfg.Executions {
		eval := func(assignment [workload.AstroUsers]workload.QuarterSpan) (trial, error) {
			sc := build(assignment, execs)
			m, err := simulate.RunAddOn(sc)
			if err != nil {
				return trial{}, err
			}
			g, err := simulate.RunRegretAdditive(sc)
			if err != nil {
				return trial{}, err
			}
			return trial{m.Utility().Dollars(), g.Utility().Dollars(), g.Balance().Dollars()}, nil
		}
		var results []trial
		if cfg.Exhaustive {
			// Assignment i is the mixed-radix decoding of i over the
			// span table, user 0 most significant — the same order the
			// old recursive enumeration visited, so the reduction below
			// is bit-identical to it. Decoding per index keeps the
			// parallel fan-out allocation-free.
			total := 1
			for u := 0; u < workload.AstroUsers; u++ {
				total *= len(spans)
			}
			var err error
			results, err = forEachIndex(total, func(i int) (trial, error) {
				var assignment [workload.AstroUsers]workload.QuarterSpan
				x := i
				for u := workload.AstroUsers - 1; u >= 0; u-- {
					assignment[u] = spans[x%len(spans)]
					x /= len(spans)
				}
				return eval(assignment)
			})
			if err != nil {
				return nil, err
			}
		} else {
			// Draw all sampled assignments sequentially from the single
			// RNG first, then evaluate them in parallel.
			r := stats.NewRNG(cfg.Seed + uint64(execs))
			assignments := make([][workload.AstroUsers]workload.QuarterSpan, cfg.Samples)
			for s := range assignments {
				for u := range assignments[s] {
					assignments[s][u] = spans[r.Intn(len(spans))]
				}
			}
			var err error
			results, err = forEachIndex(len(assignments), func(i int) (trial, error) {
				return eval(assignments[i])
			})
			if err != nil {
				return nil, err
			}
		}
		var addOn, regU, regB stats.Summary
		for _, tr := range results {
			addOn.Add(tr.addOn)
			regU.Add(tr.regU)
			regB.Add(tr.regB)
		}
		fig.Add(float64(execs), map[string]float64{
			SeriesAddOnUtility:     addOn.Mean(),
			SeriesAddOnUtilityStd:  addOn.StdDev(),
			SeriesRegretUtility:    regU.Mean(),
			SeriesRegretUtilityStd: regU.StdDev(),
			SeriesRegretBalance:    regB.Mean(),
			SeriesBaselineCost:     workload.AstroBaselineCost(cfg.PriceBook, execs).Dollars(),
		})
	}
	return fig, nil
}

// deriveAstronomySavings measures the per-view savings of the six
// astronomers' workloads on the configured synthetic universe and scales
// them to cents, anchored at the paper's 18¢ final-snapshot saving.
// Measurements are memoized per parameter set (see measureSavingsCents),
// so 1e and 4e share one universe generation and one measurement.
func deriveAstronomySavings(cfg Fig1Config) ([][]int64, error) {
	return measureSavingsCents(cfg.Universe, cfg.LinkLen, cfg.MinMembers)
}
