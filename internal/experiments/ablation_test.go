package experiments

import "testing"

// E1: the hindsight-optimal bound dominates AddOn at every cost, AddOn
// stays non-negative, and the absolute efficiency gap grows with cost in
// the mid-range (the price of truthfulness + cost recovery).
func TestAblationE1Shape(t *testing.T) {
	fig := run(t, "E1", testEffort)
	eff := fig.Series(SeriesEfficientUtility)
	add := fig.Series(SeriesAddOnUtility)
	for i := range fig.Points {
		if eff[i] < add[i]-1e-9 {
			t.Errorf("cost %v: bound %v below AddOn %v", fig.Points[i].X, eff[i], add[i])
		}
		if add[i] < 0 {
			t.Errorf("cost %v: AddOn %v negative", fig.Points[i].X, add[i])
		}
	}
	// At trivial cost there is almost nothing to lose; mid-sweep the
	// gap is substantial.
	gapFirst := eff[0] - add[0]
	mid := len(fig.Points) / 2
	gapMid := eff[mid] - add[mid]
	if gapMid <= gapFirst {
		t.Errorf("efficiency gap should grow: first %v, mid %v", gapFirst, gapMid)
	}
}

// E2: same dominance for the substitutive mechanism against the exact
// subset-enumeration optimum.
func TestAblationE2Shape(t *testing.T) {
	fig := run(t, "E2", testEffort/3)
	eff := fig.Series(SeriesEfficientUtility)
	sub := fig.Series(SeriesSubstOnUtility)
	reg := fig.Series(SeriesRegretUtility)
	for i := range fig.Points {
		if eff[i] < sub[i]-1e-9 {
			t.Errorf("cost %v: bound %v below SubstOn %v", fig.Points[i].X, eff[i], sub[i])
		}
		if sub[i] < reg[i] {
			t.Errorf("cost %v: SubstOn %v below Regret %v", fig.Points[i].X, sub[i], reg[i])
		}
	}
}

// E3: value hiding collapses the naive strawman's utility while AddOn's
// truthful play dominates; under AddOn, hiding never beats truth.
func TestAblationE3Shape(t *testing.T) {
	fig := run(t, "E3", testEffort)
	addTruth := fig.Series(SeriesAddOnTruthful)
	addHide := fig.Series(SeriesAddOnHiding)
	naiveTruth := fig.Series(SeriesNaiveTruthful)
	naiveHide := fig.Series(SeriesNaiveHiding)
	var naiveDrops, addOnResists int
	for i := range fig.Points {
		if addHide[i] > addTruth[i]+1e-9 {
			t.Errorf("cost %v: hiding beat truth under AddOn (%v > %v)",
				fig.Points[i].X, addHide[i], addTruth[i])
		}
		if naiveHide[i] < naiveTruth[i]-1e-9 {
			naiveDrops++
		}
		if addTruth[i] >= naiveHide[i]-1e-9 {
			addOnResists++
		}
	}
	if naiveDrops < len(fig.Points)/2 {
		t.Errorf("hiding hurt the naive mechanism at only %d/%d costs",
			naiveDrops, len(fig.Points))
	}
	if addOnResists < len(fig.Points)*3/4 {
		t.Errorf("AddOn (truthful) beat gamed-naive at only %d/%d costs",
			addOnResists, len(fig.Points))
	}
}

func TestAblationValidation(t *testing.T) {
	if _, err := AblationEfficiencyAdditive(AblationConfig{}); err == nil {
		t.Error("empty config accepted by E1")
	}
	bad := AblationDefaults(1, 1)
	bad.NOpts = 25 // beyond exact-enumeration bound
	if _, err := AblationEfficiencySubstitutive(bad); err == nil {
		t.Error("oversized enumeration accepted by E2")
	}
	bad2 := AblationDefaults(1, 1)
	bad2.Duration = 0
	if _, err := AblationNaiveGaming(bad2); err == nil {
		t.Error("zero duration accepted by E3")
	}
}
