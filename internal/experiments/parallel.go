package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"

	"sharedopt/internal/stats"
)

// forEachIndex runs fn(i) for every i in [0, n) across up to
// runtime.GOMAXPROCS workers and returns the results in index order.
//
// This is the determinism backbone of the parallel experiment harness:
// each trial's randomness comes from its own RNG seeded deterministically
// from (master seed, trial index) before the fan-out, and the caller
// reduces the returned slice in index order, so floating-point summaries
// accumulate in exactly the same order as a sequential loop and the
// parallel run is bit-identical to it.
//
// If any fn returns an error, the error with the lowest index is returned
// (again matching what a sequential loop would have reported first).
func forEachIndex[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// trialSeeds derives one RNG seed per trial from the master seed. Seeds
// are drawn sequentially up front so that trial i's stream is a pure
// function of (seed, i), independent of how trials are later scheduled
// across workers.
func trialSeeds(seed uint64, trials int) []uint64 {
	master := stats.NewRNG(seed)
	out := make([]uint64, trials)
	for i := range out {
		out[i] = master.Uint64()
	}
	return out
}

// ForEachIndex exposes the deterministic parallel trial loop to the other
// experiment harnesses (internal/hypothesis). See forEachIndex.
func ForEachIndex[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	return forEachIndex(n, fn)
}

// TrialSeeds exposes the per-trial seed derivation to the other
// experiment harnesses. See trialSeeds.
func TrialSeeds(seed uint64, trials int) []uint64 {
	return trialSeeds(seed, trials)
}
