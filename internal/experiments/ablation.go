package experiments

import (
	"fmt"

	"sharedopt/internal/core"
	"sharedopt/internal/econ"
	"sharedopt/internal/simulate"
	"sharedopt/internal/stats"
	"sharedopt/internal/workload"
)

// Ablation experiments beyond the paper's figures. E1 and E2 quantify the
// efficiency loss the paper proves must exist (truthfulness +
// cost-recovery cannot be efficient, Section 3): they add the
// hindsight-optimal utility as an upper-bound series. E3 quantifies why
// the paper rejects the naive online adaptation (Example 2): it plays a
// value-hiding strategy profile against both the naive strawman and
// AddOn.

// Ablation series names.
const (
	SeriesEfficientUtility = "Efficient Utility (hindsight bound)"
	SeriesAddOnTruthful    = "AddOn (truthful)"
	SeriesAddOnHiding      = "AddOn (value-hiding)"
	SeriesNaiveTruthful    = "Naive (truthful)"
	SeriesNaiveHiding      = "Naive (value-hiding)"
)

// AblationConfig parameterizes the ablation sweeps; the defaults mirror
// Figure 2(a)'s small collaboration.
type AblationConfig struct {
	Users  int
	Slots  int
	Costs  []econ.Money
	Trials int
	Seed   uint64
	// Duration stretches each bid over multiple slots for E3, giving
	// users early value worth hiding (see workload.MultiSlot).
	Duration int
	// NOpts/SubsPerUser configure the substitutive ablation (E2).
	NOpts, SubsPerUser int
}

// AblationDefaults returns the Figure 2(a)-shaped configuration.
func AblationDefaults(trials int, seed uint64) AblationConfig {
	return AblationConfig{
		Users: 6, Slots: workload.DefaultSlots, Costs: SweepSmall,
		Trials: trials, Seed: seed, Duration: 4, NOpts: 12, SubsPerUser: 3,
	}
}

func (cfg AblationConfig) validate() error {
	if cfg.Users < 1 || cfg.Slots < 1 || cfg.Trials < 1 || len(cfg.Costs) == 0 {
		return fmt.Errorf("experiments: ablation: bad config %+v", cfg)
	}
	return nil
}

// AblationEfficiencyAdditive (figure id "E1") measures the efficiency
// loss of AddOn on the Figure 2(a) workload: mean AddOn utility vs the
// hindsight-optimal utility (implement exactly when total declared value
// covers cost) and the Regret baseline for reference.
func AblationEfficiencyAdditive(cfg AblationConfig) (*Figure, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "E1",
		Title:  "Efficiency loss of AddOn (additive, hindsight-optimal bound)",
		XLabel: "Optimization cost ($)",
		SeriesNames: []string{SeriesEfficientUtility, SeriesAddOnUtility,
			SeriesRegretUtility},
	}
	seeds := trialSeeds(cfg.Seed, cfg.Trials)
	type trial struct{ eff, mech, reg float64 }
	for _, cost := range cfg.Costs {
		results, err := forEachIndex(len(seeds), func(i int) (trial, error) {
			r := stats.NewRNG(seeds[i])
			sc := workload.Collaboration(r, cfg.Users, cfg.Slots, cost)
			m, err := simulate.RunAddOn(sc)
			if err != nil {
				return trial{}, err
			}
			g, err := simulate.RunRegretAdditive(sc)
			if err != nil {
				return trial{}, err
			}
			bound, err := efficientBoundAdditive(sc)
			if err != nil {
				return trial{}, err
			}
			return trial{bound.Dollars(), m.Utility().Dollars(), g.Utility().Dollars()}, nil
		})
		if err != nil {
			return nil, err
		}
		var eff, mech, reg stats.Summary
		for _, tr := range results {
			eff.Add(tr.eff)
			mech.Add(tr.mech)
			reg.Add(tr.reg)
		}
		fig.Add(cost.Dollars(), map[string]float64{
			SeriesEfficientUtility: eff.Mean(),
			SeriesAddOnUtility:     mech.Mean(),
			SeriesRegretUtility:    reg.Mean(),
		})
	}
	return fig, nil
}

func efficientBoundAdditive(sc simulate.AdditiveScenario) (econ.Money, error) {
	byOpt := make(map[core.OptID][]core.OnlineBid)
	for _, b := range sc.Bids {
		byOpt[b.Opt] = append(byOpt[b.Opt], core.OnlineBid{
			User: b.User, Start: b.Start, End: b.End, Values: b.Values,
		})
	}
	return core.EfficientAdditiveOnline(sc.Opts, byOpt)
}

// AblationEfficiencySubstitutive (figure id "E2") is E1 for the
// substitutive Figure 2(c) workload, with the exact subset-enumeration
// optimum as the bound.
func AblationEfficiencySubstitutive(cfg AblationConfig) (*Figure, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.NOpts < 1 || cfg.SubsPerUser < 1 || cfg.SubsPerUser > cfg.NOpts ||
		cfg.NOpts > core.EfficientSubstMaxOpts {
		return nil, fmt.Errorf("experiments: ablation: bad substitutive shape %d of %d",
			cfg.SubsPerUser, cfg.NOpts)
	}
	fig := &Figure{
		ID:     "E2",
		Title:  "Efficiency loss of SubstOn (substitutive, exact optimum bound)",
		XLabel: "Optimization cost ($)",
		SeriesNames: []string{SeriesEfficientUtility, SeriesSubstOnUtility,
			SeriesRegretUtility},
	}
	seeds := trialSeeds(cfg.Seed, cfg.Trials)
	type trial struct{ eff, mech, reg float64 }
	for _, cost := range cfg.Costs {
		results, err := forEachIndex(len(seeds), func(i int) (trial, error) {
			r := stats.NewRNG(seeds[i])
			sc := workload.Substitutes(r, cfg.Users, cfg.NOpts, cfg.SubsPerUser, cfg.Slots, cost)
			m, err := simulate.RunSubstOn(sc)
			if err != nil {
				return trial{}, err
			}
			g, err := simulate.RunRegretSubst(sc)
			if err != nil {
				return trial{}, err
			}
			var offline []core.SubstBid
			for _, b := range sc.Bids {
				var total econ.Money
				for _, v := range b.Values {
					total += v
				}
				offline = append(offline, core.SubstBid{User: b.User, Opts: b.Opts, Value: total})
			}
			bound, err := core.EfficientSubstitutive(sc.Opts, offline)
			if err != nil {
				return trial{}, err
			}
			return trial{bound.Dollars(), m.Utility().Dollars(), g.Utility().Dollars()}, nil
		})
		if err != nil {
			return nil, err
		}
		var eff, mech, reg stats.Summary
		for _, tr := range results {
			eff.Add(tr.eff)
			mech.Add(tr.mech)
			reg.Add(tr.reg)
		}
		fig.Add(cost.Dollars(), map[string]float64{
			SeriesEfficientUtility: eff.Mean(),
			SeriesSubstOnUtility:   mech.Mean(),
			SeriesRegretUtility:    reg.Mean(),
		})
	}
	return fig, nil
}

// AblationNaiveGaming (figure id "E3") plays the value-hiding strategy of
// Example 2 against both the naive online strawman and AddOn on a
// multi-slot workload: hiding collapses the naive mechanism's utility
// (nobody triggers, or one user overpays while the rest ride free) while
// AddOn makes hiding self-defeating, so its truthful series is the
// relevant one.
func AblationNaiveGaming(cfg AblationConfig) (*Figure, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Duration < 1 {
		return nil, fmt.Errorf("experiments: ablation: duration %d", cfg.Duration)
	}
	fig := &Figure{
		ID:     "E3",
		Title:  "Naive online strawman vs AddOn under value hiding",
		XLabel: "Optimization cost ($)",
		SeriesNames: []string{SeriesAddOnTruthful, SeriesAddOnHiding,
			SeriesNaiveTruthful, SeriesNaiveHiding},
	}
	seeds := trialSeeds(cfg.Seed, cfg.Trials)
	type trial struct{ addTruth, addHide, naiveTruth, naiveHide float64 }
	for _, cost := range cfg.Costs {
		results, err := forEachIndex(len(seeds), func(i int) (trial, error) {
			r := stats.NewRNG(seeds[i])
			truth := workload.MultiSlot(r, cfg.Users, cfg.Slots, cfg.Duration, cost)
			hiding := workload.HideToLastSlot(truth)

			at, err := simulate.RunAddOn(truth)
			if err != nil {
				return trial{}, err
			}
			ah, err := simulate.RunAddOnStrategic(hiding, truth)
			if err != nil {
				return trial{}, err
			}
			nt, err := simulate.RunNaive(truth)
			if err != nil {
				return trial{}, err
			}
			nh, err := simulate.RunNaiveStrategic(hiding, truth)
			if err != nil {
				return trial{}, err
			}
			return trial{at.Utility().Dollars(), ah.Utility().Dollars(),
				nt.Utility().Dollars(), nh.Utility().Dollars()}, nil
		})
		if err != nil {
			return nil, err
		}
		var addTruth, addHide, naiveTruth, naiveHide stats.Summary
		for _, tr := range results {
			addTruth.Add(tr.addTruth)
			addHide.Add(tr.addHide)
			naiveTruth.Add(tr.naiveTruth)
			naiveHide.Add(tr.naiveHide)
		}
		fig.Add(cost.Dollars(), map[string]float64{
			SeriesAddOnTruthful: addTruth.Mean(),
			SeriesAddOnHiding:   addHide.Mean(),
			SeriesNaiveTruthful: naiveTruth.Mean(),
			SeriesNaiveHiding:   naiveHide.Mean(),
		})
	}
	return fig, nil
}
