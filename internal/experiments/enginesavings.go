package experiments

import (
	"sync"

	"sharedopt/internal/astro"
	"sharedopt/internal/engine"
)

// savingsKey identifies one engine-derived savings measurement: the
// synthetic universe's full configuration plus the FoF clustering
// parameters. astro.Config is all scalars, so the key is comparable.
type savingsKey struct {
	universe   astro.Config
	linkLen    float64
	minMembers int
}

var (
	savingsMu    sync.Mutex
	savingsMemo  = map[savingsKey][][]int64{}
	savingsCalls int // measurement runs actually performed (for tests)
)

// measureSavingsCents measures the six astronomers' per-view savings on
// the configured synthetic universe and scales them to cents anchored at
// the paper's 18¢ final-snapshot saving. The measurement is deterministic
// in its parameters, so results are memoized per parameter set: a figure
// run that regenerates several engine-derived variants (1e, 4e — which
// share a universe) generates and measures once. Callers must not mutate
// the returned table.
func measureSavingsCents(universe astro.Config, linkLen float64, minMembers int) ([][]int64, error) {
	key := savingsKey{universe: universe, linkLen: linkLen, minMembers: minMembers}
	savingsMu.Lock()
	defer savingsMu.Unlock()
	if cents, ok := savingsMemo[key]; ok {
		return cents, nil
	}
	u, err := astro.Generate(universe)
	if err != nil {
		return nil, err
	}
	tr := astro.NewTracker(u, linkLen, minMembers)
	users, err := astro.DefaultUsers(tr, 2)
	if err != nil {
		return nil, err
	}
	report, err := astro.MeasureSavings(u, users, linkLen, minMembers,
		engine.DefaultCostModel())
	if err != nil {
		return nil, err
	}
	cents, err := report.DeriveSavingsCents(18)
	if err != nil {
		return nil, err
	}
	savingsMemo[key] = cents
	savingsCalls++
	return cents, nil
}
