package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"sharedopt/internal/astro"
	"sharedopt/internal/econ"
	"sharedopt/internal/engine"
	"sharedopt/internal/stats"
	"sharedopt/internal/workload"
)

// savingsKey identifies one engine-derived savings measurement: the
// synthetic universe's full configuration plus the FoF clustering
// parameters. astro.Config is all scalars, so the key is comparable.
type savingsKey struct {
	universe   astro.Config
	linkLen    float64
	minMembers int
}

// derivedBids is everything the engine-derived figure variants consume
// from one savings measurement, in the two shapes they need it:
//
//   - cents is the per-user, per-view savings table (cents per
//     execution) that the astronomy-game figures 1e and 4e feed to
//     workload.AstronomyDerived;
//   - pool is the same measurement flattened into an empirical user-value
//     distribution for the synthetic-game variants (2av–5bv): every
//     positive per-view saving becomes one pool entry, scaled so the pool
//     mean equals the $0.50 mean of the paper's uniform [0, $1) draws.
//     Keeping the mean pins the published cost sweeps to the same scale,
//     so the derived curves answer "what changes when values have the
//     measured shape" rather than "what changes when values shrink".
//
// Values are immutable once built; callers must not mutate them.
//
// userPools is the pool partitioned by measured user: userPools[u] holds
// user u's positive per-view savings under the same global rescaling as
// pool (the concatenation of userPools in user order is exactly pool).
// The global pool erases which astronomer produced each saving; the
// per-user pools preserve it, so scenarios can model tenant
// heterogeneity — one cheap-query user draws consistently small values,
// one full-trace user consistently large ones (see EngineUserPools).
type derivedBids struct {
	cents     [][]int64
	pool      []econ.Money
	userPools [][]econ.Money
}

// value draws one user value from the measured empirical distribution.
// It is a workload.ValueDist.
func (b *derivedBids) value(r *stats.RNG) econ.Money {
	return b.pool[r.Intn(len(b.pool))]
}

var (
	bidsMu       sync.Mutex
	bidsMemo     = map[savingsKey]*derivedBids{}
	savingsCalls int // measurement runs actually performed (for tests)
)

// engineBids measures the six astronomers' per-view savings on the
// configured synthetic universe and packages them as derivedBids. The
// measurement is deterministic in its parameters — including the worker
// count MeasureSavings fans out over — so results are memoized per
// parameter set: one figure-set run that regenerates every engine-derived
// variant (1e, 4e, 2av–5bv share a universe) generates and measures once.
func engineBids(universe astro.Config, linkLen float64, minMembers int) (*derivedBids, error) {
	key := savingsKey{universe: universe, linkLen: linkLen, minMembers: minMembers}
	bidsMu.Lock()
	defer bidsMu.Unlock()
	if bids, ok := bidsMemo[key]; ok {
		return bids, nil
	}
	u, err := astro.Generate(universe)
	if err != nil {
		return nil, err
	}
	tr := astro.NewTracker(u, linkLen, minMembers)
	users, err := astro.DefaultUsers(tr, 2)
	if err != nil {
		return nil, err
	}
	report, err := astro.MeasureSavingsParallel(u, users, linkLen, minMembers,
		engine.DefaultCostModel(), runtime.GOMAXPROCS(0))
	if err != nil {
		return nil, err
	}
	cents, err := report.DeriveSavingsCents(18)
	if err != nil {
		return nil, err
	}
	pool, userPools, err := valuePool(cents)
	if err != nil {
		return nil, err
	}
	bids := &derivedBids{cents: cents, pool: pool, userPools: userPools}
	bidsMemo[key] = bids
	savingsCalls++
	return bids, nil
}

// measureSavingsCents returns the per-user, per-view savings table of the
// configured measurement (the shape figures 1e and 4e consume). Callers
// must not mutate the returned table.
func measureSavingsCents(universe astro.Config, linkLen float64, minMembers int) ([][]int64, error) {
	bids, err := engineBids(universe, linkLen, minMembers)
	if err != nil {
		return nil, err
	}
	return bids.cents, nil
}

// valuePool flattens the positive entries of a savings table into an
// empirical value pool, scaled (with round-to-nearest) so the pool mean
// is exactly the paper's $0.50 expected user value up to rounding. Pool
// order is user-major, snapshot-minor, so the distribution a trial RNG
// indexes into is deterministic. Alongside the global pool it returns the
// same values partitioned by measured user under the same rescaling
// (users with no positive savings get an empty pool), preserving the
// per-user correlation structure the global pool erases.
func valuePool(cents [][]int64) ([]econ.Money, [][]econ.Money, error) {
	var n, sum int64
	for _, row := range cents {
		for _, c := range row {
			if c > 0 {
				n++
				sum += c
			}
		}
	}
	if n == 0 {
		return nil, nil, fmt.Errorf("experiments: measured savings table has no positive entries")
	}
	// pool[i] = vals[i] · (Dollar/2) / mean(vals), in exact integer
	// arithmetic: vals[i] · Dollar · n / (2 · sum), rounded to nearest.
	den := 2 * sum
	scale := func(c int64) econ.Money {
		return econ.Money((c*int64(econ.Dollar)*n + den/2) / den)
	}
	pool := make([]econ.Money, 0, n)
	userPools := make([][]econ.Money, len(cents))
	for u, row := range cents {
		for _, c := range row {
			if c > 0 {
				v := scale(c)
				pool = append(pool, v)
				userPools[u] = append(userPools[u], v)
			}
		}
	}
	return pool, userPools, nil
}

// EngineUserPools measures (or reuses the memoized measurement of) the
// shared engine-derived universe at the given seed and returns the
// per-user empirical value pools: one pool per measured astronomer,
// rescaled exactly like the global pool so their union has a $0.50 mean.
// Users whose queries saved nothing are dropped. The hypothesis harness
// draws correlated scenarios from these: a scenario user is bound to one
// measured user and takes every draw from that user's pool.
func EngineUserPools(seed uint64) ([][]econ.Money, error) {
	universe, linkLen, minMembers := engineUniverse(seed)
	bids, err := engineBids(universe, linkLen, minMembers)
	if err != nil {
		return nil, err
	}
	out := make([][]econ.Money, 0, len(bids.userPools))
	for _, p := range bids.userPools {
		if len(p) > 0 {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: no measured user has positive savings")
	}
	return out, nil
}

// DerivedConfig is the engine-derivation block embedded in every figure
// config. When EngineDerived is set, the figure prices from the savings
// measured by running the halo-tracking workload on the built-in query
// engine instead of the paper's published values: the astronomy-game
// figures (1e, 4e — Fig1Config, Fig4eConfig) consume the per-view cents
// table directly, while the synthetic-game figures (2av–5bv —
// Fig2Config–Fig5Config) draw user values from the empirical pool of
// measured savings rescaled to the uniform draw's $0.50 mean (see
// derivedBids). Universe, LinkLen and MinMembers configure the
// measurement; when EngineDerived is unset they are ignored.
type DerivedConfig struct {
	EngineDerived bool
	Universe      astro.Config
	LinkLen       float64
	MinMembers    int
}

// engine switches the block on with the shared measured-universe
// parameters (engineUniverse), so every derived figure variant hits the
// same memoized measurement.
func (c *DerivedConfig) engine(seed uint64) {
	c.EngineDerived = true
	c.Universe, c.LinkLen, c.MinMembers = engineUniverse(seed)
}

// valueDist resolves the config's value distribution: the uniform
// default, or the measured pool (derived reports which, so callers can
// mark their figure titles).
func (c DerivedConfig) valueDist() (value workload.ValueDist, derived bool, err error) {
	if !c.EngineDerived {
		return workload.UniformValue, false, nil
	}
	bids, err := engineBids(c.Universe, c.LinkLen, c.MinMembers)
	if err != nil {
		return nil, false, err
	}
	return bids.value, true, nil
}

// engineUniverse is the universe configuration shared by every
// engine-derived figure variant: compact enough that CI's determinism
// gate measures it in seconds, large enough to preserve the paper's cost
// shape (full-trace users cost more, the final snapshot's view dominates).
// Sharing one configuration means a full -derived sweep pays for a single
// generation + measurement (memoized in engineBids).
func engineUniverse(seed uint64) (universe astro.Config, linkLen float64, minMembers int) {
	universe = astro.DefaultConfig()
	universe.Particles = 1200
	universe.Halos = 8
	universe.Snapshots = 13 // smallest count preserving the cost shape
	universe.Seed = seed
	return universe, 2.5, 5
}
