package experiments

import (
	"fmt"

	"sharedopt/internal/econ"
	"sharedopt/internal/simulate"
	"sharedopt/internal/stats"
	"sharedopt/internal/workload"
)

// Figure 4e is the engine-derived twin of the arrival-skew experiment:
// instead of Figure 4's synthetic single-optimization game with values
// drawn uniformly at random, the players are the six astronomers whose
// per-view values come out of astro.MeasureSavings — the halo-tracking
// workload actually executed on the metered engine — and "arrival"
// means the quarter in which an astronomer's subscription span starts,
// drawn from the paper's uniform/early/late processes. The x axis sweeps
// the per-view yearly cost (replacing the measured $2.31), and the y
// values are, as in Figure 4, each setting's mean utility as a ratio to
// the Early-AddOn mean at that cost.
//
// The variant is opt-in by figure ID ("4e"), so the published figures'
// CSVs are untouched; it shares its universe configuration with Figure
// 1e, so one figure-set run measures the savings once (memoized in
// measureSavingsCents).

// Fig4eConfig parameterizes the engine-derived arrival-skew experiment.
type Fig4eConfig struct {
	// Executions is how many times each astronomer executes her workload
	// (fixed; Figure 1 sweeps it, this figure sweeps the view cost).
	Executions int
	// Costs is the x axis: the per-view yearly cost.
	Costs []econ.Money
	// Trials is the number of sampled span assignments per (arrival,
	// cost) combination.
	Trials int
	// Seed makes the run reproducible.
	Seed uint64
	// DerivedConfig configures the savings measurement (shared with
	// Figure 1e so the memoized measurement is reused). Figure 4e is
	// always engine-derived; the flag is implied.
	DerivedConfig
}

// Fig4eDefaultConfig returns the default engine-derived arrival-skew
// configuration: Figure 4's cost sweep and arrival processes over Figure
// 1e's measured universe, at 50 executions per user (the middle of
// Figure 1's sweep).
func Fig4eDefaultConfig(trials int, seed uint64) Fig4eConfig {
	base := Fig1EngineConfig(1, seed)
	return Fig4eConfig{
		Executions:    50,
		Costs:         SweepSkew,
		Trials:        trials,
		Seed:          seed,
		DerivedConfig: base.DerivedConfig,
	}
}

// Fig4e runs the engine-derived arrival-skew experiment.
func Fig4e(cfg Fig4eConfig) (*Figure, error) {
	if cfg.Executions < 1 || cfg.Trials < 1 || len(cfg.Costs) == 0 {
		return nil, fmt.Errorf("experiments: fig4e: bad config %+v", cfg)
	}
	cents, err := measureSavingsCents(cfg.Universe, cfg.LinkLen, cfg.MinMembers)
	if err != nil {
		return nil, err
	}
	arrivals := []struct {
		proc   stats.ArrivalProcess
		mech   string
		regret string
	}{
		{stats.ArrivalUniform, SeriesUniformAddOn, SeriesUniformRegret},
		{stats.ArrivalEarly, SeriesEarlyAddOn, SeriesEarlyRegret},
		{stats.ArrivalLate, SeriesLateAddOn, SeriesLateRegret},
	}
	order := []string{
		SeriesUniformAddOn, SeriesUniformRegret,
		SeriesEarlyAddOn, SeriesEarlyRegret,
		SeriesLateAddOn, SeriesLateRegret,
	}
	fig := &Figure{
		ID:          "4e",
		Title:       "Arrival skew with engine-derived astronomy savings (ratio to Early-AddOn)",
		XLabel:      "Cost of one view per year ($)",
		SeriesNames: order,
	}
	seeds := trialSeeds(cfg.Seed, cfg.Trials)
	type trial struct{ mech, reg float64 }
	for _, cost := range cfg.Costs {
		means := make(map[string]float64, len(order))
		for _, a := range arrivals {
			results, err := forEachIndex(len(seeds), func(i int) (trial, error) {
				r := stats.NewRNG(seeds[i])
				var spans [workload.AstroUsers]workload.QuarterSpan
				for u := range spans {
					// The subscription starts at the arrival quarter and
					// runs a uniform number of the remaining quarters.
					start := a.proc.Arrival(r, workload.AstroQuarters)
					spans[u] = workload.QuarterSpan{
						Start: start,
						Len:   1 + r.Intn(workload.AstroQuarters-start+1),
					}
				}
				sc := workload.AstronomyDerived(cents, spans, cfg.Executions, cost)
				m, err := simulate.RunAddOn(sc)
				if err != nil {
					return trial{}, err
				}
				g, err := simulate.RunRegretAdditive(sc)
				if err != nil {
					return trial{}, err
				}
				return trial{m.Utility().Dollars(), g.Utility().Dollars()}, nil
			})
			if err != nil {
				return nil, err
			}
			var mech, reg stats.Summary
			for _, tr := range results {
				mech.Add(tr.mech)
				reg.Add(tr.reg)
			}
			means[a.mech] = mech.Mean()
			means[a.regret] = reg.Mean()
		}
		denom := means[SeriesEarlyAddOn]
		vals := make(map[string]float64, len(order))
		for _, name := range order {
			if denom != 0 {
				vals[name] = means[name] / denom
			} else {
				vals[name] = 0
			}
		}
		fig.Add(cost.Dollars(), vals)
	}
	return fig, nil
}
