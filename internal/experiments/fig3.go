package experiments

import (
	"fmt"
	"strings"

	"sharedopt/internal/econ"
	"sharedopt/internal/simulate"
	"sharedopt/internal/stats"
	"sharedopt/internal/workload"
)

// SeriesAdvantage is the y series of Figure 3: AddOn's mean utility minus
// Regret's mean utility.
const SeriesAdvantage = "AddOn utility minus Regret utility"

// Fig3Config parameterizes the usage-overlap experiment of Section 7.4
// (Figures 3(a) and 3(b)).
type Fig3Config struct {
	// ID is "3a" (vary total slots, single-slot bids) or "3b" (vary bid
	// duration over a fixed 12-slot base).
	ID string
	// Users is the collaboration size (6 in the paper).
	Users int
	// MaxX is the largest x value (12 in the paper): slot counts 1..MaxX
	// for 3(a), durations 1..MaxX for 3(b).
	MaxX int
	// Costs is the sweep averaged over at each x (Figure 2(a)'s sweep).
	Costs []econ.Money
	// Trials per (x, cost) combination.
	Trials int
	// Seed makes the run reproducible.
	Seed uint64
	// DerivedConfig optionally swaps the uniform user values for the
	// engine-measured distribution (IDs "3av"/"3bv"; see
	// enginesavings.go).
	DerivedConfig
}

// Fig3aConfig returns the published Figure 3(a) configuration.
func Fig3aConfig(trials int, seed uint64) Fig3Config {
	return Fig3Config{ID: "3a", Users: 6, MaxX: workload.DefaultSlots,
		Costs: SweepSmall, Trials: trials, Seed: seed}
}

// Fig3bConfig returns the published Figure 3(b) configuration.
func Fig3bConfig(trials int, seed uint64) Fig3Config {
	return Fig3Config{ID: "3b", Users: 6, MaxX: workload.DefaultSlots,
		Costs: SweepSmall, Trials: trials, Seed: seed}
}

// fig3Engine turns a published Figure 3 configuration into its
// engine-derived twin (ID suffix "v").
func fig3Engine(cfg Fig3Config) Fig3Config {
	cfg.ID += "v"
	cfg.engine(cfg.Seed)
	return cfg
}

// Fig3aEngineConfig returns Figure 3(a)'s engine-derived variant ("3av").
func Fig3aEngineConfig(trials int, seed uint64) Fig3Config {
	return fig3Engine(Fig3aConfig(trials, seed))
}

// Fig3bEngineConfig returns Figure 3(b)'s engine-derived variant ("3bv").
func Fig3bEngineConfig(trials int, seed uint64) Fig3Config {
	return fig3Engine(Fig3bConfig(trials, seed))
}

// Fig3 runs the usage-overlap experiment. For 3(a) it shrinks the number
// of available slots from MaxX down to 1 with single-slot bids — more
// overlap on the left of the paper's figure means a larger AddOn
// advantage. For 3(b) it stretches each bid across d contiguous slots,
// splitting the user's value evenly. The y value at each x is the mean of
// (AddOn utility − Regret utility) over the cost sweep and all trials.
func Fig3(cfg Fig3Config) (*Figure, error) {
	if cfg.Users < 1 || cfg.MaxX < 1 || cfg.Trials < 1 || len(cfg.Costs) == 0 {
		return nil, fmt.Errorf("experiments: fig3: bad config %+v", cfg)
	}
	// The engine-derived twins keep the base variant's mechanics; only
	// the value distribution changes.
	variant := strings.TrimSuffix(cfg.ID, "v")
	if variant != "3a" && variant != "3b" {
		return nil, fmt.Errorf("experiments: fig3: unknown variant %q", cfg.ID)
	}
	xLabel := "Number of time slots available"
	title := "AddOn advantage vs available slots (single-slot bids)"
	if variant == "3b" {
		xLabel = "Duration of slots serviced"
		title = "AddOn advantage vs bid duration (value spread evenly)"
	}
	value, derived, err := cfg.valueDist()
	if err != nil {
		return nil, err
	}
	if derived {
		title += " (engine-derived values)"
	}
	fig := &Figure{ID: cfg.ID, Title: title, XLabel: xLabel,
		SeriesNames: []string{SeriesAdvantage}}

	seeds := trialSeeds(cfg.Seed, cfg.Trials)
	for x := 1; x <= cfg.MaxX; x++ {
		// One parallel sweep over the whole (cost, trial) grid at this
		// x; the reduction below walks results in the sequential
		// cost-major, trial-minor order, so means are bit-identical.
		results, err := forEachIndex(len(cfg.Costs)*len(seeds), func(i int) (float64, error) {
			cost := cfg.Costs[i/len(seeds)]
			r := stats.NewRNG(seeds[i%len(seeds)])
			var sc simulate.AdditiveScenario
			if variant == "3a" {
				sc = workload.CollaborationDist(r, cfg.Users, x, cost, value)
			} else {
				sc = workload.MultiSlotDist(r, cfg.Users, workload.DefaultSlots, x, cost, value)
			}
			m, err := simulate.RunAddOn(sc)
			if err != nil {
				return 0, err
			}
			g, err := simulate.RunRegretAdditive(sc)
			if err != nil {
				return 0, err
			}
			return m.Utility().Dollars() - g.Utility().Dollars(), nil
		})
		if err != nil {
			return nil, err
		}
		var adv stats.Summary
		for _, d := range results {
			adv.Add(d)
		}
		fig.Add(float64(x), map[string]float64{SeriesAdvantage: adv.Mean()})
	}
	return fig, nil
}
