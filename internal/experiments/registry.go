package experiments

import (
	"fmt"
	"sort"
)

// Runner regenerates one figure with the given effort (trials for the
// simulated figures, samples for Figure 1) and seed.
type Runner func(effort int, seed uint64) (*Figure, error)

// Registry maps figure IDs to their runners.
var Registry = map[string]Runner{
	"1": func(effort int, seed uint64) (*Figure, error) {
		return Fig1(Fig1DefaultConfig(effort, seed))
	},
	"1e": func(effort int, seed uint64) (*Figure, error) {
		return Fig1(Fig1EngineConfig(effort, seed))
	},
	"2a": func(effort int, seed uint64) (*Figure, error) {
		return Fig2(Fig2aConfig(effort, seed))
	},
	"2b": func(effort int, seed uint64) (*Figure, error) {
		return Fig2(Fig2bConfig(effort, seed))
	},
	"2c": func(effort int, seed uint64) (*Figure, error) {
		return Fig2(Fig2cConfig(effort, seed))
	},
	"2d": func(effort int, seed uint64) (*Figure, error) {
		return Fig2(Fig2dConfig(effort, seed))
	},
	"3a": func(effort int, seed uint64) (*Figure, error) {
		return Fig3(Fig3aConfig(effort, seed))
	},
	"3b": func(effort int, seed uint64) (*Figure, error) {
		return Fig3(Fig3bConfig(effort, seed))
	},
	"4": func(effort int, seed uint64) (*Figure, error) {
		fig, _, err := Fig4(Fig4DefaultConfig(effort, seed))
		return fig, err
	},
	"4e": func(effort int, seed uint64) (*Figure, error) {
		return Fig4e(Fig4eDefaultConfig(effort, seed))
	},
	"5a": func(effort int, seed uint64) (*Figure, error) {
		return Fig5(Fig5aConfig(effort, seed))
	},
	"5b": func(effort int, seed uint64) (*Figure, error) {
		return Fig5(Fig5bConfig(effort, seed))
	},
	"E1": func(effort int, seed uint64) (*Figure, error) {
		return AblationEfficiencyAdditive(AblationDefaults(effort, seed))
	},
	"E2": func(effort int, seed uint64) (*Figure, error) {
		return AblationEfficiencySubstitutive(AblationDefaults(effort, seed))
	},
	"E3": func(effort int, seed uint64) (*Figure, error) {
		return AblationNaiveGaming(AblationDefaults(effort, seed))
	},
}

// FigureIDs returns the registry's keys in display order.
func FigureIDs() []string {
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run regenerates one figure by ID.
func Run(id string, effort int, seed uint64) (*Figure, error) {
	runner, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown figure %q (have %v)", id, FigureIDs())
	}
	return runner(effort, seed)
}
