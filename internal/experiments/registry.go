package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Runner regenerates one figure with the given effort (trials for the
// simulated figures, samples for Figure 1) and seed.
type Runner func(effort int, seed uint64) (*Figure, error)

// Registry maps figure IDs to their runners.
//
// ID conventions: bare IDs ("1", "2a", ... "5b") are the paper's
// published figures; the "e" suffix ("1e", "4e") marks variants whose
// whole game is the astronomy workload measured on the query engine;
// the "v" suffix ("2av" ... "5bv") marks variants that keep the paper's
// synthetic game but draw user values from the engine-measured savings
// distribution; "E1"–"E3" are this repo's ablation figures.
var Registry = map[string]Runner{
	"1": func(effort int, seed uint64) (*Figure, error) {
		return Fig1(Fig1DefaultConfig(effort, seed))
	},
	"1e": func(effort int, seed uint64) (*Figure, error) {
		return Fig1(Fig1EngineConfig(effort, seed))
	},
	"2a": func(effort int, seed uint64) (*Figure, error) {
		return Fig2(Fig2aConfig(effort, seed))
	},
	"2av": func(effort int, seed uint64) (*Figure, error) {
		return Fig2(Fig2aEngineConfig(effort, seed))
	},
	"2b": func(effort int, seed uint64) (*Figure, error) {
		return Fig2(Fig2bConfig(effort, seed))
	},
	"2bv": func(effort int, seed uint64) (*Figure, error) {
		return Fig2(Fig2bEngineConfig(effort, seed))
	},
	"2c": func(effort int, seed uint64) (*Figure, error) {
		return Fig2(Fig2cConfig(effort, seed))
	},
	"2cv": func(effort int, seed uint64) (*Figure, error) {
		return Fig2(Fig2cEngineConfig(effort, seed))
	},
	"2d": func(effort int, seed uint64) (*Figure, error) {
		return Fig2(Fig2dConfig(effort, seed))
	},
	"2dv": func(effort int, seed uint64) (*Figure, error) {
		return Fig2(Fig2dEngineConfig(effort, seed))
	},
	"3a": func(effort int, seed uint64) (*Figure, error) {
		return Fig3(Fig3aConfig(effort, seed))
	},
	"3av": func(effort int, seed uint64) (*Figure, error) {
		return Fig3(Fig3aEngineConfig(effort, seed))
	},
	"3b": func(effort int, seed uint64) (*Figure, error) {
		return Fig3(Fig3bConfig(effort, seed))
	},
	"3bv": func(effort int, seed uint64) (*Figure, error) {
		return Fig3(Fig3bEngineConfig(effort, seed))
	},
	"4": func(effort int, seed uint64) (*Figure, error) {
		fig, _, err := Fig4(Fig4DefaultConfig(effort, seed))
		return fig, err
	},
	"4e": func(effort int, seed uint64) (*Figure, error) {
		return Fig4e(Fig4eDefaultConfig(effort, seed))
	},
	"4v": func(effort int, seed uint64) (*Figure, error) {
		fig, _, err := Fig4(Fig4EngineConfig(effort, seed))
		return fig, err
	},
	"5a": func(effort int, seed uint64) (*Figure, error) {
		return Fig5(Fig5aConfig(effort, seed))
	},
	"5av": func(effort int, seed uint64) (*Figure, error) {
		return Fig5(Fig5aEngineConfig(effort, seed))
	},
	"5b": func(effort int, seed uint64) (*Figure, error) {
		return Fig5(Fig5bConfig(effort, seed))
	},
	"5bv": func(effort int, seed uint64) (*Figure, error) {
		return Fig5(Fig5bEngineConfig(effort, seed))
	},
	"E1": func(effort int, seed uint64) (*Figure, error) {
		return AblationEfficiencyAdditive(AblationDefaults(effort, seed))
	},
	"E2": func(effort int, seed uint64) (*Figure, error) {
		return AblationEfficiencySubstitutive(AblationDefaults(effort, seed))
	},
	"E3": func(effort int, seed uint64) (*Figure, error) {
		return AblationNaiveGaming(AblationDefaults(effort, seed))
	},
}

// FigureIDs returns the registry's keys in display order.
func FigureIDs() []string {
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// DerivedFigureIDs returns, in display order, every figure whose bids
// come out of the engine-measured savings rather than the paper's
// published constants or uniform draws — the set `cmd/experiments
// -derived` sweeps. All of them share one memoized universe measurement
// per (universe, FoF parameters) set, so the sweep generates and
// measures the synthetic universe once.
func DerivedFigureIDs() []string {
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		if strings.HasSuffix(id, "e") || strings.HasSuffix(id, "v") {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// Run regenerates one figure by ID.
func Run(id string, effort int, seed uint64) (*Figure, error) {
	runner, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown figure %q (have %v)", id, FigureIDs())
	}
	return runner(effort, seed)
}
