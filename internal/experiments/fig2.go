package experiments

import (
	"fmt"

	"sharedopt/internal/econ"
	"sharedopt/internal/simulate"
	"sharedopt/internal/stats"
	"sharedopt/internal/workload"
)

// Series names shared by the cost-sweep figures.
const (
	SeriesAddOnUtility   = "AddOn Utility"
	SeriesSubstOnUtility = "SubstOn Utility"
	SeriesRegretUtility  = "Regret Utility"
	SeriesRegretBalance  = "Regret Balance"
)

// Fig2Config parameterizes the collaboration-size experiment of
// Section 7.3 (Figures 2(a)–2(d)).
type Fig2Config struct {
	// ID is the sub-figure label ("2a" ... "2d").
	ID string
	// Users is the collaboration size: 6 (small) or 24 (large).
	Users int
	// Slots is the number of time slots (12 in the paper).
	Slots int
	// Substitutive selects the substitutive variant (2(c)/2(d)).
	Substitutive bool
	// NOpts and SubsPerUser configure the substitutive variant: each
	// user picks SubsPerUser substitutes from NOpts optimizations.
	NOpts, SubsPerUser int
	// Costs is the x axis: the per-optimization cost (additive) or the
	// mean optimization cost (substitutive).
	Costs []econ.Money
	// Trials is the number of random scenarios averaged per cost.
	Trials int
	// Seed makes the run reproducible.
	Seed uint64
	// DerivedConfig optionally swaps the uniform user values for the
	// engine-measured distribution (see enginesavings.go).
	DerivedConfig
}

// Fig2aConfig returns the published configuration of Figure 2(a):
// additive optimization, small collaboration of 6 users.
func Fig2aConfig(trials int, seed uint64) Fig2Config {
	return Fig2Config{ID: "2a", Users: 6, Slots: workload.DefaultSlots,
		Costs: SweepSmall, Trials: trials, Seed: seed}
}

// Fig2bConfig returns Figure 2(b): additive, large collaboration of 24.
func Fig2bConfig(trials int, seed uint64) Fig2Config {
	return Fig2Config{ID: "2b", Users: 24, Slots: workload.DefaultSlots,
		Costs: SweepLarge, Trials: trials, Seed: seed}
}

// Fig2cConfig returns Figure 2(c): substitutive, 6 users choosing 3 of 12.
func Fig2cConfig(trials int, seed uint64) Fig2Config {
	return Fig2Config{ID: "2c", Users: 6, Slots: workload.DefaultSlots,
		Substitutive: true, NOpts: 12, SubsPerUser: 3,
		Costs: SweepSmall, Trials: trials, Seed: seed}
}

// Fig2dConfig returns Figure 2(d): substitutive, 24 users choosing 3 of 12.
func Fig2dConfig(trials int, seed uint64) Fig2Config {
	return Fig2Config{ID: "2d", Users: 24, Slots: workload.DefaultSlots,
		Substitutive: true, NOpts: 12, SubsPerUser: 3,
		Costs: SweepLarge, Trials: trials, Seed: seed}
}

// fig2Engine turns a published Figure 2 configuration into its
// engine-derived twin: ID suffix "v" (derived values), user values drawn
// from the shared measured universe.
func fig2Engine(cfg Fig2Config) Fig2Config {
	cfg.ID += "v"
	cfg.engine(cfg.Seed)
	return cfg
}

// Fig2aEngineConfig returns Figure 2(a)'s engine-derived variant ("2av").
func Fig2aEngineConfig(trials int, seed uint64) Fig2Config {
	return fig2Engine(Fig2aConfig(trials, seed))
}

// Fig2bEngineConfig returns Figure 2(b)'s engine-derived variant ("2bv").
func Fig2bEngineConfig(trials int, seed uint64) Fig2Config {
	return fig2Engine(Fig2bConfig(trials, seed))
}

// Fig2cEngineConfig returns Figure 2(c)'s engine-derived variant ("2cv").
func Fig2cEngineConfig(trials int, seed uint64) Fig2Config {
	return fig2Engine(Fig2cConfig(trials, seed))
}

// Fig2dEngineConfig returns Figure 2(d)'s engine-derived variant ("2dv").
func Fig2dEngineConfig(trials int, seed uint64) Fig2Config {
	return fig2Engine(Fig2dConfig(trials, seed))
}

// Fig2 runs the collaboration-size experiment: total utility of the online
// mechanism and of the Regret baseline (plus Regret's cloud balance) as a
// function of optimization cost. Common random numbers are used across the
// cost sweep: trial i replays the same user draws at every cost, so series
// differences reflect the cost, not sampling noise. Trials run across all
// cores; results are reduced in trial order, so the output is bit-identical
// to a sequential run (see forEachIndex).
func Fig2(cfg Fig2Config) (*Figure, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	mechSeries := SeriesAddOnUtility
	if cfg.Substitutive {
		mechSeries = SeriesSubstOnUtility
	}
	kind := "additive"
	if cfg.Substitutive {
		kind = "substitutive"
	}
	value, derived, err := cfg.valueDist()
	if err != nil {
		return nil, err
	}
	if derived {
		kind += ", engine-derived values"
	}
	fig := &Figure{
		ID: cfg.ID,
		Title: fmt.Sprintf("Total utility vs optimization cost (%s, %d users, %d slots)",
			kind, cfg.Users, cfg.Slots),
		XLabel:      "Optimization cost ($)",
		SeriesNames: []string{mechSeries, SeriesRegretUtility, SeriesRegretBalance},
	}
	seeds := trialSeeds(cfg.Seed, cfg.Trials)
	type trial struct{ mech, regU, regB float64 }
	for _, cost := range cfg.Costs {
		results, err := forEachIndex(len(seeds), func(i int) (trial, error) {
			r := stats.NewRNG(seeds[i])
			if cfg.Substitutive {
				sc := workload.SubstitutesDist(r, cfg.Users, cfg.NOpts, cfg.SubsPerUser, cfg.Slots, cost, value)
				m, err := simulate.RunSubstOn(sc)
				if err != nil {
					return trial{}, err
				}
				g, err := simulate.RunRegretSubst(sc)
				if err != nil {
					return trial{}, err
				}
				return trial{m.Utility().Dollars(), g.Utility().Dollars(), g.Balance().Dollars()}, nil
			}
			sc := workload.CollaborationDist(r, cfg.Users, cfg.Slots, cost, value)
			m, err := simulate.RunAddOn(sc)
			if err != nil {
				return trial{}, err
			}
			g, err := simulate.RunRegretAdditive(sc)
			if err != nil {
				return trial{}, err
			}
			return trial{m.Utility().Dollars(), g.Utility().Dollars(), g.Balance().Dollars()}, nil
		})
		if err != nil {
			return nil, err
		}
		var mech, regU, regB stats.Summary
		for _, tr := range results {
			mech.Add(tr.mech)
			regU.Add(tr.regU)
			regB.Add(tr.regB)
		}
		fig.Add(cost.Dollars(), map[string]float64{
			mechSeries:          mech.Mean(),
			SeriesRegretUtility: regU.Mean(),
			SeriesRegretBalance: regB.Mean(),
		})
	}
	return fig, nil
}

func (cfg Fig2Config) validate() error {
	if cfg.Users < 1 {
		return fmt.Errorf("experiments: fig2: users %d < 1", cfg.Users)
	}
	if cfg.Slots < 1 {
		return fmt.Errorf("experiments: fig2: slots %d < 1", cfg.Slots)
	}
	if cfg.Trials < 1 {
		return fmt.Errorf("experiments: fig2: trials %d < 1", cfg.Trials)
	}
	if len(cfg.Costs) == 0 {
		return fmt.Errorf("experiments: fig2: empty cost sweep")
	}
	if cfg.Substitutive && (cfg.NOpts < 1 || cfg.SubsPerUser < 1 || cfg.SubsPerUser > cfg.NOpts) {
		return fmt.Errorf("experiments: fig2: bad substitutive shape %d of %d",
			cfg.SubsPerUser, cfg.NOpts)
	}
	return nil
}
