package experiments

import (
	"fmt"

	"sharedopt/internal/econ"
	"sharedopt/internal/simulate"
	"sharedopt/internal/stats"
	"sharedopt/internal/workload"
)

// Figure 4's six series: {arrival process} × {mechanism, baseline},
// plotted as ratios to the Early-AddOn utility.
const (
	SeriesUniformAddOn  = "Uniform-AddOn"
	SeriesUniformRegret = "Uniform-Regret"
	SeriesEarlyAddOn    = "Early-AddOn"
	SeriesEarlyRegret   = "Early-Regret"
	SeriesLateAddOn     = "Late-AddOn"
	SeriesLateRegret    = "Late-Regret"
)

// Fig4Config parameterizes the arrival-skew experiment of Section 7.5.
type Fig4Config struct {
	// Users is the collaboration size (6 in the paper).
	Users int
	// Slots is the number of time slots (12 in the paper).
	Slots int
	// Costs is the x axis (0.03 to 1.71 step 0.12 in the paper).
	Costs []econ.Money
	// Trials per (arrival, cost) combination.
	Trials int
	// Seed makes the run reproducible.
	Seed uint64
	// DerivedConfig optionally swaps the uniform user values for the
	// engine-measured distribution (ID "4v"). This is a different
	// derivation than Figure 4e, which replaces the whole synthetic
	// game with the measured astronomy scenario; "4v" keeps Figure 4's
	// game and swaps only the value distribution.
	DerivedConfig
}

// Fig4DefaultConfig returns the published Figure 4 configuration.
func Fig4DefaultConfig(trials int, seed uint64) Fig4Config {
	return Fig4Config{Users: 6, Slots: workload.DefaultSlots,
		Costs: SweepSkew, Trials: trials, Seed: seed}
}

// Fig4EngineConfig returns Figure 4's engine-derived-values variant
// ("4v").
func Fig4EngineConfig(trials int, seed uint64) Fig4Config {
	cfg := Fig4DefaultConfig(trials, seed)
	cfg.engine(seed)
	return cfg
}

// Fig4Raw holds the mean utilities (in dollars) for every arrival process
// and approach at each cost, before the ratio normalization the paper
// plots. Tests and the EXPERIMENTS.md shape checks use the raw values.
type Fig4Raw struct {
	Costs []econ.Money
	// Mean[series][i] is the mean utility at Costs[i].
	Mean map[string][]float64
}

// Fig4 runs the arrival-skew experiment and returns the paper's figure:
// at every cost, each setting's mean utility divided by the Early-AddOn
// mean utility at that cost. The raw means are returned alongside.
func Fig4(cfg Fig4Config) (*Figure, *Fig4Raw, error) {
	if cfg.Users < 1 || cfg.Slots < 1 || cfg.Trials < 1 || len(cfg.Costs) == 0 {
		return nil, nil, fmt.Errorf("experiments: fig4: bad config %+v", cfg)
	}
	id, title := "4", "Effect of arrival skew on utility (ratio to Early-AddOn)"
	value, derived, err := cfg.valueDist()
	if err != nil {
		return nil, nil, err
	}
	if derived {
		id, title = "4v", title+" (engine-derived values)"
	}
	arrivals := []struct {
		proc   stats.ArrivalProcess
		mech   string
		regret string
	}{
		{stats.ArrivalUniform, SeriesUniformAddOn, SeriesUniformRegret},
		{stats.ArrivalEarly, SeriesEarlyAddOn, SeriesEarlyRegret},
		{stats.ArrivalLate, SeriesLateAddOn, SeriesLateRegret},
	}
	order := []string{
		SeriesUniformAddOn, SeriesUniformRegret,
		SeriesEarlyAddOn, SeriesEarlyRegret,
		SeriesLateAddOn, SeriesLateRegret,
	}
	raw := &Fig4Raw{Costs: cfg.Costs, Mean: make(map[string][]float64, len(order))}
	for _, name := range order {
		raw.Mean[name] = make([]float64, len(cfg.Costs))
	}
	seeds := trialSeeds(cfg.Seed, cfg.Trials)
	type trial struct{ mech, reg float64 }
	for ci, cost := range cfg.Costs {
		for _, a := range arrivals {
			results, err := forEachIndex(len(seeds), func(i int) (trial, error) {
				r := stats.NewRNG(seeds[i])
				sc := workload.SkewedDist(r, cfg.Users, cfg.Slots, cost, a.proc, value)
				m, err := simulate.RunAddOn(sc)
				if err != nil {
					return trial{}, err
				}
				g, err := simulate.RunRegretAdditive(sc)
				if err != nil {
					return trial{}, err
				}
				return trial{m.Utility().Dollars(), g.Utility().Dollars()}, nil
			})
			if err != nil {
				return nil, nil, err
			}
			var mech, reg stats.Summary
			for _, tr := range results {
				mech.Add(tr.mech)
				reg.Add(tr.reg)
			}
			raw.Mean[a.mech][ci] = mech.Mean()
			raw.Mean[a.regret][ci] = reg.Mean()
		}
	}
	fig := &Figure{
		ID:          id,
		Title:       title,
		XLabel:      "Cost of optimization ($)",
		SeriesNames: order,
	}
	for ci, cost := range cfg.Costs {
		denom := raw.Mean[SeriesEarlyAddOn][ci]
		vals := make(map[string]float64, len(order))
		for _, name := range order {
			if denom != 0 {
				vals[name] = raw.Mean[name][ci] / denom
			} else {
				vals[name] = 0
			}
		}
		fig.Add(cost.Dollars(), vals)
	}
	return fig, raw, nil
}
