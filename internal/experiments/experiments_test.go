package experiments

import (
	"strings"
	"testing"

	"sharedopt/internal/econ"
)

// Effort used by the shape tests: enough trials for the paper's
// qualitative claims to hold robustly under the fixed seed, small enough
// to keep the test suite fast.
const testEffort = 150

const testSeed = 42

func run(t *testing.T, id string, effort int) *Figure {
	t.Helper()
	fig, err := Run(id, effort, testSeed)
	if err != nil {
		t.Fatalf("figure %s: %v", id, err)
	}
	if len(fig.Points) == 0 {
		t.Fatalf("figure %s: no points", id)
	}
	return fig
}

// Figure 2(a) shape (paper Section 7.3.1): AddOn's utility is never
// negative; Regret's turns negative past a crossover; Regret's balance is
// never positive and eventually shows a real loss; on Regret's positive
// range AddOn averages at least as much utility.
func TestFig2aShape(t *testing.T) {
	fig := run(t, "2a", testEffort)
	addOn := fig.Series(SeriesAddOnUtility)
	reg := fig.Series(SeriesRegretUtility)
	bal := fig.Series(SeriesRegretBalance)

	var regretWentNegative, regretLoss bool
	var addOnSum, regSum float64
	var posCount int
	for i := range fig.Points {
		if addOn[i] < 0 {
			t.Errorf("cost %v: AddOn utility %v < 0", fig.Points[i].X, addOn[i])
		}
		if bal[i] > 1e-9 {
			t.Errorf("cost %v: Regret balance %v > 0", fig.Points[i].X, bal[i])
		}
		if reg[i] < 0 {
			regretWentNegative = true
		}
		if bal[i] < -0.1 {
			regretLoss = true
		}
		if reg[i] > 0 {
			addOnSum += addOn[i]
			regSum += reg[i]
			posCount++
		}
	}
	if !regretWentNegative {
		t.Error("Regret utility never went negative across the sweep")
	}
	if !regretLoss {
		t.Error("Regret never showed a substantial cloud loss")
	}
	if posCount == 0 || addOnSum <= regSum {
		t.Errorf("on Regret's positive range, AddOn avg %v should beat Regret avg %v",
			addOnSum/float64(posCount), regSum/float64(posCount))
	}
	// Paper: AddOn's average is ≈1.43× Regret's there.
	if addOnSum < 1.15*regSum {
		t.Errorf("AddOn advantage too small: %v vs %v", addOnSum, regSum)
	}
	// Cheap optimizations benefit everyone: both start strongly positive.
	if addOn[0] < 2 || reg[0] < 1 {
		t.Errorf("cheapest cost should give high utilities, got %v / %v", addOn[0], reg[0])
	}
}

// Figure 2(b) shape: with a large collaboration Regret outperforms AddOn
// somewhere in the middle of the sweep (AddOn is more cautious), but
// Regret still ends with losses and negative utility at high costs while
// AddOn never goes below zero.
func TestFig2bShape(t *testing.T) {
	fig := run(t, "2b", testEffort)
	addOn := fig.Series(SeriesAddOnUtility)
	reg := fig.Series(SeriesRegretUtility)
	bal := fig.Series(SeriesRegretBalance)

	var regretBeatsAddOn, regretNegative bool
	for i := range fig.Points {
		if addOn[i] < 0 {
			t.Errorf("cost %v: AddOn utility %v < 0", fig.Points[i].X, addOn[i])
		}
		if reg[i] > addOn[i]+1e-9 && bal[i] > -0.5 {
			regretBeatsAddOn = true
		}
		if reg[i] < 0 {
			regretNegative = true
		}
	}
	if !regretBeatsAddOn {
		t.Error("Regret should outperform AddOn somewhere in the large collaboration")
	}
	if !regretNegative {
		t.Error("Regret should still turn negative at high costs")
	}
	// Both do well on the cheapest optimization.
	if addOn[0] < 8 || reg[0] < 6 {
		t.Errorf("cheapest cost utilities too low: %v / %v", addOn[0], reg[0])
	}
}

// Figures 2(c)/2(d) shape (Section 7.3.2): SubstOn dominates Regret, both
// achieve less than their additive counterparts, and Regret starts losing
// money from the very beginning (fewer users per optimization).
func TestFig2cdShape(t *testing.T) {
	for _, id := range []string{"2c", "2d"} {
		fig := run(t, id, testEffort)
		sub := fig.Series(SeriesSubstOnUtility)
		reg := fig.Series(SeriesRegretUtility)
		bal := fig.Series(SeriesRegretBalance)
		for i := range fig.Points {
			if sub[i] < 0 {
				t.Errorf("%s cost %v: SubstOn utility %v < 0", id, fig.Points[i].X, sub[i])
			}
			if sub[i] < reg[i] {
				t.Errorf("%s cost %v: SubstOn %v below Regret %v",
					id, fig.Points[i].X, sub[i], reg[i])
			}
		}
		// Regret loses money early in the substitutive setting.
		if bal[1] > -0.05 {
			t.Errorf("%s: Regret balance at second cost = %v, want a loss", id, bal[1])
		}
	}
}

// Substitutive utilities are below the additive counterparts at matching
// costs (paper: "both SubstOn and Regret achieve lower overall utility").
func TestSubstitutiveLowerThanAdditive(t *testing.T) {
	add := run(t, "2a", testEffort)
	sub := run(t, "2c", testEffort)
	// Compare the first few shared sweep positions.
	for i := 0; i < 4; i++ {
		a := add.Series(SeriesAddOnUtility)[i]
		s := sub.Series(SeriesSubstOnUtility)[i]
		if s > a+0.15 {
			t.Errorf("cost %v: substitutive utility %v above additive %v",
				add.Points[i].X, s, a)
		}
	}
}

// Figure 3(a) shape (Section 7.4): AddOn's advantage over Regret is
// positive everywhere and larger when users concentrate in fewer slots.
func TestFig3aShape(t *testing.T) {
	fig := run(t, "3a", testEffort/3)
	adv := fig.Series(SeriesAdvantage)
	for i, v := range adv {
		if v <= 0 {
			t.Errorf("slots=%v: advantage %v should be positive", fig.Points[i].X, v)
		}
	}
	// More overlap (fewer slots) means a bigger advantage: compare the
	// average of the first three points against the last three.
	head := (adv[0] + adv[1] + adv[2]) / 3
	n := len(adv)
	tail := (adv[n-1] + adv[n-2] + adv[n-3]) / 3
	if head <= tail {
		t.Errorf("advantage should shrink with more slots: head %v, tail %v", head, tail)
	}
}

// Figure 3(b) shape: spreading each user's value across more slots
// increases AddOn's advantage (easier to find a slot whose residual value
// justifies the optimization).
func TestFig3bShape(t *testing.T) {
	fig := run(t, "3b", testEffort/3)
	adv := fig.Series(SeriesAdvantage)
	for i, v := range adv {
		if v <= 0 {
			t.Errorf("duration=%v: advantage %v should be positive", fig.Points[i].X, v)
		}
	}
	n := len(adv)
	if adv[n-1] <= adv[0] {
		t.Errorf("advantage should grow with duration: d=1 %v, d=%d %v", adv[0], n, adv[n-1])
	}
}

// Figure 4 shape (Section 7.5): AddOn improves with skew while Regret
// worsens. Early-AddOn dominates every other setting, and Regret under
// early arrivals is the worst.
func TestFig4Shape(t *testing.T) {
	_, raw, err := Fig4(Fig4DefaultConfig(testEffort, testSeed))
	if err != nil {
		t.Fatal(err)
	}
	for ci, cost := range raw.Costs {
		earlyAddOn := raw.Mean[SeriesEarlyAddOn][ci]
		for _, name := range []string{SeriesUniformAddOn, SeriesLateAddOn,
			SeriesUniformRegret, SeriesEarlyRegret, SeriesLateRegret} {
			if raw.Mean[name][ci] > earlyAddOn+1e-9 {
				t.Errorf("cost %v: %s (%v) beats Early-AddOn (%v)",
					cost, name, raw.Mean[name][ci], earlyAddOn)
			}
		}
		// Regret worsens with skew: early arrivals are its worst case.
		if raw.Mean[SeriesEarlyRegret][ci] > raw.Mean[SeriesUniformRegret][ci]+0.05 {
			t.Errorf("cost %v: Early-Regret (%v) should not beat Uniform-Regret (%v)",
				cost, raw.Mean[SeriesEarlyRegret][ci], raw.Mean[SeriesUniformRegret][ci])
		}
	}
	// At the upper end of the sweep, skewed AddOn is several times more
	// efficient than uniform (the paper reports up to 6.7×).
	last := len(raw.Costs) - 1
	if raw.Mean[SeriesEarlyAddOn][last] < 2*raw.Mean[SeriesUniformAddOn][last] {
		t.Errorf("at the costliest point Early-AddOn (%v) should dwarf Uniform-AddOn (%v)",
			raw.Mean[SeriesEarlyAddOn][last], raw.Mean[SeriesUniformAddOn][last])
	}
	// Regret ends up negative under skew at high costs.
	if raw.Mean[SeriesEarlyRegret][last] >= 0 {
		t.Errorf("Early-Regret at the costliest point = %v, want negative",
			raw.Mean[SeriesEarlyRegret][last])
	}
}

// Figure 4e: the engine-derived arrival-skew variant is well-formed and
// deterministic, its Early-AddOn series is the ratio denominator (≡ 1
// wherever it is nonzero), and regenerating it alongside 1e reuses the
// memoized savings measurement instead of re-clustering the universe.
func TestFig4eShapeAndSavingsMemoization(t *testing.T) {
	before := savingsCalls
	if _, err := Run("1e", 3, testSeed); err != nil {
		t.Fatal(err)
	}
	fig, err := Fig4e(Fig4eDefaultConfig(testEffort, testSeed))
	if err != nil {
		t.Fatal(err)
	}
	if got := savingsCalls; got > before+1 {
		t.Errorf("savings measured %d times across 1e + 4e, want at most once", got-before)
	}
	if len(fig.Points) != len(SweepSkew) {
		t.Fatalf("%d points, want %d", len(fig.Points), len(SweepSkew))
	}
	if len(fig.SeriesNames) != 6 {
		t.Fatalf("series %v, want 6", fig.SeriesNames)
	}
	for i, p := range fig.Points {
		early := p.Y[SeriesEarlyAddOn]
		if early != 1 && early != 0 {
			t.Errorf("point %d: Early-AddOn ratio %v, want 1 (or 0 when degenerate)", i, early)
		}
	}
	again, err := Fig4e(Fig4eDefaultConfig(testEffort, testSeed))
	if err != nil {
		t.Fatal(err)
	}
	for i := range fig.Points {
		for _, s := range fig.SeriesNames {
			if fig.Points[i].Y[s] != again.Points[i].Y[s] {
				t.Fatalf("4e not deterministic at point %d series %s", i, s)
			}
		}
	}
}

// The empirical value pool behind the "v" variants: every entry is a
// positive measured saving, and the pool mean is the $0.50 mean of the
// paper's uniform draws (up to one micro-dollar of per-entry rounding),
// so the published cost sweeps keep their scale.
func TestDerivedValuePool(t *testing.T) {
	universe, linkLen, minMembers := engineUniverse(testSeed)
	bids, err := engineBids(universe, linkLen, minMembers)
	if err != nil {
		t.Fatal(err)
	}
	if len(bids.pool) == 0 {
		t.Fatal("empty value pool")
	}
	var sum int64
	for i, v := range bids.pool {
		if v <= 0 {
			t.Errorf("pool[%d] = %v, want positive", i, v)
		}
		sum += int64(v)
	}
	mean := float64(sum) / float64(len(bids.pool))
	if want := float64(econ.Dollar) / 2; mean < want-1 || mean > want+1 {
		t.Errorf("pool mean = %v micro-dollars, want %v ± 1", mean, want)
	}
	// The provider is memoized: asking again returns the same object.
	again, err := engineBids(universe, linkLen, minMembers)
	if err != nil {
		t.Fatal(err)
	}
	if again != bids {
		t.Error("engineBids re-measured an already-memoized parameter set")
	}
	// valuePool rejects a table with nothing to draw from.
	if _, _, err := valuePool([][]int64{{0, 0}, {0}}); err == nil {
		t.Error("all-zero savings table accepted")
	}
	// The per-user pools are the global pool partitioned by measured
	// user: same rescaling, same order, nothing added or lost.
	var rejoined []econ.Money
	for _, p := range bids.userPools {
		rejoined = append(rejoined, p...)
	}
	if len(rejoined) != len(bids.pool) {
		t.Fatalf("user pools hold %d values, global pool %d", len(rejoined), len(bids.pool))
	}
	for i := range rejoined {
		if rejoined[i] != bids.pool[i] {
			t.Fatalf("user-pool value %d = %v, global pool has %v", i, rejoined[i], bids.pool[i])
		}
	}
}

// The engine-derived additive variants keep Figure 2's qualitative
// shape: the truthful mechanism never yields negative utility, Regret
// never runs a material surplus (its posted price can overshoot the
// cost by at most one price quantum, which the discrete measured value
// pool makes reachable), and — because trial i replays the same value
// draws at every cost — the mechanism's mean utility is monotone
// non-increasing in the optimization cost.
func TestFig2DerivedShape(t *testing.T) {
	for _, id := range []string{"2av", "2bv"} {
		fig := run(t, id, testEffort/3)
		if len(fig.Points) != len(SweepSmall) { // both sweeps have 17 points
			t.Fatalf("%s: %d points, want %d", id, len(fig.Points), len(SweepSmall))
		}
		addOn := fig.Series(SeriesAddOnUtility)
		bal := fig.Series(SeriesRegretBalance)
		for i := range fig.Points {
			if addOn[i] < 0 {
				t.Errorf("%s cost %v: AddOn utility %v < 0", id, fig.Points[i].X, addOn[i])
			}
			if bal[i] > 1e-4 {
				t.Errorf("%s cost %v: Regret balance %v is a material surplus", id, fig.Points[i].X, bal[i])
			}
			if i > 0 && addOn[i] > addOn[i-1]+1e-9 {
				t.Errorf("%s: AddOn utility rose with cost at %v: %v -> %v",
					id, fig.Points[i].X, addOn[i-1], addOn[i])
			}
		}
	}
}

// The engine-derived substitutive variants (2cv/2dv/5av/5bv) keep the
// mechanism-dominates-baseline property, and the overlap variants
// (3av/3bv) keep the AddOn advantage positive.
func TestDerivedSubstitutiveAndOverlapShapes(t *testing.T) {
	for _, id := range []string{"2cv", "2dv", "5av", "5bv"} {
		fig := run(t, id, testEffort/3)
		sub := fig.Series(SeriesSubstOnUtility)
		reg := fig.Series(SeriesRegretUtility)
		for i := range fig.Points {
			if sub[i] < 0 {
				t.Errorf("%s cost %v: SubstOn utility %v < 0", id, fig.Points[i].X, sub[i])
			}
			if sub[i] < reg[i] {
				t.Errorf("%s cost %v: SubstOn %v below Regret %v",
					id, fig.Points[i].X, sub[i], reg[i])
			}
		}
	}
	for _, id := range []string{"3av", "3bv"} {
		fig := run(t, id, testEffort/5)
		adv := fig.Series(SeriesAdvantage)
		for i, v := range adv {
			if v <= 0 {
				t.Errorf("%s x=%v: advantage %v should be positive", id, fig.Points[i].X, v)
			}
		}
	}
}

// Figure 4v is Figure 4 with measured values: the ratio normalization
// must hold (Early-AddOn ≡ 1 wherever nonzero), the truthful mechanism
// never yields negative mean utility under any arrival process, and the
// mechanism dominates the Regret baseline within each arrival process.
// (Strict Early-AddOn dominance over Late-AddOn — asserted for the
// uniform Figure 4 — is only statistical and can flip by a fraction of a
// percent under the discrete measured distribution, so it is not
// asserted here.)
func TestFig4DerivedShape(t *testing.T) {
	fig, raw, err := Fig4(Fig4EngineConfig(testEffort/3, testSeed))
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "4v" {
		t.Fatalf("figure ID = %s, want 4v", fig.ID)
	}
	if len(fig.Points) != len(SweepSkew) {
		t.Fatalf("%d points, want %d", len(fig.Points), len(SweepSkew))
	}
	for i, p := range fig.Points {
		early := p.Y[SeriesEarlyAddOn]
		if early != 1 && early != 0 {
			t.Errorf("point %d: Early-AddOn ratio %v, want 1 (or 0 when degenerate)", i, early)
		}
	}
	pairs := [][2]string{
		{SeriesUniformAddOn, SeriesUniformRegret},
		{SeriesEarlyAddOn, SeriesEarlyRegret},
		{SeriesLateAddOn, SeriesLateRegret},
	}
	for ci := range raw.Costs {
		for _, pair := range pairs {
			mech, reg := raw.Mean[pair[0]][ci], raw.Mean[pair[1]][ci]
			if mech < 0 {
				t.Errorf("cost %v: %s mean utility %v < 0", raw.Costs[ci], pair[0], mech)
			}
			if mech < reg-1e-9 {
				t.Errorf("cost %v: %s (%v) below %s (%v)",
					raw.Costs[ci], pair[0], mech, pair[1], reg)
			}
		}
	}
}

// A full derived sweep — every figure in DerivedFigureIDs at the same
// seed — performs exactly one universe generation + savings measurement;
// everything else comes out of the memo.
func TestDerivedSweepSharesOneMeasurement(t *testing.T) {
	universe, linkLen, minMembers := engineUniverse(testSeed)
	if _, err := engineBids(universe, linkLen, minMembers); err != nil {
		t.Fatal(err) // prime the memo so the count below is exact
	}
	before := savingsCalls
	for _, id := range DerivedFigureIDs() {
		fig, err := Run(id, 2, testSeed)
		if err != nil {
			t.Fatalf("figure %s: %v", id, err)
		}
		if len(fig.Points) == 0 {
			t.Fatalf("figure %s: no points", id)
		}
		if fig.ID != id {
			t.Fatalf("figure %s reports ID %s", id, fig.ID)
		}
	}
	if savingsCalls != before {
		t.Errorf("derived sweep re-measured the universe %d times, want 0 (memoized)",
			savingsCalls-before)
	}
}

// Figure 5 shape (Section 7.6): SubstOn dominates Regret at both
// selectivities, and higher selectivity (3 of 12) lowers both algorithms'
// utility relative to low selectivity (3 of 4).
func TestFig5Shape(t *testing.T) {
	low := run(t, "5a", testEffort)
	high := run(t, "5b", testEffort)
	for i := range low.Points {
		ls := low.Series(SeriesSubstOnUtility)[i]
		lr := low.Series(SeriesRegretUtility)[i]
		hs := high.Series(SeriesSubstOnUtility)[i]
		hr := high.Series(SeriesRegretUtility)[i]
		if ls < hs-0.2 {
			t.Errorf("cost %v: low-selectivity SubstOn %v should not trail high %v",
				low.Points[i].X, ls, hs)
		}
		if hs < hr {
			t.Errorf("cost %v: SubstOn %v below Regret %v at high selectivity",
				high.Points[i].X, hs, hr)
		}
		if ls < lr {
			t.Errorf("cost %v: SubstOn %v below Regret %v at low selectivity",
				low.Points[i].X, ls, lr)
		}
	}
	// SubstOn sustains a utility of 1.0 at far higher costs than Regret
	// (paper: 2.5× and 12.5×). Find the largest cost where each still
	// reaches 1.0.
	lastAbove := func(series []float64, xs []Point) float64 {
		best := 0.0
		for i, v := range series {
			if v >= 1.0 {
				best = xs[i].X
			}
		}
		return best
	}
	subCost := lastAbove(high.Series(SeriesSubstOnUtility), high.Points)
	regCost := lastAbove(high.Series(SeriesRegretUtility), high.Points)
	if subCost < 2*regCost {
		t.Errorf("high selectivity: SubstOn sustains 1.0 to %v, Regret to %v — want ≥2× spread",
			subCost, regCost)
	}
}

// Figure 1 shape (Section 7.2): utilities grow with executions; AddOn
// beats Regret; Regret's balance goes negative; the mechanism's utility
// lands in the paper's 28%–47% band of the baseline cost at the upper end.
func TestFig1Shape(t *testing.T) {
	fig := run(t, "1", 200)
	addOn := fig.Series(SeriesAddOnUtility)
	reg := fig.Series(SeriesRegretUtility)
	bal := fig.Series(SeriesRegretBalance)
	base := fig.Series(SeriesBaselineCost)
	n := len(fig.Points)

	if addOn[n-1] <= addOn[1] {
		t.Errorf("AddOn utility should grow with executions: %v ... %v", addOn[1], addOn[n-1])
	}
	var regretLoss bool
	for i := range fig.Points {
		if addOn[i] < reg[i]-1e-9 {
			t.Errorf("x=%v: AddOn %v below Regret %v", fig.Points[i].X, addOn[i], reg[i])
		}
		if bal[i] < -0.5 {
			regretLoss = true
		}
		if base[i] <= 0 && fig.Points[i].X > 0 {
			t.Errorf("x=%v: baseline cost %v", fig.Points[i].X, base[i])
		}
	}
	if !regretLoss {
		t.Error("Regret should lose money somewhere on the astronomy workload")
	}
	// Baseline is linear in executions.
	if base[n-1] < 80 || base[n-1] > 130 {
		t.Errorf("baseline at 90 executions = %v, want ≈ $102", base[n-1])
	}
	// Paper: AddOn yields 28%–47% of baseline cost as utility. Allow a
	// wide band around it (sampling and substitution differences).
	frac := addOn[n-1] / base[n-1]
	if frac < 0.2 || frac > 0.8 {
		t.Errorf("AddOn utility fraction of baseline = %v, want within [0.2, 0.8]", frac)
	}
}

// Figure 1e: the engine-derived variant must reproduce the same
// qualitative story as the constants-based Figure 1 — the mechanism
// dominates Regret and never loses money, and utility grows with usage.
func TestFig1EngineDerivedShape(t *testing.T) {
	cfg := Fig1EngineConfig(60, testSeed)
	cfg.Executions = []int{1, 30, 60, 90}
	fig, err := Fig1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "1e" {
		t.Fatalf("figure ID = %s", fig.ID)
	}
	addOn := fig.Series(SeriesAddOnUtility)
	reg := fig.Series(SeriesRegretUtility)
	n := len(fig.Points)
	if addOn[n-1] <= addOn[0] {
		t.Errorf("utility should grow with executions: %v ... %v", addOn[0], addOn[n-1])
	}
	for i := range fig.Points {
		if addOn[i] < reg[i]-1e-9 {
			t.Errorf("x=%v: AddOn %v below Regret %v", fig.Points[i].X, addOn[i], reg[i])
		}
	}
}

func TestRegistryCoversAllFigures(t *testing.T) {
	want := []string{"1", "1e", "2a", "2av", "2b", "2bv", "2c", "2cv", "2d", "2dv",
		"3a", "3av", "3b", "3bv", "4", "4e", "4v", "5a", "5av", "5b", "5bv",
		"E1", "E2", "E3"}
	got := FigureIDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry has %v, want %v", got, want)
		}
	}
	if _, err := Run("nope", 1, 1); err == nil {
		t.Error("unknown figure should error")
	}
}

// Every engine-derived variant must be registered, and the derived set
// must cover every figure family of the paper's evaluation (2a–5b plus
// the astronomy figure), so `cmd/experiments -derived` really closes the
// measured-pricing loop everywhere.
func TestDerivedFigureIDs(t *testing.T) {
	want := []string{"1e", "2av", "2bv", "2cv", "2dv", "3av", "3bv", "4e", "4v",
		"5av", "5bv"}
	got := DerivedFigureIDs()
	if len(got) != len(want) {
		t.Fatalf("derived set %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("derived set %v, want %v", got, want)
		}
		if _, ok := Registry[got[i]]; !ok {
			t.Fatalf("derived figure %s not in registry", got[i])
		}
	}
}

func TestRunIsDeterministic(t *testing.T) {
	a := run(t, "2a", 30)
	b := run(t, "2a", 30)
	for i := range a.Points {
		for _, s := range a.SeriesNames {
			if a.Points[i].Y[s] != b.Points[i].Y[s] {
				t.Fatalf("point %d series %s: %v != %v", i, s, a.Points[i].Y[s], b.Points[i].Y[s])
			}
		}
	}
}

func TestFigureRendering(t *testing.T) {
	fig := &Figure{ID: "t", Title: "Test", XLabel: "x",
		SeriesNames: []string{"a", "b"}}
	fig.Add(1, map[string]float64{"a": 0.5, "b": -1.25})
	fig.Add(2.5, map[string]float64{"a": 0, "b": 3})

	table := fig.Table()
	for _, want := range []string{"Figure t: Test", "x", "a", "b", "0.5", "-1.25", "2.5"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	csv := fig.CSV()
	wantCSV := "x,a,b\n1,0.5,-1.25\n2.5,0,3\n"
	if csv != wantCSV {
		t.Errorf("CSV = %q, want %q", csv, wantCSV)
	}
}

func TestCSVEscaping(t *testing.T) {
	fig := &Figure{XLabel: `cost, in "dollars"`, SeriesNames: []string{"u"}}
	fig.Add(1, map[string]float64{"u": 2})
	csv := fig.CSV()
	if !strings.HasPrefix(csv, `"cost, in ""dollars""",u`) {
		t.Errorf("CSV header not escaped: %q", csv)
	}
}

func TestCostSweepsMatchPaperAxes(t *testing.T) {
	if n := len(SweepSmall); n != 17 {
		t.Errorf("small sweep has %d points, want 17", n)
	}
	if SweepSmall[0].Dollars() != 0.03 || SweepSmall[16].Dollars() != 2.91 {
		t.Errorf("small sweep range %v..%v", SweepSmall[0], SweepSmall[16])
	}
	if SweepLarge[0].Dollars() != 0.12 || SweepLarge[16].Dollars() != 11.64 {
		t.Errorf("large sweep range %v..%v", SweepLarge[0], SweepLarge[16])
	}
	if SweepSkew[0].Dollars() != 0.03 || SweepSkew[14].Dollars() != 1.71 {
		t.Errorf("skew sweep range %v..%v", SweepSkew[0], SweepSkew[14])
	}
	if SweepSelectivity[0].Dollars() != 0.03 || SweepSelectivity[9].Dollars() != 2.73 {
		t.Errorf("selectivity sweep range %v..%v", SweepSelectivity[0], SweepSelectivity[9])
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Fig2(Fig2Config{}); err == nil {
		t.Error("empty Fig2Config accepted")
	}
	if _, err := Fig3(Fig3Config{ID: "9z", Users: 6, MaxX: 2, Costs: SweepSmall, Trials: 1}); err == nil {
		t.Error("unknown Fig3 variant accepted")
	}
	if _, _, err := Fig4(Fig4Config{}); err == nil {
		t.Error("empty Fig4Config accepted")
	}
	if _, err := Fig5(Fig5Config{ID: "5a", Users: 6, Slots: 12, NOpts: 2, SubsPerUser: 3,
		Costs: SweepSelectivity, Trials: 1}); err == nil {
		t.Error("substitutes exceeding optimizations accepted")
	}
	if _, err := Fig1(Fig1Config{}); err == nil {
		t.Error("empty Fig1Config accepted")
	}
}
