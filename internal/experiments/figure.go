package experiments

import (
	"fmt"
	"strings"

	"sharedopt/internal/econ"
)

// Point is one x-position of a figure with one value per series.
type Point struct {
	X float64
	Y map[string]float64
}

// Figure is a reproduced paper figure: named series sampled at a common
// set of x-positions.
type Figure struct {
	// ID is the paper's figure number, e.g. "2a".
	ID string
	// Title is the figure caption.
	Title string
	// XLabel names the x axis.
	XLabel string
	// SeriesNames lists the series in display order.
	SeriesNames []string
	// Points holds the sampled values in x order.
	Points []Point
}

// Add appends a point. Every series name must be present in values.
func (f *Figure) Add(x float64, values map[string]float64) {
	y := make(map[string]float64, len(values))
	for k, v := range values {
		y[k] = v
	}
	f.Points = append(f.Points, Point{X: x, Y: y})
}

// Series returns the y values of one series in x order.
func (f *Figure) Series(name string) []float64 {
	out := make([]float64, len(f.Points))
	for i, p := range f.Points {
		out[i] = p.Y[name]
	}
	return out
}

// Table renders the figure as an aligned text table.
func (f *Figure) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %s: %s\n", f.ID, f.Title)
	widths := make([]int, len(f.SeriesNames)+1)
	header := append([]string{f.XLabel}, f.SeriesNames...)
	rows := make([][]string, 0, len(f.Points))
	for _, p := range f.Points {
		row := []string{trimFloat(p.X)}
		for _, s := range f.SeriesNames {
			row = append(row, trimFloat(p.Y[s]))
		}
		rows = append(rows, row)
	}
	for i, h := range header {
		widths[i] = len(h)
		for _, row := range rows {
			if len(row[i]) > widths[i] {
				widths[i] = len(row[i])
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the figure as comma-separated values with a header row.
func (f *Figure) CSV() string {
	var b strings.Builder
	b.WriteString(csvEscape(f.XLabel))
	for _, s := range f.SeriesNames {
		b.WriteByte(',')
		b.WriteString(csvEscape(s))
	}
	b.WriteByte('\n')
	for _, p := range f.Points {
		fmt.Fprintf(&b, "%g", p.X)
		for _, s := range f.SeriesNames {
			fmt.Fprintf(&b, ",%g", p.Y[s])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimSuffix(s, ".")
	if s == "-0" || s == "" {
		s = "0"
	}
	return s
}

// CostSweep returns n costs start, start+step, ..., matching the x axes of
// the paper's figures.
func CostSweep(start, step econ.Money, n int) []econ.Money {
	out := make([]econ.Money, n)
	for i := range out {
		out[i] = start + step.MulInt(int64(i))
	}
	return out
}

// The paper's published sweeps.
var (
	// SweepSmall is Figure 2(a)/2(c)'s x axis: 0.03 to 2.91 step 0.18.
	SweepSmall = CostSweep(econ.FromDollars(0.03), econ.FromDollars(0.18), 17)
	// SweepLarge is Figure 2(b)/2(d)'s x axis: 0.12 to 11.64 step 0.72.
	SweepLarge = CostSweep(econ.FromDollars(0.12), econ.FromDollars(0.72), 17)
	// SweepSkew is Figure 4's x axis: 0.03 to 1.71 step 0.12.
	SweepSkew = CostSweep(econ.FromDollars(0.03), econ.FromDollars(0.12), 15)
	// SweepSelectivity is Figure 5's x axis: 0.03 to 2.73 step 0.30.
	SweepSelectivity = CostSweep(econ.FromDollars(0.03), econ.FromDollars(0.30), 10)
)
