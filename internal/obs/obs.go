package obs

import (
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sharedopt/internal/stats"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready for use. All methods are safe on a nil receiver (no-ops for
// writes, zero for reads), so instrumented code paths need no "is
// observability enabled?" branches: an un-instrumented component simply
// holds nil metrics.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current count.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// MaxGauge records the largest value ever observed — a high-water mark.
// The zero value (high water 0) is ready for use; nil receivers are
// no-ops, like Counter's.
type MaxGauge struct{ v atomic.Uint64 }

// Observe raises the high-water mark to v if v exceeds it.
func (g *MaxGauge) Observe(v uint64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the high-water mark.
func (g *MaxGauge) Load() uint64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram of int64 observations (latency
// metrics observe nanoseconds). Bucket i holds observations v with
// bounds[i-1] < v <= bounds[i]; one implicit overflow bucket holds
// everything above the last bound. Besides per-bucket counts it tracks
// per-bucket sums and exact global count/sum/min/max, so Quantile can
// return exact extremes and bucket-mean-resolved percentiles. Observe is
// allocation-free and lock-free (atomics only); construct with
// NewHistogram or Registry.Histogram. Nil receivers are no-ops.
type Histogram struct {
	bounds []int64 // sorted upper bounds; len(counts) == len(bounds)+1
	counts []atomic.Uint64
	sums   []atomic.Int64
	count  atomic.Uint64
	sum    atomic.Int64
	min    atomic.Int64 // valid only while count > 0
	max    atomic.Int64
}

// NewHistogram returns a histogram over the given sorted upper bounds
// (plus the implicit overflow bucket). The bounds slice is not copied;
// callers must not mutate it. It panics on empty or unsorted bounds.
func NewHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
		sums:   make([]atomic.Int64, len(bounds)+1),
	}
}

// DefaultLatencyBounds returns the 1-2-5 ladder from 1µs to 10s in
// nanoseconds — 22 buckets plus overflow, the default resolution for the
// tier's latency histograms.
func DefaultLatencyBounds() []int64 {
	var bounds []int64
	for decade := int64(1_000); decade <= 1_000_000_000; decade *= 10 {
		bounds = append(bounds, decade, 2*decade, 5*decade)
	}
	return append(bounds, 10_000_000_000)
}

// Observe folds one observation into the histogram.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	b := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[b].Add(1)
	h.sums[b].Add(v)
	h.sum.Add(v)
	if h.count.Add(1) == 1 {
		// First observation seeds min/max; concurrent observers racing
		// this window still converge via the CAS loops below, because
		// the seeds only ever tighten.
		h.min.Store(v)
		h.max.Store(v)
	}
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveSince observes the nanoseconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Nanoseconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Max returns the exact largest observation, or 0 when empty.
func (h *Histogram) Max() int64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return h.max.Load()
}

// Quantile returns the p-th quantile; see HistSnapshot.Quantile for the
// exact semantics. It snapshots the histogram first, so concurrent
// observers may or may not be included.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return 0
	}
	return h.snapshot().Quantile(p)
}

// snapshot copies the histogram's state. Under concurrent Observe calls
// the copy may straddle an in-flight observation (count updated, bucket
// not yet); Quantile tolerates that by clamping ranks to the counted
// mass. Quiesced histograms snapshot exactly.
func (h *Histogram) snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sums:   make([]int64, len(h.sums)),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
	}
	if s.Count > 0 {
		s.Min, s.Max = h.min.Load(), h.max.Load()
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		s.Sums[i] = h.sums[i].Load()
	}
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram, shaped for JSON
// export. Bounds aliases the live histogram's (immutable) bound slice.
type HistSnapshot struct {
	Bounds []int64  `json:"bounds"`
	Counts []uint64 `json:"counts"` // per bucket, last = overflow
	Sums   []int64  `json:"sums"`   // per bucket, last = overflow
	Count  uint64   `json:"count"`
	Sum    int64    `json:"sum"`
	Min    int64    `json:"min"`
	Max    int64    `json:"max"`
}

// bucketOf returns the bucket index value v falls in.
func (s HistSnapshot) bucketOf(v int64) int {
	return sort.Search(len(s.Bounds), func(i int) bool { return v <= s.Bounds[i] })
}

// rankValue returns the value of the k-th smallest observation (0-based),
// resolved to its bucket's mean — exact whenever every observation in
// that bucket is equal (single observations, values sitting on bucket
// bounds, or one distinct value per bucket). Rank 0 and rank Count-1
// refine to the tracked exact min/max when that extreme lies in the
// rank's bucket — always true for a lifetime snapshot, where min sits in
// the first nonempty bucket and max in the last; a Diff window keeps the
// bucket mean instead when the lifetime extreme predates the window.
func (s HistSnapshot) rankValue(k int) float64 {
	if k < 0 {
		k = 0
	}
	if uint64(k) >= s.Count {
		k = int(s.Count - 1)
	}
	cum := uint64(0)
	for b, c := range s.Counts {
		cum += c
		if uint64(k) < cum {
			if k == 0 && s.bucketOf(s.Min) == b {
				return float64(s.Min)
			}
			if uint64(k) == s.Count-1 && s.bucketOf(s.Max) == b {
				return float64(s.Max)
			}
			return float64(s.Sums[b]) / float64(c)
		}
	}
	return float64(s.Max)
}

// Quantile returns the p-th quantile (p in [0,1], clamped) under exactly
// stats.Percentile's R-7 rank definition, with sub-bucket resolution at
// the bucket mean: conceptually the histogram expands to a sorted
// multiset where each observation takes its bucket's mean value, then
// stats.PercentileRank picks the rank to interpolate at. Min (p=0), max
// (p=1) and any quantile whose rank lands in a uniformly-valued bucket
// are exact; otherwise the error is bounded by the bucket width. Empty
// histograms yield 0.
func (s HistSnapshot) Quantile(p float64) float64 {
	if s.Count == 0 {
		return 0
	}
	lo, frac := stats.PercentileRank(int(s.Count), p)
	v := s.rankValue(lo)
	if frac == 0 {
		return v
	}
	return v + frac*(s.rankValue(lo+1)-v)
}

// Mean returns the exact mean observation, or 0 when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Registry is a namespace of metrics, created on first use and looked up
// by name. Lookups lock; the returned metric objects are lock-free and
// meant to be cached by the instrumented component at construction time,
// not re-looked-up on hot paths. A nil *Registry returns nil metrics
// from every getter, which (by the nil-receiver contract above) disables
// instrumentation with zero configuration.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*MaxGauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*MaxGauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// MaxGauge returns the named high-water gauge, creating it on first use.
func (r *Registry) MaxGauge(name string) *MaxGauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = new(MaxGauge)
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (later bounds are ignored; nil bounds default to
// DefaultLatencyBounds).
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		if bounds == nil {
			bounds = DefaultLatencyBounds()
		}
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of a registry's metrics. Marshaling
// it with encoding/json is deterministic for quiesced metrics: map keys
// serialize in sorted order.
type Snapshot struct {
	Counters map[string]uint64       `json:"counters,omitempty"`
	Gauges   map[string]uint64       `json:"gauges,omitempty"`
	Hists    map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies every registered metric's current state.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]uint64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Load()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]uint64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Load()
		}
	}
	if len(r.hists) > 0 {
		s.Hists = make(map[string]HistSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Hists[name] = h.snapshot()
		}
	}
	return s
}

// Diff returns the change from prev to s: counters and histogram
// counts/sums subtract (metrics absent from prev diff against zero);
// high-water gauges and histogram min/max are lifetime extremes, not
// rates, so the diff carries s's values unchanged. Counter and Quantile
// reads on the result describe exactly the window between the two
// snapshots.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	out := Snapshot{Gauges: s.Gauges}
	if len(s.Counters) > 0 {
		out.Counters = make(map[string]uint64, len(s.Counters))
		for name, v := range s.Counters {
			out.Counters[name] = v - prev.Counters[name]
		}
	}
	if len(s.Hists) > 0 {
		out.Hists = make(map[string]HistSnapshot, len(s.Hists))
		for name, h := range s.Hists {
			p, ok := prev.Hists[name]
			if !ok {
				out.Hists[name] = h
				continue
			}
			d := HistSnapshot{
				Bounds: h.Bounds,
				Counts: make([]uint64, len(h.Counts)),
				Sums:   make([]int64, len(h.Sums)),
				Count:  h.Count - p.Count,
				Sum:    h.Sum - p.Sum,
				Min:    h.Min,
				Max:    h.Max,
			}
			for i := range h.Counts {
				d.Counts[i] = h.Counts[i] - p.Counts[i]
				d.Sums[i] = h.Sums[i] - p.Sums[i]
			}
			out.Hists[name] = d
		}
	}
	return out
}

// TimedWriter wraps an io.Writer, observing every Write's wall-clock
// latency in nanoseconds into H. For a journal target whose Write syncs
// to stable storage (resilience.FileLog), that is the per-record fsync
// latency. Bytes pass through untouched, so wrapping a journal writer
// never changes what lands in the journal.
type TimedWriter struct {
	W io.Writer
	H *Histogram
}

// Write forwards to W and observes the elapsed nanoseconds.
func (t TimedWriter) Write(p []byte) (int, error) {
	start := time.Now()
	n, err := t.W.Write(p)
	t.H.ObserveSince(start)
	return n, err
}
