// Package obs is the deterministic, allocation-light metrics substrate
// for the serving tier: atomic counters, high-water gauges, fixed-bucket
// latency histograms with stats.Percentile-compatible quantiles, and
// registry snapshot/diff/JSON export. internal/resilience threads it
// through the durable tier (see that package's obs.go for the metric
// name contract) and cmd/pricer's -load mode reads it to measure what
// the tier sustains; docs/metrics.md is the operator-facing table of
// every emitted metric, its unit, and its emitting layer.
//
// # Design rules
//
//   - Hot-path writes are lock-free and allocation-free: Counter.Inc and
//     Histogram.Observe are a handful of atomic operations (the
//     histogram's bucket search is a binary search over a fixed bound
//     slice). Registry lookups lock, so components resolve their metric
//     objects once, at construction.
//   - Every metric method is safe on a nil receiver (writes no-op, reads
//     return zero), and a nil *Registry hands out nil metrics. Disabled
//     instrumentation therefore needs no branches at the call sites and
//     costs one predicted nil check.
//   - Counting is exact, never sampled: the tier's counters are part of
//     its accounting contract (every attempted submission lands in
//     exactly one of accepted, rejected, expired, overloaded, or
//     read-only), and the load harness reconciles them against
//     independent client-side tallies to the last bid.
//   - Latency histograms observe wall-clock nanoseconds into fixed
//     buckets (DefaultLatencyBounds: a 1-2-5 ladder, 1µs to 10s, plus
//     overflow). Counts and per-bucket sums are exact; only the *shape*
//     within a bucket is compressed. Quantile applies the same R-7 rank
//     definition as stats.Percentile (via stats.PercentileRank) over the
//     bucket counts, resolving sub-bucket ranks to the bucket's exact
//     mean — so p0/min, p100/max are always exact, and any quantile
//     whose rank lands in a uniformly-valued bucket (e.g. a single
//     observation, or values on bucket bounds) is exact too.
//   - Snapshots are plain data. Snapshot.Diff subtracts two snapshots
//     into a window view (counters and bucket counts/sums are rates;
//     gauges and min/max are lifetime extremes and carry through), and
//     encoding/json marshals snapshots with sorted keys, so exports of
//     quiesced registries are byte-stable.
//
// Instrumentation must never perturb the system it observes: wrapping a
// journal target in TimedWriter passes bytes through untouched, and the
// resilience tier's obs tests prove journal bytes, invoices, and figure
// inputs are identical with observability on and off.
package obs
