package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"sharedopt/internal/stats"
)

func TestCounterAndGaugeNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Load() != 0 {
		t.Fatal("nil counter must read 0")
	}
	var g *MaxGauge
	g.Observe(7)
	if g.Load() != 0 {
		t.Fatal("nil gauge must read 0")
	}
	var h *Histogram
	h.Observe(3)
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Fatal("nil histogram must read 0")
	}
	var r *Registry
	if r.Counter("x") != nil || r.MaxGauge("x") != nil || r.Histogram("x", nil) != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	if s := r.Snapshot(); s.Counters != nil || s.Hists != nil {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestMaxGaugeHighWater(t *testing.T) {
	var g MaxGauge
	for _, v := range []uint64{3, 9, 4, 9, 1} {
		g.Observe(v)
	}
	if got := g.Load(); got != 9 {
		t.Fatalf("high water = %d, want 9", got)
	}
}

// Zero observations: every read returns 0, and quantiles at any p are 0.
func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram([]int64{10, 20})
	for _, p := range []float64{-1, 0, 0.5, 0.99, 1, 2} {
		if got := h.Quantile(p); got != 0 {
			t.Fatalf("empty Quantile(%v) = %v, want 0", p, got)
		}
	}
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must read 0 count and max")
	}
}

// A single observation is every quantile, exactly — even when it lands
// in the overflow bucket.
func TestHistogramSingleObservation(t *testing.T) {
	for _, v := range []int64{7, 20, 999} { // mid-bucket, on-bound, overflow
		h := NewHistogram([]int64{10, 20})
		h.Observe(v)
		for _, p := range []float64{0, 0.25, 0.5, 0.99, 1} {
			if got := h.Quantile(p); got != float64(v) {
				t.Fatalf("single-obs(%d) Quantile(%v) = %v, want %v", v, p, got, v)
			}
		}
		if h.Max() != v {
			t.Fatalf("single-obs(%d) Max = %d", v, h.Max())
		}
	}
}

// Values sitting exactly on bucket bounds land in the bound's own bucket
// (bounds are upper-inclusive), keeping each bucket uniformly valued, so
// every quantile is exact and matches stats.Percentile on the raw data.
func TestHistogramExactBoundaryValues(t *testing.T) {
	bounds := []int64{10, 20, 50, 100}
	h := NewHistogram(bounds)
	var raw []float64
	for i, b := range bounds {
		for k := 0; k <= i; k++ { // 1×10, 2×20, 3×50, 4×100
			h.Observe(b)
			raw = append(raw, float64(b))
		}
	}
	for _, p := range []float64{0, 0.1, 0.5, 0.9, 0.99, 1} {
		want := stats.Percentile(raw, p)
		if got := h.Quantile(p); got != want {
			t.Fatalf("Quantile(%v) = %v, want exact %v", p, got, want)
		}
	}
}

// Observations above the last bound accumulate in the overflow bucket;
// count, sum, max, and upper quantiles still see them.
func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram([]int64{10})
	for _, v := range []int64{5, 5000, 5000, 5000} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Counts[1] != 3 || s.Sums[1] != 15000 {
		t.Fatalf("overflow bucket = %d/%d, want 3/15000", s.Counts[1], s.Sums[1])
	}
	if h.Max() != 5000 {
		t.Fatalf("Max = %d, want 5000", h.Max())
	}
	raw := []float64{5, 5000, 5000, 5000}
	for _, p := range []float64{0.5, 0.99, 1} {
		if got, want := h.Quantile(p), stats.Percentile(raw, p); got != want {
			t.Fatalf("Quantile(%v) = %v, want %v", p, got, want)
		}
	}
}

// Mixed values within one bucket resolve to the bucket mean, and the
// estimate stays within the bucket's bounds.
func TestHistogramSubBucketResolution(t *testing.T) {
	h := NewHistogram([]int64{100, 200})
	for _, v := range []int64{110, 150, 190} {
		h.Observe(v)
	}
	if got := h.Quantile(0.5); got != 150 {
		t.Fatalf("p50 = %v, want bucket mean 150", got)
	}
	// Exact extremes despite shared bucket.
	if h.Quantile(0) != 110 || h.Quantile(1) != 190 {
		t.Fatalf("extremes = %v/%v, want 110/190", h.Quantile(0), h.Quantile(1))
	}
}

func TestDefaultLatencyBoundsSorted(t *testing.T) {
	b := DefaultLatencyBounds()
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not increasing at %d: %v", i, b[i-1:i+1])
		}
	}
	if b[0] != 1_000 || b[len(b)-1] != 10_000_000_000 {
		t.Fatalf("ladder spans %d..%d, want 1µs..10s", b[0], b[len(b)-1])
	}
}

// The hot-path writes must not allocate.
func TestObserveAllocFree(t *testing.T) {
	h := NewHistogram(DefaultLatencyBounds())
	var c Counter
	var g MaxGauge
	if n := testing.AllocsPerRun(100, func() {
		h.Observe(123_456)
		c.Inc()
		g.Observe(42)
	}); n != 0 {
		t.Fatalf("hot path allocates %v/op, want 0", n)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram([]int64{100})
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	if h.Quantile(0) != 0 || h.Max() != workers*per-1 {
		t.Fatalf("extremes = %v/%v", h.Quantile(0), h.Max())
	}
	s := h.snapshot()
	if s.Sum != int64(workers*per)*(workers*per-1)/2 {
		t.Fatalf("sum = %d", s.Sum)
	}
}

func TestRegistrySnapshotDiffAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("tier.accepted").Add(10)
	r.MaxGauge("shard0.batch_highwater").Observe(6)
	h := r.Histogram("tier.advance_ns", []int64{100, 200})
	h.Observe(50)
	h.Observe(150)
	before := r.Snapshot()

	r.Counter("tier.accepted").Add(5)
	r.MaxGauge("shard0.batch_highwater").Observe(9)
	h.Observe(150)
	after := r.Snapshot()

	d := after.Diff(before)
	if d.Counters["tier.accepted"] != 5 {
		t.Fatalf("diff counter = %d, want 5", d.Counters["tier.accepted"])
	}
	if d.Gauges["shard0.batch_highwater"] != 9 {
		t.Fatalf("diff gauge = %d, want current high water 9", d.Gauges["shard0.batch_highwater"])
	}
	dh := d.Hists["tier.advance_ns"]
	if dh.Count != 1 || dh.Sum != 150 {
		t.Fatalf("diff hist = %d obs / %d sum, want 1/150", dh.Count, dh.Sum)
	}
	if got := dh.Quantile(0.5); got != 150 {
		t.Fatalf("window p50 = %v, want 150", got)
	}

	// JSON export is deterministic for quiesced registries.
	j1, err := json.Marshal(after)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("snapshot JSON not stable:\n%s\n%s", j1, j2)
	}
	var back Snapshot
	if err := json.Unmarshal(j1, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["tier.accepted"] != 15 {
		t.Fatalf("JSON round trip lost counters: %+v", back)
	}
}

// Same registry name returns the same metric object; histogram bounds
// are fixed at first creation.
func TestRegistryIdentity(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("counter identity lost")
	}
	h1 := r.Histogram("h", []int64{1, 2})
	h2 := r.Histogram("h", []int64{99})
	if h1 != h2 {
		t.Fatal("histogram identity lost")
	}
	if len(h1.bounds) != 2 {
		t.Fatal("later bounds must not rebind")
	}
}

// TimedWriter passes bytes through byte-identically and observes one
// latency sample per write.
func TestTimedWriterPassThrough(t *testing.T) {
	var buf bytes.Buffer
	h := NewHistogram(DefaultLatencyBounds())
	w := TimedWriter{W: &buf, H: h}
	for _, s := range []string{"rec1\n", "rec2\n"} {
		n, err := w.Write([]byte(s))
		if err != nil || n != len(s) {
			t.Fatalf("write = %d, %v", n, err)
		}
	}
	if buf.String() != "rec1\nrec2\n" {
		t.Fatalf("bytes perturbed: %q", buf.String())
	}
	if h.Count() != 2 {
		t.Fatalf("observed %d writes, want 2", h.Count())
	}
}
