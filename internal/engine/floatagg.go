package engine

import "fmt"

// Float64 grouped aggregation. Unlike the Int64 aggregates in
// aggregate.go, float sums are not associative-commutative at the bit
// level, so the parallel path may not merge per-worker partial sums: the
// accumulation order would differ from serial execution and perturb the
// low bits — and anything downstream of them, including figure CSVs.
// Instead, a parallel plan drains the pipeline morsel-parallel (scans,
// filters and probes still fan out) and then accumulates the merged rows
// in morsel order — exactly the serial accumulation order — so the
// output is byte-identical at any worker count, like every other sink.

// groupFloat64 drains the query and returns, per first-seen group of the
// Int64 key column ki, the float64 sum over column ci and the member
// count. Each input row charges one build unit, as in GroupCount.
func (q *Query) groupFloat64(ki, ci int) (keys []int64, sums []float64, counts []int64) {
	slots := make(map[int64]int)
	accumulate := func(k int64, v float64) {
		s, seen := slots[k]
		if !seen {
			s = len(keys)
			slots[k] = s
			keys = append(keys, k)
			sums = append(sums, 0)
			counts = append(counts, 0)
		}
		sums[s] += v
		counts[s]++
	}
	if spec, par := q.parallelPlan(); spec != nil {
		cols, rows := materializeParallel(spec, par, q.meter, q.it.Schema())
		keyVec, valVec := cols[ki].Ints, cols[ci].Floats
		for r := 0; r < rows; r++ {
			accumulate(keyVec[r], valVec[r])
		}
		if q.meter != nil {
			q.meter.RowsBuilt += int64(rows)
		}
		return keys, sums, counts
	}
	for {
		b := q.it.nextBatch(0)
		if b == nil {
			break
		}
		keyVec, valVec := b.cols[ki].Ints, b.cols[ci].Floats
		b.forEachActive(func(pos int) {
			accumulate(keyVec[pos], valVec[pos])
		})
		if q.meter != nil {
			q.meter.RowsBuilt += int64(b.Len())
		}
	}
	return keys, sums, counts
}

// checkFloatGroup validates a float aggregation's key and value columns,
// returning their indexes.
func (q *Query) checkFloatGroup(op, key, col string) (ki, ci int) {
	in := q.it.Schema()
	ki = in.ColIndex(key)
	if ki < 0 || in[ki].Type != Int64 {
		q.err = fmt.Errorf("engine: %s: bad key column %q", op, key)
		return -1, -1
	}
	ci = in.ColIndex(col)
	if ci < 0 || in[ci].Type != Float64 {
		q.err = fmt.Errorf("engine: %s: bad float column %q", op, col)
		return -1, -1
	}
	return ki, ci
}

// GroupSumFloat64 groups by an Int64 key column and sums a Float64
// column per group. The output schema is (key, "sum(col)" Float64), in
// first-seen group order; sums accumulate in input row order, so results
// are bit-reproducible (serial and parallel plans alike). Each input row
// charges one build unit, as in GroupCount.
func (q *Query) GroupSumFloat64(key, col string) *Query {
	if q.err != nil {
		return q
	}
	ki, ci := q.checkFloatGroup("group sum float", key, col)
	if q.err != nil {
		return q
	}
	name := q.it.Schema()[ki].Name
	keys, sums, _ := q.groupFloat64(ki, ci)
	q.it = &batchSlice{
		cols: []Vector{
			{Kind: Int64, Ints: keys},
			{Kind: Float64, Floats: sums},
		},
		rows: len(keys),
		schema: Schema{
			{Name: name, Type: Int64},
			{Name: fmt.Sprintf("sum(%s)", col), Type: Float64},
		},
	}
	q.spec = nil
	return q
}

// GroupMeanFloat64 groups by an Int64 key column and averages a Float64
// column per group: the per-group sum (accumulated in input row order)
// divided once by the member count. The output schema is (key,
// "mean(col)" Float64), in first-seen group order. Each input row
// charges one build unit, as in GroupCount.
func (q *Query) GroupMeanFloat64(key, col string) *Query {
	if q.err != nil {
		return q
	}
	ki, ci := q.checkFloatGroup("group mean float", key, col)
	if q.err != nil {
		return q
	}
	name := q.it.Schema()[ki].Name
	keys, sums, counts := q.groupFloat64(ki, ci)
	means := sums // reuse: one division per group, in place
	for s := range means {
		means[s] = sums[s] / float64(counts[s])
	}
	q.it = &batchSlice{
		cols: []Vector{
			{Kind: Int64, Ints: keys},
			{Kind: Float64, Floats: means},
		},
		rows: len(keys),
		schema: Schema{
			{Name: name, Type: Int64},
			{Name: fmt.Sprintf("mean(%s)", col), Type: Float64},
		},
	}
	q.spec = nil
	return q
}
