package engine

import (
	"testing"

	"sharedopt/internal/stats"
)

func aggTable(t *testing.T) *Table {
	t.Helper()
	tbl := NewTable("sales", Schema{
		{Name: "region", Type: Int64},
		{Name: "amount", Type: Int64},
	})
	for _, r := range []Row{
		{I(1), I(10)}, {I(1), I(30)}, {I(2), I(5)},
		{I(2), I(7)}, {I(2), I(3)}, {I(3), I(100)},
	} {
		tbl.MustAppend(r)
	}
	return tbl
}

func TestGroupByAllFunctions(t *testing.T) {
	tbl := aggTable(t)
	rows, err := Scan(tbl, nil).GroupBy("region",
		Aggregation{Func: AggCount},
		Aggregation{Func: AggSum, Col: "amount"},
		Aggregation{Func: AggMin, Col: "amount"},
		Aggregation{Func: AggMax, Col: "amount"},
	).Rows()
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64][4]int64{
		1: {2, 40, 10, 30},
		2: {3, 15, 3, 7},
		3: {1, 100, 100, 100},
	}
	if len(rows) != len(want) {
		t.Fatalf("%d groups, want %d", len(rows), len(want))
	}
	for _, row := range rows {
		w, ok := want[row[0].Int]
		if !ok {
			t.Fatalf("unexpected group %d", row[0].Int)
		}
		for i, v := range w {
			if row[i+1].Int != v {
				t.Errorf("group %d agg %d = %d, want %d", row[0].Int, i, row[i+1].Int, v)
			}
		}
	}
}

func TestGroupBySchemaNames(t *testing.T) {
	tbl := aggTable(t)
	q := Scan(tbl, nil).GroupBy("region",
		Aggregation{Func: AggCount},
		Aggregation{Func: AggSum, Col: "amount"},
	)
	s := q.OutSchema()
	if s[0].Name != "region" || s[1].Name != "count" || s[2].Name != "sum(amount)" {
		t.Errorf("schema = %v", s)
	}
}

func TestGroupByValidation(t *testing.T) {
	tbl := aggTable(t)
	if _, err := Scan(tbl, nil).GroupBy("region").Rows(); err == nil {
		t.Error("no aggregations accepted")
	}
	if _, err := Scan(tbl, nil).GroupBy("ghost",
		Aggregation{Func: AggCount}).Rows(); err == nil {
		t.Error("missing key column accepted")
	}
	if _, err := Scan(tbl, nil).GroupBy("region",
		Aggregation{Func: AggSum, Col: "ghost"}).Rows(); err == nil {
		t.Error("missing aggregate column accepted")
	}
}

func TestGroupByMatchesGroupCount(t *testing.T) {
	r := stats.NewRNG(71)
	for trial := 0; trial < 100; trial++ {
		tbl := NewTable("t", Schema{{Name: "g", Type: Int64}})
		for i := 0; i < r.Intn(80); i++ {
			tbl.MustAppend(Row{I(r.Int63n(6))})
		}
		viaCount, err := Scan(tbl, nil).GroupCount("g").Rows()
		if err != nil {
			t.Fatal(err)
		}
		viaGroupBy, err := Scan(tbl, nil).GroupBy("g", Aggregation{Func: AggCount}).Rows()
		if err != nil {
			t.Fatal(err)
		}
		if len(viaCount) != len(viaGroupBy) {
			t.Fatalf("trial %d: %d vs %d groups", trial, len(viaCount), len(viaGroupBy))
		}
		counts := map[int64]int64{}
		for _, row := range viaCount {
			counts[row[0].Int] = row[1].Int
		}
		for _, row := range viaGroupBy {
			if counts[row[0].Int] != row[1].Int {
				t.Fatalf("trial %d: group %d: %d vs %d",
					trial, row[0].Int, row[1].Int, counts[row[0].Int])
			}
		}
	}
}

// Property: per-group sum/min/max match a naive map-based computation.
func TestGroupByMatchesNaive(t *testing.T) {
	r := stats.NewRNG(72)
	for trial := 0; trial < 100; trial++ {
		tbl := NewTable("t", Schema{{Name: "g", Type: Int64}, {Name: "v", Type: Int64}})
		sums := map[int64]int64{}
		mins := map[int64]int64{}
		maxs := map[int64]int64{}
		for i := 0; i < r.Intn(80); i++ {
			g := r.Int63n(5)
			v := r.Int63n(100) - 50
			tbl.MustAppend(Row{I(g), I(v)})
			if _, ok := sums[g]; !ok {
				mins[g], maxs[g] = v, v
			} else {
				if v < mins[g] {
					mins[g] = v
				}
				if v > maxs[g] {
					maxs[g] = v
				}
			}
			sums[g] += v
		}
		rows, err := Scan(tbl, nil).GroupBy("g",
			Aggregation{Func: AggSum, Col: "v"},
			Aggregation{Func: AggMin, Col: "v"},
			Aggregation{Func: AggMax, Col: "v"},
		).Rows()
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != len(sums) {
			t.Fatalf("trial %d: %d groups, want %d", trial, len(rows), len(sums))
		}
		for _, row := range rows {
			g := row[0].Int
			if row[1].Int != sums[g] || row[2].Int != mins[g] || row[3].Int != maxs[g] {
				t.Fatalf("trial %d group %d: got (%d,%d,%d), want (%d,%d,%d)",
					trial, g, row[1].Int, row[2].Int, row[3].Int, sums[g], mins[g], maxs[g])
			}
		}
	}
}

func TestAggFuncString(t *testing.T) {
	cases := map[AggFunc]string{
		AggCount: "count", AggSum: "sum", AggMin: "min", AggMax: "max",
		AggFunc(9): "AggFunc(9)",
	}
	for f, want := range cases {
		if got := f.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(f), got, want)
		}
	}
}

func TestGroupByMetersBuildWork(t *testing.T) {
	tbl := aggTable(t)
	meter := NewMeter(DefaultCostModel())
	if _, err := Scan(tbl, meter).GroupBy("region",
		Aggregation{Func: AggSum, Col: "amount"}).Rows(); err != nil {
		t.Fatal(err)
	}
	if meter.RowsBuilt != int64(tbl.Len()) {
		t.Errorf("RowsBuilt = %d, want %d", meter.RowsBuilt, tbl.Len())
	}
}
