package engine

// Columnar batch execution. Operators pass a Batch — column vectors plus
// an optional selection vector — instead of one Row at a time, so the hot
// loops (scans, hash probes, aggregation) run over typed slices with no
// per-row interface calls and no per-row Datum materialization.
//
// Metering contract: batch operators charge the meter for exactly the
// same unit counts, in the same places, as the retained row-at-a-time
// reference in rowref.go — one scan per row a Scan produces, one build
// per row entering a hash build or aggregation, one probe per probe-side
// row reaching a join, one emit per row leaving Rows/ForEachBatch. When a
// Limit bounds the query, operators propagate the remaining row budget
// upstream and pull exactly the rows a row-at-a-time engine would have
// pulled, so lazy early-exit metering is also identical.
//
// The streamable operators here (scan, filter, project, join probes) are
// also instantiated per worker by the morsel-parallel scheduler in
// parallel.go; their only shared state across instances is read-only
// (tables, build sides, hash indexes).

// batchSize is the number of rows an unbounded batch carries. 1024 keeps
// a batch of a few int64 columns inside L2 while amortizing per-batch
// overhead to noise.
const batchSize = 1024

// Vector is one column of a Batch. Exactly the slice matching Kind is
// populated, aligned with the batch's physical row positions.
type Vector struct {
	Kind   ColType
	Ints   []int64
	Floats []float64
	Strs   []string
}

// datum returns the vector's value at physical position i as a Datum.
func (v *Vector) datum(i int) Datum {
	switch v.Kind {
	case Int64:
		return I(v.Ints[i])
	case Float64:
		return F(v.Floats[i])
	default:
		return S(v.Strs[i])
	}
}

// Batch is a columnar set of rows flowing between operators: one Vector
// per output column plus an optional selection vector. A batch returned
// by an iterator is valid only until the next pull from that iterator;
// consumers must copy what they retain.
type Batch struct {
	cols []Vector
	sel  []int32 // active physical positions, ascending; nil = all
	n    int     // physical row count of every vector
}

// Len returns the number of active (selected) rows.
func (b *Batch) Len() int {
	if b.sel != nil {
		return len(b.sel)
	}
	return b.n
}

// Col returns column i's vector. Positions in it are physical: apply
// Sel() when one is present.
func (b *Batch) Col(i int) *Vector { return &b.cols[i] }

// Sel returns the selection vector (active physical positions in
// ascending order), or nil when every physical row is active.
func (b *Batch) Sel() []int32 { return b.sel }

// forEachActive calls fn for each active physical position, in order.
func (b *Batch) forEachActive(fn func(pos int)) {
	if b.sel != nil {
		for _, p := range b.sel {
			fn(int(p))
		}
		return
	}
	for p := 0; p < b.n; p++ {
		fn(p)
	}
}

// batchIterator is the pull interface between batch operators. nextBatch
// returns nil when exhausted. limit > 0 is a row budget: produce at most
// limit rows and pull from upstream only what a row-at-a-time engine
// serving limit rows would have pulled (meters depend on this); limit <= 0
// means unbounded.
type batchIterator interface {
	Schema() Schema
	nextBatch(limit int) *Batch
}

// batchScan streams a table's columns as zero-copy vector views.
type batchScan struct {
	t     *Table
	meter *Meter
	pos   int
	out   Batch
}

func (s *batchScan) Schema() Schema { return s.t.Schema() }

func (s *batchScan) nextBatch(limit int) *Batch {
	remaining := s.t.Len() - s.pos
	if remaining <= 0 {
		return nil
	}
	n := batchSize
	if remaining < n {
		n = remaining
	}
	if limit > 0 && limit < n {
		n = limit
	}
	lo, hi := s.pos, s.pos+n
	s.pos = hi
	t := s.t
	if s.out.cols == nil {
		s.out.cols = make([]Vector, len(t.schema))
	}
	for i, c := range t.schema {
		slot := t.colSlot[i]
		v := &s.out.cols[i]
		v.Kind = c.Type
		switch c.Type {
		case Int64:
			v.Ints = t.ints[slot][lo:hi:hi]
		case Float64:
			v.Floats = t.floats[slot][lo:hi:hi]
		default:
			v.Strs = t.strs[slot][lo:hi:hi]
		}
	}
	s.out.sel = nil
	s.out.n = n
	if s.meter != nil {
		s.meter.RowsScanned += int64(n)
	}
	return &s.out
}

// batchFilter applies a predicate, narrowing the selection vector.
// intEq != -1 makes it a columnar int64-equality filter; otherwise pred
// runs over a scratch row (reused across calls — predicates must not
// retain it).
type batchFilter struct {
	in    batchIterator
	intEq int // column index for the fast path, or -1
	eqVal int64
	pred  func(Row) bool

	selBuf  []int32
	scratch Row
	out     Batch

	// gather buffers for the bounded path (limit > 0), where passing rows
	// are copied out one upstream pull at a time.
	gather    []Vector
	gatherLen int
}

func (f *batchFilter) Schema() Schema { return f.in.Schema() }

func (f *batchFilter) passes(b *Batch, pos int) bool {
	if f.intEq >= 0 {
		return b.cols[f.intEq].Ints[pos] == f.eqVal
	}
	if f.scratch == nil {
		f.scratch = make(Row, len(f.in.Schema()))
	}
	for c := range b.cols {
		f.scratch[c] = b.cols[c].datum(pos)
	}
	return f.pred(f.scratch)
}

func (f *batchFilter) nextBatch(limit int) *Batch {
	if limit > 0 {
		return f.nextBounded(limit)
	}
	for {
		b := f.in.nextBatch(0)
		if b == nil {
			return nil
		}
		sel := f.selBuf[:0]
		b.forEachActive(func(pos int) {
			if f.passes(b, pos) {
				sel = append(sel, int32(pos))
			}
		})
		f.selBuf = sel
		if len(sel) == 0 {
			continue
		}
		f.out = Batch{cols: b.cols, sel: sel, n: b.n}
		return &f.out
	}
}

// nextBounded pulls upstream rows one at a time until it has limit
// passing rows (or upstream is dry), exactly like a row-at-a-time filter
// under a limit, and copies them into gather buffers.
func (f *batchFilter) nextBounded(limit int) *Batch {
	schema := f.in.Schema()
	if f.gather == nil {
		f.gather = make([]Vector, len(schema))
		for i, c := range schema {
			f.gather[i].Kind = c.Type
		}
	}
	for i := range f.gather {
		v := &f.gather[i]
		v.Ints, v.Floats, v.Strs = v.Ints[:0], v.Floats[:0], v.Strs[:0]
	}
	f.gatherLen = 0
	for f.gatherLen < limit {
		b := f.in.nextBatch(1)
		if b == nil {
			break
		}
		got := false
		b.forEachActive(func(pos int) {
			if got || !f.passes(b, pos) {
				return
			}
			got = true
			for c := range b.cols {
				appendValue(&f.gather[c], &b.cols[c], pos)
			}
		})
		if got {
			f.gatherLen++
		}
	}
	if f.gatherLen == 0 {
		return nil
	}
	f.out = Batch{cols: f.gather, sel: nil, n: f.gatherLen}
	return &f.out
}

// appendValue copies src's value at physical position pos onto dst.
func appendValue(dst, src *Vector, pos int) {
	switch src.Kind {
	case Int64:
		dst.Ints = append(dst.Ints, src.Ints[pos])
	case Float64:
		dst.Floats = append(dst.Floats, src.Floats[pos])
	default:
		dst.Strs = append(dst.Strs, src.Strs[pos])
	}
}

// batchProject reorders column views; the selection vector passes
// through untouched, so projection costs nothing per row.
type batchProject struct {
	in     batchIterator
	idx    []int
	schema Schema
	out    Batch
}

func (p *batchProject) Schema() Schema { return p.schema }

func (p *batchProject) nextBatch(limit int) *Batch {
	b := p.in.nextBatch(limit)
	if b == nil {
		return nil
	}
	if p.out.cols == nil {
		p.out.cols = make([]Vector, len(p.idx))
	}
	for k, i := range p.idx {
		p.out.cols[k] = b.cols[i]
	}
	p.out.sel = b.sel
	p.out.n = b.n
	return &p.out
}

// joinTable is an open-addressing int64 → row-positions hash table for
// the batch hash join: linear probing over power-of-two slots, with
// per-key row chains threaded through next so duplicate build keys are
// emitted in build order (matching the reference's map[int64][]Row).
//
// next is indexed by build row id. A serial build owns the whole array;
// a radix-partitioned build (see buildPartitioned in parallel.go) hands
// every partition's table the same shared backing array — each row
// belongs to exactly one partition, so concurrent partition builds write
// disjoint entries.
type joinTable struct {
	mask int
	keys []int64
	head []int32 // first build row for the slot's key, -1 = empty slot
	tail []int32
	next []int32 // next build row with the same key, -1 = end
}

// joinSlots returns the power-of-two slot count for a table over rows
// keys (load factor ≤ 0.5).
func joinSlots(rows int) int {
	cap := 16
	for cap < 2*rows {
		cap *= 2
	}
	return cap
}

func newJoinTable(rows int) *joinTable {
	jt := &joinTable{next: make([]int32, rows)}
	jt.initSlots(joinSlots(rows))
	return jt
}

// initSlots (re)initializes the slot arrays to the given power-of-two
// size, leaving next alone.
func (jt *joinTable) initSlots(cap int) {
	jt.mask = cap - 1
	jt.keys = make([]int64, cap)
	jt.head = make([]int32, cap)
	jt.tail = make([]int32, cap)
	for i := range jt.head {
		jt.head[i] = -1
	}
}

// hashKey mixes an int64 key (splitmix64 finalizer) so sequential keys
// spread across slots.
func hashKey(k int64) uint64 {
	x := uint64(k)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// insert records that build row `row` has the given key. Rows of one key
// must be inserted in build order; h must be hashKey(key).
func (jt *joinTable) insert(h uint64, key int64, row int32) {
	jt.next[row] = -1
	slot := int(h) & jt.mask
	for {
		if jt.head[slot] < 0 {
			jt.keys[slot] = key
			jt.head[slot] = row
			jt.tail[slot] = row
			return
		}
		if jt.keys[slot] == key {
			jt.next[jt.tail[slot]] = row
			jt.tail[slot] = row
			return
		}
		slot = (slot + 1) & jt.mask
	}
}

// lookup returns the first build row with the key, or -1; h must be
// hashKey(key).
func (jt *joinTable) lookup(h uint64, key int64) int32 {
	slot := int(h) & jt.mask
	for {
		hd := jt.head[slot]
		if hd < 0 {
			return -1
		}
		if jt.keys[slot] == key {
			return hd
		}
		slot = (slot + 1) & jt.mask
	}
}

// buildSide is a join's materialized build input: its columns as flat
// vectors plus the hash table(s) over the join key — either one serial
// table (jt) or radix partitions routed by hash prefix (parts/partShift;
// see buildPartitioned in parallel.go). Either way next holds the
// per-key row chains, threaded in serial build order, and probing is
// byte-identical between the two layouts.
type buildSide struct {
	cols []Vector
	rows int

	jt        *joinTable
	parts     []joinTable
	partShift uint
	next      []int32
}

// first returns the first build row with the key, or -1.
func (bs *buildSide) first(key int64) int32 {
	h := hashKey(key)
	if bs.parts != nil {
		return bs.parts[h>>bs.partShift].lookup(h, key)
	}
	return bs.jt.lookup(h, key)
}

// materializeBuild drains a query's batches into flat vectors, inserting
// keyIdx into the hash table and charging one build unit per row — the
// same charge point as the reference join's build drain.
func materializeBuild(in batchIterator, keyIdx int, meter *Meter) *buildSide {
	schema := in.Schema()
	bs := &buildSide{cols: make([]Vector, len(schema))}
	for i, c := range schema {
		bs.cols[i].Kind = c.Type
	}
	var keys []int64
	for {
		b := in.nextBatch(0)
		if b == nil {
			break
		}
		b.forEachActive(func(pos int) {
			for c := range b.cols {
				appendValue(&bs.cols[c], &b.cols[c], pos)
			}
			keys = append(keys, b.cols[keyIdx].Ints[pos])
			bs.rows++
		})
		if meter != nil {
			meter.RowsBuilt += int64(b.Len())
		}
	}
	bs.jt = newJoinTable(bs.rows)
	for i, k := range keys {
		bs.jt.insert(hashKey(k), k, int32(i))
	}
	bs.next = bs.jt.next
	return bs
}

// batchHashJoin probes the build side once per probe row, gathering
// matched probe and build columns into output vectors without ever
// materializing an intermediate Row.
type batchHashJoin struct {
	in       batchIterator
	build    *buildSide
	probeIdx int
	schema   Schema
	meter    *Meter

	cur     *Batch // current probe batch
	curPos  int    // index into cur's active rows
	pending int32  // next matching build row for the current probe row, -1 = none
	curRow  int    // physical position of the current probe row

	out Batch
}

func (h *batchHashJoin) Schema() Schema { return h.schema }

// activeAt returns the physical position of active row i in b.
func activeAt(b *Batch, i int) int {
	if b.sel != nil {
		return int(b.sel[i])
	}
	return i
}

func (h *batchHashJoin) nextBatch(limit int) *Batch {
	nProbe := len(h.in.Schema())
	if h.out.cols == nil {
		h.out.cols = make([]Vector, len(h.schema))
		for i, c := range h.schema {
			h.out.cols[i].Kind = c.Type
		}
	}
	for i := range h.out.cols {
		v := &h.out.cols[i]
		v.Ints, v.Floats, v.Strs = v.Ints[:0], v.Floats[:0], v.Strs[:0]
	}
	max := batchSize
	if limit > 0 && limit < max {
		max = limit
	}
	emitted := 0
	for emitted < max {
		if h.pending >= 0 {
			for c := 0; c < nProbe; c++ {
				appendValue(&h.out.cols[c], &h.cur.cols[c], h.curRow)
			}
			for c := nProbe; c < len(h.schema); c++ {
				bc := &h.build.cols[c-nProbe]
				appendValue(&h.out.cols[c], bc, int(h.pending))
			}
			h.pending = h.build.next[h.pending]
			emitted++
			continue
		}
		if h.cur == nil || h.curPos >= h.cur.Len() {
			pull := 0
			if limit > 0 {
				pull = 1
			}
			h.cur = h.in.nextBatch(pull)
			h.curPos = 0
			if h.cur == nil {
				break
			}
			continue
		}
		h.curRow = activeAt(h.cur, h.curPos)
		h.curPos++
		if h.meter != nil {
			h.meter.RowsProbed++
		}
		h.pending = h.build.first(h.cur.cols[h.probeIdx].Ints[h.curRow])
	}
	if emitted == 0 {
		return nil
	}
	h.out.sel = nil
	h.out.n = emitted
	return &h.out
}

// batchIndexJoin is the index-probing variant: build cost was paid when
// the index was created, so each probe row charges a probe via
// HashIndex.Lookup and gathers matches straight from the indexed table's
// column storage.
type batchIndexJoin struct {
	in       batchIterator
	idx      *HashIndex
	probeIdx int
	schema   Schema
	meter    *Meter

	cur     *Batch
	curPos  int
	curRow  int
	pending []int32
	pendPos int

	out Batch
}

func (ij *batchIndexJoin) Schema() Schema { return ij.schema }

func (ij *batchIndexJoin) nextBatch(limit int) *Batch {
	nProbe := len(ij.in.Schema())
	t := ij.idx.Table()
	if ij.out.cols == nil {
		ij.out.cols = make([]Vector, len(ij.schema))
		for i, c := range ij.schema {
			ij.out.cols[i].Kind = c.Type
		}
	}
	for i := range ij.out.cols {
		v := &ij.out.cols[i]
		v.Ints, v.Floats, v.Strs = v.Ints[:0], v.Floats[:0], v.Strs[:0]
	}
	max := batchSize
	if limit > 0 && limit < max {
		max = limit
	}
	emitted := 0
	for emitted < max {
		if ij.pendPos < len(ij.pending) {
			pos := int(ij.pending[ij.pendPos])
			ij.pendPos++
			for c := 0; c < nProbe; c++ {
				appendValue(&ij.out.cols[c], &ij.cur.cols[c], ij.curRow)
			}
			for c := nProbe; c < len(ij.schema); c++ {
				ti := c - nProbe
				slot := t.colSlot[ti]
				v := &ij.out.cols[c]
				switch t.schema[ti].Type {
				case Int64:
					v.Ints = append(v.Ints, t.ints[slot][pos])
				case Float64:
					v.Floats = append(v.Floats, t.floats[slot][pos])
				default:
					v.Strs = append(v.Strs, t.strs[slot][pos])
				}
			}
			emitted++
			continue
		}
		if ij.cur == nil || ij.curPos >= ij.cur.Len() {
			pull := 0
			if limit > 0 {
				pull = 1
			}
			ij.cur = ij.in.nextBatch(pull)
			ij.curPos = 0
			if ij.cur == nil {
				break
			}
			continue
		}
		ij.curRow = activeAt(ij.cur, ij.curPos)
		ij.curPos++
		ij.pending = ij.idx.Lookup(ij.cur.cols[ij.probeIdx].Ints[ij.curRow], ij.meter)
		ij.pendPos = 0
	}
	if emitted == 0 {
		return nil
	}
	ij.out.sel = nil
	ij.out.n = emitted
	return &ij.out
}

// batchSlice serves pre-materialized vectors (aggregation and sort
// results), honoring row budgets by slicing views.
type batchSlice struct {
	cols   []Vector
	rows   int
	schema Schema
	pos    int
	out    Batch
}

func (s *batchSlice) Schema() Schema { return s.schema }

func (s *batchSlice) nextBatch(limit int) *Batch {
	remaining := s.rows - s.pos
	if remaining <= 0 {
		return nil
	}
	n := batchSize
	if remaining < n {
		n = remaining
	}
	if limit > 0 && limit < n {
		n = limit
	}
	lo, hi := s.pos, s.pos+n
	s.pos = hi
	if s.out.cols == nil {
		s.out.cols = make([]Vector, len(s.cols))
	}
	for i := range s.cols {
		src := &s.cols[i]
		v := &s.out.cols[i]
		v.Kind = src.Kind
		switch src.Kind {
		case Int64:
			v.Ints = src.Ints[lo:hi:hi]
		case Float64:
			v.Floats = src.Floats[lo:hi:hi]
		default:
			v.Strs = src.Strs[lo:hi:hi]
		}
	}
	s.out.sel = nil
	s.out.n = n
	return &s.out
}

// batchLimit bounds the stream to n rows, propagating the remaining
// budget upstream so producers never over-pull (and never over-meter).
type batchLimit struct {
	in   batchIterator
	left int
}

func (l *batchLimit) Schema() Schema { return l.in.Schema() }

func (l *batchLimit) nextBatch(limit int) *Batch {
	if l.left <= 0 {
		return nil
	}
	budget := l.left
	if limit > 0 && limit < budget {
		budget = limit
	}
	b := l.in.nextBatch(budget)
	if b == nil {
		l.left = 0
		return nil
	}
	// Upstream honors the budget, but clamp defensively.
	if b.Len() > budget {
		if b.sel != nil {
			b.sel = b.sel[:budget]
		} else {
			b.n = budget
		}
	}
	l.left -= b.Len()
	return b
}
