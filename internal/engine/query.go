package engine

import (
	"fmt"
	"sort"
)

// Iterator is a pull-based row stream.
type Iterator interface {
	// Schema describes the rows produced.
	Schema() Schema
	// Next returns the next row, or false when exhausted.
	Next() (Row, bool)
}

// Query is a fluent builder over iterators. Construction errors are
// carried along and surfaced by Rows, so call chains stay linear.
type Query struct {
	it    Iterator
	meter *Meter
	err   error
}

// Scan starts a query with a sequential scan of a table, charging one
// scan unit per row read.
func Scan(t *Table, meter *Meter) *Query {
	return &Query{it: &scanIter{t: t, meter: meter}, meter: meter}
}

type scanIter struct {
	t     *Table
	meter *Meter
	pos   int
}

func (s *scanIter) Schema() Schema { return s.t.Schema() }

func (s *scanIter) Next() (Row, bool) {
	if s.pos >= s.t.Len() {
		return nil, false
	}
	row := s.t.RowAt(s.pos)
	s.pos++
	if s.meter != nil {
		s.meter.RowsScanned++
	}
	return row, true
}

// Filter keeps rows satisfying pred.
func (q *Query) Filter(pred func(Row) bool) *Query {
	if q.err != nil {
		return q
	}
	q.it = &filterIter{in: q.it, pred: pred}
	return q
}

// FilterIntEq keeps rows whose Int64 column equals v.
func (q *Query) FilterIntEq(col string, v int64) *Query {
	if q.err != nil {
		return q
	}
	i := q.it.Schema().ColIndex(col)
	if i < 0 {
		q.err = fmt.Errorf("engine: filter: no column %q", col)
		return q
	}
	q.it = &filterIter{in: q.it, pred: func(r Row) bool { return r[i].Int == v }}
	return q
}

type filterIter struct {
	in   Iterator
	pred func(Row) bool
}

func (f *filterIter) Schema() Schema { return f.in.Schema() }

func (f *filterIter) Next() (Row, bool) {
	for {
		row, ok := f.in.Next()
		if !ok {
			return nil, false
		}
		if f.pred(row) {
			return row, true
		}
	}
}

// Project keeps only the named columns, in the given order.
func (q *Query) Project(cols ...string) *Query {
	if q.err != nil {
		return q
	}
	in := q.it.Schema()
	idx := make([]int, len(cols))
	out := make(Schema, len(cols))
	for k, c := range cols {
		i := in.ColIndex(c)
		if i < 0 {
			q.err = fmt.Errorf("engine: project: no column %q", c)
			return q
		}
		idx[k] = i
		out[k] = in[i]
	}
	q.it = &projectIter{in: q.it, idx: idx, schema: out}
	return q
}

type projectIter struct {
	in     Iterator
	idx    []int
	schema Schema
}

func (p *projectIter) Schema() Schema { return p.schema }

func (p *projectIter) Next() (Row, bool) {
	row, ok := p.in.Next()
	if !ok {
		return nil, false
	}
	out := make(Row, len(p.idx))
	for k, i := range p.idx {
		out[k] = row[i]
	}
	return out, true
}

// HashJoin equi-joins the query (probe side) with a fully materialized
// build side on Int64 columns: build one hash table over build's rows
// (charging build units), then probe it once per probe-side row (charging
// probe units). The output schema is probe's columns followed by build's,
// with build column names prefixed when they collide.
func (q *Query) HashJoin(build *Query, probeCol, buildCol string) *Query {
	if q.err != nil {
		return q
	}
	if build.err != nil {
		q.err = build.err
		return q
	}
	pi := q.it.Schema().ColIndex(probeCol)
	if pi < 0 || q.it.Schema()[pi].Type != Int64 {
		q.err = fmt.Errorf("engine: hash join: bad probe column %q", probeCol)
		return q
	}
	bSchema := build.it.Schema()
	bi := bSchema.ColIndex(buildCol)
	if bi < 0 || bSchema[bi].Type != Int64 {
		q.err = fmt.Errorf("engine: hash join: bad build column %q", buildCol)
		return q
	}
	// Materialize the build side.
	ht := make(map[int64][]Row)
	for {
		row, ok := build.it.Next()
		if !ok {
			break
		}
		key := row[bi].Int
		ht[key] = append(ht[key], row)
		if q.meter != nil {
			q.meter.RowsBuilt++
		}
	}
	out := append(Schema{}, q.it.Schema()...)
	probeNames := make(map[string]bool, len(out))
	for _, c := range out {
		probeNames[c.Name] = true
	}
	for _, c := range bSchema {
		name := c.Name
		if probeNames[name] {
			name = "b." + name
		}
		out = append(out, Column{Name: name, Type: c.Type})
	}
	q.it = &hashJoinIter{in: q.it, ht: ht, probeIdx: pi, schema: out, meter: q.meter}
	return q
}

type hashJoinIter struct {
	in       Iterator
	ht       map[int64][]Row
	probeIdx int
	schema   Schema
	meter    *Meter

	pending []Row
	current Row
}

func (h *hashJoinIter) Schema() Schema { return h.schema }

func (h *hashJoinIter) Next() (Row, bool) {
	for {
		if len(h.pending) > 0 {
			match := h.pending[0]
			h.pending = h.pending[1:]
			out := make(Row, 0, len(h.schema))
			out = append(out, h.current...)
			out = append(out, match...)
			return out, true
		}
		row, ok := h.in.Next()
		if !ok {
			return nil, false
		}
		if h.meter != nil {
			h.meter.RowsProbed++
		}
		h.current = row
		h.pending = h.ht[row[h.probeIdx].Int]
	}
}

// IndexJoin joins the query with an indexed table: for each input row it
// probes the hash index on the row's Int64 column value and emits the
// concatenation with each matching table row. Unlike HashJoin, the build
// cost was paid when the index was created (typically alongside a
// materialized view), so queries pay probes only — that asymmetry is the
// optimization being priced.
func (q *Query) IndexJoin(idx *HashIndex, probeCol string) *Query {
	if q.err != nil {
		return q
	}
	pi := q.it.Schema().ColIndex(probeCol)
	if pi < 0 || q.it.Schema()[pi].Type != Int64 {
		q.err = fmt.Errorf("engine: index join: bad probe column %q", probeCol)
		return q
	}
	out := append(Schema{}, q.it.Schema()...)
	names := make(map[string]bool, len(out))
	for _, c := range out {
		names[c.Name] = true
	}
	for _, c := range idx.Table().Schema() {
		name := c.Name
		if names[name] {
			name = "b." + name
		}
		out = append(out, Column{Name: name, Type: c.Type})
	}
	q.it = &indexJoinIter{in: q.it, idx: idx, probeIdx: pi, schema: out, meter: q.meter}
	return q
}

type indexJoinIter struct {
	in       Iterator
	idx      *HashIndex
	probeIdx int
	schema   Schema
	meter    *Meter

	pending []int32
	current Row
}

func (ij *indexJoinIter) Schema() Schema { return ij.schema }

func (ij *indexJoinIter) Next() (Row, bool) {
	for {
		if len(ij.pending) > 0 {
			pos := ij.pending[0]
			ij.pending = ij.pending[1:]
			out := make(Row, 0, len(ij.schema))
			out = append(out, ij.current...)
			out = append(out, ij.idx.Table().RowAt(int(pos))...)
			return out, true
		}
		row, ok := ij.in.Next()
		if !ok {
			return nil, false
		}
		ij.current = row
		ij.pending = ij.idx.Lookup(row[ij.probeIdx].Int, ij.meter)
	}
}

// GroupCount groups by an Int64 column and counts rows per group. The
// output schema is (col, "count"), both Int64. Each input row charges one
// build unit (hash aggregation).
func (q *Query) GroupCount(col string) *Query {
	if q.err != nil {
		return q
	}
	i := q.it.Schema().ColIndex(col)
	if i < 0 || q.it.Schema()[i].Type != Int64 {
		q.err = fmt.Errorf("engine: group count: bad column %q", col)
		return q
	}
	counts := make(map[int64]int64)
	order := make([]int64, 0)
	for {
		row, ok := q.it.Next()
		if !ok {
			break
		}
		k := row[i].Int
		if _, seen := counts[k]; !seen {
			order = append(order, k)
		}
		counts[k]++
		if q.meter != nil {
			q.meter.RowsBuilt++
		}
	}
	name := q.it.Schema()[i].Name
	rows := make([]Row, 0, len(order))
	for _, k := range order {
		rows = append(rows, Row{I(k), I(counts[k])})
	}
	q.it = &sliceIter{rows: rows, schema: Schema{{Name: name, Type: Int64}, {Name: "count", Type: Int64}}}
	return q
}

type sliceIter struct {
	rows   []Row
	schema Schema
	pos    int
}

func (s *sliceIter) Schema() Schema { return s.schema }

func (s *sliceIter) Next() (Row, bool) {
	if s.pos >= len(s.rows) {
		return nil, false
	}
	r := s.rows[s.pos]
	s.pos++
	return r, true
}

// Top1By keeps the single row with the largest Int64 value in the named
// column (ties: first seen). The result has zero or one row.
func (q *Query) Top1By(col string) *Query {
	if q.err != nil {
		return q
	}
	i := q.it.Schema().ColIndex(col)
	if i < 0 || q.it.Schema()[i].Type != Int64 {
		q.err = fmt.Errorf("engine: top1: bad column %q", col)
		return q
	}
	var best Row
	for {
		row, ok := q.it.Next()
		if !ok {
			break
		}
		if best == nil || row[i].Int > best[i].Int {
			best = row
		}
	}
	rows := []Row{}
	if best != nil {
		rows = append(rows, best)
	}
	q.it = &sliceIter{rows: rows, schema: q.it.Schema()}
	return q
}

// OrderByInt sorts (materializing) by an Int64 column, ascending or
// descending.
func (q *Query) OrderByInt(col string, desc bool) *Query {
	if q.err != nil {
		return q
	}
	i := q.it.Schema().ColIndex(col)
	if i < 0 || q.it.Schema()[i].Type != Int64 {
		q.err = fmt.Errorf("engine: order by: bad column %q", col)
		return q
	}
	var rows []Row
	for {
		row, ok := q.it.Next()
		if !ok {
			break
		}
		rows = append(rows, row)
	}
	sort.SliceStable(rows, func(a, b int) bool {
		if desc {
			return rows[a][i].Int > rows[b][i].Int
		}
		return rows[a][i].Int < rows[b][i].Int
	})
	q.it = &sliceIter{rows: rows, schema: q.it.Schema()}
	return q
}

// Limit keeps the first n rows.
func (q *Query) Limit(n int) *Query {
	if q.err != nil {
		return q
	}
	q.it = &limitIter{in: q.it, left: n}
	return q
}

type limitIter struct {
	in   Iterator
	left int
}

func (l *limitIter) Schema() Schema { return l.in.Schema() }

func (l *limitIter) Next() (Row, bool) {
	if l.left <= 0 {
		return nil, false
	}
	l.left--
	return l.in.Next()
}

// Rows drains the query, charging one emit unit per output row, and
// returns all rows or the first construction error.
func (q *Query) Rows() ([]Row, error) {
	if q.err != nil {
		return nil, q.err
	}
	var out []Row
	for {
		row, ok := q.it.Next()
		if !ok {
			break
		}
		out = append(out, row)
		if q.meter != nil {
			q.meter.RowsEmitted++
		}
	}
	return out, nil
}

// OutSchema returns the query's output schema (nil if the query errored).
func (q *Query) OutSchema() Schema {
	if q.err != nil {
		return nil
	}
	return q.it.Schema()
}
