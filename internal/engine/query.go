package engine

import (
	"fmt"
	"runtime"
	"sort"
)

// Query is a fluent builder over columnar batch operators (see batch.go).
// Construction errors are carried along and surfaced by Rows, so call
// chains stay linear. The row-at-a-time reference implementation the
// batch operators are differentially tested against lives in rowref.go.
type Query struct {
	it    batchIterator
	meter *Meter
	err   error

	// par is the worker count WithParallelism selected (<2 = serial);
	// spec is the replayable morsel pipeline the workers execute, kept
	// alongside the serial iterator chain while the pipeline remains
	// streamable (see parallel.go).
	par  int
	spec *pipeSpec
}

// Scan starts a query with a sequential scan of a table, charging one
// scan unit per row read. Batches are zero-copy views of the table's
// column storage.
func Scan(t *Table, meter *Meter) *Query {
	return &Query{
		it:    &batchScan{t: t, meter: meter},
		meter: meter,
		par:   1,
		spec:  &pipeSpec{table: t},
	}
}

// WithParallelism selects morsel-driven parallel execution with n
// workers for the query's pipeline breakers (n <= 0 means GOMAXPROCS;
// n == 1, the default, keeps the serial path). Output rows and Meter
// counts are byte-identical to serial execution at any n — see
// parallel.go for the determinism contract. Filter predicates of a
// parallel query must be pure: they are invoked concurrently from
// multiple workers (each with its own scratch Row). Pipelines under a
// row budget (below a Limit) ignore the setting and run serially, since
// early-exit metering is defined by serial pull order.
func (q *Query) WithParallelism(n int) *Query {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	q.par = n
	return q
}

// Filter keeps rows satisfying pred. The Row passed to pred is a scratch
// buffer reused across calls; predicates must not retain it.
func (q *Query) Filter(pred func(Row) bool) *Query {
	if q.err != nil {
		return q
	}
	q.it = &batchFilter{in: q.it, intEq: -1, pred: pred}
	q.addStage(pipeStage{kind: stageFilter, pred: pred})
	return q
}

// FilterIntEq keeps rows whose Int64 column equals v. Unlike Filter it
// runs columnar: the predicate is evaluated directly against the int64
// vector, with no per-row materialization.
func (q *Query) FilterIntEq(col string, v int64) *Query {
	if q.err != nil {
		return q
	}
	i := q.it.Schema().ColIndex(col)
	if i < 0 {
		q.err = fmt.Errorf("engine: filter: no column %q", col)
		return q
	}
	if q.it.Schema()[i].Type != Int64 {
		// Match the reference's Datum semantics: a non-int column's Int
		// field is always zero.
		pred := func(r Row) bool { return r[i].Int == v }
		q.it = &batchFilter{in: q.it, intEq: -1, pred: pred}
		q.addStage(pipeStage{kind: stageFilter, pred: pred})
		return q
	}
	q.it = &batchFilter{in: q.it, intEq: i, eqVal: v}
	q.addStage(pipeStage{kind: stageFilterIntEq, intEq: i, eqVal: v})
	return q
}

// Project keeps only the named columns, in the given order. Projection
// only reorders vector references — it costs nothing per row.
func (q *Query) Project(cols ...string) *Query {
	if q.err != nil {
		return q
	}
	in := q.it.Schema()
	idx := make([]int, len(cols))
	out := make(Schema, len(cols))
	for k, c := range cols {
		i := in.ColIndex(c)
		if i < 0 {
			q.err = fmt.Errorf("engine: project: no column %q", c)
			return q
		}
		idx[k] = i
		out[k] = in[i]
	}
	q.it = &batchProject{in: q.it, idx: idx, schema: out}
	q.addStage(pipeStage{kind: stageProject, idx: idx, schema: out})
	return q
}

// joinSchema builds the output schema of a join: probe columns followed
// by build columns, with build names prefixed when they collide.
func joinSchema(probe, build Schema) Schema {
	out := append(Schema{}, probe...)
	probeNames := make(map[string]bool, len(out))
	for _, c := range out {
		probeNames[c.Name] = true
	}
	for _, c := range build {
		name := c.Name
		if probeNames[name] {
			name = "b." + name
		}
		out = append(out, Column{Name: name, Type: c.Type})
	}
	return out
}

// HashJoin equi-joins the query (probe side) with a fully materialized
// build side on Int64 columns: build one open-addressing hash table over
// build's rows (charging build units), then probe it once per probe-side
// row (charging probe units). The probe loop reads the build table's
// columns directly — no Row is materialized per probe. The output schema
// is probe's columns followed by build's, with build column names
// prefixed when they collide. Each side's WithParallelism setting
// governs its own pipeline: the build side drains morsel-parallel only
// if the build query opted in, and the probe side's setting applies at
// this query's eventual pipeline breaker.
func (q *Query) HashJoin(build *Query, probeCol, buildCol string) *Query {
	if q.err != nil {
		return q
	}
	if build.err != nil {
		q.err = build.err
		return q
	}
	pi := q.it.Schema().ColIndex(probeCol)
	if pi < 0 || q.it.Schema()[pi].Type != Int64 {
		q.err = fmt.Errorf("engine: hash join: bad probe column %q", probeCol)
		return q
	}
	bSchema := build.it.Schema()
	bi := bSchema.ColIndex(buildCol)
	if bi < 0 || bSchema[bi].Type != Int64 {
		q.err = fmt.Errorf("engine: hash join: bad build column %q", buildCol)
		return q
	}
	// Drain the build side morsel-parallel when the build query itself
	// opted in (its own WithParallelism governs its pipeline — a serial
	// build side must never be escalated, since its predicates made no
	// purity promise); the hash table is then populated sequentially from
	// the merged rows, so probe chains are threaded in exactly serial
	// build order. Charges split as in serial: the build pipeline's
	// scan/probe units go to the build query's meter, the per-row build
	// units to this query's meter.
	var bs *buildSide
	if spec, par := build.parallelPlan(); spec != nil {
		bs = materializeBuildParallel(spec, par, bi, build.meter, q.meter, bSchema)
		build.markDrained()
	} else {
		bs = materializeBuild(build.it, bi, q.meter)
	}
	out := joinSchema(q.it.Schema(), bSchema)
	q.it = &batchHashJoin{
		in:       q.it,
		build:    bs,
		probeIdx: pi,
		schema:   out,
		meter:    q.meter,
		pending:  -1,
	}
	q.addStage(pipeStage{kind: stageHashJoin, build: bs, probeIdx: pi, schema: out})
	return q
}

// IndexJoin joins the query with an indexed table: for each input row it
// probes the hash index on the row's Int64 column value and emits the
// concatenation with each matching table row. Unlike HashJoin, the build
// cost was paid when the index was created (typically alongside a
// materialized view), so queries pay probes only — that asymmetry is the
// optimization being priced.
func (q *Query) IndexJoin(idx *HashIndex, probeCol string) *Query {
	if q.err != nil {
		return q
	}
	pi := q.it.Schema().ColIndex(probeCol)
	if pi < 0 || q.it.Schema()[pi].Type != Int64 {
		q.err = fmt.Errorf("engine: index join: bad probe column %q", probeCol)
		return q
	}
	out := joinSchema(q.it.Schema(), idx.Table().Schema())
	q.it = &batchIndexJoin{
		in:       q.it,
		idx:      idx,
		probeIdx: pi,
		schema:   out,
		meter:    q.meter,
	}
	q.addStage(pipeStage{kind: stageIndexJoin, hidx: idx, probeIdx: pi, schema: out})
	return q
}

// GroupCount groups by an Int64 column and counts rows per group. The
// output schema is (col, "count"), both Int64, in first-seen group
// order. Each input row charges one build unit (hash aggregation).
func (q *Query) GroupCount(col string) *Query {
	if q.err != nil {
		return q
	}
	i := q.it.Schema().ColIndex(col)
	if i < 0 || q.it.Schema()[i].Type != Int64 {
		q.err = fmt.Errorf("engine: group count: bad column %q", col)
		return q
	}
	var keys, counts []int64
	if spec, par := q.parallelPlan(); spec != nil {
		ks, accs := parallelGroupAgg(spec, par, q.meter, i,
			[]Aggregation{{Func: AggCount}}, []int{i})
		keys, counts = ks, accs[0]
	} else {
		slots := make(map[int64]int)
		for {
			b := q.it.nextBatch(0)
			if b == nil {
				break
			}
			vec := b.cols[i].Ints
			b.forEachActive(func(pos int) {
				k := vec[pos]
				s, seen := slots[k]
				if !seen {
					s = len(keys)
					slots[k] = s
					keys = append(keys, k)
					counts = append(counts, 0)
				}
				counts[s]++
			})
			if q.meter != nil {
				q.meter.RowsBuilt += int64(b.Len())
			}
		}
	}
	name := q.it.Schema()[i].Name
	q.it = &batchSlice{
		cols: []Vector{
			{Kind: Int64, Ints: keys},
			{Kind: Int64, Ints: counts},
		},
		rows:   len(keys),
		schema: Schema{{Name: name, Type: Int64}, {Name: "count", Type: Int64}},
	}
	q.spec = nil
	return q
}

// Top1By keeps the single row with the largest Int64 value in the named
// column (ties: first seen). The result has zero or one row.
func (q *Query) Top1By(col string) *Query {
	if q.err != nil {
		return q
	}
	schema := q.it.Schema()
	i := schema.ColIndex(col)
	if i < 0 || schema[i].Type != Int64 {
		q.err = fmt.Errorf("engine: top1: bad column %q", col)
		return q
	}
	best, found := q.drainTop1(schema, i)
	rows := 0
	if found {
		rows = 1
	}
	q.it = &batchSlice{cols: best, rows: rows, schema: schema}
	q.spec = nil
	return q
}

// markDrained replaces the query's plan with an exhausted iterator, so a
// second drain of a parallel query behaves exactly like a second drain
// of serial iterators: empty result, zero meter charges.
func (q *Query) markDrained() {
	q.it = &batchSlice{schema: q.it.Schema()}
	q.spec = nil
}

// drainTop1 fully drains the query and returns the best row (largest
// Int64 in column i, ties to the first seen) as single-row vectors,
// running morsel-parallel when the plan allows.
func (q *Query) drainTop1(schema Schema, i int) ([]Vector, bool) {
	if spec, par := q.parallelPlan(); spec != nil {
		best, found := parallelTop1(spec, par, q.meter, schema, i)
		q.markDrained()
		return best, found
	}
	best := make([]Vector, len(schema))
	for c := range best {
		best[c].Kind = schema[c].Type
	}
	found := false
	var bestVal int64
	for {
		b := q.it.nextBatch(0)
		if b == nil {
			break
		}
		vec := b.cols[i].Ints
		b.forEachActive(func(pos int) {
			v := vec[pos]
			if found && v <= bestVal {
				return
			}
			found, bestVal = true, v
			for c := range best {
				bv := &best[c]
				bv.Ints, bv.Floats, bv.Strs = bv.Ints[:0], bv.Floats[:0], bv.Strs[:0]
				appendValue(bv, &b.cols[c], pos)
			}
		})
	}
	return best, found
}

// Top1 drains the query and returns the single row with the largest
// Int64 value in the named column (ties: first seen), or ok=false when
// the query is empty. It is the batch-native shortcut for
// Top1By(col).Rows(): the winning row is materialized directly — no
// intermediate result set — and it charges exactly the same meter counts
// (one emit unit when a row is returned).
func (q *Query) Top1(col string) (Row, bool, error) {
	if q.err != nil {
		return nil, false, q.err
	}
	schema := q.it.Schema()
	i := schema.ColIndex(col)
	if i < 0 || schema[i].Type != Int64 {
		return nil, false, fmt.Errorf("engine: top1: bad column %q", col)
	}
	best, found := q.drainTop1(schema, i)
	if !found {
		return nil, false, nil
	}
	row := make(Row, len(schema))
	for c := range best {
		row[c] = best[c].datum(0)
	}
	if q.meter != nil {
		q.meter.RowsEmitted++
	}
	return row, true, nil
}

// OrderByInt sorts (materializing) by an Int64 column, ascending or
// descending. The sort is stable, preserving input order among equal
// keys.
func (q *Query) OrderByInt(col string, desc bool) *Query {
	if q.err != nil {
		return q
	}
	schema := q.it.Schema()
	i := schema.ColIndex(col)
	if i < 0 || schema[i].Type != Int64 {
		q.err = fmt.Errorf("engine: order by: bad column %q", col)
		return q
	}
	var flat []Vector
	rows := 0
	var perm []int
	if spec, par := q.parallelPlan(); spec != nil {
		// The per-morsel outputs are merged in morsel order, so the flat
		// row index order IS serial input order; the parallel merge sort's
		// index tiebreak therefore reproduces the serial stable sort
		// exactly (see parallelSortPerm).
		flat, rows = materializeParallel(spec, par, q.meter, schema)
		perm = parallelSortPerm(flat[i].Ints, rows, par, desc)
	} else {
		flat = make([]Vector, len(schema))
		for c := range flat {
			flat[c].Kind = schema[c].Type
		}
		for {
			b := q.it.nextBatch(0)
			if b == nil {
				break
			}
			b.forEachActive(func(pos int) {
				for c := range flat {
					appendValue(&flat[c], &b.cols[c], pos)
				}
				rows++
			})
		}
		perm = make([]int, rows)
		for p := range perm {
			perm[p] = p
		}
		key := flat[i].Ints
		sort.SliceStable(perm, func(a, b int) bool {
			if desc {
				return key[perm[a]] > key[perm[b]]
			}
			return key[perm[a]] < key[perm[b]]
		})
	}
	sorted := make([]Vector, len(schema))
	for c := range sorted {
		sorted[c].Kind = schema[c].Type
		for _, p := range perm {
			appendValue(&sorted[c], &flat[c], p)
		}
	}
	q.it = &batchSlice{cols: sorted, rows: rows, schema: schema}
	q.spec = nil
	return q
}

// Limit keeps the first n rows, propagating the remaining row budget
// upstream so producers pull (and meter) exactly the rows a row-at-a-time
// engine would have. A limited pipeline always executes serially: the
// rows an early exit pulls — and therefore meters — are defined by
// serial pull order.
func (q *Query) Limit(n int) *Query {
	if q.err != nil {
		return q
	}
	q.it = &batchLimit{in: q.it, left: n}
	q.spec = nil
	return q
}

// Rows drains the query, charging one emit unit per output row, and
// returns all rows or the first construction error. This is the
// row-at-a-time compatibility shim over batch execution: each output row
// is materialized exactly once, at exact size, with row storage allocated
// one batch at a time.
func (q *Query) Rows() ([]Row, error) {
	if q.err != nil {
		return nil, q.err
	}
	width := len(q.it.Schema())
	if spec, par := q.parallelPlan(); spec != nil {
		cols, rows := materializeParallel(spec, par, q.meter, q.it.Schema())
		q.markDrained()
		if rows == 0 {
			return nil, nil
		}
		backing := make([]Datum, rows*width)
		out := make([]Row, 0, rows)
		for r := 0; r < rows; r++ {
			row := backing[r*width : (r+1)*width : (r+1)*width]
			for c := range cols {
				row[c] = cols[c].datum(r)
			}
			out = append(out, row)
		}
		if q.meter != nil {
			q.meter.RowsEmitted += int64(rows)
		}
		return out, nil
	}
	var out []Row
	for {
		b := q.it.nextBatch(0)
		if b == nil {
			break
		}
		n := b.Len()
		backing := make([]Datum, n*width)
		k := 0
		b.forEachActive(func(pos int) {
			row := backing[k*width : (k+1)*width : (k+1)*width]
			for c := range b.cols {
				row[c] = b.cols[c].datum(pos)
			}
			out = append(out, row)
			k++
		})
		if q.meter != nil {
			q.meter.RowsEmitted += int64(n)
		}
	}
	return out, nil
}

// ForEachBatch drains the query batch-at-a-time, charging one emit unit
// per output row — the batch-native alternative to Rows for hot callers.
// The batch passed to fn is valid only for the duration of the call.
// When fn returns an error, a serial query stops pulling (and metering)
// upstream work; under a parallel plan the full pipeline has already
// executed and been metered by then, so callers that stop early via fn
// errors and depend on the remainder staying unbilled must not enable
// WithParallelism on the query they drain this way.
func (q *Query) ForEachBatch(fn func(*Batch) error) error {
	if q.err != nil {
		return q.err
	}
	it := q.it
	if spec, par := q.parallelPlan(); spec != nil {
		// The whole result set is merged before the first callback: a
		// parallel ForEachBatch trades the serial path's one-batch memory
		// peak for O(result) intermediate storage, and the pipeline's
		// scan/probe charges all land before fn first runs. Callers with
		// results too big for that — or that stop early by returning an
		// error and rely on the unpulled remainder staying unmetered —
		// should stay serial.
		cols, rows := materializeParallel(spec, par, q.meter, q.it.Schema())
		it = &batchSlice{cols: cols, rows: rows, schema: q.it.Schema()}
		q.markDrained()
	}
	for {
		b := it.nextBatch(0)
		if b == nil {
			return nil
		}
		if q.meter != nil {
			q.meter.RowsEmitted += int64(b.Len())
		}
		if err := fn(b); err != nil {
			return err
		}
	}
}

// OutSchema returns the query's output schema (nil if the query errored).
func (q *Query) OutSchema() Schema {
	if q.err != nil {
		return nil
	}
	return q.it.Schema()
}
