package engine

import (
	"fmt"
	"sort"
)

// Query is a fluent builder over columnar batch operators (see batch.go).
// Construction errors are carried along and surfaced by Rows, so call
// chains stay linear. The row-at-a-time reference implementation the
// batch operators are differentially tested against lives in rowref.go.
type Query struct {
	it    batchIterator
	meter *Meter
	err   error
}

// Scan starts a query with a sequential scan of a table, charging one
// scan unit per row read. Batches are zero-copy views of the table's
// column storage.
func Scan(t *Table, meter *Meter) *Query {
	return &Query{it: &batchScan{t: t, meter: meter}, meter: meter}
}

// Filter keeps rows satisfying pred. The Row passed to pred is a scratch
// buffer reused across calls; predicates must not retain it.
func (q *Query) Filter(pred func(Row) bool) *Query {
	if q.err != nil {
		return q
	}
	q.it = &batchFilter{in: q.it, intEq: -1, pred: pred}
	return q
}

// FilterIntEq keeps rows whose Int64 column equals v. Unlike Filter it
// runs columnar: the predicate is evaluated directly against the int64
// vector, with no per-row materialization.
func (q *Query) FilterIntEq(col string, v int64) *Query {
	if q.err != nil {
		return q
	}
	i := q.it.Schema().ColIndex(col)
	if i < 0 {
		q.err = fmt.Errorf("engine: filter: no column %q", col)
		return q
	}
	if q.it.Schema()[i].Type != Int64 {
		// Match the reference's Datum semantics: a non-int column's Int
		// field is always zero.
		q.it = &batchFilter{in: q.it, intEq: -1, pred: func(r Row) bool { return r[i].Int == v }}
		return q
	}
	q.it = &batchFilter{in: q.it, intEq: i, eqVal: v}
	return q
}

// Project keeps only the named columns, in the given order. Projection
// only reorders vector references — it costs nothing per row.
func (q *Query) Project(cols ...string) *Query {
	if q.err != nil {
		return q
	}
	in := q.it.Schema()
	idx := make([]int, len(cols))
	out := make(Schema, len(cols))
	for k, c := range cols {
		i := in.ColIndex(c)
		if i < 0 {
			q.err = fmt.Errorf("engine: project: no column %q", c)
			return q
		}
		idx[k] = i
		out[k] = in[i]
	}
	q.it = &batchProject{in: q.it, idx: idx, schema: out}
	return q
}

// joinSchema builds the output schema of a join: probe columns followed
// by build columns, with build names prefixed when they collide.
func joinSchema(probe, build Schema) Schema {
	out := append(Schema{}, probe...)
	probeNames := make(map[string]bool, len(out))
	for _, c := range out {
		probeNames[c.Name] = true
	}
	for _, c := range build {
		name := c.Name
		if probeNames[name] {
			name = "b." + name
		}
		out = append(out, Column{Name: name, Type: c.Type})
	}
	return out
}

// HashJoin equi-joins the query (probe side) with a fully materialized
// build side on Int64 columns: build one open-addressing hash table over
// build's rows (charging build units), then probe it once per probe-side
// row (charging probe units). The probe loop reads the build table's
// columns directly — no Row is materialized per probe. The output schema
// is probe's columns followed by build's, with build column names
// prefixed when they collide.
func (q *Query) HashJoin(build *Query, probeCol, buildCol string) *Query {
	if q.err != nil {
		return q
	}
	if build.err != nil {
		q.err = build.err
		return q
	}
	pi := q.it.Schema().ColIndex(probeCol)
	if pi < 0 || q.it.Schema()[pi].Type != Int64 {
		q.err = fmt.Errorf("engine: hash join: bad probe column %q", probeCol)
		return q
	}
	bSchema := build.it.Schema()
	bi := bSchema.ColIndex(buildCol)
	if bi < 0 || bSchema[bi].Type != Int64 {
		q.err = fmt.Errorf("engine: hash join: bad build column %q", buildCol)
		return q
	}
	bs := materializeBuild(build.it, bi, q.meter)
	q.it = &batchHashJoin{
		in:       q.it,
		build:    bs,
		probeIdx: pi,
		schema:   joinSchema(q.it.Schema(), bSchema),
		meter:    q.meter,
		pending:  -1,
	}
	return q
}

// IndexJoin joins the query with an indexed table: for each input row it
// probes the hash index on the row's Int64 column value and emits the
// concatenation with each matching table row. Unlike HashJoin, the build
// cost was paid when the index was created (typically alongside a
// materialized view), so queries pay probes only — that asymmetry is the
// optimization being priced.
func (q *Query) IndexJoin(idx *HashIndex, probeCol string) *Query {
	if q.err != nil {
		return q
	}
	pi := q.it.Schema().ColIndex(probeCol)
	if pi < 0 || q.it.Schema()[pi].Type != Int64 {
		q.err = fmt.Errorf("engine: index join: bad probe column %q", probeCol)
		return q
	}
	q.it = &batchIndexJoin{
		in:       q.it,
		idx:      idx,
		probeIdx: pi,
		schema:   joinSchema(q.it.Schema(), idx.Table().Schema()),
		meter:    q.meter,
	}
	return q
}

// GroupCount groups by an Int64 column and counts rows per group. The
// output schema is (col, "count"), both Int64, in first-seen group
// order. Each input row charges one build unit (hash aggregation).
func (q *Query) GroupCount(col string) *Query {
	if q.err != nil {
		return q
	}
	i := q.it.Schema().ColIndex(col)
	if i < 0 || q.it.Schema()[i].Type != Int64 {
		q.err = fmt.Errorf("engine: group count: bad column %q", col)
		return q
	}
	slots := make(map[int64]int)
	var keys, counts []int64
	for {
		b := q.it.nextBatch(0)
		if b == nil {
			break
		}
		vec := b.cols[i].Ints
		b.forEachActive(func(pos int) {
			k := vec[pos]
			s, seen := slots[k]
			if !seen {
				s = len(keys)
				slots[k] = s
				keys = append(keys, k)
				counts = append(counts, 0)
			}
			counts[s]++
		})
		if q.meter != nil {
			q.meter.RowsBuilt += int64(b.Len())
		}
	}
	name := q.it.Schema()[i].Name
	q.it = &batchSlice{
		cols: []Vector{
			{Kind: Int64, Ints: keys},
			{Kind: Int64, Ints: counts},
		},
		rows:   len(keys),
		schema: Schema{{Name: name, Type: Int64}, {Name: "count", Type: Int64}},
	}
	return q
}

// Top1By keeps the single row with the largest Int64 value in the named
// column (ties: first seen). The result has zero or one row.
func (q *Query) Top1By(col string) *Query {
	if q.err != nil {
		return q
	}
	schema := q.it.Schema()
	i := schema.ColIndex(col)
	if i < 0 || schema[i].Type != Int64 {
		q.err = fmt.Errorf("engine: top1: bad column %q", col)
		return q
	}
	best := make([]Vector, len(schema))
	for c := range best {
		best[c].Kind = schema[c].Type
	}
	found := false
	var bestVal int64
	for {
		b := q.it.nextBatch(0)
		if b == nil {
			break
		}
		vec := b.cols[i].Ints
		b.forEachActive(func(pos int) {
			v := vec[pos]
			if found && v <= bestVal {
				return
			}
			found, bestVal = true, v
			for c := range best {
				bv := &best[c]
				bv.Ints, bv.Floats, bv.Strs = bv.Ints[:0], bv.Floats[:0], bv.Strs[:0]
				appendValue(bv, &b.cols[c], pos)
			}
		})
	}
	rows := 0
	if found {
		rows = 1
	}
	q.it = &batchSlice{cols: best, rows: rows, schema: schema}
	return q
}

// OrderByInt sorts (materializing) by an Int64 column, ascending or
// descending. The sort is stable, preserving input order among equal
// keys.
func (q *Query) OrderByInt(col string, desc bool) *Query {
	if q.err != nil {
		return q
	}
	schema := q.it.Schema()
	i := schema.ColIndex(col)
	if i < 0 || schema[i].Type != Int64 {
		q.err = fmt.Errorf("engine: order by: bad column %q", col)
		return q
	}
	flat := make([]Vector, len(schema))
	for c := range flat {
		flat[c].Kind = schema[c].Type
	}
	rows := 0
	for {
		b := q.it.nextBatch(0)
		if b == nil {
			break
		}
		b.forEachActive(func(pos int) {
			for c := range flat {
				appendValue(&flat[c], &b.cols[c], pos)
			}
			rows++
		})
	}
	perm := make([]int, rows)
	for p := range perm {
		perm[p] = p
	}
	key := flat[i].Ints
	sort.SliceStable(perm, func(a, b int) bool {
		if desc {
			return key[perm[a]] > key[perm[b]]
		}
		return key[perm[a]] < key[perm[b]]
	})
	sorted := make([]Vector, len(schema))
	for c := range sorted {
		sorted[c].Kind = schema[c].Type
		for _, p := range perm {
			appendValue(&sorted[c], &flat[c], p)
		}
	}
	q.it = &batchSlice{cols: sorted, rows: rows, schema: schema}
	return q
}

// Limit keeps the first n rows, propagating the remaining row budget
// upstream so producers pull (and meter) exactly the rows a row-at-a-time
// engine would have.
func (q *Query) Limit(n int) *Query {
	if q.err != nil {
		return q
	}
	q.it = &batchLimit{in: q.it, left: n}
	return q
}

// Rows drains the query, charging one emit unit per output row, and
// returns all rows or the first construction error. This is the
// row-at-a-time compatibility shim over batch execution: each output row
// is materialized exactly once, at exact size, with row storage allocated
// one batch at a time.
func (q *Query) Rows() ([]Row, error) {
	if q.err != nil {
		return nil, q.err
	}
	width := len(q.it.Schema())
	var out []Row
	for {
		b := q.it.nextBatch(0)
		if b == nil {
			break
		}
		n := b.Len()
		backing := make([]Datum, n*width)
		k := 0
		b.forEachActive(func(pos int) {
			row := backing[k*width : (k+1)*width : (k+1)*width]
			for c := range b.cols {
				row[c] = b.cols[c].datum(pos)
			}
			out = append(out, row)
			k++
		})
		if q.meter != nil {
			q.meter.RowsEmitted += int64(n)
		}
	}
	return out, nil
}

// ForEachBatch drains the query batch-at-a-time, charging one emit unit
// per output row — the batch-native alternative to Rows for hot callers.
// The batch passed to fn is valid only for the duration of the call.
func (q *Query) ForEachBatch(fn func(*Batch) error) error {
	if q.err != nil {
		return q.err
	}
	for {
		b := q.it.nextBatch(0)
		if b == nil {
			return nil
		}
		if q.meter != nil {
			q.meter.RowsEmitted += int64(b.Len())
		}
		if err := fn(b); err != nil {
			return err
		}
	}
}

// OutSchema returns the query's output schema (nil if the query errored).
func (q *Query) OutSchema() Schema {
	if q.err != nil {
		return nil
	}
	return q.it.Schema()
}
