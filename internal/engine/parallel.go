package engine

// Morsel-driven parallel execution (Leis et al., SIGMOD 2014), adapted to
// the batch engine: a query whose pipeline is rooted at a table scan and
// composed only of streamable operators (Filter, Project, hash/index join
// probes) can be fanned out over fixed-size scan morsels to
// WithParallelism(n) workers. Each worker instantiates its own copy of
// the pipeline with a private Meter, claims morsels from an atomic
// counter, and drains them; pipeline breakers (hash build, grouped
// aggregation, Top1, sort, Rows/ForEachBatch) merge the per-morsel
// partials deterministically by morsel index and fold the worker meters
// into the query's meter with Meter.Add.
//
// Determinism contract: because morsels partition the scan in row order,
// per-morsel outputs preserve intra-morsel row order, and every merge
// point concatenates (or orders group partials) by first-occurrence
// coordinate, parallel execution produces byte-identical rows — and,
// since the same rows flow through the same charge points, identical
// folded Meter counts — as serial execution at any worker count.
// Pipelines under an active row budget (below a Limit) always run
// serially: early-exit metering is defined by serial pull order, so
// parallelizing it would change what a query is charged.

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// morselSize is the number of scan rows in one morsel — the unit of work
// a worker claims. It equals batchSize so a morsel is exactly one scan
// batch; joins fan a morsel out into multiple output batches.
const morselSize = batchSize

// stageKind tags one streamable operator recorded in a pipeSpec.
type stageKind int

const (
	stageFilter stageKind = iota
	stageFilterIntEq
	stageProject
	stageHashJoin
	stageIndexJoin
)

// pipeStage is one streamable operator's construction parameters, enough
// to instantiate a fresh iterator per worker. Exactly the fields for its
// kind are set.
type pipeStage struct {
	kind stageKind

	pred func(Row) bool // stageFilter: must be pure (called concurrently)

	intEq int // stageFilterIntEq
	eqVal int64

	idx    []int  // stageProject
	schema Schema // stageProject / stageHashJoin / stageIndexJoin output

	build    *buildSide // stageHashJoin (shared, read-only after build)
	probeIdx int        // stageHashJoin / stageIndexJoin
	hidx     *HashIndex // stageIndexJoin (shared, read-only)
}

// pipeSpec is the replayable description of a morsel-parallelizable
// pipeline: a root table scan plus streamable stages. Query methods keep
// it alongside the serial iterator chain and drop it (spec = nil) as soon
// as a non-streamable operator appears.
type pipeSpec struct {
	table  *Table
	stages []pipeStage
}

// addStage appends a streamable stage to a query's spec, if it still has
// one.
func (q *Query) addStage(st pipeStage) {
	if q.spec != nil {
		q.spec.stages = append(q.spec.stages, st)
	}
}

// parallelPlan returns the query's pipeline spec and effective worker
// count when the next pipeline breaker should run morsel-parallel, or
// (nil, 0) for the serial path.
func (q *Query) parallelPlan() (*pipeSpec, int) {
	if q.err != nil || q.par < 2 || q.spec == nil || q.spec.table.Len() == 0 {
		return nil, 0
	}
	return q.spec, q.par
}

// morselScan is batchScan bounded to one morsel's row range, resettable
// so a worker reuses one pipeline instance across the morsels it claims.
type morselScan struct {
	t     *Table
	meter *Meter
	pos   int
	end   int
	out   Batch
}

func (s *morselScan) reset(lo, hi int) { s.pos, s.end = lo, hi }

func (s *morselScan) Schema() Schema { return s.t.Schema() }

func (s *morselScan) nextBatch(limit int) *Batch {
	remaining := s.end - s.pos
	if remaining <= 0 {
		return nil
	}
	n := batchSize
	if remaining < n {
		n = remaining
	}
	if limit > 0 && limit < n {
		n = limit
	}
	lo, hi := s.pos, s.pos+n
	s.pos = hi
	t := s.t
	if s.out.cols == nil {
		s.out.cols = make([]Vector, len(t.schema))
	}
	for i, c := range t.schema {
		slot := t.colSlot[i]
		v := &s.out.cols[i]
		v.Kind = c.Type
		switch c.Type {
		case Int64:
			v.Ints = t.ints[slot][lo:hi:hi]
		case Float64:
			v.Floats = t.floats[slot][lo:hi:hi]
		default:
			v.Strs = t.strs[slot][lo:hi:hi]
		}
	}
	s.out.sel = nil
	s.out.n = n
	if s.meter != nil {
		s.meter.RowsScanned += int64(n)
	}
	return &s.out
}

// newPipe instantiates one worker's private copy of the pipeline. The
// scan and every per-iterator scratch buffer are worker-local; build
// sides and hash indexes are shared read-only.
func (s *pipeSpec) newPipe(meter *Meter) (*morselScan, batchIterator) {
	ms := &morselScan{t: s.table, meter: meter}
	var it batchIterator = ms
	for i := range s.stages {
		st := &s.stages[i]
		switch st.kind {
		case stageFilter:
			it = &batchFilter{in: it, intEq: -1, pred: st.pred}
		case stageFilterIntEq:
			it = &batchFilter{in: it, intEq: st.intEq, eqVal: st.eqVal}
		case stageProject:
			it = &batchProject{in: it, idx: st.idx, schema: st.schema}
		case stageHashJoin:
			it = &batchHashJoin{in: it, build: st.build, probeIdx: st.probeIdx,
				schema: st.schema, meter: meter, pending: -1}
		case stageIndexJoin:
			it = &batchIndexJoin{in: it, idx: st.hidx, probeIdx: st.probeIdx,
				schema: st.schema, meter: meter}
		}
	}
	return ms, it
}

// morselCount returns the number of morsels covering n scan rows.
func morselCount(n int) int { return (n + morselSize - 1) / morselSize }

// runMorsels executes the pipeline over every morsel of the spec's table
// with up to par workers, invoking emit for each output batch. A morsel's
// batches are emitted in order by a single worker, and a worker's claimed
// morsel indexes are strictly increasing, so emit may accumulate state
// keyed by (worker, morsel) without synchronization — it must only touch
// state owned by its worker or its morsel index. wm is the emitting
// worker's private meter (nil when meter is nil) for sink-level charges.
// After all workers finish, the worker meters are folded into meter in
// worker order.
func runMorsels(spec *pipeSpec, par int, meter *Meter, emit func(worker, morsel int, b *Batch, wm *Meter)) {
	n := spec.table.Len()
	morsels := morselCount(n)
	if morsels == 0 {
		return
	}
	if par > morsels {
		par = morsels
	}
	if par < 1 {
		par = 1
	}
	meters := make([]Meter, par)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var wm *Meter
			if meter != nil {
				wm = &meters[w]
			}
			scan, it := spec.newPipe(wm)
			for {
				m := int(next.Add(1)) - 1
				if m >= morsels {
					return
				}
				lo := m * morselSize
				hi := lo + morselSize
				if hi > n {
					hi = n
				}
				scan.reset(lo, hi)
				for {
					b := it.nextBatch(0)
					if b == nil {
						break
					}
					emit(w, m, b, wm)
				}
			}
		}(w)
	}
	wg.Wait()
	if meter != nil {
		for i := range meters {
			meter.Add(&meters[i])
		}
	}
}

// morselOut accumulates one morsel's output rows as flat vectors.
type morselOut struct {
	cols []Vector
	rows int
}

// materializeParallel drains the pipeline in parallel and concatenates
// the per-morsel outputs in morsel index order — exactly the serial drain
// order. Scan/probe charges happen inside the worker pipelines and fold
// into meter; sink-level charges (build or emit units on the
// materialized rows) are the caller's job.
func materializeParallel(spec *pipeSpec, par int, meter *Meter, schema Schema) ([]Vector, int) {
	outs := make([]morselOut, morselCount(spec.table.Len()))
	runMorsels(spec, par, meter, func(_, m int, b *Batch, _ *Meter) {
		o := &outs[m]
		if o.cols == nil {
			o.cols = make([]Vector, len(schema))
			for i, c := range schema {
				o.cols[i].Kind = c.Type
			}
		}
		b.forEachActive(func(pos int) {
			for c := range o.cols {
				appendValue(&o.cols[c], &b.cols[c], pos)
			}
		})
		o.rows += b.Len()
	})
	total := 0
	for i := range outs {
		total += outs[i].rows
	}
	flat := make([]Vector, len(schema))
	for c, col := range schema {
		flat[c].Kind = col.Type
		switch col.Type {
		case Int64:
			flat[c].Ints = make([]int64, 0, total)
		case Float64:
			flat[c].Floats = make([]float64, 0, total)
		default:
			flat[c].Strs = make([]string, 0, total)
		}
	}
	for i := range outs {
		for c := range outs[i].cols {
			src := &outs[i].cols[c]
			dst := &flat[c]
			switch src.Kind {
			case Int64:
				dst.Ints = append(dst.Ints, src.Ints...)
			case Float64:
				dst.Floats = append(dst.Floats, src.Floats...)
			default:
				dst.Strs = append(dst.Strs, src.Strs...)
			}
		}
	}
	return flat, total
}

// materializeBuildParallel is materializeBuild's morsel-parallel twin:
// the build input is drained in parallel, merged in morsel order, and the
// hash table is then populated from the merged rows — radix-partitioned
// across workers for large builds, sequentially for small ones — so the
// per-key probe chains are threaded in exactly serial build order either
// way. The meters split as in the serial join: the build pipeline's own
// charges fold into pipeMeter (the build query's meter), while the
// per-row build units go to buildMeter (the joining query's meter).
func materializeBuildParallel(spec *pipeSpec, par int, keyIdx int, pipeMeter, buildMeter *Meter, schema Schema) *buildSide {
	cols, rows := materializeParallel(spec, par, pipeMeter, schema)
	if buildMeter != nil {
		buildMeter.RowsBuilt += int64(rows)
	}
	bs := &buildSide{cols: cols, rows: rows}
	if par >= 2 && rows >= partitionedBuildMinRows {
		buildPartitioned(bs, keyIdx, par)
		return bs
	}
	bs.jt = newJoinTable(rows)
	for i, k := range cols[keyIdx].Ints {
		bs.jt.insert(hashKey(k), k, int32(i))
	}
	bs.next = bs.jt.next
	return bs
}

// partitionedBuildMinRows is the build-side size below which a parallel
// join still populates one hash table sequentially: spawning partition
// workers costs more than inserting a couple of morsels' worth of rows.
const partitionedBuildMinRows = 2 * morselSize

// buildPartitioned populates the build side's hash tables
// radix-partitioned by hash prefix: rows are counted and bucketed by the
// top bits of their key hash (a stable counting sort, so each partition
// lists its rows in ascending global row id — serial build order), then
// up to par workers claim partitions and build each partition's table
// independently. All rows of one key share a hash and therefore a
// partition, and within a partition rows are inserted in serial build
// order, so every per-key chain in the shared next array is byte-identical
// to the chain a sequential build threads — probes route by the same hash
// prefix and observe exactly the serial join's output.
func buildPartitioned(bs *buildSide, keyIdx int, par int) {
	rows := bs.rows
	keys := bs.cols[keyIdx].Ints

	nParts := 1
	for nParts < 4*par && nParts < 64 {
		nParts <<= 1
	}
	shift := uint(64 - bits.TrailingZeros(uint(nParts)))

	hashes := make([]uint64, rows)
	starts := make([]int32, nParts+1)
	for i, k := range keys {
		h := hashKey(k)
		hashes[i] = h
		starts[(h>>shift)+1]++
	}
	for p := 1; p <= nParts; p++ {
		starts[p] += starts[p-1]
	}
	rowsByPart := make([]int32, rows)
	cursor := make([]int32, nParts)
	copy(cursor, starts[:nParts])
	for i := range hashes {
		p := hashes[i] >> shift
		rowsByPart[cursor[p]] = int32(i)
		cursor[p]++
	}

	bs.parts = make([]joinTable, nParts)
	bs.partShift = shift
	bs.next = make([]int32, rows)

	workers := par
	if workers > nParts {
		workers = nParts
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				p := int(next.Add(1)) - 1
				if p >= nParts {
					return
				}
				jt := &bs.parts[p]
				own := rowsByPart[starts[p]:starts[p+1]]
				jt.next = bs.next
				jt.initSlots(joinSlots(len(own)))
				for _, row := range own {
					jt.insert(hashes[row], keys[row], row)
				}
			}
		}()
	}
	wg.Wait()
}

// parallelSortMinRows is the result size below which OrderByInt keeps
// the serial stable sort: per-worker runs plus merge rounds only pay off
// once the sort dominates goroutine startup.
const parallelSortMinRows = 4 * morselSize

// parallelSortPerm sorts a permutation of [0, rows) by the int64 key
// column using par workers: the index range is split into contiguous
// chunks, each chunk is sorted concurrently, and adjacent sorted runs are
// merged pairwise (also concurrently) until one run remains. The
// comparator orders by key with the global row index as tiebreak — a
// total order, so the result is exactly the serial stable sort's
// permutation regardless of chunk boundaries or worker count: row index
// order IS input order, because the rows were merged in morsel
// (= serial scan) order before sorting.
func parallelSortPerm(key []int64, rows, par int, desc bool) []int {
	perm := make([]int, rows)
	for i := range perm {
		perm[i] = i
	}
	less := func(a, b int) bool {
		if key[a] != key[b] {
			if desc {
				return key[a] > key[b]
			}
			return key[a] < key[b]
		}
		return a < b
	}
	if par < 2 || rows < parallelSortMinRows {
		sort.Slice(perm, func(a, b int) bool { return less(perm[a], perm[b]) })
		return perm
	}

	// Contiguous chunk bounds: runs[i] covers perm[runs[i]:runs[i+1]).
	runs := make([]int, 0, par+1)
	chunk := (rows + par - 1) / par
	for lo := 0; lo < rows; lo += chunk {
		runs = append(runs, lo)
	}
	runs = append(runs, rows)

	var wg sync.WaitGroup
	for r := 0; r+1 < len(runs); r++ {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			s := perm[lo:hi]
			sort.Slice(s, func(a, b int) bool { return less(s[a], s[b]) })
		}(runs[r], runs[r+1])
	}
	wg.Wait()

	// Pairwise merge rounds; adjacent runs stay contiguous, so each merge
	// writes its own [lo, hi) span of the scratch buffer.
	buf := make([]int, rows)
	for len(runs) > 2 {
		next := make([]int, 0, len(runs)/2+2)
		var mg sync.WaitGroup
		for r := 0; r+2 < len(runs); r += 2 {
			mg.Add(1)
			go func(lo, mid, hi int) {
				defer mg.Done()
				mergeRuns(buf, perm, lo, mid, hi, less)
			}(runs[r], runs[r+1], runs[r+2])
			next = append(next, runs[r])
		}
		if len(runs)%2 == 0 { // odd run count: the last run carries over
			lo, hi := runs[len(runs)-2], runs[len(runs)-1]
			copy(buf[lo:hi], perm[lo:hi])
			next = append(next, lo)
		}
		next = append(next, rows)
		mg.Wait()
		perm, buf = buf, perm
		runs = next
	}
	return perm
}

// mergeRuns merges the sorted runs src[lo:mid) and src[mid:hi) into
// dst[lo:hi).
func mergeRuns(dst, src []int, lo, mid, hi int, less func(a, b int) bool) {
	i, j, k := lo, mid, lo
	for i < mid && j < hi {
		if less(src[j], src[i]) {
			dst[k] = src[j]
			j++
		} else {
			dst[k] = src[i]
			i++
		}
		k++
	}
	k += copy(dst[k:], src[i:mid])
	copy(dst[k:], src[j:hi])
}

// coord is a row's global first-occurrence coordinate: morsel index in
// the high bits, row position within that morsel's output stream in the
// low 40 bits. Coordinates order rows exactly as the serial engine
// produces them, so "first seen" merges are deterministic.
type coord = uint64

// coordTracker assigns coordinates to a worker's output rows. Because a
// worker sees each of its morsels' batches contiguously and its morsel
// indexes increase, coordinates are strictly increasing per worker.
type coordTracker struct {
	lastMorsel int
	row        uint64
}

func (c *coordTracker) next(morsel int) coord {
	if morsel != c.lastMorsel {
		c.lastMorsel = morsel
		c.row = 0
	}
	r := c.row
	c.row++
	return uint64(morsel)<<40 | r
}

// groupPartial is one worker's aggregation state: per-group accumulators
// plus the coordinate of each group's first occurrence.
type groupPartial struct {
	slots  map[int64]int
	keys   []int64
	coords []coord
	accs   [][]int64
	tr     coordTracker
}

// parallelGroupAgg runs hash aggregation morsel-parallel: each worker
// aggregates its morsels into a private partial, then the partials are
// merged (count/sum added, min/max folded) and the merged groups are
// ordered by first-occurrence coordinate — the serial first-seen order.
// ki is the key column; cols[a] is the input column of aggs[a]. Each
// input row charges one build unit, as in the serial sinks.
func parallelGroupAgg(spec *pipeSpec, par int, meter *Meter, ki int, aggs []Aggregation, cols []int) ([]int64, [][]int64) {
	parts := make([]groupPartial, par)
	for w := range parts {
		parts[w] = groupPartial{
			slots: make(map[int64]int),
			accs:  make([][]int64, len(aggs)),
			tr:    coordTracker{lastMorsel: -1},
		}
	}
	runMorsels(spec, par, meter, func(w, m int, b *Batch, wm *Meter) {
		p := &parts[w]
		keyVec := b.cols[ki].Ints
		b.forEachActive(func(pos int) {
			at := p.tr.next(m)
			k := keyVec[pos]
			s, seen := p.slots[k]
			if !seen {
				s = len(p.keys)
				p.slots[k] = s
				p.keys = append(p.keys, k)
				p.coords = append(p.coords, at)
				for a := range p.accs {
					init := int64(0)
					switch aggs[a].Func {
					case AggMin, AggMax:
						init = b.cols[cols[a]].Ints[pos]
					}
					p.accs[a] = append(p.accs[a], init)
				}
			}
			for a, agg := range aggs {
				switch agg.Func {
				case AggCount:
					p.accs[a][s]++
				case AggSum:
					p.accs[a][s] += b.cols[cols[a]].Ints[pos]
				case AggMin:
					if v := b.cols[cols[a]].Ints[pos]; v < p.accs[a][s] {
						p.accs[a][s] = v
					}
				case AggMax:
					if v := b.cols[cols[a]].Ints[pos]; v > p.accs[a][s] {
						p.accs[a][s] = v
					}
				}
			}
		})
		if wm != nil {
			wm.RowsBuilt += int64(b.Len())
		}
	})

	// Merge worker partials. AggMin/AggMax partials were initialized from
	// a real first value, so folding min-of-mins / max-of-maxes is exact;
	// counts and sums add.
	gSlots := make(map[int64]int)
	var gKeys []int64
	var gCoords []coord
	gAccs := make([][]int64, len(aggs))
	for w := range parts {
		p := &parts[w]
		for s, k := range p.keys {
			g, seen := gSlots[k]
			if !seen {
				g = len(gKeys)
				gSlots[k] = g
				gKeys = append(gKeys, k)
				gCoords = append(gCoords, p.coords[s])
				for a := range gAccs {
					gAccs[a] = append(gAccs[a], p.accs[a][s])
				}
				continue
			}
			if p.coords[s] < gCoords[g] {
				gCoords[g] = p.coords[s]
			}
			for a, agg := range aggs {
				switch agg.Func {
				case AggCount, AggSum:
					gAccs[a][g] += p.accs[a][s]
				case AggMin:
					if p.accs[a][s] < gAccs[a][g] {
						gAccs[a][g] = p.accs[a][s]
					}
				case AggMax:
					if p.accs[a][s] > gAccs[a][g] {
						gAccs[a][g] = p.accs[a][s]
					}
				}
			}
		}
	}

	// Order groups by first occurrence — serial first-seen order.
	// Coordinates identify unique rows, so the order is total.
	perm := make([]int, len(gKeys))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool { return gCoords[perm[a]] < gCoords[perm[b]] })
	keys := make([]int64, len(gKeys))
	accs := make([][]int64, len(aggs))
	for a := range accs {
		accs[a] = make([]int64, len(gKeys))
	}
	for out, g := range perm {
		keys[out] = gKeys[g]
		for a := range accs {
			accs[a][out] = gAccs[a][g]
		}
	}
	return keys, accs
}

// top1Partial is one worker's running best row for Top1/Top1By.
type top1Partial struct {
	found bool
	val   int64
	at    coord
	best  []Vector // single-row copy of the best row
	tr    coordTracker
}

// parallelTop1 finds the row with the largest Int64 value in column i,
// breaking ties by earliest coordinate — the serial first-seen rule.
// It returns the winning row's columns as single-row vectors.
func parallelTop1(spec *pipeSpec, par int, meter *Meter, schema Schema, i int) ([]Vector, bool) {
	parts := make([]top1Partial, par)
	for w := range parts {
		parts[w] = top1Partial{tr: coordTracker{lastMorsel: -1}}
	}
	runMorsels(spec, par, meter, func(w, m int, b *Batch, _ *Meter) {
		p := &parts[w]
		if p.best == nil {
			p.best = make([]Vector, len(schema))
			for c, col := range schema {
				p.best[c].Kind = col.Type
			}
		}
		vec := b.cols[i].Ints
		b.forEachActive(func(pos int) {
			at := p.tr.next(m)
			v := vec[pos]
			// Within a worker coordinates increase, so strict > keeps the
			// earliest row among equals, as serial Top1By does.
			if p.found && v <= p.val {
				return
			}
			p.found, p.val, p.at = true, v, at
			for c := range p.best {
				bv := &p.best[c]
				bv.Ints, bv.Floats, bv.Strs = bv.Ints[:0], bv.Floats[:0], bv.Strs[:0]
				appendValue(bv, &b.cols[c], pos)
			}
		})
	})
	bestW := -1
	for w := range parts {
		p := &parts[w]
		if !p.found {
			continue
		}
		if bestW < 0 || p.val > parts[bestW].val ||
			(p.val == parts[bestW].val && p.at < parts[bestW].at) {
			bestW = w
		}
	}
	if bestW < 0 {
		return nil, false
	}
	return parts[bestW].best, true
}
