package engine

import (
	"fmt"
	"sort"
	"testing"

	"sharedopt/internal/stats"
)

// joinKey renders a row canonically for multiset comparison.
func joinKey(r Row) string {
	s := ""
	for _, d := range r {
		s += d.String() + "|"
	}
	return s
}

func multiset(rows []Row) map[string]int {
	m := make(map[string]int, len(rows))
	for _, r := range rows {
		m[joinKey(r)]++
	}
	return m
}

// nestedLoopJoin is the trivially-correct reference implementation.
func nestedLoopJoin(a, b *Table, aCol, bCol string) []Row {
	ai := a.Schema().ColIndex(aCol)
	bi := b.Schema().ColIndex(bCol)
	var out []Row
	for i := 0; i < a.Len(); i++ {
		for j := 0; j < b.Len(); j++ {
			if a.At(i, ai).Int == b.At(j, bi).Int {
				row := append(append(Row{}, a.RowAt(i)...), b.RowAt(j)...)
				out = append(out, row)
			}
		}
	}
	return out
}

func randomPair(r *stats.RNG) (*Table, *Table) {
	a := NewTable("a", Schema{{Name: "k", Type: Int64}, {Name: "va", Type: Int64}})
	b := NewTable("b", Schema{{Name: "k", Type: Int64}, {Name: "vb", Type: Int64}})
	keyRange := int64(1 + r.Intn(8))
	for i := 0; i < r.Intn(40); i++ {
		a.MustAppend(Row{I(r.Int63n(keyRange)), I(int64(i))})
	}
	for i := 0; i < r.Intn(40); i++ {
		b.MustAppend(Row{I(r.Int63n(keyRange)), I(int64(100 + i))})
	}
	return a, b
}

// Property: HashJoin produces exactly the nested-loop join's multiset.
func TestHashJoinMatchesNestedLoop(t *testing.T) {
	r := stats.NewRNG(101)
	for trial := 0; trial < 200; trial++ {
		a, b := randomPair(r)
		got, err := Scan(a, nil).HashJoin(Scan(b, nil), "k", "k").Rows()
		if err != nil {
			t.Fatal(err)
		}
		want := nestedLoopJoin(a, b, "k", "k")
		gm, wm := multiset(got), multiset(want)
		if len(gm) != len(wm) {
			t.Fatalf("trial %d: %d distinct rows, want %d", trial, len(gm), len(wm))
		}
		for k, n := range wm {
			if gm[k] != n {
				t.Fatalf("trial %d: row %q count %d, want %d", trial, k, gm[k], n)
			}
		}
	}
}

// Property: IndexJoin produces the same multiset as HashJoin.
func TestIndexJoinMatchesHashJoin(t *testing.T) {
	r := stats.NewRNG(202)
	for trial := 0; trial < 200; trial++ {
		a, b := randomPair(r)
		idx, err := BuildHashIndex(b, "k", nil)
		if err != nil {
			t.Fatal(err)
		}
		viaIndex, err := Scan(a, nil).IndexJoin(idx, "k").Rows()
		if err != nil {
			t.Fatal(err)
		}
		viaHash, err := Scan(a, nil).HashJoin(Scan(b, nil), "k", "k").Rows()
		if err != nil {
			t.Fatal(err)
		}
		im, hm := multiset(viaIndex), multiset(viaHash)
		if len(im) != len(hm) {
			t.Fatalf("trial %d: index %d vs hash %d distinct rows", trial, len(im), len(hm))
		}
		for k, n := range hm {
			if im[k] != n {
				t.Fatalf("trial %d: row %q: index %d, hash %d", trial, k, im[k], n)
			}
		}
	}
}

// Property: GroupCount sums to the input cardinality and matches a naive
// count.
func TestGroupCountMatchesNaive(t *testing.T) {
	r := stats.NewRNG(303)
	for trial := 0; trial < 200; trial++ {
		tbl := NewTable("t", Schema{{Name: "g", Type: Int64}})
		naive := map[int64]int64{}
		n := r.Intn(100)
		for i := 0; i < n; i++ {
			v := r.Int63n(10)
			tbl.MustAppend(Row{I(v)})
			naive[v]++
		}
		rows, err := Scan(tbl, nil).GroupCount("g").Rows()
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, row := range rows {
			if naive[row[0].Int] != row[1].Int {
				t.Fatalf("trial %d: group %d count %d, want %d",
					trial, row[0].Int, row[1].Int, naive[row[0].Int])
			}
			total += row[1].Int
		}
		if total != int64(n) {
			t.Fatalf("trial %d: counts sum to %d, want %d", trial, total, n)
		}
	}
}

// Property: OrderByInt emits a sorted permutation of its input.
func TestOrderByIsSortedPermutation(t *testing.T) {
	r := stats.NewRNG(404)
	for trial := 0; trial < 100; trial++ {
		tbl := NewTable("t", Schema{{Name: "x", Type: Int64}})
		var vals []int64
		for i := 0; i < r.Intn(60); i++ {
			v := r.Int63n(50)
			tbl.MustAppend(Row{I(v)})
			vals = append(vals, v)
		}
		rows, err := Scan(tbl, nil).OrderByInt("x", false).Rows()
		if err != nil {
			t.Fatal(err)
		}
		got := make([]int64, len(rows))
		for i, row := range rows {
			got[i] = row[0].Int
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		if fmt.Sprint(got) != fmt.Sprint(vals) {
			t.Fatalf("trial %d: %v != %v", trial, got, vals)
		}
	}
}

// Property: the meter is additive — running two queries on one meter
// equals the sum of running them on separate meters.
func TestMeterAdditivity(t *testing.T) {
	r := stats.NewRNG(505)
	a, b := randomPair(r)

	shared := NewMeter(DefaultCostModel())
	if _, err := Scan(a, shared).Rows(); err != nil {
		t.Fatal(err)
	}
	if _, err := Scan(a, shared).HashJoin(Scan(b, shared), "k", "k").Rows(); err != nil {
		t.Fatal(err)
	}

	m1 := NewMeter(DefaultCostModel())
	if _, err := Scan(a, m1).Rows(); err != nil {
		t.Fatal(err)
	}
	m2 := NewMeter(DefaultCostModel())
	if _, err := Scan(a, m2).HashJoin(Scan(b, m2), "k", "k").Rows(); err != nil {
		t.Fatal(err)
	}
	m1.Add(m2)
	if m1.WorkUnits() != shared.WorkUnits() {
		t.Errorf("separate %d != shared %d", m1.WorkUnits(), shared.WorkUnits())
	}
}

// Property: materialized views answer queries identically to recomputing
// from base tables.
func TestViewMatchesBaseComputation(t *testing.T) {
	r := stats.NewRNG(606)
	for trial := 0; trial < 50; trial++ {
		a, b := randomPair(r)
		mv, err := Materialize("j", Scan(a, nil).HashJoin(Scan(b, nil), "k", "k"), "k", nil)
		if err != nil {
			t.Fatal(err)
		}
		fromView, err := Scan(mv.Data, nil).Rows()
		if err != nil {
			t.Fatal(err)
		}
		fromBase, err := Scan(a, nil).HashJoin(Scan(b, nil), "k", "k").Rows()
		if err != nil {
			t.Fatal(err)
		}
		vm, bm := multiset(fromView), multiset(fromBase)
		if len(vm) != len(bm) {
			t.Fatalf("trial %d: view has %d distinct rows, base %d", trial, len(vm), len(bm))
		}
		for k, n := range bm {
			if vm[k] != n {
				t.Fatalf("trial %d: row %q: view %d, base %d", trial, k, vm[k], n)
			}
		}
	}
}
