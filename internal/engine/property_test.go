package engine

import (
	"fmt"
	"sort"
	"testing"

	"sharedopt/internal/stats"
)

// joinKey renders a row canonically for multiset comparison.
func joinKey(r Row) string {
	s := ""
	for _, d := range r {
		s += d.String() + "|"
	}
	return s
}

func multiset(rows []Row) map[string]int {
	m := make(map[string]int, len(rows))
	for _, r := range rows {
		m[joinKey(r)]++
	}
	return m
}

// nestedLoopJoin is the trivially-correct reference implementation.
func nestedLoopJoin(a, b *Table, aCol, bCol string) []Row {
	ai := a.Schema().ColIndex(aCol)
	bi := b.Schema().ColIndex(bCol)
	var out []Row
	for i := 0; i < a.Len(); i++ {
		for j := 0; j < b.Len(); j++ {
			if a.At(i, ai).Int == b.At(j, bi).Int {
				row := append(append(Row{}, a.RowAt(i)...), b.RowAt(j)...)
				out = append(out, row)
			}
		}
	}
	return out
}

func randomPair(r *stats.RNG) (*Table, *Table) {
	a := NewTable("a", Schema{{Name: "k", Type: Int64}, {Name: "va", Type: Int64}})
	b := NewTable("b", Schema{{Name: "k", Type: Int64}, {Name: "vb", Type: Int64}})
	keyRange := int64(1 + r.Intn(8))
	for i := 0; i < r.Intn(40); i++ {
		a.MustAppend(Row{I(r.Int63n(keyRange)), I(int64(i))})
	}
	for i := 0; i < r.Intn(40); i++ {
		b.MustAppend(Row{I(r.Int63n(keyRange)), I(int64(100 + i))})
	}
	return a, b
}

// Property: HashJoin produces exactly the nested-loop join's multiset.
func TestHashJoinMatchesNestedLoop(t *testing.T) {
	r := stats.NewRNG(101)
	for trial := 0; trial < 200; trial++ {
		a, b := randomPair(r)
		got, err := Scan(a, nil).HashJoin(Scan(b, nil), "k", "k").Rows()
		if err != nil {
			t.Fatal(err)
		}
		want := nestedLoopJoin(a, b, "k", "k")
		gm, wm := multiset(got), multiset(want)
		if len(gm) != len(wm) {
			t.Fatalf("trial %d: %d distinct rows, want %d", trial, len(gm), len(wm))
		}
		for k, n := range wm {
			if gm[k] != n {
				t.Fatalf("trial %d: row %q count %d, want %d", trial, k, gm[k], n)
			}
		}
	}
}

// Property: IndexJoin produces the same multiset as HashJoin.
func TestIndexJoinMatchesHashJoin(t *testing.T) {
	r := stats.NewRNG(202)
	for trial := 0; trial < 200; trial++ {
		a, b := randomPair(r)
		idx, err := BuildHashIndex(b, "k", nil)
		if err != nil {
			t.Fatal(err)
		}
		viaIndex, err := Scan(a, nil).IndexJoin(idx, "k").Rows()
		if err != nil {
			t.Fatal(err)
		}
		viaHash, err := Scan(a, nil).HashJoin(Scan(b, nil), "k", "k").Rows()
		if err != nil {
			t.Fatal(err)
		}
		im, hm := multiset(viaIndex), multiset(viaHash)
		if len(im) != len(hm) {
			t.Fatalf("trial %d: index %d vs hash %d distinct rows", trial, len(im), len(hm))
		}
		for k, n := range hm {
			if im[k] != n {
				t.Fatalf("trial %d: row %q: index %d, hash %d", trial, k, im[k], n)
			}
		}
	}
}

// Property: GroupCount sums to the input cardinality and matches a naive
// count.
func TestGroupCountMatchesNaive(t *testing.T) {
	r := stats.NewRNG(303)
	for trial := 0; trial < 200; trial++ {
		tbl := NewTable("t", Schema{{Name: "g", Type: Int64}})
		naive := map[int64]int64{}
		n := r.Intn(100)
		for i := 0; i < n; i++ {
			v := r.Int63n(10)
			tbl.MustAppend(Row{I(v)})
			naive[v]++
		}
		rows, err := Scan(tbl, nil).GroupCount("g").Rows()
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, row := range rows {
			if naive[row[0].Int] != row[1].Int {
				t.Fatalf("trial %d: group %d count %d, want %d",
					trial, row[0].Int, row[1].Int, naive[row[0].Int])
			}
			total += row[1].Int
		}
		if total != int64(n) {
			t.Fatalf("trial %d: counts sum to %d, want %d", trial, total, n)
		}
	}
}

// Property: OrderByInt emits a sorted permutation of its input.
func TestOrderByIsSortedPermutation(t *testing.T) {
	r := stats.NewRNG(404)
	for trial := 0; trial < 100; trial++ {
		tbl := NewTable("t", Schema{{Name: "x", Type: Int64}})
		var vals []int64
		for i := 0; i < r.Intn(60); i++ {
			v := r.Int63n(50)
			tbl.MustAppend(Row{I(v)})
			vals = append(vals, v)
		}
		rows, err := Scan(tbl, nil).OrderByInt("x", false).Rows()
		if err != nil {
			t.Fatal(err)
		}
		got := make([]int64, len(rows))
		for i, row := range rows {
			got[i] = row[0].Int
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		if fmt.Sprint(got) != fmt.Sprint(vals) {
			t.Fatalf("trial %d: %v != %v", trial, got, vals)
		}
	}
}

// randomMixedTable builds a table with int64, float64, and string
// columns so differential runs cover every vector kind.
func randomMixedTable(r *stats.RNG, name string, maxRows int) *Table {
	t := NewTable(name, Schema{
		{Name: "k", Type: Int64},
		{Name: "v", Type: Int64},
		{Name: "f", Type: Float64},
		{Name: "s", Type: String},
	})
	keyRange := int64(1 + r.Intn(8))
	n := r.Intn(maxRows)
	for i := 0; i < n; i++ {
		t.MustAppend(Row{
			I(r.Int63n(keyRange)),
			I(r.Int63n(100)),
			F(float64(r.Intn(1000)) / 8),
			S(fmt.Sprintf("s%d", r.Intn(5))),
		})
	}
	return t
}

// assertSameExecution drains a batch query and its row-at-a-time
// reference twin and fails unless they produce byte-identical rows in
// identical order AND identical meter counts — the engine's two
// executors must be observationally indistinguishable.
func assertSameExecution(t *testing.T, trial int, got *Query, gm *Meter, want *refQuery, wm *Meter) {
	t.Helper()
	gotRows, gotErr := got.Rows()
	wantRows, wantErr := want.Rows()
	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("trial %d: batch err %v, reference err %v", trial, gotErr, wantErr)
	}
	if gotErr != nil {
		return
	}
	if len(gotRows) != len(wantRows) {
		t.Fatalf("trial %d: batch %d rows, reference %d", trial, len(gotRows), len(wantRows))
	}
	for i := range gotRows {
		if len(gotRows[i]) != len(wantRows[i]) {
			t.Fatalf("trial %d row %d: width %d vs %d", trial, i, len(gotRows[i]), len(wantRows[i]))
		}
		for c := range gotRows[i] {
			if !gotRows[i][c].Equal(wantRows[i][c]) {
				t.Fatalf("trial %d row %d col %d: batch %v, reference %v",
					trial, i, c, gotRows[i][c], wantRows[i][c])
			}
		}
	}
	if *gm != *wm {
		t.Fatalf("trial %d: batch meter %+v, reference meter %+v", trial, *gm, *wm)
	}
}

// diffPipeline pairs a batch-engine pipeline (at a chosen worker count)
// with its row-at-a-time reference twin.
type diffPipeline struct {
	name  string
	batch func(m *Meter, par int) *Query
	ref   func(m *Meter) *refQuery
}

// diffPipelines returns the operator pipelines the differential tests
// drive through both executors. par is applied to every scan, so the
// parallel tests exercise morsel-parallel filters, probes, hash builds,
// aggregation merges, sorts and the serial fallback below Limit.
func diffPipelines(a, b *Table, idx *HashIndex, limit int, desc bool, pred func(Row) bool) []diffPipeline {
	return []diffPipeline{
		{"scan",
			func(m *Meter, par int) *Query { return Scan(a, m).WithParallelism(par) },
			func(m *Meter) *refQuery { return refScan(a, m) }},
		{"filter",
			func(m *Meter, par int) *Query { return Scan(a, m).WithParallelism(par).Filter(pred) },
			func(m *Meter) *refQuery { return refScan(a, m).Filter(pred) }},
		{"filter-int-eq-project",
			func(m *Meter, par int) *Query {
				return Scan(a, m).WithParallelism(par).FilterIntEq("k", 2).Project("s", "v")
			},
			func(m *Meter) *refQuery { return refScan(a, m).FilterIntEq("k", 2).Project("s", "v") }},
		{"hash-join-group-top1",
			func(m *Meter, par int) *Query {
				return Scan(a, m).WithParallelism(par).
					HashJoin(Scan(b, m).WithParallelism(par), "k", "k").
					GroupCount("b.k").Top1By("count")
			},
			func(m *Meter) *refQuery {
				return refScan(a, m).HashJoin(refScan(b, m), "k", "k").GroupCount("b.k").Top1By("count")
			}},
		{"index-join-group",
			func(m *Meter, par int) *Query {
				return Scan(a, m).WithParallelism(par).IndexJoin(idx, "k").GroupCount("b.k")
			},
			func(m *Meter) *refQuery { return refScan(a, m).IndexJoin(idx, "k").GroupCount("b.k") }},
		{"order-by-limit",
			func(m *Meter, par int) *Query {
				return Scan(a, m).WithParallelism(par).OrderByInt("v", desc).Limit(limit)
			},
			func(m *Meter) *refQuery { return refScan(a, m).OrderByInt("v", desc).Limit(limit) }},
		{"scan-limit",
			func(m *Meter, par int) *Query { return Scan(a, m).WithParallelism(par).Limit(limit) },
			func(m *Meter) *refQuery { return refScan(a, m).Limit(limit) }},
		{"filter-limit",
			func(m *Meter, par int) *Query {
				return Scan(a, m).WithParallelism(par).Filter(pred).Limit(limit)
			},
			func(m *Meter) *refQuery { return refScan(a, m).Filter(pred).Limit(limit) }},
		{"hash-join-limit",
			func(m *Meter, par int) *Query {
				return Scan(a, m).WithParallelism(par).
					HashJoin(Scan(b, m).WithParallelism(par), "k", "k").Limit(limit)
			},
			func(m *Meter) *refQuery { return refScan(a, m).HashJoin(refScan(b, m), "k", "k").Limit(limit) }},
		{"index-join-limit",
			func(m *Meter, par int) *Query {
				return Scan(a, m).WithParallelism(par).IndexJoin(idx, "k").Limit(limit)
			},
			func(m *Meter) *refQuery { return refScan(a, m).IndexJoin(idx, "k").Limit(limit) }},
		{"group-sum-float",
			func(m *Meter, par int) *Query {
				return Scan(a, m).WithParallelism(par).GroupSumFloat64("k", "f")
			},
			func(m *Meter) *refQuery { return refScan(a, m).GroupSumFloat64("k", "f") }},
		{"group-mean-float",
			func(m *Meter, par int) *Query {
				return Scan(a, m).WithParallelism(par).Filter(pred).GroupMeanFloat64("k", "f")
			},
			func(m *Meter) *refQuery { return refScan(a, m).Filter(pred).GroupMeanFloat64("k", "f") }},
		{"group-by-all-funcs",
			func(m *Meter, par int) *Query {
				return Scan(a, m).WithParallelism(par).GroupBy("k",
					Aggregation{Func: AggCount},
					Aggregation{Func: AggSum, Col: "v"},
					Aggregation{Func: AggMin, Col: "v"},
					Aggregation{Func: AggMax, Col: "v"})
			},
			func(m *Meter) *refQuery {
				return refScan(a, m).GroupBy("k",
					Aggregation{Func: AggCount},
					Aggregation{Func: AggSum, Col: "v"},
					Aggregation{Func: AggMin, Col: "v"},
					Aggregation{Func: AggMax, Col: "v"})
			}},
	}
}

// Differential property: every operator pipeline produces byte-identical
// rows and identical meter counts under batch execution and the retained
// row-at-a-time reference, across randomized mixed-type tables. This is
// the metering contract of the batch engine (see batch.go).
func TestBatchMatchesRowReference(t *testing.T) {
	r := stats.NewRNG(707)
	for trial := 0; trial < 150; trial++ {
		a := randomMixedTable(r, "a", 2100) // spans multiple 1024-row batches
		b := randomMixedTable(r, "b", 60)
		idx, err := BuildHashIndex(b, "k", nil)
		if err != nil {
			t.Fatal(err)
		}
		limit := r.Intn(40)
		pred := func(row Row) bool { return row[1].Int%3 == 0 }
		pipelines := diffPipelines(a, b, idx, limit, trial%2 == 0, pred)
		for _, p := range pipelines {
			gm := NewMeter(DefaultCostModel())
			wm := NewMeter(DefaultCostModel())
			assertSameExecution(t, trial, p.batch(gm, 1), gm, p.ref(wm), wm)

			// ForEachBatch is the other emit charge point: draining the
			// same pipeline batch-natively must yield the same rows and
			// the same meter as the reference's Rows.
			bm := NewMeter(DefaultCostModel())
			rm := NewMeter(DefaultCostModel())
			var viaBatches []Row
			if err := p.batch(bm, 1).ForEachBatch(func(b *Batch) error {
				sel := b.Sel()
				for i := 0; i < b.Len(); i++ {
					pos := i
					if sel != nil {
						pos = int(sel[i])
					}
					row := make(Row, len(b.cols))
					for c := range b.cols {
						row[c] = b.Col(c).datum(pos)
					}
					viaBatches = append(viaBatches, row)
				}
				return nil
			}); err != nil {
				continue // construction errors are covered above
			}
			refRows, err := p.ref(rm).Rows()
			if err != nil {
				t.Fatalf("trial %d %s: reference errored only for ForEachBatch run: %v", trial, p.name, err)
			}
			if len(viaBatches) != len(refRows) {
				t.Fatalf("trial %d %s: ForEachBatch %d rows, reference %d",
					trial, p.name, len(viaBatches), len(refRows))
			}
			for i := range viaBatches {
				for c := range viaBatches[i] {
					if !viaBatches[i][c].Equal(refRows[i][c]) {
						t.Fatalf("trial %d %s row %d col %d: %v vs %v",
							trial, p.name, i, c, viaBatches[i][c], refRows[i][c])
					}
				}
			}
			if *bm != *rm {
				t.Fatalf("trial %d %s: ForEachBatch meter %+v, reference meter %+v",
					trial, p.name, *bm, *rm)
			}
		}
	}
}

// Differential property: morsel-parallel execution at 2, 4 and 8 workers
// produces byte-identical rows and identical Meter counts to the serial
// row-at-a-time reference in rowref.go, across the same randomized
// mixed-type pipelines as TestBatchMatchesRowReference. The probe table
// spans several morsels so every worker count splits real work.
func TestParallelMatchesRowReference(t *testing.T) {
	r := stats.NewRNG(808)
	for trial := 0; trial < 40; trial++ {
		a := randomMixedTable(r, "a", 3200) // up to 4 morsels
		b := randomMixedTable(r, "b", 60)
		idx, err := BuildHashIndex(b, "k", nil)
		if err != nil {
			t.Fatal(err)
		}
		limit := r.Intn(40)
		pred := func(row Row) bool { return row[1].Int%3 == 0 }
		for _, p := range diffPipelines(a, b, idx, limit, trial%2 == 0, pred) {
			wm := NewMeter(DefaultCostModel())
			wantRows, wantErr := p.ref(wm).Rows()
			for _, par := range []int{2, 4, 8} {
				gm := NewMeter(DefaultCostModel())
				gotRows, gotErr := p.batch(gm, par).Rows()
				if (gotErr == nil) != (wantErr == nil) {
					t.Fatalf("trial %d %s par %d: err %v, reference err %v",
						trial, p.name, par, gotErr, wantErr)
				}
				if gotErr != nil {
					continue
				}
				if len(gotRows) != len(wantRows) {
					t.Fatalf("trial %d %s par %d: %d rows, reference %d",
						trial, p.name, par, len(gotRows), len(wantRows))
				}
				for i := range gotRows {
					for c := range gotRows[i] {
						if !gotRows[i][c].Equal(wantRows[i][c]) {
							t.Fatalf("trial %d %s par %d row %d col %d: %v, reference %v",
								trial, p.name, par, i, c, gotRows[i][c], wantRows[i][c])
						}
					}
				}
				if *gm != *wm {
					t.Fatalf("trial %d %s par %d: meter %+v, reference %+v",
						trial, p.name, par, *gm, *wm)
				}
			}
		}
	}
}

// Property: the meter is additive — running two queries on one meter
// equals the sum of running them on separate meters.
func TestMeterAdditivity(t *testing.T) {
	r := stats.NewRNG(505)
	a, b := randomPair(r)

	shared := NewMeter(DefaultCostModel())
	if _, err := Scan(a, shared).Rows(); err != nil {
		t.Fatal(err)
	}
	if _, err := Scan(a, shared).HashJoin(Scan(b, shared), "k", "k").Rows(); err != nil {
		t.Fatal(err)
	}

	m1 := NewMeter(DefaultCostModel())
	if _, err := Scan(a, m1).Rows(); err != nil {
		t.Fatal(err)
	}
	m2 := NewMeter(DefaultCostModel())
	if _, err := Scan(a, m2).HashJoin(Scan(b, m2), "k", "k").Rows(); err != nil {
		t.Fatal(err)
	}
	m1.Add(m2)
	if m1.WorkUnits() != shared.WorkUnits() {
		t.Errorf("separate %d != shared %d", m1.WorkUnits(), shared.WorkUnits())
	}
}

// Property: materialized views answer queries identically to recomputing
// from base tables.
func TestViewMatchesBaseComputation(t *testing.T) {
	r := stats.NewRNG(606)
	for trial := 0; trial < 50; trial++ {
		a, b := randomPair(r)
		mv, err := Materialize("j", Scan(a, nil).HashJoin(Scan(b, nil), "k", "k"), "k", nil)
		if err != nil {
			t.Fatal(err)
		}
		fromView, err := Scan(mv.Data, nil).Rows()
		if err != nil {
			t.Fatal(err)
		}
		fromBase, err := Scan(a, nil).HashJoin(Scan(b, nil), "k", "k").Rows()
		if err != nil {
			t.Fatal(err)
		}
		vm, bm := multiset(fromView), multiset(fromBase)
		if len(vm) != len(bm) {
			t.Fatalf("trial %d: view has %d distinct rows, base %d", trial, len(vm), len(bm))
		}
		for k, n := range bm {
			if vm[k] != n {
				t.Fatalf("trial %d: row %q: view %d, base %d", trial, k, vm[k], n)
			}
		}
	}
}
