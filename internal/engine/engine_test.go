package engine

import (
	"testing"
)

func testTable(t *testing.T) *Table {
	t.Helper()
	tbl := NewTable("people", Schema{
		{Name: "id", Type: Int64},
		{Name: "age", Type: Int64},
		{Name: "score", Type: Float64},
		{Name: "name", Type: String},
	})
	rows := []Row{
		{I(1), I(30), F(1.5), S("ann")},
		{I(2), I(25), F(2.5), S("bob")},
		{I(3), I(30), F(3.5), S("cay")},
		{I(4), I(40), F(4.5), S("dan")},
	}
	for _, r := range rows {
		tbl.MustAppend(r)
	}
	return tbl
}

func TestTableBasics(t *testing.T) {
	tbl := testTable(t)
	if tbl.Len() != 4 || tbl.Name() != "people" {
		t.Fatalf("Len=%d Name=%s", tbl.Len(), tbl.Name())
	}
	row := tbl.RowAt(2)
	if row[0].Int != 3 || row[3].Str != "cay" {
		t.Errorf("RowAt(2) = %v", row)
	}
	if tbl.At(1, 2).Float != 2.5 {
		t.Errorf("At(1,2) = %v", tbl.At(1, 2))
	}
	ints, err := tbl.IntCol("age")
	if err != nil || len(ints) != 4 || ints[3] != 40 {
		t.Errorf("IntCol: %v %v", ints, err)
	}
	floats, err := tbl.FloatCol("score")
	if err != nil || floats[0] != 1.5 {
		t.Errorf("FloatCol: %v %v", floats, err)
	}
	if _, err := tbl.IntCol("score"); err == nil {
		t.Error("IntCol on float column should fail")
	}
	if _, err := tbl.FloatCol("nope"); err == nil {
		t.Error("FloatCol on missing column should fail")
	}
	// 3 numeric columns × 4 rows × 8 bytes + 12 bytes of names.
	if got := tbl.SizeBytes(); got != 3*4*8+12 {
		t.Errorf("SizeBytes = %d", got)
	}
}

func TestTableAppendValidation(t *testing.T) {
	tbl := testTable(t)
	if err := tbl.Append(Row{I(1)}); err == nil {
		t.Error("short row accepted")
	}
	if err := tbl.Append(Row{I(1), F(2), F(3), S("x")}); err == nil {
		t.Error("type mismatch accepted")
	}
}

func TestNewTablePanicsOnBadSchema(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate column should panic")
		}
	}()
	NewTable("bad", Schema{{Name: "a", Type: Int64}, {Name: "a", Type: Int64}})
}

func TestScanAndMeter(t *testing.T) {
	tbl := testTable(t)
	meter := NewMeter(DefaultCostModel())
	rows, err := Scan(tbl, meter).Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	if meter.RowsScanned != 4 || meter.RowsEmitted != 4 {
		t.Errorf("meter: %+v", meter)
	}
}

func TestFilterProject(t *testing.T) {
	tbl := testTable(t)
	rows, err := Scan(tbl, nil).FilterIntEq("age", 30).Project("name", "id").Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][0].Str != "ann" || rows[1][1].Int != 3 {
		t.Errorf("rows = %v", rows)
	}
	if _, err := Scan(tbl, nil).FilterIntEq("ghost", 1).Rows(); err == nil {
		t.Error("missing filter column accepted")
	}
	if _, err := Scan(tbl, nil).Project("ghost").Rows(); err == nil {
		t.Error("missing project column accepted")
	}
}

func TestHashJoin(t *testing.T) {
	left := NewTable("orders", Schema{{Name: "uid", Type: Int64}, {Name: "amount", Type: Int64}})
	for _, r := range []Row{{I(1), I(10)}, {I(2), I(20)}, {I(1), I(30)}, {I(9), I(40)}} {
		left.MustAppend(r)
	}
	right := testTable(t)
	meter := NewMeter(DefaultCostModel())
	rows, err := Scan(left, meter).HashJoin(Scan(right, meter), "uid", "id").Rows()
	if err != nil {
		t.Fatal(err)
	}
	// uid 1 matches twice, uid 2 once, uid 9 never.
	if len(rows) != 3 {
		t.Fatalf("%d join rows, want 3", len(rows))
	}
	// Output schema: orders columns then people columns.
	for _, r := range rows {
		if len(r) != 6 {
			t.Fatalf("join row width %d", len(r))
		}
		if r[0].Int != r[2].Int {
			t.Errorf("join key mismatch: %v", r)
		}
	}
	// Meter: 4 probe rows scanned+probed, 4 build rows scanned+built.
	if meter.RowsProbed != 4 || meter.RowsBuilt != 4 || meter.RowsScanned != 8 {
		t.Errorf("meter: %+v", meter)
	}
}

func TestHashJoinNameCollision(t *testing.T) {
	a := NewTable("a", Schema{{Name: "id", Type: Int64}})
	a.MustAppend(Row{I(1)})
	b := NewTable("b", Schema{{Name: "id", Type: Int64}})
	b.MustAppend(Row{I(1)})
	q := Scan(a, nil).HashJoin(Scan(b, nil), "id", "id")
	s := q.OutSchema()
	if s[0].Name != "id" || s[1].Name != "b.id" {
		t.Errorf("schema = %v", s)
	}
}

func TestIndexJoin(t *testing.T) {
	probe := NewTable("p", Schema{{Name: "k", Type: Int64}})
	for _, v := range []int64{5, 6, 5} {
		probe.MustAppend(Row{I(v)})
	}
	base := NewTable("base", Schema{{Name: "k", Type: Int64}, {Name: "v", Type: Int64}})
	for _, r := range []Row{{I(5), I(50)}, {I(6), I(60)}, {I(5), I(55)}} {
		base.MustAppend(r)
	}
	buildMeter := NewMeter(DefaultCostModel())
	idx, err := BuildHashIndex(base, "k", buildMeter)
	if err != nil {
		t.Fatal(err)
	}
	if buildMeter.RowsBuilt != 3 || idx.Keys() != 2 {
		t.Errorf("build meter %+v, keys %d", buildMeter, idx.Keys())
	}
	queryMeter := NewMeter(DefaultCostModel())
	rows, err := Scan(probe, queryMeter).IndexJoin(idx, "k").Rows()
	if err != nil {
		t.Fatal(err)
	}
	// k=5 matches 2 rows (twice), k=6 one: 5 output rows.
	if len(rows) != 5 {
		t.Fatalf("%d rows, want 5", len(rows))
	}
	// The query pays probes, not builds: that asymmetry is the
	// optimization being priced.
	if queryMeter.RowsBuilt != 0 || queryMeter.RowsProbed != 3 {
		t.Errorf("query meter: %+v", queryMeter)
	}
}

func TestGroupCountAndTop1(t *testing.T) {
	tbl := testTable(t)
	rows, err := Scan(tbl, nil).GroupCount("age").Rows()
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int64]int64{}
	for _, r := range rows {
		counts[r[0].Int] = r[1].Int
	}
	if counts[30] != 2 || counts[25] != 1 || counts[40] != 1 {
		t.Errorf("counts = %v", counts)
	}

	top, err := Scan(tbl, nil).GroupCount("age").Top1By("count").Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 1 || top[0][0].Int != 30 || top[0][1].Int != 2 {
		t.Errorf("top = %v", top)
	}
}

func TestTop1EmptyInput(t *testing.T) {
	tbl := NewTable("empty", Schema{{Name: "x", Type: Int64}})
	rows, err := Scan(tbl, nil).Top1By("x").Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Errorf("rows = %v", rows)
	}
}

func TestOrderByAndLimit(t *testing.T) {
	tbl := testTable(t)
	rows, err := Scan(tbl, nil).OrderByInt("age", true).Limit(2).Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][1].Int != 40 || rows[1][1].Int != 30 {
		t.Errorf("rows = %v", rows)
	}
	asc, err := Scan(tbl, nil).OrderByInt("age", false).Limit(1).Rows()
	if err != nil {
		t.Fatal(err)
	}
	if asc[0][1].Int != 25 {
		t.Errorf("asc first = %v", asc[0])
	}
}

func TestMeterArithmetic(t *testing.T) {
	m := NewMeter(CostModel{ScanWeight: 1, BuildWeight: 4, ProbeWeight: 2,
		EmitWeight: 1, WorkUnitsPerSecond: 100})
	m.RowsScanned = 10
	m.RowsBuilt = 5
	m.RowsProbed = 3
	m.RowsEmitted = 2
	if got := m.WorkUnits(); got != 10+20+6+2 {
		t.Errorf("WorkUnits = %d", got)
	}
	// 38 units at 100 units/sec = 380ms.
	if got := m.Elapsed().Milliseconds(); got != 380 {
		t.Errorf("Elapsed = %vms", got)
	}
	var other Meter
	other.RowsScanned = 1
	m.Add(&other)
	if m.RowsScanned != 11 {
		t.Errorf("Add broken: %+v", m)
	}
	m.Reset()
	if m.WorkUnits() != 0 {
		t.Errorf("Reset broken: %+v", m)
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	tbl := testTable(t)
	if err := c.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(tbl); err == nil {
		t.Error("duplicate table accepted")
	}
	if got, ok := c.Table("people"); !ok || got != tbl {
		t.Error("Table lookup failed")
	}
	if _, ok := c.Table("ghost"); ok {
		t.Error("ghost table found")
	}

	meter := NewMeter(DefaultCostModel())
	mv, err := Materialize("by_age", Scan(tbl, meter).Project("age", "id"), "age", meter)
	if err != nil {
		t.Fatal(err)
	}
	if mv.Data.Len() != 4 || mv.BuildUnits <= 0 {
		t.Errorf("view: len=%d units=%d", mv.Data.Len(), mv.BuildUnits)
	}
	if err := c.AddView(mv); err != nil {
		t.Fatal(err)
	}
	if err := c.AddView(mv); err == nil {
		t.Error("duplicate view accepted")
	}
	if v, ok := c.View("by_age"); !ok || v != mv {
		t.Error("View lookup failed")
	}
	if len(c.ViewNames()) != 1 {
		t.Errorf("ViewNames = %v", c.ViewNames())
	}
	c.DropView("by_age")
	if _, ok := c.View("by_age"); ok {
		t.Error("DropView failed")
	}
}

func TestDatumHelpers(t *testing.T) {
	if !I(3).Equal(I(3)) || I(3).Equal(I(4)) || I(3).Equal(F(3)) {
		t.Error("Equal broken for ints")
	}
	if !F(1.5).Equal(F(1.5)) || !S("a").Equal(S("a")) || S("a").Equal(S("b")) {
		t.Error("Equal broken")
	}
	if I(3).String() != "3" || F(1.5).String() != "1.5" || S("x").String() != "x" {
		t.Error("String broken")
	}
	if Int64.String() != "int64" || Float64.String() != "float64" || String.String() != "string" {
		t.Error("ColType.String broken")
	}
}

func TestSchemaValidate(t *testing.T) {
	if err := (Schema{{Name: "", Type: Int64}}).Validate(); err == nil {
		t.Error("empty name accepted")
	}
	if (Schema{{Name: "a", Type: Int64}}).ColIndex("b") != -1 {
		t.Error("missing column should be -1")
	}
}
