package engine

import "time"

// CostModel weighs the primitive operations an execution performs into
// abstract work units, and converts work units into simulated time. The
// weights approximate relative CPU cost: a hash build (allocate + insert)
// costs more than a probe, which costs more than a sequential scan step.
type CostModel struct {
	// ScanWeight is the work of reading one row sequentially.
	ScanWeight int64
	// BuildWeight is the work of inserting one row into a hash table.
	BuildWeight int64
	// ProbeWeight is the work of one hash lookup.
	ProbeWeight int64
	// EmitWeight is the work of materializing one output row.
	EmitWeight int64
	// WorkUnitsPerSecond converts work units to simulated wall time.
	WorkUnitsPerSecond int64
}

// DefaultCostModel returns the model used by the astronomy workload.
// The rate is calibrated so the paper-scale workloads land in the
// paper-scale minutes (see internal/astro's calibration test).
func DefaultCostModel() CostModel {
	return CostModel{
		ScanWeight:         1,
		BuildWeight:        4,
		ProbeWeight:        2,
		EmitWeight:         1,
		WorkUnitsPerSecond: 2_000_000,
	}
}

// Meter accumulates the primitive-operation counts of one or more query
// executions. The zero value is ready to use. Meters are not safe for
// concurrent use.
type Meter struct {
	Model CostModel

	RowsScanned int64
	RowsBuilt   int64
	RowsProbed  int64
	RowsEmitted int64
}

// NewMeter returns a meter using the given cost model.
func NewMeter(model CostModel) *Meter { return &Meter{Model: model} }

// WorkUnits returns the weighted total work recorded so far.
func (m *Meter) WorkUnits() int64 {
	return m.RowsScanned*m.Model.ScanWeight +
		m.RowsBuilt*m.Model.BuildWeight +
		m.RowsProbed*m.Model.ProbeWeight +
		m.RowsEmitted*m.Model.EmitWeight
}

// Elapsed returns the simulated execution time of the recorded work.
func (m *Meter) Elapsed() time.Duration {
	rate := m.Model.WorkUnitsPerSecond
	if rate <= 0 {
		rate = DefaultCostModel().WorkUnitsPerSecond
	}
	units := m.WorkUnits()
	secs := units / rate
	rem := units % rate
	return time.Duration(secs)*time.Second +
		time.Duration(rem*int64(time.Second)/rate)
}

// Reset zeroes the counters, keeping the model.
func (m *Meter) Reset() {
	m.RowsScanned, m.RowsBuilt, m.RowsProbed, m.RowsEmitted = 0, 0, 0, 0
}

// Add folds another meter's counts into m.
func (m *Meter) Add(o *Meter) {
	m.RowsScanned += o.RowsScanned
	m.RowsBuilt += o.RowsBuilt
	m.RowsProbed += o.RowsProbed
	m.RowsEmitted += o.RowsEmitted
}
