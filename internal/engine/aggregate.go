package engine

import "fmt"

// AggFunc names a grouped aggregation function over an Int64 column.
type AggFunc int

const (
	// AggCount counts rows per group (the input column is ignored).
	AggCount AggFunc = iota
	// AggSum sums the column per group.
	AggSum
	// AggMin takes the per-group minimum.
	AggMin
	// AggMax takes the per-group maximum.
	AggMax
)

// String returns the function's lowercase name (also the output column
// name it produces).
func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(f))
	}
}

// Aggregation pairs a function with its input column.
type Aggregation struct {
	Func AggFunc
	// Col is the Int64 input column; ignored (may be empty) for
	// AggCount.
	Col string
}

// GroupBy groups by an Int64 key column and computes the given
// aggregations. The output schema is (key, agg1, agg2, ...) with each
// aggregate column named "fn(col)" (or "count" for AggCount). Each input
// row charges one build unit, as in GroupCount.
func (q *Query) GroupBy(key string, aggs ...Aggregation) *Query {
	if q.err != nil {
		return q
	}
	if len(aggs) == 0 {
		q.err = fmt.Errorf("engine: group by: no aggregations")
		return q
	}
	in := q.it.Schema()
	ki := in.ColIndex(key)
	if ki < 0 || in[ki].Type != Int64 {
		q.err = fmt.Errorf("engine: group by: bad key column %q", key)
		return q
	}
	cols := make([]int, len(aggs))
	outSchema := Schema{{Name: in[ki].Name, Type: Int64}}
	for a, agg := range aggs {
		name := "count"
		if agg.Func != AggCount {
			ci := in.ColIndex(agg.Col)
			if ci < 0 || in[ci].Type != Int64 {
				q.err = fmt.Errorf("engine: group by: bad aggregate column %q", agg.Col)
				return q
			}
			cols[a] = ci
			name = fmt.Sprintf("%s(%s)", agg.Func, agg.Col)
		}
		outSchema = append(outSchema, Column{Name: name, Type: Int64})
	}

	type groupState struct {
		accs []int64
		seen bool
	}
	groups := make(map[int64]*groupState)
	order := make([]int64, 0)
	for {
		row, ok := q.it.Next()
		if !ok {
			break
		}
		k := row[ki].Int
		g := groups[k]
		if g == nil {
			g = &groupState{accs: make([]int64, len(aggs))}
			groups[k] = g
			order = append(order, k)
		}
		for a, agg := range aggs {
			v := row[cols[a]].Int
			switch agg.Func {
			case AggCount:
				g.accs[a]++
			case AggSum:
				g.accs[a] += v
			case AggMin:
				if !g.seen || v < g.accs[a] {
					g.accs[a] = v
				}
			case AggMax:
				if !g.seen || v > g.accs[a] {
					g.accs[a] = v
				}
			default:
				q.err = fmt.Errorf("engine: group by: unknown function %v", agg.Func)
				return q
			}
		}
		g.seen = true
		if q.meter != nil {
			q.meter.RowsBuilt++
		}
	}
	rows := make([]Row, 0, len(order))
	for _, k := range order {
		row := Row{I(k)}
		for _, acc := range groups[k].accs {
			row = append(row, I(acc))
		}
		rows = append(rows, row)
	}
	q.it = &sliceIter{rows: rows, schema: outSchema}
	return q
}
