package engine

import "fmt"

// AggFunc names a grouped aggregation function over an Int64 column.
type AggFunc int

const (
	// AggCount counts rows per group (the input column is ignored).
	AggCount AggFunc = iota
	// AggSum sums the column per group.
	AggSum
	// AggMin takes the per-group minimum.
	AggMin
	// AggMax takes the per-group maximum.
	AggMax
)

// String returns the function's lowercase name (also the output column
// name it produces).
func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(f))
	}
}

// Aggregation pairs a function with its input column.
type Aggregation struct {
	Func AggFunc
	// Col is the Int64 input column; ignored (may be empty) for
	// AggCount.
	Col string
}

// GroupBy groups by an Int64 key column and computes the given
// aggregations. The output schema is (key, agg1, agg2, ...) with each
// aggregate column named "fn(col)" (or "count" for AggCount). Each input
// row charges one build unit, as in GroupCount.
func (q *Query) GroupBy(key string, aggs ...Aggregation) *Query {
	if q.err != nil {
		return q
	}
	if len(aggs) == 0 {
		q.err = fmt.Errorf("engine: group by: no aggregations")
		return q
	}
	in := q.it.Schema()
	ki := in.ColIndex(key)
	if ki < 0 || in[ki].Type != Int64 {
		q.err = fmt.Errorf("engine: group by: bad key column %q", key)
		return q
	}
	cols := make([]int, len(aggs))
	outSchema := Schema{{Name: in[ki].Name, Type: Int64}}
	for a, agg := range aggs {
		name := "count"
		if agg.Func != AggCount {
			ci := in.ColIndex(agg.Col)
			if ci < 0 || in[ci].Type != Int64 {
				q.err = fmt.Errorf("engine: group by: bad aggregate column %q", agg.Col)
				return q
			}
			cols[a] = ci
			name = fmt.Sprintf("%s(%s)", agg.Func, agg.Col)
		}
		outSchema = append(outSchema, Column{Name: name, Type: Int64})
	}

	for _, agg := range aggs {
		switch agg.Func {
		case AggCount, AggSum, AggMin, AggMax:
		default:
			q.err = fmt.Errorf("engine: group by: unknown function %v", agg.Func)
			return q
		}
	}
	// Columnar aggregation: one dense accumulator slice per aggregate,
	// indexed by first-seen group slot. Under a parallel plan each worker
	// aggregates its morsels privately and the partials are merged in
	// first-occurrence order (see parallelGroupAgg).
	var keys []int64
	var accs [][]int64
	if spec, par := q.parallelPlan(); spec != nil {
		keys, accs = parallelGroupAgg(spec, par, q.meter, ki, aggs, cols)
	} else {
		slots := make(map[int64]int)
		accs = make([][]int64, len(aggs))
		for {
			b := q.it.nextBatch(0)
			if b == nil {
				break
			}
			keyVec := b.cols[ki].Ints
			b.forEachActive(func(pos int) {
				k := keyVec[pos]
				s, seen := slots[k]
				if !seen {
					s = len(keys)
					slots[k] = s
					keys = append(keys, k)
					for a := range accs {
						init := int64(0)
						switch aggs[a].Func {
						case AggMin, AggMax:
							init = b.cols[cols[a]].Ints[pos]
						}
						accs[a] = append(accs[a], init)
					}
				}
				for a, agg := range aggs {
					switch agg.Func {
					case AggCount:
						accs[a][s]++
					case AggSum:
						accs[a][s] += b.cols[cols[a]].Ints[pos]
					case AggMin:
						if v := b.cols[cols[a]].Ints[pos]; v < accs[a][s] {
							accs[a][s] = v
						}
					case AggMax:
						if v := b.cols[cols[a]].Ints[pos]; v > accs[a][s] {
							accs[a][s] = v
						}
					}
				}
			})
			if q.meter != nil {
				q.meter.RowsBuilt += int64(b.Len())
			}
		}
	}
	outCols := make([]Vector, 0, 1+len(aggs))
	outCols = append(outCols, Vector{Kind: Int64, Ints: keys})
	for _, acc := range accs {
		outCols = append(outCols, Vector{Kind: Int64, Ints: acc})
	}
	q.it = &batchSlice{cols: outCols, rows: len(keys), schema: outSchema}
	q.spec = nil
	return q
}
