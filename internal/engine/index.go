package engine

import "fmt"

// HashIndex is an equality index over one Int64 column of a table,
// mapping key → row positions.
type HashIndex struct {
	table  *Table
	column string
	m      map[int64][]int32
}

// BuildHashIndex constructs an index over the named Int64 column,
// charging one build per row to the meter.
func BuildHashIndex(t *Table, column string, meter *Meter) (*HashIndex, error) {
	col, err := t.IntCol(column)
	if err != nil {
		return nil, fmt.Errorf("engine: building index: %w", err)
	}
	idx := &HashIndex{table: t, column: column, m: make(map[int64][]int32, len(col))}
	for i, v := range col {
		idx.m[v] = append(idx.m[v], int32(i))
	}
	if meter != nil {
		meter.RowsBuilt += int64(len(col))
	}
	return idx, nil
}

// Table returns the indexed table.
func (ix *HashIndex) Table() *Table { return ix.table }

// Column returns the indexed column name.
func (ix *HashIndex) Column() string { return ix.column }

// Lookup returns the row positions with the given key, charging one probe
// to the meter. The returned slice must not be modified.
func (ix *HashIndex) Lookup(key int64, meter *Meter) []int32 {
	if meter != nil {
		meter.RowsProbed++
	}
	return ix.m[key]
}

// Keys returns the number of distinct keys.
func (ix *HashIndex) Keys() int { return len(ix.m) }
