package engine

import (
	"fmt"
	"testing"

	"sharedopt/internal/stats"
)

// bigJoinTables builds a probe table spanning many morsels and a small
// build table, so every worker count in the sweep gets real morsels.
func bigJoinTables(seed uint64, probeRows, buildRows int) (*Table, *Table) {
	r := stats.NewRNG(seed)
	a := NewTable("a", Schema{
		{Name: "k", Type: Int64},
		{Name: "v", Type: Int64},
		{Name: "s", Type: String},
	})
	b := NewTable("b", Schema{{Name: "k", Type: Int64}, {Name: "w", Type: Int64}})
	for i := 0; i < probeRows; i++ {
		a.MustAppend(Row{I(r.Int63n(400)), I(int64(i)), S(fmt.Sprintf("s%d", r.Intn(7)))})
	}
	for i := 0; i < buildRows; i++ {
		b.MustAppend(Row{I(r.Int63n(400)), I(int64(1000 + i))})
	}
	return a, b
}

// assertSameRowsAndMeter fails unless two executions produced identical
// rows in identical order and identical meter counts.
func assertSameRowsAndMeter(t *testing.T, label string, got []Row, gm *Meter, want []Row, wm *Meter) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range got {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s row %d: width %d, want %d", label, i, len(got[i]), len(want[i]))
		}
		for c := range got[i] {
			if !got[i][c].Equal(want[i][c]) {
				t.Fatalf("%s row %d col %d: %v, want %v", label, i, c, got[i][c], want[i][c])
			}
		}
	}
	if *gm != *wm {
		t.Fatalf("%s: meter %+v, want %+v", label, *gm, *wm)
	}
}

// The scheduler must produce identical rows and meters at every worker
// count from 1 through 8 — including counts above GOMAXPROCS and above
// the morsel count. Run with -race this also exercises the per-worker
// pipeline isolation (scratch rows, join cursors, meters).
func TestParallelWorkerSweep(t *testing.T) {
	a, b := bigJoinTables(11, 9*morselSize+137, 300)
	serialMeter := NewMeter(DefaultCostModel())
	run := func(par int, m *Meter) []Row {
		t.Helper()
		rows, err := Scan(a, m).WithParallelism(par).
			FilterIntEq("k", 123).
			HashJoin(Scan(b, m).WithParallelism(par), "k", "k").
			GroupCount("w").Rows()
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	want := run(1, serialMeter)
	for par := 1; par <= 8; par++ {
		m := NewMeter(DefaultCostModel())
		got := run(par, m)
		assertSameRowsAndMeter(t, fmt.Sprintf("par=%d", par), got, m, want, serialMeter)
	}
}

// Morsel edge cases: an empty table, a table smaller than one morsel,
// and tables landing exactly on morsel boundaries.
func TestParallelMorselEdgeCases(t *testing.T) {
	for _, rows := range []int{0, 1, 7, morselSize - 1, morselSize, morselSize + 1, 2 * morselSize} {
		a := NewTable("a", Schema{{Name: "k", Type: Int64}, {Name: "v", Type: Int64}})
		for i := 0; i < rows; i++ {
			a.MustAppend(Row{I(int64(i % 5)), I(int64(i))})
		}
		sm := NewMeter(DefaultCostModel())
		want, err := Scan(a, sm).Filter(func(r Row) bool { return r[1].Int%2 == 0 }).GroupCount("k").Rows()
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{2, 4, 8} {
			pm := NewMeter(DefaultCostModel())
			got, err := Scan(a, pm).WithParallelism(par).
				Filter(func(r Row) bool { return r[1].Int%2 == 0 }).GroupCount("k").Rows()
			if err != nil {
				t.Fatal(err)
			}
			assertSameRowsAndMeter(t, fmt.Sprintf("rows=%d par=%d", rows, par), got, pm, want, sm)
		}
	}
}

// A row budget (Limit) must force the serial path: early-exit pulls —
// and the meter counts they generate — are defined by serial pull order,
// and a parallel query must charge exactly the same.
func TestParallelBudgetEarlyExit(t *testing.T) {
	a, b := bigJoinTables(13, 5*morselSize, 200)
	for _, limit := range []int{0, 1, 17, morselSize, 3 * morselSize} {
		sm := NewMeter(DefaultCostModel())
		want, err := Scan(a, sm).HashJoin(Scan(b, sm), "k", "k").Limit(limit).Rows()
		if err != nil {
			t.Fatal(err)
		}
		pm := NewMeter(DefaultCostModel())
		got, err := Scan(a, pm).WithParallelism(4).
			HashJoin(Scan(b, pm).WithParallelism(4), "k", "k").Limit(limit).Rows()
		if err != nil {
			t.Fatal(err)
		}
		// The build side still drains in parallel (it is not under the
		// budget); only the probe pipeline must fall back to serial
		// early-exit pulls.
		assertSameRowsAndMeter(t, fmt.Sprintf("limit=%d", limit), got, pm, want, sm)
	}
}

// Order-sensitive sinks must merge worker partials back into serial
// order: OrderByInt's stable sort and Top1By's first-seen tie-break both
// depend on the merged morsel order being exactly the scan order.
func TestParallelOrderSensitiveSinks(t *testing.T) {
	a, _ := bigJoinTables(17, 6*morselSize+55, 1)
	for _, par := range []int{2, 8} {
		sm := NewMeter(DefaultCostModel())
		want, err := Scan(a, sm).OrderByInt("k", false).Rows()
		if err != nil {
			t.Fatal(err)
		}
		pm := NewMeter(DefaultCostModel())
		got, err := Scan(a, pm).WithParallelism(par).OrderByInt("k", false).Rows()
		if err != nil {
			t.Fatal(err)
		}
		assertSameRowsAndMeter(t, fmt.Sprintf("order-by par=%d", par), got, pm, want, sm)

		sm2 := NewMeter(DefaultCostModel())
		wantTop, err := Scan(a, sm2).Top1By("k").Rows()
		if err != nil {
			t.Fatal(err)
		}
		pm2 := NewMeter(DefaultCostModel())
		gotTop, err := Scan(a, pm2).WithParallelism(par).Top1By("k").Rows()
		if err != nil {
			t.Fatal(err)
		}
		assertSameRowsAndMeter(t, fmt.Sprintf("top1 par=%d", par), gotTop, pm2, wantTop, sm2)
	}
}

// Top1 is the batch-native shortcut for Top1By(col).Rows(): same row,
// same found flag, same meter counts — serial and parallel.
func TestTop1MatchesTop1ByRows(t *testing.T) {
	r := stats.NewRNG(19)
	for trial := 0; trial < 60; trial++ {
		a := randomMixedTable(r, "a", 2*morselSize)
		for _, par := range []int{1, 4} {
			vm := NewMeter(DefaultCostModel())
			viaRows, err := Scan(a, vm).WithParallelism(par).Top1By("v").Rows()
			if err != nil {
				t.Fatal(err)
			}
			tm := NewMeter(DefaultCostModel())
			row, ok, err := Scan(a, tm).WithParallelism(par).Top1("v")
			if err != nil {
				t.Fatal(err)
			}
			if ok != (len(viaRows) == 1) {
				t.Fatalf("trial %d par %d: ok=%v but Top1By returned %d rows", trial, par, ok, len(viaRows))
			}
			if ok {
				for c := range row {
					if !row[c].Equal(viaRows[0][c]) {
						t.Fatalf("trial %d par %d col %d: %v, want %v",
							trial, par, c, row[c], viaRows[0][c])
					}
				}
			}
			if *tm != *vm {
				t.Fatalf("trial %d par %d: Top1 meter %+v, Top1By meter %+v", trial, par, *tm, *vm)
			}
		}
		if _, _, err := Scan(a, nil).Top1("s"); err == nil {
			t.Fatal("Top1 on a string column accepted")
		}
	}
}

// WithParallelism(0) means GOMAXPROCS; whatever it resolves to, results
// match serial.
func TestParallelismDefaultsToGOMAXPROCS(t *testing.T) {
	a, b := bigJoinTables(23, 3*morselSize, 100)
	sm := NewMeter(DefaultCostModel())
	want, err := Scan(a, sm).HashJoin(Scan(b, sm), "k", "k").GroupCount("k").Rows()
	if err != nil {
		t.Fatal(err)
	}
	pm := NewMeter(DefaultCostModel())
	got, err := Scan(a, pm).WithParallelism(0).
		HashJoin(Scan(b, pm).WithParallelism(0), "k", "k").GroupCount("k").Rows()
	if err != nil {
		t.Fatal(err)
	}
	assertSameRowsAndMeter(t, "gomaxprocs", got, pm, want, sm)
}

// Draining a parallel query twice must behave like draining exhausted
// serial iterators: the second drain returns nothing and charges
// nothing, instead of silently re-executing the pipeline and
// double-billing the meter.
func TestParallelRedrainIsEmptyAndFree(t *testing.T) {
	a, _ := bigJoinTables(31, 2*morselSize, 1)
	m := NewMeter(DefaultCostModel())
	q := Scan(a, m).WithParallelism(4)
	first, err := q.Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != a.Len() {
		t.Fatalf("first drain: %d rows", len(first))
	}
	charged := *m
	again, err := q.Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 0 {
		t.Fatalf("second drain returned %d rows", len(again))
	}
	if *m != charged {
		t.Fatalf("second drain charged the meter: %+v -> %+v", charged, *m)
	}

	q2 := Scan(a, m).WithParallelism(4)
	if _, ok, err := q2.Top1("v"); err != nil || !ok {
		t.Fatalf("top1: ok=%v err=%v", ok, err)
	}
	charged = *m
	if _, ok, err := q2.Top1("v"); err != nil || ok {
		t.Fatalf("second top1: ok=%v err=%v", ok, err)
	}
	if *m != charged {
		t.Fatalf("second Top1 charged the meter: %+v -> %+v", charged, *m)
	}
}

// With distinct meters on the probe and build sides, parallel execution
// must charge each meter exactly what serial charges it: the build
// pipeline's scans bill the build query's meter, the hash-build units
// bill the joining query's meter. The pricing mechanisms bill per user,
// so the split — not just the sum — must hold.
func TestParallelJoinMeterAttribution(t *testing.T) {
	a, b := bigJoinTables(37, 3*morselSize, 2*morselSize)
	run := func(par int) (probe, build Meter) {
		t.Helper()
		pm := NewMeter(DefaultCostModel())
		bm := NewMeter(DefaultCostModel())
		if _, err := Scan(a, pm).WithParallelism(par).
			HashJoin(Scan(b, bm).WithParallelism(par), "k", "k").
			GroupCount("k").Rows(); err != nil {
			t.Fatal(err)
		}
		return *pm, *bm
	}
	wantProbe, wantBuild := run(1)
	for _, par := range []int{2, 4} {
		gotProbe, gotBuild := run(par)
		if gotProbe != wantProbe {
			t.Errorf("par=%d probe meter %+v, serial %+v", par, gotProbe, wantProbe)
		}
		if gotBuild != wantBuild {
			t.Errorf("par=%d build meter %+v, serial %+v", par, gotBuild, wantBuild)
		}
	}
}

// After a join consumes a parallel build query, re-draining that build
// query must return nothing and charge nothing — as it does when serial
// materializeBuild exhausts its iterators.
func TestParallelBuildQueryConsumedByJoin(t *testing.T) {
	a, b := bigJoinTables(41, 2*morselSize, 2*morselSize)
	m := NewMeter(DefaultCostModel())
	build := Scan(b, m).WithParallelism(4)
	if _, err := Scan(a, m).WithParallelism(4).HashJoin(build, "k", "k").Rows(); err != nil {
		t.Fatal(err)
	}
	charged := *m
	rows, err := build.Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("consumed build query re-drained %d rows", len(rows))
	}
	if *m != charged {
		t.Fatalf("re-draining the consumed build query charged the meter: %+v -> %+v", charged, *m)
	}
}

// Re-draining a parallel query whose join used a radix-partitioned build
// must behave like re-draining exhausted serial iterators — empty result,
// zero new charges — and the consumed build query itself must also stay
// empty and free. Same contract as TestParallelRedrainIsEmptyAndFree,
// but crossing the partitioned-build threshold.
func TestPartitionedBuildRedrainIsEmptyAndFree(t *testing.T) {
	a, b := bigJoinTables(61, 3*morselSize, partitionedBuildMinRows+99)
	m := NewMeter(DefaultCostModel())
	build := Scan(b, m).WithParallelism(4)
	q := Scan(a, m).WithParallelism(4).HashJoin(build, "k", "k")
	first, err := q.Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 {
		t.Fatal("join produced no rows; test tables must overlap")
	}
	charged := *m
	again, err := q.Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 0 {
		t.Fatalf("second drain returned %d rows", len(again))
	}
	if *m != charged {
		t.Fatalf("second drain charged the meter: %+v -> %+v", charged, *m)
	}
	rows, err := build.Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("consumed build query re-drained %d rows", len(rows))
	}
	if *m != charged {
		t.Fatalf("re-draining the consumed build query charged the meter: %+v -> %+v", charged, *m)
	}
}

// A build side that did NOT opt into parallelism must stay serial even
// when the probe side is parallel — its predicates made no purity
// promise. The sides' results and meters still match an all-serial run.
func TestSerialBuildSideNotEscalated(t *testing.T) {
	a, b := bigJoinTables(43, 3*morselSize, 2*morselSize)
	calls := 0
	impure := func(r Row) bool { calls++; return r[0].Int%2 == 0 } // not race-safe on purpose
	sm := NewMeter(DefaultCostModel())
	want, err := Scan(a, sm).HashJoin(Scan(b, sm).Filter(impure), "k", "k").GroupCount("k").Rows()
	if err != nil {
		t.Fatal(err)
	}
	serialCalls := calls
	calls = 0
	pm := NewMeter(DefaultCostModel())
	got, err := Scan(a, pm).WithParallelism(4).
		HashJoin(Scan(b, pm).Filter(impure), "k", "k").GroupCount("k").Rows()
	if err != nil {
		t.Fatal(err)
	}
	if calls != serialCalls {
		t.Fatalf("impure build predicate called %d times, serial %d", calls, serialCalls)
	}
	assertSameRowsAndMeter(t, "serial-build", got, pm, want, sm)
}

// Partitioned hash-join builds must be observationally identical to the
// serial build: the build side here exceeds partitionedBuildMinRows, so
// parallel plans take the radix-partitioned path, and the dense duplicate
// keys make any chain-order deviation visible in the probe output. Rows
// and meters are compared against the row-at-a-time reference in
// rowref.go at n ∈ {2, 4, 8}.
func TestPartitionedBuildMatchesRowReference(t *testing.T) {
	r := stats.NewRNG(47)
	probe := NewTable("p", Schema{{Name: "k", Type: Int64}, {Name: "v", Type: Int64}})
	build := NewTable("b", Schema{{Name: "k", Type: Int64}, {Name: "w", Type: Int64}})
	for i := 0; i < 600; i++ {
		probe.MustAppend(Row{I(r.Int63n(50)), I(int64(i))})
	}
	buildRows := partitionedBuildMinRows + 777
	for i := 0; i < buildRows; i++ {
		// ~40 rows per key: every probe hit walks a long chain whose
		// order must be serial build order.
		build.MustAppend(Row{I(r.Int63n(50)), I(int64(i))})
	}
	wm := NewMeter(DefaultCostModel())
	want, err := refScan(probe, wm).HashJoin(refScan(build, wm), "k", "k").Rows()
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 4, 8} {
		gm := NewMeter(DefaultCostModel())
		got, err := Scan(probe, gm).WithParallelism(par).
			HashJoin(Scan(build, gm).WithParallelism(par), "k", "k").Rows()
		if err != nil {
			t.Fatal(err)
		}
		assertSameRowsAndMeter(t, fmt.Sprintf("partitioned par=%d", par), got, gm, want, wm)
	}
}

// The parallel merge sort must reproduce the serial stable sort exactly:
// the input exceeds parallelSortMinRows so parallel plans take the
// chunked sort + pairwise merge path, and the narrow key range forces
// long runs of equal keys whose relative order (stability) any merge
// mistake would scramble. Compared against rowref.go at n ∈ {2, 4, 8},
// both directions.
func TestParallelMergeSortMatchesRowReference(t *testing.T) {
	r := stats.NewRNG(53)
	a := NewTable("a", Schema{
		{Name: "k", Type: Int64},
		{Name: "v", Type: Int64},
		{Name: "s", Type: String},
	})
	rows := parallelSortMinRows + 1234
	for i := 0; i < rows; i++ {
		a.MustAppend(Row{I(r.Int63n(7)), I(int64(i)), S(fmt.Sprintf("s%d", r.Intn(3)))})
	}
	for _, desc := range []bool{false, true} {
		wm := NewMeter(DefaultCostModel())
		want, err := refScan(a, wm).OrderByInt("k", desc).Rows()
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{2, 4, 8} {
			gm := NewMeter(DefaultCostModel())
			got, err := Scan(a, gm).WithParallelism(par).OrderByInt("k", desc).Rows()
			if err != nil {
				t.Fatal(err)
			}
			assertSameRowsAndMeter(t, fmt.Sprintf("mergesort desc=%v par=%d", desc, par), got, gm, want, wm)
		}
	}
}

// parallelSortPerm must agree with the serial stable sort for every
// worker count and edge-case size: empty input, below the parallel
// threshold, run counts that leave odd tails in the pairwise merge
// rounds, and single-run splits.
func TestParallelSortPermEdgeCases(t *testing.T) {
	r := stats.NewRNG(59)
	for _, rows := range []int{0, 1, 2, 100, parallelSortMinRows - 1, parallelSortMinRows, parallelSortMinRows + 1, 3*parallelSortMinRows + 17} {
		key := make([]int64, rows)
		for i := range key {
			key[i] = r.Int63n(5)
		}
		for _, desc := range []bool{false, true} {
			want := parallelSortPerm(key, rows, 1, desc)
			for _, par := range []int{2, 3, 5, 8} {
				got := parallelSortPerm(key, rows, par, desc)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("rows=%d par=%d desc=%v: perm[%d]=%d, want %d",
							rows, par, desc, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// ForEachBatch under a parallel plan must emit the same row stream and
// the same emit charges as the serial drain.
func TestParallelForEachBatch(t *testing.T) {
	a, b := bigJoinTables(29, 4*morselSize+9, 150)
	collect := func(par int, m *Meter) []Row {
		t.Helper()
		var rows []Row
		err := Scan(a, m).WithParallelism(par).
			HashJoin(Scan(b, m).WithParallelism(par), "k", "k").
			ForEachBatch(func(b *Batch) error {
				b.forEachActive(func(pos int) {
					row := make(Row, len(b.cols))
					for c := range b.cols {
						row[c] = b.Col(c).datum(pos)
					}
					rows = append(rows, row)
				})
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	sm := NewMeter(DefaultCostModel())
	want := collect(1, sm)
	pm := NewMeter(DefaultCostModel())
	got := collect(4, pm)
	assertSameRowsAndMeter(t, "foreachbatch", got, pm, want, sm)
}
