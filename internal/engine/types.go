// Package engine is a small in-memory relational query engine with typed
// columnar tables, hash indexes, hash joins, grouped aggregation,
// materialized views, and a cost meter that converts the rows an
// execution touches into simulated query time.
//
// It exists because the paper's motivating use-case (Section 2) runs real
// halo-tracking queries over universe-simulation snapshots, sped up by
// materialized (particleID, haloID) views. internal/astro builds that
// workload on this engine; the per-optimization savings the pricing
// mechanisms consume are derived from the meter's work counts, so the
// "optimizations" being priced are real query-plan changes rather than
// hard-coded constants.
//
// # Execution model
//
// Queries execute batch-at-a-time: a Batch of column vectors plus an
// optional selection vector flows through Scan → Filter → Project →
// HashJoin/IndexJoin → GroupCount/GroupBy/Top1By/OrderByInt → Limit, so
// the hot loops run over typed slices instead of materializing a Row per
// operator per row. Scans are zero-copy views of table storage; filters
// narrow the selection vector; projection reorders vector references;
// the hash join probes an open-addressing int64 → row-positions table
// and gathers output columns straight from the build side's vectors.
// Query.Rows is the row-at-a-time compatibility shim (one exact-size Row
// per output row); hot callers use Query.ForEachBatch.
//
// # Parallel execution
//
// Query.WithParallelism(n) opts a query into morsel-driven parallelism
// (Leis et al., SIGMOD 2014; see parallel.go): the scan is split into
// fixed-size morsels claimed by n workers, each running a private copy
// of the streamable pipeline (Filter, Project, join probes); pipeline
// breakers — hash build, GroupCount/GroupBy, Top1By/Top1, OrderByInt,
// Rows/ForEachBatch — merge the per-morsel partials deterministically.
// n = 1 (the default) keeps the serial path, so existing callers and
// every committed figure CSV are untouched.
//
// The architecture is morsels → partitioned sinks → deterministic
// merges: after the streamable phases fan out, the pipeline breakers
// themselves also run parallel rather than funneling into one thread.
// Large hash-join builds are radix-partitioned by a prefix of the key
// hash — per-partition tables built concurrently, rows inserted in
// global (morsel, row) coordinate order so every per-key chain is
// threaded in serial build order, probes routed by the same prefix
// (buildPartitioned). OrderByInt sorts per-worker runs concurrently and
// merges them pairwise with a key-then-coordinate comparator — a total
// order equal to the serial stable sort (parallelSortPerm). Top1 and the
// grouped Int64 aggregates reduce per-worker partials by coordinate;
// Float64 group aggregates instead accumulate over the coordinate-merged
// rows so float addition order — and every output bit — matches serial.
// The same recipe extends past the engine: astro.HaloFinder fans its
// candidate-pair phase over contiguous particle-id chunks and replays
// passing pairs through its union-find in serial pair order.
//
// # Metering contract
//
// Batch execution never changes what a query is charged. The unit counts
// — one scan per row a Scan produces, one build per row entering a hash
// build or aggregation, one probe per probe-side row reaching a join,
// one emit per row leaving Rows/ForEachBatch — are identical, charge
// point by charge point, to the row-at-a-time reference retained in
// rowref.go, including early-exit behavior under Limit (operators
// propagate the remaining row budget upstream rather than over-pulling).
// The property tests assert byte-identical rows and identical Meter
// counts between the two executors on randomized inputs.
//
// Parallel execution preserves the contract exactly, at every worker
// count:
//
//   - Each worker charges a private Meter at the same charge points the
//     serial operators use; the worker meters are folded into the
//     query's meter with Meter.Add at the pipeline breaker. Since every
//     row flows through exactly one worker's pipeline, the folded
//     totals equal the serial totals.
//   - Hash-join build sides are drained in parallel and merged in
//     morsel order before the hash table is populated — sequentially
//     for small builds, radix-partitioned across workers for large ones
//     — so per-key probe chains are threaded in serial build order and
//     probe output is byte-identical either way.
//   - Order-sensitive sinks merge worker partials by first-occurrence
//     coordinate (morsel index, row within morsel), reproducing serial
//     first-seen group order, Top1 tie-breaks and sort stability.
//   - Pipelines under a row budget (below a Limit) always run serially:
//     which rows an early exit pulls — and meters — is defined by
//     serial pull order, so parallelizing it would change the bill.
//
// The pricing mechanisms bill on these meter counts, so the guarantee
// is load-bearing: a provider can scale metered execution across cores
// without perturbing a single price.
package engine

import "fmt"

// ColType is the type of a column.
type ColType int

const (
	// Int64 is a 64-bit integer column.
	Int64 ColType = iota
	// Float64 is a 64-bit floating-point column.
	Float64
	// String is a variable-length string column.
	String
)

// String returns the type's name.
func (t ColType) String() string {
	switch t {
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	case String:
		return "string"
	default:
		return fmt.Sprintf("ColType(%d)", int(t))
	}
}

// Column describes one column of a schema.
type Column struct {
	Name string
	Type ColType
}

// Schema is an ordered list of columns.
type Schema []Column

// ColIndex returns the position of the named column, or -1.
func (s Schema) ColIndex(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Validate reports an error on empty names or duplicates.
func (s Schema) Validate() error {
	seen := make(map[string]bool, len(s))
	for _, c := range s {
		if c.Name == "" {
			return fmt.Errorf("engine: empty column name")
		}
		if seen[c.Name] {
			return fmt.Errorf("engine: duplicate column %q", c.Name)
		}
		seen[c.Name] = true
	}
	return nil
}

// Datum is one typed value. Exactly the field matching Kind is meaningful.
type Datum struct {
	Kind  ColType
	Int   int64
	Float float64
	Str   string
}

// I returns an Int64 datum.
func I(v int64) Datum { return Datum{Kind: Int64, Int: v} }

// F returns a Float64 datum.
func F(v float64) Datum { return Datum{Kind: Float64, Float: v} }

// S returns a String datum.
func S(v string) Datum { return Datum{Kind: String, Str: v} }

// Equal reports whether two datums have the same type and value.
func (d Datum) Equal(o Datum) bool {
	if d.Kind != o.Kind {
		return false
	}
	switch d.Kind {
	case Int64:
		return d.Int == o.Int
	case Float64:
		return d.Float == o.Float
	default:
		return d.Str == o.Str
	}
}

// String renders the datum's value.
func (d Datum) String() string {
	switch d.Kind {
	case Int64:
		return fmt.Sprintf("%d", d.Int)
	case Float64:
		return fmt.Sprintf("%g", d.Float)
	default:
		return d.Str
	}
}

// Row is one tuple, positionally aligned with a Schema.
type Row []Datum
