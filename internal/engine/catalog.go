package engine

import "fmt"

// MaterializedView is a precomputed table registered in a catalog,
// together with a hash index over its key column. Building one costs
// real metered work (it is the optimization whose price the mechanisms
// negotiate); once built, queries pay only index probes.
type MaterializedView struct {
	// Name identifies the view in the catalog.
	Name string
	// Data is the precomputed result.
	Data *Table
	// Index is a hash index over Data's key column.
	Index *HashIndex
	// BuildUnits records the metered work spent building the view, for
	// cost accounting.
	BuildUnits int64
}

// Catalog holds named tables, indexes and materialized views.
type Catalog struct {
	tables map[string]*Table
	views  map[string]*MaterializedView
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		tables: make(map[string]*Table),
		views:  make(map[string]*MaterializedView),
	}
}

// AddTable registers a base table.
func (c *Catalog) AddTable(t *Table) error {
	if _, dup := c.tables[t.Name()]; dup {
		return fmt.Errorf("engine: duplicate table %q", t.Name())
	}
	c.tables[t.Name()] = t
	return nil
}

// Table returns a base table by name.
func (c *Catalog) Table(name string) (*Table, bool) {
	t, ok := c.tables[name]
	return t, ok
}

// AddView registers a materialized view.
func (c *Catalog) AddView(v *MaterializedView) error {
	if _, dup := c.views[v.Name]; dup {
		return fmt.Errorf("engine: duplicate view %q", v.Name)
	}
	c.views[v.Name] = v
	return nil
}

// View returns a materialized view by name.
func (c *Catalog) View(name string) (*MaterializedView, bool) {
	v, ok := c.views[name]
	return v, ok
}

// DropView removes a materialized view (e.g. when its subscription ends).
func (c *Catalog) DropView(name string) {
	delete(c.views, name)
}

// ViewNames returns the registered view names (unordered).
func (c *Catalog) ViewNames() []string {
	names := make([]string, 0, len(c.views))
	for n := range c.views {
		names = append(names, n)
	}
	return names
}

// Materialize drains a query into a new view with a hash index on
// keyCol, metering the build work and recording it in the view. The
// drain is batch-native (ForEachBatch): emit units are charged exactly
// as Rows would charge them, plus one build unit per stored row.
func Materialize(name string, q *Query, keyCol string, meter *Meter) (*MaterializedView, error) {
	before := int64(0)
	if meter != nil {
		before = meter.WorkUnits()
	}
	t := NewTable(name, q.OutSchema())
	scratch := make(Row, len(q.OutSchema()))
	err := q.ForEachBatch(func(b *Batch) error {
		var innerErr error
		b.forEachActive(func(pos int) {
			if innerErr != nil {
				return
			}
			for c := range scratch {
				scratch[c] = b.Col(c).datum(pos)
			}
			innerErr = t.Append(scratch)
		})
		if innerErr != nil {
			return innerErr
		}
		if meter != nil {
			meter.RowsBuilt += int64(b.Len())
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("engine: materializing %q: %w", name, err)
	}
	idx, err := BuildHashIndex(t, keyCol, meter)
	if err != nil {
		return nil, err
	}
	var build int64
	if meter != nil {
		build = meter.WorkUnits() - before
	}
	return &MaterializedView{Name: name, Data: t, Index: idx, BuildUnits: build}, nil
}
