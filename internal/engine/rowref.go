package engine

import (
	"fmt"
	"sort"
)

// Row-at-a-time reference implementation. This is the engine's original
// Volcano-style executor, retained verbatim as the executable
// specification of both row output (order and values) and the metering
// contract: the property tests in property_test.go assert that the
// columnar batch operators produce byte-identical rows and identical
// Meter counts against it on randomized inputs. It is not used on any
// production path.

// Iterator is a pull-based row stream — the reference execution
// contract.
type Iterator interface {
	// Schema describes the rows produced.
	Schema() Schema
	// Next returns the next row, or false when exhausted.
	Next() (Row, bool)
}

// refQuery is the reference counterpart of Query, with the same builder
// surface and charge points.
type refQuery struct {
	it    Iterator
	meter *Meter
	err   error
}

// refScan starts a reference query scanning a table.
func refScan(t *Table, meter *Meter) *refQuery {
	return &refQuery{it: &refScanIter{t: t, meter: meter}, meter: meter}
}

type refScanIter struct {
	t     *Table
	meter *Meter
	pos   int
}

func (s *refScanIter) Schema() Schema { return s.t.Schema() }

func (s *refScanIter) Next() (Row, bool) {
	if s.pos >= s.t.Len() {
		return nil, false
	}
	row := s.t.RowAt(s.pos)
	s.pos++
	if s.meter != nil {
		s.meter.RowsScanned++
	}
	return row, true
}

func (q *refQuery) Filter(pred func(Row) bool) *refQuery {
	if q.err != nil {
		return q
	}
	q.it = &refFilterIter{in: q.it, pred: pred}
	return q
}

func (q *refQuery) FilterIntEq(col string, v int64) *refQuery {
	if q.err != nil {
		return q
	}
	i := q.it.Schema().ColIndex(col)
	if i < 0 {
		q.err = fmt.Errorf("engine: filter: no column %q", col)
		return q
	}
	q.it = &refFilterIter{in: q.it, pred: func(r Row) bool { return r[i].Int == v }}
	return q
}

type refFilterIter struct {
	in   Iterator
	pred func(Row) bool
}

func (f *refFilterIter) Schema() Schema { return f.in.Schema() }

func (f *refFilterIter) Next() (Row, bool) {
	for {
		row, ok := f.in.Next()
		if !ok {
			return nil, false
		}
		if f.pred(row) {
			return row, true
		}
	}
}

func (q *refQuery) Project(cols ...string) *refQuery {
	if q.err != nil {
		return q
	}
	in := q.it.Schema()
	idx := make([]int, len(cols))
	out := make(Schema, len(cols))
	for k, c := range cols {
		i := in.ColIndex(c)
		if i < 0 {
			q.err = fmt.Errorf("engine: project: no column %q", c)
			return q
		}
		idx[k] = i
		out[k] = in[i]
	}
	q.it = &refProjectIter{in: q.it, idx: idx, schema: out}
	return q
}

type refProjectIter struct {
	in     Iterator
	idx    []int
	schema Schema
}

func (p *refProjectIter) Schema() Schema { return p.schema }

func (p *refProjectIter) Next() (Row, bool) {
	row, ok := p.in.Next()
	if !ok {
		return nil, false
	}
	out := make(Row, len(p.idx))
	for k, i := range p.idx {
		out[k] = row[i]
	}
	return out, true
}

func (q *refQuery) HashJoin(build *refQuery, probeCol, buildCol string) *refQuery {
	if q.err != nil {
		return q
	}
	if build.err != nil {
		q.err = build.err
		return q
	}
	pi := q.it.Schema().ColIndex(probeCol)
	if pi < 0 || q.it.Schema()[pi].Type != Int64 {
		q.err = fmt.Errorf("engine: hash join: bad probe column %q", probeCol)
		return q
	}
	bSchema := build.it.Schema()
	bi := bSchema.ColIndex(buildCol)
	if bi < 0 || bSchema[bi].Type != Int64 {
		q.err = fmt.Errorf("engine: hash join: bad build column %q", buildCol)
		return q
	}
	ht := make(map[int64][]Row)
	for {
		row, ok := build.it.Next()
		if !ok {
			break
		}
		key := row[bi].Int
		ht[key] = append(ht[key], row)
		if q.meter != nil {
			q.meter.RowsBuilt++
		}
	}
	q.it = &refHashJoinIter{in: q.it, ht: ht, probeIdx: pi,
		schema: joinSchema(q.it.Schema(), bSchema), meter: q.meter}
	return q
}

type refHashJoinIter struct {
	in       Iterator
	ht       map[int64][]Row
	probeIdx int
	schema   Schema
	meter    *Meter

	pending []Row
	current Row
}

func (h *refHashJoinIter) Schema() Schema { return h.schema }

func (h *refHashJoinIter) Next() (Row, bool) {
	for {
		if len(h.pending) > 0 {
			match := h.pending[0]
			h.pending = h.pending[1:]
			out := make(Row, 0, len(h.schema))
			out = append(out, h.current...)
			out = append(out, match...)
			return out, true
		}
		row, ok := h.in.Next()
		if !ok {
			return nil, false
		}
		if h.meter != nil {
			h.meter.RowsProbed++
		}
		h.current = row
		h.pending = h.ht[row[h.probeIdx].Int]
	}
}

func (q *refQuery) IndexJoin(idx *HashIndex, probeCol string) *refQuery {
	if q.err != nil {
		return q
	}
	pi := q.it.Schema().ColIndex(probeCol)
	if pi < 0 || q.it.Schema()[pi].Type != Int64 {
		q.err = fmt.Errorf("engine: index join: bad probe column %q", probeCol)
		return q
	}
	q.it = &refIndexJoinIter{in: q.it, idx: idx, probeIdx: pi,
		schema: joinSchema(q.it.Schema(), idx.Table().Schema()), meter: q.meter}
	return q
}

type refIndexJoinIter struct {
	in       Iterator
	idx      *HashIndex
	probeIdx int
	schema   Schema
	meter    *Meter

	pending []int32
	current Row
}

func (ij *refIndexJoinIter) Schema() Schema { return ij.schema }

func (ij *refIndexJoinIter) Next() (Row, bool) {
	for {
		if len(ij.pending) > 0 {
			pos := ij.pending[0]
			ij.pending = ij.pending[1:]
			out := make(Row, 0, len(ij.schema))
			out = append(out, ij.current...)
			out = append(out, ij.idx.Table().RowAt(int(pos))...)
			return out, true
		}
		row, ok := ij.in.Next()
		if !ok {
			return nil, false
		}
		ij.current = row
		ij.pending = ij.idx.Lookup(row[ij.probeIdx].Int, ij.meter)
	}
}

func (q *refQuery) GroupCount(col string) *refQuery {
	if q.err != nil {
		return q
	}
	i := q.it.Schema().ColIndex(col)
	if i < 0 || q.it.Schema()[i].Type != Int64 {
		q.err = fmt.Errorf("engine: group count: bad column %q", col)
		return q
	}
	counts := make(map[int64]int64)
	order := make([]int64, 0)
	for {
		row, ok := q.it.Next()
		if !ok {
			break
		}
		k := row[i].Int
		if _, seen := counts[k]; !seen {
			order = append(order, k)
		}
		counts[k]++
		if q.meter != nil {
			q.meter.RowsBuilt++
		}
	}
	name := q.it.Schema()[i].Name
	rows := make([]Row, 0, len(order))
	for _, k := range order {
		rows = append(rows, Row{I(k), I(counts[k])})
	}
	q.it = &refSliceIter{rows: rows, schema: Schema{{Name: name, Type: Int64}, {Name: "count", Type: Int64}}}
	return q
}

// GroupBy is the reference grouped aggregation, mirroring Query.GroupBy.
func (q *refQuery) GroupBy(key string, aggs ...Aggregation) *refQuery {
	if q.err != nil {
		return q
	}
	if len(aggs) == 0 {
		q.err = fmt.Errorf("engine: group by: no aggregations")
		return q
	}
	in := q.it.Schema()
	ki := in.ColIndex(key)
	if ki < 0 || in[ki].Type != Int64 {
		q.err = fmt.Errorf("engine: group by: bad key column %q", key)
		return q
	}
	cols := make([]int, len(aggs))
	outSchema := Schema{{Name: in[ki].Name, Type: Int64}}
	for a, agg := range aggs {
		name := "count"
		if agg.Func != AggCount {
			ci := in.ColIndex(agg.Col)
			if ci < 0 || in[ci].Type != Int64 {
				q.err = fmt.Errorf("engine: group by: bad aggregate column %q", agg.Col)
				return q
			}
			cols[a] = ci
			name = fmt.Sprintf("%s(%s)", agg.Func, agg.Col)
		}
		outSchema = append(outSchema, Column{Name: name, Type: Int64})
	}

	type groupState struct {
		accs []int64
		seen bool
	}
	groups := make(map[int64]*groupState)
	order := make([]int64, 0)
	for {
		row, ok := q.it.Next()
		if !ok {
			break
		}
		k := row[ki].Int
		g := groups[k]
		if g == nil {
			g = &groupState{accs: make([]int64, len(aggs))}
			groups[k] = g
			order = append(order, k)
		}
		for a, agg := range aggs {
			v := row[cols[a]].Int
			switch agg.Func {
			case AggCount:
				g.accs[a]++
			case AggSum:
				g.accs[a] += v
			case AggMin:
				if !g.seen || v < g.accs[a] {
					g.accs[a] = v
				}
			case AggMax:
				if !g.seen || v > g.accs[a] {
					g.accs[a] = v
				}
			default:
				q.err = fmt.Errorf("engine: group by: unknown function %v", agg.Func)
				return q
			}
		}
		g.seen = true
		if q.meter != nil {
			q.meter.RowsBuilt++
		}
	}
	rows := make([]Row, 0, len(order))
	for _, k := range order {
		row := Row{I(k)}
		for _, acc := range groups[k].accs {
			row = append(row, I(acc))
		}
		rows = append(rows, row)
	}
	q.it = &refSliceIter{rows: rows, schema: outSchema}
	return q
}

// refGroupFloat64 is the shared reference drain of the Float64 grouped
// aggregates: per first-seen group, the float sum over column ci
// accumulated in row order, plus the member count.
func (q *refQuery) refGroupFloat64(ki, ci int) (keys []int64, sums []float64, counts []int64) {
	slots := make(map[int64]int)
	for {
		row, ok := q.it.Next()
		if !ok {
			break
		}
		k := row[ki].Int
		s, seen := slots[k]
		if !seen {
			s = len(keys)
			slots[k] = s
			keys = append(keys, k)
			sums = append(sums, 0)
			counts = append(counts, 0)
		}
		sums[s] += row[ci].Float
		counts[s]++
		if q.meter != nil {
			q.meter.RowsBuilt++
		}
	}
	return keys, sums, counts
}

// checkFloatGroup mirrors Query.checkFloatGroup.
func (q *refQuery) checkFloatGroup(op, key, col string) (ki, ci int) {
	in := q.it.Schema()
	ki = in.ColIndex(key)
	if ki < 0 || in[ki].Type != Int64 {
		q.err = fmt.Errorf("engine: %s: bad key column %q", op, key)
		return -1, -1
	}
	ci = in.ColIndex(col)
	if ci < 0 || in[ci].Type != Float64 {
		q.err = fmt.Errorf("engine: %s: bad float column %q", op, col)
		return -1, -1
	}
	return ki, ci
}

// GroupSumFloat64 is the reference twin of Query.GroupSumFloat64.
func (q *refQuery) GroupSumFloat64(key, col string) *refQuery {
	if q.err != nil {
		return q
	}
	ki, ci := q.checkFloatGroup("group sum float", key, col)
	if q.err != nil {
		return q
	}
	name := q.it.Schema()[ki].Name
	keys, sums, _ := q.refGroupFloat64(ki, ci)
	rows := make([]Row, 0, len(keys))
	for s, k := range keys {
		rows = append(rows, Row{I(k), F(sums[s])})
	}
	q.it = &refSliceIter{rows: rows, schema: Schema{
		{Name: name, Type: Int64},
		{Name: fmt.Sprintf("sum(%s)", col), Type: Float64},
	}}
	return q
}

// GroupMeanFloat64 is the reference twin of Query.GroupMeanFloat64.
func (q *refQuery) GroupMeanFloat64(key, col string) *refQuery {
	if q.err != nil {
		return q
	}
	ki, ci := q.checkFloatGroup("group mean float", key, col)
	if q.err != nil {
		return q
	}
	name := q.it.Schema()[ki].Name
	keys, sums, counts := q.refGroupFloat64(ki, ci)
	rows := make([]Row, 0, len(keys))
	for s, k := range keys {
		rows = append(rows, Row{I(k), F(sums[s] / float64(counts[s]))})
	}
	q.it = &refSliceIter{rows: rows, schema: Schema{
		{Name: name, Type: Int64},
		{Name: fmt.Sprintf("mean(%s)", col), Type: Float64},
	}}
	return q
}

type refSliceIter struct {
	rows   []Row
	schema Schema
	pos    int
}

func (s *refSliceIter) Schema() Schema { return s.schema }

func (s *refSliceIter) Next() (Row, bool) {
	if s.pos >= len(s.rows) {
		return nil, false
	}
	r := s.rows[s.pos]
	s.pos++
	return r, true
}

func (q *refQuery) Top1By(col string) *refQuery {
	if q.err != nil {
		return q
	}
	i := q.it.Schema().ColIndex(col)
	if i < 0 || q.it.Schema()[i].Type != Int64 {
		q.err = fmt.Errorf("engine: top1: bad column %q", col)
		return q
	}
	var best Row
	for {
		row, ok := q.it.Next()
		if !ok {
			break
		}
		if best == nil || row[i].Int > best[i].Int {
			best = row
		}
	}
	rows := []Row{}
	if best != nil {
		rows = append(rows, best)
	}
	q.it = &refSliceIter{rows: rows, schema: q.it.Schema()}
	return q
}

func (q *refQuery) OrderByInt(col string, desc bool) *refQuery {
	if q.err != nil {
		return q
	}
	i := q.it.Schema().ColIndex(col)
	if i < 0 || q.it.Schema()[i].Type != Int64 {
		q.err = fmt.Errorf("engine: order by: bad column %q", col)
		return q
	}
	var rows []Row
	for {
		row, ok := q.it.Next()
		if !ok {
			break
		}
		rows = append(rows, row)
	}
	sort.SliceStable(rows, func(a, b int) bool {
		if desc {
			return rows[a][i].Int > rows[b][i].Int
		}
		return rows[a][i].Int < rows[b][i].Int
	})
	q.it = &refSliceIter{rows: rows, schema: q.it.Schema()}
	return q
}

func (q *refQuery) Limit(n int) *refQuery {
	if q.err != nil {
		return q
	}
	q.it = &refLimitIter{in: q.it, left: n}
	return q
}

type refLimitIter struct {
	in   Iterator
	left int
}

func (l *refLimitIter) Schema() Schema { return l.in.Schema() }

func (l *refLimitIter) Next() (Row, bool) {
	if l.left <= 0 {
		return nil, false
	}
	l.left--
	return l.in.Next()
}

func (q *refQuery) Rows() ([]Row, error) {
	if q.err != nil {
		return nil, q.err
	}
	var out []Row
	for {
		row, ok := q.it.Next()
		if !ok {
			break
		}
		out = append(out, row)
		if q.meter != nil {
			q.meter.RowsEmitted++
		}
	}
	return out, nil
}

func (q *refQuery) OutSchema() Schema {
	if q.err != nil {
		return nil
	}
	return q.it.Schema()
}
