package engine

import "fmt"

// Table is an immutable-schema, append-only columnar table.
type Table struct {
	name   string
	schema Schema
	ints   [][]int64
	floats [][]float64
	strs   [][]string
	// colSlot[i] indexes into the typed storage for column i.
	colSlot []int
	rows    int
}

// NewTable creates an empty table. It panics on an invalid schema, which
// is a programming error in the caller.
func NewTable(name string, schema Schema) *Table {
	if err := schema.Validate(); err != nil {
		panic(err)
	}
	t := &Table{name: name, schema: schema, colSlot: make([]int, len(schema))}
	for i, c := range schema {
		switch c.Type {
		case Int64:
			t.colSlot[i] = len(t.ints)
			t.ints = append(t.ints, nil)
		case Float64:
			t.colSlot[i] = len(t.floats)
			t.floats = append(t.floats, nil)
		case String:
			t.colSlot[i] = len(t.strs)
			t.strs = append(t.strs, nil)
		default:
			panic(fmt.Sprintf("engine: unknown column type %v", c.Type))
		}
	}
	return t
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() Schema { return t.schema }

// Len returns the number of rows.
func (t *Table) Len() int { return t.rows }

// Append adds one row. The row must match the schema positionally.
func (t *Table) Append(row Row) error {
	if len(row) != len(t.schema) {
		return fmt.Errorf("engine: table %s: row has %d values, schema has %d columns",
			t.name, len(row), len(t.schema))
	}
	for i, d := range row {
		if d.Kind != t.schema[i].Type {
			return fmt.Errorf("engine: table %s: column %s wants %v, got %v",
				t.name, t.schema[i].Name, t.schema[i].Type, d.Kind)
		}
	}
	for i, d := range row {
		slot := t.colSlot[i]
		switch d.Kind {
		case Int64:
			t.ints[slot] = append(t.ints[slot], d.Int)
		case Float64:
			t.floats[slot] = append(t.floats[slot], d.Float)
		default:
			t.strs[slot] = append(t.strs[slot], d.Str)
		}
	}
	t.rows++
	return nil
}

// MustAppend is Append that panics on error, for loaders with
// statically-correct rows.
func (t *Table) MustAppend(row Row) {
	if err := t.Append(row); err != nil {
		panic(err)
	}
}

// At returns the datum at (row, col).
func (t *Table) At(row, col int) Datum {
	c := t.schema[col]
	slot := t.colSlot[col]
	switch c.Type {
	case Int64:
		return I(t.ints[slot][row])
	case Float64:
		return F(t.floats[slot][row])
	default:
		return S(t.strs[slot][row])
	}
}

// RowAt materializes row i.
func (t *Table) RowAt(i int) Row {
	row := make(Row, len(t.schema))
	for c := range t.schema {
		row[c] = t.At(i, c)
	}
	return row
}

// IntCol returns the backing slice of an Int64 column, for index builds
// and tight scans. Callers must not modify it.
func (t *Table) IntCol(name string) ([]int64, error) {
	i := t.schema.ColIndex(name)
	if i < 0 {
		return nil, fmt.Errorf("engine: table %s: no column %q", t.name, name)
	}
	if t.schema[i].Type != Int64 {
		return nil, fmt.Errorf("engine: table %s: column %q is %v, not int64",
			t.name, name, t.schema[i].Type)
	}
	return t.ints[t.colSlot[i]], nil
}

// FloatCol returns the backing slice of a Float64 column.
func (t *Table) FloatCol(name string) ([]float64, error) {
	i := t.schema.ColIndex(name)
	if i < 0 {
		return nil, fmt.Errorf("engine: table %s: no column %q", t.name, name)
	}
	if t.schema[i].Type != Float64 {
		return nil, fmt.Errorf("engine: table %s: column %q is %v, not float64",
			t.name, name, t.schema[i].Type)
	}
	return t.floats[t.colSlot[i]], nil
}

// SizeBytes estimates the table's storage footprint: 8 bytes per numeric
// value plus string lengths. Materialized-view storage costs derive from
// this.
func (t *Table) SizeBytes() int64 {
	var b int64
	for _, col := range t.ints {
		b += 8 * int64(len(col))
	}
	for _, col := range t.floats {
		b += 8 * int64(len(col))
	}
	for _, col := range t.strs {
		for _, s := range col {
			b += int64(len(s))
		}
	}
	return b
}
