package engine

import "testing"

// Meter.Add is the merge point of every parallel fold (worker meters at
// pipeline breakers, cached clustering costs re-charged per use), so its
// edge cases carry the billing contract.
func TestMeterAddEdgeCases(t *testing.T) {
	filled := func() *Meter {
		m := NewMeter(DefaultCostModel())
		m.RowsScanned, m.RowsBuilt, m.RowsProbed, m.RowsEmitted = 10, 20, 30, 40
		return m
	}

	t.Run("empty-into-filled", func(t *testing.T) {
		m := filled()
		before := *m
		m.Add(&Meter{})
		if *m != before {
			t.Fatalf("adding an empty meter changed counts: %+v -> %+v", before, *m)
		}
	})

	t.Run("filled-into-empty-keeps-model", func(t *testing.T) {
		m := NewMeter(DefaultCostModel())
		src := filled()
		m.Add(src)
		if m.RowsScanned != 10 || m.RowsBuilt != 20 || m.RowsProbed != 30 || m.RowsEmitted != 40 {
			t.Fatalf("counts not copied: %+v", *m)
		}
		if m.Model != DefaultCostModel() {
			t.Fatalf("Add overwrote the destination model: %+v", m.Model)
		}
		// The source model must never leak into the destination.
		src2 := filled()
		src2.Model = CostModel{ScanWeight: 99, WorkUnitsPerSecond: 1}
		m2 := NewMeter(DefaultCostModel())
		m2.Add(src2)
		if m2.Model != DefaultCostModel() {
			t.Fatalf("source model leaked: %+v", m2.Model)
		}
	})

	t.Run("self-add-doubles", func(t *testing.T) {
		m := filled()
		m.Add(m)
		if m.RowsScanned != 20 || m.RowsBuilt != 40 || m.RowsProbed != 60 || m.RowsEmitted != 80 {
			t.Fatalf("self-add: %+v", *m)
		}
	})

	t.Run("repeated-folds-sum", func(t *testing.T) {
		// Folding n worker meters one at a time (the scheduler's loop)
		// must equal a single meter that saw all the work.
		workers := make([]Meter, 5)
		var want Meter
		for i := range workers {
			workers[i].RowsScanned = int64(i + 1)
			workers[i].RowsProbed = int64(10 * (i + 1))
			want.RowsScanned += workers[i].RowsScanned
			want.RowsProbed += workers[i].RowsProbed
		}
		m := NewMeter(DefaultCostModel())
		for i := range workers {
			m.Add(&workers[i])
		}
		if m.RowsScanned != want.RowsScanned || m.RowsProbed != want.RowsProbed {
			t.Fatalf("folded %+v, want scanned %d probed %d",
				*m, want.RowsScanned, want.RowsProbed)
		}
		// Folding the same meters again adds again — Add is additive, not
		// idempotent; callers own the fold-once discipline.
		for i := range workers {
			m.Add(&workers[i])
		}
		if m.RowsScanned != 2*want.RowsScanned {
			t.Fatalf("second fold: %+v", *m)
		}
	})

	t.Run("reset-keeps-model", func(t *testing.T) {
		m := filled()
		m.Reset()
		if m.RowsScanned != 0 || m.RowsBuilt != 0 || m.RowsProbed != 0 || m.RowsEmitted != 0 {
			t.Fatalf("reset left counts: %+v", *m)
		}
		if m.Model != DefaultCostModel() {
			t.Fatalf("reset cleared the model: %+v", m.Model)
		}
	})
}
