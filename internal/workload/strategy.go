package workload

import (
	"sharedopt/internal/core"
	"sharedopt/internal/econ"
	"sharedopt/internal/simulate"
)

// HideToLastSlot returns the scenario in which every user conceals her
// value until the final slot of her true interval, declaring the whole
// amount there — the free-riding strategy against the naive online
// mechanism (paper, Example 2): if anyone else triggers the optimization
// first, the hider uses it without paying.
//
// The returned scenario is the *declared* game; pass the original as the
// truth scenario to the strategic drivers so realized value is still
// measured against what users actually obtain.
func HideToLastSlot(sc simulate.AdditiveScenario) simulate.AdditiveScenario {
	out := simulate.AdditiveScenario{
		Opts:    append([]core.Optimization(nil), sc.Opts...),
		Horizon: sc.Horizon,
	}
	for _, b := range sc.Bids {
		var total econ.Money
		for _, v := range b.Values {
			total += v
		}
		out.Bids = append(out.Bids, simulate.AdditiveBid{
			User: b.User, Opt: b.Opt,
			Start: b.End, End: b.End,
			Values: []econ.Money{total},
		})
	}
	return out
}
