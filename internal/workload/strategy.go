package workload

import (
	"fmt"

	"sharedopt/internal/core"
	"sharedopt/internal/econ"
	"sharedopt/internal/simulate"
)

// HideToLastSlot returns the scenario in which every user conceals her
// value until the final slot of her true interval, declaring the whole
// amount there — the free-riding strategy against the naive online
// mechanism (paper, Example 2): if anyone else triggers the optimization
// first, the hider uses it without paying.
//
// The returned scenario is the *declared* game; pass the original as the
// truth scenario to the strategic drivers so realized value is still
// measured against what users actually obtain.
func HideToLastSlot(sc simulate.AdditiveScenario) simulate.AdditiveScenario {
	out := simulate.AdditiveScenario{
		Opts:    append([]core.Optimization(nil), sc.Opts...),
		Horizon: sc.Horizon,
	}
	for _, b := range sc.Bids {
		var total econ.Money
		for _, v := range b.Values {
			total += v
		}
		out.Bids = append(out.Bids, simulate.AdditiveBid{
			User: b.User, Opt: b.Opt,
			Start: b.End, End: b.End,
			Values: []econ.Money{total},
		})
	}
	return out
}

// SplitAcrossSlots returns the scenario in which every user declares her
// true total value but flattens the profile, spreading it evenly over her
// true interval — the opposite deception of HideToLastSlot: instead of
// concentrating value late, the user understates her peak slots and
// overstates her weak ones, hoping the flattened trickle still rides an
// optimization someone else triggers while muddying when she values it.
// The interval itself is unchanged: departure time is observable, so
// interval misreports are a separate strategy (OverstayToHorizon).
//
// Like the other strategy generators it consumes no randomness: declared
// bids are a pure function of the truth scenario, so pairing declared and
// truth never perturbs the trial RNG stream.
func SplitAcrossSlots(sc simulate.AdditiveScenario) simulate.AdditiveScenario {
	out := simulate.AdditiveScenario{
		Opts:    append([]core.Optimization(nil), sc.Opts...),
		Horizon: sc.Horizon,
	}
	for _, b := range sc.Bids {
		var total econ.Money
		for _, v := range b.Values {
			total += v
		}
		out.Bids = append(out.Bids, simulate.AdditiveBid{
			User: b.User, Opt: b.Opt,
			Start: b.Start, End: b.End,
			Values: SplitEvenly(total, len(b.Values)),
		})
	}
	return out
}

// OverstayToHorizon returns the scenario in which every user reports her
// values truthfully but overstates her departure, padding the interval
// with zero-value slots out to the horizon. AddOn charges the cost-share
// in force when a user's interval ends, and shares only fall as the
// serviced set grows — so overstaying defers the charge to the lowest
// share of the period. The truthfulness theorem is about declared values,
// not departure times; this strategy probes exactly that boundary (see
// hypothesis T3).
func OverstayToHorizon(sc simulate.AdditiveScenario) simulate.AdditiveScenario {
	out := simulate.AdditiveScenario{
		Opts:    append([]core.Optimization(nil), sc.Opts...),
		Horizon: sc.Horizon,
	}
	for _, b := range sc.Bids {
		end := sc.Horizon
		if end < b.End {
			end = b.End
		}
		values := make([]econ.Money, int(end-b.Start)+1)
		copy(values, b.Values)
		out.Bids = append(out.Bids, simulate.AdditiveBid{
			User: b.User, Opt: b.Opt,
			Start: b.Start, End: end,
			Values: values,
		})
	}
	return out
}

// ShadeValue returns a strategy generator that scales every declared
// per-slot value by factor (rounding half away from zero), keeping the
// true interval: factor < 1 understates ("shading" the bid, hoping to pay
// a smaller cost-share), factor > 1 exaggerates, factor == 1 is truthful
// play. It panics if factor is negative.
func ShadeValue(factor float64) func(simulate.AdditiveScenario) simulate.AdditiveScenario {
	if factor < 0 {
		panic(fmt.Sprintf("workload: negative shading factor %v", factor))
	}
	return func(sc simulate.AdditiveScenario) simulate.AdditiveScenario {
		out := simulate.AdditiveScenario{
			Opts:    append([]core.Optimization(nil), sc.Opts...),
			Horizon: sc.Horizon,
		}
		for _, b := range sc.Bids {
			values := make([]econ.Money, len(b.Values))
			for k, v := range b.Values {
				values[k] = econ.FromDollars(v.Dollars() * factor)
			}
			out.Bids = append(out.Bids, simulate.AdditiveBid{
				User: b.User, Opt: b.Opt,
				Start: b.Start, End: b.End,
				Values: values,
			})
		}
		return out
	}
}
