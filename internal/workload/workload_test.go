package workload

import (
	"testing"

	"sharedopt/internal/core"
	"sharedopt/internal/econ"
	"sharedopt/internal/simulate"
	"sharedopt/internal/stats"
)

func TestCollaborationShape(t *testing.T) {
	r := stats.NewRNG(1)
	sc := Collaboration(r, 6, 12, econ.FromDollars(0.5))
	if len(sc.Opts) != 1 || sc.Opts[0].Cost != econ.FromDollars(0.5) {
		t.Fatalf("opts = %+v", sc.Opts)
	}
	if sc.Horizon != 12 || len(sc.Bids) != 6 {
		t.Fatalf("horizon %d, %d bids", sc.Horizon, len(sc.Bids))
	}
	for _, b := range sc.Bids {
		if b.Start != b.End {
			t.Errorf("user %d bids multi-slot %d..%d", b.User, b.Start, b.End)
		}
		if b.Start < 1 || b.Start > 12 {
			t.Errorf("slot %d out of range", b.Start)
		}
		if len(b.Values) != 1 || b.Values[0] < 0 || b.Values[0] >= econ.Dollar {
			t.Errorf("value %v outside [0,$1)", b.Values)
		}
	}
}

func TestCollaborationValuesAverageHalf(t *testing.T) {
	r := stats.NewRNG(2)
	var s stats.Summary
	for i := 0; i < 2000; i++ {
		sc := Collaboration(r, 6, 12, econ.Dollar)
		for _, b := range sc.Bids {
			s.Add(b.Values[0].Dollars())
		}
	}
	if s.Mean() < 0.48 || s.Mean() > 0.52 {
		t.Errorf("mean user value %v, want ≈ 0.5", s.Mean())
	}
}

func TestMultiSlotSplitsValue(t *testing.T) {
	r := stats.NewRNG(3)
	for _, d := range []int{1, 2, 5, 12} {
		sc := MultiSlot(r, 6, 12, d, econ.Dollar)
		if sc.Horizon != core.Slot(12+d-1) {
			t.Errorf("d=%d: horizon %d", d, sc.Horizon)
		}
		for _, b := range sc.Bids {
			if int(b.End-b.Start)+1 != d {
				t.Errorf("d=%d: interval %d..%d", d, b.Start, b.End)
			}
			var total econ.Money
			for _, v := range b.Values {
				total += v
			}
			if total >= econ.Dollar {
				t.Errorf("total %v outside [0,$1)", total)
			}
			// Values differ by at most one micro-dollar (even split).
			for _, v := range b.Values {
				if v < b.Values[d-1] || v > b.Values[0] {
					t.Errorf("uneven split %v", b.Values)
				}
			}
		}
	}
}

func TestSkewedUsesArrivalProcess(t *testing.T) {
	rEarly, rLate := stats.NewRNG(4), stats.NewRNG(4)
	var early, late stats.Summary
	for i := 0; i < 500; i++ {
		for _, b := range Skewed(rEarly, 6, 12, econ.Dollar, stats.ArrivalEarly).Bids {
			early.Add(float64(b.Start))
		}
		for _, b := range Skewed(rLate, 6, 12, econ.Dollar, stats.ArrivalLate).Bids {
			late.Add(float64(b.Start))
		}
	}
	if early.Mean() >= 3 {
		t.Errorf("early arrivals mean slot %v, want < 3", early.Mean())
	}
	if late.Mean() <= 10 {
		t.Errorf("late arrivals mean slot %v, want > 10", late.Mean())
	}
}

func TestSubstitutesShape(t *testing.T) {
	r := stats.NewRNG(5)
	mean := econ.FromDollars(1.0)
	sc := Substitutes(r, 24, 12, 3, 12, mean)
	if len(sc.Opts) != 12 || len(sc.Bids) != 24 {
		t.Fatalf("%d opts, %d bids", len(sc.Opts), len(sc.Bids))
	}
	for _, o := range sc.Opts {
		if o.Cost < 1 || o.Cost > 2*mean {
			t.Errorf("cost %v outside (0, $2]", o.Cost)
		}
	}
	for _, b := range sc.Bids {
		if len(b.Opts) != 3 {
			t.Errorf("user %d has %d substitutes", b.User, len(b.Opts))
		}
		seen := map[core.OptID]bool{}
		for _, j := range b.Opts {
			if seen[j] || j < 1 || j > 12 {
				t.Errorf("bad substitute set %v", b.Opts)
			}
			seen[j] = true
		}
	}
}

func TestSubstitutesCostsAverageMean(t *testing.T) {
	r := stats.NewRNG(6)
	mean := econ.FromDollars(1.5)
	var s stats.Summary
	for i := 0; i < 1000; i++ {
		for _, o := range Substitutes(r, 6, 12, 3, 12, mean).Opts {
			s.Add(o.Cost.Dollars())
		}
	}
	if s.Mean() < 1.45 || s.Mean() > 1.55 {
		t.Errorf("mean cost %v, want ≈ 1.5", s.Mean())
	}
}

func TestSubstitutesPanicsWhenSetTooBig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for 5 substitutes of 4")
		}
	}()
	Substitutes(stats.NewRNG(1), 6, 4, 5, 12, econ.Dollar)
}

func TestSplitEvenly(t *testing.T) {
	cases := []struct {
		total econ.Money
		n     int
	}{
		{econ.FromDollars(1), 3},
		{econ.Money(7), 3},
		{0, 4},
		{econ.FromDollars(0.99), 12},
	}
	for _, c := range cases {
		parts := SplitEvenly(c.total, c.n)
		if len(parts) != c.n {
			t.Fatalf("SplitEvenly(%v,%d): %d parts", c.total, c.n, len(parts))
		}
		var sum econ.Money
		for _, p := range parts {
			if p < 0 {
				t.Fatalf("negative part %v", p)
			}
			sum += p
		}
		if sum != c.total {
			t.Errorf("SplitEvenly(%v,%d) sums to %v", c.total, c.n, sum)
		}
	}
}

func TestSplitEvenlyPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero parts": func() { SplitEvenly(1, 0) },
		"negative":   func() { SplitEvenly(-1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// Scenarios from every generator must be playable by both the mechanism
// and the Regret baseline without errors.
func TestGeneratedScenariosArePlayable(t *testing.T) {
	r := stats.NewRNG(7)
	for i := 0; i < 30; i++ {
		add := Collaboration(r, 6, 12, econ.FromDollars(0.75))
		if _, err := simulate.RunAddOn(add); err != nil {
			t.Fatal(err)
		}
		if _, err := simulate.RunRegretAdditive(add); err != nil {
			t.Fatal(err)
		}
		multi := MultiSlot(r, 6, 12, 4, econ.FromDollars(0.75))
		if _, err := simulate.RunAddOn(multi); err != nil {
			t.Fatal(err)
		}
		sub := Substitutes(r, 6, 12, 3, 12, econ.FromDollars(0.75))
		if _, err := simulate.RunSubstOn(sub); err != nil {
			t.Fatal(err)
		}
		if _, err := simulate.RunRegretSubst(sub); err != nil {
			t.Fatal(err)
		}
	}
}

// The Dist generators with UniformValue must be byte-identical to the
// published generators at the same seed: the plumbing that lets the
// engine-derived figure variants swap distributions may not perturb a
// single draw of the default path (the committed figure hashes depend
// on it).
func TestDistGeneratorsMatchDefaults(t *testing.T) {
	cost := econ.FromDollars(0.75)
	sameAdditive := func(name string, a, b simulate.AdditiveScenario) {
		t.Helper()
		if len(a.Bids) != len(b.Bids) {
			t.Fatalf("%s: %d bids vs %d", name, len(a.Bids), len(b.Bids))
		}
		for i := range a.Bids {
			x, y := a.Bids[i], b.Bids[i]
			if x.User != y.User || x.Start != y.Start || x.End != y.End ||
				len(x.Values) != len(y.Values) {
				t.Fatalf("%s bid %d: %+v vs %+v", name, i, x, y)
			}
			for k := range x.Values {
				if x.Values[k] != y.Values[k] {
					t.Fatalf("%s bid %d value %d: %v vs %v", name, i, k, x.Values[k], y.Values[k])
				}
			}
		}
	}
	sameAdditive("collaboration",
		Collaboration(stats.NewRNG(11), 6, 12, cost),
		CollaborationDist(stats.NewRNG(11), 6, 12, cost, UniformValue))
	sameAdditive("multislot",
		MultiSlot(stats.NewRNG(12), 6, 12, 4, cost),
		MultiSlotDist(stats.NewRNG(12), 6, 12, 4, cost, UniformValue))
	sameAdditive("skewed",
		Skewed(stats.NewRNG(13), 6, 12, cost, stats.ArrivalEarly),
		SkewedDist(stats.NewRNG(13), 6, 12, cost, stats.ArrivalEarly, UniformValue))

	subA := Substitutes(stats.NewRNG(14), 6, 12, 3, 12, cost)
	subB := SubstitutesDist(stats.NewRNG(14), 6, 12, 3, 12, cost, UniformValue)
	if len(subA.Bids) != len(subB.Bids) || len(subA.Opts) != len(subB.Opts) {
		t.Fatalf("substitutes shape: %d/%d bids, %d/%d opts",
			len(subA.Bids), len(subB.Bids), len(subA.Opts), len(subB.Opts))
	}
	for j := range subA.Opts {
		if subA.Opts[j] != subB.Opts[j] {
			t.Fatalf("substitutes opt %d: %+v vs %+v", j, subA.Opts[j], subB.Opts[j])
		}
	}
	for i := range subA.Bids {
		x, y := subA.Bids[i], subB.Bids[i]
		if x.User != y.User || x.Start != y.Start || x.End != y.End ||
			x.Values[0] != y.Values[0] || len(x.Opts) != len(y.Opts) {
			t.Fatalf("substitutes bid %d: %+v vs %+v", i, x, y)
		}
		for k := range x.Opts {
			if x.Opts[k] != y.Opts[k] {
				t.Fatalf("substitutes bid %d opt %d: %v vs %v", i, k, x.Opts[k], y.Opts[k])
			}
		}
	}

	// A custom distribution actually lands in the generated values.
	fixed := func(*stats.RNG) econ.Money { return econ.FromCents(42) }
	sc := CollaborationDist(stats.NewRNG(15), 4, 12, cost, fixed)
	for i, b := range sc.Bids {
		if b.Values[0] != econ.FromCents(42) {
			t.Fatalf("bid %d value %v, want 42 cents", i, b.Values[0])
		}
	}
}

func TestParetoValueMeanNearHalf(t *testing.T) {
	r := stats.NewRNG(16)
	pareto := ParetoValue(1.5)
	var sum econ.Money
	const n = 200_000
	for i := 0; i < n; i++ {
		v := pareto(r)
		if v <= 0 {
			t.Fatalf("draw %d: non-positive value %v", i, v)
		}
		sum += v
	}
	// Tail index 1.5 converges slowly; allow a loose band around $0.50.
	if mean := sum.Dollars() / n; mean < 0.40 || mean > 0.60 {
		t.Fatalf("mean %v, want ~0.50", mean)
	}
}

func TestParetoValueHasHeavyTail(t *testing.T) {
	r := stats.NewRNG(17)
	pareto := ParetoValue(1.5)
	over := 0
	const n = 50_000
	for i := 0; i < n; i++ {
		if pareto(r) > econ.FromDollars(2) {
			over++
		}
	}
	// P(X > $2) = (xm/2)^1.5 ≈ 0.68% at xm = 1/6: far fatter than the
	// uniform draw's zero, and small enough to stay a tail.
	if over == 0 || over > n/20 {
		t.Fatalf("%d of %d draws above $2", over, n)
	}
}

func TestParetoValueOneDrawPerCall(t *testing.T) {
	rA, rB := stats.NewRNG(18), stats.NewRNG(18)
	pareto := ParetoValue(1.5)
	pareto(rA)
	rB.Float64()
	for i := 0; i < 10; i++ {
		if a, b := rA.Uint64(), rB.Uint64(); a != b {
			t.Fatalf("draw %d diverged: ParetoValue consumed extra randomness", i)
		}
	}
}

func TestParetoValuePanicsOnThinTail(t *testing.T) {
	for _, alpha := range []float64{1.0, 0.5, -2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for alpha %v", alpha)
				}
			}()
			ParetoValue(alpha)
		}()
	}
}
