// Package workload generates the scenarios of the paper's evaluation
// section: the astronomy use-case with its measured value table, and the
// randomized synthetic games of Sections 7.3–7.6. Each generator
// consumes an explicit RNG so that experiments are reproducible, and
// returns simulate scenarios that both the mechanisms and the Regret
// baseline can play.
//
// # Map from paper sections to generators
//
//   - Section 7.2, Figure 1 — Astronomy builds the six-astronomer,
//     27-view game from the constants the paper measured on real data
//     (astronomy.go); AstronomyDerived builds the same game from an
//     explicit savings table, which internal/experiments fills with
//     values measured by running the halo-tracking workload on
//     internal/engine (figures 1e and 4e).
//   - Section 7.3.1, Figures 2(a)/2(b) — Collaboration: one additive
//     optimization, each user bids one uniformly chosen slot.
//   - Section 7.3.2, Figures 2(c)/2(d) — Substitutes: nOpts
//     optimizations with uniformly drawn costs, each user picking a
//     random substitute set.
//   - Section 7.4, Figure 3 — Collaboration over a shrinking slot count
//     (3(a)) and MultiSlot, which stretches each bid across d slots and
//     splits its value evenly (3(b)).
//   - Section 7.5, Figure 4 — Skewed: like Collaboration, but the
//     service slot comes from an arrival process (uniform, early, late;
//     see internal/stats).
//   - Section 7.6, Figure 5 — Substitutes at fixed selectivity.
//
// # Value distributions
//
// The paper draws every user value uniformly from [0, $1). Each
// generator has a *Dist twin (CollaborationDist, MultiSlotDist,
// SkewedDist, SubstitutesDist) taking an explicit ValueDist so the
// engine-derived figure variants ("2av" ... "5bv") can substitute the
// empirical distribution of savings measured on the query engine. The
// default generators delegate to their twins with UniformValue and
// consume the RNG identically, so the committed figure hashes are
// unaffected by the plumbing.
package workload
