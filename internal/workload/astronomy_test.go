package workload

import (
	"testing"

	"sharedopt/internal/econ"
	"sharedopt/internal/simulate"
)

func TestAstroUsesSnapshot(t *testing.T) {
	// Full-trace users touch every snapshot.
	for s := 1; s <= AstroSnapshots; s++ {
		if !AstroUsesSnapshot(0, s) || !AstroUsesSnapshot(3, s) {
			t.Errorf("full-trace user should use snapshot %d", s)
		}
	}
	// Every-2nd users touch 27, 25, ..., 1 — 14 snapshots.
	count := 0
	for s := 1; s <= AstroSnapshots; s++ {
		if AstroUsesSnapshot(1, s) {
			count++
			if (AstroSnapshots-s)%2 != 0 {
				t.Errorf("stride-2 user uses snapshot %d", s)
			}
		}
	}
	if count != 14 {
		t.Errorf("stride-2 user touches %d snapshots, want 14", count)
	}
	// Every-4th users touch 27, 23, ..., 3 — 7 snapshots.
	count = 0
	for s := 1; s <= AstroSnapshots; s++ {
		if AstroUsesSnapshot(2, s) {
			count++
		}
	}
	if count != 7 {
		t.Errorf("stride-4 user touches %d snapshots, want 7", count)
	}
	// Out of range.
	if AstroUsesSnapshot(0, 0) || AstroUsesSnapshot(0, 28) {
		t.Error("out-of-range snapshot accepted")
	}
}

func TestAstroSavingCentsMatchPaper(t *testing.T) {
	want := []int64{18, 7, 3, 16, 9, 4}
	for u := 0; u < AstroUsers; u++ {
		if got := AstroSavingCents(u, 27); got != want[u] {
			t.Errorf("user %d snapshot-27 saving = %d cents, want %d", u, got, want[u])
		}
	}
	// Earlier snapshots save one cent when used, zero when skipped.
	if got := AstroSavingCents(1, 25); got != 1 {
		t.Errorf("stride-2 user at snapshot 25 = %d, want 1", got)
	}
	if got := AstroSavingCents(1, 26); got != 0 {
		t.Errorf("stride-2 user at snapshot 26 = %d, want 0", got)
	}
}

func TestAllQuarterSpans(t *testing.T) {
	spans := AllQuarterSpans(AstroQuarters)
	// The paper's 10 options per user: 4+3+2+1 contiguous spans.
	if len(spans) != 10 {
		t.Fatalf("%d spans, want 10", len(spans))
	}
	seen := map[QuarterSpan]bool{}
	for _, sp := range spans {
		if sp.Start < 1 || sp.Start+sp.Len-1 > AstroQuarters || sp.Len < 1 {
			t.Errorf("invalid span %+v", sp)
		}
		if seen[sp] {
			t.Errorf("duplicate span %+v", sp)
		}
		seen[sp] = true
	}
}

func TestAstronomyScenarioShape(t *testing.T) {
	spans := [AstroUsers]QuarterSpan{
		{1, 4}, {1, 2}, {3, 2}, {2, 1}, {1, 1}, {4, 1},
	}
	sc := Astronomy(spans, 40)
	if len(sc.Opts) != AstroSnapshots {
		t.Fatalf("%d optimizations, want 27", len(sc.Opts))
	}
	for _, o := range sc.Opts {
		if o.Cost != AstroViewCost {
			t.Errorf("opt %d cost %v, want %v", o.ID, o.Cost, AstroViewCost)
		}
	}
	if sc.Horizon != AstroQuarters {
		t.Errorf("horizon %d, want 4", sc.Horizon)
	}
	// Bid counts per user: one per touched snapshot:
	// 27, 14, 7, 27, 14, 7 = 96 bids.
	if len(sc.Bids) != 96 {
		t.Errorf("%d bids, want 96", len(sc.Bids))
	}
	// User 1 (index 0), snapshot 27, spans all 4 quarters: total value
	// 18 cents × 40 executions = $7.20 split across 4 quarters.
	var found bool
	for _, b := range sc.Bids {
		if b.User == 1 && b.Opt == 27 {
			found = true
			if b.Start != 1 || b.End != 4 || len(b.Values) != 4 {
				t.Errorf("user 1 snapshot-27 bid: %+v", b)
			}
			var total econ.Money
			for _, v := range b.Values {
				total += v
			}
			if total != econ.FromDollars(7.20) {
				t.Errorf("user 1 snapshot-27 total = %v, want $7.20", total)
			}
		}
	}
	if !found {
		t.Error("user 1 snapshot-27 bid missing")
	}
}

func TestAstronomyScenarioPlayable(t *testing.T) {
	spans := [AstroUsers]QuarterSpan{
		{1, 1}, {2, 2}, {1, 4}, {3, 1}, {2, 3}, {4, 1},
	}
	sc := Astronomy(spans, 90)
	mech, err := simulate.RunAddOn(sc)
	if err != nil {
		t.Fatal(err)
	}
	if mech.Balance() < 0 {
		t.Errorf("mechanism lost money: %v", mech.Balance())
	}
	reg, err := simulate.RunRegretAdditive(sc)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Balance() > econ.Money(len(sc.Bids)) {
		t.Errorf("regret profited: %v", reg.Balance())
	}
	// At 90 executions the snapshot-27 view is easily worth its $2.31
	// to the heavy users: the mechanism must implement at least it.
	if mech.Cost == 0 {
		t.Error("mechanism implemented nothing at 90 executions")
	}
}

func TestAstronomyZeroExecutions(t *testing.T) {
	spans := [AstroUsers]QuarterSpan{{1, 1}, {1, 1}, {1, 1}, {1, 1}, {1, 1}, {1, 1}}
	sc := Astronomy(spans, 0)
	res, err := simulate.RunAddOn(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 0 || res.TotalValue != 0 {
		t.Errorf("zero executions should implement nothing: %+v", res)
	}
}

func TestAstronomyPanicsOnBadSpan(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range span")
		}
	}()
	spans := [AstroUsers]QuarterSpan{{4, 2}, {1, 1}, {1, 1}, {1, 1}, {1, 1}, {1, 1}}
	Astronomy(spans, 1)
}

func TestAstronomyDerivedMatchesConstantTableWhenFed(t *testing.T) {
	// Feeding AstronomyDerived the paper's own constants must produce
	// exactly the same scenario as Astronomy.
	table := make([][]int64, AstroUsers)
	for u := range table {
		table[u] = make([]int64, AstroSnapshots)
		for s := 1; s <= AstroSnapshots; s++ {
			table[u][s-1] = AstroSavingCents(u, s)
		}
	}
	spans := [AstroUsers]QuarterSpan{
		{1, 4}, {1, 2}, {3, 2}, {2, 1}, {1, 1}, {4, 1},
	}
	a := Astronomy(spans, 40)
	b := AstronomyDerived(table, spans, 40, AstroViewCost)
	if len(a.Bids) != len(b.Bids) || len(a.Opts) != len(b.Opts) {
		t.Fatalf("shape differs: %d/%d bids, %d/%d opts",
			len(a.Bids), len(b.Bids), len(a.Opts), len(b.Opts))
	}
	total := func(sc simulate.AdditiveScenario) econ.Money {
		var t econ.Money
		for _, bid := range sc.Bids {
			for _, v := range bid.Values {
				t += v
			}
		}
		return t
	}
	if total(a) != total(b) {
		t.Errorf("total declared value differs: %v vs %v", total(a), total(b))
	}
}

func TestAstronomyDerivedPanics(t *testing.T) {
	spans := [AstroUsers]QuarterSpan{{1, 1}, {1, 1}, {1, 1}, {1, 1}, {1, 1}, {1, 1}}
	for name, f := range map[string]func(){
		"wrong user count": func() {
			AstronomyDerived([][]int64{{1}}, spans, 1, AstroViewCost)
		},
		"ragged table": func() {
			table := [][]int64{{1, 1}, {1, 1}, {1, 1}, {1, 1}, {1, 1}, {1}}
			AstronomyDerived(table, spans, 1, AstroViewCost)
		},
		"negative executions": func() {
			table := [][]int64{{1}, {1}, {1}, {1}, {1}, {1}}
			AstronomyDerived(table, spans, -1, AstroViewCost)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestAstroBaselineCost(t *testing.T) {
	pb := econ.DefaultPriceBook()
	one := AstroBaselineCost(pb, 1)
	// 277 total minutes at ≈ $0.0041/min ≈ $1.14.
	if one < econ.FromDollars(1.0) || one > econ.FromDollars(1.3) {
		t.Errorf("baseline for 1 execution = %v, want ≈ $1.14", one)
	}
	if AstroBaselineCost(pb, 90) != one.MulInt(90) {
		t.Error("baseline not linear in executions")
	}
	if AstroBaselineCost(pb, 0) != 0 {
		t.Error("baseline for 0 executions should be $0")
	}
}
