package workload

import (
	"fmt"
	"math"

	"sharedopt/internal/core"
	"sharedopt/internal/econ"
	"sharedopt/internal/simulate"
	"sharedopt/internal/stats"
)

// DefaultSlots is the number of time slots the paper's simulations use
// ("The number 12 was chosen since 2, 3, 4, and 6 divide it perfectly").
const DefaultSlots = 12

// theOpt is the single additive optimization's ID in generated scenarios.
const theOpt core.OptID = 1

// ValueDist draws one user's private value for an optimization. The
// paper's simulations draw UniformValue; the engine-derived experiment
// variants substitute the empirical distribution of savings measured on
// the query engine (see internal/experiments). Every generator consumes
// exactly one draw per user, in the same RNG position as the uniform
// default, so swapping distributions never perturbs the other draws.
type ValueDist func(r *stats.RNG) econ.Money

// UniformValue draws a user value uniformly from [0, $1), the paper's
// per-user value distribution (average user value 0.5).
func UniformValue(r *stats.RNG) econ.Money {
	return econ.Money(r.Int63n(int64(econ.Dollar)))
}

// ParetoValue returns a heavy-tailed value distribution: a Pareto draw
// with the given tail index alpha, scaled so the distribution mean is the
// uniform draw's $0.50 — the sweeps calibrated against a $0.50 mean stay
// on scale while the shape moves far from uniform (most users value the
// optimization a little, a few value it enormously). Smaller alpha means
// a heavier tail; alpha must exceed 1 for the mean to exist, and the
// variance is infinite for alpha <= 2. Each draw consumes exactly one
// uniform variate. Draws round to the nearest micro-dollar and are always
// at least the Pareto scale parameter xm = 0.5·(alpha-1)/alpha dollars.
func ParetoValue(alpha float64) ValueDist {
	if alpha <= 1 {
		panic(fmt.Sprintf("workload: Pareto tail index %v <= 1 has no mean", alpha))
	}
	xm := 0.5 * (alpha - 1) / alpha // mean = alpha·xm/(alpha-1) = 0.5
	return func(r *stats.RNG) econ.Money {
		// Inversion: xm·U^(-1/alpha) with U in (0, 1].
		u := 1 - r.Float64()
		return econ.FromDollars(xm * math.Pow(u, -1/alpha))
	}
}

// Collaboration generates the additive collaboration-size scenario of
// Section 7.3.1 (Figures 2(a) and 2(b)) generalized over the slot count
// for Section 7.4 (Figure 3(a)): nUsers users, one optimization of the
// given cost, each user picking a single service slot uniformly at random
// from [1, slots] with a value drawn uniformly from [0, $1).
func Collaboration(r *stats.RNG, nUsers, slots int, cost econ.Money) simulate.AdditiveScenario {
	return CollaborationDist(r, nUsers, slots, cost, UniformValue)
}

// CollaborationDist is Collaboration with an explicit value distribution.
func CollaborationDist(r *stats.RNG, nUsers, slots int, cost econ.Money, value ValueDist) simulate.AdditiveScenario {
	sc := simulate.AdditiveScenario{
		Opts:    []core.Optimization{{ID: theOpt, Cost: cost}},
		Horizon: core.Slot(slots),
	}
	for u := 1; u <= nUsers; u++ {
		slot := core.Slot(1 + r.Intn(slots))
		sc.Bids = append(sc.Bids, simulate.AdditiveBid{
			User: core.UserID(u), Opt: theOpt,
			Start: slot, End: slot,
			Values: []econ.Money{value(r)},
		})
	}
	return sc
}

// MultiSlot generates the usage-overlap scenario of Section 7.4
// (Figure 3(b)): each user draws a start slot uniformly from [1, slots]
// and bids for the interval [si, si+duration-1], splitting a value drawn
// uniformly from [0, $1) equally across the interval's slots. The horizon
// extends to slots+duration-1 so late starters fit their full interval.
func MultiSlot(r *stats.RNG, nUsers, slots, duration int, cost econ.Money) simulate.AdditiveScenario {
	return MultiSlotDist(r, nUsers, slots, duration, cost, UniformValue)
}

// MultiSlotDist is MultiSlot with an explicit value distribution.
func MultiSlotDist(r *stats.RNG, nUsers, slots, duration int, cost econ.Money, value ValueDist) simulate.AdditiveScenario {
	if duration < 1 {
		panic(fmt.Sprintf("workload: duration %d < 1", duration))
	}
	sc := simulate.AdditiveScenario{
		Opts:    []core.Optimization{{ID: theOpt, Cost: cost}},
		Horizon: core.Slot(slots + duration - 1),
	}
	for u := 1; u <= nUsers; u++ {
		start := core.Slot(1 + r.Intn(slots))
		sc.Bids = append(sc.Bids, simulate.AdditiveBid{
			User: core.UserID(u), Opt: theOpt,
			Start: start, End: start + core.Slot(duration-1),
			Values: SplitEvenly(value(r), duration),
		})
	}
	return sc
}

// Skewed generates the arrival-skew scenario of Section 7.5 (Figure 4):
// like Collaboration, but the single service slot is drawn from the given
// arrival process (uniform, early-exponential, or late).
func Skewed(r *stats.RNG, nUsers, slots int, cost econ.Money, arrival stats.ArrivalProcess) simulate.AdditiveScenario {
	return SkewedDist(r, nUsers, slots, cost, arrival, UniformValue)
}

// SkewedDist is Skewed with an explicit value distribution.
func SkewedDist(r *stats.RNG, nUsers, slots int, cost econ.Money, arrival stats.ArrivalProcess, value ValueDist) simulate.AdditiveScenario {
	sc := simulate.AdditiveScenario{
		Opts:    []core.Optimization{{ID: theOpt, Cost: cost}},
		Horizon: core.Slot(slots),
	}
	for u := 1; u <= nUsers; u++ {
		slot := core.Slot(arrival.Arrival(r, slots))
		sc.Bids = append(sc.Bids, simulate.AdditiveBid{
			User: core.UserID(u), Opt: theOpt,
			Start: slot, End: slot,
			Values: []econ.Money{value(r)},
		})
	}
	return sc
}

// Substitutes generates the substitutive scenarios of Sections 7.3.2 and
// 7.6 (Figures 2(c), 2(d), 5(a), 5(b)): nOpts optimizations whose costs
// are drawn uniformly from [0, 2×meanCost] (so meanCost is the average),
// and nUsers users who each pick subsPerUser substitutes uniformly at
// random, bid a value uniform in [0, $1), and occupy one uniform slot.
func Substitutes(r *stats.RNG, nUsers, nOpts, subsPerUser, slots int, meanCost econ.Money) simulate.SubstScenario {
	return SubstitutesDist(r, nUsers, nOpts, subsPerUser, slots, meanCost, UniformValue)
}

// SubstitutesDist is Substitutes with an explicit value distribution.
func SubstitutesDist(r *stats.RNG, nUsers, nOpts, subsPerUser, slots int, meanCost econ.Money, value ValueDist) simulate.SubstScenario {
	if subsPerUser > nOpts {
		panic(fmt.Sprintf("workload: %d substitutes from %d optimizations", subsPerUser, nOpts))
	}
	sc := simulate.SubstScenario{Horizon: core.Slot(slots)}
	for j := 1; j <= nOpts; j++ {
		// Uniform on [0, 2·mean]; clamp to at least one micro-dollar
		// since zero-cost optimizations are degenerate.
		c := econ.Money(r.Int63n(2*int64(meanCost) + 1))
		if c < 1 {
			c = 1
		}
		sc.Opts = append(sc.Opts, core.Optimization{ID: core.OptID(j), Cost: c})
	}
	for u := 1; u <= nUsers; u++ {
		slot := core.Slot(1 + r.Intn(slots))
		subs := make([]core.OptID, 0, subsPerUser)
		for _, idx := range r.SampleK(nOpts, subsPerUser) {
			subs = append(subs, sc.Opts[idx].ID)
		}
		sc.Bids = append(sc.Bids, core.OnlineSubstBid{
			User: core.UserID(u), Opts: subs,
			Start: slot, End: slot,
			Values: []econ.Money{value(r)},
		})
	}
	return sc
}

// SplitEvenly divides total into n non-negative per-slot amounts that sum
// exactly to total, front-loading the remainder one micro-dollar at a
// time. It panics if n < 1 or total < 0.
func SplitEvenly(total econ.Money, n int) []econ.Money {
	if n < 1 {
		panic(fmt.Sprintf("workload: split into %d parts", n))
	}
	if total < 0 {
		panic(fmt.Sprintf("workload: split negative amount %v", total))
	}
	per := total / econ.Money(n)
	rem := total % econ.Money(n)
	out := make([]econ.Money, n)
	for i := range out {
		out[i] = per
		if econ.Money(i) < rem {
			out[i]++
		}
	}
	return out
}
