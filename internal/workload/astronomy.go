package workload

import (
	"fmt"
	"time"

	"sharedopt/internal/core"
	"sharedopt/internal/econ"
	"sharedopt/internal/simulate"
)

// The astronomy use-case of paper Sections 2 and 7.2: six astronomers
// trace halo evolution across 27 simulation snapshots. The optimizations
// are 27 materialized views — one (particleID, haloID) view per snapshot.
// The constants below are the values the paper reports from measuring the
// real workload; internal/astro regenerates their ratios from a synthetic
// universe as a cross-check.

// AstroSnapshots is the number of simulation snapshots (and views).
const AstroSnapshots = 27

// AstroQuarters is the number of billing slots in the year-long game.
const AstroQuarters = 4

// AstroUsers is the number of astronomers.
const AstroUsers = 6

// astroStride[u] is the snapshot stride of user u: users 0 and 3 trace
// every snapshot, users 1 and 4 every 2nd, users 2 and 5 every 4th
// (faster exploratory studies of halo sets γ1 and γ2).
var astroStride = [AstroUsers]int{1, 2, 4, 1, 2, 4}

// AstroBaselineMinutes is each user's workload runtime, in minutes,
// without any optimization (paper: 81, 36, 16, 83, 44, 17).
var AstroBaselineMinutes = [AstroUsers]int{81, 36, 16, 83, 44, 17}

// astroFinalSavingCents is each user's per-execution saving, in cents,
// from the snapshot-27 view (paper: 18, 7, 3, 16, 9, 4 cents,
// corresponding to 44, 18, 8, 39, 23, 9 saved minutes).
var astroFinalSavingCents = [AstroUsers]int64{18, 7, 3, 16, 9, 4}

// AstroFinalSavingMinutes is each user's per-execution runtime saving
// from the snapshot-27 view.
var AstroFinalSavingMinutes = [AstroUsers]int{44, 18, 8, 39, 23, 9}

// astroOtherSavingCents is the per-execution saving from any other view a
// user's workload touches (paper: 2.5 minutes ≈ 1 cent).
const astroOtherSavingCents int64 = 1

// AstroViewCost is the yearly storage cost of one materialized view
// (paper: $2.31 on average for an Amazon EC2 High-Memory XL subscription).
var AstroViewCost = econ.FromDollars(2.31)

// AstroUsesSnapshot reports whether user u's workload queries the given
// snapshot (1-based). A user with stride k traces snapshots 27, 27-k,
// 27-2k, ...
func AstroUsesSnapshot(u, snapshot int) bool {
	if snapshot < 1 || snapshot > AstroSnapshots {
		return false
	}
	return (AstroSnapshots-snapshot)%astroStride[u] == 0
}

// AstroSavingCents returns user u's per-execution saving, in cents, from
// the view on the given snapshot: the large final-snapshot saving, one
// cent for other snapshots the workload touches, zero otherwise.
func AstroSavingCents(u, snapshot int) int64 {
	if !AstroUsesSnapshot(u, snapshot) {
		return 0
	}
	if snapshot == AstroSnapshots {
		return astroFinalSavingCents[u]
	}
	return astroOtherSavingCents
}

// QuarterSpan is a contiguous span of quarters a user subscribes for.
type QuarterSpan struct {
	Start int // 1-based first quarter
	Len   int // number of quarters, ≥ 1
}

// AllQuarterSpans enumerates every contiguous span of [1, quarters] —
// the 10 ways (for 4 quarters) each astronomer can subscribe, whose full
// cross product is the paper's 10^6 alternatives.
func AllQuarterSpans(quarters int) []QuarterSpan {
	var spans []QuarterSpan
	for start := 1; start <= quarters; start++ {
		for l := 1; start+l-1 <= quarters; l++ {
			spans = append(spans, QuarterSpan{Start: start, Len: l})
		}
	}
	return spans
}

// Astronomy builds the Figure 1 scenario for one assignment of quarter
// spans: every user bids, for every view her workload touches, her total
// yearly saving (per-execution cents × executions) split evenly across
// her subscribed quarters.
func Astronomy(spans [AstroUsers]QuarterSpan, executions int) simulate.AdditiveScenario {
	if executions < 0 {
		panic(fmt.Sprintf("workload: negative execution count %d", executions))
	}
	sc := simulate.AdditiveScenario{Horizon: AstroQuarters}
	for s := 1; s <= AstroSnapshots; s++ {
		sc.Opts = append(sc.Opts, core.Optimization{ID: core.OptID(s), Cost: AstroViewCost})
	}
	for u := 0; u < AstroUsers; u++ {
		span := spans[u]
		if span.Start < 1 || span.Len < 1 || span.Start+span.Len-1 > AstroQuarters {
			panic(fmt.Sprintf("workload: user %d has invalid span %+v", u, span))
		}
		for s := 1; s <= AstroSnapshots; s++ {
			cents := AstroSavingCents(u, s)
			if cents == 0 {
				continue
			}
			total := econ.FromCents(cents * int64(executions))
			sc.Bids = append(sc.Bids, simulate.AdditiveBid{
				User: core.UserID(u + 1), Opt: core.OptID(s),
				Start:  core.Slot(span.Start),
				End:    core.Slot(span.Start + span.Len - 1),
				Values: SplitEvenly(total, span.Len),
			})
		}
	}
	return sc
}

// AstronomyDerived builds a Figure 1 scenario from an explicit savings
// table instead of the paper's published constants: savingsCents[u][s] is
// user u's per-execution saving, in cents, from the view on 1-based
// snapshot s+1 — typically produced by astro.MeasureSavings +
// DeriveSavingsCents, closing the loop between the engine substrate and
// the pricing experiment. The snapshot count is the table's width, and
// each view costs viewCost.
func AstronomyDerived(savingsCents [][]int64, spans [AstroUsers]QuarterSpan,
	executions int, viewCost econ.Money) simulate.AdditiveScenario {
	if len(savingsCents) != AstroUsers {
		panic(fmt.Sprintf("workload: savings table for %d users, want %d",
			len(savingsCents), AstroUsers))
	}
	if executions < 0 {
		panic(fmt.Sprintf("workload: negative execution count %d", executions))
	}
	snapshots := len(savingsCents[0])
	if snapshots < 1 {
		panic("workload: empty savings table")
	}
	sc := simulate.AdditiveScenario{Horizon: AstroQuarters}
	for s := 1; s <= snapshots; s++ {
		sc.Opts = append(sc.Opts, core.Optimization{ID: core.OptID(s), Cost: viewCost})
	}
	for u := 0; u < AstroUsers; u++ {
		span := spans[u]
		if span.Start < 1 || span.Len < 1 || span.Start+span.Len-1 > AstroQuarters {
			panic(fmt.Sprintf("workload: user %d has invalid span %+v", u, span))
		}
		if len(savingsCents[u]) != snapshots {
			panic(fmt.Sprintf("workload: ragged savings table at user %d", u))
		}
		for s := 1; s <= snapshots; s++ {
			cents := savingsCents[u][s-1]
			if cents <= 0 {
				continue
			}
			total := econ.FromCents(cents * int64(executions))
			sc.Bids = append(sc.Bids, simulate.AdditiveBid{
				User: core.UserID(u + 1), Opt: core.OptID(s),
				Start:  core.Slot(span.Start),
				End:    core.Slot(span.Start + span.Len - 1),
				Values: SplitEvenly(total, span.Len),
			})
		}
	}
	return sc
}

// AstroBaselineCost returns the operating expense of executing every
// user's workload the given number of times with no optimizations, at the
// price book's compute rate — the "Baseline Cost" curve of Figure 1.
func AstroBaselineCost(pb econ.PriceBook, executions int) econ.Money {
	var total econ.Money
	for u := 0; u < AstroUsers; u++ {
		perExec := pb.ComputeCost(time.Duration(AstroBaselineMinutes[u]) * time.Minute)
		total += perExec.MulInt(int64(executions))
	}
	return total
}
