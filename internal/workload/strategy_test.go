package workload

import (
	"testing"

	"sharedopt/internal/econ"
	"sharedopt/internal/simulate"
	"sharedopt/internal/stats"
)

func TestHideToLastSlotPreservesTotals(t *testing.T) {
	r := stats.NewRNG(91)
	truth := MultiSlot(r, 6, 12, 4, econ.FromDollars(0.8))
	hidden := HideToLastSlot(truth)
	if hidden.Horizon != truth.Horizon || len(hidden.Bids) != len(truth.Bids) {
		t.Fatalf("shape changed: %d bids over %d slots", len(hidden.Bids), hidden.Horizon)
	}
	for i, hb := range hidden.Bids {
		tb := truth.Bids[i]
		if hb.User != tb.User || hb.Opt != tb.Opt {
			t.Fatalf("bid %d identity changed", i)
		}
		if hb.Start != tb.End || hb.End != tb.End || len(hb.Values) != 1 {
			t.Errorf("bid %d not collapsed to the last slot: %+v", i, hb)
		}
		var total econ.Money
		for _, v := range tb.Values {
			total += v
		}
		if hb.Values[0] != total {
			t.Errorf("bid %d total %v, want %v", i, hb.Values[0], total)
		}
	}
}

// The hiding profile is playable by the strategic drivers and never earns
// more under AddOn than truthful play (in aggregate).
func TestHideToLastSlotPlayable(t *testing.T) {
	r := stats.NewRNG(92)
	for i := 0; i < 20; i++ {
		truth := MultiSlot(r, 6, 12, 4, econ.FromDollars(0.6))
		hidden := HideToLastSlot(truth)
		truthRes, err := simulate.RunAddOn(truth)
		if err != nil {
			t.Fatal(err)
		}
		hideRes, err := simulate.RunAddOnStrategic(hidden, truth)
		if err != nil {
			t.Fatal(err)
		}
		// Collective hiding can reshuffle who is serviced, but the
		// mechanism still never loses money.
		if hideRes.Balance() < 0 {
			t.Fatalf("trial %d: AddOn lost money under hiding: %v", i, hideRes.Balance())
		}
		_ = truthRes
	}
}

func TestSplitAcrossSlotsFlattensWithinInterval(t *testing.T) {
	r := stats.NewRNG(93)
	truth := Skewed(r, 6, 12, econ.FromDollars(0.8), stats.ArrivalUniform)
	// Give the bids uneven multi-slot profiles so flattening is visible.
	for i := range truth.Bids {
		b := &truth.Bids[i]
		b.End = b.Start + 3
		b.Values = []econ.Money{b.Values[0], 0, econ.FromCents(30), econ.FromCents(1)}
	}
	truth.Horizon = 16
	split := SplitAcrossSlots(truth)
	if split.Horizon != truth.Horizon || len(split.Bids) != len(truth.Bids) {
		t.Fatalf("shape changed: %d bids over %d slots", len(split.Bids), split.Horizon)
	}
	for i, sb := range split.Bids {
		tb := truth.Bids[i]
		if sb.User != tb.User || sb.Opt != tb.Opt || sb.Start != tb.Start || sb.End != tb.End {
			t.Fatalf("bid %d identity or interval changed: %+v vs %+v", i, sb, tb)
		}
		var total, splitTotal econ.Money
		for _, v := range tb.Values {
			total += v
		}
		for _, v := range sb.Values {
			splitTotal += v
		}
		if splitTotal != total {
			t.Errorf("bid %d total %v, want %v", i, splitTotal, total)
		}
		// Evenly split: values differ by at most one micro-dollar.
		for _, v := range sb.Values {
			if d := v - sb.Values[0]; d < -econ.Micro || d > econ.Micro {
				t.Errorf("bid %d not flat: %v", i, sb.Values)
			}
		}
	}
}

func TestShadeValueScales(t *testing.T) {
	r := stats.NewRNG(94)
	truth := MultiSlot(r, 6, 12, 4, econ.FromDollars(0.8))
	shaded := ShadeValue(0.5)(truth)
	for i, sb := range shaded.Bids {
		tb := truth.Bids[i]
		if sb.User != tb.User || sb.Start != tb.Start || sb.End != tb.End {
			t.Fatalf("bid %d identity or interval changed", i)
		}
		for k, v := range sb.Values {
			want := econ.FromDollars(tb.Values[k].Dollars() * 0.5)
			if v != want {
				t.Errorf("bid %d value %d: %v, want %v", i, k, v, want)
			}
		}
	}
}

func TestShadeValueIdentityAtOne(t *testing.T) {
	r := stats.NewRNG(95)
	truth := MultiSlot(r, 6, 12, 4, econ.FromDollars(0.8))
	same := ShadeValue(1)(truth)
	for i, sb := range same.Bids {
		tb := truth.Bids[i]
		for k := range sb.Values {
			if sb.Values[k] != tb.Values[k] {
				t.Fatalf("bid %d value %d changed under factor 1: %v vs %v",
					i, k, sb.Values[k], tb.Values[k])
			}
		}
	}
}

func TestShadeValuePanicsOnNegativeFactor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative shading factor")
		}
	}()
	ShadeValue(-0.1)
}

func TestOverstayToHorizonPadsZeros(t *testing.T) {
	r := stats.NewRNG(96)
	truth := MultiSlot(r, 6, 12, 4, econ.FromDollars(0.8))
	over := OverstayToHorizon(truth)
	for i, ob := range over.Bids {
		tb := truth.Bids[i]
		if ob.User != tb.User || ob.Start != tb.Start {
			t.Fatalf("bid %d identity or start changed", i)
		}
		if ob.End != truth.Horizon {
			t.Fatalf("bid %d end %d, want horizon %d", i, ob.End, truth.Horizon)
		}
		for k, v := range tb.Values {
			if ob.Values[k] != v {
				t.Errorf("bid %d true value %d changed: %v vs %v", i, k, ob.Values[k], v)
			}
		}
		for k := len(tb.Values); k < len(ob.Values); k++ {
			if ob.Values[k] != 0 {
				t.Errorf("bid %d padded slot %d not zero: %v", i, k, ob.Values[k])
			}
		}
	}
}

// Strategy generators are pure functions of the truth scenario: applying
// one consumes no randomness, so a trial that pairs declared and truth
// scenarios draws exactly the same stream as one that never deviates.
// The committed hypothesis report hashes depend on this pinning.
func TestStrategiesConsumeNoRandomness(t *testing.T) {
	strategies := map[string]func(simulate.AdditiveScenario) simulate.AdditiveScenario{
		"hide":     HideToLastSlot,
		"split":    SplitAcrossSlots,
		"shade":    ShadeValue(0.5),
		"overstay": OverstayToHorizon,
	}
	for name, apply := range strategies {
		rA := stats.NewRNG(97)
		rB := stats.NewRNG(97)
		truthA := MultiSlot(rA, 6, 12, 4, econ.FromDollars(0.8))
		truthB := MultiSlot(rB, 6, 12, 4, econ.FromDollars(0.8))
		_ = apply(truthA)
		_ = truthB
		for i := 0; i < 100; i++ {
			if a, b := rA.Uint64(), rB.Uint64(); a != b {
				t.Fatalf("%s: stream diverged at draw %d: %x vs %x", name, i, a, b)
			}
		}
	}
}

// Every strategy profile stays playable and AddOn keeps its balance.
func TestStrategyProfilesPlayable(t *testing.T) {
	strategies := []func(simulate.AdditiveScenario) simulate.AdditiveScenario{
		HideToLastSlot, SplitAcrossSlots, ShadeValue(0.5), OverstayToHorizon,
	}
	r := stats.NewRNG(98)
	for i := 0; i < 20; i++ {
		truth := MultiSlot(r, 6, 12, 4, econ.FromDollars(0.6))
		for j, apply := range strategies {
			res, err := simulate.RunAddOnStrategic(apply(truth), truth)
			if err != nil {
				t.Fatal(err)
			}
			if res.Balance() < 0 {
				t.Fatalf("trial %d strategy %d: AddOn lost money: %v", i, j, res.Balance())
			}
		}
	}
}
