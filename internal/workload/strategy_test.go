package workload

import (
	"testing"

	"sharedopt/internal/econ"
	"sharedopt/internal/simulate"
	"sharedopt/internal/stats"
)

func TestHideToLastSlotPreservesTotals(t *testing.T) {
	r := stats.NewRNG(91)
	truth := MultiSlot(r, 6, 12, 4, econ.FromDollars(0.8))
	hidden := HideToLastSlot(truth)
	if hidden.Horizon != truth.Horizon || len(hidden.Bids) != len(truth.Bids) {
		t.Fatalf("shape changed: %d bids over %d slots", len(hidden.Bids), hidden.Horizon)
	}
	for i, hb := range hidden.Bids {
		tb := truth.Bids[i]
		if hb.User != tb.User || hb.Opt != tb.Opt {
			t.Fatalf("bid %d identity changed", i)
		}
		if hb.Start != tb.End || hb.End != tb.End || len(hb.Values) != 1 {
			t.Errorf("bid %d not collapsed to the last slot: %+v", i, hb)
		}
		var total econ.Money
		for _, v := range tb.Values {
			total += v
		}
		if hb.Values[0] != total {
			t.Errorf("bid %d total %v, want %v", i, hb.Values[0], total)
		}
	}
}

// The hiding profile is playable by the strategic drivers and never earns
// more under AddOn than truthful play (in aggregate).
func TestHideToLastSlotPlayable(t *testing.T) {
	r := stats.NewRNG(92)
	for i := 0; i < 20; i++ {
		truth := MultiSlot(r, 6, 12, 4, econ.FromDollars(0.6))
		hidden := HideToLastSlot(truth)
		truthRes, err := simulate.RunAddOn(truth)
		if err != nil {
			t.Fatal(err)
		}
		hideRes, err := simulate.RunAddOnStrategic(hidden, truth)
		if err != nil {
			t.Fatal(err)
		}
		// Collective hiding can reshuffle who is serviced, but the
		// mechanism still never loses money.
		if hideRes.Balance() < 0 {
			t.Fatalf("trial %d: AddOn lost money under hiding: %v", i, hideRes.Balance())
		}
		_ = truthRes
	}
}
