package benchkit

import (
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sharedopt"
	"sharedopt/internal/core"
	"sharedopt/internal/econ"
	"sharedopt/internal/obs"
	"sharedopt/internal/resilience"
	"sharedopt/internal/resilience/transport"
	"sharedopt/internal/stats"
)

// serviceBids draws the fixed workload both ServiceGame variants price:
// one bid per user over a 12-slot horizon against a 4-optimization
// catalog, identical across runs so the journaled/unjournaled pair
// measures journaling, not workload noise.
type serviceBid struct {
	user   core.UserID
	opt    core.OptID
	start  core.Slot
	end    core.Slot
	values []econ.Money
}

func serviceBids(users int, horizon core.Slot) ([]sharedopt.Optimization, []serviceBid) {
	r := stats.NewRNG(11)
	catalog := []sharedopt.Optimization{
		{ID: 1, Cost: econ.FromDollars(8)},
		{ID: 2, Cost: econ.FromDollars(5)},
		{ID: 3, Cost: econ.FromDollars(12)},
		{ID: 4, Cost: econ.FromDollars(3)},
	}
	bids := make([]serviceBid, users)
	for i := range bids {
		start := core.Slot(1 + r.Intn(int(horizon)))
		end := start + core.Slot(r.Intn(int(horizon-start)+1))
		values := make([]econ.Money, int(end-start+1))
		for k := range values {
			values[k] = econ.FromCents(int64(r.Intn(600)))
		}
		bids[i] = serviceBid{
			user: core.UserID(i + 1), opt: catalog[r.Intn(len(catalog))].ID,
			start: start, end: end, values: values,
		}
	}
	return catalog, bids
}

// ServiceGame returns the benchmark body for one complete 12-slot,
// 48-user additive pricing period through the service layer. journaled
// selects the durable tier (every mutation checksummed and framed into
// an in-memory log) versus the plain in-memory service; the pair gate
// bounds how much the journal may cost.
func ServiceGame(journaled bool) func(b *testing.B) {
	return func(b *testing.B) {
		const users, horizon = 48, core.Slot(12)
		catalog, bids := serviceBids(users, horizon)
		submitAll := func(submit func(core.OptID, core.OnlineBid) error) {
			for _, bid := range bids {
				if err := submit(bid.opt, core.OnlineBid{
					User: bid.user, Start: bid.start, End: bid.end, Values: bid.values,
				}); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if journaled {
				var m resilience.MemLog
				js, err := resilience.NewJournaledService(sharedopt.Additive, catalog, horizon, &m)
				if err != nil {
					b.Fatal(err)
				}
				submitAll(js.SubmitAdditiveBid)
				for t := core.Slot(0); t < horizon; t++ {
					if _, err := js.AdvanceSlot(); err != nil {
						b.Fatal(err)
					}
				}
			} else {
				svc, err := sharedopt.NewAdditiveService(catalog, horizon)
				if err != nil {
					b.Fatal(err)
				}
				submitAll(svc.SubmitAdditiveBid)
				for t := core.Slot(0); t < horizon; t++ {
					if _, err := svc.AdvanceSlot(); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	}
}

// IngestThroughput returns the benchmark body for concurrent bid intake:
// GOMAXPROCS submitters push 256 single-slot bids through the bounded
// queue into a journaled service, blind-retrying on ErrOverloaded, so
// the measurement covers admission control, the serialize-and-journal
// path, and the retry contract end to end.
func IngestThroughput() func(b *testing.B) {
	return func(b *testing.B) {
		const total, horizon = 256, core.Slot(4)
		catalog := []sharedopt.Optimization{{ID: 1, Cost: econ.FromDollars(50)}}
		workers := runtime.GOMAXPROCS(0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var m resilience.MemLog
			js, err := resilience.NewJournaledService(sharedopt.Additive, catalog, horizon, &m)
			if err != nil {
				b.Fatal(err)
			}
			in := resilience.NewIngest(js, resilience.IngestConfig{Queue: 32})
			var next core.UserID
			var mu sync.Mutex
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						mu.Lock()
						next++
						u := next
						mu.Unlock()
						if u > total {
							return
						}
						err := in.SubmitAdditive(1, core.OnlineBid{
							User: u, Start: 1, End: 1, Values: []econ.Money{econ.Dollar},
						})
						for resilience.Retryable(err) {
							err = in.SubmitAdditive(1, core.OnlineBid{
								User: u, Start: 1, End: 1, Values: []econ.Money{econ.Dollar},
							})
						}
						if err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			in.Close()
			if st := in.Stats(); st.Accepted != total {
				b.Fatalf("accepted %d of %d bids", st.Accepted, total)
			}
		}
	}
}

// ShardedIngestThroughput returns the benchmark body for the sharded
// durable tier under sustained concurrent intake: GOMAXPROCS submitters
// drive 4 waves of 256 single-slot bids each into a ShardedService with
// the given shard count (each shard journaling to its own MemLog), with
// a timed AdvanceSlot settling every wave. Besides ns/op it reports the
// sustained intake rate ("bids/s") and the p99 slot-advance latency
// ("p99-adv-ns") — the two service-level numbers the sharded tier
// exists to improve, tracked via Result.Extra in the BENCH_*.json
// trajectory. The shards=1 body is the single-journal baseline the
// sharded4 pair gate holds the 4-shard body against: identical workload
// and settlement, only the intake journal count differs.
func ShardedIngestThroughput(shards int) func(b *testing.B) {
	return shardedIngestBody(shards, false)
}

// ShardedIngestInstrumented is ShardedIngestThroughput with a live
// obs.Registry attached to the tier — every counter, high-water mark and
// latency histogram maintained on the hot path. The obs-vs-bare pair
// gate bounds what that instrumentation may cost.
func ShardedIngestInstrumented(shards int) func(b *testing.B) {
	return shardedIngestBody(shards, true)
}

// ingestWaveCount and ingestWavePerWave fix the sharded-ingest workload
// shape shared by every ShardedIngest* body: 4 waves of 256 single-slot
// bids, one timed AdvanceSlot per wave.
const (
	ingestWaves   = 4
	ingestPerWave = 256
)

// driveIngestWaves pushes the fixed sharded-ingest workload through ss
// with the given worker count and appends each wave's AdvanceSlot
// latency (ns) to advNs. Shared by the loopback and TCP bodies so the
// tcp-vs-loopback pair measures the transport, not workload drift.
func driveIngestWaves(b *testing.B, ss *resilience.ShardedService, workers int, advNs *[]float64) {
	var next atomic.Int64
	for wave := 1; wave <= ingestWaves; wave++ {
		slot := core.Slot(wave)
		hi := int64(wave * ingestPerWave)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					u := next.Add(1)
					if u > hi {
						return
					}
					if err := ss.SubmitAdditiveBid(1, core.OnlineBid{
						User: core.UserID(u), Start: slot, End: slot,
						Values: []econ.Money{econ.Dollar},
					}); err != nil {
						b.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
		start := time.Now()
		if _, err := ss.AdvanceSlot(); err != nil {
			b.Fatal(err)
		}
		*advNs = append(*advNs, float64(time.Since(start).Nanoseconds()))
	}
	if got := ss.Invoices(); len(got) == 0 {
		b.Fatal("no user was invoiced")
	}
}

// reportIngestMetrics emits the two service-level extras every
// ShardedIngest* body tracks in the BENCH_*.json trajectory.
func reportIngestMetrics(b *testing.B, advNs []float64) {
	if e := b.Elapsed(); e > 0 {
		b.ReportMetric(float64(b.N*ingestPerWave*ingestWaves)/e.Seconds(), "bids/s")
	}
	b.ReportMetric(stats.Percentile(advNs, 0.99), "p99-adv-ns")
}

// shardedIngestBody is the shared body; instrumented chooses whether
// the tier carries an obs.Registry.
func shardedIngestBody(shards int, instrumented bool) func(b *testing.B) {
	return func(b *testing.B) {
		catalog := []sharedopt.Optimization{{ID: 1, Cost: econ.FromDollars(50)}}
		workers := runtime.GOMAXPROCS(0)
		var advNs []float64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			writers := make([]io.Writer, shards)
			for s := range writers {
				writers[s] = new(resilience.MemLog)
			}
			var reg *obs.Registry
			if instrumented {
				reg = obs.NewRegistry()
			}
			ss, err := resilience.NewShardedService(sharedopt.Additive, catalog,
				core.Slot(ingestWaves), writers, resilience.ShardedConfig{Obs: reg})
			if err != nil {
				b.Fatal(err)
			}
			driveIngestWaves(b, ss, workers, &advNs)
		}
		b.StopTimer()
		reportIngestMetrics(b, advNs)
	}
}

// ShardedIngestNet is ShardedIngestThroughput with the router reaching
// every shard over the length-prefixed TCP transport on loopback
// sockets instead of in-process calls: identical workload and
// settlement, plus a real network boundary — JSON framing, group-commit
// socket writes, reply routing by request ID — on every submit and
// advance. Link setup and teardown run off-timer so the measurement is
// the steady-state boundary cost, which the tcp-vs-loopback pair gate
// bounds.
func ShardedIngestNet(shards int) func(b *testing.B) {
	return func(b *testing.B) {
		catalog := []sharedopt.Optimization{{ID: 1, Cost: econ.FromDollars(50)}}
		workers := runtime.GOMAXPROCS(0)
		var advNs []float64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			links := make([]resilience.ShardTransport, shards)
			clients := make([]*transport.ShardClient, shards)
			servers := make([]*transport.ShardServer, shards)
			for s := 0; s < shards; s++ {
				host, err := resilience.NewShardHost(sharedopt.Additive, catalog,
					core.Slot(ingestWaves), s, shards, new(resilience.MemLog))
				if err != nil {
					b.Fatal(err)
				}
				srv := transport.NewShardServer(host)
				addr, err := srv.Listen("127.0.0.1:0")
				if err != nil {
					b.Fatal(err)
				}
				cl, err := transport.NewShardClient(transport.ClientConfig{
					Dial: func() (net.Conn, error) {
						return net.DialTimeout("tcp", addr, time.Second)
					},
					Retry: resilience.Backoff{
						Attempts: 3, Base: time.Millisecond,
						Cap: 5 * time.Millisecond, Seed: uint64(s + 1),
					},
					Shard: s,
				})
				if err != nil {
					b.Fatal(err)
				}
				servers[s], clients[s], links[s] = srv, cl, cl
			}
			ss, err := resilience.NewShardedServiceOver(sharedopt.Additive, catalog,
				core.Slot(ingestWaves), links, resilience.ShardedConfig{})
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			driveIngestWaves(b, ss, workers, &advNs)
			b.StopTimer()
			for s := range clients {
				clients[s].Close()
				servers[s].Close()
			}
			b.StartTimer()
		}
		b.StopTimer()
		reportIngestMetrics(b, advNs)
	}
}
