// Package benchkit defines the repo's key mechanism micro-benchmarks as
// reusable bodies, so that bench_test.go at the module root can wrap them
// in go-test benchmarks and cmd/benchjson can run the same code in-process
// via testing.Benchmark to emit BENCH_*.json perf snapshots. Keeping one
// definition for both consumers guarantees the JSON trajectory tracks
// exactly what `go test -bench` measures.
package benchkit

import (
	"testing"

	"sharedopt/internal/core"
	"sharedopt/internal/econ"
	"sharedopt/internal/stats"
	"sharedopt/internal/workload"
)

// Result is one benchmark measurement, shaped for JSON serialization.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Shapley returns the benchmark body for one Shapley Value Mechanism run
// over the given number of bidders with uniformly random dollar bids. The
// cost scales with the bidder count at $0.20 per bidder: for uniform
// [0,$1) bids that implements the optimization with roughly the top 70%
// of bidders serviced at every scale, so the benchmark exercises the full
// path — sort, prefix scan, and serviced-set extraction — not the
// degenerate nobody-serviced early return.
func Shapley(bidders int) func(b *testing.B) {
	return func(b *testing.B) {
		r := stats.NewRNG(1)
		bids := make(map[core.UserID]econ.Money, bidders)
		for u := 1; u <= bidders; u++ {
			bids[core.UserID(u)] = econ.Money(r.Int63n(int64(econ.Dollar)))
		}
		cost := econ.FromDollars(0.2).MulInt(int64(bidders))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := core.Shapley(cost, bids)
			if err != nil {
				b.Fatal(err)
			}
			if !res.Implemented() {
				b.Fatal("benchmark scenario must service a positive prefix")
			}
		}
	}
}

// AddOnGame returns the benchmark body for a complete 12-slot AddOn game
// with 24 users — one Figure 2(b) trial.
func AddOnGame() func(b *testing.B) {
	return func(b *testing.B) {
		r := stats.NewRNG(2)
		sc := workload.Collaboration(r, 24, 12, econ.FromDollars(1.5))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			game := core.NewAddOn(sc.Opts[0])
			for _, bid := range sc.Bids {
				if err := game.Submit(core.OnlineBid{User: bid.User, Start: bid.Start,
					End: bid.End, Values: bid.Values}); err != nil {
					b.Fatal(err)
				}
			}
			for t := core.Slot(1); t <= sc.Horizon; t++ {
				game.AdvanceSlot()
			}
			game.Close()
		}
	}
}

// SubstOnGame returns the benchmark body for a complete 12-slot SubstOn
// game with 24 users over 12 optimizations — one Figure 2(d) trial.
func SubstOnGame() func(b *testing.B) {
	return func(b *testing.B) {
		r := stats.NewRNG(3)
		sc := workload.Substitutes(r, 24, 12, 3, 12, econ.FromDollars(1.5))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			game := core.NewSubstOn(sc.Opts)
			for _, bid := range sc.Bids {
				if err := game.Submit(bid); err != nil {
					b.Fatal(err)
				}
			}
			for t := core.Slot(1); t <= sc.Horizon; t++ {
				game.AdvanceSlot()
			}
			game.Close()
		}
	}
}

// Key lists the benchmarks tracked in the BENCH_*.json perf trajectory.
func Key() []struct {
	Name string
	Body func(b *testing.B)
} {
	return []struct {
		Name string
		Body func(b *testing.B)
	}{
		{"Shapley1k", Shapley(1_000)},
		{"Shapley10k", Shapley(10_000)},
		{"Shapley100k", Shapley(100_000)},
		{"AddOnGame", AddOnGame()},
		{"SubstOnGame", SubstOnGame()},
	}
}

// RunKey measures every benchmark in Key with testing.Benchmark.
func RunKey() []Result {
	var out []Result
	for _, kb := range Key() {
		r := testing.Benchmark(kb.Body)
		out = append(out, Result{
			Name:        kb.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}
	return out
}
