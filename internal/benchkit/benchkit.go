// Package benchkit defines the repo's key mechanism, engine, and
// workload benchmarks as reusable bodies, so that bench_test.go at the
// module root can wrap them in go-test benchmarks and cmd/benchjson can
// run the same code in-process via testing.Benchmark to emit BENCH_*.json
// perf snapshots. Keeping one definition for both consumers guarantees
// the JSON trajectory tracks exactly what `go test -bench` measures, and
// Regressions lets CI diff a fresh run against a committed snapshot.
package benchkit

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"sharedopt/internal/astro"
	"sharedopt/internal/core"
	"sharedopt/internal/econ"
	"sharedopt/internal/engine"
	"sharedopt/internal/stats"
	"sharedopt/internal/workload"
)

// Result is one benchmark measurement, shaped for JSON serialization.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Extra carries custom metrics a body published via b.ReportMetric
	// (e.g. the sharded tier's "bids/s" and "p99-adv-ns"), keyed by
	// unit. Omitted when a body reports none.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Shapley returns the benchmark body for one Shapley Value Mechanism run
// over the given number of bidders with uniformly random dollar bids. The
// cost scales with the bidder count at $0.20 per bidder: for uniform
// [0,$1) bids that implements the optimization with roughly the top 70%
// of bidders serviced at every scale, so the benchmark exercises the full
// path — sort, prefix scan, and serviced-set extraction — not the
// degenerate nobody-serviced early return.
func Shapley(bidders int) func(b *testing.B) {
	return func(b *testing.B) {
		r := stats.NewRNG(1)
		bids := make(map[core.UserID]econ.Money, bidders)
		for u := 1; u <= bidders; u++ {
			bids[core.UserID(u)] = econ.Money(r.Int63n(int64(econ.Dollar)))
		}
		cost := econ.FromDollars(0.2).MulInt(int64(bidders))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := core.Shapley(cost, bids)
			if err != nil {
				b.Fatal(err)
			}
			if !res.Implemented() {
				b.Fatal("benchmark scenario must service a positive prefix")
			}
		}
	}
}

// AddOnGame returns the benchmark body for a complete 12-slot AddOn game
// with 24 users — one Figure 2(b) trial.
func AddOnGame() func(b *testing.B) {
	return func(b *testing.B) {
		r := stats.NewRNG(2)
		sc := workload.Collaboration(r, 24, 12, econ.FromDollars(1.5))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			game := core.NewAddOn(sc.Opts[0])
			for _, bid := range sc.Bids {
				if err := game.Submit(core.OnlineBid{User: bid.User, Start: bid.Start,
					End: bid.End, Values: bid.Values}); err != nil {
					b.Fatal(err)
				}
			}
			for t := core.Slot(1); t <= sc.Horizon; t++ {
				game.AdvanceSlot()
			}
			game.Close()
		}
	}
}

// SubstOnGame returns the benchmark body for a complete 12-slot SubstOn
// game with 24 users over 12 optimizations — one Figure 2(d) trial.
func SubstOnGame() func(b *testing.B) {
	return func(b *testing.B) {
		r := stats.NewRNG(3)
		sc := workload.Substitutes(r, 24, 12, 3, 12, econ.FromDollars(1.5))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			game := core.NewSubstOn(sc.Opts)
			for _, bid := range sc.Bids {
				if err := game.Submit(bid); err != nil {
					b.Fatal(err)
				}
			}
			for t := core.Slot(1); t <= sc.Horizon; t++ {
				game.AdvanceSlot()
			}
			game.Close()
		}
	}
}

// engineHashJoinBody is the shared body of the hash-join benchmarks: the
// 10k × 10k hash join plus grouped count through the columnar engine
// (the workload tracked since BENCH_PR2.json), executed with the given
// morsel-parallel worker count (1 = the serial plan). The probe side
// spans 10 morsels, so up to 8 workers have real work to split.
func engineHashJoinBody(workers int) func(b *testing.B) {
	return func(b *testing.B) {
		r := stats.NewRNG(4)
		left := engine.NewTable("l", engine.Schema{{Name: "k", Type: engine.Int64}})
		right := engine.NewTable("r", engine.Schema{{Name: "k", Type: engine.Int64},
			{Name: "v", Type: engine.Int64}})
		for i := 0; i < 10_000; i++ {
			left.MustAppend(engine.Row{engine.I(r.Int63n(5000))})
			right.MustAppend(engine.Row{engine.I(r.Int63n(5000)), engine.I(int64(i))})
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			meter := engine.NewMeter(engine.DefaultCostModel())
			if _, err := engine.Scan(left, meter).WithParallelism(workers).
				HashJoin(engine.Scan(right, meter).WithParallelism(workers), "k", "k").
				GroupCount("k").Rows(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// EngineHashJoin returns the benchmark body for the serial hash-join plus
// grouped-count pipeline.
func EngineHashJoin() func(b *testing.B) { return engineHashJoinBody(1) }

// EngineHashJoinParallel returns the same pipeline executed
// morsel-parallel with the given worker count — the tentpole the
// relative-pair CI gate holds against the serial body.
func EngineHashJoinParallel(workers int) func(b *testing.B) {
	return engineHashJoinBody(workers)
}

// engineBuildJoinBody is the shared body of the build-sink benchmarks: a
// join whose cost is dominated by materializing and hash-building a 64k-
// row build side against a small (2k-row) probe side. At workers ≥ 2 the
// build drains morsel-parallel AND populates its hash table with the
// radix-partitioned parallel build (the build side is far above
// partitionedBuildMinRows); at workers == 1 it is the serial sink the
// pair gate holds the partitioned build against. The probe pipeline is
// identical on both sides of the pair, so the measured ratio isolates
// the build sink.
func engineBuildJoinBody(workers int) func(b *testing.B) {
	return func(b *testing.B) {
		r := stats.NewRNG(6)
		probe := engine.NewTable("p", engine.Schema{{Name: "k", Type: engine.Int64}})
		build := engine.NewTable("b", engine.Schema{{Name: "k", Type: engine.Int64},
			{Name: "v", Type: engine.Int64}})
		for i := 0; i < 2_000; i++ {
			probe.MustAppend(engine.Row{engine.I(r.Int63n(32_768))})
		}
		for i := 0; i < 65_536; i++ {
			build.MustAppend(engine.Row{engine.I(r.Int63n(32_768)), engine.I(int64(i))})
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			meter := engine.NewMeter(engine.DefaultCostModel())
			if err := engine.Scan(probe, meter).WithParallelism(workers).
				HashJoin(engine.Scan(build, meter).WithParallelism(workers), "k", "k").
				ForEachBatch(func(*engine.Batch) error { return nil }); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// EngineBuildJoin returns the build-dominated join with the serial build
// sink.
func EngineBuildJoin() func(b *testing.B) { return engineBuildJoinBody(1) }

// EngineBuildJoinParallel returns the build-dominated join with the
// radix-partitioned parallel build at the given worker count.
func EngineBuildJoinParallel(workers int) func(b *testing.B) {
	return engineBuildJoinBody(workers)
}

// engineOrderByBody is the shared body of the sort-sink benchmarks: scan
// and fully sort a 128k-row table by a wide-range Int64 key, draining
// batch-natively so the measurement is the materialize + sort, not Row
// allocation. At workers ≥ 2 OrderByInt takes the parallel merge-sort
// path (per-worker sorted runs, pairwise stable merges); at workers == 1
// it is the serial stable sort.
func engineOrderByBody(workers int) func(b *testing.B) {
	return func(b *testing.B) {
		r := stats.NewRNG(8)
		t := engine.NewTable("t", engine.Schema{{Name: "k", Type: engine.Int64},
			{Name: "v", Type: engine.Int64}})
		for i := 0; i < 131_072; i++ {
			t.MustAppend(engine.Row{engine.I(r.Int63n(1 << 40)), engine.I(int64(i))})
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			meter := engine.NewMeter(engine.DefaultCostModel())
			if err := engine.Scan(t, meter).WithParallelism(workers).
				OrderByInt("k", false).
				ForEachBatch(func(*engine.Batch) error { return nil }); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// EngineOrderBy returns the full-sort body with the serial stable sort.
func EngineOrderBy() func(b *testing.B) { return engineOrderByBody(1) }

// EngineOrderByParallel returns the full-sort body with the parallel
// merge sort at the given worker count.
func EngineOrderByParallel(workers int) func(b *testing.B) {
	return engineOrderByBody(workers)
}

// benchUniverse lazily generates the default 4000-particle universe the
// halo-finder benchmarks cluster, so its (expensive) generation is paid
// once per process rather than once per measurement.
var benchUniverse = sync.OnceValues(func() (*astro.Universe, error) {
	return astro.Generate(astro.DefaultConfig())
})

// HaloFinder returns the benchmark body for friends-of-friends
// clustering of one 4000-particle snapshot. warm reuses one HaloFinder
// (grid, union-find, and component scratch retained) across iterations —
// the tracking workload's per-snapshot call pattern; fresh constructs a
// finder per call.
func HaloFinder(warm bool) func(b *testing.B) {
	return func(b *testing.B) {
		u, err := benchUniverse()
		if err != nil {
			b.Fatal(err)
		}
		f := astro.NewHaloFinder(1.8, 8)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !warm {
				f = astro.NewHaloFinder(1.8, 8)
			}
			if _, err := f.Find(u.Tables[0], nil); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// HaloFinderParallel returns the warm-finder clustering body with the
// candidate-pair phase running on the given worker count (see
// astro.HaloFinder.Parallelism) — the sink the pair gate holds against
// the serial warm finder. Results and meters are identical to serial;
// only the wall clock may differ.
func HaloFinderParallel(workers int) func(b *testing.B) {
	return func(b *testing.B) {
		u, err := benchUniverse()
		if err != nil {
			b.Fatal(err)
		}
		f := astro.NewHaloFinder(1.8, 8)
		f.Parallelism = workers
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := f.Find(u.Tables[0], nil); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// astroBenchUniverse lazily generates the reduced universe the workload
// benchmarks track, shared by the serial and parallel bodies so pair
// runs measure the same data.
var astroBenchUniverse = sync.OnceValues(func() (*astro.Universe, error) {
	cfg := astro.DefaultConfig()
	cfg.Particles = 1500
	cfg.Snapshots = 8
	return astro.Generate(cfg)
})

// astroWorkloadBody is the shared body of the end-to-end astronomy
// tracking benchmark: a fresh tracker clusters every snapshot of a
// reduced universe and runs one stride-1 astronomer's progenitor and
// chain queries through the engine — the workload whose metered cost
// feeds the pricing experiments. workers is the tracker's engine
// parallelism (1 = serial plans).
func astroWorkloadBody(workers int) func(b *testing.B) {
	return func(b *testing.B) {
		u, err := astroBenchUniverse()
		if err != nil {
			b.Fatal(err)
		}
		spec := astro.UserSpec{Name: "bench", Stride: 1, Halos: []int32{0, 1}}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr := astro.NewTracker(u, 1.8, 8)
			tr.Parallelism = workers
			meter := engine.NewMeter(engine.DefaultCostModel())
			if err := tr.RunWorkload(spec, meter); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// AstroWorkload returns the serial end-to-end tracking workload body.
func AstroWorkload() func(b *testing.B) { return astroWorkloadBody(1) }

// AstroWorkloadParallel returns the same workload with the tracker's
// engine queries running morsel-parallel AND halo clustering's
// candidate-pair phase fanned out over the same worker count, so — with
// the partitioned build, merge sort and parallel finder — no serial sink
// bounds the end-to-end gain.
func AstroWorkloadParallel(workers int) func(b *testing.B) {
	return astroWorkloadBody(workers)
}

// Key lists the benchmarks tracked in the BENCH_*.json perf trajectory.
func Key() []struct {
	Name string
	Body func(b *testing.B)
} {
	return []struct {
		Name string
		Body func(b *testing.B)
	}{
		{"Shapley1k", Shapley(1_000)},
		{"Shapley10k", Shapley(10_000)},
		{"Shapley100k", Shapley(100_000)},
		{"AddOnGame", AddOnGame()},
		{"SubstOnGame", SubstOnGame()},
		{"ServiceGame", ServiceGame(false)},
		{"ServiceGameJournaled", ServiceGame(true)},
		{"IngestThroughput", IngestThroughput()},
		{"ShardedIngest1", ShardedIngestThroughput(1)},
		{"ShardedIngest4", ShardedIngestThroughput(4)},
		{"ShardedIngest4Obs", ShardedIngestInstrumented(4)},
		{"ShardedIngest4Net", ShardedIngestNet(4)},
		{"EngineHashJoin", EngineHashJoin()},
		{"EngineHashJoinParallel4", EngineHashJoinParallel(4)},
		{"EngineBuildJoin", EngineBuildJoin()},
		{"EngineBuildJoinParallel4", EngineBuildJoinParallel(4)},
		{"EngineOrderBy", EngineOrderBy()},
		{"EngineOrderByParallel4", EngineOrderByParallel(4)},
		{"HaloFinder", HaloFinder(false)},
		{"HaloFinderWarm", HaloFinder(true)},
		{"HaloFinderParallel4", HaloFinderParallel(4)},
		{"AstroWorkload", AstroWorkload()},
		{"AstroWorkloadParallel4", AstroWorkloadParallel(4)},
	}
}

// Regressions compares current results against a committed baseline
// snapshot's, returning one message per benchmark whose ns/op exceeds
// the baseline by more than threshold (fractional: 0.30 = 30% slower),
// or that disappeared from the current run. Benchmarks new in current
// (absent from the baseline) pass: they have no trajectory yet. An empty
// return means no regression.
func Regressions(baseline, current []Result, threshold float64) []string {
	byName := make(map[string]Result, len(current))
	for _, r := range current {
		byName[r.Name] = r
	}
	var msgs []string
	for _, base := range baseline {
		cur, ok := byName[base.Name]
		if !ok {
			msgs = append(msgs, fmt.Sprintf("%s: present in baseline but not measured", base.Name))
			continue
		}
		if base.NsPerOp <= 0 {
			continue
		}
		ratio := cur.NsPerOp / base.NsPerOp
		if ratio > 1+threshold {
			msgs = append(msgs, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (%.0f%% slower, threshold %.0f%%)",
				base.Name, cur.NsPerOp, base.NsPerOp, (ratio-1)*100, threshold*100))
		}
	}
	return msgs
}

// ExtraDrift compares the custom-metric keys (Result.Extra) between a
// baseline snapshot and a current run, benchmark by benchmark, over the
// UNION of both key sets — so a metric a body stopped reporting is
// surfaced instead of silently vanishing from the diff. It returns the
// metrics present in the baseline but missing from the current run
// (regressions: a tracked number disappeared) and those new in the
// current run (informational: no trajectory yet), each as
// "Benchmark: unit" strings in sorted order. Benchmarks absent from
// either side are Regressions' concern, not ExtraDrift's.
func ExtraDrift(baseline, current []Result) (missing, added []string) {
	byName := make(map[string]Result, len(current))
	for _, r := range current {
		byName[r.Name] = r
	}
	for _, base := range baseline {
		cur, ok := byName[base.Name]
		if !ok {
			continue
		}
		for unit := range base.Extra {
			if _, ok := cur.Extra[unit]; !ok {
				missing = append(missing, fmt.Sprintf("%s: %s", base.Name, unit))
			}
		}
		for unit := range cur.Extra {
			if _, ok := base.Extra[unit]; !ok {
				added = append(added, fmt.Sprintf("%s: %s", base.Name, unit))
			}
		}
	}
	sort.Strings(missing)
	sort.Strings(added)
	return missing, added
}

// RunKey measures every benchmark in Key with testing.Benchmark.
func RunKey() []Result {
	var out []Result
	for _, kb := range Key() {
		r := testing.Benchmark(kb.Body)
		res := Result{
			Name:        kb.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if len(r.Extra) > 0 {
			res.Extra = make(map[string]float64, len(r.Extra))
			for unit, v := range r.Extra {
				res.Extra[unit] = v
			}
		}
		out = append(out, res)
	}
	return out
}

// Pair is one relative performance claim the CI gate holds: candidate
// must run at least MinSpeedup times faster than baseline when the
// runner has NeedProcs CPUs, or RelaxedMinSpeedup (typically a
// no-regression bound < 1) otherwise. Because both bodies run
// interleaved in the same process on the same runner, the comparison is
// self-calibrating — runner speed, turbo states and co-tenants cancel
// out, unlike an absolute ns/op diff against a snapshot from another
// machine.
type Pair struct {
	Name              string
	Baseline          func(b *testing.B)
	Candidate         func(b *testing.B)
	MinSpeedup        float64
	RelaxedMinSpeedup float64
	NeedProcs         int
}

// Pairs lists the relative claims CI enforces. The hash-join pairs carry
// the streamable-pipeline morsel parallelism; the build-join, order-by
// and halo-finder pairs carry the parallelized sinks (radix-partitioned
// hash build, merge sort, chunked pair enumeration); the astro pair
// guards the end-to-end workload — now parallel from scan through
// clustering — against the parallel path ever costing more than serial.
func Pairs() []Pair {
	return []Pair{
		{
			Name:              "EngineHashJoin/parallel4-vs-serial",
			Baseline:          EngineHashJoin(),
			Candidate:         EngineHashJoinParallel(4),
			MinSpeedup:        1.5,
			RelaxedMinSpeedup: 0.70,
			NeedProcs:         4,
		},
		{
			Name:              "EngineHashJoin/parallel2-vs-serial",
			Baseline:          EngineHashJoin(),
			Candidate:         EngineHashJoinParallel(2),
			MinSpeedup:        1.15,
			RelaxedMinSpeedup: 0.70,
			NeedProcs:         2,
		},
		{
			Name:              "EngineBuildJoin/partitioned4-vs-serial",
			Baseline:          EngineBuildJoin(),
			Candidate:         EngineBuildJoinParallel(4),
			MinSpeedup:        1.3,
			RelaxedMinSpeedup: 0.70,
			NeedProcs:         4,
		},
		{
			Name:              "EngineOrderBy/parallel4-vs-serial",
			Baseline:          EngineOrderBy(),
			Candidate:         EngineOrderByParallel(4),
			MinSpeedup:        1.2,
			RelaxedMinSpeedup: 0.70,
			NeedProcs:         4,
		},
		{
			Name:              "HaloFinder/parallel4-vs-serial",
			Baseline:          HaloFinder(true),
			Candidate:         HaloFinderParallel(4),
			MinSpeedup:        1.3,
			RelaxedMinSpeedup: 0.70,
			NeedProcs:         4,
		},
		{
			// Sharding claim: four per-shard journals must beat the
			// single-journal durable tier on concurrent intake, because
			// submitters serialize only per shard while settlement work
			// is identical on both sides. The relaxed bound still forbids
			// sharding from costing more than ~1.4x on small runners.
			Name:              "ShardedIngest/sharded4-vs-single",
			Baseline:          ShardedIngestThroughput(1),
			Candidate:         ShardedIngestThroughput(4),
			MinSpeedup:        1.3,
			RelaxedMinSpeedup: 0.70,
			NeedProcs:         4,
		},
		{
			// Observability tax bound: the fully instrumented 4-shard
			// tier (every counter, high-water gauge and latency histogram
			// live) must run at ≥0.70x the bare tier's speed — the
			// acceptance bound for the obs layer's hot-path cost. Runner
			// CPU count does not change the claim, so full == relaxed.
			Name:              "ShardedIngest4/obs-vs-bare",
			Baseline:          ShardedIngestThroughput(4),
			Candidate:         ShardedIngestInstrumented(4),
			MinSpeedup:        0.70,
			RelaxedMinSpeedup: 0.70,
			NeedProcs:         1,
		},
		{
			// Network-boundary tax bound: the 4-shard tier with every
			// shard behind the length-prefixed TCP transport (loopback
			// sockets, link setup off-timer) must sustain at least half
			// the in-process tier's intake rate on a multi-core runner —
			// JSON framing, group-commit socket writes and reply routing
			// together may at most double the cost of the hot path. On
			// starved runners socket scheduling dominates, so the relaxed
			// bound only requires the TCP tier to function at all.
			Name:              "ShardedIngest4Net/tcp-vs-loopback",
			Baseline:          ShardedIngestThroughput(4),
			Candidate:         ShardedIngestNet(4),
			MinSpeedup:        0.50,
			RelaxedMinSpeedup: 0.02,
			NeedProcs:         4,
		},
		{
			// Durability tax bound: the journaled service (checksummed
			// framing + fingerprint dedup on every mutation, in-memory
			// log) must stay within 4x of the plain service — i.e. the
			// candidate (journaled) runs at ≥0.25x the baseline's speed.
			// Measured ~2-3x locally; the slack absorbs allocator noise.
			// Single-threaded by construction, so the bound holds on any
			// runner.
			Name:              "ServiceGame/journaled-vs-plain",
			Baseline:          ServiceGame(false),
			Candidate:         ServiceGame(true),
			MinSpeedup:        0.25,
			RelaxedMinSpeedup: 0.25,
			NeedProcs:         1,
		},
		{
			Name:              "AstroWorkload/parallel4-vs-serial",
			Baseline:          AstroWorkload(),
			Candidate:         AstroWorkloadParallel(4),
			MinSpeedup:        0.95,
			RelaxedMinSpeedup: 0.70,
			NeedProcs:         4,
		},
	}
}

// PairResult is one pair's measured outcome, shaped for JSON.
type PairResult struct {
	Name            string  `json:"name"`
	Rounds          int     `json:"rounds"`
	BaselineNsPerOp float64 `json:"baseline_ns_per_op"`
	CandidateNs     float64 `json:"candidate_ns_per_op"`
	Speedup         float64 `json:"speedup"`
	RequiredSpeedup float64 `json:"required_speedup"`
	// FullGate reports whether the runner had enough CPUs to enforce
	// the pair's full MinSpeedup (false = RelaxedMinSpeedup applied).
	FullGate bool `json:"full_gate"`
	Pass     bool `json:"pass"`
}

// median returns the median of ns (sorted in place).
func median(ns []float64) float64 {
	sort.Float64s(ns)
	n := len(ns)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return ns[n/2]
	}
	return (ns[n/2-1] + ns[n/2]) / 2
}

// nsPerOp extracts a benchmark run's ns/op.
func nsPerOp(r testing.BenchmarkResult) float64 {
	if r.N == 0 {
		return 0
	}
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

// RunPairs measures every pair with `rounds` interleaved
// baseline/candidate runs (baseline, candidate, baseline, candidate, …)
// in this process and compares the medians, so transient machine noise
// hits both sides alike. procs chooses between the full and relaxed
// speedup requirements; pass runtime.GOMAXPROCS(0), which bounds the
// parallelism the candidate bodies can actually use (NumCPU can exceed
// it under cgroup CPU quotas).
func RunPairs(pairs []Pair, rounds, procs int) []PairResult {
	if rounds < 1 {
		rounds = 1
	}
	var out []PairResult
	for _, p := range pairs {
		baseNs := make([]float64, 0, rounds)
		candNs := make([]float64, 0, rounds)
		for r := 0; r < rounds; r++ {
			baseNs = append(baseNs, nsPerOp(testing.Benchmark(p.Baseline)))
			candNs = append(candNs, nsPerOp(testing.Benchmark(p.Candidate)))
		}
		bm, cm := median(baseNs), median(candNs)
		full := procs >= p.NeedProcs
		required := p.MinSpeedup
		if !full {
			required = p.RelaxedMinSpeedup
		}
		speedup := 0.0
		if cm > 0 {
			speedup = bm / cm
		}
		out = append(out, PairResult{
			Name:            p.Name,
			Rounds:          rounds,
			BaselineNsPerOp: bm,
			CandidateNs:     cm,
			Speedup:         speedup,
			RequiredSpeedup: required,
			FullGate:        full,
			Pass:            speedup >= required,
		})
	}
	return out
}
