package benchkit

import (
	"strings"
	"testing"
)

func TestRegressionsThreshold(t *testing.T) {
	baseline := []Result{
		{Name: "A", NsPerOp: 1000},
		{Name: "B", NsPerOp: 1000},
		{Name: "C", NsPerOp: 1000},
	}
	current := []Result{
		{Name: "A", NsPerOp: 1250}, // +25%: within a 30% threshold
		{Name: "B", NsPerOp: 1500}, // +50%: regression
		{Name: "C", NsPerOp: 800},  // faster: fine
		{Name: "D", NsPerOp: 9999}, // new benchmark: no trajectory yet
	}
	msgs := Regressions(baseline, current, 0.30)
	if len(msgs) != 1 || !strings.HasPrefix(msgs[0], "B:") {
		t.Fatalf("msgs = %v, want exactly one for B", msgs)
	}
	if msgs := Regressions(baseline, current, 0.60); len(msgs) != 0 {
		t.Fatalf("loose threshold still flagged: %v", msgs)
	}
}

func TestRegressionsMissingBenchmark(t *testing.T) {
	baseline := []Result{{Name: "A", NsPerOp: 1000}, {Name: "Gone", NsPerOp: 5}}
	current := []Result{{Name: "A", NsPerOp: 1000}}
	msgs := Regressions(baseline, current, 0.30)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "Gone") {
		t.Fatalf("msgs = %v, want missing-benchmark report for Gone", msgs)
	}
}

// A zero-ns baseline entry (hand-written or corrupt) must not divide by
// zero or flag spuriously.
func TestRegressionsZeroBaseline(t *testing.T) {
	msgs := Regressions([]Result{{Name: "Z", NsPerOp: 0}}, []Result{{Name: "Z", NsPerOp: 100}}, 0.30)
	if len(msgs) != 0 {
		t.Fatalf("msgs = %v", msgs)
	}
}

// ExtraDrift walks the union of Extra keys: dropped metrics come back
// as missing (the regression benchjson fails on), new ones as added
// (informational), and benchmarks absent from one side are ignored.
func TestExtraDrift(t *testing.T) {
	baseline := []Result{
		{Name: "A", Extra: map[string]float64{"bids/s": 1, "p99-adv-ns": 2}},
		{Name: "B", Extra: map[string]float64{"rows/s": 3}},
		{Name: "Gone", Extra: map[string]float64{"x/s": 4}},
	}
	current := []Result{
		{Name: "A", Extra: map[string]float64{"bids/s": 5, "p50-adv-ns": 6}},
		{Name: "B", Extra: map[string]float64{"rows/s": 7}},
		{Name: "New", Extra: map[string]float64{"y/s": 8}},
	}
	missing, added := ExtraDrift(baseline, current)
	if want := []string{"A: p99-adv-ns"}; !equalStrings(missing, want) {
		t.Errorf("missing = %v, want %v", missing, want)
	}
	if want := []string{"A: p50-adv-ns"}; !equalStrings(added, want) {
		t.Errorf("added = %v, want %v", added, want)
	}
	if m, a := ExtraDrift(baseline, baseline); len(m) != 0 || len(a) != 0 {
		t.Errorf("self-drift: missing %v, added %v", m, a)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("odd median = %v", m)
	}
	if m := median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Fatalf("even median = %v", m)
	}
	if m := median(nil); m != 0 {
		t.Fatalf("empty median = %v", m)
	}
}

// RunPairs with synthetic bodies: the full gate applies when the runner
// has the pair's CPUs, the relaxed gate otherwise, and pass/fail follows
// the measured median ratio.
func TestRunPairsGating(t *testing.T) {
	spin := func(iters int) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				x := 0
				for j := 0; j < iters; j++ {
					x += j
				}
				_ = x
			}
		}
	}
	pairs := []Pair{
		{Name: "cand-faster", Baseline: spin(60000), Candidate: spin(1000),
			MinSpeedup: 1.5, RelaxedMinSpeedup: 0.75, NeedProcs: 1},
		{Name: "cand-slower-full-gate", Baseline: spin(1000), Candidate: spin(60000),
			MinSpeedup: 1.5, RelaxedMinSpeedup: 0.75, NeedProcs: 1},
		{Name: "cand-slower-relaxed-gate", Baseline: spin(1000), Candidate: spin(60000),
			MinSpeedup: 1.5, RelaxedMinSpeedup: 0.75, NeedProcs: 1 << 20},
	}
	res := RunPairs(pairs, 1, 1)
	if len(res) != 3 {
		t.Fatalf("%d results", len(res))
	}
	if !res[0].Pass || !res[0].FullGate {
		t.Errorf("faster candidate failed full gate: %+v", res[0])
	}
	if res[1].Pass {
		t.Errorf("much slower candidate passed the full gate: %+v", res[1])
	}
	if res[1].RequiredSpeedup != 1.5 {
		t.Errorf("full gate requirement = %v", res[1].RequiredSpeedup)
	}
	if res[2].FullGate || res[2].RequiredSpeedup != 0.75 {
		t.Errorf("relaxed gate not applied: %+v", res[2])
	}
	if res[2].Pass {
		t.Errorf("60x slower candidate passed even the relaxed gate: %+v", res[2])
	}
}

// The registered pairs must reference real bodies and sane thresholds —
// a pair with a nil side or a relaxed bound above the full bound would
// make the CI gate vacuous or impossible.
func TestPairsRegistry(t *testing.T) {
	pairs := Pairs()
	if len(pairs) == 0 {
		t.Fatal("no pairs registered")
	}
	seen := map[string]bool{}
	for _, p := range pairs {
		if p.Name == "" || p.Baseline == nil || p.Candidate == nil {
			t.Errorf("malformed pair %+v", p.Name)
		}
		if seen[p.Name] {
			t.Errorf("duplicate pair %q", p.Name)
		}
		seen[p.Name] = true
		if p.MinSpeedup <= 0 || p.RelaxedMinSpeedup <= 0 || p.RelaxedMinSpeedup > p.MinSpeedup {
			t.Errorf("pair %q thresholds: full %v, relaxed %v", p.Name, p.MinSpeedup, p.RelaxedMinSpeedup)
		}
		if p.NeedProcs < 1 {
			t.Errorf("pair %q NeedProcs %d", p.Name, p.NeedProcs)
		}
	}
}
