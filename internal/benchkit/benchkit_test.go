package benchkit

import (
	"strings"
	"testing"
)

func TestRegressionsThreshold(t *testing.T) {
	baseline := []Result{
		{Name: "A", NsPerOp: 1000},
		{Name: "B", NsPerOp: 1000},
		{Name: "C", NsPerOp: 1000},
	}
	current := []Result{
		{Name: "A", NsPerOp: 1250}, // +25%: within a 30% threshold
		{Name: "B", NsPerOp: 1500}, // +50%: regression
		{Name: "C", NsPerOp: 800},  // faster: fine
		{Name: "D", NsPerOp: 9999}, // new benchmark: no trajectory yet
	}
	msgs := Regressions(baseline, current, 0.30)
	if len(msgs) != 1 || !strings.HasPrefix(msgs[0], "B:") {
		t.Fatalf("msgs = %v, want exactly one for B", msgs)
	}
	if msgs := Regressions(baseline, current, 0.60); len(msgs) != 0 {
		t.Fatalf("loose threshold still flagged: %v", msgs)
	}
}

func TestRegressionsMissingBenchmark(t *testing.T) {
	baseline := []Result{{Name: "A", NsPerOp: 1000}, {Name: "Gone", NsPerOp: 5}}
	current := []Result{{Name: "A", NsPerOp: 1000}}
	msgs := Regressions(baseline, current, 0.30)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "Gone") {
		t.Fatalf("msgs = %v, want missing-benchmark report for Gone", msgs)
	}
}

// A zero-ns baseline entry (hand-written or corrupt) must not divide by
// zero or flag spuriously.
func TestRegressionsZeroBaseline(t *testing.T) {
	msgs := Regressions([]Result{{Name: "Z", NsPerOp: 0}}, []Result{{Name: "Z", NsPerOp: 100}}, 0.30)
	if len(msgs) != 0 {
		t.Fatalf("msgs = %v", msgs)
	}
}
