// Package econ provides exact money arithmetic and the cloud price book
// used throughout the shared-optimization pricing mechanisms.
//
// All monetary quantities — optimization costs, user values, bids, and
// payments — are represented as Money, an int64 count of micro-dollars
// (1e-6 USD). Integer representation makes the cost-recovery guarantee of
// the mechanisms exact: there is no floating-point rounding that could let
// the sum of computed cost-shares drift below the optimization cost.
package econ

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Money is an amount of United States dollars in integer micro-dollars.
// One dollar is 1_000_000 Money. Money is a value type: all arithmetic
// returns new values and never mutates.
//
// The zero value is $0.
type Money int64

// Common denominations.
const (
	// Micro is the smallest representable amount, 1e-6 dollars.
	Micro Money = 1
	// Cent is one hundredth of a dollar.
	Cent Money = 10_000
	// Dollar is one dollar.
	Dollar Money = 1_000_000
)

// MaxMoney is the largest representable amount. It is never a meaningful
// price; mechanisms use explicit "forced" sets rather than sentinel bids,
// but MaxMoney bounds intermediate sums in overflow checks.
const MaxMoney Money = 1<<63 - 1

// ErrMoneyOverflow is reported by checked arithmetic when a result would
// not fit in an int64 number of micro-dollars.
var ErrMoneyOverflow = errors.New("econ: money overflow")

// FromDollars converts a float dollar amount to Money, rounding half away
// from zero to the nearest micro-dollar. It is intended for configuration
// and test inputs; internal computations never round.
func FromDollars(d float64) Money {
	if d >= 0 {
		return Money(d*float64(Dollar) + 0.5)
	}
	return Money(d*float64(Dollar) - 0.5)
}

// FromCents converts an integer number of cents to Money.
func FromCents(c int64) Money { return Money(c) * Cent }

// Dollars reports m as a float64 dollar amount. Use only for display and
// plotting; mechanism logic must stay in integer Money.
func (m Money) Dollars() float64 { return float64(m) / float64(Dollar) }

// IsNegative reports whether m is strictly less than zero.
func (m Money) IsNegative() bool { return m < 0 }

// Add returns m + n.
func (m Money) Add(n Money) Money { return m + n }

// Sub returns m - n.
func (m Money) Sub(n Money) Money { return m - n }

// Neg returns -m.
func (m Money) Neg() Money { return -m }

// MulInt returns m scaled by an integer factor k.
func (m Money) MulInt(k int64) Money { return m * Money(k) }

// DivCeil returns the smallest Money p such that p*n >= m, for n > 0 and
// m >= 0. It is the per-user cost-share of splitting cost m across n users:
// ceiling division guarantees that n users each paying DivCeil(m, n) always
// cover m exactly or over-cover it by at most n-1 micro-dollars, preserving
// cost recovery without floating-point error.
//
// DivCeil panics if n <= 0 or m < 0; both indicate a programming error in
// the caller (costs and populations are validated at the API boundary).
func (m Money) DivCeil(n int) Money {
	if n <= 0 {
		panic(fmt.Sprintf("econ: DivCeil by non-positive population %d", n))
	}
	if m < 0 {
		panic(fmt.Sprintf("econ: DivCeil of negative amount %d", int64(m)))
	}
	return (m + Money(n) - 1) / Money(n)
}

// DivFloor returns m/n rounded toward negative infinity, for n > 0.
func (m Money) DivFloor(n int) Money {
	if n <= 0 {
		panic(fmt.Sprintf("econ: DivFloor by non-positive population %d", n))
	}
	q := m / Money(n)
	if m%Money(n) != 0 && m < 0 {
		q--
	}
	return q
}

// CheckedAdd returns m + n, or ErrMoneyOverflow if the sum does not fit.
func (m Money) CheckedAdd(n Money) (Money, error) {
	s := m + n
	if (n > 0 && s < m) || (n < 0 && s > m) {
		return 0, ErrMoneyOverflow
	}
	return s, nil
}

// Sum adds a slice of amounts with overflow checking. It returns
// ErrMoneyOverflow if any partial sum overflows.
func Sum(amounts []Money) (Money, error) {
	var total Money
	for _, a := range amounts {
		t, err := total.CheckedAdd(a)
		if err != nil {
			return 0, err
		}
		total = t
	}
	return total, nil
}

// Min returns the smaller of a and b.
func Min(a, b Money) Money {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b Money) Money {
	if a > b {
		return a
	}
	return b
}

// String formats m as a dollar amount with up to six decimal places,
// trimming trailing zeros but always keeping at least two decimals:
// $1.50, $0.03, -$2.310000 renders as -$2.31, $0.000001 stays six places.
func (m Money) String() string {
	neg := m < 0
	v := int64(m)
	if neg {
		v = -v
	}
	whole := v / int64(Dollar)
	frac := v % int64(Dollar)
	fs := fmt.Sprintf("%06d", frac)
	// Trim trailing zeros but keep at least two fractional digits.
	for len(fs) > 2 && fs[len(fs)-1] == '0' {
		fs = fs[:len(fs)-1]
	}
	sign := ""
	if neg {
		sign = "-"
	}
	return fmt.Sprintf("%s$%d.%s", sign, whole, fs)
}

// ParseMoney parses a dollar string produced by String or written by hand:
// an optional sign, optional leading "$", digits, and an optional fraction
// of at most six digits. Examples: "2.31", "$0.03", "-$1.5", "+12".
func ParseMoney(s string) (Money, error) {
	orig := s
	neg := false
	switch {
	case strings.HasPrefix(s, "-"):
		neg = true
		s = s[1:]
	case strings.HasPrefix(s, "+"):
		s = s[1:]
	}
	s = strings.TrimPrefix(s, "$")
	if s == "" {
		return 0, fmt.Errorf("econ: parse money %q: empty amount", orig)
	}
	if strings.ContainsAny(s, "+-") {
		return 0, fmt.Errorf("econ: parse money %q: misplaced sign", orig)
	}
	wholeStr, fracStr, hasFrac := strings.Cut(s, ".")
	if wholeStr == "" {
		wholeStr = "0"
	}
	whole, err := strconv.ParseInt(wholeStr, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("econ: parse money %q: %v", orig, err)
	}
	var frac int64
	if hasFrac {
		if fracStr == "" || len(fracStr) > 6 {
			return 0, fmt.Errorf("econ: parse money %q: fraction must have 1..6 digits", orig)
		}
		f, err := strconv.ParseInt(fracStr, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("econ: parse money %q: %v", orig, err)
		}
		for i := len(fracStr); i < 6; i++ {
			f *= 10
		}
		frac = f
	}
	if whole > int64(MaxMoney/Dollar)-1 {
		return 0, fmt.Errorf("econ: parse money %q: %w", orig, ErrMoneyOverflow)
	}
	v := Money(whole)*Dollar + Money(frac)
	if neg {
		v = -v
	}
	return v, nil
}

// MustParseMoney is ParseMoney that panics on error; for tests and
// compile-time-constant-like configuration.
func MustParseMoney(s string) Money {
	m, err := ParseMoney(s)
	if err != nil {
		panic(err)
	}
	return m
}
