package econ

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromDollars(t *testing.T) {
	cases := []struct {
		in   float64
		want Money
	}{
		{0, 0},
		{1, Dollar},
		{2.31, 2_310_000},
		{0.03, 30_000},
		{-1.5, -1_500_000},
		{0.0000015, 2}, // rounds to nearest micro
		{-0.0000015, -2},
	}
	for _, c := range cases {
		if got := FromDollars(c.in); got != c.want {
			t.Errorf("FromDollars(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestFromCents(t *testing.T) {
	if got := FromCents(231); got != FromDollars(2.31) {
		t.Errorf("FromCents(231) = %v, want %v", got, FromDollars(2.31))
	}
	if got := FromCents(-7); got != FromDollars(-0.07) {
		t.Errorf("FromCents(-7) = %v, want %v", got, FromDollars(-0.07))
	}
}

func TestDivCeilExamples(t *testing.T) {
	cases := []struct {
		m    Money
		n    int
		want Money
	}{
		{100 * Dollar, 4, 25 * Dollar},  // paper Example 3 share
		{100 * Dollar, 1, 100 * Dollar}, // sole user pays everything
		{100 * Dollar, 2, 50 * Dollar},
		{101 * Dollar, 100, FromDollars(1.01)},
		{101 * Dollar, 101, 1 * Dollar},
		{1, 3, 1}, // 1 micro split 3 ways still charges 1 micro
		{0, 5, 0},
	}
	for _, c := range cases {
		if got := c.m.DivCeil(c.n); got != c.want {
			t.Errorf("(%v).DivCeil(%d) = %v, want %v", c.m, c.n, got, c.want)
		}
	}
}

func TestDivCeilPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("zero population", func() { Money(10).DivCeil(0) })
	mustPanic("negative population", func() { Money(10).DivCeil(-1) })
	mustPanic("negative amount", func() { Money(-10).DivCeil(2) })
}

// Property: DivCeil recovers the cost — n users paying the share always
// cover m, and never over-cover by n or more micro-dollars.
func TestDivCeilRecoversCost(t *testing.T) {
	f := func(raw int64, nRaw uint8) bool {
		m := Money(raw)
		if m < 0 {
			m = -m
		}
		m %= 1_000_000 * Dollar
		n := int(nRaw%64) + 1
		share := m.DivCeil(n)
		total := share.MulInt(int64(n))
		return total >= m && total-m < Money(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: DivCeil is monotone in the amount and antitone in population.
func TestDivCeilMonotone(t *testing.T) {
	f := func(aRaw, bRaw int64, nRaw uint8) bool {
		a, b := Money(aRaw), Money(bRaw)
		if a < 0 {
			a = -a
		}
		if b < 0 {
			b = -b
		}
		a %= 1_000 * Dollar
		b %= 1_000 * Dollar
		if a > b {
			a, b = b, a
		}
		n := int(nRaw%32) + 1
		if a.DivCeil(n) > b.DivCeil(n) {
			return false
		}
		// More users never increases the per-user share.
		return b.DivCeil(n+1) <= b.DivCeil(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDivFloor(t *testing.T) {
	cases := []struct {
		m    Money
		n    int
		want Money
	}{
		{10, 3, 3},
		{-10, 3, -4},
		{9, 3, 3},
		{-9, 3, -3},
		{0, 7, 0},
	}
	for _, c := range cases {
		if got := c.m.DivFloor(c.n); got != c.want {
			t.Errorf("(%d).DivFloor(%d) = %d, want %d", int64(c.m), c.n, int64(got), int64(c.want))
		}
	}
}

func TestCheckedAdd(t *testing.T) {
	if _, err := MaxMoney.CheckedAdd(1); err == nil {
		t.Error("MaxMoney + 1 should overflow")
	}
	if _, err := Money(math.MinInt64).CheckedAdd(-1); err == nil {
		t.Error("MinMoney - 1 should overflow")
	}
	got, err := Money(2).CheckedAdd(3)
	if err != nil || got != 5 {
		t.Errorf("2+3 = %v, %v; want 5, nil", got, err)
	}
}

func TestSum(t *testing.T) {
	got, err := Sum([]Money{Dollar, 2 * Dollar, -Cent})
	if err != nil {
		t.Fatal(err)
	}
	if want := FromDollars(2.99); got != want {
		t.Errorf("Sum = %v, want %v", got, want)
	}
	if _, err := Sum([]Money{MaxMoney, MaxMoney}); err == nil {
		t.Error("Sum of two MaxMoney should overflow")
	}
	if got, err := Sum(nil); err != nil || got != 0 {
		t.Errorf("Sum(nil) = %v, %v; want 0, nil", got, err)
	}
}

func TestMinMax(t *testing.T) {
	if Min(1, 2) != 1 || Min(2, 1) != 1 {
		t.Error("Min broken")
	}
	if Max(1, 2) != 2 || Max(2, 1) != 2 {
		t.Error("Max broken")
	}
}

func TestStringFormatting(t *testing.T) {
	cases := []struct {
		m    Money
		want string
	}{
		{0, "$0.00"},
		{Dollar, "$1.00"},
		{FromDollars(2.31), "$2.31"},
		{FromDollars(0.03), "$0.03"},
		{FromDollars(-1.5), "-$1.50"},
		{Micro, "$0.000001"},
		{FromDollars(12.345678), "$12.345678"},
	}
	for _, c := range cases {
		if got := c.m.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.m), got, c.want)
		}
	}
}

func TestParseMoney(t *testing.T) {
	cases := []struct {
		in   string
		want Money
	}{
		{"2.31", FromDollars(2.31)},
		{"$0.03", FromDollars(0.03)},
		{"-$1.5", FromDollars(-1.5)},
		{"+12", 12 * Dollar},
		{"0.000001", Micro},
		{".5", FromDollars(0.5)},
	}
	for _, c := range cases {
		got, err := ParseMoney(c.in)
		if err != nil {
			t.Errorf("ParseMoney(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseMoney(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	bad := []string{"", "$", "1.2345678", "abc", "1.2.3", "1.", "--1"}
	for _, in := range bad {
		if _, err := ParseMoney(in); err == nil {
			t.Errorf("ParseMoney(%q): expected error", in)
		}
	}
}

// Property: String/ParseMoney round-trip for in-range amounts.
func TestMoneyRoundTrip(t *testing.T) {
	f := func(raw int64) bool {
		m := Money(raw % (1_000_000_000 * int64(Dollar)))
		parsed, err := ParseMoney(m.String())
		return err == nil && parsed == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMustParseMoneyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseMoney on garbage should panic")
		}
	}()
	MustParseMoney("not money")
}

func TestDollarsDisplay(t *testing.T) {
	if got := FromDollars(2.31).Dollars(); math.Abs(got-2.31) > 1e-9 {
		t.Errorf("Dollars() = %v, want 2.31", got)
	}
	if !FromDollars(-1).IsNegative() || FromDollars(1).IsNegative() {
		t.Error("IsNegative broken")
	}
}

// Quantum-boundary behavior: a cost one micro-dollar either side of an
// exact multiple must round the way the recovery guarantee needs.
func TestDivCeilQuantumBoundaries(t *testing.T) {
	cases := []struct {
		m    Money
		n    int
		want Money
	}{
		{9, 3, 3},        // exact multiple: no rounding
		{10, 3, 4},       // one micro over: round up
		{8, 3, 3},        // one micro under: still covers
		{Micro, 1000, 1}, // smallest amount, many shares: never zero
		{0, 5, 0},        // zero cost shares to zero
		{Dollar + 1, 2, Dollar/2 + 1},
		{Dollar - 1, 2, Dollar / 2},
	}
	for _, c := range cases {
		if got := c.m.DivCeil(c.n); got != c.want {
			t.Errorf("%v.DivCeil(%d) = %v, want %v", c.m, c.n, got, c.want)
		}
		// The recovery inequality itself, at the boundary.
		if got := c.m.DivCeil(c.n).MulInt(int64(c.n)); got < c.m {
			t.Errorf("%v.DivCeil(%d) shares under-recover: %v", c.m, c.n, got)
		}
	}
}

func TestDivFloorQuantumBoundaries(t *testing.T) {
	cases := []struct {
		m    Money
		n    int
		want Money
	}{
		{9, 3, 3},
		{10, 3, 3},
		{8, 3, 2},
		{Micro, 1000, 0}, // floor can vanish where ceil cannot
		{Dollar + 1, 2, Dollar / 2},
	}
	for _, c := range cases {
		if got := c.m.DivFloor(c.n); got != c.want {
			t.Errorf("%v.DivFloor(%d) = %v, want %v", c.m, c.n, got, c.want)
		}
	}
}

// FromDollars at the half-micro boundary rounds half away from zero in
// both directions.
func TestFromDollarsHalfMicroBoundary(t *testing.T) {
	cases := []struct {
		d    float64
		want Money
	}{
		{0.0000005, 1},
		{-0.0000005, -1},
		{0.0000004, 0},
		{-0.0000004, 0},
		{0.0000015, 2},
		{-0.0000015, -2},
	}
	for _, c := range cases {
		if got := FromDollars(c.d); got != c.want {
			t.Errorf("FromDollars(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

// Negative amounts — deficits and negative surpluses in reports — format
// with a single leading sign and correct sub-dollar padding.
func TestNegativeSurplusFormatting(t *testing.T) {
	cases := []struct {
		m    Money
		want string
	}{
		{-1, "-$0.000001"},
		{-Cent, "-$0.01"},
		{-Dollar, "-$1.00"},
		{-Dollar - Cent, "-$1.01"},
		{-Dollar - 1, "-$1.000001"},
		{-1330436, "-$1.330436"},
		{-Dollar * 1000, "-$1000.00"},
	}
	for _, c := range cases {
		if got := c.m.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", c.m, got, c.want)
		}
		back, err := ParseMoney(c.want)
		if err != nil {
			t.Errorf("ParseMoney(%q): %v", c.want, err)
		} else if back != c.m {
			t.Errorf("ParseMoney(%q) = %d, want %d", c.want, back, c.m)
		}
	}
}
