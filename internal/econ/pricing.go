package econ

import (
	"fmt"
	"time"
)

// PriceBook holds the cloud provider's rates used to convert resource use
// into money. The defaults mirror the numbers the paper reports for the
// Amazon EC2 High-Memory Extra Large instance it used for the astronomy
// use-case (Section 7.2): materialized views cost on average $2.31/year of
// storage on a yearly subscription, and saved runtime converts to saved
// instance-hours.
type PriceBook struct {
	// HourlyCompute is the price of one instance-hour of query processing.
	HourlyCompute Money
	// StorageGBMonth is the price of storing one gigabyte for one month.
	StorageGBMonth Money
	// SubscriptionYear is the flat yearly subscription fee for the
	// instance, amortized into optimization costs where applicable.
	SubscriptionYear Money
}

// DefaultPriceBook returns rates calibrated so that the astronomy use-case
// reproduces the constants in Section 7.2 of the paper:
//
//   - storing one materialized view for a year costs ≈ $2.31 on average;
//   - a 2.5 minute runtime saving is worth ≈ 1 cent;
//   - the snapshot-27 view's 44/18/8/39/23/9 minute savings are worth
//     18/7/3/16/9/4 cents per workload execution.
//
// Those per-execution numbers imply roughly 0.41 cents per saved minute;
// we keep the published per-minute value directly.
func DefaultPriceBook() PriceBook {
	return PriceBook{
		// 0.41 cents/minute ≈ $0.246/hour of effective query time.
		HourlyCompute:    FromDollars(0.246),
		StorageGBMonth:   FromDollars(0.11),
		SubscriptionYear: FromDollars(2186.0),
	}
}

// ComputeCost converts a duration of query processing into money at the
// book's hourly rate, rounding to the nearest micro-dollar.
func (p PriceBook) ComputeCost(d time.Duration) Money {
	hours := d.Hours()
	return FromDollars(hours * p.HourlyCompute.Dollars())
}

// StorageCost returns the cost of storing gigabytes for a duration,
// pro-rated from the GB-month rate (one month = 30 days).
func (p PriceBook) StorageCost(gigabytes float64, d time.Duration) Money {
	months := d.Hours() / (30 * 24)
	return FromDollars(gigabytes * months * p.StorageGBMonth.Dollars())
}

// YearlyViewCost returns the yearly cost of keeping a materialized view of
// the given size resident, which is the optimization cost Cj the paper
// charges for astronomy views.
func (p PriceBook) YearlyViewCost(gigabytes float64) Money {
	return p.StorageCost(gigabytes, 365*24*time.Hour)
}

// Validate reports an error if any rate is negative.
func (p PriceBook) Validate() error {
	if p.HourlyCompute < 0 {
		return fmt.Errorf("econ: negative hourly compute rate %v", p.HourlyCompute)
	}
	if p.StorageGBMonth < 0 {
		return fmt.Errorf("econ: negative storage rate %v", p.StorageGBMonth)
	}
	if p.SubscriptionYear < 0 {
		return fmt.Errorf("econ: negative subscription %v", p.SubscriptionYear)
	}
	return nil
}
