package econ

import (
	"testing"
	"time"
)

func TestDefaultPriceBookValid(t *testing.T) {
	if err := DefaultPriceBook().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsNegativeRates(t *testing.T) {
	cases := []PriceBook{
		{HourlyCompute: -1},
		{StorageGBMonth: -1},
		{SubscriptionYear: -1},
	}
	for i, pb := range cases {
		if err := pb.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

// The paper's headline conversion: a 2.5 minute saving is worth about one
// cent of instance time (Section 7.2).
func TestComputeCostMatchesPaperPerMinuteValue(t *testing.T) {
	pb := DefaultPriceBook()
	got := pb.ComputeCost(150 * time.Second) // 2.5 minutes
	if got < FromDollars(0.009) || got > FromDollars(0.011) {
		t.Errorf("2.5 min of compute = %v, want ≈ $0.01", got)
	}
}

// The snapshot-27 view savings from the paper: 44 minutes should be worth
// about 18 cents.
func TestComputeCostSnapshot27Saving(t *testing.T) {
	pb := DefaultPriceBook()
	got := pb.ComputeCost(44 * time.Minute)
	if got < FromDollars(0.17) || got > FromDollars(0.19) {
		t.Errorf("44 min of compute = %v, want ≈ $0.18", got)
	}
}

func TestStorageCostProRates(t *testing.T) {
	pb := PriceBook{StorageGBMonth: Dollar}
	oneMonth := 30 * 24 * time.Hour
	if got := pb.StorageCost(1, oneMonth); got != Dollar {
		t.Errorf("1 GB-month = %v, want $1", got)
	}
	if got := pb.StorageCost(2, oneMonth/2); got != Dollar {
		t.Errorf("2 GB for half a month = %v, want $1", got)
	}
	if got := pb.StorageCost(0, oneMonth); got != 0 {
		t.Errorf("0 GB = %v, want $0", got)
	}
}

func TestYearlyViewCostNearPaperAverage(t *testing.T) {
	pb := DefaultPriceBook()
	// The paper's 27 astronomy views average $2.31/year. A view of
	// ~1.7 GB at the default storage rate lands in that neighbourhood.
	got := pb.YearlyViewCost(1.727)
	if got < FromDollars(2.2) || got > FromDollars(2.4) {
		t.Errorf("yearly cost of 1.727 GB view = %v, want ≈ $2.31", got)
	}
}
