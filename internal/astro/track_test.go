package astro

import (
	"testing"

	"sharedopt/internal/engine"
)

func newTestTracker(t *testing.T) (*Universe, *Tracker) {
	t.Helper()
	u := generate(t, smallConfig())
	return u, NewTracker(u, 2.5, 5)
}

func TestProgenitorFindsPlausibleParent(t *testing.T) {
	u, tr := newTestTracker(t)
	final := len(u.Tables)
	meter := engine.NewMeter(engine.DefaultCostModel())
	// Halo 0 is the largest halo in the final snapshot; with a modest
	// migration rate its progenitor must exist.
	parent, ok, err := tr.Progenitor(final, 0, final-1, meter)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("largest halo has no progenitor")
	}
	if parent < 0 {
		t.Fatalf("parent = %d", parent)
	}
	if meter.WorkUnits() == 0 {
		t.Error("progenitor query charged no work")
	}
}

// The materialized view must not change query answers, only their cost.
func TestViewPreservesAnswers(t *testing.T) {
	u, tr := newTestTracker(t)
	final := len(u.Tables)

	noView := make(map[int32]int32)
	for g := int32(0); g < 3; g++ {
		p, ok, err := tr.Progenitor(final, g, final-1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			noView[g] = p
		}
	}

	if _, err := tr.MaterializeView(final, engine.NewMeter(engine.DefaultCostModel())); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.MaterializeView(final-1, engine.NewMeter(engine.DefaultCostModel())); err != nil {
		t.Fatal(err)
	}
	for g, want := range noView {
		p, ok, err := tr.Progenitor(final, g, final-1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || p != want {
			t.Errorf("halo %d: with views %d/%v, without %d", g, p, ok, want)
		}
	}
}

// The whole point of the optimization: with the views in place the same
// query costs dramatically less.
func TestViewReducesQueryCost(t *testing.T) {
	u, tr := newTestTracker(t)
	final := len(u.Tables)

	before := engine.NewMeter(engine.DefaultCostModel())
	if _, _, err := tr.Progenitor(final, 0, final-1, before); err != nil {
		t.Fatal(err)
	}

	if _, err := tr.MaterializeView(final, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.MaterializeView(final-1, nil); err != nil {
		t.Fatal(err)
	}
	after := engine.NewMeter(engine.DefaultCostModel())
	if _, _, err := tr.Progenitor(final, 0, final-1, after); err != nil {
		t.Fatal(err)
	}
	if after.WorkUnits()*2 > before.WorkUnits() {
		t.Errorf("views should at least halve the cost: %d -> %d",
			before.WorkUnits(), after.WorkUnits())
	}
}

// Cache hits must recharge the full clustering cost: two identical
// queries cost the same, modelling independent query executions.
func TestCacheRechargesClusteringCost(t *testing.T) {
	_, tr := newTestTracker(t)
	final := len(tr.u.Tables)
	m1 := engine.NewMeter(engine.DefaultCostModel())
	if _, _, err := tr.Progenitor(final, 0, final-1, m1); err != nil {
		t.Fatal(err)
	}
	m2 := engine.NewMeter(engine.DefaultCostModel())
	if _, _, err := tr.Progenitor(final, 0, final-1, m2); err != nil {
		t.Fatal(err)
	}
	if m1.WorkUnits() != m2.WorkUnits() {
		t.Errorf("repeat query cost %d, first cost %d", m2.WorkUnits(), m1.WorkUnits())
	}
}

func TestMaterializeViewTwiceFails(t *testing.T) {
	_, tr := newTestTracker(t)
	if _, err := tr.MaterializeView(1, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.MaterializeView(1, nil); err == nil {
		t.Error("second materialization accepted")
	}
	if !tr.HasView(1) {
		t.Error("view missing")
	}
	tr.DropView(1)
	if tr.HasView(1) {
		t.Error("view not dropped")
	}
}

func TestChainWalksBackward(t *testing.T) {
	u, tr := newTestTracker(t)
	final := len(u.Tables)
	snaps := StridedSnapshots(2, final)
	chain, err := tr.Chain(0, snaps, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) < 2 {
		t.Fatalf("chain too short: %v", chain)
	}
	if chain[0] != 0 {
		t.Errorf("chain starts at %d", chain[0])
	}
	if len(chain) > len(snaps) {
		t.Errorf("chain of %d halos over %d snapshots", len(chain), len(snaps))
	}
	if _, err := tr.Chain(0, nil, nil); err == nil {
		t.Error("empty snapshot list accepted")
	}
}

// A parallel tracker must answer every query identically to a serial one
// AND charge identical meter counts — the metering contract is what the
// pricing mechanisms bill on, so parallelism must never perturb it.
func TestParallelTrackerMatchesSerial(t *testing.T) {
	u := generate(t, smallConfig())
	serial := NewTracker(u, 2.5, 5)
	parallel := NewTracker(u, 2.5, 5)
	parallel.Parallelism = 4
	final := len(u.Tables)

	check := func(label string) {
		t.Helper()
		for g := int32(0); g < 3; g++ {
			sm := engine.NewMeter(engine.DefaultCostModel())
			sp, sok, err := serial.Progenitor(final, g, final-1, sm)
			if err != nil {
				t.Fatal(err)
			}
			pm := engine.NewMeter(engine.DefaultCostModel())
			pp, pok, err := parallel.Progenitor(final, g, final-1, pm)
			if err != nil {
				t.Fatal(err)
			}
			if sok != pok || sp != pp {
				t.Fatalf("%s halo %d: parallel %d/%v, serial %d/%v", label, g, pp, pok, sp, sok)
			}
			if *sm != *pm {
				t.Fatalf("%s halo %d: parallel meter %+v, serial %+v", label, g, *pm, *sm)
			}
		}
	}
	check("no views")

	for _, tr := range []*Tracker{serial, parallel} {
		for _, snap := range []int{final, final - 1} {
			if _, err := tr.MaterializeView(snap, engine.NewMeter(engine.DefaultCostModel())); err != nil {
				t.Fatal(err)
			}
		}
	}
	check("with views")
}

func TestStridedSnapshots(t *testing.T) {
	got := StridedSnapshots(4, 27)
	want := []int{27, 23, 19, 15, 11, 7, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if n := len(StridedSnapshots(2, 27)); n != 14 {
		t.Errorf("stride 2 over 27 gives %d snapshots, want 14", n)
	}
	if n := len(StridedSnapshots(1, 27)); n != 27 {
		t.Errorf("stride 1 over 27 gives %d snapshots, want 27", n)
	}
}

func TestRunWorkloadAndDefaultUsers(t *testing.T) {
	_, tr := newTestTracker(t)
	users, err := DefaultUsers(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(users) != 6 {
		t.Fatalf("%d users, want 6", len(users))
	}
	strides := map[int]int{}
	for _, spec := range users {
		strides[spec.Stride]++
		if len(spec.Halos) != 2 {
			t.Errorf("user %s tracks %d halos", spec.Name, len(spec.Halos))
		}
	}
	if strides[1] != 2 || strides[2] != 2 || strides[4] != 2 {
		t.Errorf("stride distribution %v", strides)
	}
	// γ1 and γ2 are disjoint.
	seen := map[int32]string{}
	for _, spec := range users[:1] {
		for _, h := range spec.Halos {
			seen[h] = spec.Name
		}
	}
	for _, h := range users[3].Halos {
		if _, dup := seen[h]; dup {
			t.Errorf("halo %d appears in both γ1 and γ2", h)
		}
	}

	meter := engine.NewMeter(engine.DefaultCostModel())
	if err := tr.RunWorkload(users[2], meter); err != nil { // stride 4: cheapest
		t.Fatal(err)
	}
	if meter.WorkUnits() == 0 {
		t.Error("workload charged no work")
	}

	if err := tr.RunWorkload(UserSpec{Name: "bad", Stride: 0, Halos: []int32{0}}, nil); err == nil {
		t.Error("zero stride accepted")
	}
	if err := tr.RunWorkload(UserSpec{Name: "bad", Stride: 1}, nil); err == nil {
		t.Error("empty halo set accepted")
	}
	if _, err := DefaultUsers(tr, 0); err == nil {
		t.Error("zero halos per set accepted")
	}
	if _, err := DefaultUsers(tr, 1000); err == nil {
		t.Error("absurd halos per set accepted")
	}
}
