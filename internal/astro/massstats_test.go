package astro

import (
	"testing"

	"sharedopt/internal/engine"
)

// HaloMasses must agree with a direct computation from the clustering
// assignment and the particle mass column, must be identical with and
// without the materialized view (the view only changes what the query
// costs), and must be byte-identical — results and meter — under a
// parallel tracker.
func TestHaloMassesMatchesAssignment(t *testing.T) {
	u := generate(t, smallConfig())
	const link, minMembers = 2.0, 3
	const snap = 1

	tr := NewTracker(u, link, minMembers)
	meter := engine.NewMeter(engine.DefaultCostModel())
	got, err := tr.HaloMasses(snap, meter)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no halos found")
	}

	// Direct computation from a fresh clustering.
	tbl := u.Tables[snap-1]
	assign, err := FindHalos(tbl, link, minMembers, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantTotal := make([]float64, assign.NumHalos())
	for p, h := range assign.Halo {
		if h >= 0 {
			wantTotal[h] += ParticleMass(p)
		}
	}
	if len(got) != assign.NumHalos() {
		t.Fatalf("%d halo stats, want %d", len(got), assign.NumHalos())
	}
	for i, hm := range got {
		if hm.Halo != int32(i) {
			t.Fatalf("stat %d is for halo %d", i, hm.Halo)
		}
		// The engine accumulates in pid order, exactly like the loop
		// above, so totals are bit-equal — no tolerance needed.
		if hm.TotalMass != wantTotal[i] {
			t.Errorf("halo %d total mass %v, want %v", i, hm.TotalMass, wantTotal[i])
		}
		wantMean := wantTotal[i] / float64(assign.Sizes[i])
		if hm.MeanMass != wantMean {
			t.Errorf("halo %d mean mass %v, want %v", i, hm.MeanMass, wantMean)
		}
	}

	// A parallel tracker must produce identical stats and charges.
	for _, par := range []int{2, 4, 8} {
		ptr := NewTracker(u, link, minMembers)
		ptr.Parallelism = par
		pm := engine.NewMeter(engine.DefaultCostModel())
		pgot, err := ptr.HaloMasses(snap, pm)
		if err != nil {
			t.Fatal(err)
		}
		if *pm != *meter {
			t.Fatalf("par %d: meter %+v, serial %+v", par, *pm, *meter)
		}
		for i := range got {
			if pgot[i] != got[i] {
				t.Fatalf("par %d halo %d: %+v, serial %+v", par, i, pgot[i], got[i])
			}
		}
	}

	// With the view materialized, the answers are identical and the query
	// is cheaper (the join pays probes instead of recurring clustering).
	vtr := NewTracker(u, link, minMembers)
	if _, err := vtr.MaterializeView(snap, engine.NewMeter(engine.DefaultCostModel())); err != nil {
		t.Fatal(err)
	}
	vm := engine.NewMeter(engine.DefaultCostModel())
	vgot, err := vtr.HaloMasses(snap, vm)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if vgot[i] != got[i] {
			t.Fatalf("with view, halo %d: %+v, want %+v", i, vgot[i], got[i])
		}
	}
	if vm.WorkUnits() >= meter.WorkUnits() {
		t.Errorf("view did not reduce cost: %d >= %d", vm.WorkUnits(), meter.WorkUnits())
	}
}
