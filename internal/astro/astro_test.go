package astro

import (
	"testing"

	"sharedopt/internal/engine"
)

// smallConfig keeps unit tests fast while preserving the workload's
// structure. 13 snapshots is the smallest count at which even the
// stride-4 user queries the final snapshot more often than any
// intermediate one (4 vs 3 uses), preserving the paper's cost shape.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Particles = 900
	cfg.Halos = 8
	cfg.Snapshots = 13
	cfg.Seed = 7
	return cfg
}

func generate(t *testing.T, cfg Config) *Universe {
	t.Helper()
	u, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestGenerateShape(t *testing.T) {
	cfg := smallConfig()
	u := generate(t, cfg)
	if len(u.Tables) != cfg.Snapshots || len(u.TrueHalo) != cfg.Snapshots {
		t.Fatalf("%d tables, %d truth rows", len(u.Tables), len(u.TrueHalo))
	}
	for i, tbl := range u.Tables {
		if tbl.Len() != cfg.Particles {
			t.Errorf("snapshot %d has %d particles", i+1, tbl.Len())
		}
		xs, err := tbl.FloatCol("x")
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range xs {
			if x < 0 || x >= cfg.BoxSize {
				t.Fatalf("snapshot %d: x=%v outside [0,%v)", i+1, x, cfg.BoxSize)
			}
		}
	}
	// Ground truth references valid halos.
	for _, h := range u.TrueHalo[0] {
		if h < -1 || int(h) >= cfg.Halos {
			t.Fatalf("truth halo %d out of range", h)
		}
	}
	if _, err := u.Snapshot(0); err == nil {
		t.Error("snapshot 0 should be out of range")
	}
	if _, err := u.Snapshot(cfg.Snapshots + 1); err == nil {
		t.Error("snapshot beyond end should be out of range")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := generate(t, smallConfig())
	b := generate(t, smallConfig())
	for s := range a.Tables {
		if a.Tables[s].Len() != b.Tables[s].Len() {
			t.Fatalf("snapshot %d sizes differ", s)
		}
		for p := 0; p < a.Tables[s].Len(); p += 37 {
			ra, rb := a.Tables[s].RowAt(p), b.Tables[s].RowAt(p)
			for c := range ra {
				if !ra[c].Equal(rb[c]) {
					t.Fatalf("snapshot %d row %d differs", s, p)
				}
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bads := []func(*Config){
		func(c *Config) { c.Particles = 0 },
		func(c *Config) { c.Halos = 0 },
		func(c *Config) { c.Snapshots = 0 },
		func(c *Config) { c.BoxSize = 0 },
		func(c *Config) { c.HaloSigma = 0 },
		func(c *Config) { c.MigrationRate = 1.5 },
		func(c *Config) { c.BackgroundFrac = 1 },
	}
	for i, mutate := range bads {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// The halo finder must recover the generator's ground-truth clusters: for
// a universe with well-separated halos, particles sharing a true halo end
// up in the same found halo.
func TestFindHalosRecoversTruth(t *testing.T) {
	cfg := smallConfig()
	cfg.BackgroundFrac = 0 // keep the check crisp
	cfg.Particles = 600
	u := generate(t, cfg)
	tbl := u.Tables[0]
	assign, err := FindHalos(tbl, 2.5, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if assign.NumHalos() == 0 {
		t.Fatal("no halos found")
	}
	// Majority mapping: true halo → most common found halo; measure
	// agreement.
	type key struct{ truth, found int32 }
	votes := map[key]int{}
	for p, truth := range u.TrueHalo[0] {
		votes[key{truth, assign.Halo[p]}]++
	}
	best := map[int32]int{}
	total := 0
	for k, n := range votes {
		total += n
		if n > best[k.truth] {
			best[k.truth] = n
		}
	}
	agree := 0
	for _, n := range best {
		agree += n
	}
	if frac := float64(agree) / float64(total); frac < 0.9 {
		t.Errorf("halo finder agrees with ground truth on %.2f of particles, want ≥ 0.9", frac)
	}
}

// The brute-force O(n²) FoF is the reference; the grid version must
// produce the identical partition.
func TestFindHalosMatchesBruteForce(t *testing.T) {
	cfg := smallConfig()
	cfg.Particles = 250
	u := generate(t, cfg)
	tbl := u.Tables[0]
	const link, minMembers = 2.0, 3

	grid, err := FindHalos(tbl, link, minMembers, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Brute force union-find over all pairs.
	xs, _ := tbl.FloatCol("x")
	ys, _ := tbl.FloatCol("y")
	zs, _ := tbl.FloatCol("z")
	n := tbl.Len()
	uf := newUnionFind(n)
	for p := 0; p < n; p++ {
		for q := p + 1; q < n; q++ {
			dx, dy, dz := xs[p]-xs[q], ys[p]-ys[q], zs[p]-zs[q]
			if dx*dx+dy*dy+dz*dz <= link*link {
				uf.union(p, q)
			}
		}
	}
	// Compare partitions restricted to clustered particles: two
	// particles share a grid halo iff they share a brute-force root
	// (of size >= minMembers).
	rootSize := map[int]int{}
	for p := 0; p < n; p++ {
		rootSize[uf.find(p)]++
	}
	for p := 0; p < n; p++ {
		clustered := rootSize[uf.find(p)] >= minMembers
		if clustered != (grid.Halo[p] >= 0) {
			t.Fatalf("particle %d: clustered=%v but grid halo %d", p, clustered, grid.Halo[p])
		}
	}
	for p := 0; p < n; p += 7 {
		for q := p + 1; q < n; q += 11 {
			if grid.Halo[p] < 0 || grid.Halo[q] < 0 {
				continue
			}
			same := uf.find(p) == uf.find(q)
			if same != (grid.Halo[p] == grid.Halo[q]) {
				t.Fatalf("pair (%d,%d): brute same=%v, grid %d vs %d",
					p, q, same, grid.Halo[p], grid.Halo[q])
			}
		}
	}
}

func TestFindHalosValidation(t *testing.T) {
	u := generate(t, smallConfig())
	if _, err := FindHalos(u.Tables[0], 0, 3, nil); err == nil {
		t.Error("zero linking length accepted")
	}
	if _, err := FindHalos(u.Tables[0], 1, 0, nil); err == nil {
		t.Error("zero min members accepted")
	}
	bad := engine.NewTable("bad", engine.Schema{{Name: "pid", Type: engine.Int64}})
	if _, err := FindHalos(bad, 1, 1, nil); err == nil {
		t.Error("table without coordinates accepted")
	}
}

func TestFindHalosMetersWork(t *testing.T) {
	u := generate(t, smallConfig())
	meter := engine.NewMeter(engine.DefaultCostModel())
	if _, err := FindHalos(u.Tables[0], 2.0, 5, meter); err != nil {
		t.Fatal(err)
	}
	if meter.RowsScanned == 0 || meter.RowsBuilt == 0 || meter.RowsProbed == 0 {
		t.Errorf("clustering left the meter untouched: %+v", meter)
	}
}

func TestHaloSizesDescending(t *testing.T) {
	u := generate(t, smallConfig())
	assign, err := FindHalos(u.Tables[0], 2.5, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	for h := 1; h < assign.NumHalos(); h++ {
		if assign.Sizes[h] > assign.Sizes[h-1] {
			t.Fatalf("halo sizes not descending: %v", assign.Sizes)
		}
	}
	if len(assign.Halo) != u.Tables[0].Len() {
		t.Error("assignment length mismatch")
	}
}

func TestAssignmentTableSkipsBackground(t *testing.T) {
	a := &Assignment{Halo: []int32{0, -1, 1, 0}, Sizes: []int{2, 1}}
	tbl := AssignmentTable("t", a)
	if tbl.Len() != 3 {
		t.Fatalf("assignment table has %d rows, want 3", tbl.Len())
	}
	pids, _ := tbl.IntCol("pid")
	for _, pid := range pids {
		if pid == 1 {
			t.Error("background particle 1 should be skipped")
		}
	}
}

func TestUnionFind(t *testing.T) {
	uf := newUnionFind(6)
	uf.union(0, 1)
	uf.union(1, 2)
	uf.union(4, 5)
	if uf.find(0) != uf.find(2) {
		t.Error("0 and 2 should be connected")
	}
	if uf.find(0) == uf.find(3) {
		t.Error("0 and 3 should be separate")
	}
	if uf.find(4) != uf.find(5) {
		t.Error("4 and 5 should be connected")
	}
	uf.union(0, 0) // self-union is a no-op
	if uf.find(3) != 3 {
		t.Error("singleton root changed")
	}
}
