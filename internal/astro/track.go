package astro

import (
	"fmt"

	"sharedopt/internal/engine"
)

// Tracker executes halo-evolution queries over a universe, using
// materialized (pid, halo) views when they exist and re-clustering
// snapshots on the fly when they do not.
//
// Clustering a snapshot is deterministic, so the tracker computes each
// snapshot's assignment once and caches it — but it re-charges the full
// clustering cost to the meter on every query that needs it, modelling a
// query service where every query pays for the work it would do without
// the view. Materializing a view is what removes that recurring charge.
type Tracker struct {
	u       *Universe
	catalog *engine.Catalog
	// LinkLen is the friends-of-friends linking length.
	LinkLen float64
	// MinMembers is the minimum FoF group size that counts as a halo.
	MinMembers int
	// Parallelism is the worker count tracking queries opt into
	// (morsel-driven, see engine.Query.WithParallelism) and that halo
	// clustering uses for its candidate-pair phase (HaloFinder.
	// Parallelism). Values below 2 keep the serial paths; any value
	// produces identical rows, assignments and meter charges, so the
	// priced savings are unchanged.
	Parallelism int

	// finder is reused across snapshots so its grid, union-find, and
	// component scratch is allocated once per tracker, not once per
	// clustering.
	finder *HaloFinder
	cache  map[int]*cachedAssignment
}

type cachedAssignment struct {
	table *engine.Table
	// cost is the metered work of the clustering + table build, charged
	// again on every cache hit.
	cost engine.Meter
}

// NewTracker returns a tracker over the universe with the given FoF
// parameters.
func NewTracker(u *Universe, linkLen float64, minMembers int) *Tracker {
	return &Tracker{
		u:          u,
		catalog:    engine.NewCatalog(),
		LinkLen:    linkLen,
		MinMembers: minMembers,
		finder:     NewHaloFinder(linkLen, minMembers),
		cache:      make(map[int]*cachedAssignment),
	}
}

// ViewName returns the catalog name of a snapshot's assignment view.
func ViewName(snapshot int) string { return fmt.Sprintf("halo_assign_%02d", snapshot) }

// HasView reports whether the snapshot's assignment view is materialized.
func (tr *Tracker) HasView(snapshot int) bool {
	_, ok := tr.catalog.View(ViewName(snapshot))
	return ok
}

// MaterializeView builds and registers the (pid, halo) view of a
// snapshot, with a hash index on pid, charging the build to meter. It
// returns the view so callers can inspect its size and build cost.
func (tr *Tracker) MaterializeView(snapshot int, meter *engine.Meter) (*engine.MaterializedView, error) {
	if tr.HasView(snapshot) {
		return nil, fmt.Errorf("astro: view for snapshot %d already exists", snapshot)
	}
	tbl, err := tr.assignment(snapshot, meter)
	if err != nil {
		return nil, err
	}
	par := tr.Parallelism
	if par < 1 {
		par = 1
	}
	mv, err := engine.Materialize(ViewName(snapshot),
		engine.Scan(tbl, meter).WithParallelism(par), "pid", meter)
	if err != nil {
		return nil, err
	}
	if err := tr.catalog.AddView(mv); err != nil {
		return nil, err
	}
	return mv, nil
}

// DropView removes a snapshot's view (e.g. when its subscription lapses).
func (tr *Tracker) DropView(snapshot int) { tr.catalog.DropView(ViewName(snapshot)) }

// assignment returns the snapshot's (pid, halo) table, charging meter for
// the clustering work — either the recurring cost of computing it fresh
// (re-charged on cache hits), or nothing beyond lookups if the
// materialized view exists.
func (tr *Tracker) assignment(snapshot int, meter *engine.Meter) (*engine.Table, error) {
	if mv, ok := tr.catalog.View(ViewName(snapshot)); ok {
		return mv.Data, nil
	}
	if hit, ok := tr.cache[snapshot]; ok {
		if meter != nil {
			meter.Add(&hit.cost)
		}
		return hit.table, nil
	}
	tbl, err := tr.u.Snapshot(snapshot)
	if err != nil {
		return nil, err
	}
	var cost engine.Meter
	tr.finder.LinkLen, tr.finder.MinMembers = tr.LinkLen, tr.MinMembers
	// Clustering honors the tracker's worker count; parallel finds
	// produce identical assignments and identical meter charges, so the
	// cached cost (re-billed on every hit) is unaffected.
	tr.finder.Parallelism = tr.Parallelism
	assign, err := tr.finder.Find(tbl, &cost)
	if err != nil {
		return nil, err
	}
	at := AssignmentTable(ViewName(snapshot)+"_tmp", assign)
	cost.RowsBuilt += int64(at.Len())
	tr.cache[snapshot] = &cachedAssignment{table: at, cost: cost}
	if meter != nil {
		meter.Add(&cost)
	}
	return at, nil
}

// assignmentIndexed returns the assignment plus a pid index when a
// materialized view provides one for free; otherwise the index is nil and
// joins fall back to building a hash table per query.
func (tr *Tracker) assignmentIndexed(snapshot int, meter *engine.Meter) (*engine.Table, *engine.HashIndex, error) {
	if mv, ok := tr.catalog.View(ViewName(snapshot)); ok {
		return mv.Data, mv.Index, nil
	}
	tbl, err := tr.assignment(snapshot, meter)
	return tbl, nil, err
}

// Progenitor finds the halo in snapshot prev contributing the most
// particles to halo g of snapshot cur: it selects g's particles from
// cur's assignment, joins them with prev's assignment on pid, groups by
// prev halo and takes the top count. It returns false if g shares no
// particles with any halo of prev.
func (tr *Tracker) Progenitor(cur int, g int32, prev int, meter *engine.Meter) (int32, bool, error) {
	curTbl, err := tr.assignment(cur, meter)
	if err != nil {
		return 0, false, err
	}
	prevTbl, prevIdx, err := tr.assignmentIndexed(prev, meter)
	if err != nil {
		return 0, false, err
	}
	par := tr.Parallelism
	if par < 1 {
		par = 1
	}
	// The probe side is projected to (pid), so after the join the prev
	// side's halo column keeps its bare name.
	q := engine.Scan(curTbl, meter).WithParallelism(par).
		FilterIntEq("halo", int64(g)).Project("pid")
	if prevIdx != nil {
		q = q.IndexJoin(prevIdx, "pid")
	} else {
		q = q.HashJoin(engine.Scan(prevTbl, meter).WithParallelism(par), "pid", "pid")
	}
	// Top1 returns the winning group directly — no final result-set
	// materialization — while charging exactly what Top1By(...).Rows()
	// charged.
	row, ok, err := q.GroupCount("halo").Top1("count")
	if err != nil {
		return 0, false, err
	}
	if !ok {
		return 0, false, nil
	}
	return int32(row[0].Int), true, nil
}

// Chain traces halo g backward through the given 1-based snapshot
// numbers (descending, starting with the snapshot containing g). It
// returns one halo per snapshot, stopping early if a link has no
// progenitor.
func (tr *Tracker) Chain(g int32, snapshots []int, meter *engine.Meter) ([]int32, error) {
	if len(snapshots) == 0 {
		return nil, fmt.Errorf("astro: empty snapshot chain")
	}
	chain := []int32{g}
	cur := g
	for i := 0; i+1 < len(snapshots); i++ {
		next, ok, err := tr.Progenitor(snapshots[i], cur, snapshots[i+1], meter)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		chain = append(chain, next)
		cur = next
	}
	return chain, nil
}
