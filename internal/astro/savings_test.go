package astro

import (
	"testing"
	"time"

	"sharedopt/internal/engine"
)

// measureSmall runs the full savings measurement on a compact universe.
func measureSmall(t *testing.T) (*Universe, []UserSpec, *SavingsReport) {
	t.Helper()
	cfg := smallConfig()
	u := generate(t, cfg)
	tr := NewTracker(u, 2.5, 5)
	users, err := DefaultUsers(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	report, err := MeasureSavings(u, users, 2.5, 5, engine.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	return u, users, report
}

// The measured cost structure must reproduce the paper's shape:
// full-trace users cost more than strided users, and the final snapshot's
// view saves far more than any intermediate view (it participates in
// every direct-contribution query).
func TestSavingsShapeMatchesPaper(t *testing.T) {
	u, users, report := measureSmall(t)
	final := len(u.Tables)

	// Baselines ordered by stride within each γ group: stride 1 > 2 > 4.
	for _, base := range [][3]int{{0, 1, 2}, {3, 4, 5}} {
		b1 := report.BaselineUnits[base[0]]
		b2 := report.BaselineUnits[base[1]]
		b4 := report.BaselineUnits[base[2]]
		if !(b1 > b2 && b2 > b4) {
			t.Errorf("baselines not ordered by stride: %d, %d, %d", b1, b2, b4)
		}
	}

	for ui := range users {
		finalSaving := report.SavingUnits[ui][final-1]
		if finalSaving <= 0 {
			t.Errorf("user %d: final view saves %d", ui, finalSaving)
			continue
		}
		for s := 1; s < final; s++ {
			saving := report.SavingUnits[ui][s-1]
			if saving > finalSaving {
				t.Errorf("user %d: view %d saves %d > final view's %d",
					ui, s, saving, finalSaving)
			}
		}
	}

	// A stride-2 user gains nothing from views on snapshots she skips.
	stride2 := 1 // users[1] is γ1-every2nd
	for s := 1; s < final; s++ {
		if (final-s)%2 != 0 {
			if saving := report.SavingUnits[stride2][s-1]; saving > 0 {
				t.Errorf("stride-2 user saves %d from skipped snapshot %d", saving, s)
			}
		}
	}
}

// Savings must be real: running with every view materialized costs no
// more than baseline minus the largest single saving, and no single
// saving exceeds the baseline.
func TestSavingsAreConsistent(t *testing.T) {
	_, users, report := measureSmall(t)
	for ui := range users {
		for s, saving := range report.SavingUnits[ui] {
			if saving < 0 {
				t.Errorf("user %d view %d: negative saving %d", ui, s+1, saving)
			}
			if saving > report.BaselineUnits[ui] {
				t.Errorf("user %d view %d: saving %d exceeds baseline %d",
					ui, s+1, saving, report.BaselineUnits[ui])
			}
		}
	}
}

func TestSavingsDurationsAndDerivedCents(t *testing.T) {
	u, _, report := measureSmall(t)
	final := len(u.Tables)
	if report.BaselineDuration(0) <= 0 {
		t.Error("baseline duration should be positive")
	}
	if report.SavingDuration(0, final) <= 0 {
		t.Error("final view saving duration should be positive")
	}
	if report.SavingDuration(0, final) >= report.BaselineDuration(0) {
		t.Error("saving exceeds baseline duration")
	}

	cents, err := report.DeriveSavingsCents(18)
	if err != nil {
		t.Fatal(err)
	}
	if cents[0][final-1] != 18 {
		t.Errorf("anchor saving = %d cents, want 18", cents[0][final-1])
	}
	for ui := range cents {
		for s := range cents[ui] {
			if cents[ui][s] < 0 {
				t.Errorf("user %d view %d: negative cents", ui, s+1)
			}
			if cents[ui][s] > 18 {
				t.Errorf("user %d view %d: %d cents exceeds the anchor", ui, s+1, cents[ui][s])
			}
		}
	}
}

// The parallel measurement must be byte-identical to the serial loop at
// any worker count: same baselines, same savings, same derived cents.
func TestMeasureSavingsParallelMatchesSerial(t *testing.T) {
	cfg := smallConfig()
	u := generate(t, cfg)
	tr := NewTracker(u, 2.5, 5)
	users, err := DefaultUsers(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	model := engine.DefaultCostModel()
	serial, err := MeasureSavingsParallel(u, users, 2.5, 5, model, 1)
	if err != nil {
		t.Fatal(err)
	}
	serialCents, err := serial.DeriveSavingsCents(18)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		par, err := MeasureSavingsParallel(u, users, 2.5, 5, model, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for ui := range users {
			if par.BaselineUnits[ui] != serial.BaselineUnits[ui] {
				t.Errorf("workers=%d user %d: baseline %d != serial %d",
					workers, ui, par.BaselineUnits[ui], serial.BaselineUnits[ui])
			}
			for s := range par.SavingUnits[ui] {
				if par.SavingUnits[ui][s] != serial.SavingUnits[ui][s] {
					t.Errorf("workers=%d user %d view %d: saving %d != serial %d",
						workers, ui, s+1, par.SavingUnits[ui][s], serial.SavingUnits[ui][s])
				}
			}
		}
		cents, err := par.DeriveSavingsCents(18)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for ui := range cents {
			for s := range cents[ui] {
				if cents[ui][s] != serialCents[ui][s] {
					t.Errorf("workers=%d user %d view %d: %d cents != serial %d",
						workers, ui, s+1, cents[ui][s], serialCents[ui][s])
				}
			}
		}
	}
}

func TestMeasureSavingsValidation(t *testing.T) {
	u := generate(t, smallConfig())
	if _, err := MeasureSavings(u, nil, 2.5, 5, engine.DefaultCostModel()); err == nil {
		t.Error("no users accepted")
	}
}

func TestDeriveSavingsCentsValidation(t *testing.T) {
	empty := &SavingsReport{}
	if _, err := empty.DeriveSavingsCents(18); err == nil {
		t.Error("empty report accepted")
	}
	zero := &SavingsReport{SavingUnits: [][]int64{{0, 0}}}
	if _, err := zero.DeriveSavingsCents(18); err == nil {
		t.Error("zero anchor accepted")
	}
}

func TestUnitsDuration(t *testing.T) {
	model := engine.CostModel{WorkUnitsPerSecond: 1000}
	if got := unitsDuration(1500, model); got != 1500*time.Millisecond {
		t.Errorf("unitsDuration = %v, want 1.5s", got)
	}
	if got := unitsDuration(0, model); got != 0 {
		t.Errorf("unitsDuration(0) = %v", got)
	}
	// A zero rate falls back to the default model's rate.
	if got := unitsDuration(2_000_000, engine.CostModel{}); got != time.Second {
		t.Errorf("fallback rate: %v", got)
	}
}
