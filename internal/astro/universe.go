package astro

import (
	"fmt"
	"math"

	"sharedopt/internal/engine"
	"sharedopt/internal/stats"
)

// Config parameterizes a synthetic universe.
type Config struct {
	// Particles is the number of particles per snapshot.
	Particles int
	// Halos is the number of halos seeded at the first snapshot.
	Halos int
	// Snapshots is the number of time steps captured (27 in the paper's
	// workload).
	Snapshots int
	// BoxSize is the side length of the periodic simulation cube.
	BoxSize float64
	// HaloSigma is the standard deviation of particle offsets around
	// their halo center.
	HaloSigma float64
	// DriftSigma is the per-snapshot random drift of halo centers.
	DriftSigma float64
	// MigrationRate is the per-snapshot probability that a clustered
	// particle migrates to another halo (this is what makes "which halo
	// contributed the most particles" a non-trivial question).
	MigrationRate float64
	// BackgroundFrac is the fraction of particles left unclustered.
	BackgroundFrac float64
	// Seed makes generation reproducible.
	Seed uint64
}

// DefaultConfig returns a laptop-scale universe that still produces
// meaningful halo-evolution chains.
func DefaultConfig() Config {
	return Config{
		Particles:      4000,
		Halos:          12,
		Snapshots:      27,
		BoxSize:        100,
		HaloSigma:      1.0,
		DriftSigma:     0.8,
		MigrationRate:  0.04,
		BackgroundFrac: 0.15,
		Seed:           1,
	}
}

// Validate reports an error if the configuration is unusable.
func (c Config) Validate() error {
	switch {
	case c.Particles < 1:
		return fmt.Errorf("astro: %d particles", c.Particles)
	case c.Halos < 1:
		return fmt.Errorf("astro: %d halos", c.Halos)
	case c.Snapshots < 1:
		return fmt.Errorf("astro: %d snapshots", c.Snapshots)
	case c.BoxSize <= 0:
		return fmt.Errorf("astro: box size %v", c.BoxSize)
	case c.HaloSigma <= 0:
		return fmt.Errorf("astro: halo sigma %v", c.HaloSigma)
	case c.MigrationRate < 0 || c.MigrationRate > 1:
		return fmt.Errorf("astro: migration rate %v", c.MigrationRate)
	case c.BackgroundFrac < 0 || c.BackgroundFrac >= 1:
		return fmt.Errorf("astro: background fraction %v", c.BackgroundFrac)
	}
	return nil
}

// Universe is a generated simulation: one particle table per snapshot
// plus the generator's ground-truth halo membership (used to validate the
// halo finder, never by the queries themselves).
type Universe struct {
	Config
	// Tables[t] is snapshot t+1's particle table with schema
	// (pid int64, x, y, z, mass float64).
	Tables []*engine.Table
	// TrueHalo[t][p] is particle p's generating halo at snapshot t+1,
	// or -1 for background particles.
	TrueHalo [][]int32
}

// ParticleSchema is the schema of every snapshot table.
var ParticleSchema = engine.Schema{
	{Name: "pid", Type: engine.Int64},
	{Name: "x", Type: engine.Float64},
	{Name: "y", Type: engine.Float64},
	{Name: "z", Type: engine.Float64},
	{Name: "mass", Type: engine.Float64},
}

// Generate builds a universe: halo centers drift across snapshots and a
// fraction of particles migrates between halos each step, so halos have
// genuine progenitor structure.
func Generate(cfg Config) (*Universe, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := stats.NewRNG(cfg.Seed)
	u := &Universe{Config: cfg}

	centers := make([][3]float64, cfg.Halos)
	for h := range centers {
		for d := 0; d < 3; d++ {
			centers[h][d] = r.Float64() * cfg.BoxSize
		}
	}
	// Initial membership: background particles first, the rest spread
	// over halos (halo h gets a random weight to vary sizes).
	membership := make([]int32, cfg.Particles)
	weights := make([]float64, cfg.Halos)
	var wsum float64
	for h := range weights {
		weights[h] = 0.5 + r.Float64()
		wsum += weights[h]
	}
	for p := range membership {
		if r.Float64() < cfg.BackgroundFrac {
			membership[p] = -1
			continue
		}
		pick := r.Float64() * wsum
		for h := range weights {
			pick -= weights[h]
			if pick <= 0 {
				membership[p] = int32(h)
				break
			}
		}
	}

	for t := 0; t < cfg.Snapshots; t++ {
		if t > 0 {
			// Drift halo centers and migrate particles.
			for h := range centers {
				for d := 0; d < 3; d++ {
					centers[h][d] = wrap(centers[h][d]+r.NormFloat64(0, cfg.DriftSigma), cfg.BoxSize)
				}
			}
			for p := range membership {
				if membership[p] >= 0 && r.Float64() < cfg.MigrationRate {
					membership[p] = int32(r.Intn(cfg.Halos))
				}
			}
		}
		tbl := engine.NewTable(SnapshotTableName(t+1), ParticleSchema)
		truth := make([]int32, cfg.Particles)
		for p := 0; p < cfg.Particles; p++ {
			var pos [3]float64
			if h := membership[p]; h >= 0 {
				for d := 0; d < 3; d++ {
					pos[d] = wrap(centers[h][d]+r.NormFloat64(0, cfg.HaloSigma), cfg.BoxSize)
				}
				truth[p] = h
			} else {
				for d := 0; d < 3; d++ {
					pos[d] = r.Float64() * cfg.BoxSize
				}
				truth[p] = -1
			}
			tbl.MustAppend(engine.Row{
				engine.I(int64(p)),
				engine.F(pos[0]), engine.F(pos[1]), engine.F(pos[2]),
				engine.F(ParticleMass(p)),
			})
		}
		u.Tables = append(u.Tables, tbl)
		u.TrueHalo = append(u.TrueHalo, truth)
	}
	return u, nil
}

// ParticleMass returns particle p's mass, constant across snapshots
// (particles keep their identity as they move). Real N-body simulations
// use equal-mass particles; the synthetic universe spreads masses
// deterministically over [1, 1.5) — without consuming generator
// randomness, so positions and memberships are unchanged — to keep
// mass-weighted halo statistics (Tracker.HaloMasses) non-degenerate.
func ParticleMass(p int) float64 { return 1 + float64(p%8)/16 }

// SnapshotTableName returns the conventional table name of a snapshot
// (1-based).
func SnapshotTableName(snapshot int) string {
	return fmt.Sprintf("particles_%02d", snapshot)
}

// Snapshot returns the particle table of a 1-based snapshot number.
func (u *Universe) Snapshot(t int) (*engine.Table, error) {
	if t < 1 || t > len(u.Tables) {
		return nil, fmt.Errorf("astro: snapshot %d out of range [1,%d]", t, len(u.Tables))
	}
	return u.Tables[t-1], nil
}

func wrap(v, box float64) float64 {
	v = math.Mod(v, box)
	if v < 0 {
		v += box
	}
	return v
}
