// Package astro reproduces the paper's motivating use-case (Sections 2
// and 7.2): astronomers tracing the evolution of halos across the
// snapshots of an N-body universe simulation, sped up by per-snapshot
// materialized (particleID, haloID) views.
//
// The real datasets (4.8 GB per snapshot in the paper, 200 GB+ for
// state-of-the-art runs) are not available here, so the package builds
// the closest synthetic equivalent that exercises the same code paths: a
// configurable universe generator with drifting halos and migrating
// particles, a friends-of-friends halo finder, and the halo-tracking
// query workload running on internal/engine with and without the views.
// The per-view savings the pricing experiments consume come out of the
// engine's cost meter rather than being hard-coded, and a calibration
// test checks they reproduce the shape of the paper's measured numbers.
//
// # Map from paper concepts to code
//
//   - The universe simulation (Section 2) — Config/Generate
//     (universe.go) build one engine.Table of particles per snapshot.
//   - Friends-of-friends clustering — HaloFinder (halofind.go), a
//     grid-bucketed union-find with an optional deterministic parallel
//     candidate-pair phase (Parallelism).
//   - The two paper queries Q1/Q2 (Section 2) — Tracker.Progenitor and
//     Tracker.Chain (track.go); Tracker.RunWorkload (workload.go) runs
//     one astronomer's full query mix, charging every row touched to an
//     engine.Meter.
//   - The materialized views being priced — Tracker.MaterializeView /
//     DropView; a view removes the recurring re-clustering charge.
//   - The measured value table (Section 7.2's 18/7/3/16/9/4 cents) —
//     MeasureSavings (savings.go) measures each astronomer's workload
//     with no views and with each view alone, and DeriveSavingsCents
//     scales the unit savings to cents anchored at the paper's 18¢
//     final-snapshot saving. Per-halo mass statistics used by the
//     float-aggregate figure paths live in massstats.go.
//
// # Concurrency
//
// MeasureSavings fans the users × (1 + snapshots) workload grid out
// over a deterministic worker pool (MeasureSavingsParallel): one
// private Tracker — and so one HaloFinder and one assignment cache —
// per worker, results reduced in user/snapshot order. A run's metered
// work is a pure function of its parameters, so the report is
// byte-identical to the serial loop at any worker count.
package astro
