package astro

import (
	"testing"

	"sharedopt/internal/engine"
)

// A single HaloFinder reused across every snapshot of a universe must
// produce assignments and meter counts identical to a fresh finder per
// snapshot: the retained grid, union-find, and component scratch is an
// optimization, never observable state.
func TestHaloFinderReuseMatchesFresh(t *testing.T) {
	cfg := smallConfig()
	cfg.Snapshots = 6
	u := generate(t, cfg)
	const link, minMembers = 2.0, 3

	reused := NewHaloFinder(link, minMembers)
	for snap, tbl := range u.Tables {
		var warmMeter, freshMeter engine.Meter
		warm, err := reused.Find(tbl, &warmMeter)
		if err != nil {
			t.Fatalf("snapshot %d: reused finder: %v", snap+1, err)
		}
		fresh, err := FindHalos(tbl, link, minMembers, &freshMeter)
		if err != nil {
			t.Fatalf("snapshot %d: fresh finder: %v", snap+1, err)
		}
		if warmMeter != freshMeter {
			t.Fatalf("snapshot %d: reused meter %+v, fresh meter %+v",
				snap+1, warmMeter, freshMeter)
		}
		if len(warm.Sizes) != len(fresh.Sizes) {
			t.Fatalf("snapshot %d: reused %d halos, fresh %d",
				snap+1, len(warm.Sizes), len(fresh.Sizes))
		}
		for h := range warm.Sizes {
			if warm.Sizes[h] != fresh.Sizes[h] {
				t.Fatalf("snapshot %d halo %d: size %d vs %d",
					snap+1, h, warm.Sizes[h], fresh.Sizes[h])
			}
		}
		for p := range warm.Halo {
			if warm.Halo[p] != fresh.Halo[p] {
				t.Fatalf("snapshot %d particle %d: halo %d vs %d",
					snap+1, p, warm.Halo[p], fresh.Halo[p])
			}
		}
	}
}

// A warm reused finder allocates only its returned Assignment: the grid
// arrays, union-find forest, and component scratch all persist inside
// the finder.
func TestHaloFinderWarmAllocBudget(t *testing.T) {
	cfg := smallConfig()
	u := generate(t, cfg)
	f := NewHaloFinder(2.0, 3)
	tbl := u.Tables[0]
	if _, err := f.Find(tbl, nil); err != nil { // warm up scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := f.Find(tbl, nil); err != nil {
			t.Fatal(err)
		}
	})
	// The Assignment (Halo slice, Sizes slice, struct) plus sort-closure
	// noise; far below one allocation per particle or cell.
	const budget = 8
	if allocs > budget {
		t.Errorf("warm Find allocated %.1f times per run, budget %d", allocs, budget)
	}
}

// Property: the parallel candidate-pair phase is observationally
// identical to serial clustering at every worker count — same per-particle
// halo labels, same halo sizes (and therefore the same numbering, which
// depends on exact union-find roots), and the same meter counts — across
// every snapshot of a universe. This is the determinism contract that
// keeps parallel clustering from perturbing any priced saving.
func TestHaloFinderParallelMatchesSerial(t *testing.T) {
	cfg := smallConfig()
	cfg.Snapshots = 5
	u := generate(t, cfg)
	const link, minMembers = 2.0, 3

	for snap, tbl := range u.Tables {
		var serialMeter engine.Meter
		serialFinder := NewHaloFinder(link, minMembers)
		want, err := serialFinder.Find(tbl, &serialMeter)
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{2, 4, 8} {
			f := NewHaloFinder(link, minMembers)
			f.Parallelism = par
			var m engine.Meter
			got, err := f.Find(tbl, &m)
			if err != nil {
				t.Fatalf("snapshot %d par %d: %v", snap+1, par, err)
			}
			if m != serialMeter {
				t.Fatalf("snapshot %d par %d: meter %+v, serial %+v",
					snap+1, par, m, serialMeter)
			}
			if len(got.Sizes) != len(want.Sizes) {
				t.Fatalf("snapshot %d par %d: %d halos, serial %d",
					snap+1, par, len(got.Sizes), len(want.Sizes))
			}
			for h := range want.Sizes {
				if got.Sizes[h] != want.Sizes[h] {
					t.Fatalf("snapshot %d par %d halo %d: size %d, serial %d",
						snap+1, par, h, got.Sizes[h], want.Sizes[h])
				}
			}
			for p := range want.Halo {
				if got.Halo[p] != want.Halo[p] {
					t.Fatalf("snapshot %d par %d particle %d: halo %d, serial %d",
						snap+1, par, p, got.Halo[p], want.Halo[p])
				}
			}
		}
	}

	// A reused parallel finder must stay identical across snapshots too
	// (per-chunk edge scratch is retained and re-sliced).
	f := NewHaloFinder(link, minMembers)
	f.Parallelism = 4
	for snap, tbl := range u.Tables {
		var m, sm engine.Meter
		got, err := f.Find(tbl, &m)
		if err != nil {
			t.Fatal(err)
		}
		want, err := FindHalos(tbl, link, minMembers, &sm)
		if err != nil {
			t.Fatal(err)
		}
		if m != sm {
			t.Fatalf("reused snapshot %d: meter %+v, serial %+v", snap+1, m, sm)
		}
		for p := range want.Halo {
			if got.Halo[p] != want.Halo[p] {
				t.Fatalf("reused snapshot %d particle %d: halo %d, serial %d",
					snap+1, p, got.Halo[p], want.Halo[p])
			}
		}
	}
}

// The finder rejects snapshots whose cell grid would overflow the packed
// 21-bit-per-axis cell key (a bound the map-based grid did not have, at
// ~2 million cells per axis far beyond any physical snapshot).
func TestHaloFinderExtentOverflow(t *testing.T) {
	tbl := engine.NewTable("huge", ParticleSchema)
	tbl.MustAppend(engine.Row{engine.I(0), engine.F(0), engine.F(0), engine.F(0), engine.F(1)})
	tbl.MustAppend(engine.Row{engine.I(1), engine.F(1e9), engine.F(0), engine.F(0), engine.F(1)})
	if _, err := FindHalos(tbl, 1.0, 1, nil); err == nil {
		t.Fatal("expected cell-extent overflow error")
	}
	// Far apart but within the bound still works.
	ok := engine.NewTable("ok", ParticleSchema)
	ok.MustAppend(engine.Row{engine.I(0), engine.F(0), engine.F(0), engine.F(0), engine.F(1)})
	ok.MustAppend(engine.Row{engine.I(1), engine.F(100_000), engine.F(0), engine.F(0), engine.F(1)})
	if _, err := FindHalos(ok, 1.0, 1, nil); err != nil {
		t.Fatalf("in-bound extent rejected: %v", err)
	}
}
