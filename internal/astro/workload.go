package astro

import (
	"fmt"

	"sharedopt/internal/engine"
)

// UserSpec is one astronomer's workload: the halos she tracks in the
// final snapshot and the stride at which she samples snapshots (1 = every
// snapshot, 2 = every 2nd, 4 = every 4th — the paper's exploratory
// variants).
type UserSpec struct {
	Name   string
	Stride int
	Halos  []int32
}

// StridedSnapshots returns the 1-based snapshots a stride-k user queries,
// descending from the final snapshot: total, total-k, total-2k, ... ≥ 1.
func StridedSnapshots(stride, total int) []int {
	if stride < 1 || total < 1 {
		panic(fmt.Sprintf("astro: strided snapshots stride=%d total=%d", stride, total))
	}
	var out []int
	for s := total; s >= 1; s -= stride {
		out = append(out, s)
	}
	return out
}

// RunWorkload executes one astronomer's full workload, charging all work
// to meter. Per tracked halo g it runs the two paper queries:
//
//	(a) for every earlier strided snapshot t, the halo of t contributing
//	    the most particles to g (each query pairs the final snapshot
//	    with t — this is why the final snapshot's view is so valuable);
//	(b) the recursive progenitor chain down the strided snapshots.
func (tr *Tracker) RunWorkload(spec UserSpec, meter *engine.Meter) error {
	if spec.Stride < 1 {
		return fmt.Errorf("astro: user %s: stride %d", spec.Name, spec.Stride)
	}
	if len(spec.Halos) == 0 {
		return fmt.Errorf("astro: user %s: no tracked halos", spec.Name)
	}
	total := len(tr.u.Tables)
	snaps := StridedSnapshots(spec.Stride, total)
	for _, g := range spec.Halos {
		// (a) Direct contribution queries from the final snapshot.
		for _, t := range snaps[1:] {
			if _, _, err := tr.Progenitor(total, g, t, meter); err != nil {
				return fmt.Errorf("astro: user %s halo %d vs snapshot %d: %w",
					spec.Name, g, t, err)
			}
		}
		// (b) The recursive evolution chain.
		if _, err := tr.Chain(g, snaps, meter); err != nil {
			return fmt.Errorf("astro: user %s halo %d chain: %w", spec.Name, g, err)
		}
	}
	return nil
}

// DefaultUsers builds the paper's six astronomers over a universe: the
// halo sets γ1 and γ2 are drawn from the largest halos of the final
// snapshot, and each set is studied at strides 1, 2 and 4.
func DefaultUsers(tr *Tracker, halosPerSet int) ([]UserSpec, error) {
	if halosPerSet < 1 {
		return nil, fmt.Errorf("astro: halos per set %d", halosPerSet)
	}
	final := len(tr.u.Tables)
	tbl, err := tr.assignment(final, nil)
	if err != nil {
		return nil, err
	}
	halos, err := tbl.IntCol("halo")
	if err != nil {
		return nil, err
	}
	distinct := make(map[int64]bool)
	for _, h := range halos {
		distinct[h] = true
	}
	if len(distinct) < 2*halosPerSet {
		return nil, fmt.Errorf("astro: final snapshot has %d halos, need %d",
			len(distinct), 2*halosPerSet)
	}
	// Halo IDs are ordered by size (0 largest): interleave the top
	// 2×halosPerSet between the two groups.
	var gamma1, gamma2 []int32
	for h := int32(0); int(h) < 2*halosPerSet; h++ {
		if h%2 == 0 {
			gamma1 = append(gamma1, h)
		} else {
			gamma2 = append(gamma2, h)
		}
	}
	return []UserSpec{
		{Name: "γ1-full", Stride: 1, Halos: gamma1},
		{Name: "γ1-every2nd", Stride: 2, Halos: gamma1},
		{Name: "γ1-every4th", Stride: 4, Halos: gamma1},
		{Name: "γ2-full", Stride: 1, Halos: gamma2},
		{Name: "γ2-every2nd", Stride: 2, Halos: gamma2},
		{Name: "γ2-every4th", Stride: 4, Halos: gamma2},
	}, nil
}
