package astro

import (
	"fmt"

	"sharedopt/internal/engine"
)

// HaloMass is one halo's mass-weighted statistic: the total and mean
// mass of its member particles.
type HaloMass struct {
	Halo      int32
	TotalMass float64
	MeanMass  float64
}

// HaloMasses computes each halo's total and mean particle mass in one
// snapshot: the snapshot's particle table is joined with its (pid, halo)
// assignment on pid — through the materialized view's index when one
// exists, otherwise against the recurring clustering cost — and the mass
// column is aggregated per halo with the engine's Float64 group sum,
// ordered by halo id. Like every tracking query the work is charged to
// meter, it honors Tracker.Parallelism, and its results and charges are
// identical at any worker count (float sums accumulate in input row
// order even under a parallel plan).
func (tr *Tracker) HaloMasses(snapshot int, meter *engine.Meter) ([]HaloMass, error) {
	particles, err := tr.u.Snapshot(snapshot)
	if err != nil {
		return nil, err
	}
	assignTbl, assignIdx, err := tr.assignmentIndexed(snapshot, meter)
	if err != nil {
		return nil, err
	}
	par := tr.Parallelism
	if par < 1 {
		par = 1
	}
	// Probe with (pid, mass); after the join the assignment side's halo
	// column keeps its bare name.
	q := engine.Scan(particles, meter).WithParallelism(par).Project("pid", "mass")
	if assignIdx != nil {
		q = q.IndexJoin(assignIdx, "pid")
	} else {
		q = q.HashJoin(engine.Scan(assignTbl, meter).WithParallelism(par), "pid", "pid")
	}
	q = q.GroupSumFloat64("halo", "mass").OrderByInt("halo", false)
	sums, err := q.Rows()
	if err != nil {
		return nil, err
	}
	sizes, err := tr.HaloSizes(snapshot, meter)
	if err != nil {
		return nil, err
	}
	out := make([]HaloMass, 0, len(sums))
	for _, row := range sums {
		h := int32(row[0].Int)
		if int(h) >= len(sizes) {
			return nil, fmt.Errorf("astro: halo %d out of range (%d halos)", h, len(sizes))
		}
		out = append(out, HaloMass{
			Halo:      h,
			TotalMass: row[1].Float,
			MeanMass:  row[1].Float / float64(sizes[h]),
		})
	}
	return out, nil
}

// HaloSizes returns the member count of every halo in a snapshot,
// indexed by halo id, computed from the assignment relation (so it costs
// a grouped count over the assignment, not a re-clustering, and benefits
// from the materialized view exactly like the tracking queries).
func (tr *Tracker) HaloSizes(snapshot int, meter *engine.Meter) ([]int64, error) {
	assignTbl, err := tr.assignment(snapshot, meter)
	if err != nil {
		return nil, err
	}
	par := tr.Parallelism
	if par < 1 {
		par = 1
	}
	rows, err := engine.Scan(assignTbl, meter).WithParallelism(par).
		GroupCount("halo").OrderByInt("halo", false).Rows()
	if err != nil {
		return nil, err
	}
	sizes := make([]int64, len(rows))
	for i, row := range rows {
		h := row[0].Int
		if h != int64(i) {
			return nil, fmt.Errorf("astro: non-dense halo ids in assignment (%d at %d)", h, i)
		}
		sizes[i] = row[1].Int
	}
	return sizes, nil
}
