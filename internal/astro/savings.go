package astro

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sharedopt/internal/engine"
)

// SavingsReport holds the measured cost structure of the astronomy
// workload: per-user baseline work and the per-user, per-view saving —
// the quantities the paper measured on real data and that the pricing
// experiments consume as user values.
type SavingsReport struct {
	// Users are the measured workloads, in order.
	Users []UserSpec
	// BaselineUnits[u] is user u's workload cost with no views.
	BaselineUnits []int64
	// SavingUnits[u][s] is user u's cost reduction when only the view
	// for 1-based snapshot s+1 exists.
	SavingUnits [][]int64
	// Model converts units to simulated time.
	Model engine.CostModel
}

// BaselineDuration returns user u's simulated baseline runtime.
func (r *SavingsReport) BaselineDuration(u int) time.Duration {
	return unitsDuration(r.BaselineUnits[u], r.Model)
}

// SavingDuration returns user u's simulated runtime saving from the view
// on the 1-based snapshot.
func (r *SavingsReport) SavingDuration(u, snapshot int) time.Duration {
	return unitsDuration(r.SavingUnits[u][snapshot-1], r.Model)
}

func unitsDuration(units int64, model engine.CostModel) time.Duration {
	rate := model.WorkUnitsPerSecond
	if rate <= 0 {
		rate = engine.DefaultCostModel().WorkUnitsPerSecond
	}
	secs := units / rate
	rem := units % rate
	return time.Duration(secs)*time.Second + time.Duration(rem*int64(time.Second)/rate)
}

// MeasureSavings runs every user's workload against the universe once
// with no views (the baseline) and once per snapshot view, and reports
// the per-view savings. Because clustering results are cached inside the
// tracker (with costs re-charged per use), the measurement is exact and
// deterministic, not sampled. The users × (1 + snapshots) workload runs
// fan out over all cores; see MeasureSavingsParallel for the determinism
// argument.
func MeasureSavings(u *Universe, users []UserSpec, linkLen float64, minMembers int, model engine.CostModel) (*SavingsReport, error) {
	return MeasureSavingsParallel(u, users, linkLen, minMembers, model, runtime.GOMAXPROCS(0))
}

// MeasureSavingsParallel is MeasureSavings with an explicit worker
// count (≤ 1 keeps the serial loop). Every workload run is one job in a
// users × (1 + snapshots) grid; each worker owns a private Tracker —
// and therefore its own HaloFinder, assignment cache and view catalog —
// so runs never share mutable state. A run's metered work is a pure
// function of (universe, FoF parameters, user spec, materialized view):
// cache hits replay exactly the clustering cost a cold computation
// charges, so which worker ran which job, and in what order, cannot
// change any count. Results are reduced into the report in user-major,
// snapshot-minor order, making the savings byte-identical to the serial
// loop at any worker count (property-tested at n ∈ {2, 4, 8}).
func MeasureSavingsParallel(u *Universe, users []UserSpec, linkLen float64, minMembers int, model engine.CostModel, workers int) (*SavingsReport, error) {
	if len(users) == 0 {
		return nil, fmt.Errorf("astro: no users to measure")
	}
	total := len(u.Tables)
	perUser := 1 + total // job 0 is the baseline, job s measures view s
	runs := len(users) * perUser

	// runJob measures one cell of the grid on the worker's tracker: the
	// user's full workload with either no views (s == 0) or exactly the
	// view on snapshot s materialized. The view's build cost goes to a
	// throwaway meter — the report prices query savings, not builds.
	runJob := func(tr *Tracker, job int) (int64, error) {
		spec := users[job/perUser]
		s := job % perUser
		if s > 0 {
			if _, err := tr.MaterializeView(s, engine.NewMeter(model)); err != nil {
				return 0, err
			}
			defer tr.DropView(s)
		}
		meter := engine.NewMeter(model)
		if err := tr.RunWorkload(spec, meter); err != nil {
			return 0, err
		}
		return meter.WorkUnits(), nil
	}

	units := make([]int64, runs)
	if workers > runs {
		workers = runs
	}
	if workers <= 1 {
		// One tracker reused for all measurements: its assignment cache
		// is shared, but charges replay per use, so runs stay comparable.
		tr := NewTracker(u, linkLen, minMembers)
		for i := range units {
			v, err := runJob(tr, i)
			if err != nil {
				return nil, err
			}
			units[i] = v
		}
	} else {
		errs := make([]error, runs)
		var next atomic.Int64
		var failed atomic.Bool
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				tr := NewTracker(u, linkLen, minMembers)
				for !failed.Load() {
					i := int(next.Add(1)) - 1
					if i >= runs {
						return
					}
					if units[i], errs[i] = runJob(tr, i); errs[i] != nil {
						failed.Store(true)
					}
				}
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}

	report := &SavingsReport{Users: users, Model: model}
	for ui := range users {
		baseline := units[ui*perUser]
		report.BaselineUnits = append(report.BaselineUnits, baseline)
		savings := make([]int64, total)
		for s := 1; s <= total; s++ {
			savings[s-1] = baseline - units[ui*perUser+s]
		}
		report.SavingUnits = append(report.SavingUnits, savings)
	}
	return report, nil
}

// DeriveSavingsCents converts measured unit savings into cents per
// execution, scaled so the first user's final-snapshot saving equals
// anchorCents (the paper's 18 cents). This lets the Figure 1 experiment
// run on engine-derived values instead of the published constants while
// keeping the same monetary scale.
func (r *SavingsReport) DeriveSavingsCents(anchorCents int64) ([][]int64, error) {
	if len(r.SavingUnits) == 0 {
		return nil, fmt.Errorf("astro: empty savings report")
	}
	final := len(r.SavingUnits[0]) - 1
	anchorUnits := r.SavingUnits[0][final]
	if anchorUnits <= 0 {
		return nil, fmt.Errorf("astro: user 0 has no final-snapshot saving to anchor on")
	}
	out := make([][]int64, len(r.SavingUnits))
	for u, row := range r.SavingUnits {
		out[u] = make([]int64, len(row))
		for s, units := range row {
			if units < 0 {
				units = 0
			}
			// Round to nearest cent.
			out[u][s] = (units*anchorCents + anchorUnits/2) / anchorUnits
		}
	}
	return out, nil
}
