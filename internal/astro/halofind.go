package astro

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"sharedopt/internal/engine"
)

// Assignment maps each particle of one snapshot to a found halo
// (-1 = unclustered). Halo IDs are dense, 0-based, and ordered by
// descending member count (halo 0 is the largest), which makes them
// stable across identical inputs.
type Assignment struct {
	// Halo[p] is particle p's halo, or -1.
	Halo []int32
	// Sizes[h] is the member count of halo h.
	Sizes []int
}

// NumHalos returns the number of halos found.
func (a *Assignment) NumHalos() int { return len(a.Sizes) }

// HaloFinder runs grid-accelerated friends-of-friends clustering over
// particle snapshots: particles within LinkLen of each other belong to
// the same group, and groups with at least MinMembers particles become
// halos. The search hashes particles into cells of side LinkLen and only
// tests pairs in adjacent cells, the standard FoF accelerator.
//
// The grid is a flat sorted cell-key array (not a map): particles are
// sorted by packed cell key, neighbor cells are found by binary search,
// and the three z-adjacent cells of each (dx,dy) column share one search
// because their keys are consecutive. All grid, union-find, and
// component scratch is retained inside the finder, so reusing one finder
// across snapshots — the tracking workload calls it once per snapshot —
// makes a warm Find allocate only its result.
//
// Work is metered exactly as the original per-call implementation: one
// scan per particle (reading positions), one build per particle (cell
// hashing and union-find bookkeeping), one probe per candidate pair
// distance test. Clustering dominates the cost of tracking queries when
// no materialized assignment view exists — that expense is exactly what
// the paper's optimizations remove.
//
// Parallelism ≥ 2 runs the candidate-pair phase — the dominant cost —
// across that many workers: the particle-id space is split into
// contiguous chunks, each worker claims chunks and collects the pairs
// that pass the distance test (plus its chunk's pair-test count), and
// the passing pairs are then replayed through the union-find in chunk
// order. Because the serial loop visits pairs keyed by ascending p and
// chunks are ascending contiguous p-ranges, concatenating the per-chunk
// pair lists in chunk order reproduces the serial pair order exactly, so
// the replay makes byte-for-byte the serial link decisions: identical
// roots, identical halo numbering, identical pair counts, identical
// meters, at any worker count. The finder itself remains single-caller
// (not safe for concurrent use); the parallelism is internal.
type HaloFinder struct {
	// LinkLen is the friends-of-friends linking length.
	LinkLen float64
	// MinMembers is the minimum group size that counts as a halo.
	MinMembers int
	// Parallelism is the worker count for the candidate-pair phase
	// (< 2 = serial). Results and meters are identical at any value.
	Parallelism int

	// Per-call scratch, reused across Find calls.
	cx, cy, cz []int32   // per-particle cell coordinates
	keys       []uint64  // per-particle packed (biased) cell key
	order      []int32   // particle ids sorted by (key, id)
	cellKeys   []uint64  // unique sorted cell keys
	cellStart  []int32   // cellKeys[i]'s range in order is [cellStart[i], cellStart[i+1])
	gx, gy, gz []float64 // coordinates gathered into cell-sorted order
	orderTmp   []int32   // radix-sort scratch
	cellIdx    []int32   // per-particle index into cellKeys
	ranges     []int32   // per-cell 9 neighbor-column ranges in order space
	uf         unionFind // union-find forest, reset per call
	rootSize   []int32   // component size per root
	comps      []haloComp
	haloOf     []int32 // root -> halo id, -1 otherwise

	// Parallel-link scratch: per-chunk passing-pair lists and pair-test
	// counts (see linkParallel).
	chunkEdges [][]haloEdge
	chunkTests []int64
}

// haloEdge is one candidate pair that passed the distance test, recorded
// for the serial union-find replay of a parallel link phase.
type haloEdge struct{ p, q int32 }

type haloComp struct {
	root, size int32
}

// NewHaloFinder returns a finder with the given FoF parameters. The
// finder is not safe for concurrent use; create one per goroutine.
func NewHaloFinder(linkLen float64, minMembers int) *HaloFinder {
	return &HaloFinder{LinkLen: linkLen, MinMembers: minMembers}
}

// keyBits is the per-axis width of a packed cell coordinate: the cell
// grid of one snapshot may span at most 2^21−3 cells per axis (with
// coordinates measured in units of LinkLen, far beyond any physical
// snapshot).
const keyBits = 21

// Find clusters one snapshot and returns a freshly allocated Assignment;
// everything else lives in the finder's reusable scratch.
func (f *HaloFinder) Find(tbl *engine.Table, meter *engine.Meter) (*Assignment, error) {
	linkLen := f.LinkLen
	if linkLen <= 0 {
		return nil, fmt.Errorf("astro: linking length %v", linkLen)
	}
	if f.MinMembers < 1 {
		return nil, fmt.Errorf("astro: min members %d", f.MinMembers)
	}
	xs, err := tbl.FloatCol("x")
	if err != nil {
		return nil, err
	}
	ys, err := tbl.FloatCol("y")
	if err != nil {
		return nil, err
	}
	zs, err := tbl.FloatCol("z")
	if err != nil {
		return nil, err
	}
	n := tbl.Len()
	if meter != nil {
		meter.RowsScanned += int64(n)
	}

	// Cell coordinates (truncated toward zero, as the original map grid
	// did) and packed keys biased so neighbor offsets of ±1 stay in
	// range.
	f.cx = grow(f.cx, n)
	f.cy = grow(f.cy, n)
	f.cz = grow(f.cz, n)
	f.keys = grow(f.keys, n)
	var minX, minY, minZ, maxX, maxY, maxZ int32
	for p := 0; p < n; p++ {
		x, y, z := int32(xs[p]/linkLen), int32(ys[p]/linkLen), int32(zs[p]/linkLen)
		f.cx[p], f.cy[p], f.cz[p] = x, y, z
		if p == 0 {
			minX, minY, minZ = x, y, z
			maxX, maxY, maxZ = x, y, z
			continue
		}
		minX, maxX = min(minX, x), max(maxX, x)
		minY, maxY = min(minY, y), max(maxY, y)
		minZ, maxZ = min(minZ, z), max(maxZ, z)
	}
	const maxExtent = 1<<keyBits - 3
	if n > 0 && (int64(maxX)-int64(minX) > maxExtent ||
		int64(maxY)-int64(minY) > maxExtent ||
		int64(maxZ)-int64(minZ) > maxExtent) {
		return nil, fmt.Errorf("astro: snapshot spans more than 2^%d-3 cells per axis", keyBits)
	}
	// Bias leaves room for the −1 neighbor offset.
	biasX, biasY, biasZ := minX-1, minY-1, minZ-1
	pack := func(x, y, z int32) uint64 {
		return uint64(x-biasX)<<(2*keyBits) | uint64(y-biasY)<<keyBits | uint64(z-biasZ)
	}
	var maxKey uint64
	for p := 0; p < n; p++ {
		k := pack(f.cx[p], f.cy[p], f.cz[p])
		f.keys[p] = k
		if k > maxKey {
			maxKey = k
		}
	}

	// Sort particles by cell key, ties by particle id, so each cell's
	// run lists its particles in ascending id order — the same order the
	// map grid's append produced. LSD radix over the used key bytes is
	// stable, so starting from ascending ids preserves the id tie-break
	// without a comparator.
	f.order = grow(f.order, n)
	for p := range f.order {
		f.order[p] = int32(p)
	}
	f.orderTmp = grow(f.orderTmp, n)
	keys := f.keys
	src, dst := f.order, f.orderTmp
	for shift := 0; n > 0 && (shift == 0 || maxKey>>shift != 0); shift += 8 {
		var counts [257]int32
		for _, p := range src {
			counts[byte(keys[p]>>shift)+1]++
		}
		for b := 1; b < len(counts); b++ {
			counts[b] += counts[b-1]
		}
		for _, p := range src {
			b := byte(keys[p] >> shift)
			dst[counts[b]] = p
			counts[b]++
		}
		src, dst = dst, src
	}
	if n > 0 && &src[0] != &f.order[0] {
		copy(f.order, src)
	}
	// Unique cells and their ranges in order.
	f.cellKeys = f.cellKeys[:0]
	f.cellStart = f.cellStart[:0]
	for i := 0; i < n; i++ {
		k := keys[f.order[i]]
		if len(f.cellKeys) == 0 || f.cellKeys[len(f.cellKeys)-1] != k {
			f.cellKeys = append(f.cellKeys, k)
			f.cellStart = append(f.cellStart, int32(i))
		}
	}
	f.cellStart = append(f.cellStart, int32(n))
	if meter != nil {
		meter.RowsBuilt += int64(n)
	}

	// Gather coordinates into cell-sorted order so the candidate loop
	// reads contiguous memory, and record each particle's cell so the
	// nine neighbor-column ranges can be memoized per cell rather than
	// re-searched per particle.
	f.gx = grow(f.gx, n)
	f.gy = grow(f.gy, n)
	f.gz = grow(f.gz, n)
	for i, q := range f.order {
		f.gx[i], f.gy[i], f.gz[i] = xs[q], ys[q], zs[q]
	}
	numCells := len(f.cellKeys)
	f.cellIdx = grow(f.cellIdx, n)
	for ci := 0; ci < numCells; ci++ {
		for _, q := range f.order[f.cellStart[ci]:f.cellStart[ci+1]] {
			f.cellIdx[q] = int32(ci)
		}
	}
	f.ranges = grow(f.ranges, numCells*18)
	f.computeAllRanges()

	// Union-find over all candidate pairs. Particles sorted by packed
	// key list each (dx,dy) column's three z-adjacent cells — and hence
	// its candidates — as one contiguous run of order, because their
	// keys are consecutive; the run bounds are found once per cell. The
	// iteration visits exactly the pairs, in exactly the order, of the
	// original per-particle 27-cell map walk, so the probe count and the
	// union-find link decisions (which fix halo numbering) are
	// byte-for-byte reproducible. linkParallel visits the same pairs in
	// the same order (chunked by contiguous p-ranges) and replays the
	// passing ones serially, so both paths leave identical forests.
	f.uf.reset(n)
	link2 := linkLen * linkLen
	var pairTests int64
	if par := f.Parallelism; par >= 2 && n >= 2*linkChunk {
		pairTests = f.linkParallel(n, xs, ys, zs, link2, par)
	} else {
		pairTests = f.linkSerial(n, xs, ys, zs, link2)
	}
	if meter != nil {
		meter.RowsProbed += pairTests
	}

	// Collect components of sufficient size, ordered by size descending
	// (ties by smallest root for determinism).
	f.rootSize = grow(f.rootSize, n)
	clear(f.rootSize)
	for p := 0; p < n; p++ {
		f.rootSize[f.uf.find(p)]++
	}
	f.comps = f.comps[:0]
	for root, size := range f.rootSize {
		if int(size) >= f.MinMembers {
			f.comps = append(f.comps, haloComp{root: int32(root), size: size})
		}
	}
	sort.Slice(f.comps, func(i, j int) bool {
		if f.comps[i].size != f.comps[j].size {
			return f.comps[i].size > f.comps[j].size
		}
		return f.comps[i].root < f.comps[j].root
	})
	f.haloOf = grow(f.haloOf, n)
	for i := range f.haloOf {
		f.haloOf[i] = -1
	}
	sizes := make([]int, len(f.comps))
	for h, cmp := range f.comps {
		f.haloOf[cmp.root] = int32(h)
		sizes[h] = int(cmp.size)
	}
	assign := &Assignment{Halo: make([]int32, n), Sizes: sizes}
	for p := 0; p < n; p++ {
		assign.Halo[p] = f.haloOf[f.uf.find(p)]
	}
	return assign, nil
}

// linkSerial runs the candidate-pair union-find loop single-threaded —
// the reference pair order and link decisions the parallel path must
// reproduce. It returns the number of pair distance tests.
func (f *HaloFinder) linkSerial(n int, xs, ys, zs []float64, link2 float64) int64 {
	var pairTests int64
	order, gx, gy, gz := f.order, f.gx, f.gy, f.gz
	ranges, parent := f.ranges, f.uf.parent
	for p := int32(0); p < int32(n); p++ {
		base := int(f.cellIdx[p]) * 18
		px, py, pz := xs[p], ys[p], zs[p]
		rp := int32(-1) // p's root, found lazily on first link
		for col := 0; col < 9; col++ {
			a, b := ranges[base+2*col], ranges[base+2*col+1]
			for i := a; i < b; i++ {
				q := order[i]
				if q <= p {
					continue // test each pair once
				}
				pairTests++
				ddx := px - gx[i]
				ddy := py - gy[i]
				ddz := pz - gz[i]
				if ddx*ddx+ddy*ddy+ddz*ddz <= link2 {
					if rp < 0 {
						rp = int32(f.uf.find(int(p)))
					}
					if parent[q] == rp {
						continue // already in p's component
					}
					rq := int32(f.uf.find(int(q)))
					if rp != rq {
						// Inline rank link, keeping rp current: path
						// compression never changes roots, so caching
						// p's root preserves the reference's exact
						// link decisions.
						switch {
						case f.uf.rank[rp] < f.uf.rank[rq]:
							parent[rp] = rq
							rp = rq
						case f.uf.rank[rp] > f.uf.rank[rq]:
							parent[rq] = rp
						default:
							parent[rq] = rp
							f.uf.rank[rp]++
						}
					}
				}
			}
		}
	}
	return pairTests
}

// linkChunk is the number of particles one parallel link chunk covers.
// Chunk boundaries are invisible in the output (any chunking reproduces
// serial pair order); smaller chunks only buy load balancing, since pair
// density varies with local clustering.
const linkChunk = 256

// linkParallel is linkSerial's parallel twin. Phase 1 fans the candidate
// enumeration — the O(pair tests) bulk of clustering — out over
// contiguous particle-id chunks claimed from an atomic counter; workers
// share only read-only state (grid ranges, sorted order, coordinates)
// and write per-chunk pair lists and test counts. Phase 2 replays the
// passing pairs through the union-find in chunk order. The serial loop
// visits pairs sorted by ascending p, and chunks partition the p-axis
// contiguously, so the concatenated lists ARE the serial order of
// passing pairs; pairs that fail the distance test never touch the
// forest, and replaying the passing ones with the same rank rules makes
// the identical sequence of state changes — identical final roots, hence
// identical halo numbering. Pair-test counts sum to the serial count.
func (f *HaloFinder) linkParallel(n int, xs, ys, zs []float64, link2 float64, par int) int64 {
	chunks := (n + linkChunk - 1) / linkChunk
	if par > chunks {
		par = chunks
	}
	if cap(f.chunkEdges) < chunks {
		f.chunkEdges = append(f.chunkEdges[:cap(f.chunkEdges)],
			make([][]haloEdge, chunks-cap(f.chunkEdges))...)
	}
	f.chunkEdges = f.chunkEdges[:chunks]
	f.chunkTests = grow(f.chunkTests, chunks)
	order, gx, gy, gz := f.order, f.gx, f.gy, f.gz
	ranges, cellIdx := f.ranges, f.cellIdx
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				lo := int32(c * linkChunk)
				hi := lo + linkChunk
				if hi > int32(n) {
					hi = int32(n)
				}
				edges := f.chunkEdges[c][:0]
				var tests int64
				for p := lo; p < hi; p++ {
					base := int(cellIdx[p]) * 18
					px, py, pz := xs[p], ys[p], zs[p]
					for col := 0; col < 9; col++ {
						a, b := ranges[base+2*col], ranges[base+2*col+1]
						for i := a; i < b; i++ {
							q := order[i]
							if q <= p {
								continue // test each pair once
							}
							tests++
							ddx := px - gx[i]
							ddy := py - gy[i]
							ddz := pz - gz[i]
							if ddx*ddx+ddy*ddy+ddz*ddz <= link2 {
								edges = append(edges, haloEdge{p: p, q: q})
							}
						}
					}
				}
				f.chunkEdges[c] = edges
				f.chunkTests[c] = tests
			}
		}()
	}
	wg.Wait()

	// Replay the passing pairs in serial order with the serial loop's
	// exact link logic, including the cached-root fast path: edges are
	// globally sorted by p (ascending within a chunk, chunks ascending),
	// so p's root is found lazily once per particle and kept current
	// across its run of edges, just as linkSerial does.
	var pairTests int64
	parent := f.uf.parent
	rpFor := int32(-1)
	rp := int32(-1)
	for c := 0; c < chunks; c++ {
		pairTests += f.chunkTests[c]
		for _, e := range f.chunkEdges[c] {
			if e.p != rpFor {
				rpFor, rp = e.p, -1
			}
			if rp < 0 {
				rp = int32(f.uf.find(int(e.p)))
			}
			if parent[e.q] == rp {
				continue // already in p's component
			}
			rq := int32(f.uf.find(int(e.q)))
			if rp != rq {
				switch {
				case f.uf.rank[rp] < f.uf.rank[rq]:
					parent[rp] = rq
					rp = rq
				case f.uf.rank[rp] > f.uf.rank[rq]:
					parent[rq] = rp
				default:
					parent[rq] = rp
					f.uf.rank[rp]++
				}
			}
		}
	}
	return pairTests
}

// computeAllRanges fills every cell's nine neighbor-column ranges: for
// each (dx,dy) offset, the contiguous span of order covering the three
// z-adjacent cells, whose packed keys are lo..lo+2. Because cellKeys is
// sorted and each column's lo is cellKeys[ci] plus a fixed delta, each
// of the nine columns is one monotone two-pointer sweep — no binary
// searches.
func (f *HaloFinder) computeAllRanges() {
	numCells := len(f.cellKeys)
	col := 0
	for dx := int64(-1); dx <= 1; dx++ {
		for dy := int64(-1); dy <= 1; dy++ {
			delta := dx<<(2*keyBits) + dy<<keyBits - 1
			cj, ck := 0, 0
			for ci := 0; ci < numCells; ci++ {
				lo := uint64(int64(f.cellKeys[ci]) + delta)
				for cj < numCells && f.cellKeys[cj] < lo {
					cj++
				}
				if ck < cj {
					ck = cj
				}
				for ck < numCells && f.cellKeys[ck] <= lo+2 {
					ck++
				}
				f.ranges[ci*18+2*col] = f.cellStart[cj]
				f.ranges[ci*18+2*col+1] = f.cellStart[ck]
			}
			col++
		}
	}
}

// grow returns s resized to n, reusing capacity.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// unionFind is a weighted quick-union with path halving. The zero value
// is ready for reset.
type unionFind struct {
	parent []int32
	rank   []int8
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{}
	uf.reset(n)
	return uf
}

// reset reinitializes the forest to n singletons, reusing capacity.
func (uf *unionFind) reset(n int) {
	uf.parent = grow(uf.parent, n)
	uf.rank = grow(uf.rank, n)
	for i := range uf.parent {
		uf.parent[i] = int32(i)
		uf.rank[i] = 0
	}
}

func (uf *unionFind) find(p int) int {
	for int(uf.parent[p]) != p {
		uf.parent[p] = uf.parent[uf.parent[p]] // path halving
		p = int(uf.parent[p])
	}
	return p
}

func (uf *unionFind) union(p, q int) {
	rp, rq := uf.find(p), uf.find(q)
	if rp == rq {
		return
	}
	switch {
	case uf.rank[rp] < uf.rank[rq]:
		uf.parent[rp] = int32(rq)
	case uf.rank[rp] > uf.rank[rq]:
		uf.parent[rq] = int32(rp)
	default:
		uf.parent[rq] = int32(rp)
		uf.rank[rp]++
	}
}

// FindHalos clusters one snapshot with a freshly constructed finder —
// the one-shot convenience wrapper around HaloFinder, kept for callers
// that cluster a single snapshot. Reuse a HaloFinder when clustering
// many snapshots.
func FindHalos(tbl *engine.Table, linkLen float64, minMembers int, meter *engine.Meter) (*Assignment, error) {
	return NewHaloFinder(linkLen, minMembers).Find(tbl, meter)
}

// AssignmentTable converts an assignment into the (pid, haloID) relation
// the paper materializes, skipping unclustered particles.
func AssignmentTable(name string, a *Assignment) *engine.Table {
	t := engine.NewTable(name, engine.Schema{
		{Name: "pid", Type: engine.Int64},
		{Name: "halo", Type: engine.Int64},
	})
	for p, h := range a.Halo {
		if h < 0 {
			continue
		}
		t.MustAppend(engine.Row{engine.I(int64(p)), engine.I(int64(h))})
	}
	return t
}
