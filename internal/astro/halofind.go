package astro

import (
	"fmt"
	"sort"

	"sharedopt/internal/engine"
)

// Assignment maps each particle of one snapshot to a found halo
// (-1 = unclustered). Halo IDs are dense, 0-based, and ordered by
// descending member count (halo 0 is the largest), which makes them
// stable across identical inputs.
type Assignment struct {
	// Halo[p] is particle p's halo, or -1.
	Halo []int32
	// Sizes[h] is the member count of halo h.
	Sizes []int
}

// NumHalos returns the number of halos found.
func (a *Assignment) NumHalos() int { return len(a.Sizes) }

// FindHalos runs a grid-accelerated friends-of-friends clustering over a
// particle snapshot: particles within linkLen of each other belong to the
// same group, and groups with at least minMembers particles become halos.
// The search hashes particles into cells of side linkLen and only tests
// pairs in adjacent cells, the standard FoF accelerator.
//
// Work is metered: one scan per particle (reading positions), one build
// per particle (cell hashing and union-find bookkeeping), one probe per
// candidate pair distance test. Clustering dominates the cost of tracking
// queries when no materialized assignment view exists — that expense is
// exactly what the paper's optimizations remove.
func FindHalos(tbl *engine.Table, linkLen float64, minMembers int, meter *engine.Meter) (*Assignment, error) {
	if linkLen <= 0 {
		return nil, fmt.Errorf("astro: linking length %v", linkLen)
	}
	if minMembers < 1 {
		return nil, fmt.Errorf("astro: min members %d", minMembers)
	}
	xs, err := tbl.FloatCol("x")
	if err != nil {
		return nil, err
	}
	ys, err := tbl.FloatCol("y")
	if err != nil {
		return nil, err
	}
	zs, err := tbl.FloatCol("z")
	if err != nil {
		return nil, err
	}
	n := tbl.Len()
	if meter != nil {
		meter.RowsScanned += int64(n)
	}

	type cell struct{ cx, cy, cz int32 }
	grid := make(map[cell][]int32, n)
	at := func(p int32) cell {
		return cell{int32(xs[p] / linkLen), int32(ys[p] / linkLen), int32(zs[p] / linkLen)}
	}
	for p := int32(0); p < int32(n); p++ {
		c := at(p)
		grid[c] = append(grid[c], p)
	}
	if meter != nil {
		meter.RowsBuilt += int64(n)
	}

	uf := newUnionFind(n)
	link2 := linkLen * linkLen
	var pairTests int64
	for p := int32(0); p < int32(n); p++ {
		c := at(p)
		for dx := int32(-1); dx <= 1; dx++ {
			for dy := int32(-1); dy <= 1; dy++ {
				for dz := int32(-1); dz <= 1; dz++ {
					for _, q := range grid[cell{c.cx + dx, c.cy + dy, c.cz + dz}] {
						if q <= p {
							continue // test each pair once
						}
						pairTests++
						ddx := xs[p] - xs[q]
						ddy := ys[p] - ys[q]
						ddz := zs[p] - zs[q]
						if ddx*ddx+ddy*ddy+ddz*ddz <= link2 {
							uf.union(int(p), int(q))
						}
					}
				}
			}
		}
	}
	if meter != nil {
		meter.RowsProbed += pairTests
	}

	// Collect components of sufficient size, ordered by size descending
	// (ties by smallest root for determinism).
	counts := make(map[int]int)
	for p := 0; p < n; p++ {
		counts[uf.find(p)]++
	}
	type comp struct {
		root, size int
	}
	comps := make([]comp, 0, len(counts))
	for root, size := range counts {
		if size >= minMembers {
			comps = append(comps, comp{root, size})
		}
	}
	sort.Slice(comps, func(i, j int) bool {
		if comps[i].size != comps[j].size {
			return comps[i].size > comps[j].size
		}
		return comps[i].root < comps[j].root
	})
	haloOf := make(map[int]int32, len(comps))
	sizes := make([]int, len(comps))
	for h, cmp := range comps {
		haloOf[cmp.root] = int32(h)
		sizes[h] = cmp.size
	}
	assign := &Assignment{Halo: make([]int32, n), Sizes: sizes}
	for p := 0; p < n; p++ {
		if h, ok := haloOf[uf.find(p)]; ok {
			assign.Halo[p] = h
		} else {
			assign.Halo[p] = -1
		}
	}
	return assign, nil
}

// unionFind is a weighted quick-union with path halving.
type unionFind struct {
	parent []int32
	rank   []int8
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int32, n), rank: make([]int8, n)}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
	}
	return uf
}

func (uf *unionFind) find(p int) int {
	for int(uf.parent[p]) != p {
		uf.parent[p] = uf.parent[uf.parent[p]] // path halving
		p = int(uf.parent[p])
	}
	return p
}

func (uf *unionFind) union(p, q int) {
	rp, rq := uf.find(p), uf.find(q)
	if rp == rq {
		return
	}
	switch {
	case uf.rank[rp] < uf.rank[rq]:
		uf.parent[rp] = int32(rq)
	case uf.rank[rp] > uf.rank[rq]:
		uf.parent[rq] = int32(rp)
	default:
		uf.parent[rq] = int32(rp)
		uf.rank[rp]++
	}
}

// AssignmentTable converts an assignment into the (pid, haloID) relation
// the paper materializes, skipping unclustered particles.
func AssignmentTable(name string, a *Assignment) *engine.Table {
	t := engine.NewTable(name, engine.Schema{
		{Name: "pid", Type: engine.Int64},
		{Name: "halo", Type: engine.Int64},
	})
	for p, h := range a.Halo {
		if h < 0 {
			continue
		}
		t.MustAppend(engine.Row{engine.I(int64(p)), engine.I(int64(h))})
	}
	return t
}
