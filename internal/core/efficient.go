package core

import (
	"fmt"

	"sharedopt/internal/econ"
)

// This file computes the EFFICIENT (value-maximizing) outcome — the
// alternative a0 = argmax Σ Vi(a) − C(a) of the paper's Equation 3 — with
// full knowledge of true values. No truthful cost-recovering mechanism
// can reach it in general (Moulin & Shenker's impossibility, cited in
// Section 3); the ablation experiments use it as the upper bound against
// which AddOn's and SubstOn's efficiency loss is measured.

// EfficientAdditive returns the maximum achievable total utility of an
// additive game: each optimization is implemented exactly when the sum of
// all users' total values for it covers its cost, and then every
// interested user is granted access.
func EfficientAdditive(opts []Optimization, bids []AdditiveBid) (econ.Money, error) {
	byOpt, err := groupAdditiveBids(opts, bids)
	if err != nil {
		return 0, err
	}
	var utility econ.Money
	for _, opt := range opts {
		var total econ.Money
		for _, ub := range byOpt[opt.ID] {
			total += ub.bid
		}
		if total >= opt.Cost {
			utility += total - opt.Cost
		}
	}
	return utility, nil
}

// EfficientAdditiveOnline returns the maximum achievable total utility of
// an online additive game with hindsight: every user's value is her full
// declared stream, so the bound coincides with the offline optimum over
// total values.
func EfficientAdditiveOnline(opts []Optimization, bids map[OptID][]OnlineBid) (econ.Money, error) {
	var flat []AdditiveBid
	for opt, obs := range bids {
		for _, b := range obs {
			if err := b.Validate(); err != nil {
				return 0, err
			}
			flat = append(flat, AdditiveBid{User: b.User, Opt: opt, Value: b.Total()})
		}
	}
	return EfficientAdditive(opts, flat)
}

// EfficientSubstitutive returns the maximum total utility of a
// substitutive game: choose a set of optimizations to implement and an
// assignment of each user to one implemented member of her substitute
// set (or none), maximizing Σ assigned values − Σ implemented costs.
//
// The exact optimum is found by enumerating implementation subsets, which
// is exponential in the number of optimizations; it refuses games with
// more than EfficientSubstMaxOpts optimizations. (For the evaluation's
// 12-optimization games this is 4096 subsets — fine.) Within a subset the
// assignment is trivial: a user contributes her value if any of her
// substitutes is implemented.
func EfficientSubstitutive(opts []Optimization, bids []SubstBid) (econ.Money, error) {
	if len(opts) > EfficientSubstMaxOpts {
		return 0, fmt.Errorf("core: efficient substitutive bound limited to %d optimizations, got %d",
			EfficientSubstMaxOpts, len(opts))
	}
	if _, err := validateOpts(opts); err != nil {
		return 0, err
	}
	for _, b := range bids {
		if err := b.Validate(); err != nil {
			return 0, err
		}
	}
	n := len(opts)
	var best econ.Money // the empty set achieves 0
	for mask := 1; mask < 1<<n; mask++ {
		var cost econ.Money
		implemented := make(map[OptID]bool, n)
		for i, o := range opts {
			if mask&(1<<i) != 0 {
				cost += o.Cost
				implemented[o.ID] = true
			}
		}
		var value econ.Money
		for _, b := range bids {
			for _, j := range b.Opts {
				if implemented[j] {
					value += b.Value
					break
				}
			}
		}
		if u := value - cost; u > best {
			best = u
		}
	}
	return best, nil
}

// EfficientSubstMaxOpts bounds the exhaustive subset enumeration of
// EfficientSubstitutive.
const EfficientSubstMaxOpts = 20
