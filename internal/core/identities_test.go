package core

import (
	"testing"

	"sharedopt/internal/econ"
)

// Section 5.2, Alice's example, run through the online mechanism: Alice's
// value is (1,1,[101]) and 99 other users value the optimization at 1.
// With a single identity only Alice is serviced and she pays the whole
// cost; with a second dummy identity all 101 identities are serviced at $1
// and Alice's utility jumps from 0 to 99 — while nobody else is worse off
// (Proposition 2).
func TestAddOnAliceMultipleIdentities(t *testing.T) {
	cost := dollars(101)
	oneIdentity := NewAddOn(Optimization{ID: 1, Cost: cost})
	mustSubmit(t, oneIdentity.Submit(OnlineBid{User: 0, Start: 1, End: 1, Values: []econ.Money{dollars(101)}}))
	for u := UserID(1); u <= 99; u++ {
		mustSubmit(t, oneIdentity.Submit(OnlineBid{User: u, Start: 1, End: 1, Values: []econ.Money{dollars(1)}}))
	}
	r := oneIdentity.AdvanceSlot()
	if !grantsEqual(r.NewGrants, Grant{0, 1}) {
		t.Fatalf("only Alice should be serviced, got %d grants", len(r.NewGrants))
	}
	if r.Departures[0] != dollars(101) {
		t.Fatalf("Alice pays %v, want $101", r.Departures[0])
	}
	smallUserUtilityBefore := econ.Money(0) // not serviced, not charged

	twoIdentities := NewAddOn(Optimization{ID: 1, Cost: cost})
	mustSubmit(t, twoIdentities.Submit(OnlineBid{User: 0, Start: 1, End: 1, Values: []econ.Money{dollars(101)}}))
	mustSubmit(t, twoIdentities.Submit(OnlineBid{User: 100, Start: 1, End: 1, Values: []econ.Money{dollars(101)}}))
	for u := UserID(1); u <= 99; u++ {
		mustSubmit(t, twoIdentities.Submit(OnlineBid{User: u, Start: 1, End: 1, Values: []econ.Money{dollars(1)}}))
	}
	r = twoIdentities.AdvanceSlot()
	if len(r.NewGrants) != 101 {
		t.Fatalf("%d grants, want 101", len(r.NewGrants))
	}
	alicePays := r.Departures[0] + r.Departures[100]
	if alicePays != dollars(2) {
		t.Fatalf("Alice pays %v across identities, want $2", alicePays)
	}
	// Alice's utility rises from 0 to 99.
	if aliceUtility := dollars(101) - alicePays; aliceUtility != dollars(99) {
		t.Errorf("Alice's utility = %v, want $99", aliceUtility)
	}
	// Proposition 2: no other user's utility decreases. Each small user
	// now pays exactly her value — utility 0, same as before.
	for u := UserID(1); u <= 99; u++ {
		utility := dollars(1) - r.Departures[u]
		if utility < smallUserUtilityBefore {
			t.Fatalf("user %d's utility decreased to %v", u, utility)
		}
	}
	// The cloud still recovers its cost.
	if rev := twoIdentities.TotalRevenue(); rev < cost {
		t.Errorf("revenue %v below cost %v", rev, cost)
	}
}

// Section 6.2: with substitutable optimizations, dummy identities can hurt
// other users. Users {1,2,3} bid ({1},5), ({1,2},2.51), ({2},7) for
// optimizations with C1=6, C2=5. Without dummies user 3's utility is 4.5;
// when user 1 splits into 1' and 1” bidding 2.5 each for optimization 1,
// both optimizations are implemented and user 3's utility drops to 2.
func TestSubstOffDummyIdentitiesCanHurtOthers(t *testing.T) {
	opts := []Optimization{{ID: 1, Cost: dollars(6)}, {ID: 2, Cost: dollars(5)}}

	// Baseline (no dummies) is covered by TestSubstOffSection62Baseline:
	// opt 2 at 2.5 for users {2,3}; user 3's utility 7-2.5 = 4.5.

	withDummies := []SubstBid{
		{User: 10, Opts: []OptID{1}, Value: dollars(2.5)}, // identity 1'
		{User: 11, Opts: []OptID{1}, Value: dollars(2.5)}, // identity 1''
		{User: 2, Opts: []OptID{1, 2}, Value: dollars(2.51)},
		{User: 3, Opts: []OptID{2}, Value: dollars(7)},
	}
	out, err := SubstOff(opts, withDummies)
	if err != nil {
		t.Fatal(err)
	}
	// Optimization 1 now carries {1', 1'', 2} at 2 each.
	if !usersEqual(out.Serviced[1], 2, 10, 11) {
		t.Fatalf("opt 1 serviced = %v, want [2 10 11]", out.Serviced[1])
	}
	if out.Payment(10, 1) != dollars(2) || out.Payment(2, 1) != dollars(2) {
		t.Errorf("opt 1 shares wrong: %v, %v", out.Payment(10, 1), out.Payment(2, 1))
	}
	// Optimization 2 is then implemented for user 3 alone at 5.
	if !usersEqual(out.Serviced[2], 3) || out.Payment(3, 2) != dollars(5) {
		t.Fatalf("opt 2: %v at %v, want user 3 at $5", out.Serviced[2], out.Payment(3, 2))
	}
	// User 1's combined utility: 5 − (2+2) = 1 > 0 (she gains).
	if u1 := dollars(5) - out.Payment(10, 1) - out.Payment(11, 1); u1 != dollars(1) {
		t.Errorf("user 1 utility = %v, want $1", u1)
	}
	// User 3's utility fell from 4.5 to 2 — the paper's point that
	// substitutive dummies can hurt others (unlike the additive case),
	// though doing so requires knowing everyone's bids.
	if u3 := dollars(7) - out.Payment(3, 2); u3 != dollars(2) {
		t.Errorf("user 3 utility = %v, want $2", u3)
	}
}
