package core

import (
	"testing"
	"testing/quick"

	"sharedopt/internal/econ"
	"sharedopt/internal/stats"
)

// randomBids converts raw fuzz input into a valid bid map with values in
// [0, $10).
func randomBids(raws []int64) map[UserID]econ.Money {
	bids := make(map[UserID]econ.Money, len(raws))
	for i, r := range raws {
		if r < 0 {
			r = -r
		}
		bids[UserID(i+1)] = econ.Money(r % int64(10*econ.Dollar))
	}
	return bids
}

// Property: Shapley always recovers the cost when it implements, and the
// share structure is a threshold: serviced bids ≥ share, dropped bids <
// share.
func TestShapleyCostRecoveryAndThreshold(t *testing.T) {
	f := func(costRaw int64, raws []int64) bool {
		if costRaw < 0 {
			costRaw = -costRaw
		}
		cost := econ.Money(costRaw%int64(20*econ.Dollar)) + 1
		bids := randomBids(raws)
		res, err := Shapley(cost, bids)
		if err != nil {
			return false
		}
		if !res.Implemented() {
			return res.Share == 0
		}
		if res.Revenue() < cost {
			return false
		}
		serviced := make(map[UserID]bool)
		for _, u := range res.Serviced {
			serviced[u] = true
			if bids[u] < res.Share {
				return false // serviced below the price
			}
		}
		for u, b := range bids {
			if !serviced[u] && b >= res.Share {
				// A dropped user bidding at least the final share would
				// have been self-supporting — contradiction.
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property (population monotonicity): adding one more bidder never shrinks
// the serviced set and never raises the share.
func TestShapleyPopulationMonotonicity(t *testing.T) {
	f := func(costRaw, extraRaw int64, raws []int64) bool {
		if costRaw < 0 {
			costRaw = -costRaw
		}
		if extraRaw < 0 {
			extraRaw = -extraRaw
		}
		cost := econ.Money(costRaw%int64(20*econ.Dollar)) + 1
		bids := randomBids(raws)
		before, err := Shapley(cost, bids)
		if err != nil {
			return false
		}
		grown := make(map[UserID]econ.Money, len(bids)+1)
		for u, b := range bids {
			grown[u] = b
		}
		grown[UserID(len(raws)+100)] = econ.Money(extraRaw % int64(10*econ.Dollar))
		after, err := Shapley(cost, grown)
		if err != nil {
			return false
		}
		if !before.Implemented() {
			return true
		}
		if !after.Implemented() || after.Share > before.Share {
			return false
		}
		inAfter := make(map[UserID]bool, len(after.Serviced))
		for _, u := range after.Serviced {
			inAfter[u] = true
		}
		for _, u := range before.Serviced {
			if !inAfter[u] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property (offline truthfulness): no single-user deviation improves that
// user's utility, for any profile of other bids.
func TestShapleyTruthfulness(t *testing.T) {
	f := func(costRaw, trueRaw, lieRaw int64, raws []int64) bool {
		if costRaw < 0 {
			costRaw = -costRaw
		}
		if trueRaw < 0 {
			trueRaw = -trueRaw
		}
		if lieRaw < 0 {
			lieRaw = -lieRaw
		}
		cost := econ.Money(costRaw%int64(20*econ.Dollar)) + 1
		truth := econ.Money(trueRaw % int64(10*econ.Dollar))
		lie := econ.Money(lieRaw % int64(10*econ.Dollar))
		me := UserID(999)

		utility := func(bid econ.Money) econ.Money {
			bids := randomBids(raws)
			bids[me] = bid
			res, err := Shapley(cost, bids)
			if err != nil {
				panic(err)
			}
			for _, u := range res.Serviced {
				if u == me {
					return truth - res.Share
				}
			}
			return 0
		}
		return utility(lie) <= utility(truth)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// onlineScenario is a randomly generated online additive game.
type onlineScenario struct {
	cost  econ.Money
	z     Slot
	users []OnlineBid
}

func genOnlineScenario(r *stats.RNG, nUsers int) onlineScenario {
	z := Slot(4 + r.Intn(5))
	sc := onlineScenario{
		cost: econ.Money(r.Int63n(int64(6*econ.Dollar))) + 1,
		z:    z,
	}
	for u := 0; u < nUsers; u++ {
		start := Slot(1 + r.Intn(int(z)))
		end := start + Slot(r.Intn(int(z-start)+1))
		values := make([]econ.Money, end-start+1)
		for i := range values {
			values[i] = econ.Money(r.Int63n(int64(2 * econ.Dollar)))
		}
		sc.users = append(sc.users, OnlineBid{User: UserID(u + 1), Start: start, End: end, Values: values})
	}
	return sc
}

// runAddOn plays a scenario truthfully and returns the mechanism.
func runAddOn(t *testing.T, sc onlineScenario) *AddOn {
	t.Helper()
	game := NewAddOn(Optimization{ID: 1, Cost: sc.cost})
	for _, b := range sc.users {
		mustSubmit(t, game.Submit(b))
	}
	for s := Slot(1); s <= sc.z; s++ {
		game.AdvanceSlot()
	}
	game.Close()
	return game
}

// Property: AddOn recovers the cost whenever it implements, and collects
// nothing otherwise.
func TestAddOnCostRecoveryRandomGames(t *testing.T) {
	r := stats.NewRNG(1001)
	for trial := 0; trial < 400; trial++ {
		sc := genOnlineScenario(r, 1+r.Intn(6))
		game := runAddOn(t, sc)
		if _, ok := game.Implemented(); ok {
			if game.TotalRevenue() < sc.cost {
				t.Fatalf("trial %d: revenue %v < cost %v\nscenario: %+v",
					trial, game.TotalRevenue(), sc.cost, sc)
			}
		} else if game.TotalRevenue() != 0 {
			t.Fatalf("trial %d: collected %v without implementing", trial, game.TotalRevenue())
		}
	}
}

// Property: AddOn is deterministic — replaying the same scenario yields
// identical payments (guards against map-iteration order leaks).
func TestAddOnDeterministic(t *testing.T) {
	r := stats.NewRNG(2002)
	for trial := 0; trial < 50; trial++ {
		sc := genOnlineScenario(r, 1+r.Intn(6))
		a, b := runAddOn(t, sc), runAddOn(t, sc)
		for _, u := range sc.users {
			pa, oka := a.Payment(u.User)
			pb, okb := b.Payment(u.User)
			if pa != pb || oka != okb {
				t.Fatalf("trial %d: nondeterministic payment for user %d: %v vs %v",
					trial, u.User, pa, pb)
			}
		}
	}
}

// deviations returns untruthful variants of a bid: scaled values, a
// delayed start (hiding early value), and a truncated declaration.
func deviations(b OnlineBid) []OnlineBid {
	var devs []OnlineBid
	for _, num := range []int64{0, 1, 3, 6} { // ×0, ×0.25, ×0.75, ×1.5
		d := OnlineBid{User: b.User, Start: b.Start, End: b.End,
			Values: make([]econ.Money, len(b.Values))}
		for i, v := range b.Values {
			d.Values[i] = v.MulInt(num) / 4
		}
		devs = append(devs, d)
	}
	if b.End > b.Start {
		// Hide the first slot's value (paper Example 2's cheat).
		d := OnlineBid{User: b.User, Start: b.Start + 1, End: b.End,
			Values: append([]econ.Money(nil), b.Values[1:]...)}
		devs = append(devs, d)
		// Declare only the first slot.
		d2 := OnlineBid{User: b.User, Start: b.Start, End: b.Start,
			Values: []econ.Money{b.Values[0]}}
		devs = append(devs, d2)
	}
	return devs
}

// Property (online truthfulness, model-free worst case): when the deviator
// is the last arrival and no bids are submitted after hers — exactly the
// worst case of the paper's Proposition 1 — no deviation beats truthful
// bidding in realized utility.
func TestAddOnWorstCaseTruthfulness(t *testing.T) {
	r := stats.NewRNG(3003)
	for trial := 0; trial < 300; trial++ {
		sc := genOnlineScenario(r, 1+r.Intn(5))
		// Make the last user the latest arrival.
		latest := Slot(1)
		for _, b := range sc.users[:len(sc.users)-1] {
			if b.Start > latest {
				latest = b.Start
			}
		}
		dev := &sc.users[len(sc.users)-1]
		if dev.Start < latest {
			shift := latest - dev.Start
			dev.Start += shift
			dev.End += shift
			if dev.End > sc.z {
				dev.End = sc.z
				if dev.Start > sc.z {
					dev.Start = sc.z
				}
				dev.Values = dev.Values[:dev.End-dev.Start+1]
			}
		}
		truth := *dev

		play := func(declared OnlineBid) econ.Money {
			game := NewAddOn(Optimization{ID: 1, Cost: sc.cost})
			for _, b := range sc.users[:len(sc.users)-1] {
				mustSubmit(t, game.Submit(b))
			}
			mustSubmit(t, game.Submit(declared))
			var value econ.Money
			for s := Slot(1); s <= sc.z; s++ {
				rep := game.AdvanceSlot()
				for _, g := range rep.Active {
					if g.User == truth.User && s >= truth.Start && s <= truth.End {
						value += truth.Values[s-truth.Start]
					}
				}
			}
			game.Close()
			p, _ := game.Payment(truth.User)
			return value - p
		}

		truthful := play(truth)
		for di, d := range deviations(truth) {
			if got := play(d); got > truthful {
				t.Fatalf("trial %d deviation %d: utility %v beats truthful %v\nscenario %+v\ndeviation %+v",
					trial, di, got, truthful, sc, d)
			}
		}
	}
}

// Property: SubstOn recovers each implemented optimization's cost from the
// users granted access to it.
func TestSubstOnCostRecoveryRandomGames(t *testing.T) {
	r := stats.NewRNG(4004)
	for trial := 0; trial < 300; trial++ {
		nOpts := 2 + r.Intn(4)
		opts := make([]Optimization, nOpts)
		for j := range opts {
			opts[j] = Optimization{ID: OptID(j + 1), Cost: econ.Money(r.Int63n(int64(5*econ.Dollar))) + 1}
		}
		z := Slot(3 + r.Intn(4))
		game := NewSubstOn(opts)
		nUsers := 1 + r.Intn(6)
		for u := 0; u < nUsers; u++ {
			start := Slot(1 + r.Intn(int(z)))
			end := start + Slot(r.Intn(int(z-start)+1))
			values := make([]econ.Money, end-start+1)
			for i := range values {
				values[i] = econ.Money(r.Int63n(int64(2 * econ.Dollar)))
			}
			k := 1 + r.Intn(nOpts)
			optIDs := make([]OptID, 0, k)
			for _, idx := range r.SampleK(nOpts, k) {
				optIDs = append(optIDs, opts[idx].ID)
			}
			bid := OnlineSubstBid{User: UserID(u + 1), Opts: optIDs, Start: start, End: end, Values: values}
			mustSubmit(t, game.Submit(bid))
		}
		for s := Slot(1); s <= z; s++ {
			game.AdvanceSlot()
		}
		game.Close()

		// Per-optimization recovery: sum the payments of users granted
		// each optimization.
		revenue := make(map[OptID]econ.Money)
		for u := 1; u <= nUsers; u++ {
			id := UserID(u)
			if j, ok := game.GrantedOpt(id); ok {
				p, paid := game.Payment(id)
				if !paid {
					t.Fatalf("trial %d: user %d granted but never settled", trial, id)
				}
				revenue[j] += p
			} else if p, _ := game.Payment(id); p != 0 {
				t.Fatalf("trial %d: unserviced user %d paid %v", trial, id, p)
			}
		}
		for _, o := range opts {
			if _, implemented := game.Implemented(o.ID); implemented {
				if revenue[o.ID] < o.Cost {
					t.Fatalf("trial %d: opt %d revenue %v < cost %v",
						trial, o.ID, revenue[o.ID], o.Cost)
				}
			} else if revenue[o.ID] != 0 {
				t.Fatalf("trial %d: opt %d not implemented but collected %v",
					trial, o.ID, revenue[o.ID])
			}
		}
	}
}
