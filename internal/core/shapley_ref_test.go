package core

import (
	"testing"

	"sharedopt/internal/econ"
	"sharedopt/internal/stats"
)

// referenceShapley is the paper's drop-until-stable loop, kept verbatim as
// a differential oracle for the sorted-prefix implementation.
func referenceShapley(cost econ.Money, bids map[UserID]econ.Money) ShapleyResult {
	serviced := make(map[UserID]bool, len(bids))
	for u := range bids {
		serviced[u] = true
	}
	for len(serviced) > 0 {
		share := cost.DivCeil(len(serviced))
		changed := false
		for u := range serviced {
			if bids[u] < share {
				delete(serviced, u)
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	if len(serviced) == 0 {
		return ShapleyResult{}
	}
	users := make([]UserID, 0, len(serviced))
	for u := range serviced {
		users = append(users, u)
	}
	sortUsers(users)
	return ShapleyResult{Serviced: users, Share: cost.DivCeil(len(users))}
}

// The sorted-prefix (radix) implementation must agree with the reference
// loop on every population size, including the large ones that take the
// radix-sort path, with duplicate-heavy and boundary-tied bids.
func TestShapleyMatchesReferenceLoop(t *testing.T) {
	r := stats.NewRNG(4242)
	sizes := []int{1, 2, 7, 64, 127, 128, 129, 500, 2000}
	for trial := 0; trial < 40; trial++ {
		for _, n := range sizes {
			cost := econ.Money(r.Int63n(int64(econ.Dollar.MulInt(int64(n))))) + 1
			bids := make(map[UserID]econ.Money, n)
			for u := 1; u <= n; u++ {
				var b econ.Money
				switch r.Intn(4) {
				case 0: // heavy duplicates
					b = econ.FromCents(int64(r.Intn(4)) * 25)
				case 1: // exact share boundaries
					b = cost.DivCeil(1 + r.Intn(n))
				default:
					b = econ.Money(r.Int63n(int64(econ.Dollar)))
				}
				bids[UserID(u)] = b
			}
			got, err := Shapley(cost, bids)
			if err != nil {
				t.Fatal(err)
			}
			want := referenceShapley(cost, bids)
			if got.Share != want.Share || !usersEqual(got.Serviced, want.Serviced...) {
				t.Fatalf("n=%d cost=%v: sorted-prefix %+v, reference %+v",
					n, cost, got, want)
			}
		}
	}
}

// Zero-valued and all-equal bids exercise the radix sort's degenerate
// digit distributions (identity passes).
func TestShapleyRadixDegenerateInputs(t *testing.T) {
	n := 300
	allZero := make(map[UserID]econ.Money, n)
	allEqual := make(map[UserID]econ.Money, n)
	for u := 1; u <= n; u++ {
		allZero[UserID(u)] = 0
		allEqual[UserID(u)] = econ.FromCents(50)
	}
	res, err := Shapley(econ.FromDollars(10), allZero)
	if err != nil {
		t.Fatal(err)
	}
	if res.Implemented() {
		t.Fatalf("all-zero bids must not implement, got %+v", res)
	}
	res, err = Shapley(econ.FromDollars(10), allEqual)
	if err != nil {
		t.Fatal(err)
	}
	// 300 users × 50¢ covers $10 easily: everyone serviced at the
	// ceiling share.
	if len(res.Serviced) != n || res.Share != econ.FromDollars(10).DivCeil(n) {
		t.Fatalf("all-equal bids: got %d serviced at %v", len(res.Serviced), res.Share)
	}
}
