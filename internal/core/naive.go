package core

import (
	"fmt"

	"sharedopt/internal/econ"
)

// NaiveOnline is the strawman online adaptation of the Shapley Value
// Mechanism the paper dismantles in Example 2: run the offline mechanism
// at each slot over that slot's declared values until it implements; the
// users serviced at that moment split the cost, and the optimization is
// free for everybody afterwards.
//
// It exists as an ablation baseline: it is cost-recovering but NOT
// truthful — a user who hides her early value free-rides on whoever
// triggers implementation. The ablation experiment (experiments.AblationNaive)
// quantifies how much utility the provider loses to that gaming compared
// with AddOn, which closes the loophole with residual bids and cumulative
// serviced sets.
type NaiveOnline struct {
	opt   Optimization
	now   Slot
	users map[UserID]*onlineUser

	implemented   bool
	implementedAt Slot
}

// NewNaiveOnline returns a naive online game for one optimization.
// It panics if the optimization is invalid.
func NewNaiveOnline(opt Optimization) *NaiveOnline {
	if err := opt.Validate(); err != nil {
		panic(err)
	}
	return &NaiveOnline{opt: opt, users: make(map[UserID]*onlineUser)}
}

// Now returns the last processed slot (0 if none yet).
func (n *NaiveOnline) Now() Slot { return n.now }

// Implemented reports whether and when the optimization was implemented.
func (n *NaiveOnline) Implemented() (Slot, bool) { return n.implementedAt, n.implemented }

// Submit places a bid; the same validation as AddOn applies except that
// revisions are not supported (the strawman never specified them).
func (n *NaiveOnline) Submit(bid OnlineBid) error {
	if err := bid.Validate(); err != nil {
		return err
	}
	if bid.Start <= n.now {
		return fmt.Errorf("core: user %d: retroactive bid starting at slot %d, current slot is %d",
			bid.User, bid.Start, n.now)
	}
	if _, dup := n.users[bid.User]; dup {
		return fmt.Errorf("core: user %d: naive mechanism does not support revisions", bid.User)
	}
	n.users[bid.User] = &onlineUser{valueCurve: newValueCurve(bid)}
	return nil
}

// AdvanceSlot processes the next slot. Before implementation it runs the
// offline Shapley mechanism over the current slot's values; once the cost
// has been recovered, every active user is serviced for free.
func (n *NaiveOnline) AdvanceSlot() SlotReport {
	n.now++
	t := n.now
	report := SlotReport{Slot: t, Departures: make(map[UserID]econ.Money)}

	if n.implemented {
		// Free ride: every user in her interval is serviced.
		for id, u := range n.users {
			if t >= u.start && t <= u.end {
				if !u.serviced {
					u.serviced = true
					report.NewGrants = append(report.NewGrants, Grant{User: id, Opt: n.opt.ID})
				}
				report.Active = append(report.Active, Grant{User: id, Opt: n.opt.ID})
			}
		}
	} else {
		// The strawman reruns the offline mechanism over each arrived
		// user's total declared value — it does not discount value
		// already consumed, which is also why hiding value until later
		// is profitable under it.
		bids := make(map[UserID]econ.Money)
		for id, u := range n.users {
			if t >= u.start && t <= u.end {
				if total := u.total(); total > 0 {
					bids[id] = total
				}
			}
		}
		res := shapleyForced(n.opt.Cost, bids, nil)
		if res.Implemented() {
			n.implemented = true
			n.implementedAt = t
			report.Implemented = []OptID{n.opt.ID}
			for _, id := range res.Serviced {
				u := n.users[id]
				u.serviced = true
				u.paid = true
				u.payment = res.Share
				report.NewGrants = append(report.NewGrants, Grant{User: id, Opt: n.opt.ID})
				report.Active = append(report.Active, Grant{User: id, Opt: n.opt.ID})
				// Unlike AddOn, the naive mechanism charges at
				// implementation time, so the "departure" entry is
				// recorded on the slot the money moves.
				report.Departures[id] = res.Share
			}
		}
	}
	sortGrants(report.NewGrants)
	sortGrants(report.Active)

	for id, u := range n.users {
		if u.end == t && !u.paid {
			u.paid = true
			report.Departures[id] = 0
		}
	}
	return report
}

// Payment returns the user's payment and whether she has settled.
func (n *NaiveOnline) Payment(u UserID) (econ.Money, bool) {
	usr := n.users[u]
	if usr == nil || !usr.paid {
		return 0, false
	}
	return usr.payment, true
}

// TotalRevenue returns the payments collected (the cost, if implemented).
func (n *NaiveOnline) TotalRevenue() econ.Money {
	var total econ.Money
	for _, u := range n.users {
		if u.paid {
			total += u.payment
		}
	}
	return total
}

// CostIncurred returns the optimization cost if implemented, else 0.
func (n *NaiveOnline) CostIncurred() econ.Money {
	if n.implemented {
		return n.opt.Cost
	}
	return 0
}
