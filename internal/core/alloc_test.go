package core

import (
	"testing"

	"sharedopt/internal/econ"
)

// Allocation-regression tests: the sorted-prefix Shapley rewrite and the
// scratch-buffer reuse in AddOn are performance guarantees, so they are
// asserted with testing.AllocsPerRun and fail if a change silently brings
// back per-call allocation.

// One Shapley run over pre-sorted scratch allocates only the result's
// Serviced slice.
func TestShapleyFromSortedAllocBudget(t *testing.T) {
	const n = 1000
	sorted := make([]userBid, n)
	for i := range sorted {
		sorted[i] = userBid{user: UserID(i + 1), bid: econ.Money(n - i)}
	}
	cost := econ.Money(n) // share 1 micro-dollar at full population
	allocs := testing.AllocsPerRun(100, func() {
		res := shapleyFromSorted(cost, sorted, nil)
		if !res.Implemented() {
			t.Fatal("benchmark scenario should implement")
		}
	})
	if allocs > 1 {
		t.Errorf("shapleyFromSorted allocated %.1f times per run, budget 1", allocs)
	}
}

// The prefix scan itself is allocation-free.
func TestServicedPrefixAllocFree(t *testing.T) {
	const n = 1000
	sorted := make([]userBid, n)
	for i := range sorted {
		sorted[i] = userBid{user: UserID(i + 1), bid: econ.Money(n - i)}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if k := servicedPrefix(econ.Money(n), sorted, 0); k == 0 {
			t.Fatal("scenario should service someone")
		}
	})
	if allocs != 0 {
		t.Errorf("servicedPrefix allocated %.1f times per run, want 0", allocs)
	}
}

// A warm AddOn game — scratch grown, all users serviced, intervals still
// open — allocates only its per-slot SlotReport (the Departures map and
// the Active slice), not per-user or per-bid state. The budget is a fixed
// small constant well below the map-per-slot implementation it replaced.
func TestAddOnAdvanceSlotAllocBudget(t *testing.T) {
	game := NewAddOn(Optimization{ID: 1, Cost: econ.FromDollars(10)})
	const users = 24
	values := make([]econ.Money, 100_000)
	for i := range values {
		values[i] = econ.Money(econ.Cent)
	}
	for u := UserID(1); u <= users; u++ {
		if err := game.Submit(OnlineBid{User: u, Start: 1, End: Slot(len(values)),
			Values: values}); err != nil {
			t.Fatal(err)
		}
	}
	// Warm up: first slot services everyone and grows the scratch buffer.
	if r := game.AdvanceSlot(); len(r.NewGrants) != users {
		t.Fatalf("warm-up slot serviced %d users, want %d", len(r.NewGrants), users)
	}
	allocs := testing.AllocsPerRun(50, func() {
		game.AdvanceSlot()
	})
	const budget = 12
	if allocs > budget {
		t.Errorf("warm AdvanceSlot allocated %.1f times per run, budget %d", allocs, budget)
	}
}

// A warm SubstOn game — every user granted, phase results recorded in
// the scratch-backed position-indexed slices rather than per-slot maps —
// is held to the same kind of fixed budget as AddOn: only the per-slot
// SlotReport (Departures map, Active slice) allocates, not the phase
// loop.
func TestSubstOnAdvanceSlotAllocBudget(t *testing.T) {
	const (
		users = 24
		nOpts = 12
	)
	opts := make([]Optimization, nOpts)
	for i := range opts {
		opts[i] = Optimization{ID: OptID(i + 1), Cost: econ.FromDollars(0.5)}
	}
	game := NewSubstOn(opts)
	values := make([]econ.Money, 100_000)
	for i := range values {
		values[i] = econ.Money(econ.Cent)
	}
	for u := UserID(1); u <= users; u++ {
		bid := OnlineSubstBid{
			User:   u,
			Opts:   []OptID{OptID(int(u-1)%nOpts + 1), OptID(int(u)%nOpts + 1)},
			Start:  1,
			End:    Slot(len(values)),
			Values: values,
		}
		if err := game.Submit(bid); err != nil {
			t.Fatal(err)
		}
	}
	// Warm up: the first slot grants every user and grows all scratch.
	if r := game.AdvanceSlot(); len(r.NewGrants) != users {
		t.Fatalf("warm-up slot granted %d users, want %d", len(r.NewGrants), users)
	}
	allocs := testing.AllocsPerRun(50, func() {
		game.AdvanceSlot()
	})
	const budget = 14
	if allocs > budget {
		t.Errorf("warm SubstOn AdvanceSlot allocated %.1f times per run, budget %d", allocs, budget)
	}
}
