package core

import (
	"testing"

	"sharedopt/internal/econ"
)

func TestAddOffIndependentOptimizations(t *testing.T) {
	opts := []Optimization{
		{ID: 1, Cost: dollars(100)},
		{ID: 2, Cost: dollars(60)},
		{ID: 3, Cost: dollars(500)},
	}
	bids := []AdditiveBid{
		{User: 1, Opt: 1, Value: dollars(70)},
		{User: 2, Opt: 1, Value: dollars(70)},
		{User: 1, Opt: 2, Value: dollars(20)},
		{User: 2, Opt: 2, Value: dollars(30)},
		{User: 3, Opt: 2, Value: dollars(35)},
		{User: 1, Opt: 3, Value: dollars(100)},
	}
	out, err := AddOff(opts, bids)
	if err != nil {
		t.Fatal(err)
	}
	// Opt 1: both afford 50.
	if !out.IsImplemented(1) || !usersEqual(out.Serviced[1], 1, 2) {
		t.Errorf("opt 1: got %v", out.Serviced[1])
	}
	if out.Payment(1, 1) != dollars(50) || out.Payment(2, 1) != dollars(50) {
		t.Errorf("opt 1 payments: %v / %v, want $50 each", out.Payment(1, 1), out.Payment(2, 1))
	}
	// Opt 2: 60/3=20, all three serviced at exactly 20? User 1 bids 20,
	// boundary holds.
	if !usersEqual(out.Serviced[2], 1, 2, 3) || out.Payment(3, 2) != dollars(20) {
		t.Errorf("opt 2: serviced %v, payment %v", out.Serviced[2], out.Payment(3, 2))
	}
	// Opt 3: 100 < 500, not implemented.
	if out.IsImplemented(3) {
		t.Error("opt 3 should not be implemented")
	}
	// Totals: user 1 pays 50+20 = 70.
	if got := out.TotalPayment(1); got != dollars(70) {
		t.Errorf("user 1 total payment = %v, want $70", got)
	}
}

// AddOff must behave exactly as an independent Shapley run per
// optimization.
func TestAddOffMatchesPerOptShapley(t *testing.T) {
	opts := []Optimization{{ID: 10, Cost: dollars(33)}, {ID: 20, Cost: dollars(7)}}
	bids := []AdditiveBid{
		{User: 1, Opt: 10, Value: dollars(12)},
		{User: 2, Opt: 10, Value: dollars(11)},
		{User: 3, Opt: 10, Value: dollars(10)},
		{User: 1, Opt: 20, Value: dollars(3)},
		{User: 3, Opt: 20, Value: dollars(4)},
	}
	out, err := AddOff(opts, bids)
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range opts {
		per := make(map[UserID]econ.Money)
		for _, b := range bids {
			if b.Opt == opt.ID {
				per[b.User] = b.Value
			}
		}
		res, err := Shapley(opt.Cost, per)
		if err != nil {
			t.Fatal(err)
		}
		if res.Implemented() != out.IsImplemented(opt.ID) {
			t.Errorf("opt %d: implementation disagreement", opt.ID)
		}
		for _, u := range res.Serviced {
			if out.Payment(u, opt.ID) != res.Share {
				t.Errorf("opt %d user %d: payment %v, want %v",
					opt.ID, u, out.Payment(u, opt.ID), res.Share)
			}
		}
	}
}

func TestAddOffCostRecovery(t *testing.T) {
	opts := []Optimization{{ID: 1, Cost: dollars(99)}}
	bids := []AdditiveBid{
		{User: 1, Opt: 1, Value: dollars(40)},
		{User: 2, Opt: 1, Value: dollars(40)},
		{User: 3, Opt: 1, Value: dollars(40)},
	}
	out, err := AddOff(opts, bids)
	if err != nil {
		t.Fatal(err)
	}
	if !out.IsImplemented(1) {
		t.Fatal("should implement")
	}
	if rev := out.Revenue(1); rev < dollars(99) {
		t.Errorf("revenue %v below cost", rev)
	}
}

func TestAddOffValidation(t *testing.T) {
	opt := []Optimization{{ID: 1, Cost: dollars(10)}}
	cases := []struct {
		name string
		opts []Optimization
		bids []AdditiveBid
	}{
		{"unknown opt", opt, []AdditiveBid{{User: 1, Opt: 99, Value: dollars(1)}}},
		{"negative value", opt, []AdditiveBid{{User: 1, Opt: 1, Value: dollars(-1)}}},
		{"duplicate bid", opt, []AdditiveBid{
			{User: 1, Opt: 1, Value: dollars(1)},
			{User: 1, Opt: 1, Value: dollars(2)},
		}},
		{"duplicate opt", []Optimization{{ID: 1, Cost: dollars(1)}, {ID: 1, Cost: dollars(2)}}, nil},
		{"zero cost opt", []Optimization{{ID: 1, Cost: 0}}, nil},
	}
	for _, c := range cases {
		if _, err := AddOff(c.opts, c.bids); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestAddOffEmptyGame(t *testing.T) {
	out, err := AddOff(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Implemented) != 0 {
		t.Errorf("empty game implemented %v", out.Implemented)
	}
}

func TestOutcomeAccessors(t *testing.T) {
	out := NewOutcome()
	out.addGrants(5, []UserID{3, 1}, dollars(2))
	if !usersEqual(out.Serviced[5], 1, 3) {
		t.Errorf("grants not sorted: %v", out.Serviced[5])
	}
	if !out.IsServiced(1, 5) || out.IsServiced(2, 5) {
		t.Error("IsServiced broken")
	}
	if opt, ok := out.GrantedOpt(3); !ok || opt != 5 {
		t.Errorf("GrantedOpt(3) = %v, %v", opt, ok)
	}
	if _, ok := out.GrantedOpt(9); ok {
		t.Error("GrantedOpt should report missing user")
	}
	if out.Revenue(5) != dollars(4) {
		t.Errorf("Revenue = %v, want $4", out.Revenue(5))
	}
}
