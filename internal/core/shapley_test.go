package core

import (
	"testing"

	"sharedopt/internal/econ"
)

func dollars(d float64) econ.Money { return econ.FromDollars(d) }

func usersEqual(got []UserID, want ...UserID) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

func TestShapleyAllAfford(t *testing.T) {
	res, err := Shapley(dollars(100), map[UserID]econ.Money{
		1: dollars(40), 2: dollars(40), 3: dollars(40),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !usersEqual(res.Serviced, 1, 2, 3) {
		t.Fatalf("Serviced = %v, want [1 2 3]", res.Serviced)
	}
	// 100/3 with ceiling division in micro-dollars.
	if want := dollars(100).DivCeil(3); res.Share != want {
		t.Errorf("Share = %v, want %v", res.Share, want)
	}
	if res.Revenue() < dollars(100) {
		t.Errorf("Revenue %v does not recover cost", res.Revenue())
	}
}

// The walk-through of Mechanism 1: users are iteratively dropped as the
// per-user share rises.
func TestShapleyIterativeRemoval(t *testing.T) {
	// cost 100 over bids 60, 30: at p=50 user 2 drops; at p=100 user 1
	// cannot afford it either; nobody is serviced.
	res, err := Shapley(dollars(100), map[UserID]econ.Money{1: dollars(60), 2: dollars(30)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Implemented() {
		t.Fatalf("expected no service, got %+v", res)
	}
	if res.Share != 0 || res.Revenue() != 0 {
		t.Errorf("empty result should have zero share and revenue, got %+v", res)
	}

	// cost 100 over bids 110, 30: user 2 drops at p=50, user 1 carries
	// the full cost alone.
	res, err = Shapley(dollars(100), map[UserID]econ.Money{1: dollars(110), 2: dollars(30)})
	if err != nil {
		t.Fatal(err)
	}
	if !usersEqual(res.Serviced, 1) || res.Share != dollars(100) {
		t.Fatalf("got %+v, want user 1 paying $100", res)
	}
}

func TestShapleyExactBoundaryIsServiced(t *testing.T) {
	// A bid exactly equal to the share is serviced ("p <= bij").
	res, err := Shapley(dollars(100), map[UserID]econ.Money{1: dollars(50), 2: dollars(50)})
	if err != nil {
		t.Fatal(err)
	}
	if !usersEqual(res.Serviced, 1, 2) || res.Share != dollars(50) {
		t.Fatalf("got %+v, want both serviced at $50", res)
	}
}

func TestShapleyNoBidders(t *testing.T) {
	res, err := Shapley(dollars(10), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Implemented() {
		t.Fatalf("no bidders should mean no service, got %+v", res)
	}
}

func TestShapleyRejectsBadInputs(t *testing.T) {
	if _, err := Shapley(0, map[UserID]econ.Money{1: dollars(1)}); err == nil {
		t.Error("zero cost should be rejected")
	}
	if _, err := Shapley(dollars(-1), map[UserID]econ.Money{1: dollars(1)}); err == nil {
		t.Error("negative cost should be rejected")
	}
	if _, err := Shapley(dollars(10), map[UserID]econ.Money{1: dollars(-1)}); err == nil {
		t.Error("negative bid should be rejected")
	}
}

// Paper Section 4.1: underbidding either changes nothing or drops the user
// to zero utility; it never helps. This is the concrete two-case analysis
// from the text.
func TestShapleyUnderbiddingNeverHelps(t *testing.T) {
	cost := dollars(100)
	truth := map[UserID]econ.Money{1: dollars(60), 2: dollars(60), 3: dollars(60)}
	res, err := Shapley(cost, truth)
	if err != nil {
		t.Fatal(err)
	}
	truthShare := res.Share // 100/3
	if !usersEqual(res.Serviced, 1, 2, 3) {
		t.Fatalf("truthful game should service everyone, got %v", res.Serviced)
	}
	truthUtility := dollars(60) - truthShare

	// Case 1: underbid below the current share: dropped, utility 0.
	lied := map[UserID]econ.Money{1: dollars(20), 2: dollars(60), 3: dollars(60)}
	res, err = Shapley(cost, lied)
	if err != nil {
		t.Fatal(err)
	}
	if res.Implemented() {
		for _, u := range res.Serviced {
			if u == 1 {
				t.Fatal("user 1 should have been dropped after underbidding")
			}
		}
	}
	// utility 0 < truthUtility.
	if truthUtility <= 0 {
		t.Fatalf("sanity: truthful utility should be positive, got %v", truthUtility)
	}

	// Case 2: underbid above the share: payment unchanged.
	lied = map[UserID]econ.Money{1: dollars(40), 2: dollars(60), 3: dollars(60)}
	res, err = Shapley(cost, lied)
	if err != nil {
		t.Fatal(err)
	}
	if !usersEqual(res.Serviced, 1, 2, 3) || res.Share != truthShare {
		t.Fatalf("mild underbid should leave outcome unchanged, got %+v", res)
	}
}

// Paper Example 1: the naive mechanism (pay your bid) invites shading your
// bid; Shapley's uniform minimum price removes the incentive — overbidding
// cannot lower the payment.
func TestShapleyOverbiddingDoesNotLowerPayment(t *testing.T) {
	cost := dollars(100)
	truth := map[UserID]econ.Money{1: dollars(70), 2: dollars(70)}
	res, err := Shapley(cost, truth)
	if err != nil {
		t.Fatal(err)
	}
	if res.Share != dollars(50) {
		t.Fatalf("share = %v, want $50", res.Share)
	}
	exaggerated := map[UserID]econ.Money{1: dollars(1000), 2: dollars(70)}
	res2, err := Shapley(cost, exaggerated)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Share != res.Share {
		t.Errorf("overbid changed the share from %v to %v", res.Share, res2.Share)
	}
}

// Section 5.2's Alice example, offline view: with one identity Alice pays
// the whole cost; with two identities everyone is serviced.
func TestShapleyAliceIdentities(t *testing.T) {
	cost := dollars(101)
	oneIdentity := map[UserID]econ.Money{0: dollars(101)}
	for u := UserID(1); u <= 99; u++ {
		oneIdentity[u] = dollars(1)
	}
	res, err := Shapley(cost, oneIdentity)
	if err != nil {
		t.Fatal(err)
	}
	// 101/100 = $1.01 > $1, so the 99 small users drop; Alice pays all.
	if !usersEqual(res.Serviced, 0) || res.Share != dollars(101) {
		t.Fatalf("got %+v, want only Alice at $101", res)
	}

	twoIdentities := map[UserID]econ.Money{0: dollars(101), 100: dollars(101)}
	for u := UserID(1); u <= 99; u++ {
		twoIdentities[u] = dollars(1)
	}
	res, err = Shapley(cost, twoIdentities)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Serviced) != 101 {
		t.Fatalf("with the dummy, all 101 identities should be serviced, got %d", len(res.Serviced))
	}
	if res.Share != dollars(1) {
		t.Errorf("share = %v, want $1", res.Share)
	}
	// Alice pays 2 × $1 and keeps utility 101-2 = 99 > 0; every small
	// user now pays exactly her value, utility 0 — nobody is worse off.
}

func TestShapleyForcedUsersAlwaysStay(t *testing.T) {
	// A forced user with no bid at all is serviced and counted in the
	// denominator.
	res := shapleyForced(dollars(100), map[UserID]econ.Money{2: dollars(50)}, map[UserID]bool{1: true})
	if !usersEqual(res.Serviced, 1, 2) || res.Share != dollars(50) {
		t.Fatalf("got %+v, want forced user 1 and user 2 at $50", res)
	}

	// Even alone, a forced user stays: share is the full cost.
	res = shapleyForced(dollars(100), nil, map[UserID]bool{7: true})
	if !usersEqual(res.Serviced, 7) || res.Share != dollars(100) {
		t.Fatalf("got %+v, want forced user 7 at $100", res)
	}
}

func TestShapleyServicedSetIsMaximalFixpoint(t *testing.T) {
	// Iterated removal keeps every "self-supporting" subset: with cost
	// 90, bids {45, 45, 10}: p=30 drops user 3, then p=45 keeps 1 and 2.
	res, err := Shapley(dollars(90), map[UserID]econ.Money{1: dollars(45), 2: dollars(45), 3: dollars(10)})
	if err != nil {
		t.Fatal(err)
	}
	if !usersEqual(res.Serviced, 1, 2) || res.Share != dollars(45) {
		t.Fatalf("got %+v, want users 1,2 at $45", res)
	}
}
