package core

import (
	"testing"

	"sharedopt/internal/econ"
)

func mustSubmit(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func grantsEqual(got []Grant, want ...Grant) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// Paper Example 2: the naive online adaptation lets user 2 free-ride by
// hiding her slot-1 value. Under AddOn, hiding strictly hurts her.
func TestAddOnExample2NoFreeRide(t *testing.T) {
	cost := dollars(100)

	// Truthful play: both users are serviced at t=1 and share the cost.
	game := NewAddOn(Optimization{ID: 1, Cost: cost})
	mustSubmit(t, game.Submit(OnlineBid{User: 1, Start: 1, End: 1, Values: []econ.Money{dollars(101)}}))
	mustSubmit(t, game.Submit(OnlineBid{User: 2, Start: 1, End: 2, Values: []econ.Money{dollars(26), dollars(26)}}))
	r1 := game.AdvanceSlot()
	if !grantsEqual(r1.NewGrants, Grant{1, 1}, Grant{2, 1}) {
		t.Fatalf("slot 1 grants = %v", r1.NewGrants)
	}
	if p := r1.Departures[1]; p != dollars(50) {
		t.Fatalf("user 1 pays %v, want $50", p)
	}
	r2 := game.AdvanceSlot()
	if p := r2.Departures[2]; p != dollars(50) {
		t.Fatalf("user 2 pays %v, want $50", p)
	}
	// User 2's truthful utility: 26+26-50 = 2.

	// Cheating: user 2 hides her value until t=2. She is not serviced
	// at all — her residual 26 is below the $50 share of joining CS={1}.
	cheat := NewAddOn(Optimization{ID: 1, Cost: cost})
	mustSubmit(t, cheat.Submit(OnlineBid{User: 1, Start: 1, End: 1, Values: []econ.Money{dollars(101)}}))
	c1 := cheat.AdvanceSlot()
	if p := c1.Departures[1]; p != dollars(100) {
		t.Fatalf("alone, user 1 pays %v, want $100", p)
	}
	mustSubmit(t, cheat.Submit(OnlineBid{User: 2, Start: 2, End: 2, Values: []econ.Money{dollars(26)}}))
	c2 := cheat.AdvanceSlot()
	if len(c2.NewGrants) != 0 {
		t.Fatalf("cheating user 2 should not be serviced, got %v", c2.NewGrants)
	}
	if p := c2.Departures[2]; p != 0 {
		t.Fatalf("unserviced user 2 pays %v, want $0", p)
	}
	// Cheating utility 0 < truthful utility 2: no free ride.
}

// Paper Example 3: four users; CS grows over time; payments 100/25/25/25.
func TestAddOnExample3(t *testing.T) {
	cost := dollars(100)
	game := NewAddOn(Optimization{ID: 1, Cost: cost})
	mustSubmit(t, game.Submit(OnlineBid{User: 1, Start: 1, End: 1, Values: []econ.Money{dollars(101)}}))
	mustSubmit(t, game.Submit(OnlineBid{User: 2, Start: 1, End: 3,
		Values: []econ.Money{dollars(16), dollars(16), dollars(16)}}))

	r1 := game.AdvanceSlot()
	// CS(1) = {1}: user 2's residual 48 is below cost/2 = 50.
	if !grantsEqual(r1.NewGrants, Grant{1, 1}) {
		t.Fatalf("slot 1 grants = %v, want user 1 only", r1.NewGrants)
	}
	if !grantsEqual(r1.Active, Grant{1, 1}) {
		t.Fatalf("slot 1 active = %v", r1.Active)
	}
	if at, ok := game.Implemented(); !ok || at != 1 {
		t.Fatalf("implemented at %d, %v; want slot 1", at, ok)
	}
	if p := r1.Departures[1]; p != dollars(100) {
		t.Fatalf("user 1 pays %v, want $100", p)
	}

	// Users 3 and 4 arrive for slot 2.
	mustSubmit(t, game.Submit(OnlineBid{User: 3, Start: 2, End: 2, Values: []econ.Money{dollars(26)}}))
	mustSubmit(t, game.Submit(OnlineBid{User: 4, Start: 2, End: 2, Values: []econ.Money{dollars(26)}}))
	r2 := game.AdvanceSlot()
	// CS(2) = {1,2,3,4}: with four users each share is 25 and user 2's
	// remaining 32 now clears it.
	if !grantsEqual(r2.NewGrants, Grant{2, 1}, Grant{3, 1}, Grant{4, 1}) {
		t.Fatalf("slot 2 grants = %v", r2.NewGrants)
	}
	// User 1 left at slot 1; active users are 2, 3, 4.
	if !grantsEqual(r2.Active, Grant{2, 1}, Grant{3, 1}, Grant{4, 1}) {
		t.Fatalf("slot 2 active = %v", r2.Active)
	}
	if r2.Departures[3] != dollars(25) || r2.Departures[4] != dollars(25) {
		t.Fatalf("slot 2 departures = %v", r2.Departures)
	}

	r3 := game.AdvanceSlot()
	if !grantsEqual(r3.Active, Grant{2, 1}) {
		t.Fatalf("slot 3 active = %v", r3.Active)
	}
	if p := r3.Departures[2]; p != dollars(25) {
		t.Fatalf("user 2 pays %v, want $25", p)
	}

	// Total revenue 175 over a cost of 100: cost recovered.
	if rev := game.TotalRevenue(); rev != dollars(175) {
		t.Errorf("revenue = %v, want $175", rev)
	}
	if game.CostIncurred() != cost {
		t.Errorf("cost incurred = %v, want %v", game.CostIncurred(), cost)
	}
}

// Paper Example 4: in the model-free worst case (no future arrivals),
// user 2 overbidding ends with negative utility while truth gives 0.
func TestAddOnExample4WorstCaseTruthfulness(t *testing.T) {
	cost := dollars(100)

	// Overbid (1,3,[17,17,17]) with no future users: serviced at t=1,
	// pays 50 against a true value of 48.
	over := NewAddOn(Optimization{ID: 1, Cost: cost})
	mustSubmit(t, over.Submit(OnlineBid{User: 1, Start: 1, End: 1, Values: []econ.Money{dollars(101)}}))
	mustSubmit(t, over.Submit(OnlineBid{User: 2, Start: 1, End: 3,
		Values: []econ.Money{dollars(17), dollars(17), dollars(17)}}))
	r1 := over.AdvanceSlot()
	if !grantsEqual(r1.NewGrants, Grant{1, 1}, Grant{2, 1}) {
		t.Fatalf("overbidding user 2 should be serviced at t=1, got %v", r1.NewGrants)
	}
	over.AdvanceSlot()
	r3 := over.AdvanceSlot()
	if p := r3.Departures[2]; p != dollars(50) {
		t.Fatalf("user 2 pays %v, want $50", p)
	}
	// True value 3×16 = 48 < 50: utility −2.

	// Truthful (1,3,[16,16,16]) with no future users: never serviced,
	// pays nothing: utility 0 > −2.
	truth := NewAddOn(Optimization{ID: 1, Cost: cost})
	mustSubmit(t, truth.Submit(OnlineBid{User: 1, Start: 1, End: 1, Values: []econ.Money{dollars(101)}}))
	mustSubmit(t, truth.Submit(OnlineBid{User: 2, Start: 1, End: 3,
		Values: []econ.Money{dollars(16), dollars(16), dollars(16)}}))
	truth.AdvanceSlot()
	truth.AdvanceSlot()
	tr3 := truth.AdvanceSlot()
	if p := tr3.Departures[2]; p != 0 {
		t.Fatalf("truthful user 2 pays %v, want $0", p)
	}
}

// A single user whose per-slot values individually cannot cover the cost
// is still serviced when her residual (multi-slot) value can.
func TestAddOnResidualAggregatesAcrossSlots(t *testing.T) {
	game := NewAddOn(Optimization{ID: 1, Cost: dollars(15)})
	mustSubmit(t, game.Submit(OnlineBid{User: 1, Start: 1, End: 2,
		Values: []econ.Money{dollars(10), dollars(10)}}))
	r1 := game.AdvanceSlot()
	if !grantsEqual(r1.NewGrants, Grant{1, 1}) {
		t.Fatalf("user should be serviced on residual value, got %v", r1.NewGrants)
	}
	r2 := game.AdvanceSlot()
	if p := r2.Departures[1]; p != dollars(15) {
		t.Fatalf("payment %v, want $15", p)
	}
}

func TestAddOnNeverImplementsWhenUnaffordable(t *testing.T) {
	game := NewAddOn(Optimization{ID: 1, Cost: dollars(1000)})
	mustSubmit(t, game.Submit(OnlineBid{User: 1, Start: 1, End: 2,
		Values: []econ.Money{dollars(10), dollars(10)}}))
	for i := 0; i < 2; i++ {
		r := game.AdvanceSlot()
		if len(r.NewGrants) != 0 {
			t.Fatalf("slot %d: unexpected grants %v", i+1, r.NewGrants)
		}
	}
	if _, ok := game.Implemented(); ok {
		t.Error("should not implement")
	}
	if game.TotalRevenue() != 0 || game.CostIncurred() != 0 {
		t.Error("no service should mean no money movement")
	}
}

func TestAddOnLateArrivalLowersShare(t *testing.T) {
	// User 1 is serviced alone at t=1, then user 2 joins at t=2 and the
	// share is recomputed downward for both.
	game := NewAddOn(Optimization{ID: 1, Cost: dollars(100)})
	mustSubmit(t, game.Submit(OnlineBid{User: 1, Start: 1, End: 2,
		Values: []econ.Money{dollars(120), 0}}))
	game.AdvanceSlot()
	mustSubmit(t, game.Submit(OnlineBid{User: 2, Start: 2, End: 2, Values: []econ.Money{dollars(60)}}))
	r2 := game.AdvanceSlot()
	if !grantsEqual(r2.NewGrants, Grant{2, 1}) {
		t.Fatalf("user 2 should join, got %v", r2.NewGrants)
	}
	if r2.Departures[1] != dollars(50) || r2.Departures[2] != dollars(50) {
		t.Fatalf("departures = %v, want $50 each", r2.Departures)
	}
}

func TestAddOnSubmitValidation(t *testing.T) {
	game := NewAddOn(Optimization{ID: 1, Cost: dollars(10)})
	bad := []OnlineBid{
		{User: 1, Start: 0, End: 1, Values: []econ.Money{1, 1}},        // start < 1
		{User: 1, Start: 2, End: 1, Values: []econ.Money{1}},           // end < start
		{User: 1, Start: 1, End: 2, Values: []econ.Money{1}},           // wrong len
		{User: 1, Start: 1, End: 1, Values: []econ.Money{dollars(-1)}}, // negative
	}
	for i, b := range bad {
		if err := game.Submit(b); err == nil {
			t.Errorf("bad bid %d accepted", i)
		}
	}
	game.AdvanceSlot()
	// Retroactive bid.
	if err := game.Submit(OnlineBid{User: 9, Start: 1, End: 1, Values: []econ.Money{1}}); err == nil {
		t.Error("retroactive bid accepted")
	}
}

func TestAddOnRevisions(t *testing.T) {
	game := NewAddOn(Optimization{ID: 1, Cost: dollars(100)})
	mustSubmit(t, game.Submit(OnlineBid{User: 1, Start: 1, End: 3,
		Values: []econ.Money{dollars(10), dollars(10), dollars(10)}}))
	game.AdvanceSlot()

	// Upward revision of future slots is allowed (paper Section 5.1:
	// "at time t = 2 she may revise her bids as b(2)=20, b(3)=10").
	mustSubmit(t, game.Submit(OnlineBid{User: 1, Start: 2, End: 3,
		Values: []econ.Money{dollars(20), dollars(10)}}))

	// Downward revision is rejected.
	if err := game.Submit(OnlineBid{User: 1, Start: 2, End: 3,
		Values: []econ.Money{dollars(5), dollars(10)}}); err == nil {
		t.Error("downward revision accepted")
	}
	// Shrinking the interval is rejected.
	if err := game.Submit(OnlineBid{User: 1, Start: 2, End: 2,
		Values: []econ.Money{dollars(20)}}); err == nil {
		t.Error("shrinking revision accepted")
	}
	// Extending the interval (ei can only increase) is allowed.
	mustSubmit(t, game.Submit(OnlineBid{User: 1, Start: 2, End: 4,
		Values: []econ.Money{dollars(20), dollars(10), dollars(7)}}))
	// Withdrawing declared future value by starting later is rejected.
	if err := game.Submit(OnlineBid{User: 1, Start: 4, End: 4,
		Values: []econ.Money{dollars(7)}}); err == nil {
		t.Error("revision that withdraws slot-2 value accepted")
	}
}

func TestAddOnCloseSettlesActiveUsers(t *testing.T) {
	game := NewAddOn(Optimization{ID: 1, Cost: dollars(60)})
	mustSubmit(t, game.Submit(OnlineBid{User: 1, Start: 1, End: 5,
		Values: []econ.Money{dollars(100), 0, 0, 0, 0}}))
	game.AdvanceSlot() // serviced at slot 1; interval runs to 5
	settled := game.Close()
	if settled[1] != dollars(60) {
		t.Fatalf("Close charged %v, want $60", settled[1])
	}
	if p, ok := game.Payment(1); !ok || p != dollars(60) {
		t.Fatalf("Payment(1) = %v, %v", p, ok)
	}
	// Closing twice charges nothing more.
	if again := game.Close(); len(again) != 0 {
		t.Errorf("second Close settled %v", again)
	}
	// Bidding after departure is rejected.
	if err := game.Submit(OnlineBid{User: 1, Start: 2, End: 5,
		Values: []econ.Money{1, 1, 1, 1}}); err == nil {
		t.Error("bid after departure accepted")
	}
}

func TestAddOnPaymentsAreFinal(t *testing.T) {
	game := NewAddOn(Optimization{ID: 1, Cost: dollars(100)})
	mustSubmit(t, game.Submit(OnlineBid{User: 1, Start: 1, End: 1, Values: []econ.Money{dollars(101)}}))
	r1 := game.AdvanceSlot()
	if r1.Departures[1] != dollars(100) {
		t.Fatal("user 1 should pay $100")
	}
	// A crowd arrives later; user 1's payment must not change.
	for u := UserID(2); u <= 5; u++ {
		mustSubmit(t, game.Submit(OnlineBid{User: u, Start: 2, End: 2, Values: []econ.Money{dollars(30)}}))
	}
	game.AdvanceSlot()
	if p, ok := game.Payment(1); !ok || p != dollars(100) {
		t.Errorf("user 1's payment changed to %v", p)
	}
	// But the newcomers pay the smaller share 100/5 = 20.
	if p, _ := game.Payment(2); p != dollars(20) {
		t.Errorf("user 2 pays %v, want $20", p)
	}
}

func TestNewAddOnPanicsOnInvalidOpt(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero-cost optimization")
		}
	}()
	NewAddOn(Optimization{ID: 1, Cost: 0})
}

func TestAdditiveGameMergesPerOptGames(t *testing.T) {
	g := NewAdditiveGame([]Optimization{
		{ID: 1, Cost: dollars(10)},
		{ID: 2, Cost: dollars(20)},
	})
	mustSubmit(t, g.Submit(1, OnlineBid{User: 1, Start: 1, End: 1, Values: []econ.Money{dollars(10)}}))
	mustSubmit(t, g.Submit(2, OnlineBid{User: 1, Start: 1, End: 1, Values: []econ.Money{dollars(25)}}))
	if err := g.Submit(99, OnlineBid{User: 1, Start: 1, End: 1, Values: []econ.Money{1}}); err == nil {
		t.Error("unknown optimization accepted")
	}
	r := g.AdvanceSlot()
	if !grantsEqual(r.NewGrants, Grant{1, 1}, Grant{1, 2}) {
		t.Fatalf("grants = %v", r.NewGrants)
	}
	if p := r.Departures[1]; p != dollars(30) {
		t.Fatalf("merged departure payment = %v, want $30", p)
	}
	if g.TotalRevenue() != dollars(30) || g.CostIncurred() != dollars(30) {
		t.Errorf("revenue %v, cost %v; want $30 each", g.TotalRevenue(), g.CostIncurred())
	}
	if _, ok := g.Game(1); !ok {
		t.Error("Game(1) missing")
	}
	if len(g.Close()) != 0 {
		t.Error("everyone already settled; Close should be empty")
	}
}

func TestAdditiveGamePanicsOnDuplicateOpt(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for duplicate optimization")
		}
	}()
	NewAdditiveGame([]Optimization{{ID: 1, Cost: 1}, {ID: 1, Cost: 2}})
}
