package core

import (
	"fmt"
	"slices"
	"sync"

	"sharedopt/internal/econ"
)

// ShapleyResult is the output of the Shapley Value Mechanism for a single
// optimization: the serviced users and the uniform cost-share each pays.
type ShapleyResult struct {
	// Serviced lists the serviced users in ascending order. Empty means
	// no subset of users bid enough to cover the cost: the optimization
	// is not implemented.
	Serviced []UserID
	// Share is the per-user payment cost.DivCeil(len(Serviced)), or 0
	// when Serviced is empty.
	Share econ.Money
}

// Implemented reports whether the optimization should be implemented.
func (r ShapleyResult) Implemented() bool { return len(r.Serviced) > 0 }

// Revenue returns the total payment collected, Share × |Serviced|.
func (r ShapleyResult) Revenue() econ.Money {
	return r.Share.MulInt(int64(len(r.Serviced)))
}

// userBid pairs a bidder with her bid; the mechanisms' hot paths operate on
// slices of userBid sorted by sortBidsDesc instead of map[UserID]econ.Money.
type userBid struct {
	user UserID
	bid  econ.Money
}

// compareBidDesc is the canonical bidder ordering of every mechanism hot
// path: descending bid, ties broken by ascending user ID so runs are
// deterministic regardless of input order. sortBidsDesc and substPhases
// both sort with it; the order-preserving merge removal in substPhases
// relies on the two orderings agreeing.
func compareBidDesc(aBid, bBid econ.Money, aUser, bUser UserID) int {
	switch {
	case aBid > bBid:
		return -1
	case aBid < bBid:
		return 1
	case aUser < bUser:
		return -1
	case aUser > bUser:
		return 1
	}
	return 0
}

// sortBidsDesc sorts bids by compareBidDesc.
func sortBidsDesc(bids []userBid) {
	slices.SortFunc(bids, func(a, b userBid) int {
		return compareBidDesc(a.bid, b.bid, a.user, b.user)
	})
}

// servicedPrefix returns the number of serviced bidders: the largest k such
// that the k highest bidders each bid at least cost.DivCeil(k+forced),
// where forced counts always-serviced users outside sorted.
//
// This closed form is equivalent to the paper's drop-until-stable loop:
// survival under iterated dropping is monotone in the bid (shares only rise
// as the set shrinks), so the surviving set is always a prefix of the
// descending order, and the fixed point reached from the full set is the
// largest self-supporting prefix. A tie can never straddle the prefix
// boundary, because if bid k+1 equals bid k then prefix k+1 is
// self-supporting whenever prefix k is, contradicting maximality of k.
// The scan is O(n) with zero allocations; the predicate is not monotone in
// k, so the scan starts from the full prefix and returns the first hit.
func servicedPrefix(cost econ.Money, sorted []userBid, forced int) int {
	for k := len(sorted); k >= 1; k-- {
		if sorted[k-1].bid >= cost.DivCeil(k+forced) {
			return k
		}
	}
	return 0
}

// shapleyFromSorted runs the mechanism over bidders already sorted in
// descending bid order (see sortBidsDesc) plus a set of always-serviced
// forced users that must not appear in sorted. It allocates only the
// result's Serviced slice.
func shapleyFromSorted(cost econ.Money, sorted []userBid, forced []UserID) ShapleyResult {
	k := servicedPrefix(cost, sorted, len(forced))
	n := k + len(forced)
	if n == 0 {
		return ShapleyResult{}
	}
	users := make([]UserID, 0, n)
	users = append(users, forced...)
	for _, ub := range sorted[:k] {
		users = append(users, ub.user)
	}
	sortUsers(users)
	return ShapleyResult{Serviced: users, Share: cost.DivCeil(n)}
}

// Shapley runs the Shapley Value Mechanism (paper, Mechanism 1) for a
// single optimization with the given cost and one bid per user. It finds
// the minimum uniform price p such that every serviced user bid at least p
// and the serviced users jointly cover the cost. The implementation sorts
// the bid values once and takes the largest self-supporting prefix, which
// is equivalent to the paper's drop-until-stable iteration (see
// servicedPrefix) but runs in O(n log n).
//
// Only the raw values are sorted — an ascending radix sort over
// econ.Money, branch-free and O(n), which is several times faster than a
// comparison sort of (user, bid) pairs — because the serviced set can be
// recovered afterwards as the value-threshold set {u : bid ≥ final
// share}: the prefix invariant guarantees exactly the k highest bidders
// clear that threshold.
//
// The mechanism is truthful (no user can improve her utility by bidding
// anything other than her true value) and cost-recovering
// (Share × |Serviced| ≥ cost, exactly, thanks to ceiling division).
//
// Users with negative bids are rejected with an error; users absent from
// bids simply do not participate.
func Shapley(cost econ.Money, bids map[UserID]econ.Money) (ShapleyResult, error) {
	if cost <= 0 {
		return ShapleyResult{}, fmt.Errorf("core: Shapley: cost must be positive, got %v", cost)
	}
	sp := shapleyScratch.Get().(*moneyScratch)
	defer shapleyScratch.Put(sp)
	vals := sp.vals[:0]
	for u, b := range bids {
		if b < 0 {
			return ShapleyResult{}, fmt.Errorf("core: Shapley: user %d bid negative value %v", u, b)
		}
		vals = append(vals, b)
	}
	sp.vals = vals[:0] // keep the grown buffer for the next call
	vals = sp.sortAscending(vals)
	n := len(vals) // vals[n-k] is the k-th highest bid
	k := 0
	for m := n; m >= 1; m-- {
		if vals[n-m] >= cost.DivCeil(m) {
			k = m
			break
		}
	}
	if k == 0 {
		return ShapleyResult{}, nil
	}
	share := cost.DivCeil(k)
	users := make([]UserID, 0, k)
	for u, b := range bids {
		if b >= share {
			users = append(users, u)
		}
	}
	sortUsers(users)
	return ShapleyResult{Serviced: users, Share: share}, nil
}

// shapleyScratch pools the bid-value scratch of Shapley so concurrent
// experiment trials each reuse buffers instead of allocating per call.
var shapleyScratch = sync.Pool{New: func() any { return new(moneyScratch) }}

// moneyScratch is a pooled pair of value buffers: the collected bids and
// the radix sort's swap space.
type moneyScratch struct {
	vals, swap []econ.Money
}

// sortAscending sorts the non-negative amounts ascending and returns the
// sorted slice, which aliases either vals or the scratch swap buffer. For
// large inputs it uses a least-significant-digit radix sort over only the
// significant bytes of the maximum value: O(passes·n), branch-free, and
// substantially faster than a comparison sort, whose branch misses
// dominate the mechanism at scale.
func (s *moneyScratch) sortAscending(vals []econ.Money) []econ.Money {
	const radixMin = 128
	if len(vals) < radixMin {
		slices.Sort(vals)
		return vals
	}
	var maxv econ.Money
	for _, v := range vals {
		if v > maxv {
			maxv = v
		}
	}
	if cap(s.swap) < len(vals) {
		s.swap = make([]econ.Money, len(vals))
	}
	src, dst := vals, s.swap[:len(vals)]
	var counts [256]int
	for shift := uint(0); maxv>>shift > 0; shift += 8 {
		for i := range counts {
			counts[i] = 0
		}
		for _, v := range src {
			counts[(v>>shift)&0xff]++
		}
		if counts[(maxv>>shift)&0xff] == len(src) {
			// Every value shares this digit; the pass would be the
			// identity permutation.
			continue
		}
		total := 0
		for i := range counts {
			c := counts[i]
			counts[i] = total
			total += c
		}
		for _, v := range src {
			d := (v >> shift) & 0xff
			dst[counts[d]] = v
			counts[d]++
		}
		src, dst = dst, src
	}
	return src
}

// shapleyForced is the Shapley Value Mechanism with a set of forced users
// who are always serviced regardless of their bids — the "b'ij ← ∞" step
// of the online mechanisms (Mechanisms 2 and 4). Forced users need not
// appear in bids; if one does, her bid is ignored. Inputs are assumed
// validated.
func shapleyForced(cost econ.Money, bids map[UserID]econ.Money, forced map[UserID]bool) ShapleyResult {
	sorted := make([]userBid, 0, len(bids))
	for u, b := range bids {
		if forced[u] {
			continue
		}
		sorted = append(sorted, userBid{user: u, bid: b})
	}
	sortBidsDesc(sorted)
	forcedIDs := make([]UserID, 0, len(forced))
	for u := range forced {
		forcedIDs = append(forcedIDs, u)
	}
	return shapleyFromSorted(cost, sorted, forcedIDs)
}
