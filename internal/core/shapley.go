package core

import (
	"fmt"

	"sharedopt/internal/econ"
)

// ShapleyResult is the output of the Shapley Value Mechanism for a single
// optimization: the serviced users and the uniform cost-share each pays.
type ShapleyResult struct {
	// Serviced lists the serviced users in ascending order. Empty means
	// no subset of users bid enough to cover the cost: the optimization
	// is not implemented.
	Serviced []UserID
	// Share is the per-user payment cost.DivCeil(len(Serviced)), or 0
	// when Serviced is empty.
	Share econ.Money
}

// Implemented reports whether the optimization should be implemented.
func (r ShapleyResult) Implemented() bool { return len(r.Serviced) > 0 }

// Revenue returns the total payment collected, Share × |Serviced|.
func (r ShapleyResult) Revenue() econ.Money {
	return r.Share.MulInt(int64(len(r.Serviced)))
}

// Shapley runs the Shapley Value Mechanism (paper, Mechanism 1) for a
// single optimization with the given cost and one bid per user. It finds
// the minimum uniform price p such that every serviced user bid at least p
// and the serviced users jointly cover the cost: starting from all users,
// it repeatedly divides the cost evenly and drops users whose bid is below
// the current share, until the set stabilizes or empties.
//
// The mechanism is truthful (no user can improve her utility by bidding
// anything other than her true value) and cost-recovering
// (Share × |Serviced| ≥ cost, exactly, thanks to ceiling division).
//
// Users with negative bids are rejected with an error; users absent from
// bids simply do not participate.
func Shapley(cost econ.Money, bids map[UserID]econ.Money) (ShapleyResult, error) {
	if cost <= 0 {
		return ShapleyResult{}, fmt.Errorf("core: Shapley: cost must be positive, got %v", cost)
	}
	for u, b := range bids {
		if b < 0 {
			return ShapleyResult{}, fmt.Errorf("core: Shapley: user %d bid negative value %v", u, b)
		}
	}
	return shapleyForced(cost, bids, nil), nil
}

// shapleyForced is the Shapley Value Mechanism with a set of forced users
// who are always serviced regardless of their bids — the "b'ij ← ∞" step
// of the online mechanisms (Mechanisms 2 and 4). Forced users need not
// appear in bids. Inputs are assumed validated.
func shapleyForced(cost econ.Money, bids map[UserID]econ.Money, forced map[UserID]bool) ShapleyResult {
	// The serviced set starts as all forced users plus all bidders.
	serviced := make(map[UserID]bool, len(bids)+len(forced))
	for u := range forced {
		serviced[u] = true
	}
	for u := range bids {
		serviced[u] = true
	}
	for len(serviced) > 0 {
		share := cost.DivCeil(len(serviced))
		changed := false
		for u := range serviced {
			if forced[u] {
				continue
			}
			if bids[u] < share {
				delete(serviced, u)
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	if len(serviced) == 0 {
		return ShapleyResult{}
	}
	users := make([]UserID, 0, len(serviced))
	for u := range serviced {
		users = append(users, u)
	}
	sortUsers(users)
	return ShapleyResult{Serviced: users, Share: cost.DivCeil(len(users))}
}
