package core

import (
	"fmt"

	"sharedopt/internal/econ"
)

// valueCurve is a user's declared per-slot value function stored densely:
// values[k] is the declared value at slot start+k, and suffix[k] caches
// Σ_{i≥k} values[i] so that residual lookups — the inner loop of every
// online AdvanceSlot — are O(1) instead of O(slots). The suffix array is
// rebuilt on the cold path (Submit), never on the hot path.
type valueCurve struct {
	start, end Slot
	values     []econ.Money
	suffix     []econ.Money
}

// newValueCurve builds the curve of a validated first bid.
func newValueCurve(bid OnlineBid) valueCurve {
	c := valueCurve{
		start:  bid.Start,
		end:    bid.End,
		values: append([]econ.Money(nil), bid.Values...),
	}
	c.rebuildSuffix()
	return c
}

func (c *valueCurve) rebuildSuffix() {
	if cap(c.suffix) < len(c.values) {
		c.suffix = make([]econ.Money, len(c.values))
	} else {
		c.suffix = c.suffix[:len(c.values)]
	}
	var sum econ.Money
	for i := len(c.values) - 1; i >= 0; i-- {
		sum += c.values[i]
		c.suffix[i] = sum
	}
}

// residual returns the remaining declared value Σ_{τ≥t} b(τ) in O(1).
func (c *valueCurve) residual(t Slot) econ.Money {
	if len(c.values) == 0 {
		return 0
	}
	idx := int(t - c.start)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(c.values) {
		return 0
	}
	return c.suffix[idx]
}

// total returns the sum of all declared values.
func (c *valueCurve) total() econ.Money {
	if len(c.suffix) == 0 {
		return 0
	}
	return c.suffix[0]
}

// valueAt returns the declared value at slot t (0 outside the interval).
func (c *valueCurve) valueAt(t Slot) econ.Money {
	idx := int(t - c.start)
	if idx < 0 || idx >= len(c.values) {
		return 0
	}
	return c.values[idx]
}

// revise applies a revision bid (paper, Section 5.1): for every
// not-yet-processed slot the revised value must be at least the previously
// declared value, the interval may only extend, and previously declared
// future value may not be withdrawn. now is the last processed slot. On
// success the curve is rebased onto the union of the old and new intervals
// and the suffix cache is rebuilt.
func (c *valueCurve) revise(bid OnlineBid, now Slot) error {
	if bid.End < c.end {
		return fmt.Errorf("core: user %d: revision shrinks end from %d to %d", bid.User, c.end, bid.End)
	}
	for s := bid.Start; s <= c.end; s++ {
		old := c.valueAt(s)
		var revised econ.Money
		if s <= bid.End {
			revised = bid.Values[s-bid.Start]
		}
		if revised < old {
			return fmt.Errorf("core: user %d: revision lowers value at slot %d from %v to %v",
				bid.User, s, old, revised)
		}
	}
	// The revision must not silently drop declared future value before
	// its start.
	for k, v := range c.values {
		s := c.start + Slot(k)
		if s > now && s < bid.Start && v > 0 {
			return fmt.Errorf("core: user %d: revision starting at %d withdraws value at slot %d",
				bid.User, bid.Start, s)
		}
	}
	start, end := c.start, c.end
	if bid.Start < start {
		start = bid.Start
	}
	if bid.End > end {
		end = bid.End
	}
	values := make([]econ.Money, int(end-start+1))
	copy(values[c.start-start:], c.values)
	for k, v := range bid.Values {
		values[int(bid.Start-start)+k] = v
	}
	c.start, c.end, c.values = start, end, values
	c.rebuildSuffix()
	return nil
}
